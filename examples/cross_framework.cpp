// Cross-framework ingestion (paper §1: "resuming training of checkpoints from other popular
// training frameworks").
//
// A job trained with a third-party DDP-style framework ("torchlight" — consolidated
// per-parameter state dict, no flat buffers, no partitions) leaves behind a checkpoint in
// its own on-disk format. ConvertForeignToUcp maps it into the same atom-checkpoint format
// native checkpoints convert to, after which any parallelism strategy can resume from it —
// here, 3-D parallelism on 8 ranks.

#include <cmath>
#include <cstdio>

#include "src/ckpt/foreign.h"
#include "src/common/fs.h"
#include "src/runtime/trainer.h"
#include "src/ucp/converter.h"
#include "src/ucp/loader.h"

int main() {
  using namespace ucp;
  const std::string workdir = "/tmp/ucp_cross_framework";
  UCP_CHECK(RemoveAll(workdir).ok());

  TrainerConfig ddp_config;
  ddp_config.model = Gpt3Scaled();
  ddp_config.strategy = {1, 1, 2, 1, 0, 1};  // plain DDP, as the foreign framework trains
  ddp_config.global_batch = 8;
  ddp_config.lr.max_lr = 1e-3f;
  ddp_config.lr.decay_iters = 40;

  std::printf("phase 1: 'torchlight' trains with plain DDP on 2 ranks\n");
  TrainingRun ddp(ddp_config);
  auto ddp_losses = ddp.Train(1, 20);
  ddp.Run([&](RankTrainer& t) {
    UCP_CHECK(SaveForeignCheckpoint(workdir + "/torchlight", t, 20).ok());
  });
  std::printf("  iter 20 loss %.4f, saved %s/torchlight/foreign_step20\n",
              ddp_losses.back(), workdir.c_str());

  std::printf("phase 2: ingest the foreign checkpoint into UCP\n");
  Result<ConvertStats> stats =
      ConvertForeignToUcp(workdir + "/torchlight", "foreign_step20", workdir + "/ucp");
  UCP_CHECK(stats.ok()) << stats.status().ToString();
  std::printf("  %d atoms written\n", stats->atoms_written);

  std::printf("phase 3: resume under 3-D parallelism (TP2.PP2.DP2, ZeRO-1) on 8 ranks\n");
  TrainerConfig target_config = ddp_config;
  target_config.strategy = {2, 2, 2, 1, 1, 1};
  TrainingRun target(target_config);
  target.Run([&](RankTrainer& t) {
    UCP_CHECK(LoadUcpCheckpoint(workdir + "/ucp", t).ok());
  });

  auto resumed = target.Train(21, 30);
  auto continued = ddp.Train(21, 30);
  std::printf("\niter  resumed(3-D, 8 ranks)  continued(DDP, 2 ranks)  |diff|\n");
  for (size_t i = 0; i < resumed.size(); ++i) {
    std::printf("%4zu  %21.4f  %23.4f  %.2e\n", 21 + i, resumed[i], continued[i],
                std::fabs(resumed[i] - continued[i]));
  }
  std::printf("\nforeign checkpoint resumed under a completely different framework "
              "configuration.\n");
  return 0;
}
