// Elastic failover: the paper's motivating scenario (Fig. 1).
//
// A job trains on 8 ranks with periodic distributed checkpointing. Mid-run, "hardware
// fails" — half the ranks disappear. A strict native load on the new 4-rank shape fails
// loudly (exactly the runtime error current frameworks give); converting the surviving
// checkpoint to UCP lets training continue on the remaining healthy hardware. When capacity
// returns, the job scales back up to 8 ranks from another UCP conversion — opportunistic
// use of elastic capacity.

#include <cstdio>

#include "src/ckpt/async/engine.h"
#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/runtime/trainer.h"
#include "src/ucp/converter.h"
#include "src/ucp/elastic.h"
#include "src/ucp/loader.h"

namespace {

ucp::TrainerConfig ConfigFor(const ucp::ParallelConfig& strategy) {
  ucp::TrainerConfig config;
  config.model = ucp::Gpt3Scaled();
  config.strategy = strategy;
  config.global_batch = 8;
  config.lr.max_lr = 1e-3f;
  config.lr.decay_iters = 90;
  return config;
}

}  // namespace

int main() {
  using namespace ucp;
  const std::string workdir = "/tmp/ucp_elastic";
  UCP_CHECK(RemoveAll(workdir).ok());

  // Phase 1: full cluster — 8 ranks, TP2 x PP2 x DP2. Checkpoints go through the async
  // engine: each save blocks training for the snapshot memcpy only, while the flush and
  // commit overlap the following iterations.
  std::printf(
      "phase 1: 8 ranks (TP2.PP2.DP2, ZeRO-1), async checkpoint every 10 iterations\n");
  TrainingRun full(ConfigFor({2, 2, 2, 1, 1, 1}));
  {
    AsyncCheckpointEngine engine(workdir + "/ckpt", full.world_size());
    auto losses = full.Train(1, 30, [&](RankTrainer& t, int64_t it) {
      if (it % 10 == 0) {
        UCP_CHECK(engine.SaveAsync(t, it).ok());
      }
    });
    UCP_CHECK(engine.WaitAll().ok());
    AsyncSaveStats stats = engine.stats();
    for (int64_t it = 10; it <= 30; it += 10) {
      std::printf("  iter %3lld loss %.4f  (checkpointed)\n", static_cast<long long>(it),
                  losses[static_cast<size_t>(it - 1)]);
    }
    std::printf("  %lld async saves committed; worst per-save stall %.1f ms\n",
                static_cast<long long>(stats.commits),
                stats.max_blocking_seconds * 1e3);
  }

  // Phase 2: failure — only 4 ranks remain. Strict native resume fails by design. The tag
  // comes from FindLatestValidTag — never from the advisory `latest` pointer.
  std::printf("\nphase 2: node failure! 4 ranks remain -> try native resume as TP2.DP2\n");
  Result<std::string> tag = FindLatestValidTag(workdir + "/ckpt");
  UCP_CHECK(tag.ok()) << tag.status().ToString();
  TrainingRun degraded(ConfigFor({2, 1, 2, 1, 1, 1}));
  std::vector<Status> strict(4);
  degraded.Run([&](RankTrainer& t) {
    strict[static_cast<size_t>(t.rank())] =
        LoadDistributedCheckpoint(workdir + "/ckpt", *tag, t);
  });
  std::printf("  native load: %s\n", strict[0].ToString().c_str());
  UCP_CHECK(strict[0].code() == StatusCode::kFailedPrecondition);

  std::printf("  -> converting the surviving checkpoint to UCP instead\n");
  Result<ConvertStats> stats =
      ConvertToUcp(workdir + "/ckpt", *tag, workdir + "/ucp30");
  UCP_CHECK(stats.ok()) << stats.status().ToString();
  degraded.Run([&](RankTrainer& t) {
    UCP_CHECK(LoadUcpCheckpoint(workdir + "/ucp30", t).ok());
  });
  for (int64_t start = 31; start <= 50; start += 10) {
    auto losses = degraded.Train(start, start + 9);
    degraded.Run([&](RankTrainer& t) {
      UCP_CHECK(SaveDistributedCheckpoint(workdir + "/ckpt4", t, start + 9).ok());
    });
    std::printf("  iter %3lld loss %.4f  (on 4 ranks)\n",
                static_cast<long long>(start + 9), losses.back());
  }

  // Phase 3: capacity restored — scale back up to 8 ranks, now pure ZeRO-3 DP. This time
  // use the one-call driver: ResumeElastic detects the strategy change, converts on demand
  // (cached beside the checkpoint), and loads through UCP.
  std::printf("\nphase 3: capacity restored -> scale up to 8 ranks as DP8 (ZeRO-3)\n");
  TrainingRun restored(ConfigFor({1, 1, 8, 1, 3, 1}));
  restored.Run([&](RankTrainer& t) {
    Result<ResumeReport> report = ResumeElastic(workdir + "/ckpt4", t);
    UCP_CHECK(report.ok()) << report.status().ToString();
    UCP_CHECK(report->path == ResumeReport::Path::kUcpConverted ||
              report->path == ResumeReport::Path::kUcpCached);
  });
  std::printf("  ResumeElastic converted %s on demand and loaded it\n",
              FindLatestValidTag(workdir + "/ckpt4")->c_str());
  auto losses = restored.Train(51, 70);
  std::printf("  iter  70 loss %.4f  (on 8 ranks again)\n", losses.back());
  std::printf("\ntraining survived shrink (8->4) and grow (4->8) without losing a step.\n");
  return 0;
}
