// Elastic failover: the paper's motivating scenario (Fig. 1), fully automated.
//
// A job trains on 8 ranks with periodic async checkpointing under the recovery supervisor.
// Mid-run, "hardware fails": an armed fault kills rank 7 inside a gradient all-reduce. The
// surviving ranks block, the world watchdog converts the hang into a detected RankFailure,
// and the supervisor tears the run down, shrinks the strategy for the 7 remaining slots
// (DP first: TP2.PP2.DP2 -> TP2.PP2.DP1, 4 ranks), converts the newest committed
// checkpoint through UCP, and resumes — no operator in the loop. When capacity returns,
// the job scales back up to 8 ranks from another on-demand UCP conversion.

#include <cstdio>

#include "src/common/fs.h"
#include "src/runtime/supervisor.h"
#include "src/ucp/elastic.h"

namespace {

ucp::TrainerConfig ConfigFor(const ucp::ParallelConfig& strategy) {
  ucp::TrainerConfig config;
  config.model = ucp::Gpt3Scaled();
  config.strategy = strategy;
  config.global_batch = 8;
  config.lr.max_lr = 1e-3f;
  config.lr.decay_iters = 90;
  return config;
}

}  // namespace

int main() {
  using namespace ucp;
  const std::string workdir = "/tmp/ucp_elastic";
  UCP_CHECK(RemoveAll(workdir).ok());

  // Phase 1+2 in one call: the supervisor owns train -> fail -> shrink -> resume. The armed
  // plan kills rank 7 at iteration 25, past the committed global_step20 checkpoint.
  std::printf(
      "phase 1: 8 ranks (TP2.PP2.DP2, ZeRO-1), async checkpoint every 10 iterations,\n"
      "         supervised with a 2s watchdog; rank 7 will die at iteration 25\n");
  SupervisorOptions options;
  options.ckpt_dir = workdir + "/ckpt";
  options.checkpoint_every = 10;
  options.watchdog_timeout = std::chrono::milliseconds(2000);
  Supervisor supervisor(ConfigFor({2, 2, 2, 1, 1, 1}), options);

  ArmRankFault({/*rank=*/7, /*iteration=*/25, FaultSite::kAllReduce, /*nth=*/1});
  SupervisorReport report = supervisor.Train(1, 50);
  DisarmRankFaults();
  UCP_CHECK(report.ok) << report.status.ToString();
  UCP_CHECK(report.recoveries == 1);

  const RecoveryTiming& t = report.timings[0];
  std::printf("\nphase 2: failure detected and survived automatically\n");
  std::printf("  failure   : %s\n", t.failure.ToString().c_str());
  std::printf("  strategy  : %s -> %s\n", t.old_strategy.ToString().c_str(),
              t.new_strategy.ToString().c_str());
  std::printf("  resumed   : %s (%s)\n", t.resumed_tag.c_str(),
              t.resume_path == ResumeReport::Path::kNative ? "native load" : "via UCP");
  std::printf("  recovery  : detect %.2fs, teardown %.3fs, rebuild %.3fs, convert %.3fs, "
              "load %.3fs -> total %.2fs\n",
              t.detect_seconds, t.teardown_seconds, t.rebuild_seconds, t.convert_seconds,
              t.load_seconds, t.total_seconds);
  for (int64_t it = 10; it <= 50; it += 10) {
    std::printf("  iter %3lld loss %.4f%s\n", static_cast<long long>(it),
                report.losses[static_cast<size_t>(it - 1)],
                it > 20 ? "  (re-run on 4 ranks)" : "");
  }
  std::printf("  final strategy: %s on %d ranks\n",
              report.final_strategy.ToString().c_str(), report.final_strategy.world_size());

  // Phase 3: capacity restored — scale back up to 8 ranks, now pure ZeRO-3 DP.
  // ResumeElastic detects the strategy change, converts the supervisor's last checkpoint on
  // demand (cached beside it), and loads through UCP.
  std::printf("\nphase 3: capacity restored -> scale up to 8 ranks as DP8 (ZeRO-3)\n");
  TrainingRun restored(ConfigFor({1, 1, 8, 1, 3, 1}));
  restored.Run([&](RankTrainer& trainer) {
    Result<ResumeReport> resume = ResumeElastic(workdir + "/ckpt", trainer);
    UCP_CHECK(resume.ok()) << resume.status().ToString();
    UCP_CHECK(resume->path == ResumeReport::Path::kUcpConverted ||
              resume->path == ResumeReport::Path::kUcpCached);
    UCP_CHECK(resume->iteration == 50);
  });
  auto losses = restored.Train(51, 60);
  std::printf("  iter  60 loss %.4f  (on 8 ranks again)\n", losses.back());
  std::printf("\ntraining survived a mid-run rank death (8->4) and grew back (4->8) "
              "without losing a step.\n");
  return 0;
}
