// Advanced sub-patterns (paper Fig. 5): resharding models whose parameters do not split
// evenly along one dimension.
//
//   - GQA: the fused QKV weight [q + k + v, hidden] has *variable-size* sections — Q is
//     num_heads * head_dim wide but K/V only num_kv_heads * head_dim. TP must split each
//     section independently.
//   - MoE: expert weights are 3-d tensors [n_experts, ffn, hidden]; TP splits the middle
//     (ffn) dimension while the expert dimension stays intact.
//
// This example prints the UCP language spec the converter uses for each case, performs a
// reshard across TP degrees, and verifies loss continuity.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/runtime/trainer.h"
#include "src/ucp/converter.h"
#include "src/ucp/loader.h"

namespace {

ucp::TrainerConfig ConfigFor(const ucp::ModelConfig& model,
                             const ucp::ParallelConfig& strategy) {
  ucp::TrainerConfig config;
  config.model = model;
  config.strategy = strategy;
  config.global_batch = 8;
  config.lr.max_lr = 1e-3f;
  config.lr.decay_iters = 40;
  return config;
}

void Demo(const char* title, const ucp::ModelConfig& model,
          const ucp::ParallelConfig& source_strategy,
          const ucp::ParallelConfig& target_strategy, const char* focus_param) {
  using namespace ucp;
  std::printf("==== %s ====\n", title);
  const std::string workdir = std::string("/tmp/ucp_subpattern_") + ArchKindName(model.arch);
  UCP_CHECK(RemoveAll(workdir).ok());

  // Show how the UCP language describes this model under the source strategy.
  PatternLibrary library = PatternLibrary::ForStrategy(model, source_strategy);
  std::printf("UCP pattern spec (source %s):\n%s\n", source_strategy.ToString().c_str(),
              library.ToSpec().c_str());

  TrainingRun source(ConfigFor(model, source_strategy));
  source.Train(1, 10);
  source.Run([&](RankTrainer& t) {
    UCP_CHECK(SaveDistributedCheckpoint(workdir + "/ckpt", t, 10).ok());
  });
  UCP_CHECK(ConvertToUcp(workdir + "/ckpt", TagForIteration(10), workdir + "/ucp").ok());

  // Inspect the focus parameter: local shard on the source vs consolidated atom.
  ParamPtr shard = source.trainer(0).model().store().FindOrNull(focus_param);
  Result<ParamState> atom = ReadAtom(workdir + "/ucp", focus_param);
  UCP_CHECK(atom.ok()) << atom.status().ToString();
  std::printf("parameter %s\n", focus_param);
  if (shard != nullptr) {
    std::printf("  source rank-0 shard shape: %s\n",
                ShapeToString(shard->value.shape()).c_str());
  }
  std::printf("  consolidated atom shape:   %s\n",
              ShapeToString(atom->fp32.shape()).c_str());

  TrainingRun target(ConfigFor(model, target_strategy));
  target.Run([&](RankTrainer& t) {
    UCP_CHECK(LoadUcpCheckpoint(workdir + "/ucp", t).ok());
  });
  ParamPtr reshard = target.trainer(0).model().store().FindOrNull(focus_param);
  if (reshard != nullptr) {
    std::printf("  target rank-0 shard shape: %s (target %s)\n",
                ShapeToString(reshard->value.shape()).c_str(),
                target_strategy.ToString().c_str());
  }

  auto continued = source.Train(11, 15);
  auto resumed = target.Train(11, 15);
  double max_delta = 0.0;
  for (size_t i = 0; i < resumed.size(); ++i) {
    max_delta = std::max(max_delta, std::fabs(resumed[i] - continued[i]));
  }
  std::printf("loss continuity over 5 resumed iterations: max|delta| = %.2e\n\n", max_delta);
  UCP_CHECK(max_delta < 0.02);
}

}  // namespace

int main() {
  using namespace ucp;

  // GQA: TP2 -> TP1 x PP2. Focus on the fused QKV weight with sections {64, 32, 32}.
  Demo("GQA: variable-size fused QKV sections", LlamaScaled(), {2, 1, 2, 1, 1, 1},
       {1, 2, 2, 1, 1, 1},
       "language_model.encoder.layers.0.self_attention.query_key_value.weight");

  // MoE: TP1 x DP4 -> TP2 x DP2. Focus on the 3-d expert tensor split along dim 1.
  Demo("MoE: 3-d expert tensors split along the ffn dim", MoeScaled(), {1, 2, 4, 1, 1, 1},
       {2, 2, 2, 1, 1, 1}, "language_model.encoder.layers.0.mlp.moe.experts.w1");

  std::printf("both Fig. 5 sub-patterns reshard losslessly.\n");
  return 0;
}
