// Quickstart: the whole UCP lifecycle in ~60 lines.
//
//   1. Train a small GPT under 3-D parallelism (TP2 x PP2 x DP2, ZeRO-1) on 8 simulated
//      ranks.
//   2. Save a normal distributed checkpoint (per-rank shards — zero extra cost).
//   3. Convert it to the Universal Checkpoint format (lazy, on demand).
//   4. Resume training on a *different* cluster shape: 2 ranks, pure ZeRO-2 data
//      parallelism — and watch the loss continue exactly where it left off.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build --target quickstart
//               ./build/examples/quickstart

#include <cmath>
#include <cstdio>

#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/runtime/trainer.h"
#include "src/ucp/converter.h"
#include "src/ucp/loader.h"

int main() {
  using namespace ucp;
  const std::string workdir = "/tmp/ucp_quickstart";
  UCP_CHECK(RemoveAll(workdir).ok());

  // ---- 1. Train under the Source strategy. ----
  TrainerConfig config;
  config.model = Gpt3Scaled();                 // GPT-like: L=4, H=64, vocab=256
  config.strategy = {2, 2, 2, 1, 1, 1};        // TP2, PP2, DP2, ZeRO-1 -> 8 ranks
  config.global_batch = 8;
  config.lr.max_lr = 1e-3f;
  config.lr.decay_iters = 60;

  std::printf("training %s under %s on %d simulated ranks\n",
              ArchKindName(config.model.arch), config.strategy.ToString().c_str(),
              config.strategy.world_size());
  TrainingRun source(config);
  std::vector<double> losses = source.Train(1, 30);
  std::printf("iter  1 loss %.4f\niter 30 loss %.4f\n", losses.front(), losses.back());

  // ---- 2. Save a normal distributed checkpoint. ----
  source.Run([&](RankTrainer& t) {
    UCP_CHECK(SaveDistributedCheckpoint(workdir + "/ckpt", t, 30).ok());
  });
  std::printf("saved distributed checkpoint at iteration 30\n");

  // ---- 3. Convert to UCP (this is the only step a strategy change costs). ----
  // Discover the newest committed tag instead of hardcoding it: FindLatestValidTag skips
  // uncommitted or damaged tags, unlike the advisory `latest` pointer.
  Result<std::string> tag = FindLatestValidTag(workdir + "/ckpt");
  UCP_CHECK(tag.ok()) << tag.status().ToString();
  Result<ConvertStats> stats = ConvertToUcp(workdir + "/ckpt", *tag, workdir + "/ucp");
  UCP_CHECK(stats.ok()) << stats.status().ToString();
  std::printf("converted to UCP: %d atom checkpoints (extract %.0f ms, union %.0f ms)\n",
              stats->atoms_written, stats->extract_seconds * 1e3,
              stats->union_seconds * 1e3);

  // ---- 4. Resume on different hardware: 2 ranks, ZeRO-2 data parallelism. ----
  TrainerConfig target_config = config;
  target_config.strategy = {1, 1, 2, 1, 2, 1};  // TP1, PP1, DP2, ZeRO-2 -> 2 ranks
  std::printf("resuming under %s on %d ranks\n",
              target_config.strategy.ToString().c_str(),
              target_config.strategy.world_size());
  TrainingRun target(target_config);
  target.Run([&](RankTrainer& t) {
    UCP_CHECK(LoadUcpCheckpoint(workdir + "/ucp", t).ok());
  });

  std::vector<double> resumed = target.Train(31, 40);
  std::vector<double> continued = source.Train(31, 40);
  std::printf("\niter  resumed(2 ranks)  continued(8 ranks)  |diff|\n");
  for (size_t i = 0; i < resumed.size(); ++i) {
    std::printf("%4zu  %16.4f  %18.4f  %.2e\n", 31 + i, resumed[i], continued[i],
                std::fabs(resumed[i] - continued[i]));
  }
  std::printf("\nthe resumed run tracks the original to floating-point noise. done.\n");
  return 0;
}
