// Ablation (paper Table 2, Union): "The Union operation can execute in parallel at
// individual parameter level. More parallelism leads to faster speed but is also more
// memory intensive." This bench sweeps the converter's worker-thread count over a
// larger-than-default checkpoint and reports conversion time per phase, plus the modeled
// NVMe transfer time for the bytes moved (the DeepNVMe substitution).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace ucp {
namespace {

struct Fixture {
  std::string ckpt_dir;
  ModelConfig model;
};

Fixture& GetFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    f->model = Gpt3Scaled();
    f->model.num_layers = 8;
    f->model.hidden = 128;
    f->model.ffn_hidden = 512;
    f->ckpt_dir = bench::FreshDir("ablation_threads");
    TrainingRun run(bench::MakeConfig(f->model, {2, 2, 2, 1, 1, 1}));
    run.Train(1, 2);
    bench::SaveAll(run, f->ckpt_dir, 2);
    return f;
  }();
  return *fixture;
}

void BM_Convert(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int threads = static_cast<int>(state.range(0));
  const std::string ucp_dir = "/tmp/ucp_bench/ablation_threads_out";
  double extract_seconds = 0.0;
  double union_seconds = 0.0;
  int64_t bytes = 0;
  int atoms = 0;
  for (auto _ : state) {
    state.PauseTiming();
    UCP_CHECK(RemoveAll(ucp_dir).ok());
    state.ResumeTiming();
    Result<ConvertStats> stats =
        ConvertToUcp(f.ckpt_dir, TagForIteration(2), ucp_dir, {.num_threads = threads});
    UCP_CHECK(stats.ok()) << stats.status().ToString();
    extract_seconds += stats->extract_seconds;
    union_seconds += stats->union_seconds;
    bytes = stats->bytes_read + stats->bytes_written;
    atoms = stats->atoms_written;
  }
  state.counters["extract_ms"] =
      benchmark::Counter(extract_seconds * 1e3 / static_cast<double>(state.iterations()));
  state.counters["union_ms"] =
      benchmark::Counter(union_seconds * 1e3 / static_cast<double>(state.iterations()));
  state.counters["atoms"] = benchmark::Counter(atoms);
  state.counters["modeled_nvme_ms"] =
      benchmark::Counter(ModeledTransferSeconds(bytes, atoms * 3 + 8) * 1e3);
}

}  // namespace
}  // namespace ucp

int main(int argc, char** argv) {
  const std::string trace_file = ucp::bench::ExtractTraceFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("ablation/convert_threads", ucp::BM_Convert)
      ->Arg(0)   // inline (memory-minimal)
      ->Arg(1)
      ->Arg(2)
      ->Arg(4)
      ->Arg(8)
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.3);
  benchmark::RunSpecifiedBenchmarks();
  ucp::bench::WriteTraceIfRequested(trace_file);
  return 0;
}
