// Reproduces Figure 10: Mixtral-style mixture-of-experts (3-d expert weight tensors — the
// Fig. 5 n-d fragment sub-pattern; top-2 gating). Paper: Source TP1 PP2 DP4, resumed at
// iteration 501 under TP2 PP2 DP2 — the target applies TP to expert tensors that were
// previously unsharded.
//
// Scale substitution: Mixtral-8x7B variant (42B, E=8) -> MoE L=4 H=64 E=4 top-2; resume
// point scaled to iteration 100 of 200.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const std::string trace_file = ucp::bench::ExtractTraceFlag(&argc, argv);
  const int rc = ucp::bench::RunArchFigure(
      "fig10_moe", ucp::MoeScaled(), /*source=*/{1, 2, 4, 1, 1, 1},
      /*targets=*/{{2, 2, 2, 1, 1, 1}},
      /*resume_at=*/100, /*last_iteration=*/200);
  ucp::bench::WriteTraceIfRequested(trace_file);
  return rc;
}
