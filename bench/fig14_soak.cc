// Scale & soak characterization: schedule throughput of the randomized fault-schedule
// driver, plus the large-world stress footprint curve.
//
// Two arm families:
//
//   soak/seed<N>    — RunSoak over a few fixed seeds (the same generator the soak tests
//                     pin), timed wall-clock. Reports events/sec and invariant-check
//                     counts so a throughput regression in the driver (or a supervisor
//                     recovery path getting slower under faults) shows up as a number,
//                     not a CI timeout. Timing lives only in this report — the driver's
//                     JSONL log stays time-free by contract (see src/soak/driver.h).
//   stress/<ranks>  — RunLargeWorldStress at 32 / 128 / 256 simulated ranks. Reports the
//                     per-round collective latency, trace-ring registry size and drop
//                     rate, slice-cache footprint and RSS, i.e. the curve behind the soak
//                     tests' "128 ranks stays within 2x of 32" assertion, extended to 256.
//
// BENCH_soak.json carries both families; the soak tests enforce the invariants, this
// binary measures the cost.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/common/json.h"
#include "src/soak/driver.h"
#include "src/soak/stress.h"

namespace ucp {
namespace {

constexpr uint64_t kSoakSeeds[] = {11, 12, 13, 14};

Json RunSoakArm(uint64_t seed) {
  SoakOptions options;
  options.seed = seed;
  options.dir = bench::FreshDir("fig14_soak_seed" + std::to_string(seed));
  const auto start = std::chrono::steady_clock::now();
  SoakRunReport report = RunSoak(options);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  UCP_CHECK(report.ok) << report.status.ToString();
  UCP_CHECK(report.violations.empty()) << report.violations.front();

  const double events_per_sec =
      seconds > 0.0 ? static_cast<double>(report.events_run) / seconds : 0.0;
  std::printf(
      "fig14/soak/seed%llu: %lld events in %.3fs (%.1f events/s), %lld iters, "
      "%lld checks, %lld kills, %lld fs faults, %lld recoveries\n",
      static_cast<unsigned long long>(seed), static_cast<long long>(report.events_run),
      seconds, events_per_sec, static_cast<long long>(report.iterations_trained),
      static_cast<long long>(report.invariant_checks),
      static_cast<long long>(report.kills_fired),
      static_cast<long long>(report.fs_faults_fired),
      static_cast<long long>(report.recoveries));

  JsonObject arm;
  arm["arm"] = "soak/seed" + std::to_string(seed);
  arm["seed"] = static_cast<int64_t>(seed);
  arm["seconds"] = seconds;
  arm["events"] = report.events_run;
  arm["events_per_sec"] = events_per_sec;
  arm["iterations_trained"] = report.iterations_trained;
  arm["invariant_checks"] = report.invariant_checks;
  arm["kills_fired"] = report.kills_fired;
  arm["fs_faults_fired"] = report.fs_faults_fired;
  arm["recoveries"] = report.recoveries;
  arm["violations"] = static_cast<int64_t>(report.violations.size());
  return Json(std::move(arm));
}

Json RunStressArm(int ranks) {
  StressOptions options;
  options.ranks = ranks;
  const int64_t rss_before = CurrentRssKb();
  StressReport report = RunLargeWorldStress(options);
  const int64_t rss_delta = report.rss_kb > 0 ? report.rss_kb - rss_before : 0;

  std::printf(
      "fig14/stress/%d: %.3fs total, %.6fs/collective-round, %llu trace rings "
      "(drop rate %.4f), cache %llu hits / %llu misses, rss %+lld kB (peak %lld kB)\n",
      ranks, report.seconds, report.per_round_collective_seconds,
      static_cast<unsigned long long>(report.trace_rings), report.trace_drop_rate,
      static_cast<unsigned long long>(report.cache_hits),
      static_cast<unsigned long long>(report.cache_misses),
      static_cast<long long>(rss_delta), static_cast<long long>(report.peak_rss_kb));

  JsonObject arm;
  arm["arm"] = "stress/" + std::to_string(ranks);
  arm["ranks"] = report.ranks;
  arm["rounds"] = report.rounds;
  arm["seconds"] = report.seconds;
  arm["per_round_collective_seconds"] = report.per_round_collective_seconds;
  arm["trace_rings"] = static_cast<int64_t>(report.trace_rings);
  arm["trace_events"] = static_cast<int64_t>(report.trace_events);
  arm["trace_dropped"] = static_cast<int64_t>(report.trace_dropped);
  arm["trace_drop_rate"] = report.trace_drop_rate;
  arm["cache_entries"] = static_cast<int64_t>(report.cache_entries);
  arm["cache_live"] = static_cast<int64_t>(report.cache_live);
  arm["cache_hits"] = static_cast<int64_t>(report.cache_hits);
  arm["cache_misses"] = static_cast<int64_t>(report.cache_misses);
  arm["rss_kb"] = report.rss_kb;
  arm["rss_delta_kb"] = rss_delta;
  arm["peak_rss_kb"] = report.peak_rss_kb;
  return Json(std::move(arm));
}

}  // namespace
}  // namespace ucp

int main(int argc, char** argv) {
  const std::string trace_file = ucp::bench::ExtractTraceFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);

  ucp::JsonArray arms;
  for (uint64_t seed : ucp::kSoakSeeds) {
    arms.emplace_back(ucp::RunSoakArm(seed));
  }
  // Ascending so each arm's RSS delta measures its own growth, not a predecessor's peak.
  for (int ranks : {32, 128, 256}) {
    arms.emplace_back(ucp::RunStressArm(ranks));
  }

  ucp::JsonObject doc;
  doc["benchmark"] = "fig14_soak";
  doc["soak_seeds"] = static_cast<int64_t>(std::size(ucp::kSoakSeeds));
  doc["arms"] = std::move(arms);

  ucp::bench::WriteBenchReport("BENCH_soak.json", std::move(doc));
  ucp::bench::WriteTraceIfRequested(trace_file);
  return 0;
}
