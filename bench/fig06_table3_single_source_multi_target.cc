// Reproduces Figure 6 and Table 3: train a GPT model under one Source strategy
// (TP2 PP2 DP2, ZeRO-1), checkpoint at iteration 100, convert to UCP, and resume training
// under the paper's 11 Target strategies. Prints the per-iteration loss series (Fig. 6) and
// the Table 3 loss grid, with the max deviation from the uninterrupted source run.
//
// Scale substitution (see DESIGN.md): GPT-3 medium 350M on 8xH100 -> GPT-like L=4 H=64 on 8
// simulated ranks; 200 iterations as in the paper.

#include "bench/bench_util.h"

namespace ucp {
namespace {

using bench::LoadUcpAll;
using bench::LossAt;
using bench::MakeConfig;
using bench::PrintSeries;
using bench::SaveAll;

struct Target {
  ParallelConfig strategy;
  const char* label;  // "TP/PP/DP/SP zero" as in Table 3 rows
};

int Main() {
  const ModelConfig model = Gpt3Scaled();
  const ParallelConfig source_strategy{2, 2, 2, 1, 1, 1};
  const std::string dir = bench::FreshDir("fig06");

  std::printf("# Fig. 6 / Table 3: single Source (TP2.PP2.DP2 ZeRO-1) -> 11 Targets\n");
  std::printf("# model: GPT-like L=%d H=%d A=%d vocab=%d (scaled from GPT-3 medium)\n",
              model.num_layers, model.hidden, model.num_heads, model.vocab_size);

  // ---- Source: train 1..100, checkpoint, continue 101..200. ----
  TrainingRun source(MakeConfig(model, source_strategy));
  std::vector<double> source_losses = source.Train(1, 100);
  SaveAll(source, dir + "/ckpt", 100);
  std::vector<double> source_tail = source.Train(101, 200);
  source_losses.insert(source_losses.end(), source_tail.begin(), source_tail.end());

  // ---- Convert the distributed checkpoint to UCP (once, lazily). ----
  Result<ConvertStats> stats =
      ConvertToUcp(dir + "/ckpt", TagForIteration(100), dir + "/ucp", {.num_threads = 4});
  UCP_CHECK(stats.ok()) << stats.status().ToString();
  std::printf("# UCP conversion: %d atoms, extract %.3fs, union %.3fs\n",
              stats->atoms_written, stats->extract_seconds, stats->union_seconds);

  std::printf("series,iteration,lm_loss\n");
  PrintSeries("source_TP2.PP2.DP2.Z1", 1, source_losses);

  // The 11 Target rows of Table 3 (TP/PP/DP/SP, ZeRO stage).
  const std::vector<Target> targets = {
      {{2, 2, 2, 1, 1, 1}, "2/2/2/1 z1"}, {{1, 1, 1, 1, 1, 1}, "1/1/1/1 z1"},
      {{1, 2, 2, 1, 1, 1}, "1/2/2/1 z1"}, {{2, 1, 1, 1, 1, 1}, "2/1/1/1 z1"},
      {{1, 1, 2, 2, 1, 1}, "1/1/2/2 z1"}, {{2, 1, 2, 1, 1, 1}, "2/1/2/1 z1"},
      {{2, 2, 1, 1, 1, 1}, "2/2/1/1 z1"}, {{1, 1, 4, 1, 2, 1}, "1/1/4/1 z2"},
      {{2, 1, 2, 1, 2, 1}, "2/1/2/1 z2"}, {{1, 1, 2, 1, 3, 1}, "1/1/2/1 z3"},
      {{1, 1, 4, 1, 3, 1}, "1/1/4/1 z3"},
  };

  struct Row {
    const char* label;
    std::vector<double> losses;  // iterations 101..200
  };
  std::vector<Row> rows;
  for (const Target& target : targets) {
    TrainingRun run(MakeConfig(model, target.strategy));
    LoadUcpAll(run, dir + "/ucp");
    std::vector<double> losses = run.Train(101, 200);
    PrintSeries(std::string("target_") + target.strategy.ToString(), 101, losses);
    rows.push_back({target.label, std::move(losses)});
  }

  // ---- Table 3 ----
  const std::vector<int64_t> checkpoints = {101, 120, 140, 160, 180, 200};
  std::printf("\n# Table 3: training losses per Target at selected iterations\n");
  std::printf("%-14s", "TP/PP/DP/SP z");
  for (int64_t it : checkpoints) {
    std::printf("  loss@%-4lld", static_cast<long long>(it));
  }
  std::printf("  max|d|source\n");

  std::printf("%-14s", "source");
  for (int64_t it : checkpoints) {
    std::printf("  %-9.3f", LossAt(source_losses, 1, it));
  }
  std::printf("  -\n");

  for (const Row& row : rows) {
    double max_delta = 0.0;
    for (int64_t it = 101; it <= 200; ++it) {
      max_delta = std::max(max_delta, std::fabs(LossAt(row.losses, 101, it) -
                                                LossAt(source_losses, 1, it)));
    }
    std::printf("%-14s", row.label);
    for (int64_t it : checkpoints) {
      std::printf("  %-9.3f", LossAt(row.losses, 101, it));
    }
    std::printf("  %.4f\n", max_delta);
    // The paper reports deviations within 0.02 on GPUs; our CPU simulator only has
    // reduction-order noise, so the bound should hold with margin.
    UCP_CHECK(max_delta < 0.02) << "target " << row.label
                                << " deviated from source by " << max_delta;
  }
  std::printf("# PASS: all 11 targets track the uninterrupted source within 0.02\n");
  return 0;
}

}  // namespace
}  // namespace ucp

int main(int argc, char** argv) {
  const std::string trace_file = ucp::bench::ExtractTraceFlag(&argc, argv);
  const int rc = ucp::Main();
  ucp::bench::WriteTraceIfRequested(trace_file);
  return rc;
}
