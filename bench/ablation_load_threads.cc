// Ablation: loader worker-thread count for the sliced UCP load path. Sweeps
// UcpLoadOptions::num_threads over a larger-than-default checkpoint (TP2 PP2 DP2 ZeRO-1
// target) and reports load time plus bytes read per rank. Thread 0 reads inline on the
// calling rank thread — the memory-minimal configuration; on machines with real I/O
// parallelism the curve flattens once threads cover the per-rank atom count.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/tensor/tensor_file.h"

namespace ucp {
namespace {

struct Fixture {
  std::string ucp_dir;
  std::unique_ptr<TrainingRun> run;
};

Fixture& GetFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    ModelConfig model = Gpt3Scaled();
    model.num_layers = 8;
    model.hidden = 128;
    model.ffn_hidden = 512;
    const ParallelConfig strategy{2, 2, 2, 1, 1, 1};
    const std::string ckpt_dir = bench::FreshDir("ablation_load_threads");
    TrainingRun source(bench::MakeConfig(model, strategy));
    source.Train(1, 2);
    bench::SaveAll(source, ckpt_dir, 2);
    f->ucp_dir = "/tmp/ucp_bench/ablation_load_threads_ucp";
    UCP_CHECK(RemoveAll(f->ucp_dir).ok());
    Result<ConvertStats> stats =
        ConvertToUcp(ckpt_dir, TagForIteration(2), f->ucp_dir, {.num_threads = 4});
    UCP_CHECK(stats.ok()) << stats.status().ToString();
    f->run = std::make_unique<TrainingRun>(bench::MakeConfig(model, strategy));
    return f;
  }();
  return *fixture;
}

void BM_SlicedLoad(benchmark::State& state) {
  Fixture& f = GetFixture();
  UcpLoadOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  ResetTensorIoStats();
  for (auto _ : state) {
    f.run->Run([&](RankTrainer& t) {
      Status s = LoadUcpCheckpoint(f.ucp_dir, t, options);
      UCP_CHECK(s.ok()) << s.ToString();
    });
  }
  const TensorIoStats io = GetTensorIoStats();
  const uint64_t loads = static_cast<uint64_t>(state.iterations()) *
                         static_cast<uint64_t>(f.run->world_size());
  state.counters["bytes_per_rank"] = benchmark::Counter(
      static_cast<double>(io.bytes_read) / static_cast<double>(loads));
  state.counters["read_calls_per_rank"] = benchmark::Counter(
      static_cast<double>(io.read_calls) / static_cast<double>(loads));
}

}  // namespace
}  // namespace ucp

int main(int argc, char** argv) {
  const std::string trace_file = ucp::bench::ExtractTraceFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("ablation/load_threads", ucp::BM_SlicedLoad)
      ->Arg(0)  // inline on the rank thread
      ->Arg(1)
      ->Arg(2)
      ->Arg(4)
      ->Arg(8)
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.3);
  benchmark::RunSpecifiedBenchmarks();
  ucp::bench::WriteTraceIfRequested(trace_file);
  return 0;
}
