// Checkpoint-server characterization: save/load throughput and latency through the Store
// abstraction, local (direct FS) vs remote (ucp_serverd wire protocol), at 1 / 4 / 16
// concurrent clients.
//
// Arm grid: {save, load} x {local, remote} x {1, 4, 16 clients}. Every client runs the
// same op loop in its own namespace — a save op is the full staged-commit cycle
// (ResetTagStaging / WriteFile / CommitTag), a load op reads one committed payload back
// through OpenRead/ReadAt in wire-chunk-sized pieces. Per-op latencies aggregate to
// p50/p99; throughput is payload bytes moved over the arm's wall time. The remote arms
// all talk to one in-process daemon over a Unix socket, so the numbers measure the wire
// protocol + session/admission machinery against the direct-FS baseline it wraps.
//
// BENCH_server.json carries every arm plus the process metrics (store.server.*,
// io.retry.*) that produced it.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/store/remote_store.h"
#include "src/store/server.h"

namespace ucp {
namespace {

constexpr size_t kPayloadBytes = 1u << 20;  // one wire chunk per shard file
constexpr int kSaveOpsPerClient = 6;
constexpr int kLoadOpsPerClient = 12;

double Percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) {
    return 0.0;
  }
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const size_t idx = std::min(sorted_ms.size() - 1,
                              static_cast<size_t>(q * static_cast<double>(sorted_ms.size())));
  return sorted_ms[idx];
}

std::string BenchMetaJson() {
  CheckpointMeta meta;
  meta.model = TinyGpt();
  meta.strategy = ParallelConfig{1, 1, 1, 1, 0, 1};
  meta.iteration = 1;
  meta.global_batch = bench::kGlobalBatch;
  return meta.ToJson().Dump(2);
}

// One store handle per client: local clients each wrap the dir, remote clients each dial
// their own connection (one session per client, like one training job per rank).
std::shared_ptr<Store> ClientStore(const std::string& backend, const std::string& dir,
                                   const StoreServer* server) {
  if (backend == "remote") {
    Result<std::shared_ptr<RemoteStore>> store = RemoteStore::Connect(server->endpoint());
    UCP_CHECK(store.ok()) << store.status();
    return *store;
  }
  return std::make_shared<LocalStore>(dir);
}

struct ArmResult {
  double seconds = 0.0;
  double throughput_mib_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int64_t ops = 0;
};

ArmResult RunSaveArm(const std::string& backend, const std::string& dir,
                     const StoreServer* server, int clients) {
  const std::string meta_json = BenchMetaJson();
  std::vector<uint8_t> payload(kPayloadBytes);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>((i * 167) & 0xff);
  }

  std::vector<std::vector<double>> latencies(clients);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::shared_ptr<Store> store = ClientStore(backend, dir, server);
      const std::string job = "c" + std::to_string(c);
      for (int op = 0; op < kSaveOpsPerClient; ++op) {
        const std::string tag = job + ".global_step" + std::to_string(op + 1);
        const auto t0 = std::chrono::steady_clock::now();
        UCP_CHECK(store->ResetTagStaging(tag).ok());
        Result<std::unique_ptr<StoreWriter>> writer = store->OpenTagForWrite(tag);
        UCP_CHECK(writer.ok()) << writer.status();
        UCP_CHECK((*writer)->WriteFile("shard", payload).ok());
        UCP_CHECK(store->CommitTag(tag, meta_json).ok());
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                .count());
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  ArmResult result;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  std::vector<double> all;
  for (const std::vector<double>& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  result.ops = static_cast<int64_t>(all.size());
  result.throughput_mib_s =
      result.seconds > 0.0
          ? static_cast<double>(result.ops) * static_cast<double>(kPayloadBytes) /
                (1024.0 * 1024.0) / result.seconds
          : 0.0;
  result.p50_ms = Percentile(all, 0.50);
  result.p99_ms = Percentile(all, 0.99);
  return result;
}

ArmResult RunLoadArm(const std::string& backend, const std::string& dir,
                     const StoreServer* server, int clients) {
  std::vector<std::vector<double>> latencies(clients);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::shared_ptr<Store> store = ClientStore(backend, dir, server);
      // Spread readers across the tags the save arms committed for this client count.
      const std::string rel =
          "c" + std::to_string(c) + ".global_step" + std::to_string(kSaveOpsPerClient) +
          "/shard";
      std::vector<uint8_t> buf(kWireChunkBytes);
      for (int op = 0; op < kLoadOpsPerClient; ++op) {
        const auto t0 = std::chrono::steady_clock::now();
        Result<std::unique_ptr<ByteSource>> source = store->OpenRead(rel);
        UCP_CHECK(source.ok()) << source.status();
        uint64_t offset = 0;
        while (offset < (*source)->size()) {
          const size_t n =
              std::min<uint64_t>(buf.size(), (*source)->size() - offset);
          UCP_CHECK((*source)->ReadAt(offset, buf.data(), n).ok());
          offset += n;
        }
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                .count());
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  ArmResult result;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  std::vector<double> all;
  for (const std::vector<double>& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  result.ops = static_cast<int64_t>(all.size());
  result.throughput_mib_s =
      result.seconds > 0.0
          ? static_cast<double>(result.ops) * static_cast<double>(kPayloadBytes) /
                (1024.0 * 1024.0) / result.seconds
          : 0.0;
  result.p50_ms = Percentile(all, 0.50);
  result.p99_ms = Percentile(all, 0.99);
  return result;
}

// Chaos arm: one client streaming multi-chunk saves through the daemon while the socket
// injector drops the connection mid-WRITE every op. What the arm measures is the
// *resume economics* of the v3 protocol: after each drop the client reconnects under its
// lease, asks WRITE_RESUME how far the server got, and re-sends only the tail. The
// store.client metric deltas split the traffic into resumed (acknowledged, not re-sent)
// vs restarted (sent before the drop, then sent again) bytes — the survivability
// acceptance bound is restarted < 50% of resumed.
struct ChaosResult {
  ArmResult arm;
  int64_t reconnects = 0;
  uint64_t resumed_bytes = 0;
  uint64_t restarted_bytes = 0;
};

ChaosResult RunChaosSaveArm(const StoreServer* server) {
  constexpr size_t kChaosPayloadBytes = 4u << 20;  // 4 wire chunks: drops land mid-file
  constexpr int kChaosOps = 8;
  const std::string meta_json = BenchMetaJson();
  std::vector<uint8_t> payload(kChaosPayloadBytes);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>((i * 131) & 0xff);
  }

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Counter& reconnects = metrics.GetCounter("store.client.reconnects");
  obs::Counter& resumed = metrics.GetCounter("store.client.resumed_bytes");
  obs::Counter& restarted = metrics.GetCounter("store.client.restarted_bytes");
  const uint64_t reconnects0 = reconnects.Value();
  const uint64_t resumed0 = resumed.Value();
  const uint64_t restarted0 = restarted.Value();

  Result<std::shared_ptr<RemoteStore>> store = RemoteStore::Connect(server->endpoint());
  UCP_CHECK(store.ok()) << store.status();

  ChaosResult result;
  std::vector<double> latencies;
  const auto start = std::chrono::steady_clock::now();
  for (int op = 0; op < kChaosOps; ++op) {
    const std::string tag = "chaos.global_step" + std::to_string(op + 1);
    // Drop the connection partway into the op's chunk stream; cycling nth moves the cut
    // point across the file so resumes see varying acked prefixes. (nth counts send
    // *syscalls* — a 1 MiB chunk takes several against a default unix socket buffer.)
    SocketFault fault;
    fault.op = SocketFault::Op::kSend;
    fault.kind = SocketFault::Kind::kEconnreset;
    fault.nth = 5 + 2 * (op % 4);
    ArmSocketFault(fault);
    const auto t0 = std::chrono::steady_clock::now();
    UCP_CHECK((*store)->ResetTagStaging(tag).ok());
    Result<std::unique_ptr<StoreWriter>> writer = (*store)->OpenTagForWrite(tag);
    UCP_CHECK(writer.ok()) << writer.status();
    UCP_CHECK((*writer)->WriteFile("shard", payload).ok());
    UCP_CHECK((*store)->CommitTag(tag, meta_json).ok());
    latencies.push_back(
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count());
    ClearSocketFaults();
  }
  result.arm.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.arm.ops = static_cast<int64_t>(latencies.size());
  result.arm.throughput_mib_s =
      result.arm.seconds > 0.0
          ? static_cast<double>(result.arm.ops) * static_cast<double>(kChaosPayloadBytes) /
                (1024.0 * 1024.0) / result.arm.seconds
          : 0.0;
  result.arm.p50_ms = Percentile(latencies, 0.50);
  result.arm.p99_ms = Percentile(latencies, 0.99);
  result.reconnects = static_cast<int64_t>(reconnects.Value() - reconnects0);
  result.resumed_bytes = resumed.Value() - resumed0;
  result.restarted_bytes = restarted.Value() - restarted0;
  return result;
}

Json ChaosArmJson(const ChaosResult& r) {
  const double resumed_mib = static_cast<double>(r.resumed_bytes) / (1024.0 * 1024.0);
  const double restarted_mib = static_cast<double>(r.restarted_bytes) / (1024.0 * 1024.0);
  const double restart_fraction =
      r.resumed_bytes > 0
          ? static_cast<double>(r.restarted_bytes) / static_cast<double>(r.resumed_bytes)
          : 0.0;
  std::printf(
      "fig15/save-chaos/remote/1: %.3fs, %.1f MiB/s, %lld reconnects, resumed %.1f MiB, "
      "re-sent %.1f MiB (%.0f%% of acked)\n",
      r.arm.seconds, r.arm.throughput_mib_s, static_cast<long long>(r.reconnects),
      resumed_mib, restarted_mib, restart_fraction * 100.0);
  JsonObject arm;
  arm["arm"] = std::string("save-chaos/remote/1");
  arm["workload"] = std::string("save-chaos");
  arm["backend"] = std::string("remote");
  arm["clients"] = static_cast<int64_t>(1);
  arm["ops"] = r.arm.ops;
  arm["seconds"] = r.arm.seconds;
  arm["throughput_mib_s"] = r.arm.throughput_mib_s;
  arm["p50_ms"] = r.arm.p50_ms;
  arm["p99_ms"] = r.arm.p99_ms;
  arm["reconnects"] = r.reconnects;
  arm["resumed_bytes"] = static_cast<int64_t>(r.resumed_bytes);
  arm["restarted_bytes"] = static_cast<int64_t>(r.restarted_bytes);
  arm["restart_fraction_of_acked"] = restart_fraction;
  return Json(std::move(arm));
}

// Guardrail: wire v4 trace propagation (client RPC spans, the TRACE_CONTEXT header, and
// the daemon's per-request handling spans) must stay invisible on the remote save path.
// Same deterministic method as fig11's check — a wall-clock A/B at this scale reads
// socket and fsync jitter, not the tracer:
//
//   1. per-span cost  — tight trivial-span loop, traced minus runtime-disabled, min over
//                       batches;
//   2. spans per save — ring-event delta around one traced remote save (counts BOTH
//                       sides: the daemon is in-process, so its handling spans land in
//                       the same rings);
//   3. overhead       = spans_per_save * per_span_cost / untraced remote-save floor.
//
// Bound: 2%, matching fig11. Real checkpoints only grow the denominator.
Json RunRemoteTracerOverheadCheck(const StoreServer* server) {
  using Clock = std::chrono::steady_clock;
  constexpr double kRelativeBound = 0.02;
  constexpr int kSpansPerBatch = 20000;
  constexpr int kBatches = 5;

  const std::string meta_json = BenchMetaJson();
  std::vector<uint8_t> payload(kPayloadBytes);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>((i * 193) & 0xff);
  }
  Result<std::shared_ptr<RemoteStore>> store = RemoteStore::Connect(server->endpoint());
  UCP_CHECK(store.ok()) << store.status();

  auto save_seconds = [&](int op) {
    const std::string tag = "overhead.global_step" + std::to_string(op);
    const auto t0 = Clock::now();
    UCP_CHECK((*store)->ResetTagStaging(tag).ok());
    Result<std::unique_ptr<StoreWriter>> writer = (*store)->OpenTagForWrite(tag);
    UCP_CHECK(writer.ok()) << writer.status();
    UCP_CHECK((*writer)->WriteFile("shard", payload).ok());
    UCP_CHECK((*store)->CommitTag(tag, meta_json).ok());
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  auto events_recorded = [] {
    uint64_t total = 0;
    for (const obs::ThreadTrace& t : obs::CollectThreadTraces()) {
      total += t.dropped + t.events.size();
    }
    return total;
  };
  auto span_batch_seconds = [] {
    double best = std::numeric_limits<double>::infinity();
    for (int b = 0; b < kBatches; ++b) {
      const auto t0 = Clock::now();
      for (int i = 0; i < kSpansPerBatch; ++i) {
        UCP_TRACE_SPAN("fig15.overhead_probe");
      }
      best = std::min(best, std::chrono::duration<double>(Clock::now() - t0).count());
    }
    return best;
  };

  const bool was_enabled = obs::TraceEnabled();
  obs::SetTraceEnabled(true);
  const double traced_batch = span_batch_seconds();
  obs::SetTraceEnabled(false);
  const double disabled_batch = span_batch_seconds();
  save_seconds(1);  // warm the daemon-side page cache and the session
  double untraced_save = std::numeric_limits<double>::infinity();
  for (int op = 2; op <= 4; ++op) {
    untraced_save = std::min(untraced_save, save_seconds(op));
  }

  obs::SetTraceEnabled(true);
  const uint64_t before = events_recorded();
  const double traced_save = save_seconds(5);
  const uint64_t spans_per_save = events_recorded() - before;
  obs::SetTraceEnabled(was_enabled);

  const double per_span =
      std::max(0.0, (traced_batch - disabled_batch) / kSpansPerBatch);
  const double tracer_seconds = static_cast<double>(spans_per_save) * per_span;
  const double overhead = untraced_save > 0.0 ? tracer_seconds / untraced_save : 0.0;
  const bool within = overhead < kRelativeBound;
  std::printf(
      "fig15/tracer_overhead/remote span=%.0fns spans/save=%llu tracer=%.3fms "
      "save=%.3fms overhead=%.3f%% %s\n",
      per_span * 1e9, static_cast<unsigned long long>(spans_per_save),
      tracer_seconds * 1e3, untraced_save * 1e3, overhead * 100.0,
      within ? "OK" : "FAIL");

  JsonObject doc;
  doc["backend"] = std::string("remote");
  doc["per_span_seconds"] = per_span;
  doc["spans_per_save"] = spans_per_save;
  doc["tracer_seconds_per_save"] = tracer_seconds;
  doc["untraced_save_seconds"] = untraced_save;
  doc["traced_save_seconds"] = traced_save;
  doc["overhead_fraction"] = overhead;
  doc["bound_fraction"] = kRelativeBound;
  doc["within_bound"] = within;
  return Json(std::move(doc));
}

Json ArmJson(const std::string& workload, const std::string& backend, int clients,
             const ArmResult& r) {
  std::printf("fig15/%s/%s/%d: %.3fs, %.1f MiB/s, p50 %.2f ms, p99 %.2f ms (%lld ops)\n",
              workload.c_str(), backend.c_str(), clients, r.seconds, r.throughput_mib_s,
              r.p50_ms, r.p99_ms, static_cast<long long>(r.ops));
  JsonObject arm;
  arm["arm"] = workload + "/" + backend + "/" + std::to_string(clients);
  arm["workload"] = workload;
  arm["backend"] = backend;
  arm["clients"] = static_cast<int64_t>(clients);
  arm["payload_bytes"] = static_cast<int64_t>(kPayloadBytes);
  arm["ops"] = r.ops;
  arm["seconds"] = r.seconds;
  arm["throughput_mib_s"] = r.throughput_mib_s;
  arm["p50_ms"] = r.p50_ms;
  arm["p99_ms"] = r.p99_ms;
  return Json(std::move(arm));
}

}  // namespace
}  // namespace ucp

int main(int argc, char** argv) {
  const std::string trace_file = ucp::bench::ExtractTraceFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);

  ucp::JsonArray arms;
  ucp::Json tracer_overhead;
  for (const char* backend : {"local", "remote"}) {
    const std::string dir =
        ucp::bench::FreshDir(std::string("fig15_server_") + backend);
    std::unique_ptr<ucp::StoreServer> server;
    if (std::string(backend) == "remote") {
      ucp::StoreServerOptions options;
      options.root = dir;
      options.listen = "unix:" + dir + ".sock";
      ucp::Result<std::unique_ptr<ucp::StoreServer>> started =
          ucp::StoreServer::Start(std::move(options));
      UCP_CHECK(started.ok()) << started.status();
      server = std::move(*started);
    }
    for (int clients : {1, 4, 16}) {
      arms.emplace_back(ucp::ArmJson(
          "save", backend, clients,
          ucp::RunSaveArm(backend, dir, server.get(), clients)));
      arms.emplace_back(ucp::ArmJson(
          "load", backend, clients,
          ucp::RunLoadArm(backend, dir, server.get(), clients)));
    }
    if (server != nullptr) {
      arms.emplace_back(ucp::ChaosArmJson(ucp::RunChaosSaveArm(server.get())));
      tracer_overhead = ucp::RunRemoteTracerOverheadCheck(server.get());
      server->Shutdown();
    }
  }

  ucp::JsonObject doc;
  doc["benchmark"] = "fig15_server";
  doc["arms"] = std::move(arms);
  doc["tracer_overhead"] = std::move(tracer_overhead);
  ucp::bench::WriteBenchReport("BENCH_server.json", std::move(doc));
  ucp::bench::WriteTraceIfRequested(trace_file);
  return 0;
}
