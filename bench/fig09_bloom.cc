// Reproduces Figure 9: BLOOM architecture (tied input/output embeddings — the
// replicated-across-pipeline-stages pattern). Paper: Source TP2 PP24 DP8, resumed at
// iteration 94767 under TP2 PP24 DP1.
//
// Scale substitution: BLOOM-176B (L=70) -> BLOOM-like L=8 H=64 tied; PP scaled 24 -> 4 and
// DP 8 -> 2 so the shrink-DP-to-1 elastic scenario is preserved on 16 -> 8 simulated ranks;
// resume point scaled to iteration 100 of 200.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const std::string trace_file = ucp::bench::ExtractTraceFlag(&argc, argv);
  const int rc = ucp::bench::RunArchFigure(
      "fig09_bloom", ucp::BloomScaled(), /*source=*/{2, 4, 2, 1, 1, 1},
      /*targets=*/{{2, 4, 1, 1, 1, 1}},
      /*resume_at=*/100, /*last_iteration=*/200);
  ucp::bench::WriteTraceIfRequested(trace_file);
  return rc;
}
