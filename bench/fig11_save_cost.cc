// Reproduces Figure 11: time to save distributed checkpoints in a standard training process
// vs. a training process with UCP enabled, across three model sizes.
//
// UCP's design makes this a near-tautology by construction (§3.1: conversion is lazy and
// on-demand, so the save path is untouched): "enabling UCP" only drops the pattern-spec
// text file into the checkpoint directory so later out-of-process conversion is
// self-describing. The benchmark quantifies that the overhead is negligible — the paper's
// claim of identical saving cost.
//
// Scale substitution: GPT 1.7B/7B/13B on 8xA100 -> GPT-like S/M/L on 8 simulated ranks
// (TP2 PP2 DP2 ZeRO-1) writing to local disk.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "src/ucp/patterns.h"

namespace ucp {
namespace {

ModelConfig SizedGpt(int num_layers, int hidden) {
  ModelConfig model = Gpt3Scaled();
  model.num_layers = num_layers;
  model.hidden = hidden;
  model.ffn_hidden = 4 * hidden;
  return model;
}

struct Arm {
  const char* size_label;
  ModelConfig model;
};

const std::vector<Arm>& Arms() {
  static const std::vector<Arm> arms = {
      {"gpt-S", SizedGpt(2, 32)},
      {"gpt-M", SizedGpt(4, 64)},
      {"gpt-L", SizedGpt(6, 128)},
  };
  return arms;
}

// One live training run per model size, shared across benchmark iterations.
TrainingRun& RunFor(const Arm& arm) {
  static std::map<std::string, std::unique_ptr<TrainingRun>> runs;
  auto it = runs.find(arm.size_label);
  if (it == runs.end()) {
    auto run = std::make_unique<TrainingRun>(
        bench::MakeConfig(arm.model, {2, 2, 2, 1, 1, 1}));
    run->Train(1, 2);  // a couple of steps so the state is non-trivial
    it = runs.emplace(arm.size_label, std::move(run)).first;
  }
  return *it->second;
}

void BM_SaveStandard(benchmark::State& state, const Arm& arm) {
  TrainingRun& run = RunFor(arm);
  const std::string dir = bench::FreshDir(std::string("fig11_std_") + arm.size_label);
  int64_t iteration = 100;
  for (auto _ : state) {
    bench::SaveAll(run, dir, iteration++);
  }
}

void BM_SaveUcpEnabled(benchmark::State& state, const Arm& arm) {
  TrainingRun& run = RunFor(arm);
  const std::string dir = bench::FreshDir(std::string("fig11_ucp_") + arm.size_label);
  PatternLibrary library =
      PatternLibrary::ForStrategy(arm.model, run.topology().config());
  const std::string spec = library.ToSpec();
  int64_t iteration = 100;
  for (auto _ : state) {
    bench::SaveAll(run, dir, iteration);
    // The only addition with UCP enabled: the declarative pattern spec rides along.
    UCP_CHECK(WriteFileAtomic(PathJoin(PathJoin(dir, TagForIteration(iteration)),
                                       "ucp_pattern_spec.txt"),
                              spec)
                  .ok());
    ++iteration;
  }
}

}  // namespace
}  // namespace ucp

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const auto& arm : ucp::Arms()) {
    benchmark::RegisterBenchmark((std::string("fig11/save_standard/") + arm.size_label).c_str(),
                                 [&arm](benchmark::State& s) { ucp::BM_SaveStandard(s, arm); })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.5);
    benchmark::RegisterBenchmark((std::string("fig11/save_ucp_enabled/") + arm.size_label).c_str(),
                                 [&arm](benchmark::State& s) { ucp::BM_SaveUcpEnabled(s, arm); })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.5);
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
