// Reproduces Figure 11: time to save distributed checkpoints in a standard training process
// vs. a training process with UCP enabled, across three model sizes.
//
// UCP's design makes this a near-tautology by construction (§3.1: conversion is lazy and
// on-demand, so the save path is untouched): "enabling UCP" only drops the pattern-spec
// text file into the checkpoint directory so later out-of-process conversion is
// self-describing. The benchmark quantifies that the overhead is negligible — the paper's
// claim of identical saving cost.
//
// Scale substitution: GPT 1.7B/7B/13B on 8xA100 -> GPT-like S/M/L on 8 simulated ranks
// (TP2 PP2 DP2 ZeRO-1) writing to local disk.
//
// The binary additionally compares the synchronous save path against the asynchronous
// snapshot-then-flush engine on the same 8-rank strategy and emits BENCH_async_save.json:
// per model size, the end-to-end synchronous save time vs. the async engine's
// training-visible blocking time (snapshot only) and total snapshot->commit latency.

#include <benchmark/benchmark.h>

#include <chrono>
#include <limits>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "src/ckpt/async/engine.h"
#include "src/common/json.h"
#include "src/ucp/patterns.h"

namespace ucp {
namespace {

ModelConfig SizedGpt(int num_layers, int hidden) {
  ModelConfig model = Gpt3Scaled();
  model.num_layers = num_layers;
  model.hidden = hidden;
  model.ffn_hidden = 4 * hidden;
  return model;
}

struct Arm {
  const char* size_label;
  ModelConfig model;
};

const std::vector<Arm>& Arms() {
  static const std::vector<Arm> arms = {
      {"gpt-S", SizedGpt(2, 32)},
      {"gpt-M", SizedGpt(4, 64)},
      {"gpt-L", SizedGpt(6, 128)},
  };
  return arms;
}

// One live training run per model size, shared across benchmark iterations.
TrainingRun& RunFor(const Arm& arm) {
  static std::map<std::string, std::unique_ptr<TrainingRun>> runs;
  auto it = runs.find(arm.size_label);
  if (it == runs.end()) {
    auto run = std::make_unique<TrainingRun>(
        bench::MakeConfig(arm.model, {2, 2, 2, 1, 1, 1}));
    run->Train(1, 2);  // a couple of steps so the state is non-trivial
    it = runs.emplace(arm.size_label, std::move(run)).first;
  }
  return *it->second;
}

void BM_SaveStandard(benchmark::State& state, const Arm& arm) {
  TrainingRun& run = RunFor(arm);
  const std::string dir = bench::FreshDir(std::string("fig11_std_") + arm.size_label);
  int64_t iteration = 100;
  for (auto _ : state) {
    bench::SaveAll(run, dir, iteration++);
  }
}

void BM_SaveUcpEnabled(benchmark::State& state, const Arm& arm) {
  TrainingRun& run = RunFor(arm);
  const std::string dir = bench::FreshDir(std::string("fig11_ucp_") + arm.size_label);
  PatternLibrary library =
      PatternLibrary::ForStrategy(arm.model, run.topology().config());
  const std::string spec = library.ToSpec();
  int64_t iteration = 100;
  for (auto _ : state) {
    bench::SaveAll(run, dir, iteration);
    // The only addition with UCP enabled: the declarative pattern spec rides along.
    UCP_CHECK(WriteFileAtomic(PathJoin(PathJoin(dir, TagForIteration(iteration)),
                                       "ucp_pattern_spec.txt"),
                              spec)
                  .ok());
    ++iteration;
  }
}

// Sync vs. async on the shared 8-rank runs. For each model size: time `reps` synchronous
// collective saves, then `reps` async saves where the measured "blocking" span is the wall
// time of the SaveAsync collective (what training actually waits for) and the "total" span
// runs until WaitForIteration observes the commit. Saves are strictly sequential so the
// per-save numbers are not flattered by overlap between checkpoints.
JsonObject RunAsyncSaveComparison() {
  using Clock = std::chrono::steady_clock;
  auto seconds_between = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };
  constexpr int kReps = 3;

  JsonArray arms;
  for (const Arm& arm : Arms()) {
    TrainingRun& run = RunFor(arm);

    const std::string sync_dir =
        bench::FreshDir(std::string("fig11_async_cmp_sync_") + arm.size_label);
    bench::SaveAll(run, sync_dir, 200);  // warm the page cache and allocator
    double sync_seconds = 0.0;
    for (int i = 0; i < kReps; ++i) {
      const auto t0 = Clock::now();
      bench::SaveAll(run, sync_dir, 201 + i);
      sync_seconds += seconds_between(t0, Clock::now());
    }
    sync_seconds /= kReps;

    const std::string async_dir =
        bench::FreshDir(std::string("fig11_async_cmp_async_") + arm.size_label);
    AsyncCheckpointOptions options;
    options.flush_threads = 2;
    options.max_in_flight = 2;
    AsyncCheckpointEngine engine(async_dir, run.world_size(), options);
    auto save_async = [&](int64_t iteration) {
      run.Run([&](RankTrainer& t) {
        Status s = engine.SaveAsync(t, iteration);
        UCP_CHECK(s.ok()) << s.ToString();
      });
    };
    save_async(200);  // warm-up save populates the per-rank snapshot freelists
    UCP_CHECK(engine.WaitForIteration(200).ok());
    double blocking_seconds = 0.0;
    double total_seconds = 0.0;
    for (int i = 0; i < kReps; ++i) {
      const int64_t iteration = 201 + i;
      const auto t0 = Clock::now();
      save_async(iteration);
      blocking_seconds += seconds_between(t0, Clock::now());
      UCP_CHECK(engine.WaitForIteration(iteration).ok());
      total_seconds += seconds_between(t0, Clock::now());
    }
    blocking_seconds /= kReps;
    total_seconds /= kReps;
    UCP_CHECK(engine.WaitAll().ok());
    const AsyncSaveStats stats = engine.stats();

    const double fraction = blocking_seconds / sync_seconds;
    std::printf(
        "fig11/async_save/%s sync=%.3fms async_blocking=%.3fms async_total=%.3fms "
        "blocking/sync=%.1f%%\n",
        arm.size_label, sync_seconds * 1e3, blocking_seconds * 1e3, total_seconds * 1e3,
        fraction * 100.0);

    JsonObject entry;
    entry["model"] = arm.size_label;
    entry["sync_save_seconds"] = sync_seconds;
    entry["async_blocking_seconds"] = blocking_seconds;
    entry["async_total_seconds"] = total_seconds;
    entry["blocking_fraction_of_sync"] = fraction;
    entry["commits"] = stats.commits;
    entry["bytes_flushed_per_save"] = stats.bytes_flushed / stats.commits;
    arms.emplace_back(std::move(entry));
  }

  JsonObject doc;
  doc["benchmark"] = "fig11_async_save";
  doc["strategy"] = ParallelConfig{2, 2, 2, 1, 1, 1}.ToString();
  doc["world_size"] = 8;
  doc["saves_per_arm"] = kReps;
  doc["arms"] = std::move(arms);
  return doc;
}

// Incremental arm: dirty-chunk tracking + content-addressed dedup on the flush path. Per
// model size, a cold incremental save (every chunk is new) followed by a warm save of the
// same state (every chunk dedups against the index; only the manifests and metadata hit
// the disk). Reported per save: logical bytes flushed, physical bytes written, the warm
// save's physical fraction of the cold save (acceptance bound: <= 30%), and the warm
// dedup-hit ratio. Compression is off so the numbers isolate dedup; the chunk-object
// header overhead (13 bytes per 64 KiB chunk) is included in the physical column.
Json RunIncrementalSaveComparison() {
  constexpr double kWarmFractionBound = 0.30;
  JsonArray arms;
  for (const Arm& arm : Arms()) {
    TrainingRun& run = RunFor(arm);
    const std::string dir =
        bench::FreshDir(std::string("fig11_incremental_") + arm.size_label);
    AsyncCheckpointOptions options;
    options.flush_threads = 2;
    options.max_in_flight = 2;
    options.incremental = true;
    AsyncCheckpointEngine engine(dir, run.world_size(), options);
    auto save_async = [&](int64_t iteration) {
      run.Run([&](RankTrainer& t) {
        Status s = engine.SaveAsync(t, iteration);
        UCP_CHECK(s.ok()) << s.ToString();
      });
      UCP_CHECK(engine.WaitForIteration(iteration).ok());
    };
    save_async(400);
    const AsyncSaveStats cold = engine.stats();
    save_async(401);
    const AsyncSaveStats after_warm = engine.stats();
    UCP_CHECK(engine.WaitAll().ok());

    const int64_t warm_written = after_warm.bytes_written - cold.bytes_written;
    const int64_t warm_flushed_chunks = after_warm.chunks_flushed - cold.chunks_flushed;
    const int64_t warm_deduped_chunks = after_warm.chunks_deduped - cold.chunks_deduped;
    const int64_t warm_chunks = warm_flushed_chunks + warm_deduped_chunks;
    const double warm_fraction =
        cold.bytes_written > 0
            ? static_cast<double>(warm_written) / static_cast<double>(cold.bytes_written)
            : 0.0;
    const double dedup_hit =
        warm_chunks > 0
            ? static_cast<double>(warm_deduped_chunks) / static_cast<double>(warm_chunks)
            : 0.0;
    const bool within = warm_fraction <= kWarmFractionBound;
    std::printf(
        "fig11/incremental/%s cold_written=%lld warm_written=%lld warm/cold=%.2f%% "
        "dedup_hit=%.1f%% %s\n",
        arm.size_label, static_cast<long long>(cold.bytes_written),
        static_cast<long long>(warm_written), warm_fraction * 100.0, dedup_hit * 100.0,
        within ? "OK" : "FAIL");

    JsonObject entry;
    entry["model"] = arm.size_label;
    entry["bytes_flushed_per_save"] = after_warm.bytes_flushed / after_warm.commits;
    entry["cold_bytes_written"] = cold.bytes_written;
    entry["warm_bytes_written"] = warm_written;
    entry["warm_fraction_of_cold"] = warm_fraction;
    entry["warm_chunks_total"] = warm_chunks;
    entry["warm_chunks_deduped"] = warm_deduped_chunks;
    entry["dedup_hit_ratio"] = dedup_hit;
    entry["bound_fraction"] = kWarmFractionBound;
    entry["within_bound"] = within;
    arms.emplace_back(std::move(entry));
  }
  JsonObject doc;
  doc["arms"] = std::move(arms);
  return Json(std::move(doc));
}

// Guardrail: the span tracer must stay invisible on the save path. These toy-scale saves
// are fsync-dominated with multi-millisecond run-to-run jitter — orders of magnitude above
// any plausible tracer cost — so a wall-clock A/B of traced vs untraced saves reads the
// filesystem's mood, not the tracer (we tried: min-of-reps and median-of-paired-deltas
// both swing ±10%). Instead the overhead is bounded deterministically:
//
//   1. per-span cost  — a tight loop of trivial spans, traced minus runtime-disabled,
//                       min over batches (stable to ~ns);
//   2. spans per save — counted from the rings around one traced save;
//   3. overhead       = spans_per_save * per_span_cost / untraced save floor,
//
// which is exactly the tracer's contribution to the fig11 save path, free of fsync noise.
// Bound: 2%. At real checkpoint sizes the denominator only grows, so this is conservative.
Json RunTracerOverheadCheck() {
  using Clock = std::chrono::steady_clock;
  constexpr double kRelativeBound = 0.02;
  constexpr int kSpansPerBatch = 20000;
  constexpr int kBatches = 5;

  const Arm& arm = Arms()[1];  // gpt-M: large enough to measure, small enough to repeat
  TrainingRun& run = RunFor(arm);
  const std::string dir = bench::FreshDir("fig11_tracer_overhead");
  bench::SaveAll(run, dir, 300);  // warm the page cache and allocator

  auto save_seconds = [&](int64_t iteration) {
    const auto t0 = Clock::now();
    bench::SaveAll(run, dir, iteration);
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  auto events_recorded = [] {
    uint64_t total = 0;
    for (const obs::ThreadTrace& t : obs::CollectThreadTraces()) {
      total += t.dropped + t.events.size();
    }
    return total;
  };
  auto span_batch_seconds = [] {
    double best = std::numeric_limits<double>::infinity();
    for (int b = 0; b < kBatches; ++b) {
      const auto t0 = Clock::now();
      for (int i = 0; i < kSpansPerBatch; ++i) {
        UCP_TRACE_SPAN("fig11.overhead_probe");
      }
      best = std::min(best, std::chrono::duration<double>(Clock::now() - t0).count());
    }
    return best;
  };

  const bool was_enabled = obs::TraceEnabled();
  obs::SetTraceEnabled(true);
  const double traced_batch = span_batch_seconds();
  obs::SetTraceEnabled(false);
  const double disabled_batch = span_batch_seconds();
  const double untraced_save = save_seconds(301);

  obs::SetTraceEnabled(true);
  const uint64_t before = events_recorded();
  const double traced_save = save_seconds(302);
  const uint64_t spans_per_save = events_recorded() - before;
  obs::SetTraceEnabled(was_enabled);

  const double per_span =
      std::max(0.0, (traced_batch - disabled_batch) / kSpansPerBatch);
  const double tracer_seconds = static_cast<double>(spans_per_save) * per_span;
  const double overhead = untraced_save > 0.0 ? tracer_seconds / untraced_save : 0.0;
  const bool within = overhead < kRelativeBound;
  std::printf(
      "fig11/tracer_overhead span=%.0fns spans/save=%llu tracer=%.3fms save=%.3fms "
      "overhead=%.3f%% %s\n",
      per_span * 1e9, static_cast<unsigned long long>(spans_per_save),
      tracer_seconds * 1e3, untraced_save * 1e3, overhead * 100.0,
      within ? "OK" : "FAIL");

  JsonObject doc;
  doc["per_span_seconds"] = per_span;
  doc["spans_per_save"] = spans_per_save;
  doc["tracer_seconds_per_save"] = tracer_seconds;
  doc["untraced_save_seconds"] = untraced_save;
  doc["traced_save_seconds"] = traced_save;
  doc["overhead_fraction"] = overhead;
  doc["bound_fraction"] = kRelativeBound;
  doc["within_bound"] = within;
  return Json(std::move(doc));
}

}  // namespace
}  // namespace ucp

int main(int argc, char** argv) {
  const std::string trace_file = ucp::bench::ExtractTraceFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  for (const auto& arm : ucp::Arms()) {
    benchmark::RegisterBenchmark((std::string("fig11/save_standard/") + arm.size_label).c_str(),
                                 [&arm](benchmark::State& s) { ucp::BM_SaveStandard(s, arm); })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.5);
    benchmark::RegisterBenchmark((std::string("fig11/save_ucp_enabled/") + arm.size_label).c_str(),
                                 [&arm](benchmark::State& s) { ucp::BM_SaveUcpEnabled(s, arm); })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.5);
  }
  benchmark::RunSpecifiedBenchmarks();

  ucp::JsonObject report = ucp::RunAsyncSaveComparison();
  report["incremental"] = ucp::RunIncrementalSaveComparison();
  report["tracer_overhead"] = ucp::RunTracerOverheadCheck();
  ucp::bench::WriteBenchReport("BENCH_async_save.json", std::move(report));
  ucp::bench::WriteTraceIfRequested(trace_file);
  return 0;
}
