// Shared helpers for the evaluation-reproduction harnesses (one binary per paper
// table/figure; see EXPERIMENTS.md for the index).

#ifndef UCP_BENCH_BENCH_UTIL_H_
#define UCP_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/common/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/trainer.h"
#include "src/ucp/converter.h"
#include "src/ucp/loader.h"

namespace ucp {
namespace bench {

// The evaluation workload scale: a compromise between visible convergence and wall time.
inline constexpr int kGlobalBatch = 8;

inline TrainerConfig MakeConfig(const ModelConfig& model, const ParallelConfig& strategy,
                                int decay_iters = 200) {
  TrainerConfig cfg;
  cfg.model = model;
  cfg.strategy = strategy;
  cfg.global_batch = kGlobalBatch;
  cfg.lr.max_lr = 1e-3f;
  cfg.lr.min_lr = 1e-5f;
  cfg.lr.warmup_iters = 10;
  cfg.lr.decay_iters = decay_iters;
  return cfg;
}

inline void SaveAll(TrainingRun& run, const std::string& dir, int64_t iteration) {
  run.Run([&](RankTrainer& t) {
    Status s = SaveDistributedCheckpoint(dir, t, iteration);
    UCP_CHECK(s.ok()) << s.ToString();
  });
}

inline void LoadUcpAll(TrainingRun& run, const std::string& ucp_dir) {
  run.Run([&](RankTrainer& t) {
    Status s = LoadUcpCheckpoint(ucp_dir, t);
    UCP_CHECK(s.ok()) << s.ToString();
  });
}

inline std::string FreshDir(const std::string& name) {
  std::string dir = "/tmp/ucp_bench/" + name;
  UCP_CHECK(RemoveAll(dir).ok());
  UCP_CHECK(MakeDirs(dir).ok());
  return dir;
}

// The metrics registry as a JSON object: metric name -> value (counters/gauges) or
// {count, sum, mean, max, p50, p99} (histograms). Embedded into every BENCH_*.json so a
// result file carries the io/comm/save counters that produced it.
inline Json MetricsJson() {
  JsonObject doc;
  for (const obs::MetricValue& m : obs::SnapshotMetrics()) {
    switch (m.kind) {
      case obs::MetricValue::Kind::kCounter:
        doc[m.name] = m.counter;
        break;
      case obs::MetricValue::Kind::kGauge:
        doc[m.name] = m.gauge;
        break;
      case obs::MetricValue::Kind::kHistogram: {
        JsonObject h;
        h["count"] = m.count;
        h["sum"] = m.sum;
        h["mean"] = m.mean;
        h["max"] = m.max;
        h["p50"] = m.p50;
        h["p99"] = m.p99;
        doc[m.name] = std::move(h);
        break;
      }
    }
  }
  return Json(std::move(doc));
}

// Stamps the process metrics snapshot into `doc` and writes it atomically. Every bench
// report goes through here so BENCH_*.json files share the metrics embed.
inline void WriteBenchReport(const std::string& path, JsonObject doc) {
  doc["metrics"] = MetricsJson();
  UCP_CHECK(WriteFileAtomic(path, Json(std::move(doc)).Dump(2)).ok());
  std::printf("wrote %s\n", path.c_str());
}

// Strips a `--trace=FILE` argument (call before benchmark::Initialize, which rejects
// unknown flags). Returns the FILE, or "" when absent.
inline std::string ExtractTraceFlag(int* argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strncmp(argv[r], "--trace=", 8) == 0) {
      path = argv[r] + 8;
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return path;
}

// Writes the process Chrome trace to `path` when non-empty (call once, at process end).
inline void WriteTraceIfRequested(const std::string& path) {
  if (path.empty()) {
    return;
  }
  UCP_CHECK(WriteFileAtomic(path, obs::ExportChromeTraceJson()).ok());
  std::printf("wrote %s\n", path.c_str());
}

// Prints a loss series as CSV rows: <series>,<iteration>,<loss>.
inline void PrintSeries(const std::string& series, int64_t first_iteration,
                        const std::vector<double>& losses) {
  for (size_t i = 0; i < losses.size(); ++i) {
    std::printf("%s,%lld,%.4f\n", series.c_str(),
                static_cast<long long>(first_iteration + static_cast<int64_t>(i)),
                losses[i]);
  }
}

// Loss at a 1-based iteration from a series starting at first_iteration.
inline double LossAt(const std::vector<double>& losses, int64_t first_iteration,
                     int64_t iteration) {
  return losses[static_cast<size_t>(iteration - first_iteration)];
}

// Shared driver for the architecture figures (Figs. 8-10): train `model` under `source`,
// checkpoint at `resume_at`, convert to UCP, resume under each target, and verify every
// resumed curve tracks the continued source within `tolerance`. Returns the number of
// targets that failed the bound.
inline int RunArchFigure(const std::string& figure, const ModelConfig& model,
                         const ParallelConfig& source_strategy,
                         const std::vector<ParallelConfig>& targets, int64_t resume_at,
                         int64_t last_iteration, double tolerance = 0.02) {
  const std::string dir = FreshDir(figure);
  std::printf("# %s: arch=%s source=%s resume@%lld\n", figure.c_str(),
              ArchKindName(model.arch), source_strategy.ToString().c_str(),
              static_cast<long long>(resume_at));
  std::printf("series,iteration,lm_loss\n");

  TrainingRun source(MakeConfig(model, source_strategy,
                                static_cast<int>(last_iteration)));
  std::vector<double> source_losses = source.Train(1, resume_at);
  SaveAll(source, dir + "/ckpt", resume_at);
  std::vector<double> tail = source.Train(resume_at + 1, last_iteration);
  source_losses.insert(source_losses.end(), tail.begin(), tail.end());
  PrintSeries("source_" + source_strategy.ToString(), 1, source_losses);

  Result<ConvertStats> stats = ConvertToUcp(dir + "/ckpt", TagForIteration(resume_at),
                                            dir + "/ucp", {.num_threads = 4});
  UCP_CHECK(stats.ok()) << stats.status().ToString();
  std::printf("# UCP conversion: %d atoms\n", stats->atoms_written);

  int failures = 0;
  for (const ParallelConfig& target : targets) {
    TrainingRun run(MakeConfig(model, target, static_cast<int>(last_iteration)));
    LoadUcpAll(run, dir + "/ucp");
    std::vector<double> losses = run.Train(resume_at + 1, last_iteration);
    PrintSeries("target_" + target.ToString(), resume_at + 1, losses);
    double max_delta = 0.0;
    for (size_t i = 0; i < losses.size(); ++i) {
      max_delta = std::max(
          max_delta,
          std::fabs(losses[i] - source_losses[static_cast<size_t>(resume_at) + i]));
    }
    std::printf("# target %-18s max|resumed - continued| = %.4f %s\n",
                target.ToString().c_str(), max_delta,
                max_delta < tolerance ? "OK" : "FAIL");
    failures += max_delta < tolerance ? 0 : 1;
  }
  if (failures == 0) {
    std::printf("# PASS: %s resumes consistently under all targets\n", figure.c_str());
  }
  return failures;
}

}  // namespace bench
}  // namespace ucp

#endif  // UCP_BENCH_BENCH_UTIL_H_
