// Reproduces Figure 7: train the GPT model under several different Source strategies (fixed
// seed), convert each checkpoint at iteration 100 to UCP, and resume every one of them under
// a single Target (TP2 PP2 DP1). Each resumed curve must track its own source's continued
// run — validating that arbitrary Sources convert into the same Target.

#include "bench/bench_util.h"

namespace ucp {
namespace {

using bench::LoadUcpAll;
using bench::MakeConfig;
using bench::PrintSeries;
using bench::SaveAll;

int Main() {
  const ModelConfig model = Gpt3Scaled();
  const ParallelConfig target_strategy{2, 2, 1, 1, 1, 1};

  const std::vector<ParallelConfig> sources = {
      {2, 2, 2, 1, 1, 1},  // the Fig. 6 source (3-D parallel)
      {1, 1, 4, 1, 2, 1},  // pure ZeRO-2 data parallelism
      {2, 1, 2, 1, 1, 1},  // TP + DP
      {1, 2, 2, 1, 1, 2},  // PP + DP with gradient accumulation
      {1, 1, 2, 1, 3, 1},  // ZeRO-3
  };

  std::printf("# Fig. 7: multiple Sources -> single Target (%s)\n",
              target_strategy.ToString().c_str());
  std::printf("series,iteration,lm_loss\n");

  int failures = 0;
  for (const ParallelConfig& src : sources) {
    const std::string name = src.ToString();
    const std::string dir = bench::FreshDir("fig07_" + name);

    TrainingRun source(MakeConfig(model, src));
    std::vector<double> source_losses = source.Train(1, 100);
    SaveAll(source, dir + "/ckpt", 100);
    std::vector<double> tail = source.Train(101, 200);
    source_losses.insert(source_losses.end(), tail.begin(), tail.end());
    PrintSeries("source_" + name, 1, source_losses);

    Result<ConvertStats> stats =
        ConvertToUcp(dir + "/ckpt", TagForIteration(100), dir + "/ucp", {.num_threads = 4});
    UCP_CHECK(stats.ok()) << stats.status().ToString();

    TrainingRun resumed(MakeConfig(model, target_strategy));
    LoadUcpAll(resumed, dir + "/ucp");
    std::vector<double> resumed_losses = resumed.Train(101, 200);
    PrintSeries("resumed_from_" + name, 101, resumed_losses);

    double max_delta = 0.0;
    for (size_t i = 0; i < resumed_losses.size(); ++i) {
      max_delta = std::max(max_delta,
                           std::fabs(resumed_losses[i] - source_losses[100 + i]));
    }
    std::printf("# source %-18s max|resumed - continued| = %.4f %s\n", name.c_str(),
                max_delta, max_delta < 0.02 ? "OK" : "FAIL");
    failures += max_delta < 0.02 ? 0 : 1;
  }
  if (failures == 0) {
    std::printf("# PASS: every Source converges identically after conversion to the common "
                "Target\n");
  }
  return failures;
}

}  // namespace
}  // namespace ucp

int main(int argc, char** argv) {
  const std::string trace_file = ucp::bench::ExtractTraceFlag(&argc, argv);
  const int rc = ucp::Main();
  ucp::bench::WriteTraceIfRequested(trace_file);
  return rc;
}
