// Reproduces Figure 8: LLaMA architecture (RMSNorm, SwiGLU, GQA — the variable-size fused
// QKV sub-pattern). Source TP2 PP2 DP2; resumed at iteration 101 under the paper's two new
// Targets: TP2 PP1 DP2 and TP2 PP2 DP1.
//
// Scale substitution: LLaMA-7B -> LLaMA-like L=4 H=64 with GQA (kv_heads=2); 200 iterations.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const std::string trace_file = ucp::bench::ExtractTraceFlag(&argc, argv);
  const int rc = ucp::bench::RunArchFigure(
      "fig08_llama", ucp::LlamaScaled(), /*source=*/{2, 2, 2, 1, 1, 1},
      /*targets=*/{{2, 1, 2, 1, 1, 1}, {2, 2, 1, 1, 1, 1}},
      /*resume_at=*/100, /*last_iteration=*/200);
  ucp::bench::WriteTraceIfRequested(trace_file);
  return rc;
}
