// Reproduces Figure 12: time to load a normal distributed checkpoint (standard resume, same
// strategy) vs. converting that checkpoint to UCP and then loading the UCP checkpoint,
// across three model sizes. The paper reports the UCP path at 1.14x-1.37x of standard
// loading; the *shape* to reproduce is a small constant-factor overhead, dominated by the
// one-time Extract/Union pass.
//
// Both arms use the same GPU count and strategy (TP2 PP2 DP2 ZeRO-1), exactly as in the
// paper ("standard distributed checkpoints cannot be loaded when there are changes in GPU
// counts or parallelism strategies").
//
// A second comparison isolates the UCP load executor itself — serial whole-file assembly
// vs the sliced parallel path (partition-pruned pread range reads + slice cache) — and
// emits BENCH_load_cost.json with wall-clock and bytes-read-per-rank for both arms.

#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "src/tensor/tensor_file.h"
#include "src/ucp/slice_cache.h"

namespace ucp {
namespace {

ModelConfig SizedGpt(int num_layers, int hidden) {
  ModelConfig model = Gpt3Scaled();
  model.num_layers = num_layers;
  model.hidden = hidden;
  model.ffn_hidden = 4 * hidden;
  return model;
}

struct Arm {
  const char* size_label;
  ModelConfig model;
};

const std::vector<Arm>& Arms() {
  static const std::vector<Arm> arms = {
      {"gpt-S", SizedGpt(2, 32)},
      {"gpt-M", SizedGpt(4, 64)},
      {"gpt-L", SizedGpt(6, 128)},
  };
  return arms;
}

const ParallelConfig kStrategy{2, 2, 2, 1, 1, 1};

struct Fixture {
  std::string ckpt_dir;
  std::unique_ptr<TrainingRun> run;  // the target run that loads
};

Fixture& FixtureFor(const Arm& arm) {
  static std::map<std::string, Fixture> fixtures;
  auto it = fixtures.find(arm.size_label);
  if (it == fixtures.end()) {
    Fixture f;
    f.ckpt_dir = bench::FreshDir(std::string("fig12_") + arm.size_label);
    TrainingRun source(bench::MakeConfig(arm.model, kStrategy));
    source.Train(1, 2);
    bench::SaveAll(source, f.ckpt_dir, 2);
    f.run = std::make_unique<TrainingRun>(bench::MakeConfig(arm.model, kStrategy));
    it = fixtures.emplace(arm.size_label, std::move(f)).first;
  }
  return it->second;
}

void BM_LoadStandard(benchmark::State& state, const Arm& arm) {
  Fixture& f = FixtureFor(arm);
  for (auto _ : state) {
    f.run->Run([&](RankTrainer& t) {
      Status s = LoadDistributedCheckpoint(f.ckpt_dir, TagForIteration(2), t);
      UCP_CHECK(s.ok()) << s.ToString();
    });
  }
}

void BM_ConvertAndLoadUcp(benchmark::State& state, const Arm& arm) {
  Fixture& f = FixtureFor(arm);
  const std::string ucp_dir = "/tmp/ucp_bench/fig12_ucp_" + std::string(arm.size_label);
  for (auto _ : state) {
    state.PauseTiming();
    UCP_CHECK(RemoveAll(ucp_dir).ok());
    state.ResumeTiming();
    // The measured quantity: lazy conversion (the cost paid only when the strategy
    // changes) + UCP load.
    Result<ConvertStats> stats =
        ConvertToUcp(f.ckpt_dir, TagForIteration(2), ucp_dir, {.num_threads = 4});
    UCP_CHECK(stats.ok()) << stats.status().ToString();
    bench::LoadUcpAll(*f.run, ucp_dir);
  }
}

void run_with_options(TrainingRun& run, const std::string& ucp_dir,
                      const UcpLoadOptions& options) {
  run.Run([&](RankTrainer& t) {
    Status s = LoadUcpCheckpoint(ucp_dir, t, options);
    UCP_CHECK(s.ok()) << s.ToString();
  });
}

// Serial whole-file assembly vs the sliced parallel executor, on an already-converted UCP
// checkpoint (the one-time conversion cost is fig12's other comparison, above). Reports
// wall-clock and bytes-read-per-rank for both arms into BENCH_load_cost.json.
JsonObject RunLoadComparison() {
  using Clock = std::chrono::steady_clock;
  auto seconds_between = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };
  constexpr int kReps = 3;
  const int world = kStrategy.world_size();

  JsonArray arms;
  for (const Arm& arm : Arms()) {
    Fixture& f = FixtureFor(arm);
    const std::string ucp_dir =
        "/tmp/ucp_bench/fig12_loadcmp_ucp_" + std::string(arm.size_label);
    UCP_CHECK(RemoveAll(ucp_dir).ok());
    Result<ConvertStats> stats =
        ConvertToUcp(f.ckpt_dir, TagForIteration(2), ucp_dir, {.num_threads = 4});
    UCP_CHECK(stats.ok()) << stats.status().ToString();

    auto run_arm = [&](const UcpLoadOptions& options, uint64_t* bytes_per_rank,
                       uint64_t* cache_hits) {
      // Warm-up rep excluded from timing (first touch pays page-cache population for both
      // arms alike; steady-state is the quantity of interest).
      run_with_options(*f.run, ucp_dir, options);
      AtomSliceCache::Global().ResetStats();
      ResetTensorIoStats();
      const auto t0 = Clock::now();
      for (int i = 0; i < kReps; ++i) {
        run_with_options(*f.run, ucp_dir, options);
      }
      const double seconds = seconds_between(t0, Clock::now()) / kReps;
      *bytes_per_rank =
          GetTensorIoStats().bytes_read / static_cast<uint64_t>(kReps * world);
      *cache_hits = AtomSliceCache::Global().stats().hits / kReps;
      return seconds;
    };

    uint64_t serial_bytes = 0, sliced_bytes = 0, serial_hits = 0, sliced_hits = 0;
    const double serial_seconds =
        run_arm({.sliced = false}, &serial_bytes, &serial_hits);
    const double sliced_seconds = run_arm(
        {.num_threads = 8, .sliced = true, .use_slice_cache = true}, &sliced_bytes,
        &sliced_hits);

    const double fraction =
        static_cast<double>(sliced_bytes) / static_cast<double>(serial_bytes);
    const double speedup = serial_seconds / sliced_seconds;
    std::printf(
        "fig12/ucp_load/%s serial=%.3fms sliced=%.3fms speedup=%.2fx "
        "bytes/rank %llu -> %llu (%.1f%%) cache_hits/load=%llu\n",
        arm.size_label, serial_seconds * 1e3, sliced_seconds * 1e3, speedup,
        static_cast<unsigned long long>(serial_bytes),
        static_cast<unsigned long long>(sliced_bytes), fraction * 100.0,
        static_cast<unsigned long long>(sliced_hits));

    JsonObject entry;
    entry["model"] = arm.size_label;
    entry["serial_whole_file_seconds"] = serial_seconds;
    entry["sliced_parallel_seconds"] = sliced_seconds;
    entry["speedup"] = speedup;
    entry["serial_bytes_read_per_rank"] = static_cast<int64_t>(serial_bytes);
    entry["sliced_bytes_read_per_rank"] = static_cast<int64_t>(sliced_bytes);
    entry["sliced_bytes_fraction_of_serial"] = fraction;
    entry["slice_cache_hits_per_load"] = static_cast<int64_t>(sliced_hits);
    arms.emplace_back(std::move(entry));
  }

  JsonObject doc;
  doc["benchmark"] = "fig12_ucp_load_serial_vs_sliced";
  doc["strategy"] = kStrategy.ToString();
  doc["world_size"] = world;
  doc["loader_threads"] = 8;
  doc["loads_per_arm"] = kReps;
  doc["arms"] = std::move(arms);
  return doc;
}

}  // namespace
}  // namespace ucp

namespace ucp {
namespace {

// Projects the measurement to paper scale with the NVMe transfer model (DESIGN.md): at
// simulator scale, per-file costs dominate and inflate the UCP ratio; with multi-GB
// checkpoints the payload dominates, parallel conversion amortizes across workers, and the
// ratio falls toward the paper's 1.14x-1.37x.
void PrintModeledProjection() {
  struct PaperModel {
    const char* name;
    double params;
  };
  const PaperModel models[] = {{"gpt-1.7B", 1.7e9}, {"gpt-7B", 7e9}, {"gpt-13B", 13e9}};
  const int ranks = 8;        // parallel per-rank loads
  const int workers = 8;      // conversion parallelism
  std::printf("\n# modeled NVMe projection (3.2 GB/s/device, %d ranks, %d convert workers)\n",
              ranks, workers);
  std::printf("# %-10s %14s %18s %8s\n", "model", "std_load_s", "convert+ucp_load_s",
              "ratio");
  for (const PaperModel& m : models) {
    double optim_bytes = 12.0 * m.params;            // fp32 master + exp_avg + exp_avg_sq
    double model_bytes = 4.0 * m.params;             // published weights
    double standard = ModeledTransferSeconds(
        static_cast<int64_t>((optim_bytes + model_bytes) / ranks), 2);
    double convert = ModeledTransferSeconds(
        static_cast<int64_t>(2.0 * optim_bytes / workers), 64);  // read + write, parallel
    double ucp_load =
        ModeledTransferSeconds(static_cast<int64_t>(optim_bytes / ranks), 32);
    std::printf("# %-10s %14.2f %18.2f %8.2fx\n", m.name, standard, convert + ucp_load,
                (convert + ucp_load) / standard);
  }
}

}  // namespace
}  // namespace ucp

int main(int argc, char** argv) {
  const std::string trace_file = ucp::bench::ExtractTraceFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  for (const auto& arm : ucp::Arms()) {
    benchmark::RegisterBenchmark(
        (std::string("fig12/load_standard/") + arm.size_label).c_str(),
        [&arm](benchmark::State& s) { ucp::BM_LoadStandard(s, arm); })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.5);
    benchmark::RegisterBenchmark(
        (std::string("fig12/convert_and_load_ucp/") + arm.size_label).c_str(),
        [&arm](benchmark::State& s) { ucp::BM_ConvertAndLoadUcp(s, arm); })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.5);
  }
  benchmark::RunSpecifiedBenchmarks();

  ucp::bench::WriteBenchReport("BENCH_load_cost.json", ucp::RunLoadComparison());
  ucp::bench::WriteTraceIfRequested(trace_file);

  ucp::PrintModeledProjection();
  return 0;
}
