// Recovery-time split after a mid-run rank failure: native restart vs reconfigured resume.
//
// Both arms share one kill scenario — TP2.PP2.DP2 (8 ranks), async checkpoint every 5
// iterations, the last rank killed inside the gradient all-reduce of iteration 8, a short
// watchdog so detection dominates neither arm. The supervisor then recovers two ways:
//
//   native_restart      — rebuild_same_strategy: the failed slot is assumed re-provisioned,
//                         so resume loads the committed global_step5 through the strict
//                         native loader (the "wait for a replacement node" baseline).
//   reconfigured_resume — the UCP path: shrink to the 7 surviving slots (DP first ->
//                         TP2.PP2.DP1 on 4 ranks), convert the checkpoint through UCP, and
//                         continue degraded immediately.
//
// BENCH_recovery.json reports the detect / teardown / rebuild / convert / load split per
// arm (RecoveryTiming, as measured by the supervisor). The paper-level point: the
// reconfigured arm pays a one-time conversion but needs no replacement hardware, and the
// split shows where that time goes.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/common/json.h"
#include "src/runtime/supervisor.h"

namespace ucp {
namespace {

constexpr int64_t kLastIteration = 15;
constexpr int64_t kKillIteration = 8;
constexpr int kVictim = 7;

Json RunArm(const char* label, bool rebuild_same_strategy) {
  const std::string dir = bench::FreshDir(std::string("fig13_") + label);
  TrainerConfig cfg = bench::MakeConfig(Gpt3Scaled(), {2, 2, 2, 1, 1, 1});

  SupervisorOptions options;
  options.ckpt_dir = dir + "/ckpt";
  options.checkpoint_every = 5;
  options.watchdog_timeout = std::chrono::milliseconds(300);
  options.rebuild_same_strategy = rebuild_same_strategy;
  Supervisor supervisor(cfg, options);

  ArmRankFault({kVictim, kKillIteration, FaultSite::kAllReduce, /*nth=*/1});
  SupervisorReport report = supervisor.Train(1, kLastIteration);
  DisarmRankFaults();
  UCP_CHECK(report.ok) << report.status.ToString();
  UCP_CHECK(report.recoveries == 1);
  const RecoveryTiming& t = report.timings[0];

  std::printf(
      "fig13/%s: detect=%.3fs teardown=%.3fs rebuild=%.3fs convert=%.3fs load=%.3fs "
      "total=%.3fs (%s -> %s, resumed %s)\n",
      label, t.detect_seconds, t.teardown_seconds, t.rebuild_seconds, t.convert_seconds,
      t.load_seconds, t.total_seconds, t.old_strategy.ToString().c_str(),
      t.new_strategy.ToString().c_str(), t.resumed_tag.c_str());

  JsonObject arm;
  arm["arm"] = label;
  arm["old_strategy"] = t.old_strategy.ToString();
  arm["new_strategy"] = t.new_strategy.ToString();
  arm["resumed_tag"] = t.resumed_tag;
  arm["resume_path"] = t.resume_path == ResumeReport::Path::kNative ? "native" : "ucp";
  arm["detect_seconds"] = t.detect_seconds;
  arm["teardown_seconds"] = t.teardown_seconds;
  arm["rebuild_seconds"] = t.rebuild_seconds;
  arm["convert_seconds"] = t.convert_seconds;
  arm["load_seconds"] = t.load_seconds;
  arm["total_seconds"] = t.total_seconds;
  return Json(std::move(arm));
}

}  // namespace
}  // namespace ucp

int main(int argc, char** argv) {
  const std::string trace_file = ucp::bench::ExtractTraceFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);

  ucp::JsonArray arms;
  arms.emplace_back(ucp::RunArm("native_restart", /*rebuild_same_strategy=*/true));
  arms.emplace_back(ucp::RunArm("reconfigured_resume", /*rebuild_same_strategy=*/false));

  ucp::JsonObject doc;
  doc["benchmark"] = "fig13_recovery_time";
  doc["strategy"] = ucp::ParallelConfig{2, 2, 2, 1, 1, 1}.ToString();
  doc["world_size"] = 8;
  doc["victim_rank"] = ucp::kVictim;
  doc["kill_iteration"] = ucp::kKillIteration;
  doc["watchdog_ms"] = 300;
  doc["arms"] = std::move(arms);

  ucp::bench::WriteBenchReport("BENCH_recovery.json", std::move(doc));
  ucp::bench::WriteTraceIfRequested(trace_file);
  return 0;
}
