#include "src/parallel/zero.h"

#include <algorithm>
#include <cmath>

namespace ucp {

namespace {
int64_t AlignUp(int64_t value, int64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}
}  // namespace

Json FlatLayout::ToJson() const {
  JsonObject obj;
  JsonArray segs;
  for (const FlatSegment& s : segments) {
    JsonObject seg;
    seg["name"] = s.name;
    seg["offset"] = s.offset;
    seg["numel"] = s.numel;
    JsonArray shape;
    for (int64_t d : s.shape) {
      shape.push_back(Json(d));
    }
    seg["shape"] = Json(std::move(shape));
    seg["decay"] = s.decay;
    seg["norm_counts"] = s.norm_counts;
    segs.push_back(Json(std::move(seg)));
  }
  obj["segments"] = Json(std::move(segs));
  obj["total"] = total;
  obj["padded_total"] = padded_total;
  obj["partition_size"] = partition_size;
  return Json(std::move(obj));
}

Result<FlatLayout> FlatLayout::FromJson(const Json& json) {
  FlatLayout layout;
  UCP_ASSIGN_OR_RETURN(const JsonArray* segs, json.GetArray("segments"));
  for (const Json& seg : *segs) {
    FlatSegment s;
    UCP_ASSIGN_OR_RETURN(s.name, seg.GetString("name"));
    UCP_ASSIGN_OR_RETURN(s.offset, seg.GetInt("offset"));
    UCP_ASSIGN_OR_RETURN(s.numel, seg.GetInt("numel"));
    UCP_ASSIGN_OR_RETURN(const JsonArray* shape, seg.GetArray("shape"));
    for (const Json& d : *shape) {
      if (!d.is_number()) {
        return InvalidArgumentError("non-numeric dimension in flat segment shape");
      }
      s.shape.push_back(d.AsInt());
    }
    UCP_ASSIGN_OR_RETURN(s.decay, seg.GetBool("decay"));
    UCP_ASSIGN_OR_RETURN(s.norm_counts, seg.GetBool("norm_counts"));
    layout.segments.push_back(std::move(s));
  }
  UCP_ASSIGN_OR_RETURN(layout.total, json.GetInt("total"));
  UCP_ASSIGN_OR_RETURN(layout.padded_total, json.GetInt("padded_total"));
  UCP_ASSIGN_OR_RETURN(layout.partition_size, json.GetInt("partition_size"));
  return layout;
}

ZeroOptimizer::ZeroOptimizer(ParamStore* store, int zero_stage, ProcessGroup dp_group,
                             ProcessGroup world_group, DType compute_dtype)
    : store_(store),
      zero_stage_(zero_stage),
      dp_group_(dp_group),
      world_group_(world_group),
      compute_dtype_(compute_dtype) {
  UCP_CHECK_GE(zero_stage, 0);
  UCP_CHECK_LE(zero_stage, 3);

  // Build the flat layout in canonical store order.
  int64_t offset = 0;
  for (const ParamPtr& p : store->params()) {
    FlatSegment seg;
    seg.name = p->info.name;
    seg.offset = offset;
    seg.numel = p->value.numel();
    seg.shape = p->value.shape();
    seg.decay = p->info.decay;
    seg.norm_counts = p->norm_counts;
    layout_.segments.push_back(std::move(seg));
    offset += p->value.numel();
  }
  layout_.total = offset;
  int dp = dp_group_.size();
  layout_.padded_total = AlignUp(std::max<int64_t>(offset, 1), dp * kZeroAlignment);
  layout_.partition_size = layout_.padded_total / dp;

  // Move parameters into the flat buffers.
  flat_value_ = Tensor::Zeros({layout_.padded_total});
  flat_grad_ = Tensor::Zeros({layout_.padded_total});
  for (size_t i = 0; i < store->params().size(); ++i) {
    const ParamPtr& p = store->params()[i];
    const FlatSegment& seg = layout_.segments[i];
    Tensor value_view = Tensor::ViewOf(flat_value_, seg.offset, p->value.shape());
    value_view.CopyFrom(p->value);
    p->value = value_view;
    p->grad = Tensor::ViewOf(flat_grad_, seg.offset, p->value.shape());
    p->grad.Zero_();
  }

  // Persistent optimizer state: full for stage 0, this rank's partition otherwise.
  int64_t state_size = zero_stage_ == 0 ? layout_.padded_total : layout_.partition_size;
  flat_master_ = Tensor::Zeros({state_size});
  exp_avg_ = Tensor::Zeros({state_size});
  exp_avg_sq_ = Tensor::Zeros({state_size});
  // Masters start as the (pre-rounding) fp32 initialization values.
  Tensor init_region = Tensor::ViewOf(flat_value_, owned_offset(), {state_size});
  flat_master_.CopyFrom(init_region);

  if (compute_dtype_ != DType::kF32) {
    RoundThrough_(flat_value_, compute_dtype_);
  }
}

int64_t ZeroOptimizer::owned_offset() const {
  return zero_stage_ == 0 ? 0
                          : static_cast<int64_t>(dp_group_.index()) * layout_.partition_size;
}

double ZeroOptimizer::ComputeGlobalGradNorm() const {
  // Sum of squares over this rank's partition, masked to segments that count (one
  // representative copy per replicated parameter; see StageModel). Every world rank owns a
  // disjoint partition of its model-parallel shard, so summing masked partition
  // contributions over the world counts each logical element exactly once.
  int64_t part_begin = static_cast<int64_t>(dp_group_.index()) * layout_.partition_size;
  int64_t part_end = part_begin + layout_.partition_size;
  const float* g = flat_grad_.data();
  double local = 0.0;
  for (const FlatSegment& seg : layout_.segments) {
    if (!seg.norm_counts) {
      continue;
    }
    int64_t begin = std::max(seg.offset, part_begin);
    int64_t end = std::min(seg.offset + seg.numel, part_end);
    for (int64_t i = begin; i < end; ++i) {
      local += static_cast<double>(g[i]) * g[i];
    }
  }
  double global_sq = world_group_.AllReduceSumScalar(local);
  return std::sqrt(global_sq);
}

double ZeroOptimizer::Step(float lr, const AdamConfig& config) {
  int dp = dp_group_.size();

  // 1. DP gradient sync. Each rank's gradient is its partial sum of the *global-mean*
  //    gradient (the loss is scaled by 1/global_tokens at the source), so summing across
  //    the DP group yields the exact global gradient — no further averaging.
  if (zero_stage_ <= 1) {
    if (dp > 1) {
      dp_group_.AllReduceSum(flat_grad_);
    }
  } else if (dp > 1) {
    // Stages 2/3 shard gradients: each rank keeps only its partition of the summed grads.
    Tensor owned_grad =
        Tensor::ViewOf(flat_grad_, owned_offset(), {layout_.partition_size});
    dp_group_.ReduceScatterSum(flat_grad_, owned_grad);
  }

  // 2. Global gradient norm and clip coefficient.
  double grad_norm = ComputeGlobalGradNorm();
  float clip_coef = 1.0f;
  if (config.grad_clip > 0.0f && grad_norm > config.grad_clip) {
    clip_coef = config.grad_clip / (static_cast<float>(grad_norm) + 1e-6f);
  }

  // 3. Adam over the owned region, segment by segment (weight decay is per-parameter).
  ++steps_taken_;
  int64_t own_begin = owned_offset();
  int64_t own_end = own_begin + flat_master_.numel();
  float* master = flat_master_.data();
  float* m = exp_avg_.data();
  float* v = exp_avg_sq_.data();
  const float* g = flat_grad_.data();
  for (const FlatSegment& seg : layout_.segments) {
    int64_t begin = std::max(seg.offset, own_begin);
    int64_t end = std::min(seg.offset + seg.numel, own_end);
    if (begin >= end) {
      continue;
    }
    AdamUpdate(master + (begin - own_begin), g + begin, m + (begin - own_begin),
               v + (begin - own_begin), end - begin, steps_taken_, lr, config, seg.decay,
               clip_coef);
  }

  // 4. Publish updated masters to the live parameter values.
  PublishMasters();
  return grad_norm;
}

void ZeroOptimizer::PublishMasters() {
  if (zero_stage_ == 0) {
    flat_value_.CopyFrom(flat_master_);
  } else if (dp_group_.size() == 1) {
    flat_value_.CopyFrom(flat_master_);
  } else {
    std::vector<Tensor> partitions = dp_group_.AllGatherTensors(flat_master_);
    for (int r = 0; r < dp_group_.size(); ++r) {
      Tensor region = Tensor::ViewOf(
          flat_value_, static_cast<int64_t>(r) * layout_.partition_size,
          {layout_.partition_size});
      region.CopyFrom(partitions[static_cast<size_t>(r)]);
    }
  }
  if (compute_dtype_ != DType::kF32) {
    RoundThrough_(flat_value_, compute_dtype_);
  }
}

Status ZeroOptimizer::LoadState(const Tensor& master, const Tensor& exp_avg,
                                const Tensor& exp_avg_sq, int64_t steps_taken) {
  if (master.numel() != flat_master_.numel() || exp_avg.numel() != exp_avg_.numel() ||
      exp_avg_sq.numel() != exp_avg_sq_.numel()) {
    return InvalidArgumentError(
        "optimizer state size mismatch: expected " + std::to_string(flat_master_.numel()) +
        " elements, got " + std::to_string(master.numel()));
  }
  flat_master_.CopyFrom(master);
  exp_avg_.CopyFrom(exp_avg);
  exp_avg_sq_.CopyFrom(exp_avg_sq);
  steps_taken_ = steps_taken;
  PublishMasters();
  return OkStatus();
}

}  // namespace ucp
