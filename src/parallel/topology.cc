#include "src/parallel/topology.h"

#include "src/common/strings.h"

namespace ucp {

std::string ParallelConfig::ToString() const {
  return StrFormat("TP%d.PP%d.DP%d.SP%d.Z%d", tp, pp, dp, sp, zero_stage);
}

Json ParallelConfig::ToJson() const {
  JsonObject obj;
  obj["tp"] = tp;
  obj["pp"] = pp;
  obj["dp"] = dp;
  obj["sp"] = sp;
  obj["zero_stage"] = zero_stage;
  obj["micro_batches"] = micro_batches;
  return Json(std::move(obj));
}

Result<ParallelConfig> ParallelConfig::FromJson(const Json& json) {
  ParallelConfig config;
  UCP_ASSIGN_OR_RETURN(int64_t tp, json.GetInt("tp"));
  UCP_ASSIGN_OR_RETURN(int64_t pp, json.GetInt("pp"));
  UCP_ASSIGN_OR_RETURN(int64_t dp, json.GetInt("dp"));
  UCP_ASSIGN_OR_RETURN(int64_t sp, json.GetInt("sp"));
  UCP_ASSIGN_OR_RETURN(int64_t zero, json.GetInt("zero_stage"));
  UCP_ASSIGN_OR_RETURN(int64_t micro, json.GetInt("micro_batches"));
  config.tp = static_cast<int>(tp);
  config.pp = static_cast<int>(pp);
  config.dp = static_cast<int>(dp);
  config.sp = static_cast<int>(sp);
  config.zero_stage = static_cast<int>(zero);
  config.micro_batches = static_cast<int>(micro);
  if (config.tp < 1 || config.pp < 1 || config.dp < 1 || config.sp < 1 ||
      config.zero_stage < 0 || config.zero_stage > 3 || config.micro_batches < 1) {
    return InvalidArgumentError("malformed parallel config: " + json.Dump());
  }
  return config;
}

Topology::Topology(World* world, const ParallelConfig& config)
    : world_(world), config_(config) {
  UCP_CHECK_EQ(world->size(), config.world_size())
      << "world size does not match parallel config " << config.ToString();
  int n = world->size();
  tp_group_of_.resize(static_cast<size_t>(n));
  sp_group_of_.resize(static_cast<size_t>(n));
  dp_group_of_.resize(static_cast<size_t>(n));
  pp_group_of_.resize(static_cast<size_t>(n));
  tie_group_of_.resize(static_cast<size_t>(n));

  std::vector<int> world_ranks(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    world_ranks[static_cast<size_t>(r)] = r;
  }
  world_group_ = world->CreateGroup(world_ranks);

  auto make_axis_groups = [&](auto coord_selector, std::vector<GroupPtr>& out, int degree) {
    if (degree == 1) {
      // Size-1 groups still work, but sharing one object per rank keeps setup cheap.
    }
    // Enumerate groups by fixing all other coordinates.
    for (int r = 0; r < n; ++r) {
      if (out[static_cast<size_t>(r)] != nullptr) {
        continue;
      }
      RankCoord base = CoordOf(r);
      std::vector<int> members;
      members.reserve(static_cast<size_t>(degree));
      for (int i = 0; i < degree; ++i) {
        RankCoord c = base;
        coord_selector(c) = i;
        members.push_back(RankOf(c));
      }
      GroupPtr group = world->CreateGroup(members);
      for (int m : members) {
        out[static_cast<size_t>(m)] = group;
      }
    }
  };

  make_axis_groups([](RankCoord& c) -> int& { return c.tp; }, tp_group_of_, config_.tp);
  make_axis_groups([](RankCoord& c) -> int& { return c.sp; }, sp_group_of_, config_.sp);
  make_axis_groups([](RankCoord& c) -> int& { return c.dp; }, dp_group_of_, config_.dp);
  make_axis_groups([](RankCoord& c) -> int& { return c.pp; }, pp_group_of_, config_.pp);

  // Embedding-tie groups: {first stage, last stage} of each (tp, sp, dp) slice. Only
  // meaningful when pp > 1; with pp == 1 the tie is within one rank.
  if (config_.pp > 1) {
    for (int r = 0; r < n; ++r) {
      RankCoord c = CoordOf(r);
      if (c.pp != 0 && c.pp != config_.pp - 1) {
        continue;
      }
      if (tie_group_of_[static_cast<size_t>(r)] != nullptr) {
        continue;
      }
      RankCoord first = c;
      first.pp = 0;
      RankCoord last = c;
      last.pp = config_.pp - 1;
      std::vector<int> members = {RankOf(first), RankOf(last)};
      GroupPtr group = world->CreateGroup(members);
      tie_group_of_[static_cast<size_t>(members[0])] = group;
      tie_group_of_[static_cast<size_t>(members[1])] = group;
    }
  }
}

RankCoord Topology::CoordOf(int rank) const {
  UCP_CHECK_GE(rank, 0);
  UCP_CHECK_LT(rank, config_.world_size());
  RankCoord c;
  c.tp = rank % config_.tp;
  int rest = rank / config_.tp;
  c.sp = rest % config_.sp;
  rest /= config_.sp;
  c.pp = rest % config_.pp;
  c.dp = rest / config_.pp;
  return c;
}

int Topology::RankOf(const RankCoord& coord) const {
  UCP_CHECK_GE(coord.tp, 0);
  UCP_CHECK_LT(coord.tp, config_.tp);
  UCP_CHECK_GE(coord.sp, 0);
  UCP_CHECK_LT(coord.sp, config_.sp);
  UCP_CHECK_GE(coord.pp, 0);
  UCP_CHECK_LT(coord.pp, config_.pp);
  UCP_CHECK_GE(coord.dp, 0);
  UCP_CHECK_LT(coord.dp, config_.dp);
  return ((coord.dp * config_.pp + coord.pp) * config_.sp + coord.sp) * config_.tp + coord.tp;
}

Topology::RankGroups Topology::GroupsFor(int rank) const {
  RankGroups groups;
  groups.tp = ProcessGroup(tp_group_of_[static_cast<size_t>(rank)], rank);
  groups.sp = ProcessGroup(sp_group_of_[static_cast<size_t>(rank)], rank);
  groups.dp = ProcessGroup(dp_group_of_[static_cast<size_t>(rank)], rank);
  groups.pp = ProcessGroup(pp_group_of_[static_cast<size_t>(rank)], rank);
  if (tie_group_of_[static_cast<size_t>(rank)] != nullptr) {
    groups.embedding_tie = ProcessGroup(tie_group_of_[static_cast<size_t>(rank)], rank);
  }
  groups.world = ProcessGroup(world_group_, rank);
  return groups;
}

int Topology::PrevStageRank(int rank) const {
  RankCoord c = CoordOf(rank);
  UCP_CHECK_GT(c.pp, 0) << "first stage has no predecessor";
  --c.pp;
  return RankOf(c);
}

int Topology::NextStageRank(int rank) const {
  RankCoord c = CoordOf(rank);
  UCP_CHECK_LT(c.pp, config_.pp - 1) << "last stage has no successor";
  ++c.pp;
  return RankOf(c);
}

std::vector<std::pair<int, int>> SplitLayersAcrossStages(int num_layers, int pp) {
  UCP_CHECK_GT(pp, 0);
  UCP_CHECK_GE(num_layers, pp) << "fewer layers than pipeline stages";
  std::vector<std::pair<int, int>> out;
  out.reserve(static_cast<size_t>(pp));
  int base = num_layers / pp;
  int extra = num_layers % pp;
  int first = 0;
  for (int s = 0; s < pp; ++s) {
    int count = base + (s < extra ? 1 : 0);
    out.emplace_back(first, count);
    first += count;
  }
  return out;
}

}  // namespace ucp
