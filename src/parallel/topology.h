// The 4-D device grid (TP x SP x PP x DP) and the communication groups each rank needs.
//
// Rank layout (TP fastest-varying, DP slowest):
//   rank = ((dp * PP + pp) * SP + sp) * TP + tp
// This matches the Megatron convention of placing tensor-parallel peers on adjacent ranks.

#ifndef UCP_SRC_PARALLEL_TOPOLOGY_H_
#define UCP_SRC_PARALLEL_TOPOLOGY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/comm/comm.h"
#include "src/common/json.h"
#include "src/common/status.h"

namespace ucp {

// A complete parallelism strategy: the grid plus the ZeRO stage used on the DP axis.
struct ParallelConfig {
  int tp = 1;
  int pp = 1;
  int dp = 1;
  int sp = 1;
  int zero_stage = 0;  // 0 = plain DP, 1/2/3 per the ZeRO paper
  // Micro-batches per iteration per DP replica (gradient accumulation steps / PP chunks).
  int micro_batches = 1;

  int world_size() const { return tp * pp * dp * sp; }
  std::string ToString() const;  // "TP2.PP2.DP2.SP1.Z1"
  Json ToJson() const;
  static Result<ParallelConfig> FromJson(const Json& json);
  bool operator==(const ParallelConfig& other) const = default;
};

// Coordinates of one rank in the grid.
struct RankCoord {
  int tp = 0;
  int sp = 0;
  int pp = 0;
  int dp = 0;
};

class Topology {
 public:
  // Builds all process-group states up front on the launcher thread so every rank derives
  // handles from identical shared objects.
  Topology(World* world, const ParallelConfig& config);

  const ParallelConfig& config() const { return config_; }
  World* world() const { return world_; }

  RankCoord CoordOf(int rank) const;
  int RankOf(const RankCoord& coord) const;

  // Per-rank communication handles.
  struct RankGroups {
    ProcessGroup tp;     // peers that differ only in the tp coordinate
    ProcessGroup sp;     // ... sp coordinate
    ProcessGroup dp;     // ... dp coordinate (gradient / ZeRO group)
    ProcessGroup pp;     // ... pp coordinate (used for barriers & the embedding tie)
    // First and last pipeline stage of this (tp, sp, dp) slice — the group over which tied
    // embedding gradients are all-reduced. Invalid when this rank is on neither stage or
    // when pp == 1.
    ProcessGroup embedding_tie;
    ProcessGroup world;  // every rank
  };
  RankGroups GroupsFor(int rank) const;

  // Global rank of the pipeline-stage neighbour (same tp/sp/dp, pp +- 1).
  int PrevStageRank(int rank) const;
  int NextStageRank(int rank) const;

 private:
  World* world_;
  ParallelConfig config_;

  using GroupPtr = std::shared_ptr<internal::GroupState>;
  // Indexed by rank: the group state each rank belongs to, per axis.
  std::vector<GroupPtr> tp_group_of_;
  std::vector<GroupPtr> sp_group_of_;
  std::vector<GroupPtr> dp_group_of_;
  std::vector<GroupPtr> pp_group_of_;
  std::vector<GroupPtr> tie_group_of_;  // null for ranks not on first/last stage
  GroupPtr world_group_;
};

// Assigns `num_layers` transformer layers to `pp` stages as evenly as possible (earlier
// stages get the remainder). Returns (first_layer, count) per stage.
std::vector<std::pair<int, int>> SplitLayersAcrossStages(int num_layers, int pp);

}  // namespace ucp

#endif  // UCP_SRC_PARALLEL_TOPOLOGY_H_
