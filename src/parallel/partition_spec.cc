#include "src/parallel/partition_spec.h"

namespace ucp {

const char* PartitionKindName(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kReplicated:
      return "replicated";
    case PartitionKind::kFragment:
      return "fragment";
    case PartitionKind::kToAverage:
      return "to_average";
  }
  return "unknown";
}

namespace {

// Resolves the effective section sizes along spec.dim (a single full-size section when none
// are declared) and checks divisibility by the TP degree.
std::vector<int64_t> EffectiveSections(const PartitionSpec& spec, const Shape& full_shape,
                                       int degree) {
  UCP_CHECK_GE(spec.dim, 0);
  UCP_CHECK_LT(spec.dim, static_cast<int>(full_shape.size()))
      << "fragment dim out of range for shape " << ShapeToString(full_shape);
  int64_t dim_size = full_shape[static_cast<size_t>(spec.dim)];
  std::vector<int64_t> sections = spec.sections;
  if (sections.empty()) {
    sections.push_back(dim_size);
  }
  int64_t total = 0;
  for (int64_t s : sections) {
    UCP_CHECK_EQ(s % degree, 0) << "section of size " << s << " not divisible by TP degree "
                                << degree;
    total += s;
  }
  UCP_CHECK_EQ(total, dim_size) << "sections do not cover dim " << spec.dim << " of "
                                << ShapeToString(full_shape);
  return sections;
}

}  // namespace

Shape ShardShape(const PartitionSpec& spec, const Shape& full_shape, int degree) {
  if (spec.kind != PartitionKind::kFragment || degree == 1) {
    return full_shape;
  }
  std::vector<int64_t> sections = EffectiveSections(spec, full_shape, degree);
  Shape out = full_shape;
  out[static_cast<size_t>(spec.dim)] =
      full_shape[static_cast<size_t>(spec.dim)] / degree;
  return out;
}

Tensor ShardOf(const PartitionSpec& spec, const Tensor& full, int degree, int rank) {
  UCP_CHECK_GE(rank, 0);
  UCP_CHECK_LT(rank, degree);
  if (spec.kind != PartitionKind::kFragment || degree == 1) {
    return full.Clone();
  }
  std::vector<int64_t> sections = EffectiveSections(spec, full.shape(), degree);
  // Rank r takes the r-th 1/degree slice of every section, concatenated in section order.
  std::vector<Tensor> pieces;
  pieces.reserve(sections.size());
  int64_t section_start = 0;
  for (int64_t s : sections) {
    int64_t piece = s / degree;
    pieces.push_back(full.Narrow(spec.dim, section_start + rank * piece, piece));
    section_start += s;
  }
  return pieces.size() == 1 ? std::move(pieces[0]) : Tensor::Concat(pieces, spec.dim);
}

std::vector<ShardRun> ShardRuns(const PartitionSpec& spec, const Shape& full_shape,
                                int degree, int rank) {
  UCP_CHECK_GE(rank, 0);
  UCP_CHECK_LT(rank, degree);
  int64_t total = ShapeNumel(full_shape);
  if (spec.kind != PartitionKind::kFragment || degree == 1) {
    return {ShardRun{0, 0, total}};
  }
  std::vector<int64_t> sections = EffectiveSections(spec, full_shape, degree);
  const size_t d = static_cast<size_t>(spec.dim);
  int64_t outer = 1;
  for (size_t i = 0; i < d; ++i) {
    outer *= full_shape[i];
  }
  int64_t inner = 1;
  for (size_t i = d + 1; i < full_shape.size(); ++i) {
    inner *= full_shape[i];
  }
  const int64_t dim_size = full_shape[d];
  const int64_t shard_dim = dim_size / degree;

  std::vector<ShardRun> runs;
  runs.reserve(static_cast<size_t>(outer) * sections.size());
  for (int64_t o = 0; o < outer; ++o) {
    const int64_t full_block = o * dim_size * inner;
    const int64_t shard_block = o * shard_dim * inner;
    int64_t section_start = 0;  // along dim, in the full tensor
    int64_t local_start = 0;    // along dim, in the shard
    for (int64_t s : sections) {
      const int64_t piece = s / degree;
      runs.push_back(ShardRun{shard_block + local_start * inner,
                              full_block + (section_start + rank * piece) * inner,
                              piece * inner});
      section_start += s;
      local_start += piece;
    }
  }
  return runs;
}

Tensor Unshard(const PartitionSpec& spec, const std::vector<Tensor>& shards,
               const Shape& full_shape) {
  UCP_CHECK(!shards.empty());
  int degree = static_cast<int>(shards.size());

  switch (spec.kind) {
    case PartitionKind::kReplicated:
      UCP_CHECK(shards[0].shape() == full_shape);
      return shards[0].Clone();

    case PartitionKind::kToAverage: {
      UCP_CHECK(shards[0].shape() == full_shape);
      Tensor avg = shards[0].Clone();
      for (size_t i = 1; i < shards.size(); ++i) {
        avg.Add_(shards[i]);
      }
      avg.Scale_(1.0f / static_cast<float>(degree));
      return avg;
    }

    case PartitionKind::kFragment: {
      if (degree == 1) {
        UCP_CHECK(shards[0].shape() == full_shape);
        return shards[0].Clone();
      }
      std::vector<int64_t> sections = EffectiveSections(spec, full_shape, degree);
      // Inverse of ShardOf: for each section (in order), concatenate every rank's slice of
      // that section.
      std::vector<Tensor> full_sections;
      full_sections.reserve(sections.size());
      int64_t local_start = 0;
      for (int64_t s : sections) {
        int64_t piece = s / degree;
        std::vector<Tensor> rank_pieces;
        rank_pieces.reserve(shards.size());
        for (const Tensor& shard : shards) {
          rank_pieces.push_back(shard.Narrow(spec.dim, local_start, piece));
        }
        full_sections.push_back(Tensor::Concat(rank_pieces, spec.dim));
        local_start += piece;
      }
      Tensor full = full_sections.size() == 1 ? std::move(full_sections[0])
                                              : Tensor::Concat(full_sections, spec.dim);
      UCP_CHECK(full.shape() == full_shape)
          << "Unshard produced " << ShapeToString(full.shape()) << ", expected "
          << ShapeToString(full_shape);
      return full;
    }
  }
  UCP_CHECK(false) << "unreachable";
  return Tensor();
}

}  // namespace ucp
