// How a logical (full) parameter tensor maps onto tensor-parallel ranks.
//
// These specs are the runtime-side twin of the UCP language's parameter patterns (Table 1 of
// the paper): kReplicated <-> replicated_params, kFragment <-> fragment_params (with the
// Fig. 5 sub-patterns expressed as `dim` + `sections`), and kToAverage <-> params_to_average.
// unique_params has no TP spec — it arises from pipeline/ZeRO placement, where a parameter
// exists on exactly one rank of the relevant group.

#ifndef UCP_SRC_PARALLEL_PARTITION_SPEC_H_
#define UCP_SRC_PARALLEL_PARTITION_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace ucp {

enum class PartitionKind : uint8_t {
  // Every TP rank holds an identical full copy (layer norms, biases of row-parallel linears).
  kReplicated = 0,
  // The tensor is split along `dim`. With `sections` empty the split is even; otherwise the
  // tensor is first divided into sections of the given sizes along `dim` and *each section*
  // is split evenly across ranks (the fused-QKV / GQA sub-pattern from Fig. 5). For 3-d MoE
  // expert tensors, `dim` is simply > 0 — the other sub-pattern from Fig. 5.
  kFragment = 1,
  // Replicated storage but updated independently per rank (sequence-parallel norm
  // parameters); consolidation must average the replicas.
  kToAverage = 2,
};

const char* PartitionKindName(PartitionKind kind);

struct PartitionSpec {
  PartitionKind kind = PartitionKind::kReplicated;
  int dim = 0;
  std::vector<int64_t> sections;  // full-tensor section sizes along `dim`; empty = one section

  static PartitionSpec Replicated() { return {PartitionKind::kReplicated, 0, {}}; }
  static PartitionSpec Fragment(int dim) { return {PartitionKind::kFragment, dim, {}}; }
  static PartitionSpec FragmentSections(int dim, std::vector<int64_t> sections) {
    return {PartitionKind::kFragment, dim, std::move(sections)};
  }
  static PartitionSpec ToAverage() { return {PartitionKind::kToAverage, 0, {}}; }

  bool operator==(const PartitionSpec& other) const = default;
};

// Shape of rank `rank`'s shard of a full tensor with this spec under `degree`-way TP.
Shape ShardShape(const PartitionSpec& spec, const Shape& full_shape, int degree);

// Extracts rank `rank`'s shard (copy) from the full tensor.
Tensor ShardOf(const PartitionSpec& spec, const Tensor& full, int degree, int rank);

// Reassembles the full tensor from all ranks' shards (inverse of ShardOf). For kReplicated
// the first shard is returned; for kToAverage the elementwise mean.
Tensor Unshard(const PartitionSpec& spec, const std::vector<Tensor>& shards,
               const Shape& full_shape);

// One contiguous piece of a shard inside the full tensor's row-major flat layout.
struct ShardRun {
  int64_t shard_offset;  // flat element offset inside the shard
  int64_t full_offset;   // flat element offset inside the full tensor
  int64_t numel;
};

// Decomposes rank `rank`'s shard (as produced by ShardOf) into contiguous runs of the full
// tensor. Runs are emitted in ascending shard_offset AND ascending full_offset, so a reader
// can walk the atom file forward while filling the shard buffer forward — this is what lets
// the sliced load path fetch exactly the byte ranges a rank owns: dim-0 fragments yield one
// run (a single pread), dim>0 fragments yield a strided gather of prod(dims[:dim]) runs per
// section. Replicated/averaged specs and degree 1 yield the single identity run.
std::vector<ShardRun> ShardRuns(const PartitionSpec& spec, const Shape& full_shape,
                                int degree, int rank);

}  // namespace ucp

#endif  // UCP_SRC_PARALLEL_PARTITION_SPEC_H_
