// ZeRO-style data parallelism (stages 0-3) over the simulated runtime.
//
// All of a rank's parameters are flattened into one contiguous fp32 buffer in canonical
// (inventory) order, padded at the end so the total divides evenly into DP partitions with
// alignment — the analogue of DeepSpeed's fp32_partitioned_groups_flat, including the
// padding that UCP's StripPadding must remove. Parameter value/grad tensors become views
// into the flat buffers, so the layers transparently read and accumulate into them.
//
//  stage 0: plain DP — full grads all-reduced, every rank runs the full Adam step.
//  stage 1: optimizer state (fp32 master + moments) sharded; grads still all-reduced.
//  stage 2: additionally gradients sharded (reduce-scatter).
//  stage 3: additionally parameters sharded — only the owned fp32 partition is persistent
//           state; the full buffer is rematerialized by all-gather after each step. (The
//           simulator keeps the full buffer allocated between steps; what matters for
//           checkpointing is that persistent state is the partition. See DESIGN.md.)
//
// Mixed precision: when compute_dtype != f32, published parameter values are the fp32
// masters rounded through bf16/f16, while optimizer state stays fp32 — so checkpoints carry
// fp32 masters and a run can resume under a different half format (paper §3.1).

#ifndef UCP_SRC_PARALLEL_ZERO_H_
#define UCP_SRC_PARALLEL_ZERO_H_

#include <string>
#include <vector>

#include "src/comm/comm.h"
#include "src/common/json.h"
#include "src/model/param.h"
#include "src/optim/adam.h"
#include "src/tensor/bf16.h"

namespace ucp {

// ZeRO partition alignment in elements (DeepSpeed aligns partitions for NVMe/NCCL
// efficiency; the value is small here so tests exercise nonzero padding often).
inline constexpr int64_t kZeroAlignment = 4;

struct FlatSegment {
  std::string name;
  int64_t offset = 0;  // element offset in the flat buffer
  int64_t numel = 0;   // local (TP-shard) element count
  Shape shape;         // local (TP-shard) tensor shape
  bool decay = true;
  bool norm_counts = true;
};

struct FlatLayout {
  std::vector<FlatSegment> segments;
  int64_t total = 0;           // sum of segment numels
  int64_t padded_total = 0;    // total rounded up to dp * kZeroAlignment
  int64_t partition_size = 0;  // padded_total / dp

  Json ToJson() const;
  static Result<FlatLayout> FromJson(const Json& json);
};

class ZeroOptimizer {
 public:
  // Re-points every param in `store` into the flat buffers. `dp_group` is the ZeRO process
  // group; `world_group` is used only for the global gradient-norm reduction.
  ZeroOptimizer(ParamStore* store, int zero_stage, ProcessGroup dp_group,
                ProcessGroup world_group, DType compute_dtype);

  int zero_stage() const { return zero_stage_; }
  const FlatLayout& layout() const { return layout_; }
  int64_t steps_taken() const { return steps_taken_; }
  // Restores the step counter when resuming (Adam bias correction depends on it).
  void set_steps_taken(int64_t steps) { steps_taken_ = steps; }

  // Gradient sync (DP), global grad-norm clip, Adam step, and parameter publication.
  // Returns the global (pre-clip) gradient norm.
  double Step(float lr, const AdamConfig& config);

  // --- Checkpoint state access ---
  // This rank's persistent optimizer partition (full buffers for stage 0).
  Tensor MasterState() const { return flat_master_.Clone(); }
  Tensor ExpAvgState() const { return exp_avg_.Clone(); }
  Tensor ExpAvgSqState() const { return exp_avg_sq_.Clone(); }
  // Zero-copy views of the same state, for snapshotters that copy into reusable buffers.
  // The referenced storage is overwritten by the next Step(); copy before releasing the
  // rank thread if the snapshot must exclude that step.
  const Tensor& master_state_ref() const { return flat_master_; }
  const Tensor& exp_avg_ref() const { return exp_avg_; }
  const Tensor& exp_avg_sq_ref() const { return exp_avg_sq_; }
  int64_t state_numel() const { return flat_master_.numel(); }
  // Element offset in the flat buffer where this rank's partition begins (0 for stage 0).
  int64_t owned_offset() const;

  // Installs restored optimizer state and republishes parameter values from the masters.
  Status LoadState(const Tensor& master, const Tensor& exp_avg, const Tensor& exp_avg_sq,
                   int64_t steps_taken);

  // Direct view of the published flat parameter values (e.g. for the MPT model-state save).
  const Tensor& flat_value() const { return flat_value_; }

 private:
  void PublishMasters();
  double ComputeGlobalGradNorm() const;

  ParamStore* store_;
  int zero_stage_;
  ProcessGroup dp_group_;
  ProcessGroup world_group_;
  DType compute_dtype_;
  FlatLayout layout_;

  Tensor flat_value_;  // [padded_total] — what the layers compute with (views)
  Tensor flat_grad_;   // [padded_total]
  Tensor flat_master_; // stage 0: [padded_total]; stages 1-3: [partition_size]
  Tensor exp_avg_;     // same size as flat_master_
  Tensor exp_avg_sq_;
  int64_t steps_taken_ = 0;
};

}  // namespace ucp

#endif  // UCP_SRC_PARALLEL_ZERO_H_
