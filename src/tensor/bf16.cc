#include "src/tensor/bf16.h"

#include <cmath>
#include <cstring>

namespace ucp {

const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "f32";
    case DType::kBF16:
      return "bf16";
    case DType::kF16:
      return "f16";
  }
  return "unknown";
}

size_t DTypeSize(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return 4;
    case DType::kBF16:
    case DType::kF16:
      return 2;
  }
  return 0;
}

uint16_t F32ToBf16(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  if (std::isnan(value)) {
    return 0x7FC0;  // canonical quiet NaN
  }
  // Round to nearest even on the truncated 16 low bits.
  uint32_t lsb = (bits >> 16) & 1u;
  uint32_t rounding = 0x7FFFu + lsb;
  return static_cast<uint16_t>((bits + rounding) >> 16);
}

float Bf16ToF32(uint16_t bits16) {
  uint32_t bits = static_cast<uint32_t>(bits16) << 16;
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

uint16_t F32ToF16(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  uint32_t sign = (bits >> 16) & 0x8000u;
  int32_t exp = static_cast<int32_t>((bits >> 23) & 0xFFu) - 127 + 15;
  uint32_t mant = bits & 0x7FFFFFu;

  if (std::isnan(value)) {
    return static_cast<uint16_t>(sign | 0x7E00u);
  }
  if (std::isinf(value) || exp >= 0x1F) {
    return static_cast<uint16_t>(sign | 0x7C00u);  // overflow -> inf
  }
  if (exp <= 0) {
    // Subnormal or underflow to zero.
    if (exp < -10) {
      return static_cast<uint16_t>(sign);
    }
    mant |= 0x800000u;  // implicit leading 1
    uint32_t shift = static_cast<uint32_t>(14 - exp);
    uint32_t half_mant = mant >> shift;
    // Round to nearest even.
    uint32_t rem = mant & ((1u << shift) - 1);
    uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) {
      ++half_mant;
    }
    return static_cast<uint16_t>(sign | half_mant);
  }
  uint32_t half = sign | (static_cast<uint32_t>(exp) << 10) | (mant >> 13);
  // Round to nearest even on the truncated 13 bits.
  uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) {
    ++half;  // may carry into the exponent; that is correct rounding behaviour
  }
  return static_cast<uint16_t>(half);
}

float F16ToF32(uint16_t bits16) {
  uint32_t sign = static_cast<uint32_t>(bits16 & 0x8000u) << 16;
  uint32_t exp = (bits16 >> 10) & 0x1Fu;
  uint32_t mant = bits16 & 0x3FFu;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // +-0
    } else {
      // Subnormal: normalize.
      int shift = 0;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        ++shift;
      }
      mant &= 0x3FFu;
      // Subnormal value = mant10 * 2^-24; after normalizing the MSB into bit 10 with
      // `shift` left-shifts, the unbiased exponent is -14 - shift.
      bits = sign | (static_cast<uint32_t>(127 - 14 - shift) << 23) | (mant << 13);
    }
  } else if (exp == 0x1F) {
    bits = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Tensor RoundThrough(const Tensor& t, DType dtype) {
  Tensor out = t.Clone();
  RoundThrough_(out, dtype);
  return out;
}

void RoundThrough_(Tensor& t, DType dtype) {
  if (dtype == DType::kF32) {
    return;
  }
  float* p = t.data();
  if (dtype == DType::kBF16) {
    for (int64_t i = 0; i < t.numel(); ++i) {
      p[i] = Bf16ToF32(F32ToBf16(p[i]));
    }
  } else {
    for (int64_t i = 0; i < t.numel(); ++i) {
      p[i] = F16ToF32(F32ToF16(p[i]));
    }
  }
}

}  // namespace ucp
