#include "src/tensor/tensor_file.h"

#include <atomic>
#include <cstring>

#include "src/common/bytes.h"
#include "src/common/crc32.h"
#include "src/common/fs.h"
#include "src/obs/metrics.h"

namespace ucp {
namespace {

constexpr uint32_t kTensorMagic = 0x31544355;  // "UCT1" little-endian
constexpr uint32_t kBundleMagic = 0x31424355;  // "UCB1" little-endian
constexpr uint32_t kEndianTag = 0x01020304;
constexpr uint32_t kFormatVersion = 3;  // see the header's version history

// Chunk sizing: 64 KiB default, halved down to 4 KiB until a payload spans at least four
// chunks, so chunk-CRC localization is meaningful even for simulator-scale tensors.
constexpr uint32_t kMaxChunkBytes = 64 * 1024;
constexpr uint32_t kMinChunkBytes = 4 * 1024;

uint32_t PickChunkBytes(uint64_t payload_bytes) {
  uint32_t chunk = kMaxChunkBytes;
  while (chunk > kMinChunkBytes && payload_bytes < 4ull * chunk) {
    chunk /= 2;
  }
  return chunk;
}

uint32_t NumChunksFor(uint64_t payload_bytes, uint32_t chunk_bytes) {
  if (payload_bytes == 0) {
    return 0;
  }
  return static_cast<uint32_t>((payload_bytes + chunk_bytes - 1) / chunk_bytes);
}

// Registry-backed (see src/obs/metrics.h); GetTensorIoStats reads these back out.
obs::Counter& BytesReadCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("tensor.io.bytes_read");
  return c;
}
obs::Counter& ReadCallsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("tensor.io.read_calls");
  return c;
}
obs::Counter& ChunksVerifiedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("tensor.io.chunks_verified");
  return c;
}

void CountRead(uint64_t bytes) {
  BytesReadCounter().Add(bytes);
  ReadCallsCounter().Add(1);
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void PatchU64(std::vector<uint8_t>& buf, size_t at, uint64_t v) {
  std::memcpy(buf.data() + at, &v, 8);
}

void AppendU32(std::vector<uint8_t>& buf, uint32_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  buf.insert(buf.end(), p, p + 4);
}

// ---------------------------------------------------------------------------
// Payload encoding/decoding. On-disk payloads are raw little-endian values of the storage
// dtype; in-memory tensors are always fp32.

std::vector<uint8_t> EncodePayload(const Tensor& t, DType dtype) {
  const float* p = t.data();
  int64_t n = t.numel();
  std::vector<uint8_t> out(static_cast<size_t>(n) * DTypeSize(dtype));
  switch (dtype) {
    case DType::kF32:
      std::memcpy(out.data(), p, out.size());
      break;
    case DType::kBF16:
      for (int64_t i = 0; i < n; ++i) {
        uint16_t v = F32ToBf16(p[i]);
        out[2 * i] = static_cast<uint8_t>(v & 0xFF);
        out[2 * i + 1] = static_cast<uint8_t>(v >> 8);
      }
      break;
    case DType::kF16:
      for (int64_t i = 0; i < n; ++i) {
        uint16_t v = F32ToF16(p[i]);
        out[2 * i] = static_cast<uint8_t>(v & 0xFF);
        out[2 * i + 1] = static_cast<uint8_t>(v >> 8);
      }
      break;
  }
  return out;
}

void DecodeElements(const uint8_t* raw, DType dtype, int64_t count, float* out) {
  switch (dtype) {
    case DType::kF32:
      std::memcpy(out, raw, static_cast<size_t>(count) * sizeof(float));
      break;
    case DType::kBF16:
    case DType::kF16:
      for (int64_t i = 0; i < count; ++i) {
        uint16_t v = static_cast<uint16_t>(raw[2 * i]) |
                     (static_cast<uint16_t>(raw[2 * i + 1]) << 8);
        out[i] = dtype == DType::kBF16 ? Bf16ToF32(v) : F16ToF32(v);
      }
      break;
  }
}

// ---------------------------------------------------------------------------
// Shared header pieces (v1/v2/v3 all use the same dtype/shape/payload-size encoding).

void PutHeader(ByteWriter& w, const Tensor& t, DType dtype) {
  w.PutU8(static_cast<uint8_t>(dtype));
  w.PutU32(static_cast<uint32_t>(t.ndim()));
  for (int i = 0; i < t.ndim(); ++i) {
    w.PutI64(t.dim(i));
  }
}

struct ParsedHeader {
  Shape shape;
  DType dtype;
  uint64_t payload_bytes;
};

Result<ParsedHeader> GetHeaderAndSize(ByteReader& r) {
  ParsedHeader h;
  UCP_ASSIGN_OR_RETURN(uint8_t dtype_byte, r.GetU8());
  if (dtype_byte > static_cast<uint8_t>(DType::kF16)) {
    return DataLossError("unknown dtype byte " + std::to_string(dtype_byte));
  }
  h.dtype = static_cast<DType>(dtype_byte);
  UCP_ASSIGN_OR_RETURN(uint32_t ndim, r.GetU32());
  if (ndim > 16) {
    return DataLossError("implausible tensor rank " + std::to_string(ndim));
  }
  for (uint32_t i = 0; i < ndim; ++i) {
    UCP_ASSIGN_OR_RETURN(int64_t d, r.GetI64());
    if (d < 0) {
      return DataLossError("negative dimension in tensor header");
    }
    h.shape.push_back(d);
  }
  UCP_ASSIGN_OR_RETURN(h.payload_bytes, r.GetU64());
  uint64_t expect = static_cast<uint64_t>(ShapeNumel(h.shape)) * DTypeSize(h.dtype);
  if (h.payload_bytes != expect) {
    return DataLossError("payload size " + std::to_string(h.payload_bytes) +
                         " does not match shape " + ShapeToString(h.shape));
  }
  return h;
}

std::string ChunkCrcErr(const std::string& what, size_t chunk_index, size_t num_chunks) {
  // Keeps the v2 "per-tensor CRC mismatch in <member>" phrasing (callers and fsck match on
  // it) while pinpointing the damaged chunk.
  return "per-tensor CRC mismatch in " + what + " (chunk " + std::to_string(chunk_index) +
         " of " + std::to_string(num_chunks) + ")";
}

// Verifies every chunk CRC of a payload already in memory.
Status VerifyChunks(const uint8_t* payload, uint64_t payload_bytes, uint32_t chunk_bytes,
                    const std::vector<uint32_t>& crcs, const std::string& what) {
  for (size_t ci = 0; ci < crcs.size(); ++ci) {
    uint64_t start = ci * static_cast<uint64_t>(chunk_bytes);
    uint64_t size = std::min<uint64_t>(chunk_bytes, payload_bytes - start);
    if (Crc32(payload + start, static_cast<size_t>(size)) != crcs[ci]) {
      return DataLossError(ChunkCrcErr(what, ci, crcs.size()));
    }
    ChunksVerifiedCounter().Add(1);
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// v3 writers. Layout (single tensor):
//   u32 magic | u32 endian | u32 version
//   u64 header_bytes                         (fixed offset 12; == payload start offset)
//   u8 dtype | u32 ndim | i64 dims[ndim] | u64 payload_bytes
//   u32 chunk_bytes | u32 num_chunks | u32 chunk_crc[num_chunks]
//   u32 header_crc                           (CRC32 over bytes [0, here))
//   payload (raw)
//   u32 file_crc                             (CRC32 over bytes [0, here))
// Bundles use the same prologue, then meta string + entry table (each entry additionally
// records its absolute payload offset), header_crc, concatenated payloads, file_crc.

void PutChunkTable(ByteWriter& w, const std::vector<uint8_t>& payload, uint32_t chunk_bytes) {
  uint32_t num_chunks = NumChunksFor(payload.size(), chunk_bytes);
  w.PutU32(chunk_bytes);
  w.PutU32(num_chunks);
  for (uint32_t ci = 0; ci < num_chunks; ++ci) {
    uint64_t start = ci * static_cast<uint64_t>(chunk_bytes);
    uint64_t size = std::min<uint64_t>(chunk_bytes, payload.size() - start);
    w.PutU32(Crc32(payload.data() + start, static_cast<size_t>(size)));
  }
}

std::vector<uint8_t> BuildV3(ByteWriter& header,
                             const std::vector<const std::vector<uint8_t>*>& payloads,
                             const std::vector<size_t>& offset_patch_positions) {
  std::vector<uint8_t> buf = header.TakeBuffer();
  uint64_t header_bytes = buf.size() + 4;  // + header_crc
  PatchU64(buf, 12, header_bytes);
  uint64_t running = header_bytes;
  for (size_t i = 0; i < offset_patch_positions.size(); ++i) {
    PatchU64(buf, offset_patch_positions[i], running);
    running += payloads[i]->size();
  }
  AppendU32(buf, Crc32(buf.data(), buf.size()));  // header_crc
  for (const std::vector<uint8_t>* p : payloads) {
    buf.insert(buf.end(), p->begin(), p->end());
  }
  AppendU32(buf, Crc32(buf.data(), buf.size()));  // file_crc
  return buf;
}

// ---------------------------------------------------------------------------
// Read-side helpers.

// Checks magic + endian tag from the 12-byte prologue and classifies the format version:
// a known version value (2, 3) at offset 8, anything else is pre-version-field v1. (A v1
// tensor file has the dtype byte at offset 8, which never collides with 2/3 for the files
// we write: dtype <= 2 and ndim >= 1 put a value >= 256 there.)
Result<uint32_t> SniffPrologue(const uint8_t* p, uint32_t magic, const char* kind,
                               const std::string& path) {
  if (LoadU32(p) != magic) {
    return DataLossError(std::string(kind) + " bad magic in " + path);
  }
  if (LoadU32(p + 4) != kEndianTag) {
    return DataLossError(std::string(kind) + " endianness mismatch in " + path);
  }
  uint32_t v = LoadU32(p + 8);
  return (v == 2 || v == 3) ? v : 1;
}

Status CheckFileCrc(const std::string& contents, const char* kind, const std::string& path) {
  size_t body_size = contents.size() - 4;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, contents.data() + body_size, 4);
  if (stored_crc != Crc32(contents.data(), body_size)) {
    return DataLossError(std::string(kind) + " CRC mismatch in " + path);
  }
  return OkStatus();
}

Status CheckPayloadCrc(ByteReader& r, const void* payload, size_t size, const char* what) {
  uint32_t actual = Crc32(payload, size);
  UCP_ASSIGN_OR_RETURN(uint32_t stored, r.GetU32());
  if (stored != actual) {
    return DataLossError(std::string("per-tensor CRC mismatch in ") + what);
  }
  return OkStatus();
}

// Raw (undecoded) payload bytes of one legacy member; verifies the per-tensor CRC for v2.
Result<std::vector<uint8_t>> GetRawPayloadLegacy(ByteReader& r, const ParsedHeader& h,
                                                 uint32_t version, const std::string& name) {
  std::vector<uint8_t> raw(h.payload_bytes);
  UCP_RETURN_IF_ERROR(r.GetBytes(raw.data(), raw.size()));
  if (version >= 2) {
    UCP_RETURN_IF_ERROR(CheckPayloadCrc(r, raw.data(), raw.size(), name.c_str()));
  }
  return raw;
}

Result<Tensor> GetPayloadLegacy(ByteReader& r, const ParsedHeader& h, uint32_t version,
                                const std::string& name) {
  UCP_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, GetRawPayloadLegacy(r, h, version, name));
  Tensor t = Tensor::Zeros(h.shape);
  DecodeElements(raw.data(), h.dtype, t.numel(), t.data());
  return t;
}

// Verifies the trailing file CRC, the prologue, and (for v2) the version field, returning a
// reader positioned at the first header byte plus the sniffed version.
struct LegacyFile {
  ByteReader reader;
  uint32_t version;
};

Result<LegacyFile> OpenLegacyOrV3(const std::string& contents, uint32_t magic,
                                  const char* kind, const std::string& path) {
  if (contents.size() < 16) {  // prologue + trailing CRC at minimum
    return DataLossError(std::string(kind) + " file truncated: " + path);
  }
  UCP_ASSIGN_OR_RETURN(
      uint32_t version,
      SniffPrologue(reinterpret_cast<const uint8_t*>(contents.data()), magic, kind, path));
  UCP_RETURN_IF_ERROR(CheckFileCrc(contents, kind, path));
  ByteReader r(contents.data(), contents.size() - 4);
  (void)r.GetU32();  // magic (already checked)
  (void)r.GetU32();  // endian (already checked)
  if (version >= 2) {
    (void)r.GetU32();  // version field
  }
  return LegacyFile{r, version};
}

// Parsed v3 tensor-file header prefix (prefix = bytes [0, header_bytes), including its CRC).
struct V3TensorHeader {
  TensorFileInfo info;
  std::vector<uint32_t> chunk_crcs;
};

Status CheckHeaderCrc(const uint8_t* prefix, uint64_t size, const char* kind,
                      const std::string& path) {
  if (size < 24) {
    return DataLossError(std::string(kind) + " header truncated: " + path);
  }
  if (Crc32(prefix, static_cast<size_t>(size - 4)) != LoadU32(prefix + size - 4)) {
    return DataLossError(std::string(kind) + " header CRC mismatch in " + path);
  }
  return OkStatus();
}

Result<std::pair<ParsedHeader, std::pair<uint32_t, std::vector<uint32_t>>>> GetV3Entry(
    ByteReader& r, const std::string& what) {
  UCP_ASSIGN_OR_RETURN(ParsedHeader h, GetHeaderAndSize(r));
  UCP_ASSIGN_OR_RETURN(uint32_t chunk_bytes, r.GetU32());
  if (chunk_bytes == 0) {
    return DataLossError("zero chunk size in " + what);
  }
  UCP_ASSIGN_OR_RETURN(uint32_t num_chunks, r.GetU32());
  if (num_chunks != NumChunksFor(h.payload_bytes, chunk_bytes)) {
    return DataLossError("chunk count does not match payload size in " + what);
  }
  std::vector<uint32_t> crcs(num_chunks);
  for (uint32_t i = 0; i < num_chunks; ++i) {
    UCP_ASSIGN_OR_RETURN(crcs[i], r.GetU32());
  }
  return std::make_pair(std::move(h), std::make_pair(chunk_bytes, std::move(crcs)));
}

Result<V3TensorHeader> ParseV3TensorPrefix(const uint8_t* prefix, uint64_t size,
                                           const std::string& path) {
  UCP_RETURN_IF_ERROR(CheckHeaderCrc(prefix, size, "tensor", path));
  ByteReader r(prefix, static_cast<size_t>(size - 4));
  (void)r.GetU32();  // magic
  (void)r.GetU32();  // endian
  (void)r.GetU32();  // version
  UCP_ASSIGN_OR_RETURN(uint64_t header_bytes, r.GetU64());
  if (header_bytes != size) {
    return DataLossError("inconsistent header size in " + path);
  }
  UCP_ASSIGN_OR_RETURN(auto entry, GetV3Entry(r, path));
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes in tensor header of " + path);
  }
  V3TensorHeader h;
  h.info.shape = std::move(entry.first.shape);
  h.info.dtype = entry.first.dtype;
  h.info.payload_bytes = entry.first.payload_bytes;
  h.info.format_version = 3;
  h.info.chunk_bytes = entry.second.first;
  h.info.num_chunks = static_cast<uint32_t>(entry.second.second.size());
  h.chunk_crcs = std::move(entry.second.second);
  return h;
}

struct V3BundleHeader {
  Json meta;
  std::vector<std::pair<std::string, TensorFileInfo>> entries;
  struct Member {
    uint64_t payload_offset;
    uint32_t chunk_bytes;
    std::vector<uint32_t> chunk_crcs;
  };
  std::vector<Member> members;
  uint64_t payload_end = 0;  // absolute offset just past the last payload
};

Result<V3BundleHeader> ParseV3BundlePrefix(const uint8_t* prefix, uint64_t size,
                                           const std::string& path) {
  UCP_RETURN_IF_ERROR(CheckHeaderCrc(prefix, size, "bundle", path));
  ByteReader r(prefix, static_cast<size_t>(size - 4));
  (void)r.GetU32();  // magic
  (void)r.GetU32();  // endian
  (void)r.GetU32();  // version
  UCP_ASSIGN_OR_RETURN(uint64_t header_bytes, r.GetU64());
  if (header_bytes != size) {
    return DataLossError("inconsistent header size in " + path);
  }
  V3BundleHeader out;
  UCP_ASSIGN_OR_RETURN(std::string meta_text, r.GetString());
  UCP_ASSIGN_OR_RETURN(out.meta, Json::Parse(meta_text));
  UCP_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  if (count > r.remaining()) {  // each entry takes well over one byte
    return DataLossError("implausible bundle entry count in " + path);
  }
  uint64_t expected_offset = header_bytes;
  for (uint32_t i = 0; i < count; ++i) {
    UCP_ASSIGN_OR_RETURN(std::string name, r.GetString());
    UCP_ASSIGN_OR_RETURN(auto entry, GetV3Entry(r, path + ":" + name));
    UCP_ASSIGN_OR_RETURN(uint64_t payload_offset, r.GetU64());
    if (payload_offset != expected_offset) {
      return DataLossError("non-contiguous payload offsets in " + path);
    }
    expected_offset += entry.first.payload_bytes;
    TensorFileInfo info;
    info.shape = std::move(entry.first.shape);
    info.dtype = entry.first.dtype;
    info.payload_bytes = entry.first.payload_bytes;
    info.format_version = 3;
    info.chunk_bytes = entry.second.first;
    info.num_chunks = static_cast<uint32_t>(entry.second.second.size());
    out.entries.emplace_back(std::move(name), std::move(info));
    out.members.push_back(V3BundleHeader::Member{payload_offset, entry.second.first,
                                                 std::move(entry.second.second)});
  }
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes in bundle header of " + path);
  }
  out.payload_end = expected_offset;
  return out;
}

// Reads the [0, header_bytes) prefix of a v3 file (prologue already sniffed).
Result<std::vector<uint8_t>> ReadV3Prefix(ByteSource& f, const char* kind) {
  if (f.size() < 24) {
    return DataLossError(std::string(kind) + " file truncated: " + f.name());
  }
  uint8_t head[20];
  UCP_RETURN_IF_ERROR(f.ReadAt(0, head, sizeof(head)));
  uint64_t header_bytes = LoadU64(head + 12);
  if (header_bytes < 24 || header_bytes + 4 > f.size()) {
    return DataLossError(std::string(kind) + " header size out of range in " + f.name());
  }
  std::vector<uint8_t> prefix(static_cast<size_t>(header_bytes));
  UCP_RETURN_IF_ERROR(f.ReadAt(0, prefix.data(), prefix.size()));
  CountRead(prefix.size());
  return prefix;
}

// The chunk-verifying positional read shared by TensorFileView and BundleFileView: decodes
// elements [elem_begin, elem_begin + elem_count) of a payload living at `payload_offset` in
// `f`. Unverified chunks are read whole (and their CRC checked once); already-verified
// chunks are read only where the range overlaps them.
Status ReadChunkedRange(ByteSource& f, uint64_t payload_offset,
                        uint64_t payload_bytes, uint32_t chunk_bytes,
                        const std::vector<uint32_t>& crcs, std::vector<bool>& verified,
                        std::vector<uint8_t>& scratch, DType dtype, int64_t elem_begin,
                        int64_t elem_count, float* out, const std::string& what) {
  if (elem_count == 0) {
    return OkStatus();
  }
  const uint64_t esize = DTypeSize(dtype);
  const uint64_t byte_begin = static_cast<uint64_t>(elem_begin) * esize;
  const uint64_t byte_end = byte_begin + static_cast<uint64_t>(elem_count) * esize;
  const size_t first_chunk = static_cast<size_t>(byte_begin / chunk_bytes);
  const size_t last_chunk = static_cast<size_t>((byte_end - 1) / chunk_bytes);
  if (scratch.size() < chunk_bytes) {
    scratch.resize(chunk_bytes);
  }
  float* dst = out;
  for (size_t ci = first_chunk; ci <= last_chunk; ++ci) {
    const uint64_t chunk_start = ci * static_cast<uint64_t>(chunk_bytes);
    const uint64_t chunk_size = std::min<uint64_t>(chunk_bytes, payload_bytes - chunk_start);
    const uint64_t overlap_begin = std::max(byte_begin, chunk_start);
    const uint64_t overlap_end = std::min(byte_end, chunk_start + chunk_size);
    const size_t overlap_bytes = static_cast<size_t>(overlap_end - overlap_begin);
    if (!verified[ci]) {
      UCP_RETURN_IF_ERROR(f.ReadAt(payload_offset + chunk_start, scratch.data(),
                                   static_cast<size_t>(chunk_size)));
      CountRead(chunk_size);
      if (Crc32(scratch.data(), static_cast<size_t>(chunk_size)) != crcs[ci]) {
        return DataLossError(ChunkCrcErr(what, ci, crcs.size()));
      }
      verified[ci] = true;
      ChunksVerifiedCounter().Add(1);
      DecodeElements(scratch.data() + (overlap_begin - chunk_start), dtype,
                     static_cast<int64_t>(overlap_bytes / esize), dst);
    } else {
      UCP_RETURN_IF_ERROR(f.ReadAt(payload_offset + overlap_begin, scratch.data(),
                                   overlap_bytes));
      CountRead(overlap_bytes);
      DecodeElements(scratch.data(), dtype, static_cast<int64_t>(overlap_bytes / esize), dst);
    }
    dst += overlap_bytes / esize;
  }
  return OkStatus();
}

Status Commit(const std::string& path, ByteWriter& w) {
  uint32_t crc = Crc32(w.buffer().data(), w.size());
  w.PutU32(crc);
  return WriteFileAtomic(path, w.buffer().data(), w.size());
}

}  // namespace

// ---------------------------------------------------------------------------
// IO stats.

TensorIoStats GetTensorIoStats() {
  TensorIoStats s;
  s.bytes_read = BytesReadCounter().Value();
  s.read_calls = ReadCallsCounter().Value();
  s.chunks_verified = ChunksVerifiedCounter().Value();
  return s;
}

void ResetTensorIoStats() {
  BytesReadCounter().Reset();
  ReadCallsCounter().Reset();
  ChunksVerifiedCounter().Reset();
}

// ---------------------------------------------------------------------------
// Single-tensor files.

Status SaveTensor(const std::string& path, const Tensor& tensor, DType dtype) {
  return SaveTensorAtVersion(path, tensor, dtype, kFormatVersion);
}

Result<std::vector<uint8_t>> SerializeTensor(const Tensor& tensor, DType dtype) {
  if (!tensor.defined()) {
    return InvalidArgumentError("SerializeTensor of undefined tensor");
  }
  std::vector<uint8_t> payload = EncodePayload(tensor, dtype);
  ByteWriter w;
  w.PutU32(kTensorMagic);
  w.PutU32(kEndianTag);
  w.PutU32(3);
  w.PutU64(0);  // header_bytes, patched by BuildV3
  PutHeader(w, tensor, dtype);
  w.PutU64(payload.size());
  PutChunkTable(w, payload, PickChunkBytes(payload.size()));
  return BuildV3(w, {&payload}, {});
}

Status SaveTensorAtVersion(const std::string& path, const Tensor& tensor, DType dtype,
                           uint32_t version) {
  if (!tensor.defined()) {
    return InvalidArgumentError("SaveTensor of undefined tensor: " + path);
  }
  if (version == 3) {
    UCP_ASSIGN_OR_RETURN(std::vector<uint8_t> buf, SerializeTensor(tensor, dtype));
    return WriteFileAtomic(path, buf.data(), buf.size());
  }
  if (version != 1 && version != 2) {
    return InvalidArgumentError("unknown tensor format version " + std::to_string(version));
  }
  std::vector<uint8_t> payload = EncodePayload(tensor, dtype);
  ByteWriter w;
  w.PutU32(kTensorMagic);
  w.PutU32(kEndianTag);
  if (version == 2) {
    w.PutU32(2);
  }
  PutHeader(w, tensor, dtype);
  w.PutU64(payload.size());
  w.PutBytes(payload.data(), payload.size());
  if (version == 2) {
    w.PutU32(Crc32(payload.data(), payload.size()));  // per-tensor CRC
  }
  return Commit(path, w);
}

Result<Tensor> LoadTensor(const std::string& path) {
  UCP_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  CountRead(contents.size());
  UCP_ASSIGN_OR_RETURN(LegacyFile f, OpenLegacyOrV3(contents, kTensorMagic, "tensor", path));
  const uint8_t* data = reinterpret_cast<const uint8_t*>(contents.data());
  if (f.version == 3) {
    uint64_t header_bytes = LoadU64(data + 12);
    if (header_bytes < 24 || header_bytes + 4 > contents.size()) {
      return DataLossError("tensor header size out of range in " + path);
    }
    UCP_ASSIGN_OR_RETURN(V3TensorHeader h, ParseV3TensorPrefix(data, header_bytes, path));
    if (header_bytes + h.info.payload_bytes + 4 != contents.size()) {
      return DataLossError("tensor file truncated: " + path);
    }
    const uint8_t* payload = data + header_bytes;
    UCP_RETURN_IF_ERROR(
        VerifyChunks(payload, h.info.payload_bytes, h.info.chunk_bytes, h.chunk_crcs, path));
    Tensor t = Tensor::Zeros(h.info.shape);
    DecodeElements(payload, h.info.dtype, t.numel(), t.data());
    return t;
  }
  UCP_ASSIGN_OR_RETURN(ParsedHeader h, GetHeaderAndSize(f.reader));
  return GetPayloadLegacy(f.reader, h, f.version, path);
}

Result<TensorFileInfo> StatTensor(const std::string& path) {
  // v3: reads only the header prefix (verified by its own CRC). v1/v2: the view falls back
  // to a whole-file read, so corrupted metadata still cannot plan a bad load.
  UCP_ASSIGN_OR_RETURN(TensorFileView view, TensorFileView::Open(path));
  return view.info();
}

namespace {

// Reads the full contents of a source into memory for a deep-verify pass.
Result<std::string> SlurpSource(ByteSource& source) {
  std::string contents(source.size(), '\0');
  if (!contents.empty()) {
    UCP_RETURN_IF_ERROR(source.ReadAt(0, contents.data(), contents.size()));
  }
  CountRead(contents.size());
  return contents;
}

Status DeepVerifyTensorContents(const std::string& contents, const std::string& path);
Status DeepVerifyBundleContents(const std::string& contents, const std::string& path);

}  // namespace

Status DeepVerifyTensorFile(const std::string& path) {
  UCP_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  CountRead(contents.size());
  return DeepVerifyTensorContents(contents, path);
}

Status DeepVerifyTensorFile(std::unique_ptr<ByteSource> source) {
  UCP_ASSIGN_OR_RETURN(std::string contents, SlurpSource(*source));
  return DeepVerifyTensorContents(contents, source->name());
}

namespace {

Status DeepVerifyTensorContents(const std::string& contents, const std::string& path) {
  UCP_ASSIGN_OR_RETURN(LegacyFile f, OpenLegacyOrV3(contents, kTensorMagic, "tensor", path));
  const uint8_t* data = reinterpret_cast<const uint8_t*>(contents.data());
  if (f.version == 3) {
    uint64_t header_bytes = LoadU64(data + 12);
    if (header_bytes < 24 || header_bytes + 4 > contents.size()) {
      return DataLossError("tensor header size out of range in " + path);
    }
    UCP_ASSIGN_OR_RETURN(V3TensorHeader h, ParseV3TensorPrefix(data, header_bytes, path));
    if (header_bytes + h.info.payload_bytes + 4 != contents.size()) {
      return DataLossError("tensor file truncated: " + path);
    }
    return VerifyChunks(data + header_bytes, h.info.payload_bytes, h.info.chunk_bytes,
                        h.chunk_crcs, path);
  }
  UCP_ASSIGN_OR_RETURN(ParsedHeader h, GetHeaderAndSize(f.reader));
  return GetRawPayloadLegacy(f.reader, h, f.version, path).status();
}

}  // namespace

// ---------------------------------------------------------------------------
// TensorFileView.

Result<TensorFileView> TensorFileView::Open(const std::string& path) {
  UCP_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> source, FileByteSource::Open(path));
  return Open(std::move(source));
}

Result<TensorFileView> TensorFileView::Open(std::unique_ptr<ByteSource> source) {
  const std::string path = source->name();
  if (source->size() < 16) {
    return DataLossError("tensor file truncated: " + path);
  }
  uint8_t prologue[12];
  UCP_RETURN_IF_ERROR(source->ReadAt(0, prologue, sizeof(prologue)));
  UCP_ASSIGN_OR_RETURN(uint32_t version, SniffPrologue(prologue, kTensorMagic, "tensor", path));
  TensorFileView view;
  view.path_ = path;
  if (version == 3) {
    UCP_ASSIGN_OR_RETURN(std::vector<uint8_t> prefix, ReadV3Prefix(*source, "tensor"));
    UCP_ASSIGN_OR_RETURN(V3TensorHeader h,
                         ParseV3TensorPrefix(prefix.data(), prefix.size(), path));
    if (prefix.size() + h.info.payload_bytes + 4 != source->size()) {
      return DataLossError("tensor file truncated: " + path);
    }
    view.info_ = std::move(h.info);
    view.chunk_crcs_ = std::move(h.chunk_crcs);
    view.chunk_verified_.assign(view.chunk_crcs_.size(), false);
    view.payload_offset_ = prefix.size();
    view.source_ = std::move(source);
    return view;
  }
  // Legacy: read and fully verify the whole file once; ranges are then served from memory.
  std::string contents(source->size(), '\0');
  UCP_RETURN_IF_ERROR(source->ReadAt(0, contents.data(), contents.size()));
  CountRead(contents.size());
  UCP_ASSIGN_OR_RETURN(LegacyFile lf, OpenLegacyOrV3(contents, kTensorMagic, "tensor", path));
  UCP_ASSIGN_OR_RETURN(ParsedHeader h, GetHeaderAndSize(lf.reader));
  UCP_ASSIGN_OR_RETURN(view.legacy_payload_,
                       GetRawPayloadLegacy(lf.reader, h, lf.version, path));
  view.info_.shape = std::move(h.shape);
  view.info_.dtype = h.dtype;
  view.info_.payload_bytes = h.payload_bytes;
  view.info_.format_version = lf.version;
  return view;
}

Status TensorFileView::ReadElements(int64_t elem_begin, int64_t elem_count, float* out) {
  if (elem_begin < 0 || elem_count < 0 || elem_begin + elem_count > numel()) {
    return InvalidArgumentError("ReadElements range [" + std::to_string(elem_begin) + ", " +
                                std::to_string(elem_begin + elem_count) +
                                ") out of bounds for " + path_);
  }
  if (source_ == nullptr) {
    DecodeElements(legacy_payload_.data() +
                       static_cast<uint64_t>(elem_begin) * DTypeSize(info_.dtype),
                   info_.dtype, elem_count, out);
    return OkStatus();
  }
  return ReadChunkedRange(*source_, payload_offset_, info_.payload_bytes, info_.chunk_bytes,
                          chunk_crcs_, chunk_verified_, scratch_, info_.dtype, elem_begin,
                          elem_count, out, path_);
}

Result<Tensor> TensorFileView::ReadRange(int64_t row_begin, int64_t row_count) {
  if (row_begin < 0 || row_count < 0 || row_begin + row_count > rows()) {
    return InvalidArgumentError("ReadRange rows [" + std::to_string(row_begin) + ", " +
                                std::to_string(row_begin + row_count) +
                                ") out of bounds for " + path_);
  }
  Shape out_shape;
  if (!info_.shape.empty()) {
    out_shape.push_back(row_count);
    out_shape.insert(out_shape.end(), info_.shape.begin() + 1, info_.shape.end());
  }
  Tensor t = Tensor::Zeros(std::move(out_shape));
  UCP_RETURN_IF_ERROR(
      ReadElements(row_begin * row_numel(), row_count * row_numel(), t.data()));
  return t;
}

Result<Tensor> TensorFileView::ReadAll() {
  Tensor t = Tensor::Zeros(info_.shape);
  UCP_RETURN_IF_ERROR(ReadElements(0, numel(), t.data()));
  return t;
}

// ---------------------------------------------------------------------------
// TensorBundle.

TensorBundle::TensorBundle(const TensorBundle& other)
    : tensors(other.tensors), meta(other.meta) {}

TensorBundle& TensorBundle::operator=(const TensorBundle& other) {
  if (this != &other) {
    tensors = other.tensors;
    meta = other.meta;
    std::lock_guard<std::mutex> lock(index_mu_);
    index_.clear();
  }
  return *this;
}

TensorBundle::TensorBundle(TensorBundle&& other) noexcept
    : tensors(std::move(other.tensors)), meta(std::move(other.meta)) {}

TensorBundle& TensorBundle::operator=(TensorBundle&& other) noexcept {
  if (this != &other) {
    tensors = std::move(other.tensors);
    meta = std::move(other.meta);
    std::lock_guard<std::mutex> lock(index_mu_);
    index_.clear();
  }
  return *this;
}

void TensorBundle::Add(std::string name, Tensor t) {
  tensors.emplace_back(std::move(name), std::move(t));
  std::lock_guard<std::mutex> lock(index_mu_);
  index_.clear();  // rebuilt lazily on the next Find
}

const Tensor* TensorBundle::Find(const std::string& name) const {
  if (tensors.empty()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(index_mu_);
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (index_.empty()) {
      for (size_t i = 0; i < tensors.size(); ++i) {
        index_.emplace(tensors[i].first, i);  // emplace keeps the first duplicate
      }
    }
    auto it = index_.find(name);
    if (it == index_.end()) {
      if (index_.size() == tensors.size()) {
        return nullptr;
      }
    } else if (it->second < tensors.size() && tensors[it->second].first == name) {
      return &tensors[it->second].second;
    }
    // The index is stale (tensors was edited directly, e.g. the snapshot writer's
    // resize-then-Add); rebuild once and retry.
    index_.clear();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Bundle files.

Result<std::vector<uint8_t>> SerializeBundle(const TensorBundle& bundle, DType dtype) {
  std::vector<std::vector<uint8_t>> payloads;
  payloads.reserve(bundle.tensors.size());
  for (const auto& [name, tensor] : bundle.tensors) {
    if (!tensor.defined()) {
      return InvalidArgumentError("SerializeBundle of undefined tensor " + name);
    }
    payloads.push_back(EncodePayload(tensor, dtype));
  }
  ByteWriter w;
  w.PutU32(kBundleMagic);
  w.PutU32(kEndianTag);
  w.PutU32(kFormatVersion);
  w.PutU64(0);  // header_bytes, patched by BuildV3
  w.PutString(bundle.meta.Dump());
  w.PutU32(static_cast<uint32_t>(bundle.tensors.size()));
  std::vector<size_t> offset_positions;
  std::vector<const std::vector<uint8_t>*> payload_ptrs;
  for (size_t i = 0; i < bundle.tensors.size(); ++i) {
    const auto& [name, tensor] = bundle.tensors[i];
    w.PutString(name);
    PutHeader(w, tensor, dtype);
    w.PutU64(payloads[i].size());
    PutChunkTable(w, payloads[i], PickChunkBytes(payloads[i].size()));
    offset_positions.push_back(w.size());
    w.PutU64(0);  // payload_offset, patched by BuildV3
    payload_ptrs.push_back(&payloads[i]);
  }
  return BuildV3(w, payload_ptrs, offset_positions);
}

Status SaveBundle(const std::string& path, const TensorBundle& bundle, DType dtype) {
  UCP_ASSIGN_OR_RETURN(std::vector<uint8_t> buf, SerializeBundle(bundle, dtype));
  return WriteFileAtomic(path, buf.data(), buf.size());
}

Result<TensorBundle> LoadBundle(const std::string& path) {
  UCP_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  CountRead(contents.size());
  UCP_ASSIGN_OR_RETURN(LegacyFile f, OpenLegacyOrV3(contents, kBundleMagic, "bundle", path));
  TensorBundle bundle;
  if (f.version == 3) {
    const uint8_t* data = reinterpret_cast<const uint8_t*>(contents.data());
    uint64_t header_bytes = LoadU64(data + 12);
    if (header_bytes < 24 || header_bytes + 4 > contents.size()) {
      return DataLossError("bundle header size out of range in " + path);
    }
    UCP_ASSIGN_OR_RETURN(V3BundleHeader h, ParseV3BundlePrefix(data, header_bytes, path));
    if (h.payload_end + 4 != contents.size()) {
      return DataLossError("bundle file truncated: " + path);
    }
    bundle.meta = std::move(h.meta);
    for (size_t i = 0; i < h.entries.size(); ++i) {
      const TensorFileInfo& info = h.entries[i].second;
      const V3BundleHeader::Member& m = h.members[i];
      const std::string what = path + ":" + h.entries[i].first;
      UCP_RETURN_IF_ERROR(VerifyChunks(data + m.payload_offset, info.payload_bytes,
                                       m.chunk_bytes, m.chunk_crcs, what));
      Tensor t = Tensor::Zeros(info.shape);
      DecodeElements(data + m.payload_offset, info.dtype, t.numel(), t.data());
      bundle.Add(h.entries[i].first, std::move(t));
    }
    return bundle;
  }
  UCP_ASSIGN_OR_RETURN(std::string meta_text, f.reader.GetString());
  UCP_ASSIGN_OR_RETURN(bundle.meta, Json::Parse(meta_text));
  UCP_ASSIGN_OR_RETURN(uint32_t count, f.reader.GetU32());
  for (uint32_t i = 0; i < count; ++i) {
    UCP_ASSIGN_OR_RETURN(std::string name, f.reader.GetString());
    UCP_ASSIGN_OR_RETURN(ParsedHeader h, GetHeaderAndSize(f.reader));
    UCP_ASSIGN_OR_RETURN(Tensor t, GetPayloadLegacy(f.reader, h, f.version, path + ":" + name));
    bundle.Add(std::move(name), std::move(t));
  }
  return bundle;
}

Result<BundleInfo> StatBundle(const std::string& path) {
  UCP_ASSIGN_OR_RETURN(BundleFileView view, BundleFileView::Open(path));
  BundleInfo info;
  info.meta = view.meta();
  info.entries = view.entries();
  return info;
}

Result<BundleInfo> StatBundle(std::unique_ptr<ByteSource> source) {
  UCP_ASSIGN_OR_RETURN(BundleFileView view, BundleFileView::Open(std::move(source)));
  BundleInfo info;
  info.meta = view.meta();
  info.entries = view.entries();
  return info;
}

Status DeepVerifyBundleFile(const std::string& path) {
  UCP_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  CountRead(contents.size());
  return DeepVerifyBundleContents(contents, path);
}

Status DeepVerifyBundleFile(std::unique_ptr<ByteSource> source) {
  UCP_ASSIGN_OR_RETURN(std::string contents, SlurpSource(*source));
  return DeepVerifyBundleContents(contents, source->name());
}

namespace {

Status DeepVerifyBundleContents(const std::string& contents, const std::string& path) {
  UCP_ASSIGN_OR_RETURN(LegacyFile f, OpenLegacyOrV3(contents, kBundleMagic, "bundle", path));
  if (f.version == 3) {
    const uint8_t* data = reinterpret_cast<const uint8_t*>(contents.data());
    uint64_t header_bytes = LoadU64(data + 12);
    if (header_bytes < 24 || header_bytes + 4 > contents.size()) {
      return DataLossError("bundle header size out of range in " + path);
    }
    UCP_ASSIGN_OR_RETURN(V3BundleHeader h, ParseV3BundlePrefix(data, header_bytes, path));
    if (h.payload_end + 4 != contents.size()) {
      return DataLossError("bundle file truncated: " + path);
    }
    for (size_t i = 0; i < h.entries.size(); ++i) {
      const V3BundleHeader::Member& m = h.members[i];
      UCP_RETURN_IF_ERROR(VerifyChunks(data + m.payload_offset,
                                       h.entries[i].second.payload_bytes, m.chunk_bytes,
                                       m.chunk_crcs, path + ":" + h.entries[i].first));
    }
    return OkStatus();
  }
  UCP_ASSIGN_OR_RETURN(std::string meta_text, f.reader.GetString());
  UCP_ASSIGN_OR_RETURN(Json meta, Json::Parse(meta_text));
  (void)meta;
  UCP_ASSIGN_OR_RETURN(uint32_t count, f.reader.GetU32());
  for (uint32_t i = 0; i < count; ++i) {
    UCP_ASSIGN_OR_RETURN(std::string name, f.reader.GetString());
    UCP_ASSIGN_OR_RETURN(ParsedHeader h, GetHeaderAndSize(f.reader));
    UCP_RETURN_IF_ERROR(
        GetRawPayloadLegacy(f.reader, h, f.version, path + ":" + name).status());
  }
  return OkStatus();
}

}  // namespace

// ---------------------------------------------------------------------------
// BundleFileView.

Result<BundleFileView> BundleFileView::Open(const std::string& path) {
  UCP_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> source, FileByteSource::Open(path));
  return Open(std::move(source));
}

Result<BundleFileView> BundleFileView::Open(std::unique_ptr<ByteSource> source) {
  const std::string path = source->name();
  if (source->size() < 16) {
    return DataLossError("bundle file truncated: " + path);
  }
  uint8_t prologue[12];
  UCP_RETURN_IF_ERROR(source->ReadAt(0, prologue, sizeof(prologue)));
  UCP_ASSIGN_OR_RETURN(uint32_t version, SniffPrologue(prologue, kBundleMagic, "bundle", path));
  BundleFileView view;
  view.path_ = path;
  if (version == 3) {
    UCP_ASSIGN_OR_RETURN(std::vector<uint8_t> prefix, ReadV3Prefix(*source, "bundle"));
    UCP_ASSIGN_OR_RETURN(V3BundleHeader h,
                         ParseV3BundlePrefix(prefix.data(), prefix.size(), path));
    if (h.payload_end + 4 != source->size()) {
      return DataLossError("bundle file truncated: " + path);
    }
    view.meta_ = std::move(h.meta);
    view.entries_ = std::move(h.entries);
    for (V3BundleHeader::Member& m : h.members) {
      Member member;
      member.payload_offset = m.payload_offset;
      member.chunk_bytes = m.chunk_bytes;
      member.chunk_verified.assign(m.chunk_crcs.size(), false);
      member.chunk_crcs = std::move(m.chunk_crcs);
      view.members_.push_back(std::move(member));
    }
    view.source_ = std::move(source);
    return view;
  }
  // Legacy: one verified whole-file read; members become offsets into the raw payload blob.
  std::string contents(source->size(), '\0');
  UCP_RETURN_IF_ERROR(source->ReadAt(0, contents.data(), contents.size()));
  CountRead(contents.size());
  UCP_ASSIGN_OR_RETURN(LegacyFile lf, OpenLegacyOrV3(contents, kBundleMagic, "bundle", path));
  UCP_ASSIGN_OR_RETURN(std::string meta_text, lf.reader.GetString());
  UCP_ASSIGN_OR_RETURN(view.meta_, Json::Parse(meta_text));
  UCP_ASSIGN_OR_RETURN(uint32_t count, lf.reader.GetU32());
  for (uint32_t i = 0; i < count; ++i) {
    UCP_ASSIGN_OR_RETURN(std::string name, lf.reader.GetString());
    UCP_ASSIGN_OR_RETURN(ParsedHeader h, GetHeaderAndSize(lf.reader));
    UCP_ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                         GetRawPayloadLegacy(lf.reader, h, lf.version, path + ":" + name));
    Member member;
    member.payload_offset = view.legacy_payload_.size();
    view.legacy_payload_.insert(view.legacy_payload_.end(), raw.begin(), raw.end());
    view.members_.push_back(std::move(member));
    TensorFileInfo info;
    info.shape = std::move(h.shape);
    info.dtype = h.dtype;
    info.payload_bytes = h.payload_bytes;
    info.format_version = lf.version;
    view.entries_.emplace_back(std::move(name), std::move(info));
  }
  return view;
}

int BundleFileView::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].first == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Result<Tensor> BundleFileView::ReadTensor(const std::string& name) {
  int idx = IndexOf(name);
  if (idx < 0) {
    return NotFoundError("bundle " + path_ + " has no tensor " + name);
  }
  const TensorFileInfo& info = entries_[static_cast<size_t>(idx)].second;
  Tensor t = Tensor::Zeros(info.shape);
  UCP_RETURN_IF_ERROR(
      ReadTensorElements(static_cast<size_t>(idx), 0, t.numel(), t.data()));
  return t;
}

Status BundleFileView::ReadTensorElements(size_t entry_index, int64_t elem_begin,
                                          int64_t elem_count, float* out) {
  if (entry_index >= entries_.size()) {
    return InvalidArgumentError("bundle entry index out of range for " + path_);
  }
  const TensorFileInfo& info = entries_[entry_index].second;
  if (elem_begin < 0 || elem_count < 0 ||
      elem_begin + elem_count > ShapeNumel(info.shape)) {
    return InvalidArgumentError("ReadTensorElements range out of bounds for " + path_ + ":" +
                                entries_[entry_index].first);
  }
  Member& m = members_[entry_index];
  if (source_ == nullptr) {
    DecodeElements(legacy_payload_.data() + m.payload_offset +
                       static_cast<uint64_t>(elem_begin) * DTypeSize(info.dtype),
                   info.dtype, elem_count, out);
    return OkStatus();
  }
  return ReadChunkedRange(*source_, m.payload_offset, info.payload_bytes, m.chunk_bytes,
                          m.chunk_crcs, m.chunk_verified, scratch_, info.dtype, elem_begin,
                          elem_count, out, path_ + ":" + entries_[entry_index].first);
}

// ---------------------------------------------------------------------------
// Chunk index (server-side READ_RANGE verification).

Result<std::optional<FileChunkIndex>> ReadFileChunkIndex(ByteSource& source) {
  if (source.size() < 16) {
    return std::optional<FileChunkIndex>(std::nullopt);
  }
  uint8_t prologue[12];
  UCP_RETURN_IF_ERROR(source.ReadAt(0, prologue, sizeof(prologue)));
  const uint32_t magic = LoadU32(prologue);
  const bool is_tensor = magic == kTensorMagic;
  if (!is_tensor && magic != kBundleMagic) {
    return std::optional<FileChunkIndex>(std::nullopt);
  }
  const char* kind = is_tensor ? "tensor" : "bundle";
  UCP_ASSIGN_OR_RETURN(uint32_t version, SniffPrologue(prologue, magic, kind, source.name()));
  if (version != 3) {
    return std::optional<FileChunkIndex>(std::nullopt);  // v1/v2 have no chunk table
  }
  UCP_ASSIGN_OR_RETURN(std::vector<uint8_t> prefix, ReadV3Prefix(source, kind));
  FileChunkIndex index;
  if (is_tensor) {
    UCP_ASSIGN_OR_RETURN(V3TensorHeader h,
                         ParseV3TensorPrefix(prefix.data(), prefix.size(), source.name()));
    if (prefix.size() + h.info.payload_bytes + 4 != source.size()) {
      return DataLossError("tensor file truncated: " + source.name());
    }
    ChunkRegion region;
    region.begin = prefix.size();
    region.end = prefix.size() + h.info.payload_bytes;
    region.chunk_bytes = h.info.chunk_bytes;
    region.chunk_crcs = std::move(h.chunk_crcs);
    index.regions.push_back(std::move(region));
  } else {
    UCP_ASSIGN_OR_RETURN(V3BundleHeader h,
                         ParseV3BundlePrefix(prefix.data(), prefix.size(), source.name()));
    if (h.payload_end + 4 != source.size()) {
      return DataLossError("bundle file truncated: " + source.name());
    }
    for (size_t i = 0; i < h.members.size(); ++i) {
      ChunkRegion region;
      region.begin = h.members[i].payload_offset;
      region.end = h.members[i].payload_offset + h.entries[i].second.payload_bytes;
      region.chunk_bytes = h.members[i].chunk_bytes;
      region.chunk_crcs = std::move(h.members[i].chunk_crcs);
      index.regions.push_back(std::move(region));
    }
  }
  return std::optional<FileChunkIndex>(std::move(index));
}

}  // namespace ucp
