#include "src/tensor/tensor_file.h"

#include <cstring>

#include "src/common/bytes.h"
#include "src/common/crc32.h"
#include "src/common/fs.h"

namespace ucp {
namespace {

constexpr uint32_t kTensorMagic = 0x31544355;  // "UCT1" little-endian
constexpr uint32_t kBundleMagic = 0x31424355;  // "UCB1" little-endian
constexpr uint32_t kEndianTag = 0x01020304;
constexpr uint32_t kFormatVersion = 2;  // see the header's version history

void PutPayload(ByteWriter& w, const Tensor& t, DType dtype) {
  const float* p = t.data();
  int64_t n = t.numel();
  switch (dtype) {
    case DType::kF32: {
      w.PutU64(static_cast<uint64_t>(n) * 4);
      // All hosts we target are little-endian IEEE-754; the endian tag guards the assumption.
      w.PutBytes(p, static_cast<size_t>(n) * sizeof(float));
      break;
    }
    case DType::kBF16: {
      w.PutU64(static_cast<uint64_t>(n) * 2);
      for (int64_t i = 0; i < n; ++i) {
        uint16_t v = F32ToBf16(p[i]);
        w.PutU8(static_cast<uint8_t>(v & 0xFF));
        w.PutU8(static_cast<uint8_t>(v >> 8));
      }
      break;
    }
    case DType::kF16: {
      w.PutU64(static_cast<uint64_t>(n) * 2);
      for (int64_t i = 0; i < n; ++i) {
        uint16_t v = F32ToF16(p[i]);
        w.PutU8(static_cast<uint8_t>(v & 0xFF));
        w.PutU8(static_cast<uint8_t>(v >> 8));
      }
      break;
    }
  }
}

// Payload plus its per-tensor CRC32 (over the stored payload bytes, after any dtype
// conversion — the CRC protects what is on disk, not the in-memory fp32 view).
void PutPayloadChecked(ByteWriter& w, const Tensor& t, DType dtype) {
  size_t length_prefix = 8;  // PutPayload leads with the u64 byte count
  size_t start = w.size() + length_prefix;
  PutPayload(w, t, dtype);
  w.PutU32(Crc32(w.buffer().data() + start, w.size() - start));
}

void PutHeader(ByteWriter& w, const Tensor& t, DType dtype) {
  w.PutU8(static_cast<uint8_t>(dtype));
  w.PutU32(static_cast<uint32_t>(t.ndim()));
  for (int i = 0; i < t.ndim(); ++i) {
    w.PutI64(t.dim(i));
  }
}

struct ParsedHeader {
  Shape shape;
  DType dtype;
  uint64_t payload_bytes;
};

Result<ParsedHeader> GetHeaderAndSize(ByteReader& r) {
  ParsedHeader h;
  UCP_ASSIGN_OR_RETURN(uint8_t dtype_byte, r.GetU8());
  if (dtype_byte > static_cast<uint8_t>(DType::kF16)) {
    return DataLossError("unknown dtype byte " + std::to_string(dtype_byte));
  }
  h.dtype = static_cast<DType>(dtype_byte);
  UCP_ASSIGN_OR_RETURN(uint32_t ndim, r.GetU32());
  if (ndim > 16) {
    return DataLossError("implausible tensor rank " + std::to_string(ndim));
  }
  for (uint32_t i = 0; i < ndim; ++i) {
    UCP_ASSIGN_OR_RETURN(int64_t d, r.GetI64());
    if (d < 0) {
      return DataLossError("negative dimension in tensor header");
    }
    h.shape.push_back(d);
  }
  UCP_ASSIGN_OR_RETURN(h.payload_bytes, r.GetU64());
  uint64_t expect =
      static_cast<uint64_t>(ShapeNumel(h.shape)) * DTypeSize(h.dtype);
  if (h.payload_bytes != expect) {
    return DataLossError("payload size " + std::to_string(h.payload_bytes) +
                         " does not match shape " + ShapeToString(h.shape));
  }
  return h;
}

Status CheckPayloadCrc(ByteReader& r, const void* payload, size_t size, const char* what) {
  uint32_t actual = Crc32(payload, size);
  UCP_ASSIGN_OR_RETURN(uint32_t stored, r.GetU32());
  if (stored != actual) {
    return DataLossError(std::string("per-tensor CRC mismatch in ") + what);
  }
  return OkStatus();
}

Result<Tensor> GetPayload(ByteReader& r, const ParsedHeader& h, const std::string& name) {
  Tensor t = Tensor::Zeros(h.shape);
  int64_t n = t.numel();
  float* p = t.data();
  switch (h.dtype) {
    case DType::kF32:
      UCP_RETURN_IF_ERROR(r.GetBytes(p, static_cast<size_t>(n) * sizeof(float)));
      // fp32 payload bytes are the tensor memory itself (little-endian host).
      UCP_RETURN_IF_ERROR(
          CheckPayloadCrc(r, p, static_cast<size_t>(n) * sizeof(float), name.c_str()));
      break;
    case DType::kBF16:
    case DType::kF16: {
      std::vector<uint8_t> raw(static_cast<size_t>(n) * 2);
      UCP_RETURN_IF_ERROR(r.GetBytes(raw.data(), raw.size()));
      UCP_RETURN_IF_ERROR(CheckPayloadCrc(r, raw.data(), raw.size(), name.c_str()));
      for (int64_t i = 0; i < n; ++i) {
        uint16_t v = static_cast<uint16_t>(raw[2 * i]) |
                     (static_cast<uint16_t>(raw[2 * i + 1]) << 8);
        p[i] = h.dtype == DType::kBF16 ? Bf16ToF32(v) : F16ToF32(v);
      }
      break;
    }
  }
  return t;
}

// Reads past a payload without converting it, still verifying its CRC (Stat* must not bless
// a corrupt member just because the caller skipped the data).
Status SkipPayloadChecked(ByteReader& r, const ParsedHeader& h, const std::string& name) {
  std::vector<uint8_t> raw(h.payload_bytes);
  UCP_RETURN_IF_ERROR(r.GetBytes(raw.data(), raw.size()));
  return CheckPayloadCrc(r, raw.data(), raw.size(), name.c_str());
}

// Verifies the trailing CRC and returns a reader over the protected region.
Result<ByteReader> OpenChecked(const std::string& contents, uint32_t magic, const char* kind,
                               const std::string& path) {
  if (contents.size() < 16) {  // magic + endian + version + trailing CRC
    return DataLossError(std::string(kind) + " file truncated: " + path);
  }
  size_t body_size = contents.size() - 4;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, contents.data() + body_size, 4);
  uint32_t actual_crc = Crc32(contents.data(), body_size);
  if (stored_crc != actual_crc) {
    return DataLossError(std::string(kind) + " CRC mismatch in " + path);
  }
  ByteReader r(contents.data(), body_size);
  UCP_ASSIGN_OR_RETURN(uint32_t got_magic, r.GetU32());
  if (got_magic != magic) {
    return DataLossError(std::string(kind) + " bad magic in " + path);
  }
  UCP_ASSIGN_OR_RETURN(uint32_t endian, r.GetU32());
  if (endian != kEndianTag) {
    return DataLossError(std::string(kind) + " endianness mismatch in " + path);
  }
  // The whole-file CRC already passed, so a wrong version here is a real version skew, not
  // corruption: reject it as a precondition failure rather than data loss.
  UCP_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kFormatVersion) {
    return FailedPreconditionError(std::string(kind) + " file " + path +
                                   " has format version " + std::to_string(version) +
                                   ", this build reads version " +
                                   std::to_string(kFormatVersion));
  }
  return r;
}

Status Commit(const std::string& path, ByteWriter& w) {
  uint32_t crc = Crc32(w.buffer().data(), w.size());
  w.PutU32(crc);
  return WriteFileAtomic(path, w.buffer().data(), w.size());
}

}  // namespace

Status SaveTensor(const std::string& path, const Tensor& tensor, DType dtype) {
  if (!tensor.defined()) {
    return InvalidArgumentError("SaveTensor of undefined tensor: " + path);
  }
  ByteWriter w;
  w.PutU32(kTensorMagic);
  w.PutU32(kEndianTag);
  w.PutU32(kFormatVersion);
  PutHeader(w, tensor, dtype);
  PutPayloadChecked(w, tensor, dtype);
  return Commit(path, w);
}

Result<Tensor> LoadTensor(const std::string& path) {
  UCP_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  UCP_ASSIGN_OR_RETURN(ByteReader r, OpenChecked(contents, kTensorMagic, "tensor", path));
  UCP_ASSIGN_OR_RETURN(ParsedHeader h, GetHeaderAndSize(r));
  return GetPayload(r, h, path);
}

Result<TensorFileInfo> StatTensor(const std::string& path) {
  // Reads the whole file (CRC check requires it) but skips fp conversion; at simulator scale
  // this is cheap and keeps corrupted metadata from planning a bad load.
  UCP_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  UCP_ASSIGN_OR_RETURN(ByteReader r, OpenChecked(contents, kTensorMagic, "tensor", path));
  UCP_ASSIGN_OR_RETURN(ParsedHeader h, GetHeaderAndSize(r));
  return TensorFileInfo{h.shape, h.dtype, h.payload_bytes};
}

const Tensor* TensorBundle::Find(const std::string& name) const {
  for (const auto& [n, t] : tensors) {
    if (n == name) {
      return &t;
    }
  }
  return nullptr;
}

Status SaveBundle(const std::string& path, const TensorBundle& bundle, DType dtype) {
  ByteWriter w;
  w.PutU32(kBundleMagic);
  w.PutU32(kEndianTag);
  w.PutU32(kFormatVersion);
  w.PutString(bundle.meta.Dump());
  w.PutU32(static_cast<uint32_t>(bundle.tensors.size()));
  for (const auto& [name, tensor] : bundle.tensors) {
    w.PutString(name);
    PutHeader(w, tensor, dtype);
    PutPayloadChecked(w, tensor, dtype);
  }
  return Commit(path, w);
}

Result<TensorBundle> LoadBundle(const std::string& path) {
  UCP_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  UCP_ASSIGN_OR_RETURN(ByteReader r, OpenChecked(contents, kBundleMagic, "bundle", path));
  TensorBundle bundle;
  UCP_ASSIGN_OR_RETURN(std::string meta_text, r.GetString());
  UCP_ASSIGN_OR_RETURN(bundle.meta, Json::Parse(meta_text));
  UCP_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  for (uint32_t i = 0; i < count; ++i) {
    UCP_ASSIGN_OR_RETURN(std::string name, r.GetString());
    UCP_ASSIGN_OR_RETURN(ParsedHeader h, GetHeaderAndSize(r));
    UCP_ASSIGN_OR_RETURN(Tensor t, GetPayload(r, h, path + ":" + name));
    bundle.Add(std::move(name), std::move(t));
  }
  return bundle;
}

Result<BundleInfo> StatBundle(const std::string& path) {
  UCP_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  UCP_ASSIGN_OR_RETURN(ByteReader r, OpenChecked(contents, kBundleMagic, "bundle", path));
  BundleInfo info;
  UCP_ASSIGN_OR_RETURN(std::string meta_text, r.GetString());
  UCP_ASSIGN_OR_RETURN(info.meta, Json::Parse(meta_text));
  UCP_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  for (uint32_t i = 0; i < count; ++i) {
    UCP_ASSIGN_OR_RETURN(std::string name, r.GetString());
    UCP_ASSIGN_OR_RETURN(ParsedHeader h, GetHeaderAndSize(r));
    UCP_RETURN_IF_ERROR(SkipPayloadChecked(r, h, path + ":" + name));
    info.entries.emplace_back(std::move(name),
                              TensorFileInfo{h.shape, h.dtype, h.payload_bytes});
  }
  return info;
}

}  // namespace ucp
