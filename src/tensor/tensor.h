// A minimal dense fp32 tensor.
//
// Design notes:
//  - Storage is always contiguous fp32. Mixed precision is simulated by rounding values
//    through bf16/fp16 (see bf16.h); checkpoint files may store either width.
//  - A Tensor is (shared storage, offset, shape). Reshape/ViewOf share storage — this is how
//    the ZeRO flattened partition groups work: parameters are views into one flat buffer,
//    exactly like DeepSpeed's fp32_partitioned_groups_flat.
//  - Slicing ops (Narrow / Split / Concat) return freshly allocated contiguous tensors.
//    Checkpoint transformation is copy-based by nature, so views would buy nothing there.

#ifndef UCP_SRC_TENSOR_TENSOR_H_
#define UCP_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace ucp {

using Shape = std::vector<int64_t>;

int64_t ShapeNumel(const Shape& shape);
std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  // Default-constructed tensor is empty (numel 0, ndim 0) and distinct from a 0-d scalar.
  Tensor() = default;

  static Tensor Zeros(Shape shape);
  static Tensor Full(Shape shape, float value);
  static Tensor FromVector(Shape shape, std::vector<float> values);
  // i.i.d. N(0, stddev^2) drawn from a counter RNG; fully determined by (rng, counter_base),
  // independent of how the tensor is later sharded.
  static Tensor Gaussian(Shape shape, const CounterRng& rng, uint64_t counter_base,
                         float stddev);
  // A view over `storage`'s elements [offset, offset + numel(shape)). Shares memory.
  static Tensor ViewOf(const Tensor& storage, int64_t offset, Shape shape);

  bool defined() const { return storage_ != nullptr; }
  const Shape& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t dim(int i) const;
  int64_t numel() const { return numel_; }

  float* data();
  const float* data() const;
  float& at(int64_t i);
  float at(int64_t i) const;

  // True if both tensors alias the same storage (not necessarily same range).
  bool SharesStorageWith(const Tensor& other) const { return storage_ == other.storage_; }

  Tensor Clone() const;
  void CopyFrom(const Tensor& src);  // shapes must have equal numel

  // Shape manipulation. Reshape shares storage; the rest copy.
  Tensor Reshape(Shape new_shape) const;
  Tensor Flatten() const { return Reshape({numel()}); }
  Tensor Narrow(int dim, int64_t start, int64_t length) const;
  Tensor Transpose2D() const;

  static Tensor Concat(const std::vector<Tensor>& parts, int dim);
  // Even split; dim size must be divisible by n.
  std::vector<Tensor> Split(int dim, int n) const;
  // Uneven split by explicit sizes (e.g. GQA's fused [q + k + v, hidden] tensor).
  std::vector<Tensor> SplitSizes(int dim, const std::vector<int64_t>& sizes) const;

  // In-place arithmetic (suffix _ mirrors the PyTorch convention).
  void Fill_(float value);
  void Zero_();
  void Add_(const Tensor& other);
  void Sub_(const Tensor& other);
  void Mul_(const Tensor& other);
  void Scale_(float s);
  void AddScaled_(const Tensor& other, float s);  // this += s * other

  // Reductions.
  double SumAll() const;
  float MaxAbs() const;
  double SquaredNorm() const;
  double Dot(const Tensor& other) const;

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }
  static bool BitEqual(const Tensor& a, const Tensor& b);
  static bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-6f, float rtol = 1e-5f);
  // Largest elementwise |a - b|; useful in test diagnostics.
  static float MaxAbsDiff(const Tensor& a, const Tensor& b);

  std::string DebugString(int64_t max_values = 8) const;

 private:
  Tensor(std::shared_ptr<std::vector<float>> storage, int64_t offset, Shape shape);

  std::shared_ptr<std::vector<float>> storage_;
  int64_t offset_ = 0;
  int64_t numel_ = 0;
  Shape shape_;
};

}  // namespace ucp

#endif  // UCP_SRC_TENSOR_TENSOR_H_
