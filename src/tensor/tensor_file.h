// On-disk tensor formats.
//
// Two container types cover the whole system:
//  - Single-tensor files ("UCT1"): one tensor per file. Atom checkpoints use these —
//    <param>/fp32, <param>/exp_avg, <param>/exp_avg_sq — the .pt-file analogue from the
//    paper (§3.1).
//  - Bundle files ("UCB1"): an ordered map of named tensors plus a JSON metadata blob. Each
//    training rank persists its shard of model/optimizer state as one bundle — the analogue
//    of torch.save of a rank's state dict.
//
// Both carry an endianness tag, a format-version field (gated on load), CRC32 integrity
// checks that localize damage to a named tensor (or, from v3, to one payload chunk), and a
// trailing CRC32 over the entire file. Truncation and corruption are detected at load time
// (kDataLoss); `ucp_tool fsck` reports the damaged member.
//
// Format version history:
//   1 — magic, endian tag, payloads, whole-file CRC. (No version field: readers sniff it
//       by the absence of a known version value at the version offset.)
//   2 — adds the version field and a CRC32 after every tensor payload.
//   3 — range-readable layout: all headers form a fixed-size prefix (its size is recorded
//       at a fixed offset and the prefix carries its own CRC), payloads are raw contiguous
//       bytes protected by a table of per-chunk CRC32s (64 KiB chunks, shrinking to 4 KiB
//       for small payloads), and bundle entries record absolute payload offsets. Stat* read
//       only the prefix; TensorFileView/BundleFileView serve pread range reads verifying
//       only the chunks a range touches. The trailing whole-file CRC remains for
//       whole-file readers and deep fsck.
//
// Writers emit v3; readers accept v1, v2, and v3.

#ifndef UCP_SRC_TENSOR_TENSOR_FILE_H_
#define UCP_SRC_TENSOR_TENSOR_FILE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/fs.h"
#include "src/common/json.h"
#include "src/common/status.h"
#include "src/tensor/bf16.h"
#include "src/tensor/tensor.h"

namespace ucp {

// In-memory tensors are always fp32; `dtype` selects the storage width. Loading converts
// back to fp32 (lossy round-trip for bf16/f16, by design).
Status SaveTensor(const std::string& path, const Tensor& tensor, DType dtype = DType::kF32);
Result<Tensor> LoadTensor(const std::string& path);

// The exact bytes SaveTensor/SaveBundle would write, without writing them. The checkpoint
// store's write path streams these through a StoreWriter (local: the same WriteFileAtomic
// as before; remote: chunked frames to ucp_serverd), so serialization is shared between
// both backends.
Result<std::vector<uint8_t>> SerializeTensor(const Tensor& tensor, DType dtype = DType::kF32);

// Writes the legacy format `version` (1 or 2) instead of the current one. Exists for
// backward-compatibility tests and migration tooling; production saves use SaveTensor.
Status SaveTensorAtVersion(const std::string& path, const Tensor& tensor, DType dtype,
                           uint32_t version);

// Header-only peek: shape/dtype/chunking without reading the payload. For v3 files this
// reads a few hundred bytes (the header prefix, verified by its own CRC); v1/v2 files fall
// back to a whole-file read so corruption still cannot bless a bad plan.
struct TensorFileInfo {
  Shape shape;
  DType dtype = DType::kF32;
  uint64_t payload_bytes = 0;
  uint32_t format_version = 0;
  uint32_t chunk_bytes = 0;  // 0 for v1/v2 (no chunk table)
  uint32_t num_chunks = 0;
};
Result<TensorFileInfo> StatTensor(const std::string& path);

// Full-integrity pass without materializing tensors: whole-file CRC plus every per-tensor /
// per-chunk CRC. What `ucp_tool fsck` runs in its default (deep) mode. The ByteSource
// forms verify the same bytes through any source — e.g. a shard materialized from a chunk
// manifest — so fsck's deep mode covers incremental tags too.
Status DeepVerifyTensorFile(const std::string& path);
Status DeepVerifyTensorFile(std::unique_ptr<ByteSource> source);
Status DeepVerifyBundleFile(const std::string& path);
Status DeepVerifyBundleFile(std::unique_ptr<ByteSource> source);

// Cumulative counters for checkpoint-file reads (payload + header bytes actually fetched,
// whether via pread or whole-file reads). Process-global and thread-safe; the load benches
// reset them around an arm to report bytes-read-per-rank.
struct TensorIoStats {
  uint64_t bytes_read = 0;
  uint64_t read_calls = 0;
  uint64_t chunks_verified = 0;
};
TensorIoStats GetTensorIoStats();
void ResetTensorIoStats();

// A read-only view of one v3 tensor file: parses and verifies the header once, then serves
// element/row ranges via pread, verifying only the CRC chunks each range touches (each
// chunk at most once per view). For v1/v2 files the whole payload is read and verified at
// Open and ranges are served from memory — same API, legacy cost. Not thread-safe; give
// each worker its own view (the kernel-side pread is position-independent anyway).
class TensorFileView {
 public:
  static Result<TensorFileView> Open(const std::string& path);
  // Same view over any ByteSource (e.g. a remote store file). Ranges become positional
  // reads against the source; chunk CRCs are still verified on this side of the wire.
  static Result<TensorFileView> Open(std::unique_ptr<ByteSource> source);

  const TensorFileInfo& info() const { return info_; }
  const std::string& path() const { return path_; }
  int64_t numel() const { return ShapeNumel(info_.shape); }
  // Row = index along dim 0 (a 0-d scalar counts as one row of one element).
  int64_t rows() const { return info_.shape.empty() ? 1 : info_.shape[0]; }
  int64_t row_numel() const { return info_.shape.empty() ? 1 : numel() / rows(); }

  // Reads elements [elem_begin, elem_begin + elem_count) (row-major order) as fp32 into
  // `out`. kDataLoss if a touched chunk fails its CRC.
  Status ReadElements(int64_t elem_begin, int64_t elem_count, float* out);

  // Rows [row_begin, row_begin + row_count) as a fresh tensor of shape
  // {row_count, info().shape[1:]...}.
  Result<Tensor> ReadRange(int64_t row_begin, int64_t row_count);

  Result<Tensor> ReadAll();

 private:
  TensorFileView() = default;

  std::string path_;
  TensorFileInfo info_;
  std::unique_ptr<ByteSource> source_;  // held only for v3 files
  uint64_t payload_offset_ = 0;      // absolute file offset of the raw payload (v3)
  std::vector<uint32_t> chunk_crcs_;
  std::vector<bool> chunk_verified_;
  std::vector<uint8_t> scratch_;     // chunk read buffer, reused across calls
  std::vector<uint8_t> legacy_payload_;  // v1/v2: whole payload, verified at Open
};

// An ordered state dict. Order is preserved because ZeRO's flattened groups depend on a
// canonical parameter order.
struct TensorBundle {
  std::vector<std::pair<std::string, Tensor>> tensors;
  Json meta;  // iteration number, strategy descriptor, RNG state, ...

  // Copies and moves carry only `tensors` and `meta`; the lazy name index (and the lock
  // that makes concurrent const Finds safe) are per-instance and rebuilt on first Find.
  TensorBundle() = default;
  TensorBundle(const TensorBundle& other);
  TensorBundle& operator=(const TensorBundle& other);
  TensorBundle(TensorBundle&& other) noexcept;
  TensorBundle& operator=(TensorBundle&& other) noexcept;

  void Add(std::string name, Tensor t);
  // nullptr when absent. O(1) via a name index (rebuilt lazily if `tensors` was edited
  // directly); first insertion wins for duplicate names, matching the old linear scan.
  // Safe to call from many threads at once (the converter's parallel ingest does) as
  // long as no thread is mutating the bundle.
  const Tensor* Find(const std::string& name) const;
  bool Has(const std::string& name) const { return Find(name) != nullptr; }

 private:
  mutable std::mutex index_mu_;
  mutable std::unordered_map<std::string, size_t> index_;
};

Status SaveBundle(const std::string& path, const TensorBundle& bundle,
                  DType dtype = DType::kF32);
Result<std::vector<uint8_t>> SerializeBundle(const TensorBundle& bundle,
                                             DType dtype = DType::kF32);
Result<TensorBundle> LoadBundle(const std::string& path);

// Bundle metadata + member names/shapes without payloads. Header-only for v3 (see
// StatTensor); whole-file for v1/v2.
struct BundleInfo {
  Json meta;
  std::vector<std::pair<std::string, TensorFileInfo>> entries;
};
Result<BundleInfo> StatBundle(const std::string& path);
Result<BundleInfo> StatBundle(std::unique_ptr<ByteSource> source);

// Bundle twin of TensorFileView: one header parse/verify at Open, then per-member range
// reads via pread with chunk-granular CRC verification. The native checkpoint load path
// reads its three flat optimizer tensors through this, and Extract uses it to pull flat
// buffers without the v2-era double CRC pass (whole-file + per-tensor).
class BundleFileView {
 public:
  static Result<BundleFileView> Open(const std::string& path);
  static Result<BundleFileView> Open(std::unique_ptr<ByteSource> source);

  const Json& meta() const { return meta_; }
  const std::string& path() const { return path_; }
  const std::vector<std::pair<std::string, TensorFileInfo>>& entries() const {
    return entries_;
  }
  // -1 when absent.
  int IndexOf(const std::string& name) const;

  // Whole member as a tensor; kNotFound when the name is absent.
  Result<Tensor> ReadTensor(const std::string& name);
  // Elements [elem_begin, elem_begin + elem_count) of member `entry_index` as fp32.
  Status ReadTensorElements(size_t entry_index, int64_t elem_begin, int64_t elem_count,
                            float* out);

 private:
  struct Member {
    uint64_t payload_offset = 0;  // absolute (v3) or offset into legacy_payload_ (v1/v2)
    uint32_t chunk_bytes = 0;
    std::vector<uint32_t> chunk_crcs;
    std::vector<bool> chunk_verified;
  };

  BundleFileView() = default;

  std::string path_;
  Json meta_;
  std::vector<std::pair<std::string, TensorFileInfo>> entries_;
  std::vector<Member> members_;
  std::unique_ptr<ByteSource> source_;  // held only for v3 files
  std::vector<uint8_t> scratch_;
  std::vector<uint8_t> legacy_payload_;  // v1/v2: all payloads back to back, verified
};

// The per-chunk CRC layout of one v3 container file (tensor or bundle), expressed in
// absolute file offsets. ucp_serverd builds this per open file so READ_RANGE requests can
// be verified server-side before any payload byte crosses the wire. One region per payload
// (a tensor file has one; a bundle has one per member, each with its own chunk size).
struct ChunkRegion {
  uint64_t begin = 0;  // absolute offset of the payload this region covers
  uint64_t end = 0;    // one past its last byte
  uint32_t chunk_bytes = 0;
  std::vector<uint32_t> chunk_crcs;
};
struct FileChunkIndex {
  std::vector<ChunkRegion> regions;
};

// Parses the self-checksummed v3 header prefix of `source` into a chunk index. Returns
// nullopt (not an error) for legacy v1/v2 files and for files that are not UCT1/UCB1
// containers at all — those are served without server-side payload verification (readers
// still run their own whole-file checks). kDataLoss when a v3 header is damaged.
Result<std::optional<FileChunkIndex>> ReadFileChunkIndex(ByteSource& source);

}  // namespace ucp

#endif  // UCP_SRC_TENSOR_TENSOR_FILE_H_
