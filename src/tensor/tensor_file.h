// On-disk tensor formats.
//
// Two container types cover the whole system:
//  - Single-tensor files ("UCT1"): one tensor per file. Atom checkpoints use these —
//    <param>/fp32, <param>/exp_avg, <param>/exp_avg_sq — the .pt-file analogue from the
//    paper (§3.1).
//  - Bundle files ("UCB1"): an ordered map of named tensors plus a JSON metadata blob. Each
//    training rank persists its shard of model/optimizer state as one bundle — the analogue
//    of torch.save of a rank's state dict.
//
// Both carry an endianness tag, a format-version field (gated on load: a version mismatch is
// kFailedPrecondition), a CRC32 per tensor payload, and a trailing CRC32 over the entire
// file. Truncation and corruption are detected at load time (kDataLoss); the per-tensor
// CRCs localize the damage to a named tensor instead of just "file is bad", which is what
// `ucp_tool fsck` reports.
//
// Format version history:
//   1 — magic, endian tag, payloads, whole-file CRC.
//   2 — adds the version field and a CRC32 after every tensor payload.

#ifndef UCP_SRC_TENSOR_TENSOR_FILE_H_
#define UCP_SRC_TENSOR_TENSOR_FILE_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/tensor/bf16.h"
#include "src/tensor/tensor.h"

namespace ucp {

// In-memory tensors are always fp32; `dtype` selects the storage width. Loading converts
// back to fp32 (lossy round-trip for bf16/f16, by design).
Status SaveTensor(const std::string& path, const Tensor& tensor, DType dtype = DType::kF32);
Result<Tensor> LoadTensor(const std::string& path);

// Header-only peek: shape and dtype without reading the payload. Used by GenUcpMetadata to
// plan target partitions cheaply.
struct TensorFileInfo {
  Shape shape;
  DType dtype = DType::kF32;
  uint64_t payload_bytes = 0;
};
Result<TensorFileInfo> StatTensor(const std::string& path);

// An ordered state dict. Order is preserved because ZeRO's flattened groups depend on a
// canonical parameter order.
struct TensorBundle {
  std::vector<std::pair<std::string, Tensor>> tensors;
  Json meta;  // iteration number, strategy descriptor, RNG state, ...

  void Add(std::string name, Tensor t) { tensors.emplace_back(std::move(name), std::move(t)); }
  // nullptr when absent.
  const Tensor* Find(const std::string& name) const;
  bool Has(const std::string& name) const { return Find(name) != nullptr; }
};

Status SaveBundle(const std::string& path, const TensorBundle& bundle,
                  DType dtype = DType::kF32);
Result<TensorBundle> LoadBundle(const std::string& path);

// Bundle metadata + member names/shapes without payloads.
struct BundleInfo {
  Json meta;
  std::vector<std::pair<std::string, TensorFileInfo>> entries;
};
Result<BundleInfo> StatBundle(const std::string& path);

}  // namespace ucp

#endif  // UCP_SRC_TENSOR_TENSOR_FILE_H_
