#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace ucp {

int64_t ShapeNumel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    UCP_CHECK_GE(d, 0) << "negative dimension";
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(std::shared_ptr<std::vector<float>> storage, int64_t offset, Shape shape)
    : storage_(std::move(storage)),
      offset_(offset),
      numel_(ShapeNumel(shape)),
      shape_(std::move(shape)) {
  UCP_CHECK_GE(offset_, 0);
  UCP_CHECK_LE(offset_ + numel_, static_cast<int64_t>(storage_->size()))
      << "view exceeds storage";
}

Tensor Tensor::Zeros(Shape shape) {
  int64_t n = ShapeNumel(shape);
  return Tensor(std::make_shared<std::vector<float>>(static_cast<size_t>(n), 0.0f), 0,
                std::move(shape));
}

Tensor Tensor::Full(Shape shape, float value) {
  int64_t n = ShapeNumel(shape);
  return Tensor(std::make_shared<std::vector<float>>(static_cast<size_t>(n), value), 0,
                std::move(shape));
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values) {
  UCP_CHECK_EQ(ShapeNumel(shape), static_cast<int64_t>(values.size()))
      << "shape " << ShapeToString(shape) << " does not match value count";
  return Tensor(std::make_shared<std::vector<float>>(std::move(values)), 0, std::move(shape));
}

Tensor Tensor::Gaussian(Shape shape, const CounterRng& rng, uint64_t counter_base,
                        float stddev) {
  Tensor t = Zeros(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = rng.GaussianAt(counter_base + static_cast<uint64_t>(i)) * stddev;
  }
  return t;
}

Tensor Tensor::ViewOf(const Tensor& storage, int64_t offset, Shape shape) {
  UCP_CHECK(storage.defined());
  return Tensor(storage.storage_, storage.offset_ + offset, std::move(shape));
}

int64_t Tensor::dim(int i) const {
  UCP_CHECK_GE(i, 0);
  UCP_CHECK_LT(i, ndim());
  return shape_[static_cast<size_t>(i)];
}

float* Tensor::data() {
  UCP_CHECK(defined()) << "data() on undefined tensor";
  return storage_->data() + offset_;
}

const float* Tensor::data() const {
  UCP_CHECK(defined()) << "data() on undefined tensor";
  return storage_->data() + offset_;
}

float& Tensor::at(int64_t i) {
  UCP_CHECK_GE(i, 0);
  UCP_CHECK_LT(i, numel_);
  return data()[i];
}

float Tensor::at(int64_t i) const {
  UCP_CHECK_GE(i, 0);
  UCP_CHECK_LT(i, numel_);
  return data()[i];
}

Tensor Tensor::Clone() const {
  Tensor out = Zeros(shape_);
  if (numel_ > 0) {
    std::memcpy(out.data(), data(), static_cast<size_t>(numel_) * sizeof(float));
  }
  return out;
}

void Tensor::CopyFrom(const Tensor& src) {
  UCP_CHECK_EQ(numel_, src.numel()) << "CopyFrom numel mismatch";
  if (numel_ > 0) {
    std::memmove(data(), src.data(), static_cast<size_t>(numel_) * sizeof(float));
  }
}

Tensor Tensor::Reshape(Shape new_shape) const {
  UCP_CHECK_EQ(ShapeNumel(new_shape), numel_)
      << "Reshape " << ShapeToString(shape_) << " -> " << ShapeToString(new_shape);
  return Tensor(storage_, offset_, std::move(new_shape));
}

Tensor Tensor::Narrow(int d, int64_t start, int64_t length) const {
  UCP_CHECK_GE(d, 0);
  UCP_CHECK_LT(d, ndim());
  UCP_CHECK_GE(start, 0);
  UCP_CHECK_LE(start + length, shape_[static_cast<size_t>(d)])
      << "Narrow out of range on dim " << d << " of " << ShapeToString(shape_);

  Shape out_shape = shape_;
  out_shape[static_cast<size_t>(d)] = length;
  Tensor out = Zeros(out_shape);

  // Treat the tensor as [outer, dim, inner] and copy contiguous inner*length rows.
  int64_t outer = 1;
  for (int i = 0; i < d; ++i) {
    outer *= shape_[static_cast<size_t>(i)];
  }
  int64_t inner = 1;
  for (int i = d + 1; i < ndim(); ++i) {
    inner *= shape_[static_cast<size_t>(i)];
  }
  int64_t src_dim = shape_[static_cast<size_t>(d)];
  const float* src = data();
  float* dst = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    const float* src_row = src + (o * src_dim + start) * inner;
    float* dst_row = dst + o * length * inner;
    std::memcpy(dst_row, src_row, static_cast<size_t>(length * inner) * sizeof(float));
  }
  return out;
}

Tensor Tensor::Transpose2D() const {
  UCP_CHECK_EQ(ndim(), 2) << "Transpose2D needs a 2-d tensor";
  int64_t rows = shape_[0];
  int64_t cols = shape_[1];
  Tensor out = Zeros({cols, rows});
  const float* src = data();
  float* dst = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      dst[c * rows + r] = src[r * cols + c];
    }
  }
  return out;
}

Tensor Tensor::Concat(const std::vector<Tensor>& parts, int d) {
  UCP_CHECK(!parts.empty()) << "Concat of zero tensors";
  const Tensor& first = parts[0];
  UCP_CHECK_GE(d, 0);
  UCP_CHECK_LT(d, first.ndim());

  int64_t total_dim = 0;
  for (const Tensor& t : parts) {
    UCP_CHECK_EQ(t.ndim(), first.ndim()) << "Concat rank mismatch";
    for (int i = 0; i < first.ndim(); ++i) {
      if (i != d) {
        UCP_CHECK_EQ(t.dim(i), first.dim(i))
            << "Concat shape mismatch on dim " << i << ": " << ShapeToString(t.shape())
            << " vs " << ShapeToString(first.shape());
      }
    }
    total_dim += t.dim(d);
  }

  Shape out_shape = first.shape();
  out_shape[static_cast<size_t>(d)] = total_dim;
  Tensor out = Zeros(out_shape);

  int64_t outer = 1;
  for (int i = 0; i < d; ++i) {
    outer *= first.dim(i);
  }
  int64_t inner = 1;
  for (int i = d + 1; i < first.ndim(); ++i) {
    inner *= first.dim(i);
  }

  float* dst = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    int64_t written = 0;
    for (const Tensor& t : parts) {
      int64_t len = t.dim(d) * inner;
      std::memcpy(dst + (o * total_dim + written) * inner, t.data() + o * len,
                  static_cast<size_t>(len) * sizeof(float));
      written += t.dim(d);
    }
  }
  return out;
}

std::vector<Tensor> Tensor::Split(int d, int n) const {
  UCP_CHECK_GT(n, 0);
  UCP_CHECK_GE(d, 0);
  UCP_CHECK_LT(d, ndim());
  UCP_CHECK_EQ(shape_[static_cast<size_t>(d)] % n, 0)
      << "Split: dim " << d << " of " << ShapeToString(shape_) << " not divisible by " << n;
  int64_t piece = shape_[static_cast<size_t>(d)] / n;
  std::vector<int64_t> sizes(static_cast<size_t>(n), piece);
  return SplitSizes(d, sizes);
}

std::vector<Tensor> Tensor::SplitSizes(int d, const std::vector<int64_t>& sizes) const {
  int64_t total = 0;
  for (int64_t s : sizes) {
    total += s;
  }
  UCP_CHECK_EQ(total, shape_[static_cast<size_t>(d)]) << "SplitSizes sizes do not cover dim";
  std::vector<Tensor> out;
  out.reserve(sizes.size());
  int64_t start = 0;
  for (int64_t s : sizes) {
    out.push_back(Narrow(d, start, s));
    start += s;
  }
  return out;
}

void Tensor::Fill_(float value) {
  float* p = data();
  std::fill(p, p + numel_, value);
}

void Tensor::Zero_() { Fill_(0.0f); }

void Tensor::Add_(const Tensor& other) {
  UCP_CHECK_EQ(numel_, other.numel()) << "Add_ numel mismatch";
  float* a = data();
  const float* b = other.data();
  for (int64_t i = 0; i < numel_; ++i) {
    a[i] += b[i];
  }
}

void Tensor::Sub_(const Tensor& other) {
  UCP_CHECK_EQ(numel_, other.numel()) << "Sub_ numel mismatch";
  float* a = data();
  const float* b = other.data();
  for (int64_t i = 0; i < numel_; ++i) {
    a[i] -= b[i];
  }
}

void Tensor::Mul_(const Tensor& other) {
  UCP_CHECK_EQ(numel_, other.numel()) << "Mul_ numel mismatch";
  float* a = data();
  const float* b = other.data();
  for (int64_t i = 0; i < numel_; ++i) {
    a[i] *= b[i];
  }
}

void Tensor::Scale_(float s) {
  float* a = data();
  for (int64_t i = 0; i < numel_; ++i) {
    a[i] *= s;
  }
}

void Tensor::AddScaled_(const Tensor& other, float s) {
  UCP_CHECK_EQ(numel_, other.numel()) << "AddScaled_ numel mismatch";
  float* a = data();
  const float* b = other.data();
  for (int64_t i = 0; i < numel_; ++i) {
    a[i] += s * b[i];
  }
}

double Tensor::SumAll() const {
  double sum = 0.0;
  const float* p = data();
  for (int64_t i = 0; i < numel_; ++i) {
    sum += p[i];
  }
  return sum;
}

float Tensor::MaxAbs() const {
  float m = 0.0f;
  const float* p = data();
  for (int64_t i = 0; i < numel_; ++i) {
    m = std::max(m, std::fabs(p[i]));
  }
  return m;
}

double Tensor::SquaredNorm() const {
  double sum = 0.0;
  const float* p = data();
  for (int64_t i = 0; i < numel_; ++i) {
    sum += static_cast<double>(p[i]) * p[i];
  }
  return sum;
}

double Tensor::Dot(const Tensor& other) const {
  UCP_CHECK_EQ(numel_, other.numel()) << "Dot numel mismatch";
  double sum = 0.0;
  const float* a = data();
  const float* b = other.data();
  for (int64_t i = 0; i < numel_; ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  return sum;
}

bool Tensor::BitEqual(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return false;
  }
  return std::memcmp(a.data(), b.data(), static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

bool Tensor::AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) {
    return false;
  }
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    float diff = std::fabs(pa[i] - pb[i]);
    if (diff > atol + rtol * std::fabs(pb[i])) {
      return false;
    }
  }
  return true;
}

float Tensor::MaxAbsDiff(const Tensor& a, const Tensor& b) {
  UCP_CHECK_EQ(a.numel(), b.numel());
  float m = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  }
  return m;
}

std::string Tensor::DebugString(int64_t max_values) const {
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << " {";
  const float* p = defined() ? data() : nullptr;
  for (int64_t i = 0; i < std::min(numel_, max_values); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << p[i];
  }
  if (numel_ > max_values) {
    os << ", ...";
  }
  os << "}";
  return os.str();
}

}  // namespace ucp
