#include "src/tensor/matmul.h"

namespace ucp {

namespace {

void CheckMatrix(const Tensor& t, const char* name) {
  UCP_CHECK_EQ(t.ndim(), 2) << name << " must be 2-d, got " << ShapeToString(t.shape());
}

}  // namespace

void MatmulNN(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  CheckMatrix(a, "A");
  CheckMatrix(b, "B");
  CheckMatrix(c, "C");
  int64_t m = a.dim(0);
  int64_t k = a.dim(1);
  int64_t n = b.dim(1);
  UCP_CHECK_EQ(b.dim(0), k) << "MatmulNN inner dim mismatch";
  UCP_CHECK_EQ(c.dim(0), m);
  UCP_CHECK_EQ(c.dim(1), n);

  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  if (!accumulate) {
    c.Zero_();
  }
  // i-k-j order: streams B rows, accumulates into C row i; accumulation order over k is fixed
  // left-to-right which keeps results reproducible.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      float aik = pa[i * k + kk];
      if (aik == 0.0f) {
        continue;
      }
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

void MatmulTN(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  CheckMatrix(a, "A");
  CheckMatrix(b, "B");
  CheckMatrix(c, "C");
  int64_t k = a.dim(0);
  int64_t m = a.dim(1);
  int64_t n = b.dim(1);
  UCP_CHECK_EQ(b.dim(0), k) << "MatmulTN inner dim mismatch";
  UCP_CHECK_EQ(c.dim(0), m);
  UCP_CHECK_EQ(c.dim(1), n);

  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  if (!accumulate) {
    c.Zero_();
  }
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      float aki = arow[i];
      if (aki == 0.0f) {
        continue;
      }
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += aki * brow[j];
      }
    }
  }
}

void MatmulNT(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  CheckMatrix(a, "A");
  CheckMatrix(b, "B");
  CheckMatrix(c, "C");
  int64_t m = a.dim(0);
  int64_t k = a.dim(1);
  int64_t n = b.dim(0);
  UCP_CHECK_EQ(b.dim(1), k) << "MatmulNT inner dim mismatch";
  UCP_CHECK_EQ(c.dim(0), m);
  UCP_CHECK_EQ(c.dim(1), n);

  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  if (!accumulate) {
    c.Zero_();
  }
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += arow[kk] * brow[kk];
      }
      crow[j] += acc;
    }
  }
}

Tensor MatmulNN(const Tensor& a, const Tensor& b) {
  Tensor c = Tensor::Zeros({a.dim(0), b.dim(1)});
  MatmulNN(a, b, c, /*accumulate=*/false);
  return c;
}

Tensor MatmulTN(const Tensor& a, const Tensor& b) {
  Tensor c = Tensor::Zeros({a.dim(1), b.dim(1)});
  MatmulTN(a, b, c, /*accumulate=*/false);
  return c;
}

Tensor MatmulNT(const Tensor& a, const Tensor& b) {
  Tensor c = Tensor::Zeros({a.dim(0), b.dim(0)});
  MatmulNT(a, b, c, /*accumulate=*/false);
  return c;
}

}  // namespace ucp
