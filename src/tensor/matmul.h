// Matrix multiply kernels for the training simulator.
//
// Plain triple loops with a fixed accumulation order: determinism across runs matters more
// than throughput at the simulator's scales, and a fixed order is what lets the resume tests
// assert bit-identical losses.

#ifndef UCP_SRC_TENSOR_MATMUL_H_
#define UCP_SRC_TENSOR_MATMUL_H_

#include "src/tensor/tensor.h"

namespace ucp {

// C (+)= A[m,k] * B[k,n]. If accumulate is false C is overwritten.
void MatmulNN(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);
// C (+)= A[k,m]^T * B[k,n]  (used for weight gradients: dW = X^T dY).
void MatmulTN(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);
// C (+)= A[m,k] * B[n,k]^T  (used for input gradients: dX = dY W^T).
void MatmulNT(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);

// Allocating conveniences.
Tensor MatmulNN(const Tensor& a, const Tensor& b);
Tensor MatmulTN(const Tensor& a, const Tensor& b);
Tensor MatmulNT(const Tensor& a, const Tensor& b);

}  // namespace ucp

#endif  // UCP_SRC_TENSOR_MATMUL_H_
