// Fast 64-bit content digests for checkpoint chunks.
//
// The incremental flush path identifies chunks by content: a chunk whose digest matches
// the parent tag's digest at the same position is not rewritten, and a chunk whose digest
// already exists in the content-addressed index is stored once regardless of which rank or
// tag produced it. The digest is an XXH64-style non-cryptographic hash, so it is never
// trusted alone: every dedup decision in the chunk index also compares the stored
// object's raw size and CRC32 against the incoming chunk (~96 bits of combined check), a
// collision is refused typed at save time instead of aliased, the daemon re-hashes every
// uploaded chunk before publishing it under a claimed digest, and every serialized file
// keeps its own v3 per-chunk CRC table so anything that still slips through is kDataLoss
// on first read, localized to the chunk.
//
// Digests are rendered as fixed-width 16-hex-digit strings in manifests and object paths
// (u64 does not round-trip through JSON numbers).

#ifndef UCP_SRC_TENSOR_CHUNK_DIGEST_H_
#define UCP_SRC_TENSOR_CHUNK_DIGEST_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ucp {

// Chunking granularity of the incremental manifest layer: fixed-size spans over the
// serialized file bytes. Independent of the v3 format's internal CRC chunking (which
// adapts to tensor size); 64 KiB matches the v3 default so a dirty tensor region
// invalidates a comparable number of chunks in both layers.
inline constexpr size_t kManifestChunkBytes = 64 * 1024;

// One-shot 64-bit digest of a buffer.
uint64_t ChunkDigest(const void* data, size_t size);

// Digests of consecutive `chunk_bytes`-sized spans of [data, data+size); the last span
// may be short. Empty input yields an empty vector.
std::vector<uint64_t> ComputeChunkDigests(const void* data, size_t size,
                                          size_t chunk_bytes = kManifestChunkBytes);

// Fixed-width lowercase hex rendering ("00f3ab..." — always 16 digits) and its inverse.
std::string DigestToHex(uint64_t digest);
std::optional<uint64_t> DigestFromHex(const std::string& hex);

}  // namespace ucp

#endif  // UCP_SRC_TENSOR_CHUNK_DIGEST_H_
