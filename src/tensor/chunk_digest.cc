#include "src/tensor/chunk_digest.h"

#include <cstring>

namespace ucp {
namespace {

// XXH64 constants.
constexpr uint64_t kP1 = 0x9E3779B185EBCA87ull;
constexpr uint64_t kP2 = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kP3 = 0x165667B19E3779F9ull;
constexpr uint64_t kP4 = 0x85EBCA77C2B2AE63ull;
constexpr uint64_t kP5 = 0x27D4EB2F165667C5ull;

inline uint64_t Rotl64(uint64_t v, int r) { return (v << r) | (v >> (64 - r)); }

inline uint64_t Load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kP2;
  acc = Rotl64(acc, 31);
  return acc * kP1;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Round(0, val);
  return acc * kP1 + kP4;
}

}  // namespace

uint64_t ChunkDigest(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* const end = p + size;
  uint64_t h;
  if (size >= 32) {
    uint64_t v1 = kP1 + kP2, v2 = kP2, v3 = 0, v4 = 0ull - kP1;
    const uint8_t* const limit = end - 32;
    do {
      v1 = Round(v1, Load64(p));
      v2 = Round(v2, Load64(p + 8));
      v3 = Round(v3, Load64(p + 16));
      v4 = Round(v4, Load64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = kP5;
  }
  h += static_cast<uint64_t>(size);
  while (p + 8 <= end) {
    h ^= Round(0, Load64(p));
    h = Rotl64(h, 27) * kP1 + kP4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Load32(p)) * kP1;
    h = Rotl64(h, 23) * kP2 + kP3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kP5;
    h = Rotl64(h, 11) * kP1;
    ++p;
  }
  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h;
}

std::vector<uint64_t> ComputeChunkDigests(const void* data, size_t size,
                                          size_t chunk_bytes) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  std::vector<uint64_t> digests;
  if (chunk_bytes == 0) chunk_bytes = kManifestChunkBytes;
  digests.reserve((size + chunk_bytes - 1) / chunk_bytes);
  for (size_t off = 0; off < size; off += chunk_bytes) {
    const size_t n = size - off < chunk_bytes ? size - off : chunk_bytes;
    digests.push_back(ChunkDigest(p + off, n));
  }
  return digests;
}

std::string DigestToHex(uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[digest & 0xf];
    digest >>= 4;
  }
  return out;
}

std::optional<uint64_t> DigestFromHex(const std::string& hex) {
  if (hex.size() != 16) return std::nullopt;
  uint64_t v = 0;
  for (char c : hex) {
    uint64_t d;
    if (c >= '0' && c <= '9') d = static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') d = static_cast<uint64_t>(c - 'a' + 10);
    else return std::nullopt;
    v = v << 4 | d;
  }
  return v;
}

}  // namespace ucp
