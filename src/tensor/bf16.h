// Reduced-precision value simulation for mixed-precision training (MPT).
//
// The trainer keeps fp32 master weights (what UCP checkpoints) and, when MPT is enabled,
// computes forward passes on weights rounded through bf16 or fp16 — reproducing the paper's
// point that storing fp32 masters lets a run resume under either half format.

#ifndef UCP_SRC_TENSOR_BF16_H_
#define UCP_SRC_TENSOR_BF16_H_

#include <cstdint>

#include "src/tensor/tensor.h"

namespace ucp {

// Storage widths supported by the tensor file format.
enum class DType : uint8_t { kF32 = 0, kBF16 = 1, kF16 = 2 };

const char* DTypeName(DType dtype);
size_t DTypeSize(DType dtype);

// Scalar conversions (round-to-nearest-even for bf16; standard IEEE half conversion for f16).
uint16_t F32ToBf16(float value);
float Bf16ToF32(uint16_t bits);
uint16_t F32ToF16(float value);
float F16ToF32(uint16_t bits);

// Rounds every element through the given dtype (no-op for kF32). Returns a new tensor.
Tensor RoundThrough(const Tensor& t, DType dtype);
// In-place variant.
void RoundThrough_(Tensor& t, DType dtype);

}  // namespace ucp

#endif  // UCP_SRC_TENSOR_BF16_H_
