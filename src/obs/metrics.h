// Process-wide metrics registry: named counters, gauges, and histograms with cheap atomic
// updates on the hot path and a single SnapshotMetrics() for programmatic access.
//
// This is the unified home for every runtime statistic the system used to keep in ad-hoc
// per-module structs (TensorIoStats, IoRetryStats, AsyncSaveStats, ConvertStats,
// AtomSliceCache::Stats). Those public getter APIs remain, implemented over this registry;
// new instrumentation should register metrics directly.
//
// Naming convention (see docs/observability.md): dot-separated lowercase paths,
// <subsystem>.<object>.<measure>[_<unit>], e.g. `comm.allreduce.bytes`,
// `save.flush.seconds`, `ucp.load.chunks_verified`. Units are spelled out in the name
// (seconds, bytes, calls) so text dumps are self-describing.
//
// Dependency note: this library sits BELOW src/common (ucp_common links ucp_obs), so it may
// use only the standard library. Instrumentation in ucp_common (fs.cc retry counters) and
// everything above is therefore free to use the registry.
//
// Callsite idiom — resolve the metric once, update with a single atomic op:
//
//   static obs::Counter& bytes = obs::MetricsRegistry::Global().GetCounter("comm.p2p.bytes");
//   bytes.Add(t.numel() * sizeof(float));

#ifndef UCP_SRC_OBS_METRICS_H_
#define UCP_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ucp {
namespace obs {

// Monotonic event/byte counter. Add is one relaxed fetch_add.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins instantaneous value (e.g. last committed iteration, in-flight saves).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  // Monotonic ratchet: keeps the maximum of all Set-like updates.
  void Max(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Distribution of non-negative samples (durations in seconds, sizes in bytes). Values are
// recorded in micro-units (1e-6) into power-of-two buckets, so one Observe is a handful of
// relaxed atomics and snapshots can report count/sum/max plus approximate percentiles.
class Histogram {
 public:
  static constexpr int kBuckets = 64;  // bucket i counts samples with floor(log2(micros))==i

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  double MaxValue() const;
  double Mean() const { uint64_t n = Count(); return n == 0 ? 0.0 : Sum() / static_cast<double>(n); }
  // Approximate quantile (q in [0,1]) from the bucket histogram; exact enough for dumps.
  double ApproxQuantile(double q) const;
  // Per-bucket counts (kBuckets entries; bucket i covers [2^i, 2^(i+1)) micro-units, bucket
  // 0 also holds sub-micro samples). Feeds the Prometheus cumulative-bucket exposition.
  std::vector<uint64_t> BucketCounts() const;
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
  std::atomic<uint64_t> max_micros_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

// One metric's value as captured by SnapshotMetrics. Exactly one of the kind-specific
// fields is meaningful, keyed by `kind`.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;        // kCounter
  int64_t gauge = 0;           // kGauge
  uint64_t count = 0;          // kHistogram
  double sum = 0.0;            // kHistogram
  double mean = 0.0;           // kHistogram
  double max = 0.0;            // kHistogram
  double p50 = 0.0;            // kHistogram
  double p99 = 0.0;            // kHistogram
  std::vector<uint64_t> buckets;  // kHistogram: per-bucket counts (Histogram::BucketCounts)
};

using MetricsSnapshot = std::vector<MetricValue>;  // sorted by name

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Returns the metric registered under `name`, creating it on first use. The reference is
  // stable for the life of the process; cache it in a static at the callsite. Names are
  // namespaced per kind (a counter and a histogram may not share a name — checked).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  // Zeroes every registered metric (benches/tests isolate measurement windows with this).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Convenience front doors.
MetricsSnapshot SnapshotMetrics();
void ResetMetrics();
// Human-readable table, one metric per line — what `ucp_tool metrics` prints.
std::string DumpMetricsText();
// Prometheus text exposition (version 0.0.4) of the same registry: counters and gauges as
// single samples, histograms as cumulative `_bucket{le=...}` series (upper bounds are the
// power-of-two bucket edges expressed in base units) plus `_sum` / `_count`. Metric names
// are mangled to the Prometheus charset: every character outside [a-zA-Z0-9_:] becomes '_'
// (`store.server.rpc.write_begin.seconds` -> `store_server_rpc_write_begin_seconds`).
std::string DumpMetricsPrometheus();

}  // namespace obs
}  // namespace ucp

#endif  // UCP_SRC_OBS_METRICS_H_
