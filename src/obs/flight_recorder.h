// Crash flight recorder: dumps the tracer's ring buffers + a metrics snapshot to disk.
//
// When something goes wrong mid-run — the supervisor detects a RankFailure, fsck finds an
// unrecoverable checkpoint — the most valuable artifact is what every rank was doing in the
// moments before. The span tracer already keeps that history in per-thread rings
// (src/obs/trace.h); DumpFlightRecord writes it out as
//
//   <dir>/flightrec/flight-<seq>-<label>.trace.json   Chrome trace (last N events/thread)
//   <dir>/flightrec/flight-<seq>-<label>.metrics.txt  DumpMetricsText() at dump time
//
// where <seq> is a process-wide dump counter (a run with repeated failures keeps every
// dossier) and <label> names the trigger ("rank-failure", "fsck").
//
// This file deliberately uses raw POSIX I/O instead of src/common/fs: the fs layer routes
// through the deterministic fault injector, and a crash dossier written during fault
// handling must not itself be corrupted by injected faults. Best-effort by design — returns
// false with `err` set rather than a Status, and never throws, so callers on failure paths
// can log and move on.

#ifndef UCP_SRC_OBS_FLIGHT_RECORDER_H_
#define UCP_SRC_OBS_FLIGHT_RECORDER_H_

#include <string>

namespace ucp {
namespace obs {

struct FlightRecordOptions {
  // Newest events kept per thread; 0 = everything in the rings.
  size_t max_events_per_thread = 512;
  // Also write the metrics snapshot alongside the trace.
  bool include_metrics = true;
};

// Writes the dossier under <dir>/flightrec/ (created if missing). On success returns true
// and sets `trace_path` to the .trace.json written; on failure returns false and sets
// `err`. Thread-safe; concurrent dumps get distinct sequence numbers.
bool DumpFlightRecord(const std::string& dir, const std::string& label,
                      const FlightRecordOptions& options, std::string* trace_path,
                      std::string* err);

// Convenience overload with default options.
bool DumpFlightRecord(const std::string& dir, const std::string& label,
                      std::string* trace_path, std::string* err);

}  // namespace obs
}  // namespace ucp

#endif  // UCP_SRC_OBS_FLIGHT_RECORDER_H_
