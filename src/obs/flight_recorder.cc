#include "src/obs/flight_recorder.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ucp {
namespace obs {

namespace {

std::atomic<uint64_t> g_dump_seq{0};

bool EnsureDir(const std::string& path, std::string* err) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return true;
  }
  *err = "mkdir " + path + ": " + ::strerror(errno);
  return false;
}

// Raw POSIX write + fsync; see the header for why this bypasses src/common/fs.
bool WriteWhole(const std::string& path, const std::string& content, std::string* err) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    *err = "open " + path + ": " + ::strerror(errno);
    return false;
  }
  size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      *err = "write " + path + ": " + ::strerror(errno);
      ::close(fd);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  ::fsync(fd);  // best-effort: a dossier losing a page beats no dossier
  if (::close(fd) != 0) {
    *err = "close " + path + ": " + ::strerror(errno);
    return false;
  }
  return true;
}

std::string SanitizeLabel(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out += ok ? c : '-';
  }
  return out.empty() ? std::string("dump") : out;
}

}  // namespace

bool DumpFlightRecord(const std::string& dir, const std::string& label,
                      const FlightRecordOptions& options, std::string* trace_path,
                      std::string* err) {
  std::string local_err;
  if (err == nullptr) {
    err = &local_err;
  }
  const std::string flight_dir = dir + "/flightrec";
  if (!EnsureDir(flight_dir, err)) {
    return false;
  }
  const uint64_t seq = g_dump_seq.fetch_add(1, std::memory_order_relaxed);
  const std::string stem =
      flight_dir + "/flight-" + std::to_string(seq) + "-" + SanitizeLabel(label);

  const std::string trace_json = ExportChromeTraceJson(options.max_events_per_thread);
  const std::string trace_file = stem + ".trace.json";
  if (!WriteWhole(trace_file, trace_json, err)) {
    return false;
  }
  if (options.include_metrics) {
    // Metrics failure doesn't invalidate the trace dossier; report best-effort.
    std::string metrics_err;
    WriteWhole(stem + ".metrics.txt", DumpMetricsText(), &metrics_err);
  }
  if (trace_path != nullptr) {
    *trace_path = trace_file;
  }
  return true;
}

bool DumpFlightRecord(const std::string& dir, const std::string& label,
                      std::string* trace_path, std::string* err) {
  return DumpFlightRecord(dir, label, FlightRecordOptions{}, trace_path, err);
}

}  // namespace obs
}  // namespace ucp
