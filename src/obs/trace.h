// Per-rank span tracer with Chrome trace_event export, doubling as a crash flight recorder.
//
// Every instrumented scope — `UCP_TRACE_SPAN("save.flush")` — records one complete event
// (name, start, duration, nesting depth, optional args) into a ring buffer owned by the
// recording thread. Threads never contend with each other on the hot path: each thread
// writes only its own ring, and the ring's mutex is taken elsewhere only by the (rare)
// exporter, so a span costs two clock reads plus an uncontended lock. Rings are
// fixed-capacity and overwrite oldest-first, which is exactly the flight-recorder property:
// at any moment every thread holds its most recent history, ready to be dumped when a rank
// failure or integrity error needs a post-mortem (src/obs/flight_recorder.h).
//
// Export produces Chrome trace_event JSON ("X" complete events) loadable in
// chrome://tracing or https://ui.perfetto.dev. Simulated ranks map to trace *processes*
// (pid = rank + 1, named "rank N") so a TP·PP·DP run renders as one track group per rank;
// threads without a rank (the launcher, thread pools, checkpoint flushers) share pid 0
// ("runtime"). RunSpmd tags each rank thread via SetThreadRank.
//
// Compile-time gate: building with -DUCP_OBS=OFF (CMake) defines UCP_OBS_ENABLED=0 and the
// UCP_TRACE_* macros expand to nothing — zero code, zero data, for overhead-proof builds.
// At runtime tracing can also be toggled with SetTraceEnabled; a disabled span is one
// relaxed atomic load.
//
// Dependency note: like metrics.h this sits below src/common — standard library only. The
// Chrome JSON is serialized by hand here and parsed back with src/common/json in tests.

#ifndef UCP_SRC_OBS_TRACE_H_
#define UCP_SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#ifndef UCP_OBS_ENABLED
#define UCP_OBS_ENABLED 1
#endif

namespace ucp {
namespace obs {

// ---- Thread identity -------------------------------------------------------------------

// Tags the calling thread as simulated rank `rank` (>= 0) for every event it records from
// now on; -1 reverts to the shared "runtime" process. RunSpmd/RunSpmdFallible call this at
// rank-thread start; thread pools stay untagged.
void SetThreadRank(int rank);
int CurrentThreadRank();

// SetThreadRank's analogue for processes that are not simulated ranks: tags the calling
// thread as belonging to the named process track (e.g. "ucp_serverd"), so its events
// export under their own pid/process_name instead of the shared "runtime" pid 0. The
// daemon's session threads use this so a merged client+server trace renders the daemon as
// a distinct process. Empty reverts to the default track. Rank, when set, wins.
void SetThreadTrackName(const std::string& name);

// ---- Distributed trace context ---------------------------------------------------------
//
// A (trace_id, span_id) pair identifying one logical operation and the innermost open
// span within it. RemoteStore installs a context per logical operation (one save keeps
// one trace_id across reconnects and resumed writes), ships it to the daemon as a wire v4
// header, and the daemon adopts it around its per-RPC handling span — so spans recorded
// in two processes share a trace_id and parent/child span ids, and trace_merge can stitch
// their exports into one Chrome trace with flow events.
//
// While a thread holds a valid context, every span it records is assigned its own span_id,
// parented under the context's span_id, and annotated with hex "trace_id" / "span_id" /
// "parent_span_id" args in the export.

struct TraceContext {
  uint64_t trace_id = 0;  // 0 = no context
  uint64_t span_id = 0;   // innermost open span (parent for new spans); 0 = root
  bool valid() const { return trace_id != 0; }
};

// Fresh non-zero 64-bit id (thread-local PRNG seeded from std::random_device).
uint64_t NewTraceId();

// 16-digit lowercase hex — the on-trace serialization of trace/span ids.
std::string TraceIdHex(uint64_t id);

// The calling thread's current context ({0,0} when none is installed).
TraceContext CurrentTraceContext();

// RAII installer for the thread context; the previous context is restored on destruction.
// The default constructor *joins or roots*: it keeps an already-installed context (nested
// logical ops stay in the outer trace) and otherwise installs a fresh root trace_id. The
// adopting constructor installs `ctx` verbatim (wire-propagated contexts). Both are no-ops
// when tracing is runtime-disabled, so headers are only emitted for traces that exist.
class ScopedTraceContext {
 public:
  ScopedTraceContext();
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
  bool installed_ = false;
};

// ---- Runtime control -------------------------------------------------------------------

void SetTraceEnabled(bool enabled);
bool TraceEnabled();

// Ring capacity (events per thread) for buffers created after the call; ResetTrace()
// re-sizes existing buffers too. Default 8192.
void SetTraceRingCapacity(size_t capacity);

// Rings outlive their recording thread so a post-failure dump can show what the (joined)
// rank threads were doing — but a long-lived process that rebuilds its world many times
// (elastic recovery, the soak driver) would otherwise accumulate one ring per exited
// thread forever. At each thread exit the registry drops orphaned rings that never
// recorded, and keeps at most `limit` non-empty orphaned rings (newest first).
// Default 512 — comfortably above one full rebuilt world, bounded across hundreds.
void SetTraceOrphanRingLimit(size_t limit);

// Rings currently registered (live threads + retained orphans). The soak stress mode
// asserts this stays flat while worlds are rebuilt.
size_t TraceRingCount();

// Drops every recorded event (all threads). Buffers and thread registrations survive.
void ResetTrace();

// ---- Recorded data ---------------------------------------------------------------------

struct TraceEvent {
  std::string name;
  std::string args_json;  // pre-serialized JSON object body ("\"k\":1,\"s\":\"v\"") or empty
  uint64_t start_ns = 0;  // monotonic, relative to process trace epoch
  uint64_t dur_ns = 0;    // 0 for instant events
  int rank = -1;
  int depth = 0;          // span nesting depth on the recording thread (0 = top level)
  uint64_t seq = 0;       // per-thread record sequence number (monotonic, gap-free)
  bool instant = false;
};

struct ThreadTrace {
  int tid = 0;            // small sequential id assigned at first event
  int rank = -1;          // rank the thread last recorded under
  std::string track;      // process track name (SetThreadTrackName); empty = default
  uint64_t dropped = 0;   // events overwritten by ring wraparound
  std::vector<TraceEvent> events;  // oldest first
};

// Copies out every thread's ring (oldest-first), optionally truncated to the newest
// `max_events_per_thread` events (0 = all). Safe to call while other threads trace.
std::vector<ThreadTrace> CollectThreadTraces(size_t max_events_per_thread = 0);

// Chrome trace_event JSON for the current rings: {"traceEvents":[...]} with process/thread
// metadata. `max_events_per_thread` as above.
std::string ExportChromeTraceJson(size_t max_events_per_thread = 0);

// ---- Recording primitives (prefer the UCP_TRACE_* macros) ------------------------------

// Cheap streaming builder for span/instant args; converts to the serialized object body.
// TraceArgs().I("bytes", n).S("op", "sum") -> "\"bytes\":123,\"op\":\"sum\""
class TraceArgs {
 public:
  TraceArgs& I(const char* key, int64_t value);
  TraceArgs& D(const char* key, double value);
  TraceArgs& S(const char* key, const std::string& value);
  // Moves the body out: builders are one-shot temporaries, chained calls yield lvalues.
  std::string Str() { return std::move(body_); }
  operator std::string() { return std::move(body_); }  // NOLINT: implicit by design

 private:
  std::string body_;
};

// RAII span. Construction snapshots the clock; destruction records one complete event.
// When tracing is disabled (runtime) the whole object is inert.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ScopedSpan(const char* name, std::string args_json);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  // Appends args after construction (e.g. a wait time measured mid-span). No-op when inert.
  void ArgI(const char* key, int64_t value);
  void ArgD(const char* key, double value);
  void ArgS(const char* key, const std::string& value);
  // Seconds since construction — lets callers reuse the span's clock for their own stats.
  double ElapsedSeconds() const;
  // The span's own id within the thread's trace context; 0 when the span opened with no
  // context installed (or inert). Children opened while this span lives parent under it.
  uint64_t span_id() const { return own_span_id_; }

 private:
  const char* name_;
  uint64_t start_ns_ = 0;
  std::string args_;
  bool active_ = false;
  uint64_t trace_id_ = 0;
  uint64_t own_span_id_ = 0;
  uint64_t parent_span_id_ = 0;
};

// Records a zero-duration event (markers: rank failure detected, commit landed, ...).
void TraceInstant(const char* name, std::string args_json = std::string());

// Monotonic nanoseconds since the process trace epoch (exposed for tests).
uint64_t TraceNowNs();

}  // namespace obs
}  // namespace ucp

// ---- Macros ----------------------------------------------------------------------------
//
//   UCP_TRACE_SPAN("ucp.extract");                       // span for the enclosing scope
//   UCP_TRACE_SPAN_ARGS("comm.p2p.send",                 // args built only when enabled
//                       ::ucp::obs::TraceArgs().I("bytes", n));
//   UCP_TRACE_NAMED_SPAN(span, "comm.allreduce");        // span you can append args to
//   UCP_TRACE_SPAN_ARG_D(span, "wait_ms", wait * 1e3);
//   UCP_TRACE_INSTANT("recovery.detected", ::ucp::obs::TraceArgs().S("rank", "3"));

#if UCP_OBS_ENABLED

#define UCP_OBS_CONCAT_INNER(a, b) a##b
#define UCP_OBS_CONCAT(a, b) UCP_OBS_CONCAT_INNER(a, b)

#define UCP_TRACE_SPAN(name) \
  ::ucp::obs::ScopedSpan UCP_OBS_CONCAT(ucp_trace_span_, __COUNTER__)(name)
#define UCP_TRACE_SPAN_ARGS(name, args_expr)                         \
  ::ucp::obs::ScopedSpan UCP_OBS_CONCAT(ucp_trace_span_, __COUNTER__)( \
      name, ::ucp::obs::TraceEnabled() ? std::string(args_expr) : std::string())
#define UCP_TRACE_NAMED_SPAN(var, name) ::ucp::obs::ScopedSpan var(name)
#define UCP_TRACE_SPAN_ARG_I(var, key, value) var.ArgI(key, value)
#define UCP_TRACE_SPAN_ARG_D(var, key, value) var.ArgD(key, value)
#define UCP_TRACE_SPAN_ARG_S(var, key, value) var.ArgS(key, value)
#define UCP_TRACE_INSTANT(name, ...) ::ucp::obs::TraceInstant(name, ##__VA_ARGS__)

#else  // UCP_OBS_ENABLED

#define UCP_TRACE_SPAN(name) \
  do {                       \
  } while (0)
#define UCP_TRACE_SPAN_ARGS(name, args_expr) \
  do {                                       \
  } while (0)
#define UCP_TRACE_NAMED_SPAN(var, name) \
  do {                                  \
  } while (0)
#define UCP_TRACE_SPAN_ARG_I(var, key, value) \
  do {                                        \
  } while (0)
#define UCP_TRACE_SPAN_ARG_D(var, key, value) \
  do {                                        \
  } while (0)
#define UCP_TRACE_SPAN_ARG_S(var, key, value) \
  do {                                        \
  } while (0)
#define UCP_TRACE_INSTANT(name, ...) \
  do {                               \
  } while (0)

#endif  // UCP_OBS_ENABLED

#endif  // UCP_SRC_OBS_TRACE_H_
