#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <random>

namespace ucp {
namespace obs {

namespace {

std::atomic<bool> g_trace_enabled{true};
std::atomic<size_t> g_ring_capacity{8192};
std::atomic<size_t> g_orphan_ring_limit{512};

uint64_t MonotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t TraceEpochNs() {
  static const uint64_t epoch = MonotonicNs();
  return epoch;
}

// One thread's ring. The owning thread appends under `mu`; exporters copy under `mu`.
// The lock is uncontended in steady state (the exporter runs once per dump), so the hot
// path is a lock/unlock of an unowned mutex plus a vector slot write.
struct Ring {
  std::mutex mu;
  std::vector<TraceEvent> slots;  // circular once full
  size_t head = 0;                // next write position
  size_t size = 0;                // valid slots
  uint64_t dropped = 0;           // overwritten events
  uint64_t next_seq = 0;
  int tid = 0;
  int rank = -1;       // last rank this thread recorded under
  std::string track;   // process track name (SetThreadTrackName)
  bool orphaned = false;  // recording thread has exited
};

struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;  // shared_ptr: events survive thread exit
  int next_tid = 0;
};

RingRegistry& Registry() {
  static RingRegistry* registry = new RingRegistry();
  return *registry;
}

struct ThreadState {
  std::shared_ptr<Ring> ring;
  int rank = -1;
  int depth = 0;
  TraceContext ctx;  // distributed trace context (installed by ScopedTraceContext)

  ThreadState() {
    ring = std::make_shared<Ring>();
    ring->slots.reserve(std::min<size_t>(g_ring_capacity.load(std::memory_order_relaxed),
                                         size_t{1024}));
    RingRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    ring->tid = reg.next_tid++;
    reg.rings.push_back(ring);
  }

  // Thread exit: the ring stays registered (its events feed post-mortem dumps) but is
  // marked orphaned, and the registry sheds orphans beyond the retention limit — without
  // this, every rebuilt world would leak world_size rings for the life of the process.
  ~ThreadState() {
    {
      std::lock_guard<std::mutex> lock(ring->mu);
      ring->orphaned = true;
    }
    const size_t limit = g_orphan_ring_limit.load(std::memory_order_relaxed);
    RingRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::vector<std::shared_ptr<Ring>> live;
    std::vector<std::shared_ptr<Ring>> orphans;  // registration (= tid) order
    live.reserve(reg.rings.size());
    for (auto& r : reg.rings) {
      bool orphaned;
      bool empty;
      {
        std::lock_guard<std::mutex> ring_lock(r->mu);
        orphaned = r->orphaned;
        empty = r->size == 0 && r->dropped == 0;
      }
      if (!orphaned) {
        live.push_back(r);
      } else if (!empty) {
        orphans.push_back(r);  // never-recorded orphans are dropped outright
      }
    }
    if (orphans.size() > limit) {
      orphans.erase(orphans.begin(),
                    orphans.end() - static_cast<ptrdiff_t>(limit));
    }
    reg.rings = std::move(orphans);
    reg.rings.insert(reg.rings.end(), live.begin(), live.end());
  }
};

ThreadState& LocalState() {
  thread_local ThreadState state;
  return state;
}

// Linearizes `ring`'s events oldest-first. Caller holds ring.mu.
std::vector<TraceEvent> LinearizeLocked(Ring& ring) {
  std::vector<TraceEvent> out;
  out.reserve(ring.size);
  const size_t cap = ring.slots.size();
  const size_t start = ring.size == cap ? ring.head : 0;
  for (size_t i = 0; i < ring.size; ++i) {
    out.push_back(ring.slots[(start + i) % cap]);
  }
  return out;
}

void Record(ThreadState& state, TraceEvent&& ev) {
  Ring& ring = *state.ring;
  const size_t capacity = g_ring_capacity.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.rank = state.rank;
  ev.rank = state.rank;
  ev.seq = ring.next_seq++;
  if (capacity == 0) {
    ring.dropped++;
    return;
  }
  if (ring.slots.size() > capacity) {
    // Capacity was lowered since this ring filled: keep only the newest events.
    std::vector<TraceEvent> kept = LinearizeLocked(ring);
    if (kept.size() > capacity - 1) {
      ring.dropped += kept.size() - (capacity - 1);
      kept.erase(kept.begin(), kept.end() - static_cast<ptrdiff_t>(capacity - 1));
    }
    ring.slots = std::move(kept);
    ring.head = ring.slots.size() % capacity;
    ring.size = ring.slots.size();
  }
  if (ring.slots.size() < capacity) {
    ring.slots.push_back(std::move(ev));
    ring.head = ring.slots.size() % capacity;
    ring.size = ring.slots.size();
    return;
  }
  ring.slots[ring.head] = std::move(ev);
  ring.head = (ring.head + 1) % capacity;
  ring.dropped++;
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendKV(std::string& body, const char* key, const std::string& json_value) {
  if (!body.empty()) {
    body += ',';
  }
  body += '"';
  body += key;  // keys are literals, no escaping needed
  body += "\":";
  body += json_value;
}

}  // namespace

void SetThreadRank(int rank) { LocalState().rank = rank; }

int CurrentThreadRank() { return LocalState().rank; }

void SetThreadTrackName(const std::string& name) {
  ThreadState& state = LocalState();
  std::lock_guard<std::mutex> lock(state.ring->mu);
  state.ring->track = name;
}

uint64_t NewTraceId() {
  // splitmix64 over a per-thread counter seeded once from the OS entropy pool: cheap,
  // lock-free, and ids never collide within a thread while staying unguessable enough
  // for correlation across processes.
  thread_local uint64_t state = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd() ^ 0x9e3779b97f4a7c15ull;
  }();
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z == 0 ? 1 : z;
}

std::string TraceIdHex(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, id);
  return buf;
}

TraceContext CurrentTraceContext() { return LocalState().ctx; }

ScopedTraceContext::ScopedTraceContext() {
  if (!TraceEnabled()) {
    return;
  }
  ThreadState& state = LocalState();
  prev_ = state.ctx;
  if (!state.ctx.valid()) {
    state.ctx = TraceContext{NewTraceId(), 0};
  }
  installed_ = true;
}

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) {
  if (!TraceEnabled() || !ctx.valid()) {
    return;
  }
  ThreadState& state = LocalState();
  prev_ = state.ctx;
  state.ctx = ctx;
  installed_ = true;
}

ScopedTraceContext::~ScopedTraceContext() {
  if (installed_) {
    LocalState().ctx = prev_;
  }
}

void SetTraceEnabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceEnabled() { return g_trace_enabled.load(std::memory_order_relaxed); }

void SetTraceRingCapacity(size_t capacity) {
  g_ring_capacity.store(capacity, std::memory_order_relaxed);
}

void SetTraceOrphanRingLimit(size_t limit) {
  g_orphan_ring_limit.store(limit, std::memory_order_relaxed);
}

size_t TraceRingCount() {
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.rings.size();
}

void ResetTrace() {
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& ring : reg.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->slots.clear();
    ring->head = 0;
    ring->size = 0;
    ring->dropped = 0;
  }
}

uint64_t TraceNowNs() {
  // Read the epoch first: on the process's very first span the lazy epoch init must not
  // land between the two clock reads (unsequenced operands would allow now < epoch).
  const uint64_t epoch = TraceEpochNs();
  const uint64_t now = MonotonicNs();
  return now >= epoch ? now - epoch : 0;
}

std::vector<ThreadTrace> CollectThreadTraces(size_t max_events_per_thread) {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    RingRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    rings = reg.rings;
  }
  std::vector<ThreadTrace> out;
  out.reserve(rings.size());
  for (auto& ring : rings) {
    ThreadTrace t;
    std::lock_guard<std::mutex> lock(ring->mu);
    t.tid = ring->tid;
    t.rank = ring->rank;
    t.track = ring->track;
    t.dropped = ring->dropped;
    if (ring->size == 0) {
      continue;  // never-used or reset ring: skip empty tracks
    }
    t.events = LinearizeLocked(*ring);
    if (max_events_per_thread > 0 && t.events.size() > max_events_per_thread) {
      t.events.erase(t.events.begin(),
                     t.events.end() - static_cast<ptrdiff_t>(max_events_per_thread));
    }
    out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadTrace& a, const ThreadTrace& b) { return a.tid < b.tid; });
  return out;
}

std::string ExportChromeTraceJson(size_t max_events_per_thread) {
  const std::vector<ThreadTrace> threads = CollectThreadTraces(max_events_per_thread);
  std::string out;
  out.reserve(4096);
  out += "{\"traceEvents\":[";
  bool first = true;
  char buf[192];

  auto emit = [&out, &first](const std::string& ev) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += ev;
  };

  // Metadata: one "process" per rank, one per named track (pids from 1000 in order of
  // first appearance), plus pid 0 for untagged runtime threads.
  std::vector<int> pids_named;
  auto name_pid = [&](int pid, const std::string& name) {
    if (std::find(pids_named.begin(), pids_named.end(), pid) != pids_named.end()) {
      return;
    }
    pids_named.push_back(pid);
    std::string ev = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    ev += std::to_string(pid);
    ev += ",\"tid\":0,\"args\":{\"name\":\"";
    AppendEscaped(ev, name);
    ev += "\"}}";
    emit(ev);
  };
  std::vector<std::string> tracks_seen;
  auto track_pid = [&tracks_seen](const std::string& track) {
    auto it = std::find(tracks_seen.begin(), tracks_seen.end(), track);
    if (it == tracks_seen.end()) {
      tracks_seen.push_back(track);
      return 1000 + static_cast<int>(tracks_seen.size()) - 1;
    }
    return 1000 + static_cast<int>(it - tracks_seen.begin());
  };

  for (const ThreadTrace& t : threads) {
    int pid = 0;
    std::string pname = "runtime";
    if (t.rank >= 0) {
      pid = t.rank + 1;
      pname = "rank " + std::to_string(t.rank);
    } else if (!t.track.empty()) {
      pid = track_pid(t.track);
      pname = t.track;
    }
    name_pid(pid, pname);
    {
      std::string ev = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
      ev += std::to_string(pid);
      ev += ",\"tid\":";
      ev += std::to_string(t.tid);
      ev += ",\"args\":{\"name\":\"thread ";
      ev += std::to_string(t.tid);
      ev += "\"}}";
      emit(ev);
    }
    for (const TraceEvent& e : t.events) {
      // Events carry the rank they were recorded under (a pool thread may serve several);
      // rank-less events on a tracked thread stay on the thread's track pid.
      const int ev_pid =
          e.rank >= 0 ? e.rank + 1 : (t.track.empty() ? 0 : track_pid(t.track));
      if (ev_pid != pid) {
        name_pid(ev_pid, e.rank >= 0 ? "rank " + std::to_string(e.rank)
                                     : (t.track.empty() ? std::string("runtime")
                                                        : t.track));
      }
      std::string ev = "{\"name\":\"";
      AppendEscaped(ev, e.name);
      ev += "\",\"cat\":\"ucp\",\"ph\":\"";
      ev += e.instant ? 'i' : 'X';
      ev += '"';
      std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", static_cast<double>(e.start_ns) / 1e3);
      ev += buf;
      if (!e.instant) {
        std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", static_cast<double>(e.dur_ns) / 1e3);
        ev += buf;
      } else {
        ev += ",\"s\":\"t\"";
      }
      std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%d", ev_pid, t.tid);
      ev += buf;
      ev += ",\"args\":{";
      if (!e.args_json.empty()) {
        ev += e.args_json;
        ev += ',';
      }
      std::snprintf(buf, sizeof(buf), "\"depth\":%d,\"seq\":%" PRIu64 "}}", e.depth, e.seq);
      ev += buf;
      emit(ev);
    }
  }
  out += "]}";
  return out;
}

TraceArgs& TraceArgs::I(const char* key, int64_t value) {
  AppendKV(body_, key, std::to_string(value));
  return *this;
}

TraceArgs& TraceArgs::D(const char* key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  AppendKV(body_, key, buf);
  return *this;
}

TraceArgs& TraceArgs::S(const char* key, const std::string& value) {
  std::string quoted = "\"";
  AppendEscaped(quoted, value);
  quoted += '"';
  AppendKV(body_, key, quoted);
  return *this;
}

namespace {

struct ScopedSpanIds {
  uint64_t trace_id = 0;
  uint64_t own_span_id = 0;
  uint64_t parent_span_id = 0;
};

// Shared open-span bookkeeping: bump depth, and — under a distributed trace context —
// allocate this span's id and make it the parent for spans opened while it lives.
void OpenSpan(ScopedSpanIds* ids) {
  ThreadState& state = LocalState();
  state.depth++;
  if (state.ctx.valid()) {
    ids->trace_id = state.ctx.trace_id;
    ids->parent_span_id = state.ctx.span_id;
    ids->own_span_id = NewTraceId();
    state.ctx.span_id = ids->own_span_id;
  }
}

}  // namespace

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  if (!TraceEnabled()) {
    return;
  }
  active_ = true;
  ScopedSpanIds ids;
  OpenSpan(&ids);
  trace_id_ = ids.trace_id;
  own_span_id_ = ids.own_span_id;
  parent_span_id_ = ids.parent_span_id;
  start_ns_ = TraceNowNs();
}

ScopedSpan::ScopedSpan(const char* name, std::string args_json)
    : name_(name), args_(std::move(args_json)) {
  if (!TraceEnabled()) {
    return;
  }
  active_ = true;
  ScopedSpanIds ids;
  OpenSpan(&ids);
  trace_id_ = ids.trace_id;
  own_span_id_ = ids.own_span_id;
  parent_span_id_ = ids.parent_span_id;
  start_ns_ = TraceNowNs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) {
    return;
  }
  const uint64_t end_ns = TraceNowNs();
  ThreadState& state = LocalState();
  state.depth--;
  if (own_span_id_ != 0 && state.ctx.trace_id == trace_id_ &&
      state.ctx.span_id == own_span_id_) {
    state.ctx.span_id = parent_span_id_;  // reparent siblings opened after us
  }
  TraceEvent ev;
  ev.name = name_;
  ev.args_json = std::move(args_);
  if (own_span_id_ != 0) {
    AppendKV(ev.args_json, "trace_id", "\"" + TraceIdHex(trace_id_) + "\"");
    AppendKV(ev.args_json, "span_id", "\"" + TraceIdHex(own_span_id_) + "\"");
    if (parent_span_id_ != 0) {
      AppendKV(ev.args_json, "parent_span_id", "\"" + TraceIdHex(parent_span_id_) + "\"");
    }
  }
  ev.start_ns = start_ns_;
  ev.dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  ev.depth = state.depth;
  Record(state, std::move(ev));
}

void ScopedSpan::ArgI(const char* key, int64_t value) {
  if (active_) {
    AppendKV(args_, key, std::to_string(value));
  }
}

void ScopedSpan::ArgD(const char* key, double value) {
  if (active_) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    AppendKV(args_, key, buf);
  }
}

void ScopedSpan::ArgS(const char* key, const std::string& value) {
  if (active_) {
    std::string quoted = "\"";
    AppendEscaped(quoted, value);
    quoted += '"';
    AppendKV(args_, key, quoted);
  }
}

double ScopedSpan::ElapsedSeconds() const {
  if (!active_) {
    return 0.0;
  }
  return static_cast<double>(TraceNowNs() - start_ns_) * 1e-9;
}

void TraceInstant(const char* name, std::string args_json) {
  if (!TraceEnabled()) {
    return;
  }
  ThreadState& state = LocalState();
  TraceEvent ev;
  ev.name = name;
  ev.args_json = std::move(args_json);
  if (state.ctx.valid()) {
    AppendKV(ev.args_json, "trace_id", "\"" + TraceIdHex(state.ctx.trace_id) + "\"");
    if (state.ctx.span_id != 0) {
      AppendKV(ev.args_json, "parent_span_id",
               "\"" + TraceIdHex(state.ctx.span_id) + "\"");
    }
  }
  ev.start_ns = TraceNowNs();
  ev.depth = state.depth;
  ev.instant = true;
  Record(state, std::move(ev));
}

}  // namespace obs
}  // namespace ucp
