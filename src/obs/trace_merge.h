// Stitches a client-side and a server-side Chrome trace export into one merged trace.
//
// The two halves of a distributed operation are recorded in two processes: RemoteStore's
// rings hold the client spans (with hex trace_id/span_id args, src/obs/trace.h) and the
// daemon's rings hold the server handling spans, parented under the client RPC spans via
// the wire v4 TRACE_CONTEXT header. Each process exports its own
// ExportChromeTraceJson/flight-record file; MergeChromeTraces joins them:
//
//  - server process ids are offset past the client's so the two processes render as
//    distinct track groups (process_name metadata is prefixed "client: " / "server: ");
//  - server timestamps are aligned to the client clock using the first (client RPC span,
//    server handling span) pair matched by span ids — the two processes have independent
//    trace epochs, so absolute timestamps are otherwise incomparable. A server half whose
//    matched span already lies inside its parent span's interval is assumed to share the
//    client's epoch (a single-process split, as in tests) and is not shifted;
//  - every server span whose (trace_id, parent_span_id) args name a client span gets a
//    flow-event triple (ph "s" at the client span start, "t" at the server span start,
//    "f" at the client span end) so Perfetto draws request -> handling -> reply arrows.
//
// `ucp_tool trace-merge <client.json> <server.json>` is the CLI wrapper.
//
// Unlike the rest of src/obs (standard library only), this layer parses JSON and so links
// src/common — it lives in its own ucp_obs_merge target to keep the ucp_obs -> ucp_common
// layering acyclic.

#ifndef UCP_SRC_OBS_TRACE_MERGE_H_
#define UCP_SRC_OBS_TRACE_MERGE_H_

#include <cstddef>
#include <string>

#include "src/common/status.h"

namespace ucp {
namespace obs {

struct TraceMergeStats {
  size_t client_events = 0;
  size_t server_events = 0;
  size_t flow_links = 0;  // server spans linked to a client parent span
};

// Merges two Chrome trace JSON documents ({"traceEvents":[...]}) into one, returned as
// JSON text. Events that don't participate in any cross-process link pass through
// unchanged (apart from the server pid offset / time alignment).
Result<std::string> MergeChromeTraces(const std::string& client_json,
                                      const std::string& server_json,
                                      TraceMergeStats* stats = nullptr);

}  // namespace obs
}  // namespace ucp

#endif  // UCP_SRC_OBS_TRACE_MERGE_H_
