#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace ucp {
namespace obs {

namespace {

constexpr double kMicro = 1e-6;

uint64_t ToMicros(double value) {
  if (value <= 0.0) {
    return 0;
  }
  double scaled = value * 1e6;
  if (scaled >= 1.8e19) {
    return UINT64_MAX;
  }
  return static_cast<uint64_t>(scaled);
}

int BucketIndex(uint64_t micros) {
  if (micros == 0) {
    return 0;
  }
  int idx = 63 - std::countl_zero(micros);
  return std::min(idx, Histogram::kBuckets - 1);
}

}  // namespace

void Histogram::Observe(double value) {
  const uint64_t micros = ToMicros(value);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t cur = max_micros_.load(std::memory_order_relaxed);
  while (micros > cur &&
         !max_micros_.compare_exchange_weak(cur, micros, std::memory_order_relaxed)) {
  }
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::Sum() const {
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) * kMicro;
}

double Histogram::MaxValue() const {
  return static_cast<double>(max_micros_.load(std::memory_order_relaxed)) * kMicro;
}

double Histogram::ApproxQuantile(double q) const {
  const uint64_t n = Count();
  if (n == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      // Midpoint of bucket [2^i, 2^(i+1)) micros; bucket 0 also holds sub-micro samples.
      const double lo = i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << i);
      const double hi = static_cast<double>(uint64_t{1} << (i + 1));
      return (lo + hi) * 0.5 * kMicro;
    }
  }
  return MaxValue();
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(kBuckets, 0);
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
  max_micros_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kCounter;
    v.counter = counter->Value();
    snapshot.push_back(std::move(v));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kGauge;
    v.gauge = gauge->Value();
    snapshot.push_back(std::move(v));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kHistogram;
    v.count = histogram->Count();
    v.sum = histogram->Sum();
    v.mean = histogram->Mean();
    v.max = histogram->MaxValue();
    v.p50 = histogram->ApproxQuantile(0.5);
    v.p99 = histogram->ApproxQuantile(0.99);
    v.buckets = histogram->BucketCounts();
    snapshot.push_back(std::move(v));
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

MetricsSnapshot SnapshotMetrics() { return MetricsRegistry::Global().Snapshot(); }
void ResetMetrics() { MetricsRegistry::Global().ResetAll(); }

std::string DumpMetricsText() {
  const MetricsSnapshot snapshot = SnapshotMetrics();
  std::string out;
  char line[256];
  for (const MetricValue& v : snapshot) {
    switch (v.kind) {
      case MetricValue::Kind::kCounter:
        std::snprintf(line, sizeof(line), "%-48s counter   %llu\n", v.name.c_str(),
                      static_cast<unsigned long long>(v.counter));
        break;
      case MetricValue::Kind::kGauge:
        std::snprintf(line, sizeof(line), "%-48s gauge     %lld\n", v.name.c_str(),
                      static_cast<long long>(v.gauge));
        break;
      case MetricValue::Kind::kHistogram:
        std::snprintf(line, sizeof(line),
                      "%-48s histogram count=%llu sum=%.6f mean=%.6f max=%.6f p50=%.6f "
                      "p99=%.6f\n",
                      v.name.c_str(), static_cast<unsigned long long>(v.count), v.sum,
                      v.mean, v.max, v.p50, v.p99);
        break;
    }
    out += line;
  }
  return out;
}

std::string DumpMetricsPrometheus() {
  const MetricsSnapshot snapshot = SnapshotMetrics();
  std::string out;
  char line[320];
  const auto mangle = [](const std::string& name) {
    std::string mangled = name;
    for (char& c : mangled) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      if (!ok) {
        c = '_';
      }
    }
    return mangled;
  };
  for (const MetricValue& v : snapshot) {
    const std::string name = mangle(v.name);
    switch (v.kind) {
      case MetricValue::Kind::kCounter:
        std::snprintf(line, sizeof(line), "# TYPE %s counter\n%s %llu\n", name.c_str(),
                      name.c_str(), static_cast<unsigned long long>(v.counter));
        out += line;
        break;
      case MetricValue::Kind::kGauge:
        std::snprintf(line, sizeof(line), "# TYPE %s gauge\n%s %lld\n", name.c_str(),
                      name.c_str(), static_cast<long long>(v.gauge));
        out += line;
        break;
      case MetricValue::Kind::kHistogram: {
        std::snprintf(line, sizeof(line), "# TYPE %s histogram\n", name.c_str());
        out += line;
        // Cumulative buckets up to the last non-empty one; upper bounds are the
        // power-of-two micro-unit edges converted back to base units.
        int last = -1;
        for (int i = 0; i < static_cast<int>(v.buckets.size()); ++i) {
          if (v.buckets[i] != 0) {
            last = i;
          }
        }
        uint64_t cumulative = 0;
        for (int i = 0; i <= last; ++i) {
          cumulative += v.buckets[i];
          const double le = std::ldexp(1.0, i + 1) * kMicro;
          std::snprintf(line, sizeof(line), "%s_bucket{le=\"%.9g\"} %llu\n", name.c_str(),
                        le, static_cast<unsigned long long>(cumulative));
          out += line;
        }
        std::snprintf(line, sizeof(line),
                      "%s_bucket{le=\"+Inf\"} %llu\n%s_sum %.6f\n%s_count %llu\n",
                      name.c_str(), static_cast<unsigned long long>(v.count), name.c_str(),
                      v.sum, name.c_str(), static_cast<unsigned long long>(v.count));
        out += line;
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace ucp
