#include "src/obs/trace_merge.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/common/json.h"

namespace ucp {
namespace obs {

namespace {

// A client "X" span that can serve as the parent of server handling spans, keyed by its
// hex span_id arg.
struct ClientSpan {
  std::string trace_id;
  double ts = 0.0;   // microseconds, client epoch
  double dur = 0.0;
  Json pid;          // kept as parsed (int) so flow events land on the right track
  Json tid;
};

Result<const JsonArray*> EventsOf(const Json& doc, const char* which) {
  if (!doc.is_object()) {
    return InvalidArgumentError(std::string(which) + " trace is not a JSON object");
  }
  Result<const JsonArray*> events = doc.GetArray("traceEvents");
  if (!events.ok()) {
    return InvalidArgumentError(std::string(which) +
                                " trace has no traceEvents array");
  }
  return events;
}

std::string StringField(const Json& obj, const char* key) {
  Result<std::string> v = obj.GetString(key);
  return v.ok() ? *v : std::string();
}

double NumField(const Json& obj, const char* key, double fallback = 0.0) {
  Result<double> v = obj.GetDouble(key);
  return v.ok() ? *v : fallback;
}

// The span-id args live on the event's "args" object; absent on unannotated events.
std::string ArgString(const Json& ev, const char* key) {
  Result<const JsonObject*> args = ev.GetObject("args");
  if (!args.ok()) {
    return std::string();
  }
  auto it = (*args)->find(key);
  if (it == (*args)->end() || !it->second.is_string()) {
    return std::string();
  }
  return it->second.AsString();
}

}  // namespace

Result<std::string> MergeChromeTraces(const std::string& client_json,
                                      const std::string& server_json,
                                      TraceMergeStats* stats) {
  UCP_ASSIGN_OR_RETURN(Json client_doc, Json::Parse(client_json));
  UCP_ASSIGN_OR_RETURN(Json server_doc, Json::Parse(server_json));
  UCP_ASSIGN_OR_RETURN(const JsonArray* client_events, EventsOf(client_doc, "client"));
  UCP_ASSIGN_OR_RETURN(const JsonArray* server_events, EventsOf(server_doc, "server"));

  // Offset every server pid past the client's range so the two processes cannot collide
  // on a track.
  int64_t client_max_pid = 0;
  for (const Json& ev : *client_events) {
    if (ev.is_object()) {
      client_max_pid =
          std::max(client_max_pid, static_cast<int64_t>(NumField(ev, "pid")));
    }
  }
  const int64_t pid_offset = client_max_pid + 1;

  // Index the client's annotated complete spans by span_id.
  std::map<std::string, ClientSpan> client_spans;
  for (const Json& ev : *client_events) {
    if (!ev.is_object() || StringField(ev, "ph") != "X") {
      continue;
    }
    const std::string span_id = ArgString(ev, "span_id");
    if (span_id.empty()) {
      continue;
    }
    ClientSpan span;
    span.trace_id = ArgString(ev, "trace_id");
    span.ts = NumField(ev, "ts");
    span.dur = NumField(ev, "dur");
    const JsonObject& obj = ev.AsObject();
    if (auto it = obj.find("pid"); it != obj.end()) {
      span.pid = it->second;
    }
    if (auto it = obj.find("tid"); it != obj.end()) {
      span.tid = it->second;
    }
    client_spans.emplace(span_id, std::move(span));
  }

  // Clock alignment: the first server span matched to a client parent decides the shift.
  // A match already inside its parent's interval means both halves share an epoch (the
  // single-process split used in tests) and nothing moves.
  double ts_shift = 0.0;
  bool shift_decided = false;
  for (const Json& ev : *server_events) {
    if (!ev.is_object() || StringField(ev, "ph") != "X") {
      continue;
    }
    const std::string parent = ArgString(ev, "parent_span_id");
    auto it = client_spans.find(parent);
    if (it == client_spans.end() ||
        it->second.trace_id != ArgString(ev, "trace_id")) {
      continue;
    }
    const double server_ts = NumField(ev, "ts");
    const ClientSpan& c = it->second;
    if (server_ts < c.ts || server_ts > c.ts + c.dur) {
      ts_shift = c.ts - server_ts;
    }
    shift_decided = true;
    break;
  }
  (void)shift_decided;

  TraceMergeStats out_stats;
  out_stats.client_events = client_events->size();
  out_stats.server_events = server_events->size();

  JsonArray merged;
  merged.reserve(client_events->size() + server_events->size());
  for (const Json& ev : *client_events) {
    Json copy = ev;
    if (copy.is_object() && StringField(copy, "ph") == "M" &&
        StringField(copy, "name") == "process_name") {
      Result<const JsonObject*> args = copy.GetObject("args");
      if (args.ok() && (*args)->count("name") != 0 && (*args)->at("name").is_string()) {
        copy["args"]["name"] = "client: " + (*args)->at("name").AsString();
      }
    }
    merged.push_back(std::move(copy));
  }

  JsonArray flows;
  int64_t next_flow_id = 1;
  for (const Json& ev : *server_events) {
    Json copy = ev;
    if (copy.is_object()) {
      JsonObject& obj = copy.AsObject();
      if (auto it = obj.find("pid"); it != obj.end() && it->second.is_number()) {
        obj["pid"] = static_cast<int64_t>(it->second.AsDouble()) + pid_offset;
      }
      if (auto it = obj.find("ts"); it != obj.end() && it->second.is_number()) {
        obj["ts"] = it->second.AsDouble() + ts_shift;
      }
      if (StringField(copy, "ph") == "M" && StringField(copy, "name") == "process_name") {
        Result<const JsonObject*> args = copy.GetObject("args");
        if (args.ok() && (*args)->count("name") != 0 &&
            (*args)->at("name").is_string()) {
          copy["args"]["name"] = "server: " + (*args)->at("name").AsString();
        }
      }
      // Flow triple for every server handling span whose args name a client parent:
      // request (client span start) -> handling (server span start) -> reply (client
      // span end).
      if (StringField(copy, "ph") == "X") {
        const std::string parent = ArgString(copy, "parent_span_id");
        auto cit = client_spans.find(parent);
        if (cit != client_spans.end() &&
            cit->second.trace_id == ArgString(copy, "trace_id")) {
          const ClientSpan& c = cit->second;
          const int64_t flow_id = next_flow_id++;
          JsonObject start;
          start["ph"] = "s";
          start["id"] = flow_id;
          start["name"] = "rpc";
          start["cat"] = "rpc";
          start["pid"] = c.pid;
          start["tid"] = c.tid;
          start["ts"] = c.ts;
          JsonObject step;
          step["ph"] = "t";
          step["id"] = flow_id;
          step["name"] = "rpc";
          step["cat"] = "rpc";
          step["pid"] = copy.AsObject().at("pid");
          step["tid"] = copy.AsObject().count("tid") != 0 ? copy.AsObject().at("tid")
                                                          : Json(0);
          step["ts"] = copy.AsObject().at("ts");
          JsonObject finish;
          finish["ph"] = "f";
          finish["bp"] = "e";
          finish["id"] = flow_id;
          finish["name"] = "rpc";
          finish["cat"] = "rpc";
          finish["pid"] = c.pid;
          finish["tid"] = c.tid;
          finish["ts"] = c.ts + c.dur;
          flows.push_back(Json(std::move(start)));
          flows.push_back(Json(std::move(step)));
          flows.push_back(Json(std::move(finish)));
          ++out_stats.flow_links;
        }
      }
    }
    merged.push_back(std::move(copy));
  }
  for (Json& f : flows) {
    merged.push_back(std::move(f));
  }

  if (stats != nullptr) {
    *stats = out_stats;
  }
  JsonObject root;
  root["traceEvents"] = std::move(merged);
  return Json(std::move(root)).Dump();
}

}  // namespace obs
}  // namespace ucp
