#include "src/store/local_store.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "src/common/crc32.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ucp {

namespace {

class LocalStoreWriter final : public StoreWriter {
 public:
  LocalStoreWriter(std::string root, std::string staging, std::string tag)
      : StoreWriter(std::move(tag)), root_(std::move(root)), staging_(std::move(staging)) {}

  Status WriteFile(const std::string& rel, const void* data, size_t size) override {
    if (!IsSafeStoreRelPath(rel)) {
      return InvalidArgumentError("bad store file name: " + rel);
    }
    // WriteFileAtomic on the calling thread: an enclosing ScopedFsyncBatch (the async
    // flusher's) still batches these fsyncs exactly as the pre-Store path did.
    return WriteFileAtomic(PathJoin(staging_, rel), data, size);
  }

  bool SupportsChunked() const override { return true; }

  Result<ChunkedWriteStats> WriteFileChunked(const std::string& rel, const void* data,
                                             size_t size,
                                             const std::vector<uint64_t>& digests,
                                             bool compress, uint64_t inherited) override {
    if (!IsSafeStoreRelPath(rel)) {
      return InvalidArgumentError("bad store file name: " + rel);
    }
    if (digests.size() != (size + kManifestChunkBytes - 1) / kManifestChunkBytes) {
      return InvalidArgumentError("digest count does not match size for " + rel);
    }
    std::shared_ptr<ChunkIndex> index = ChunkIndex::ForRoot(root_);
    ChunkedWriteStats stats;
    stats.bytes_total = size;
    stats.chunks_total = digests.size();
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    // Probes carry each chunk's size+crc so a dedup hit is content-verified, not just
    // digest-matched (a 64-bit collision must not alias two different chunks).
    std::vector<ChunkIndex::ChunkProbe> probes(digests.size());
    for (size_t i = 0; i < digests.size(); ++i) {
      const size_t off = i * kManifestChunkBytes;
      const size_t n = std::min(kManifestChunkBytes, size - off);
      probes[i] = {digests[i], static_cast<uint32_t>(n), Crc32(bytes + off, n)};
    }
    // Pins land before the presence answer: a "present" chunk stays present until this
    // tag commits or aborts, whatever GC does in between.
    const std::vector<uint8_t> present = index->PinAndQuery(tag(), probes);
    for (size_t i = 0; i < digests.size(); ++i) {
      if (present[i] != 0) {
        ++stats.chunks_deduped;
        continue;
      }
      const size_t off = i * kManifestChunkBytes;
      const size_t n = std::min(kManifestChunkBytes, size - off);
      UCP_RETURN_IF_ERROR(index->Put(digests[i], bytes + off, n, compress, &stats));
    }
    ChunkManifestEntry entry;
    entry.name = rel;
    entry.size = size;
    entry.crc32 = Crc32(data, size);
    entry.chunks = digests;
    entry.inherited = inherited;
    entries_.push_back(std::move(entry));
    return stats;
  }

  Status FinalizeManifest(const std::string& parent_tag) override {
    if (entries_.empty()) {
      return OkStatus();  // no chunked writes — the tag is a plain full save
    }
    ChunkManifest manifest;
    manifest.parent = parent_tag;
    manifest.files = std::move(entries_);
    entries_.clear();
    return WriteFileAtomic(PathJoin(staging_, kChunkManifestName),
                           SerializeChunkManifest(manifest));
  }

 private:
  std::string root_;
  std::string staging_;
  std::vector<ChunkManifestEntry> entries_;
};

}  // namespace

std::string LocalStore::CacheKey(const std::string& rel) const {
  return PathJoin(root_, rel);
}

Result<std::unique_ptr<ByteSource>> LocalStore::OpenRead(const std::string& rel) {
  if (!IsSafeStoreRelPath(rel)) {
    return InvalidArgumentError("bad store path: " + rel);
  }
  // A "<tag>/<file>" path with no physical file may be manifest-backed (an incremental
  // save stored the file as chunk objects); OpenTagShardSource resolves both forms.
  const size_t slash = rel.find('/');
  if (slash != std::string::npos && rel.find('/', slash + 1) == std::string::npos &&
      !FileExists(PathJoin(root_, rel))) {
    return OpenTagShardSource(PathJoin(root_, rel.substr(0, slash)),
                              rel.substr(slash + 1));
  }
  return FileByteSource::Open(PathJoin(root_, rel));
}

Result<std::string> LocalStore::ReadSmallFile(const std::string& rel) {
  if (!IsSafeStoreRelPath(rel)) {
    return InvalidArgumentError("bad store path: " + rel);
  }
  return ReadFileToString(PathJoin(root_, rel));
}

Result<bool> LocalStore::Exists(const std::string& rel) {
  if (!IsSafeStoreRelPath(rel)) {
    return InvalidArgumentError("bad store path: " + rel);
  }
  const std::string path = PathJoin(root_, rel);
  if (FileExists(path) || DirExists(path)) {
    return true;
  }
  // Manifest-backed shard files exist logically without a physical file.
  const size_t slash = rel.find('/');
  if (slash != std::string::npos && rel.find('/', slash + 1) == std::string::npos) {
    Result<std::optional<ChunkManifest>> manifest =
        ReadTagChunkManifest(PathJoin(root_, rel.substr(0, slash)));
    if (manifest.ok() && manifest->has_value() &&
        (*manifest)->Find(rel.substr(slash + 1)) != nullptr) {
      return true;
    }
  }
  return false;
}

Result<std::vector<std::string>> LocalStore::List(const std::string& rel) {
  if (!rel.empty() && !IsSafeStoreRelPath(rel)) {
    return InvalidArgumentError("bad store path: " + rel);
  }
  return ListDir(rel.empty() ? root_ : PathJoin(root_, rel));
}

Result<std::vector<std::string>> LocalStore::ListTags(const std::string& job) {
  if (!IsValidJobId(job)) {
    return InvalidArgumentError("bad job id: " + job);
  }
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> entries, ListDir(root_));
  std::vector<std::pair<int64_t, std::string>> tagged;
  for (const std::string& name : entries) {
    std::string tag_job;
    int64_t iteration = 0;
    if (ParseTagName(name, &tag_job, &iteration) && tag_job == job &&
        DirExists(PathJoin(root_, name))) {
      tagged.emplace_back(iteration, name);
    }
  }
  std::sort(tagged.begin(), tagged.end());
  std::vector<std::string> tags;
  tags.reserve(tagged.size());
  for (auto& [iteration, name] : tagged) {
    tags.push_back(std::move(name));
  }
  return tags;
}

Result<std::unique_ptr<StoreWriter>> LocalStore::OpenTagForWrite(const std::string& tag) {
  if (!IsSafeStoreName(tag)) {
    return InvalidArgumentError("bad checkpoint tag: " + tag);
  }
  return std::unique_ptr<StoreWriter>(
      new LocalStoreWriter(root_, StagingDirForTag(root_, tag), tag));
}

Status LocalStore::ResetTagStaging(const std::string& tag) {
  if (!IsSafeStoreName(tag)) {
    return InvalidArgumentError("bad checkpoint tag: " + tag);
  }
  const std::string staging = StagingDirForTag(root_, tag);
  // The debris being cleared held the only references to any chunks its crashed save
  // pinned; this process's pins for the tag are stale with it. Any half-streamed spool
  // files the daemon kept for WRITE_RESUME are part of the same debris.
  ChunkIndex::ForRoot(root_)->ReleaseTagPins(tag);
  UCP_RETURN_IF_ERROR(RemoveAll(WipDirForTag(root_, tag)));
  UCP_RETURN_IF_ERROR(RemoveAll(staging));
  return MakeDirs(staging);
}

// The commit: metadata into staging, publish via rename, marker last, then `latest`. The
// ordering is the whole protocol — a crash between any two steps leaves a state every
// reader handles (no tag / unmarked tag / marked tag with a stale `latest`).
Status LocalStore::CommitTag(const std::string& tag, const std::string& meta_json) {
  if (!IsSafeStoreName(tag)) {
    return InvalidArgumentError("bad checkpoint tag: " + tag);
  }
  UCP_TRACE_SPAN_ARGS("save.commit", ::ucp::obs::TraceArgs().S("tag", tag));
  static obs::Counter& commits =
      obs::MetricsRegistry::Global().GetCounter("save.commits");
  const std::string tag_dir = PathJoin(root_, tag);
  const std::string staging = StagingDirForTag(root_, tag);
  UCP_RETURN_IF_ERROR(
      WriteFileAtomic(PathJoin(staging, "checkpoint_meta.json"), meta_json));
  // Re-saving a tag replaces the previous commit wholesale.
  UCP_RETURN_IF_ERROR(RemoveAll(tag_dir));
  UCP_RETURN_IF_ERROR(RenamePath(staging, tag_dir));
  UCP_RETURN_IF_ERROR(WriteFileAtomic(PathJoin(tag_dir, kCompleteMarker), tag));
  // The latest pointer belongs to the namespace the tag name carries; free-form tags
  // (tools, tests) fall back to the default job's pointer.
  std::string job;
  if (!ParseTagName(tag, &job, nullptr)) {
    job.clear();
  }
  UCP_RETURN_IF_ERROR(WriteFileAtomic(PathJoin(root_, LatestFileName(job)), tag));
  commits.Add(1);
  // Committed: the tag's manifest (if the save was incremental) now holds the references
  // that keep its chunks alive; the write-time pins have done their job. A leftover spool
  // dir (resumed uploads that were superseded) is dead weight now.
  ChunkIndex::ForRoot(root_)->ReleaseTagPins(tag);
  UCP_RETURN_IF_ERROR(RemoveAll(WipDirForTag(root_, tag)));
  return OkStatus();
}

Status LocalStore::AbortTag(const std::string& tag) {
  if (!IsSafeStoreName(tag)) {
    return InvalidArgumentError("bad checkpoint tag: " + tag);
  }
  ChunkIndex::ForRoot(root_)->ReleaseTagPins(tag);
  UCP_RETURN_IF_ERROR(RemoveAll(WipDirForTag(root_, tag)));
  return RemoveAll(StagingDirForTag(root_, tag));
}

Status LocalStore::DeleteTag(const std::string& tag) {
  if (!IsSafeStoreName(tag)) {
    return InvalidArgumentError("bad checkpoint tag: " + tag);
  }
  UCP_RETURN_IF_ERROR(RemoveAll(PathJoin(root_, tag)));
  // A cached UCP conversion belongs to its tag; don't orphan it.
  return RemoveAll(PathJoin(root_, tag + ".ucp"));
}

Result<GcReport> LocalStore::Gc(const std::string& job, int keep_last, bool dry_run) {
  if (keep_last < 1) {
    return InvalidArgumentError("keep_last must be >= 1");
  }
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> tags, ListTags(job));
  std::vector<std::string> committed;
  for (const std::string& tag : tags) {
    if (::ucp::IsTagComplete(*this, tag)) {
      committed.push_back(tag);  // ascending iteration order, inherited from ListTags
    }
  }
  // The `latest` guard reads this job's own pointer — a sibling job's pointer naming its
  // own newest tag must not pin anything in this namespace (and can't: tags differ).
  std::string latest;
  if (Result<std::string> latest_tag = ::ucp::ReadLatestTag(*this, job); latest_tag.ok()) {
    latest = *latest_tag;
  }
  // Recency alone can destroy resumability: when every tag inside the keep window is
  // damaged (a torn write that still committed), the newest *readable* tag sits outside
  // the window, and deleting it would leave the job nothing to resume from. Pin it like
  // `latest`. Readability here is meta-readability — the same frontier definition resume's
  // tag walk starts from; a deep shard scan per GC would be disproportionate.
  std::string valid;
  if (Result<std::string> valid_tag = ::ucp::FindLatestValidTag(*this, job);
      valid_tag.ok()) {
    valid = *valid_tag;
  }
  GcReport report;
  // Protect the newest keep_last committed tags AND whatever `latest` names — when the
  // pointer lags (or was rolled back by hand), retention must not strand the resume.
  const size_t first_kept = committed.size() > static_cast<size_t>(keep_last)
                                ? committed.size() - static_cast<size_t>(keep_last)
                                : 0;
  for (size_t i = 0; i < committed.size(); ++i) {
    const std::string& tag = committed[i];
    if (i < first_kept && tag != latest && tag != valid) {
      if (!dry_run) {
        UCP_RETURN_IF_ERROR(DeleteTag(tag));
      }
      report.removed.push_back(tag);
    } else {
      report.kept.push_back(tag);
    }
  }
  // Reclaim chunk objects no longer referenced by any tag (this job's deletions may have
  // dropped the last referer of a chunk — or not, if a sibling tag shares it; the sweep
  // is the arbiter). A sweep refusal (damaged committed manifest) must not fail the Gc:
  // tags were already retired per policy, space reclaim just waits for fsck.
  if (!dry_run) {
    Result<ChunkIndex::SweepReport> sweep =
        ChunkIndex::ForRoot(root_)->Sweep(false, chunk_sweep_grace_seconds_);
    if (!sweep.ok()) {
      UCP_LOG(Warning) << "chunk sweep skipped: " << sweep.status().ToString();
    }
  }
  return report;
}

Result<int> LocalStore::SweepStagingDebris(const std::string& job) {
  if (!IsValidJobId(job)) {
    return InvalidArgumentError("bad job id: " + job);
  }
  if (!DirExists(root_)) {
    return 0;
  }
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> entries, ListDir(root_));
  int removed = 0;
  for (const std::string& name : entries) {
    // `.staging` dirs are save/converter debris; `.wip` dirs are the daemon's upload
    // spools, orphaned once no live lease can resume into them.
    size_t suffix_len = 0;
    if (EndsWith(name, kStagingSuffix)) {
      suffix_len = sizeof(kStagingSuffix) - 1;
    } else if (EndsWith(name, kWipSuffix)) {
      suffix_len = sizeof(kWipSuffix) - 1;
    }
    if (suffix_len == 0 || name.size() <= suffix_len ||
        !DirExists(PathJoin(root_, name))) {
      continue;
    }
    // Ownership of a staging dir is decided by the tag name under the suffixes: both save
    // debris (`<tag>.staging`) and converter debris (`<tag>.ucp.staging`) belong to the
    // job the tag names. Staging dirs that parse to no job at all (free-form tags) are
    // swept by the default job only — they cannot belong to a namespaced job.
    std::string base = name.substr(0, name.size() - suffix_len);
    if (EndsWith(base, ".ucp")) {
      base.resize(base.size() - 4);
    }
    std::string tag_job;
    const bool parsed = ParseTagName(base, &tag_job, nullptr);
    const bool owned = parsed ? tag_job == job : job.empty();
    if (!owned) {
      continue;
    }
    ChunkIndex::ForRoot(root_)->ReleaseTagPins(base);
    UCP_RETURN_IF_ERROR(RemoveAll(PathJoin(root_, name)));
    ++removed;
  }
  return removed;
}

// ---- Dir-based wrappers -------------------------------------------------------------------

Status CommitCheckpointTag(const std::string& dir, const std::string& tag,
                           const CheckpointMeta& meta) {
  return LocalStore(dir).CommitTag(tag, meta.ToJson().Dump(2));
}

Result<int> CleanStagingDebris(const std::string& dir, const std::string& job) {
  return LocalStore(dir).SweepStagingDebris(job);
}

Result<std::string> ReadLatestTag(const std::string& dir, const std::string& job) {
  if (!IsValidJobId(job)) {
    return InvalidArgumentError("bad job id: " + job);
  }
  return ReadFileToString(PathJoin(dir, LatestFileName(job)));
}

bool IsTagComplete(const std::string& dir, const std::string& tag) {
  return FileExists(PathJoin(PathJoin(dir, tag), kCompleteMarker));
}

Result<std::string> FindLatestValidTag(const std::string& dir, const std::string& job) {
  LocalStore store(dir);
  Result<std::string> tag = FindLatestValidTag(store, job);
  if (!tag.ok() && tag.status().code() == StatusCode::kNotFound) {
    return NotFoundError("no committed checkpoint tag under " + dir);
  }
  return tag;
}

Result<CheckpointMeta> ReadCheckpointMeta(const std::string& dir, const std::string& tag) {
  const std::string tag_dir = PathJoin(dir, tag);
  if (DirExists(tag_dir) && !FileExists(PathJoin(tag_dir, kCompleteMarker))) {
    return DataLossError("checkpoint tag " + tag +
                         " is not committed (missing 'complete' marker)");
  }
  UCP_ASSIGN_OR_RETURN(std::string text,
                       ReadFileToString(PathJoin(tag_dir, "checkpoint_meta.json")));
  UCP_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return CheckpointMeta::FromJson(json);
}

Result<std::vector<std::string>> ListCheckpointTags(const std::string& dir,
                                                    const std::string& job) {
  return LocalStore(dir).ListTags(job);
}

Result<std::vector<std::string>> ListAllCheckpointTags(const std::string& dir) {
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> entries, ListDir(dir));
  std::vector<std::tuple<std::string, int64_t, std::string>> tagged;
  for (const std::string& name : entries) {
    std::string tag_job;
    int64_t iteration = 0;
    if (ParseTagName(name, &tag_job, &iteration) && DirExists(PathJoin(dir, name))) {
      tagged.emplace_back(tag_job, iteration, name);
    }
  }
  std::sort(tagged.begin(), tagged.end());
  std::vector<std::string> tags;
  tags.reserve(tagged.size());
  for (auto& [job, iteration, name] : tagged) {
    tags.push_back(std::move(name));
  }
  return tags;
}

Status PruneCheckpoints(const std::string& dir, int keep_last) {
  if (keep_last < 1) {
    return InvalidArgumentError("keep_last must be >= 1");
  }
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> tags, ListCheckpointTags(dir));
  std::string latest;
  if (Result<std::string> latest_tag = ReadLatestTag(dir); latest_tag.ok()) {
    latest = *latest_tag;
  }
  int excess = static_cast<int>(tags.size()) - keep_last;
  for (int i = 0; i < static_cast<int>(tags.size()) && excess > 0; ++i) {
    if (tags[static_cast<size_t>(i)] == latest) {
      continue;
    }
    UCP_RETURN_IF_ERROR(RemoveAll(PathJoin(dir, tags[static_cast<size_t>(i)])));
    --excess;
  }
  return OkStatus();
}

Result<GcReport> GcCheckpoints(const std::string& dir, int keep_last, bool dry_run,
                               const std::string& job) {
  return LocalStore(dir).Gc(job, keep_last, dry_run);
}

}  // namespace ucp
