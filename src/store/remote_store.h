// Store backend that speaks the wire protocol to a running ucp_serverd.
//
// One connection per RemoteStore; a mutex serializes request/response exchanges, so the
// simulator's rank threads can share a single store the way they share a directory today.
// ReadAt on an opened file becomes a READ_RANGE request (verified server-side against the
// file's chunk-CRC table); staged writes stream as WRITE_BEGIN / WRITE_CHUNK* / WRITE_END
// with a whole-file CRC the server checks before the file lands in staging.
//
// Retry semantics, two distinct layers:
//  - Admission-control rejections (the daemon's staged-bytes cap) arrive as kUnavailable
//    *responses* on a healthy connection and are retried with IoRetryPolicy backoff.
//  - Transport failures (daemon died, connection dropped, network partitioned) also map
//    to kUnavailable. When the session holds a lease (wire v3 + reconnect enabled), the
//    store transparently redials under `reconnect_deadline` with exponential backoff +
//    jitter, re-presents its lease token, and resumes: streamed uploads continue from the
//    server-acknowledged offset (WRITE_RESUME), open read handles are reopened by path,
//    and an interrupted COMMIT_TAG is checked for completion before being retried. When
//    there is no lease (v1/v2 peer, leases disabled, reconnect off) the historical
//    semantics hold: the transport failure surfaces typed and nothing is retried.

#ifndef UCP_SRC_STORE_REMOTE_STORE_H_
#define UCP_SRC_STORE_REMOTE_STORE_H_

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/store/store.h"
#include "src/store/wire.h"

namespace ucp {

struct RemoteStoreOptions {
  // Redial + re-adopt the lease on transport failure. Only effective when the session
  // actually holds a lease (negotiated v3 and lease_ttl_ms > 0 and the server grants it).
  bool reconnect = true;
  // Total wall-clock budget for one reconnect episode (dial + handshake + SESSION_OPEN,
  // retried with backoff). Past it the original transport error surfaces as kUnavailable.
  std::chrono::milliseconds reconnect_deadline{5000};
  // TTL requested at SESSION_OPEN; the server clamps to its own max. Should comfortably
  // exceed reconnect_deadline or the server reaps the lease mid-reconnect. 0 skips the
  // lease entirely (release-on-disconnect semantics, no reconnect).
  uint32_t lease_ttl_ms = 15000;
  // Highest protocol version offered at HELLO. Production leaves the default; the
  // downgrade conformance tests pin v1/v2 client behavior with it.
  uint32_t max_version = kWireVersion;
};

// Snapshot returned by SERVER_STAT (v3) — surfaced by `ucp_tool ping`.
struct RemoteServerStat {
  uint32_t max_wire_version = 0;
  uint32_t sessions = 0;
  uint32_t leases = 0;  // named leases only
  uint64_t staged_bytes = 0;
  bool draining = false;
};

class RemoteByteSource;

class RemoteStore final : public Store, public std::enable_shared_from_this<RemoteStore> {
 public:
  // Dials `endpoint` ("unix:/path" or "tcp:host:port"), runs the version handshake, and
  // (v3, lease_ttl_ms > 0) binds a session lease under a freshly generated token.
  static Result<std::shared_ptr<RemoteStore>> Connect(const std::string& endpoint);
  static Result<std::shared_ptr<RemoteStore>> Connect(const std::string& endpoint,
                                                      const RemoteStoreOptions& options);

  ~RemoteStore() override;
  RemoteStore(const RemoteStore&) = delete;
  RemoteStore& operator=(const RemoteStore&) = delete;

  std::string Describe() const override { return endpoint_; }
  std::string CacheKey(const std::string& rel) const override {
    return endpoint_ + "!" + rel;
  }
  uint64_t session_id() const;
  // Protocol version agreed at HELLO: min(server max, client max). Chunk ops (incremental
  // saves over the wire) need >= 2; against a v1 daemon WriteFileChunked degrades to
  // full-file writes. Leases / resumable writes need >= 3.
  uint32_t negotiated_version() const;
  // Empty when the session holds no lease (v1/v2 peer, leases disabled, ttl 0).
  const std::string& lease_token() const { return lease_token_; }

  Result<std::unique_ptr<ByteSource>> OpenRead(const std::string& rel) override;
  Result<std::string> ReadSmallFile(const std::string& rel) override;
  Result<bool> Exists(const std::string& rel) override;
  Result<std::vector<std::string>> List(const std::string& rel) override;
  Result<std::vector<std::string>> ListTags(const std::string& job) override;

  Result<std::unique_ptr<StoreWriter>> OpenTagForWrite(const std::string& tag) override;
  Status ResetTagStaging(const std::string& tag) override;
  Status CommitTag(const std::string& tag, const std::string& meta_json) override;
  Status AbortTag(const std::string& tag) override;

  Status DeleteTag(const std::string& tag) override;
  Result<GcReport> Gc(const std::string& job, int keep_last, bool dry_run) override;
  Result<int> SweepStagingDebris(const std::string& job) override;

  // Liveness probe (PING round trip).
  Status Ping();
  // Server-side counters snapshot (v3; kUnimplemented against older daemons).
  Result<RemoteServerStat> ServerStat();
  // The daemon's metrics page over the store endpoint (v4; kUnimplemented against older
  // daemons) — the same payload /metrics serves, as text table or Prometheus exposition.
  Result<std::string> MetricsDump(bool prometheus);

  // Drops the connection and disables reconnect, failing all further calls with
  // kUnavailable. Used by tests to simulate a client crash mid-stream (the server must
  // discard — or, under a lease, preserve until expiry — the partial staging).
  void CloseForTest();

 private:
  friend class RemoteByteSource;
  friend class RemoteStoreWriter;

  RemoteStore(int fd, std::string endpoint, uint64_t session_id, uint32_t max_frame,
              uint32_t version, RemoteStoreOptions options, std::string lease_token)
      : fd_(fd), endpoint_(std::move(endpoint)), session_id_(session_id),
        max_frame_(max_frame), version_(version), options_(options),
        lease_token_(std::move(lease_token)) {}

  // One request/response exchange on the current socket — no reconnect. Any send/recv
  // failure closes the fd (the stream position is unknown; the socket is junk), so
  // afterwards `fd_ < 0` distinguishes transport death from a typed error *response*.
  Result<WireFrame> ExchangeLocked(WireOp op, const std::vector<uint8_t>& payload,
                                   WireOp ok_op);
  // ExchangeLocked plus transparent reconnect-and-retry on transport failure, for
  // idempotent ops (reads, lists, tag state transitions, chunk query/put).
  Result<WireFrame> RoundtripLocked(WireOp op, const std::vector<uint8_t>& payload,
                                    WireOp ok_op);
  Result<WireFrame> Roundtrip(WireOp op, const std::vector<uint8_t>& payload, WireOp ok_op);
  // Roundtrip with IoRetryPolicy backoff on kUnavailable *responses* (admission control).
  Result<WireFrame> RoundtripWithRetry(WireOp op, const std::vector<uint8_t>& payload,
                                       WireOp ok_op);

  bool CanReconnectLocked() const {
    return options_.reconnect && version_ >= 3 && !lease_token_.empty();
  }
  // Redials + HELLO + SESSION_OPEN(token) with backoff + jitter until
  // options_.reconnect_deadline. On success bumps conn_epoch_ (read handles reopen
  // lazily). Honors a server retry-after hint as the backoff floor.
  Status ReconnectLocked();
  void CloseFdLocked();

  // The full streamed upload of one file, resuming across reconnects (WRITE_RESUME).
  Status WriteFileLocked(const std::string& tag, const std::string& rel, const void* data,
                         size_t size);
  // One BEGIN/CHUNK*/END attempt starting at `resume`; `sent_high` tracks the highest
  // byte offset ever put on the wire for resumed-vs-restarted accounting.
  Status WriteFileOnceLocked(const std::string& tag, const std::string& rel,
                             const void* data, size_t size, uint64_t resume,
                             uint64_t* sent_high);

  Status ReadRange(RemoteByteSource& src, uint64_t offset, void* out, size_t size);
  void CloseRead(RemoteByteSource& src);

  mutable std::mutex mu_;
  int fd_ = -1;
  const std::string endpoint_;
  uint64_t session_id_ = 0;
  uint32_t max_frame_ = kMaxFramePayload;
  uint32_t version_ = kWireVersion;
  RemoteStoreOptions options_;
  const std::string lease_token_;
  // Bumped on every successful reconnect; RemoteByteSource handles stamped with an older
  // epoch are stale (server-side read state died with the old session) and reopen by path.
  uint64_t conn_epoch_ = 1;
};

}  // namespace ucp

#endif  // UCP_SRC_STORE_REMOTE_STORE_H_
