// Store backend that speaks the wire protocol to a running ucp_serverd.
//
// One connection per RemoteStore; a mutex serializes request/response exchanges, so the
// simulator's rank threads can share a single store the way they share a directory today.
// ReadAt on an opened file becomes a READ_RANGE request (verified server-side against the
// file's chunk-CRC table); staged writes stream as WRITE_BEGIN / WRITE_CHUNK* / WRITE_END
// with a whole-file CRC the server checks before the file lands in staging.
//
// Retry semantics: admission-control rejections (the daemon's staged-bytes cap) arrive as
// kUnavailable responses on a healthy connection and are retried here with IoRetryPolicy
// backoff; transport-level kUnavailable (daemon died) is not retried — there is no
// reconnect, matching how a failed rank mid-save is handled everywhere else.

#ifndef UCP_SRC_STORE_REMOTE_STORE_H_
#define UCP_SRC_STORE_REMOTE_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/store/store.h"
#include "src/store/wire.h"

namespace ucp {

class RemoteStore final : public Store, public std::enable_shared_from_this<RemoteStore> {
 public:
  // Dials `endpoint` ("unix:/path" or "tcp:host:port") and runs the version handshake.
  static Result<std::shared_ptr<RemoteStore>> Connect(const std::string& endpoint);

  ~RemoteStore() override;
  RemoteStore(const RemoteStore&) = delete;
  RemoteStore& operator=(const RemoteStore&) = delete;

  std::string Describe() const override { return endpoint_; }
  std::string CacheKey(const std::string& rel) const override {
    return endpoint_ + "!" + rel;
  }
  uint64_t session_id() const { return session_id_; }
  // Protocol version agreed at HELLO: min(server max, client max). Chunk ops (incremental
  // saves over the wire) need >= 2; against a v1 daemon WriteFileChunked degrades to
  // full-file writes.
  uint32_t negotiated_version() const { return version_; }

  Result<std::unique_ptr<ByteSource>> OpenRead(const std::string& rel) override;
  Result<std::string> ReadSmallFile(const std::string& rel) override;
  Result<bool> Exists(const std::string& rel) override;
  Result<std::vector<std::string>> List(const std::string& rel) override;
  Result<std::vector<std::string>> ListTags(const std::string& job) override;

  Result<std::unique_ptr<StoreWriter>> OpenTagForWrite(const std::string& tag) override;
  Status ResetTagStaging(const std::string& tag) override;
  Status CommitTag(const std::string& tag, const std::string& meta_json) override;
  Status AbortTag(const std::string& tag) override;

  Status DeleteTag(const std::string& tag) override;
  Result<GcReport> Gc(const std::string& job, int keep_last, bool dry_run) override;
  Result<int> SweepStagingDebris(const std::string& job) override;

  // Liveness probe (PING round trip).
  Status Ping();

  // Drops the connection, failing all further calls with kUnavailable. Used by tests to
  // simulate a client crash mid-stream (the server must discard the partial staging).
  void CloseForTest();

 private:
  friend class RemoteByteSource;
  friend class RemoteStoreWriter;

  RemoteStore(int fd, std::string endpoint, uint64_t session_id, uint32_t max_frame,
              uint32_t version)
      : fd_(fd), endpoint_(std::move(endpoint)), session_id_(session_id),
        max_frame_(max_frame), version_(version) {}

  // One request/response exchange under the connection lock. `ok_op` is the expected
  // response type; a kError response decodes into its carried Status.
  Result<WireFrame> Roundtrip(WireOp op, const std::vector<uint8_t>& payload, WireOp ok_op);
  Result<WireFrame> RoundtripLocked(WireOp op, const std::vector<uint8_t>& payload,
                                    WireOp ok_op);
  // Roundtrip with IoRetryPolicy backoff on kUnavailable *responses* (admission control).
  Result<WireFrame> RoundtripWithRetry(WireOp op, const std::vector<uint8_t>& payload,
                                       WireOp ok_op);

  Status ReadRange(uint64_t handle, uint64_t offset, void* out, size_t size);
  void CloseRead(uint64_t handle);

  std::mutex mu_;
  int fd_ = -1;
  const std::string endpoint_;
  const uint64_t session_id_ = 0;
  const uint32_t max_frame_ = kMaxFramePayload;
  const uint32_t version_ = kWireVersion;
};

}  // namespace ucp

#endif  // UCP_SRC_STORE_REMOTE_STORE_H_
