#include "src/store/tags.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "src/common/fs.h"
#include "src/common/strings.h"

namespace ucp {

bool IsValidJobId(const std::string& job) {
  if (job.empty()) {
    return true;  // the default namespace
  }
  if (job.size() > 64 || job == "latest") {  // `latest` would collide with pointer files
    return false;
  }
  for (char c : job) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '-') {
      return false;
    }
  }
  return true;
}

std::string JobTagPrefix(const std::string& job) {
  return job.empty() ? std::string() : job + ".";
}

std::string LatestFileName(const std::string& job) {
  return job.empty() ? std::string("latest") : "latest." + job;
}

bool ParseTagName(const std::string& name, std::string* job, int64_t* iteration) {
  constexpr char kPrefix[] = "global_step";
  // Job ids contain no '.', so the first dot (if any) separates job from tag body. Names
  // with trailing suffixes (".staging", ".ucp", ".quarantined") fail the strict digit
  // parse below and never match.
  std::string j;
  std::string rest;
  const size_t dot = name.find('.');
  if (dot == std::string::npos) {
    rest = name;
  } else {
    j = name.substr(0, dot);
    rest = name.substr(dot + 1);
    if (j.empty() || !IsValidJobId(j)) {
      return false;
    }
  }
  if (!StartsWith(rest, kPrefix)) {
    return false;
  }
  const char* digits = rest.c_str() + sizeof(kPrefix) - 1;
  if (*digits == '\0') {
    return false;
  }
  for (const char* p = digits; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      return false;
    }
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(digits, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return false;
  }
  if (job != nullptr) {
    *job = j;
  }
  if (iteration != nullptr) {
    *iteration = parsed;
  }
  return true;
}

std::string TagForIteration(int64_t iteration) {
  return "global_step" + std::to_string(iteration);
}

std::string TagForIteration(const std::string& job, int64_t iteration) {
  return JobTagPrefix(job) + TagForIteration(iteration);
}

std::string ModelStatesFileName(int tp, int pp, int sp) {
  return StrFormat("mp_rank_%02d_%03d_sp_%02d_model_states", tp, pp, sp);
}

std::string OptimStatesFileName(int dp, int tp, int pp, int sp) {
  return StrFormat("zero_pp_rank_%d_mp_rank_%02d_%03d_sp_%02d_optim_states", dp, tp, pp, sp);
}

std::string WipDirForTag(const std::string& dir, const std::string& tag) {
  return PathJoin(dir, tag) + kWipSuffix;
}

std::string StagingDirForTag(const std::string& dir, const std::string& tag) {
  return PathJoin(dir, tag) + kStagingSuffix;
}

bool IsSafeStoreName(const std::string& name) {
  if (name.empty() || name.size() > 255 || name == "." || name == "..") {
    return false;
  }
  for (char c : name) {
    if (c == '/' || c == '\0' || std::iscntrl(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

bool IsSafeStoreRelPath(const std::string& rel) {
  if (rel.empty() || rel.size() > 4096) {
    return false;
  }
  size_t begin = 0;
  while (begin <= rel.size()) {
    const size_t slash = rel.find('/', begin);
    const size_t end = slash == std::string::npos ? rel.size() : slash;
    if (!IsSafeStoreName(rel.substr(begin, end - begin))) {
      return false;
    }
    if (slash == std::string::npos) {
      break;
    }
    begin = slash + 1;
  }
  return true;
}

}  // namespace ucp
