#include "src/store/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/crc32.h"
#include "src/common/fs.h"
#include "src/common/strings.h"
#include "src/obs/metrics.h"

namespace ucp {

const char* WireOpName(WireOp op) {
  switch (op) {
    case WireOp::kHello: return "hello";
    case WireOp::kListTags: return "list_tags";
    case WireOp::kList: return "list";
    case WireOp::kReadSmall: return "read_small";
    case WireOp::kOpenRead: return "open_read";
    case WireOp::kReadRange: return "read_range";
    case WireOp::kCloseRead: return "close_read";
    case WireOp::kExists: return "exists";
    case WireOp::kResetStaging: return "reset_staging";
    case WireOp::kWriteBegin: return "write_begin";
    case WireOp::kWriteChunk: return "write_chunk";
    case WireOp::kWriteEnd: return "write_end";
    case WireOp::kCommitTag: return "commit_tag";
    case WireOp::kAbortTag: return "abort_tag";
    case WireOp::kDeleteTag: return "delete_tag";
    case WireOp::kGc: return "gc";
    case WireOp::kSweepDebris: return "sweep_debris";
    case WireOp::kPing: return "ping";
    case WireOp::kChunkQuery: return "chunk_query";
    case WireOp::kChunkPut: return "chunk_put";
    case WireOp::kSessionOpen: return "session_open";
    case WireOp::kSessionRenew: return "session_renew";
    case WireOp::kWriteResume: return "write_resume";
    case WireOp::kServerStat: return "server_stat";
    case WireOp::kTraceContext: return "trace_context";
    case WireOp::kMetricsDump: return "metrics_dump";
    case WireOp::kOk: return "ok";
    case WireOp::kError: return "error";
    case WireOp::kHelloOk: return "hello_ok";
    case WireOp::kStrList: return "str_list";
    case WireOp::kBytes: return "bytes";
    case WireOp::kOpenReadOk: return "open_read_ok";
    case WireOp::kBool: return "bool";
    case WireOp::kGcReport: return "gc_report";
    case WireOp::kInt: return "int";
    case WireOp::kChunkMask: return "chunk_mask";
    case WireOp::kSessionOpenOk: return "session_open_ok";
    case WireOp::kWriteResumeOk: return "write_resume_ok";
    case WireOp::kServerStatOk: return "server_stat_ok";
  }
  return "op_unknown";
}

namespace {

// ---- io.retry.* metrics (the remote-path twin of fs.retry.*) -----------------------------

obs::Counter& TransientCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("io.retry.transient_errors");
  return c;
}
obs::Counter& RetryCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("io.retry.retries");
  return c;
}
obs::Counter& GiveupCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("io.retry.giveups");
  return c;
}

// ---- Fault injection ----------------------------------------------------------------------

std::mutex g_fault_mu;
std::vector<SocketFault> g_faults;
int g_send_calls = 0;
int g_recv_calls = 0;

// Returns the armed fault matching this syscall, if any, and disarms it.
bool TakeFault(SocketFault::Op op, SocketFault* out) {
  std::lock_guard<std::mutex> lock(g_fault_mu);
  int& counter = op == SocketFault::Op::kSend ? g_send_calls : g_recv_calls;
  const int call = counter++;
  for (size_t i = 0; i < g_faults.size(); ++i) {
    if (g_faults[i].op == op && g_faults[i].nth == call) {
      *out = g_faults[i];
      g_faults.erase(g_faults.begin() + static_cast<long>(i));
      return true;
    }
  }
  return false;
}

// The errno kinds drop the connection for real (shutdown() makes the peer see EOF and
// later local syscalls fail), so a chaos-injected ECONNRESET behaves like the genuine
// article on both ends of the socket.
ssize_t InjectErrnoDrop(int fd, int err) {
  ::shutdown(fd, SHUT_RDWR);
  errno = err;
  return -1;
}

ssize_t SendSyscall(int fd, const void* buf, size_t len) {
  SocketFault fault;
  if (TakeFault(SocketFault::Op::kSend, &fault)) {
    switch (fault.kind) {
      case SocketFault::Kind::kEintr:
        errno = EINTR;
        return -1;
      case SocketFault::Kind::kEagain:
        errno = EAGAIN;
        return -1;
      case SocketFault::Kind::kShort:
        len = len > 1 ? 1 : len;
        break;
      case SocketFault::Kind::kEpipe:
        return InjectErrnoDrop(fd, EPIPE);
      case SocketFault::Kind::kEconnreset:
        return InjectErrnoDrop(fd, ECONNRESET);
      case SocketFault::Kind::kEtimedout:
        return InjectErrnoDrop(fd, ETIMEDOUT);
      case SocketFault::Kind::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
        break;
      case SocketFault::Kind::kBlackhole:
        // One-way partition: the bytes vanish but the sender believes they went out.
        return static_cast<ssize_t>(len);
    }
  }
#ifdef MSG_NOSIGNAL
  return ::send(fd, buf, len, MSG_NOSIGNAL);
#else
  return ::send(fd, buf, len, 0);
#endif
}

ssize_t RecvSyscall(int fd, void* buf, size_t len) {
  SocketFault fault;
  if (TakeFault(SocketFault::Op::kRecv, &fault)) {
    switch (fault.kind) {
      case SocketFault::Kind::kEintr:
        errno = EINTR;
        return -1;
      case SocketFault::Kind::kEagain:
        errno = EAGAIN;
        return -1;
      case SocketFault::Kind::kShort:
        len = len > 1 ? 1 : len;
        break;
      case SocketFault::Kind::kEpipe:
        return InjectErrnoDrop(fd, EPIPE);
      case SocketFault::Kind::kEconnreset:
        return InjectErrnoDrop(fd, ECONNRESET);
      case SocketFault::Kind::kEtimedout:
        return InjectErrnoDrop(fd, ETIMEDOUT);
      case SocketFault::Kind::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
        break;
      case SocketFault::Kind::kBlackhole:
        // The reply never arrives: model the read-side of a one-way partition as a
        // timeout after the injected delay.
        std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
        return InjectErrnoDrop(fd, ETIMEDOUT);
    }
  }
  return ::recv(fd, buf, len, 0);
}

// ---- Transfer loops -----------------------------------------------------------------------
//
// Partial progress restarts the transient budget: only *consecutive* EINTR/EAGAIN hits
// count against max_attempts, matching the fs-side retry semantics (an operation that
// keeps moving is not failing).

Status SendAll(int fd, const void* data, size_t size) {
  const IoRetryPolicy policy = GetIoRetryPolicy();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t left = size;
  int attempt = 0;
  std::chrono::milliseconds backoff = policy.base_backoff;
  while (left > 0) {
    const ssize_t n = SendSyscall(fd, p, left);
    if (n > 0) {
      p += n;
      left -= static_cast<size_t>(n);
      attempt = 0;
      backoff = policy.base_backoff;
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      TransientCounter().Add(1);
      if (++attempt >= policy.max_attempts) {
        GiveupCounter().Add(1);
        return UnavailableError("socket send: transient errors exhausted retries");
      }
      RetryCounter().Add(1);
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, policy.max_backoff);
      continue;
    }
    if (n == 0) {
      return UnavailableError("socket send failed: peer closed");
    }
    return StatusFromSocketErrno("socket send", errno);
  }
  return OkStatus();
}

// `eof_ok` distinguishes "peer hung up between frames" (clean close) from "peer died
// mid-frame" — both kUnavailable, but the message matters for diagnosing kills.
Status RecvAll(int fd, void* data, size_t size, bool at_frame_boundary) {
  const IoRetryPolicy policy = GetIoRetryPolicy();
  uint8_t* p = static_cast<uint8_t*>(data);
  size_t left = size;
  int attempt = 0;
  std::chrono::milliseconds backoff = policy.base_backoff;
  while (left > 0) {
    const ssize_t n = RecvSyscall(fd, p, left);
    if (n > 0) {
      p += n;
      left -= static_cast<size_t>(n);
      attempt = 0;
      backoff = policy.base_backoff;
      continue;
    }
    if (n == 0) {
      if (at_frame_boundary && left == size) {
        return UnavailableError("connection closed by peer");
      }
      return UnavailableError("connection closed mid-frame");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
      TransientCounter().Add(1);
      if (++attempt >= policy.max_attempts) {
        GiveupCounter().Add(1);
        return UnavailableError("socket recv: transient errors exhausted retries");
      }
      RetryCounter().Add(1);
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, policy.max_backoff);
      continue;
    }
    return StatusFromSocketErrno("socket recv", errno);
  }
  return OkStatus();
}

void StoreU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

Status StatusFromSocketErrno(const std::string& op, int err) {
  const std::string msg = op + " failed: " + std::strerror(err);
  switch (err) {
    case EPIPE:
    case ECONNRESET:
    case ETIMEDOUT:
    case ECONNREFUSED:
    case ECONNABORTED:
    case ENETUNREACH:
    case EHOSTUNREACH:
    case ENETDOWN:
    case ENOTCONN:
      // Connection-level: the peer (or the path to it) went away. Retryable — the daemon
      // may come back, the client may reconnect.
      return UnavailableError(msg);
    default:
      return IoError(msg);
  }
}

void ArmSocketFault(const SocketFault& fault) {
  std::lock_guard<std::mutex> lock(g_fault_mu);
  SocketFault f = fault;
  // `nth` is relative to the calls made after arming.
  f.nth += f.op == SocketFault::Op::kSend ? g_send_calls : g_recv_calls;
  g_faults.push_back(f);
}

void ClearSocketFaults() {
  std::lock_guard<std::mutex> lock(g_fault_mu);
  g_faults.clear();
}

Status SendFrame(int fd, WireOp op, const void* prefix, size_t prefix_len,
                 const void* payload, size_t len) {
  const size_t total = prefix_len + len;
  if (total > kMaxFramePayload) {
    return InvalidArgumentError("wire frame payload too large: " + std::to_string(total));
  }
  // Header + payload + trailing CRC in one buffer: a frame is one send (modulo partial
  // progress), which keeps concurrent writers on a shared connection atomic per-frame.
  std::vector<uint8_t> buf(9 + total + 4);
  StoreU32(buf.data(), kWireMagic);
  buf[4] = static_cast<uint8_t>(op);
  StoreU32(buf.data() + 5, static_cast<uint32_t>(total));
  if (prefix_len > 0) {
    std::memcpy(buf.data() + 9, prefix, prefix_len);
  }
  if (len > 0) {
    std::memcpy(buf.data() + 9 + prefix_len, payload, len);
  }
  // CRC covers the type byte + payload (not the length field), matching RecvFrame.
  uint32_t crc = Crc32Init();
  crc = Crc32Update(crc, buf.data() + 4, 1);
  crc = Crc32Update(crc, buf.data() + 9, total);
  StoreU32(buf.data() + 9 + total, Crc32Finalize(crc));
  return SendAll(fd, buf.data(), buf.size());
}

Status SendFrame(int fd, WireOp op, const void* payload, size_t len) {
  return SendFrame(fd, op, /*prefix=*/nullptr, /*prefix_len=*/0, payload, len);
}

Result<WireFrame> RecvFrame(int fd, uint32_t max_payload) {
  uint8_t header[9];
  UCP_RETURN_IF_ERROR(RecvAll(fd, header, sizeof(header), /*at_frame_boundary=*/true));
  if (LoadU32(header) != kWireMagic) {
    return DataLossError("torn wire frame: bad magic");
  }
  WireFrame frame;
  frame.op = static_cast<WireOp>(header[4]);
  const uint32_t len = LoadU32(header + 5);
  if (len > max_payload) {
    return DataLossError("torn wire frame: oversized payload (" + std::to_string(len) +
                         " bytes)");
  }
  frame.payload.resize(len);
  if (len > 0) {
    UCP_RETURN_IF_ERROR(
        RecvAll(fd, frame.payload.data(), len, /*at_frame_boundary=*/false));
  }
  uint8_t crc_buf[4];
  UCP_RETURN_IF_ERROR(RecvAll(fd, crc_buf, sizeof(crc_buf), /*at_frame_boundary=*/false));
  uint32_t crc = Crc32Init();
  crc = Crc32Update(crc, header + 4, 1);
  crc = Crc32Update(crc, frame.payload.data(), frame.payload.size());
  if (LoadU32(crc_buf) != Crc32Finalize(crc)) {
    return DataLossError("torn wire frame: CRC mismatch");
  }
  return frame;
}

// ---- Endpoints ---------------------------------------------------------------------------

Result<Endpoint> ParseEndpoint(const std::string& spec) {
  Endpoint ep;
  if (StartsWith(spec, "unix:")) {
    ep.is_unix = true;
    ep.path = spec.substr(5);
    if (ep.path.empty()) {
      return InvalidArgumentError("empty unix socket path in endpoint: " + spec);
    }
    if (ep.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return InvalidArgumentError("unix socket path too long: " + ep.path);
    }
    return ep;
  }
  if (StartsWith(spec, "tcp:")) {
    ep.is_unix = false;
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      return InvalidArgumentError("expected tcp:host:port, got: " + spec);
    }
    ep.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    char* end = nullptr;
    errno = 0;
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' || port < 0 || port > 65535) {
      return InvalidArgumentError("bad tcp port in endpoint: " + spec);
    }
    ep.port = static_cast<int>(port);
    return ep;
  }
  return InvalidArgumentError("endpoint must start with unix: or tcp:, got: " + spec);
}

std::string EndpointToString(const Endpoint& ep) {
  return ep.is_unix ? "unix:" + ep.path : "tcp:" + ep.host + ":" + std::to_string(ep.port);
}

namespace {

Result<int> NewSocket(const Endpoint& ep) {
  const int fd = ::socket(ep.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return IoError("socket() failed: " + std::string(std::strerror(errno)));
  }
  if (!ep.is_unix) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

Result<sockaddr_in> TcpAddr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(ep.port));
  const std::string host = ep.host == "localhost" ? "127.0.0.1" : ep.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("cannot parse IPv4 host: " + ep.host);
  }
  return addr;
}

}  // namespace

Result<int> DialEndpoint(const Endpoint& ep) {
  UCP_ASSIGN_OR_RETURN(int fd, NewSocket(ep));
  int rc;
  if (ep.is_unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } else {
    Result<sockaddr_in> addr = TcpAddr(ep);
    if (!addr.ok()) {
      ::close(fd);
      return addr.status();
    }
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&*addr), sizeof(*addr));
  }
  if (rc != 0) {
    // ENOENT (no such unix socket yet) is "the daemon isn't up" — just as retryable as a
    // refused TCP connect, so it joins the kUnavailable family rather than kIoError.
    const Status err =
        errno == ENOENT
            ? UnavailableError("cannot connect to " + EndpointToString(ep) + ": " +
                               std::strerror(ENOENT))
            : StatusFromSocketErrno("cannot connect to " + EndpointToString(ep), errno);
    ::close(fd);
    return err;
  }
  return fd;
}

Result<int> ListenEndpoint(const Endpoint& ep) {
  UCP_ASSIGN_OR_RETURN(int fd, NewSocket(ep));
  int rc;
  if (ep.is_unix) {
    ::unlink(ep.path.c_str());  // stale socket file from a previous daemon
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    rc = ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } else {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    Result<sockaddr_in> addr = TcpAddr(ep);
    if (!addr.ok()) {
      ::close(fd);
      return addr.status();
    }
    rc = ::bind(fd, reinterpret_cast<sockaddr*>(&*addr), sizeof(*addr));
  }
  if (rc != 0 || ::listen(fd, 64) != 0) {
    const Status err = IoError("cannot listen on " + EndpointToString(ep) + ": " +
                               std::strerror(errno));
    ::close(fd);
    return err;
  }
  return fd;
}

Result<int> BoundSocketPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      addr.sin_family != AF_INET) {
    return IoError("getsockname failed");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

}  // namespace ucp
