#include "src/store/chunk_index.h"

#include <stdlib.h>
#include <time.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/crc32.h"
#include "src/common/logging.h"
#include "src/common/lz.h"
#include "src/obs/metrics.h"
#include "src/store/tags.h"
#include "src/tensor/chunk_digest.h"

namespace ucp {

namespace {

std::string Dirname(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

// Header of the object at `path` without reading its payload.
Result<ChunkObjectHeader> ReadObjectHeader(const std::string& path) {
  UCP_ASSIGN_OR_RETURN(RandomAccessFile file, RandomAccessFile::Open(path));
  uint8_t header[kChunkHeaderBytes];
  UCP_RETURN_IF_ERROR(file.ReadAt(0, header, sizeof(header)));
  return ParseChunkObjectHeader(header, sizeof(header));
}

// Does the stored object's header say it holds exactly these raw bytes? (Combined with
// the 64-bit address digest this is a ~96-bit equality check — the dedup paths use it so
// a digest collision can never silently substitute one chunk's content for another's.)
bool HeaderMatchesRaw(const ChunkObjectHeader& header, uint32_t raw_size,
                      uint32_t raw_crc) {
  return header.raw_size == raw_size && header.raw_crc == raw_crc;
}

}  // namespace

std::string ChunkObjectRel(uint64_t digest) {
  const std::string hex = DigestToHex(digest);
  return std::string(kChunkDirName) + "/" + hex.substr(0, 2) + "/" + hex;
}

std::vector<uint8_t> EncodeChunkObject(ChunkCodec codec, uint32_t raw_size,
                                       uint32_t raw_crc, const void* stored,
                                       size_t stored_size) {
  ByteWriter writer;
  writer.PutU32(kChunkMagic);
  writer.PutU8(static_cast<uint8_t>(codec));
  writer.PutU32(raw_size);
  writer.PutU32(raw_crc);
  writer.PutBytes(stored, stored_size);
  return writer.TakeBuffer();
}

Result<ChunkObjectHeader> ParseChunkObjectHeader(const void* data, size_t size) {
  if (size < kChunkHeaderBytes) {
    return DataLossError("chunk object shorter than its header");
  }
  ByteReader reader(data, size);
  ChunkObjectHeader header;
  UCP_ASSIGN_OR_RETURN(const uint32_t magic, reader.GetU32());
  UCP_ASSIGN_OR_RETURN(const uint8_t codec, reader.GetU8());
  UCP_ASSIGN_OR_RETURN(header.raw_size, reader.GetU32());
  UCP_ASSIGN_OR_RETURN(header.raw_crc, reader.GetU32());
  if (magic != kChunkMagic) {
    return DataLossError("chunk object has bad magic");
  }
  if (codec > static_cast<uint8_t>(ChunkCodec::kLz)) {
    return DataLossError("chunk object has unknown codec " + std::to_string(codec));
  }
  header.codec = static_cast<ChunkCodec>(codec);
  return header;
}

Result<std::vector<uint8_t>> DecodeChunkObject(const void* data, size_t size,
                                               const std::string& context) {
  Result<ChunkObjectHeader> header = ParseChunkObjectHeader(data, size);
  if (!header.ok()) {
    return DataLossError(context + ": " + header.status().message());
  }
  const uint8_t* payload = static_cast<const uint8_t*>(data) + kChunkHeaderBytes;
  const size_t payload_size = size - kChunkHeaderBytes;
  std::vector<uint8_t> raw;
  if (header->codec == ChunkCodec::kRaw) {
    if (payload_size != header->raw_size) {
      return DataLossError(context + ": raw payload size mismatch");
    }
    raw.assign(payload, payload + payload_size);
  } else {
    raw.resize(header->raw_size);
    Status decompressed =
        LzDecompress(payload, payload_size, raw.data(), header->raw_size);
    if (!decompressed.ok()) {
      return DataLossError(context + ": " + decompressed.message());
    }
  }
  if (Crc32(raw.data(), raw.size()) != header->raw_crc) {
    return DataLossError(context + ": chunk CRC mismatch (bit rot or forged digest)");
  }
  return raw;
}

std::shared_ptr<ChunkIndex> ChunkIndex::ForRoot(const std::string& root) {
  // Canonicalize so "dir" and "dir/" (and symlinked spellings, once the dir exists) share
  // one index — pins taken through LocalStore must be visible to the server's sweep.
  std::string key = root;
  while (key.size() > 1 && key.back() == '/') {
    key.pop_back();
  }
  if (char* resolved = ::realpath(key.c_str(), nullptr)) {
    key = resolved;
    ::free(resolved);
  }
  static std::mutex registry_mu;
  static std::map<std::string, std::shared_ptr<ChunkIndex>>* registry =
      new std::map<std::string, std::shared_ptr<ChunkIndex>>();
  std::lock_guard<std::mutex> lock(registry_mu);
  std::shared_ptr<ChunkIndex>& index = (*registry)[key];
  if (index == nullptr) {
    index = std::shared_ptr<ChunkIndex>(new ChunkIndex(key));
  }
  return index;
}

std::string ChunkIndex::ObjectPath(uint64_t digest) const {
  return PathJoin(root_, ChunkObjectRel(digest));
}

std::vector<uint8_t> ChunkIndex::PinAndQuery(const std::string& tag,
                                             const std::vector<ChunkProbe>& probes) {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<uint64_t>& pinned = pins_[tag];
  std::vector<uint8_t> present(probes.size(), 0);
  for (size_t i = 0; i < probes.size(); ++i) {
    pinned.insert(probes[i].digest);
    const std::string path = ObjectPath(probes[i].digest);
    if (!FileExists(path)) {
      continue;
    }
    // "Present" means present *with this content*: an aliased digest (collision) or a
    // damaged object answers 0, routing the writer to Put, which either heals the object
    // or fails the collision typed.
    Result<ChunkObjectHeader> header = ReadObjectHeader(path);
    present[i] = header.ok() && HeaderMatchesRaw(*header, probes[i].raw_size,
                                                 probes[i].raw_crc)
                     ? 1
                     : 0;
  }
  return present;
}

Status ChunkIndex::Put(uint64_t digest, const void* raw, size_t raw_size,
                       bool try_compress, ChunkedWriteStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string path = ObjectPath(digest);
  const uint32_t raw_crc = Crc32(raw, raw_size);
  if (FileExists(path)) {
    Result<ChunkObjectHeader> existing = ReadObjectHeader(path);
    if (existing.ok()) {
      if (HeaderMatchesRaw(*existing, static_cast<uint32_t>(raw_size), raw_crc)) {
        return OkStatus();  // dedup hit, content verified via size+crc
      }
      // Two different contents hash to one 64-bit digest. Storing either under the
      // shared address would silently corrupt whoever references the other, so the save
      // fails loudly here, while every committed tag is still intact.
      return FailedPreconditionError(
          "chunk digest collision: object " + DigestToHex(digest) +
          " already holds different content (size/crc mismatch); refusing to alias");
    }
    // Existing object is torn/unparseable — fall through and rewrite it with good bytes.
  }
  std::vector<uint8_t> encoded;
  if (try_compress) {
    std::vector<uint8_t> compressed;
    if (LzCompress(raw, raw_size, &compressed) == LzCompressOutcome::kCompressed) {
      encoded = EncodeChunkObject(ChunkCodec::kLz, static_cast<uint32_t>(raw_size),
                                  raw_crc, compressed.data(), compressed.size());
      if (stats != nullptr) {
        ++stats->chunks_compressed;
      }
    }
  }
  if (encoded.empty()) {
    encoded = EncodeChunkObject(ChunkCodec::kRaw, static_cast<uint32_t>(raw_size),
                                raw_crc, raw, raw_size);
  }
  UCP_RETURN_IF_ERROR(MakeDirs(Dirname(path)));
  UCP_RETURN_IF_ERROR(WriteFileAtomic(path, encoded.data(), encoded.size()));
  if (stats != nullptr) {
    stats->bytes_written += encoded.size();
  }
  return OkStatus();
}

Status ChunkIndex::PutEncoded(uint64_t digest, const void* encoded, size_t encoded_size) {
  // Decode-verify before publishing: the object must be internally consistent (header
  // parses, payload decompresses, raw CRC matches) so a truncated or corrupted upload can
  // never land in the shared index under a digest other tags may reference.
  UCP_ASSIGN_OR_RETURN(
      const std::vector<uint8_t> raw,
      DecodeChunkObject(encoded, encoded_size, "chunk " + DigestToHex(digest)));
  // And the decoded content must actually hash to the claimed digest — otherwise a buggy
  // or malicious client could publish arbitrary (self-consistent) content under any
  // address, poisoning every tag that later dedups against it.
  const uint64_t actual = ChunkDigest(raw.data(), raw.size());
  if (actual != digest) {
    return InvalidArgumentError("chunk content hashes to " + DigestToHex(actual) +
                                ", not its claimed digest " + DigestToHex(digest) +
                                " (forged upload rejected)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::string path = ObjectPath(digest);
  if (FileExists(path)) {
    Result<ChunkObjectHeader> existing = ReadObjectHeader(path);
    if (existing.ok()) {
      if (HeaderMatchesRaw(*existing, static_cast<uint32_t>(raw.size()),
                           Crc32(raw.data(), raw.size()))) {
        return OkStatus();
      }
      return FailedPreconditionError(
          "chunk digest collision: object " + DigestToHex(digest) +
          " already holds different content (size/crc mismatch); refusing to alias");
    }
    // Torn/unparseable existing object: rewrite it with the verified upload.
  }
  UCP_RETURN_IF_ERROR(MakeDirs(Dirname(path)));
  return WriteFileAtomic(path, encoded, encoded_size);
}

Result<std::vector<uint8_t>> ChunkIndex::ReadChunk(uint64_t digest) {
  const std::string path = ObjectPath(digest);
  if (!FileExists(path)) {
    return DataLossError("dangling chunk reference: object " + DigestToHex(digest) +
                         " is not in the index (GC'd or never written)");
  }
  UCP_ASSIGN_OR_RETURN(std::string encoded, ReadFileToString(path));
  return DecodeChunkObject(encoded.data(), encoded.size(),
                           "chunk " + DigestToHex(digest));
}

Result<ChunkIndex::ChunkStat> ChunkIndex::StatChunk(uint64_t digest) {
  ChunkStat stat;
  const std::string path = ObjectPath(digest);
  if (!FileExists(path)) {
    return stat;
  }
  UCP_ASSIGN_OR_RETURN(ChunkObjectHeader parsed, ReadObjectHeader(path));
  UCP_ASSIGN_OR_RETURN(stat.stored_size, FileSize(path));
  stat.exists = true;
  stat.codec = parsed.codec;
  stat.raw_size = parsed.raw_size;
  return stat;
}

void ChunkIndex::ReleaseTagPins(const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  pins_.erase(tag);
}

size_t ChunkIndex::PinnedCountForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [tag, digests] : pins_) {
    count += digests.size();
  }
  return count;
}

Result<ChunkIndex::SweepReport> ChunkIndex::Sweep(bool dry_run, int64_t grace_seconds) {
  // The lock spans mark AND sweep: a PinAndQuery between the two could otherwise see
  // "present" for an object the sweep is about to delete.
  std::lock_guard<std::mutex> lock(mu_);
  static obs::Counter& sweeps =
      obs::MetricsRegistry::Global().GetCounter("store.chunks.sweeps");
  static obs::Counter& swept_objects =
      obs::MetricsRegistry::Global().GetCounter("store.chunks.swept_objects");
  static obs::Counter& swept_bytes =
      obs::MetricsRegistry::Global().GetCounter("store.chunks.swept_bytes");

  std::set<uint64_t> live;
  for (const auto& [tag, digests] : pins_) {
    live.insert(digests.begin(), digests.end());
  }
  if (DirExists(root_)) {
    UCP_ASSIGN_OR_RETURN(std::vector<std::string> entries, ListDir(root_));
    for (const std::string& name : entries) {
      const std::string dir = PathJoin(root_, name);
      if (name == kChunkDirName || !DirExists(dir)) {
        continue;
      }
      const std::string manifest_path = PathJoin(dir, kChunkManifestName);
      if (!FileExists(manifest_path)) {
        continue;
      }
      UCP_ASSIGN_OR_RETURN(std::string text, ReadFileToString(manifest_path));
      Result<ChunkManifest> manifest = ParseChunkManifest(text);
      if (!manifest.ok()) {
        if (FileExists(PathJoin(dir, kCompleteMarker))) {
          // Fail closed: a committed tag we cannot enumerate might reference any chunk,
          // so no sweep may run until fsck deals with the damaged manifest.
          return DataLossError("chunk sweep aborted: manifest of committed tag " + name +
                               " is damaged: " + manifest.status().message());
        }
        // Uncommitted / staging debris: its save either crashed (the debris sweep will
        // remove it) or is in flight (its chunks are pinned). Nothing to mark.
        UCP_LOG(Warning) << "chunk sweep: skipping damaged manifest in uncommitted dir "
                         << name << ": " << manifest.status().ToString();
        continue;
      }
      for (const ChunkManifestEntry& entry : manifest->files) {
        live.insert(entry.chunks.begin(), entry.chunks.end());
      }
    }
  }

  SweepReport report;
  const int64_t now = static_cast<int64_t>(::time(nullptr));
  const std::string chunk_root = PathJoin(root_, kChunkDirName);
  if (!DirExists(chunk_root)) {
    sweeps.Add(1);
    return report;
  }
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> fanouts, ListDir(chunk_root));
  for (const std::string& fanout : fanouts) {
    const std::string fanout_dir = PathJoin(chunk_root, fanout);
    if (!DirExists(fanout_dir)) {
      continue;
    }
    UCP_ASSIGN_OR_RETURN(std::vector<std::string> objects, ListDir(fanout_dir));
    for (const std::string& object : objects) {
      std::optional<uint64_t> digest = DigestFromHex(object);
      if (!digest.has_value()) {
        continue;  // not ours; leave foreign files alone
      }
      if (live.count(*digest) != 0) {
        ++report.live;
        continue;
      }
      const std::string path = PathJoin(fanout_dir, object);
      if (grace_seconds > 0) {
        // Quarantine, don't delete: a young unreferenced object may be a dirty chunk of
        // another process's in-flight save whose pins this process cannot see (its
        // manifest lands at FinalizeManifest). It becomes sweepable once it ages out.
        if (Result<int64_t> mtime = FileMtimeSeconds(path);
            mtime.ok() && now - *mtime < grace_seconds) {
          ++report.skipped_young;
          continue;
        }
      }
      uint64_t size = 0;
      if (Result<uint64_t> file_size = FileSize(path); file_size.ok()) {
        size = *file_size;
      }
      if (!dry_run) {
        UCP_RETURN_IF_ERROR(RemoveAll(path));
      }
      ++report.swept;
      report.bytes_swept += size;
    }
  }
  sweeps.Add(1);
  swept_objects.Add(report.swept);
  swept_bytes.Add(report.bytes_swept);
  return report;
}

namespace {

// Reassembles ReadAt ranges of one manifest entry from chunk objects, with a tiny LRU of
// decoded chunks (the v3 views read the header region, then chunk-aligned payload ranges,
// so adjacent reads hit the cache).
class ManifestByteSource final : public ByteSource {
 public:
  ManifestByteSource(std::shared_ptr<ChunkIndex> index, ChunkManifestEntry entry,
                     uint64_t chunk_bytes, std::string name)
      : index_(std::move(index)),
        entry_(std::move(entry)),
        chunk_bytes_(chunk_bytes),
        name_(std::move(name)) {}

  uint64_t size() const override { return entry_.size; }
  const std::string& name() const override { return name_; }

  Status ReadAt(uint64_t offset, void* out, size_t size) override {
    if (offset > entry_.size || size > entry_.size - offset) {
      return DataLossError("read past end of " + name_ + " (manifest-backed)");
    }
    uint8_t* dst = static_cast<uint8_t*>(out);
    uint64_t pos = offset;
    size_t remaining = size;
    while (remaining > 0) {
      const uint64_t chunk_idx = pos / chunk_bytes_;
      const uint64_t chunk_off = pos % chunk_bytes_;
      UCP_ASSIGN_OR_RETURN(const std::vector<uint8_t>* chunk, GetChunk(chunk_idx));
      const size_t take = static_cast<size_t>(
          std::min<uint64_t>(remaining, chunk->size() - chunk_off));
      std::memcpy(dst, chunk->data() + chunk_off, take);
      dst += take;
      pos += take;
      remaining -= take;
    }
    return OkStatus();
  }

 private:
  // Returns a pointer into the cache; valid until the next GetChunk on this source.
  Result<const std::vector<uint8_t>*> GetChunk(uint64_t chunk_idx) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < cache_.size(); ++i) {
      if (cache_[i].first == chunk_idx) {
        std::rotate(cache_.begin(), cache_.begin() + static_cast<long>(i),
                    cache_.begin() + static_cast<long>(i) + 1);
        return const_cast<const std::vector<uint8_t>*>(&cache_.front().second);
      }
    }
    UCP_ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                         index_->ReadChunk(entry_.chunks[chunk_idx]));
    const uint64_t expect = std::min<uint64_t>(
        chunk_bytes_, entry_.size - chunk_idx * chunk_bytes_);
    if (raw.size() != expect) {
      return DataLossError("chunk " + DigestToHex(entry_.chunks[chunk_idx]) + " of " +
                           name_ + " has wrong size (forged or aliased digest)");
    }
    cache_.insert(cache_.begin(), {chunk_idx, std::move(raw)});
    if (cache_.size() > kCacheChunks) {
      cache_.pop_back();
    }
    return const_cast<const std::vector<uint8_t>*>(&cache_.front().second);
  }

  static constexpr size_t kCacheChunks = 4;

  const std::shared_ptr<ChunkIndex> index_;
  const ChunkManifestEntry entry_;
  const uint64_t chunk_bytes_;
  const std::string name_;
  std::mutex mu_;
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> cache_;
};

}  // namespace

Result<std::unique_ptr<ByteSource>> OpenManifestSource(std::shared_ptr<ChunkIndex> index,
                                                       const ChunkManifestEntry& entry,
                                                       uint64_t chunk_bytes,
                                                       std::string name) {
  if (chunk_bytes == 0) {
    return DataLossError("manifest chunk_bytes is zero for " + name);
  }
  return std::unique_ptr<ByteSource>(
      new ManifestByteSource(std::move(index), entry, chunk_bytes, std::move(name)));
}

Result<std::optional<ChunkManifest>> ReadTagChunkManifest(const std::string& tag_dir) {
  const std::string path = PathJoin(tag_dir, kChunkManifestName);
  if (!FileExists(path)) {
    return std::optional<ChunkManifest>();
  }
  UCP_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  Result<ChunkManifest> manifest = ParseChunkManifest(text);
  if (!manifest.ok()) {
    return DataLossError("tag " + tag_dir + ": " + manifest.status().message());
  }
  return std::optional<ChunkManifest>(std::move(*manifest));
}

Result<std::unique_ptr<ByteSource>> OpenTagShardSource(const std::string& tag_dir,
                                                       const std::string& file) {
  const std::string physical = PathJoin(tag_dir, file);
  if (FileExists(physical)) {
    return FileByteSource::Open(physical);
  }
  UCP_ASSIGN_OR_RETURN(std::optional<ChunkManifest> manifest,
                       ReadTagChunkManifest(tag_dir));
  if (manifest.has_value()) {
    if (const ChunkManifestEntry* entry = manifest->Find(file)) {
      return OpenManifestSource(ChunkIndex::ForRoot(Dirname(tag_dir)), *entry,
                                manifest->chunk_bytes, physical);
    }
  }
  return NotFoundError("no such file: " + physical);
}

}  // namespace ucp
