#include "src/store/store.h"

#include "src/common/strings.h"
#include "src/store/local_store.h"
#include "src/store/remote_store.h"

namespace ucp {

Result<ChunkedWriteStats> StoreWriter::WriteFileChunked(
    const std::string& rel, const void* data, size_t size,
    const std::vector<uint64_t>& digests, bool compress, uint64_t inherited) {
  // Non-chunked backends stage the whole file; the caller's incremental bookkeeping
  // degrades to "everything was dirty".
  (void)digests;
  (void)compress;
  (void)inherited;
  UCP_RETURN_IF_ERROR(WriteFile(rel, data, size));
  ChunkedWriteStats stats;
  stats.bytes_total = size;
  stats.bytes_written = size;
  stats.chunks_total = digests.size();
  return stats;
}

std::string GcReport::ToString() const {
  std::string out = "gc: removed " + std::to_string(removed.size()) + ", kept " +
                    std::to_string(kept.size()) + "\n";
  for (const std::string& tag : removed) {
    out += "  removed " + tag + "\n";
  }
  for (const std::string& tag : kept) {
    out += "  kept    " + tag + "\n";
  }
  return out;
}

Result<std::string> ReadLatestTag(Store& store, const std::string& job) {
  if (!IsValidJobId(job)) {
    return InvalidArgumentError("bad job id: " + job);
  }
  return store.ReadSmallFile(LatestFileName(job));
}

bool IsTagComplete(Store& store, const std::string& tag) {
  Result<bool> exists = store.Exists(JoinRel(tag, kCompleteMarker));
  return exists.ok() && *exists;
}

Result<CheckpointMeta> ReadCheckpointMeta(Store& store, const std::string& tag) {
  UCP_ASSIGN_OR_RETURN(bool tag_exists, store.Exists(tag));
  if (tag_exists && !IsTagComplete(store, tag)) {
    return DataLossError("checkpoint tag " + tag +
                         " is not committed (missing 'complete' marker)");
  }
  UCP_ASSIGN_OR_RETURN(std::string text,
                       store.ReadSmallFile(JoinRel(tag, "checkpoint_meta.json")));
  UCP_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return CheckpointMeta::FromJson(json);
}

Result<std::string> FindLatestValidTag(Store& store, const std::string& job) {
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> tags, store.ListTags(job));
  for (auto it = tags.rbegin(); it != tags.rend(); ++it) {
    if (!IsTagComplete(store, *it)) {
      continue;  // aborted save — the marker is written last
    }
    if (ReadCheckpointMeta(store, *it).ok()) {
      return *it;
    }
  }
  return NotFoundError("no committed checkpoint tag in " + store.Describe());
}

std::string JoinRel(const std::string& a, const std::string& b) {
  if (a.empty()) {
    return b;
  }
  if (b.empty()) {
    return a;
  }
  if (a.back() == '/') {
    return a + b;
  }
  return a + "/" + b;
}

bool IsRemoteEndpoint(const std::string& endpoint) {
  return StartsWith(endpoint, "unix:") || StartsWith(endpoint, "tcp:");
}

Result<std::shared_ptr<Store>> OpenStore(const std::string& endpoint) {
  if (endpoint.empty()) {
    return InvalidArgumentError("empty store endpoint");
  }
  if (IsRemoteEndpoint(endpoint)) {
    UCP_ASSIGN_OR_RETURN(std::shared_ptr<RemoteStore> remote,
                         RemoteStore::Connect(endpoint));
    return std::shared_ptr<Store>(std::move(remote));
  }
  return std::shared_ptr<Store>(std::make_shared<LocalStore>(endpoint));
}

}  // namespace ucp
