// The content-addressed chunk index: shared chunk-object storage under a store root.
//
// Incremental saves store shard payloads as chunk objects named by content digest, under
// `<root>/chunks/<hh>/<16-hex digest>` (hh = first two hex digits, a fanout directory).
// Identical chunks — across ranks, across tags, across jobs sharing the store — are
// stored exactly once. Each object wraps its payload in a small header:
//
//   u32 magic "UCK1" | u8 codec (0 = raw, 1 = lz) | u32 raw_size | u32 crc32(raw) | payload
//
// so a bit-rotted or forged chunk fails its CRC on read (kDataLoss, localized to the
// chunk), and compressed chunks decompress to a verifiable size before the CRC runs.
// Objects are written with WriteFileAtomic, so they participate in the calling thread's
// ScopedFsyncBatch exactly like whole shard files do — incremental saves get equal
// durability placement.
//
// Lifetime is mark-and-sweep, not persistent refcounts: Sweep() parses every tag and
// staging manifest under the root, marks referenced digests (plus in-memory pins) live,
// and deletes the rest. In-memory pins close the query/sweep race: PinAndQuery pins the
// digests it is asked about *before* answering "present", so a writer that decides to
// skip an already-stored chunk is guaranteed the sweep will not delete it before the
// manifest referencing it lands. Pins are released on CommitTag / AbortTag /
// ResetTagStaging (by which point the manifest — or nothing — references the chunks).
// One index instance exists per root per process (ForRoot), which covers every supported
// topology: direct-FS jobs in one process, or many clients behind one ucp_serverd.
//
// Pins are per-process, so a sweep running in a *different* process (`ucp_tool gc` on a
// live direct-FS root, or one of several direct-FS jobs sharing a root) cannot see the
// in-flight saves of its neighbours. Sweep therefore quarantines unreferenced objects
// younger than a grace window (mtime-based) instead of deleting them: dirty chunks
// written before their manifest lands survive any out-of-process sweep, and genuinely
// orphaned objects are reclaimed once they age past the window. Callers that provably
// hold every pin for the root in-process (the daemon, which is the sole accessor of the
// roots it serves; tests asserting convergence) may pass grace 0 for immediate reclaim.
//
// Soak invariants (checked by CheckSoakInvariants, documented in docs/incremental.md):
//   I6: every chunk referenced by a committed tag's manifest exists in the index.
//   I7: after DeleteTag of every referer and a Gc, no orphan chunk objects remain.

#ifndef UCP_SRC_STORE_CHUNK_INDEX_H_
#define UCP_SRC_STORE_CHUNK_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/common/fs.h"
#include "src/common/status.h"
#include "src/store/chunk_manifest.h"

namespace ucp {

// Directory under the store root holding chunk objects.
inline constexpr char kChunkDirName[] = "chunks";

// Default quarantine window for unreferenced chunk objects (see Sweep). One hour bounds
// the manifest-less window of any realistic save; the only cost of generosity is that
// orphan reclaim lags by one window.
inline constexpr int64_t kChunkSweepGraceSeconds = 3600;

inline constexpr uint32_t kChunkMagic = 0x314B4355;  // "UCK1", little-endian
inline constexpr size_t kChunkHeaderBytes = 13;      // magic + codec + raw_size + raw_crc

enum class ChunkCodec : uint8_t {
  kRaw = 0,
  kLz = 1,
};

struct ChunkObjectHeader {
  ChunkCodec codec = ChunkCodec::kRaw;
  uint32_t raw_size = 0;
  uint32_t raw_crc = 0;
};

// "chunks/<hh>/<16-hex>" — store-relative path of a digest's object.
std::string ChunkObjectRel(uint64_t digest);

// Header + payload bytes of one chunk object.
std::vector<uint8_t> EncodeChunkObject(ChunkCodec codec, uint32_t raw_size,
                                       uint32_t raw_crc, const void* stored,
                                       size_t stored_size);

// Parses (only) the header; kDataLoss on bad magic / short buffer / unknown codec.
Result<ChunkObjectHeader> ParseChunkObjectHeader(const void* data, size_t size);

// Decodes a whole chunk object to its raw bytes: parse header, decompress if needed,
// verify the raw CRC. Every failure is kDataLoss naming `context`.
Result<std::vector<uint8_t>> DecodeChunkObject(const void* data, size_t size,
                                               const std::string& context);

// Byte accounting of one writer's chunked traffic (surfaced through AsyncSaveStats and
// the fig11 incremental arm).
struct ChunkedWriteStats {
  uint64_t bytes_total = 0;       // logical bytes presented for writing
  uint64_t bytes_written = 0;     // physical bytes that actually hit the store
  uint64_t chunks_total = 0;
  uint64_t chunks_deduped = 0;    // already present in the index (incl. parent-inherited)
  uint64_t chunks_compressed = 0;

  void Add(const ChunkedWriteStats& other) {
    bytes_total += other.bytes_total;
    bytes_written += other.bytes_written;
    chunks_total += other.chunks_total;
    chunks_deduped += other.chunks_deduped;
    chunks_compressed += other.chunks_compressed;
  }
};

class ChunkIndex {
 public:
  // The process-wide index for a store root (canonicalized); created on first use.
  static std::shared_ptr<ChunkIndex> ForRoot(const std::string& root);

  const std::string& root() const { return root_; }

  // What a writer knows about a chunk it is about to store: its content digest plus the
  // raw size and CRC32 of the bytes. Carrying size+crc lets every dedup decision verify
  // that the already-stored object really holds the same content — an accidental 64-bit
  // digest collision (or a forged object) answers "absent"/fails typed instead of
  // silently aliasing two different chunks.
  struct ChunkProbe {
    uint64_t digest = 0;
    uint32_t raw_size = 0;
    uint32_t raw_crc = 0;
  };

  // Pins each probe's digest under `tag` and returns one presence byte (0/1) per probe.
  // The pin happens before the existence answer, so "present" stays true until
  // ReleaseTagPins. "Present" additionally requires the stored object's header to match
  // the probe's raw_size and raw_crc — a digest whose object holds different content (or
  // an unreadable object) reports 0, so the writer re-Puts and the collision surfaces as
  // a typed error there rather than as silent content substitution.
  std::vector<uint8_t> PinAndQuery(const std::string& tag,
                                   const std::vector<ChunkProbe>& probes);

  // Stores digest -> raw bytes unless already present. With `try_compress`, the payload
  // is LZ-compressed and kept only if it beats the raw size by >= 1/16. Updates `stats`
  // (bytes_written / chunks_compressed; presence accounting is the caller's). A dedup
  // hit verifies the existing object's header against the incoming bytes: a mismatch is
  // kFailedPrecondition (digest collision — refusing to alias), and an object whose
  // header no longer parses is rewritten in place (heals torn objects).
  Status Put(uint64_t digest, const void* raw, size_t raw_size, bool try_compress,
             ChunkedWriteStats* stats);

  // Stores an already-encoded object (the daemon accepting a client's pre-compressed
  // chunk). The encoding is decoded and CRC-verified, and the decoded bytes must hash to
  // `digest` (kInvalidArgument otherwise), before anything is published — a bad client
  // can neither poison the shared index with an object that fails its own header nor
  // publish arbitrary content under a digest other tags may dedup against.
  Status PutEncoded(uint64_t digest, const void* encoded, size_t encoded_size);

  // Reads and fully verifies one chunk to raw bytes. A missing object is kDataLoss (a
  // dangling reference: some manifest names a chunk the index no longer holds).
  Result<std::vector<uint8_t>> ReadChunk(uint64_t digest);

  struct ChunkStat {
    bool exists = false;
    ChunkCodec codec = ChunkCodec::kRaw;
    uint32_t raw_size = 0;
    uint64_t stored_size = 0;  // on-disk object size including header
  };
  // Header-only stat for `ucp_tool du`; exists=false (not an error) when absent.
  Result<ChunkStat> StatChunk(uint64_t digest);

  void ReleaseTagPins(const std::string& tag);

  struct SweepReport {
    uint64_t live = 0;           // distinct digests still referenced or pinned
    uint64_t swept = 0;          // objects deleted
    uint64_t bytes_swept = 0;    // their on-disk size
    uint64_t skipped_young = 0;  // unreferenced but inside the grace window — kept
  };
  // Mark-and-sweep GC of the object directory. Marks every digest referenced by any
  // manifest in any tag directory (all jobs) or staging directory under the root, plus
  // all in-memory pins. A corrupt manifest in a *committed* tag aborts the sweep typed
  // (fail closed: never delete what a live tag might reference); a corrupt manifest in
  // staging debris is skipped (the tag never committed — its chunks are only protected
  // by pins, which the owning in-flight save still holds). Unreferenced objects whose
  // mtime is within `grace_seconds` are quarantined, not deleted — pins are per-process,
  // and the grace window is what protects another process's in-flight save from this
  // one's sweep (see the file comment). Pass 0 only when this process holds every pin
  // for the root.
  Result<SweepReport> Sweep(bool dry_run,
                            int64_t grace_seconds = kChunkSweepGraceSeconds);

  // Test hook: number of digests currently pinned across all tags.
  size_t PinnedCountForTest();

 private:
  explicit ChunkIndex(std::string root) : root_(std::move(root)) {}

  std::string ObjectPath(uint64_t digest) const;

  const std::string root_;
  std::mutex mu_;  // guards pins_ and orders Put/Sweep against each other
  std::map<std::string, std::set<uint64_t>> pins_;
};

// ByteSource over one manifest entry: ReadAt reassembles the requested range from chunk
// objects through `index`, caching a few decoded chunks (sequential readers hit the
// cache; the v3 views read header then payload ranges). `name` is the identity reported
// in errors and used as the slice-cache key.
Result<std::unique_ptr<ByteSource>> OpenManifestSource(std::shared_ptr<ChunkIndex> index,
                                                       const ChunkManifestEntry& entry,
                                                       uint64_t chunk_bytes,
                                                       std::string name);

// Opens `file` inside the tag directory `tag_dir` as a ByteSource: the physical file when
// present, otherwise resolved through the tag's chunk manifest. kNotFound when neither
// exists; kDataLoss when a manifest exists but is damaged (never a silent fallback).
// This is the one helper every direct-FS reader of native shard files goes through, so
// incremental tags are transparent to load, fsck, extract, and resume.
Result<std::unique_ptr<ByteSource>> OpenTagShardSource(const std::string& tag_dir,
                                                       const std::string& file);

// Reads + parses the manifest of `tag_dir` if one exists: nullopt when the tag has no
// manifest (a full save), kDataLoss when one exists but is damaged.
Result<std::optional<ChunkManifest>> ReadTagChunkManifest(const std::string& tag_dir);

}  // namespace ucp

#endif  // UCP_SRC_STORE_CHUNK_INDEX_H_
