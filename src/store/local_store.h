// The direct-FS checkpoint store — today's on-disk layout, unchanged, behind Store.
//
// Also home of the historical dir-based free functions (CommitCheckpointTag,
// GcCheckpoints, ...): they are thin wrappers over a LocalStore on the same directory, so
// every pre-Store caller keeps its exact signature and byte-for-byte behavior while the
// save/load/GC internals run through the Store interface. ucp_serverd hosts a LocalStore
// as its backing root, which is how "local and remote are one code path" bottoms out.

#ifndef UCP_SRC_STORE_LOCAL_STORE_H_
#define UCP_SRC_STORE_LOCAL_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/store/chunk_index.h"
#include "src/store/store.h"

namespace ucp {

class LocalStore final : public Store {
 public:
  explicit LocalStore(std::string root) : root_(std::move(root)) {}

  const std::string& root() const { return root_; }

  std::string Describe() const override { return "dir:" + root_; }
  std::string CacheKey(const std::string& rel) const override;

  Result<std::unique_ptr<ByteSource>> OpenRead(const std::string& rel) override;
  Result<std::string> ReadSmallFile(const std::string& rel) override;
  Result<bool> Exists(const std::string& rel) override;
  Result<std::vector<std::string>> List(const std::string& rel) override;
  Result<std::vector<std::string>> ListTags(const std::string& job) override;

  Result<std::unique_ptr<StoreWriter>> OpenTagForWrite(const std::string& tag) override;
  Status ResetTagStaging(const std::string& tag) override;
  Status CommitTag(const std::string& tag, const std::string& meta_json) override;
  Status AbortTag(const std::string& tag) override;

  Status DeleteTag(const std::string& tag) override;
  Result<GcReport> Gc(const std::string& job, int keep_last, bool dry_run) override;
  Result<int> SweepStagingDebris(const std::string& job) override;

  // Grace window Gc's chunk sweep quarantines young unreferenced objects for (see
  // ChunkIndex::Sweep). The default is safe for any topology — chunk pins are per-process
  // and another process may be mid-save against this root. Set 0 only when this process
  // provably holds every pin for the root (the daemon does; so do convergence tests).
  void set_chunk_sweep_grace_seconds(int64_t seconds) {
    chunk_sweep_grace_seconds_ = seconds;
  }

 private:
  std::string root_;
  int64_t chunk_sweep_grace_seconds_ = kChunkSweepGraceSeconds;
};

// ---- Dir-based convenience API (the historical checkpoint free functions) ----------------

// The commit sequence shared by the synchronous save and the async flusher (see
// Store::CommitTag). Single-caller (rank 0 / the flusher); `staging` must hold every shard.
Status CommitCheckpointTag(const std::string& dir, const std::string& tag,
                           const CheckpointMeta& meta);

// Removes stale `<tag>.staging` / `<tag>.ucp.staging` directories belonging to `job`'s
// namespace (debris of crashed or interrupted saves/conversions; never trusted by any
// reader). Returns the number removed. Call from one process only, with no save in flight
// for that job — other jobs sharing the store may keep flushing: their staging dirs are
// never touched (sweeping a concurrent job's in-flight staging would fail its commit
// rename and silently lose its checkpoint).
Result<int> CleanStagingDebris(const std::string& dir, const std::string& job = "");

// Reads the job's latest pointer (<dir>/latest, or <dir>/latest.<job>). This pointer is
// advisory — it is written *after* the commit marker, so a crash can leave it one save
// behind, and fsck quarantine can orphan it. Resume paths must use FindLatestValidTag
// instead; keep ReadLatestTag for diagnostics and for retention's "never delete what
// latest names" guard.
Result<std::string> ReadLatestTag(const std::string& dir, const std::string& job = "");

// True when the tag's `complete` commit marker exists (the save finished).
bool IsTagComplete(const std::string& dir, const std::string& tag);

// Newest committed tag in `job`'s namespace whose metadata parses — the tag a resume
// should trust. Incomplete or damaged-meta tags are skipped; kNotFound when no valid tag
// exists.
Result<std::string> FindLatestValidTag(const std::string& dir, const std::string& job = "");

// Fails with kDataLoss on a tag whose save never committed (missing `complete` marker).
Result<CheckpointMeta> ReadCheckpointMeta(const std::string& dir, const std::string& tag);

// All checkpoint tags in `job`'s namespace under `dir`, ascending iteration order.
Result<std::vector<std::string>> ListCheckpointTags(const std::string& dir,
                                                    const std::string& job = "");

// Every checkpoint tag under `dir` across all job namespaces (ascending by job id then
// iteration). For store-wide sweeps — fsck, tools — never for resume or retention, which
// must stay namespace-scoped.
Result<std::vector<std::string>> ListAllCheckpointTags(const std::string& dir);

// Retention: deletes the oldest checkpoints so at most `keep_last` tags remain. The tag
// named by `latest` is never deleted. Call from one process only (e.g. rank 0 after save).
Status PruneCheckpoints(const std::string& dir, int keep_last);

// Retention policy for steady-state training (`ucp_tool gc`, AsyncCheckpointOptions
// .keep_last). Unlike PruneCheckpoints it only counts *committed* tags toward the keep
// budget and never touches uncommitted tags or `.staging` debris — those belong to
// crashed-save recovery (fsck / the next save), and a tag mid-commit by a concurrent
// flusher must not be swept. Scoped to `job`'s namespace: tags and the `latest` guard of
// other jobs sharing the store are invisible to it. Never deletes the tag the job's
// `latest` names, nor the newest tag whose metadata still reads back — when every tag in
// the keep window is damaged, that older tag is the job's only resume point and outlives
// the window. Call from one process per job.
Result<GcReport> GcCheckpoints(const std::string& dir, int keep_last, bool dry_run = false,
                               const std::string& job = "");

}  // namespace ucp

#endif  // UCP_SRC_STORE_LOCAL_STORE_H_
