#include "src/store/ckpt_meta.h"

namespace ucp {

Json CheckpointMeta::ToJson() const {
  JsonObject obj;
  obj["model"] = model.ToJson();
  obj["strategy"] = strategy.ToJson();
  obj["iteration"] = iteration;
  obj["global_batch"] = global_batch;
  obj["data_seed"] = static_cast<int64_t>(data_seed);
  obj["compute_dtype"] = static_cast<int64_t>(compute_dtype);
  obj["format_version"] = 1;
  return Json(std::move(obj));
}

Result<CheckpointMeta> CheckpointMeta::FromJson(const Json& json) {
  CheckpointMeta meta;
  UCP_ASSIGN_OR_RETURN(int64_t version, json.GetInt("format_version"));
  if (version != 1) {
    return FailedPreconditionError("unsupported checkpoint format version " +
                                   std::to_string(version));
  }
  if (!json.Has("model") || !json.Has("strategy")) {
    return DataLossError("checkpoint meta missing model/strategy");
  }
  UCP_ASSIGN_OR_RETURN(meta.model, ModelConfig::FromJson(json.AsObject().at("model")));
  UCP_ASSIGN_OR_RETURN(meta.strategy,
                       ParallelConfig::FromJson(json.AsObject().at("strategy")));
  UCP_ASSIGN_OR_RETURN(meta.iteration, json.GetInt("iteration"));
  UCP_ASSIGN_OR_RETURN(int64_t batch, json.GetInt("global_batch"));
  meta.global_batch = static_cast<int>(batch);
  UCP_ASSIGN_OR_RETURN(int64_t seed, json.GetInt("data_seed"));
  meta.data_seed = static_cast<uint64_t>(seed);
  UCP_ASSIGN_OR_RETURN(int64_t dtype, json.GetInt("compute_dtype"));
  if (dtype < 0 || dtype > static_cast<int64_t>(DType::kF16)) {
    return DataLossError("bad compute dtype in checkpoint meta");
  }
  meta.compute_dtype = static_cast<DType>(dtype);
  return meta;
}

}  // namespace ucp
