// The committed-checkpoint metadata record (checkpoint_meta.json).
//
// Lives at the store layer so both storage backends (and ucp_serverd's GC) can decide tag
// validity with the *same* definition resume uses: a tag is valid iff its metadata parses
// all the way through ModelConfig/ParallelConfig. Commit carries the serialized JSON
// through the Store interface, keeping the wire protocol meta-agnostic.

#ifndef UCP_SRC_STORE_CKPT_META_H_
#define UCP_SRC_STORE_CKPT_META_H_

#include <cstdint>
#include <string>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/model/config.h"
#include "src/parallel/topology.h"
#include "src/tensor/bf16.h"

namespace ucp {

struct CheckpointMeta {
  ModelConfig model;
  ParallelConfig strategy;
  int64_t iteration = 0;
  int global_batch = 0;
  uint64_t data_seed = 0;
  DType compute_dtype = DType::kF32;

  Json ToJson() const;
  static Result<CheckpointMeta> FromJson(const Json& json);
};

}  // namespace ucp

#endif  // UCP_SRC_STORE_CKPT_META_H_
