// The ucp_serverd wire protocol: length-prefixed, CRC32-covered binary frames over a
// Unix-domain or TCP stream socket.
//
// Frame layout (all integers little-endian):
//
//   u32 magic    'UCPW' (0x57504355)
//   u8  type     frame type (below)
//   u32 len      payload byte count, <= kMaxFramePayload
//   ...          payload
//   u32 crc      CRC32 over the type byte followed by the payload
//
// A frame whose magic, length bound, or CRC fails is a *torn frame*: the receiver reports
// kDataLoss and the connection is unusable (stream framing is lost). Protocol version is
// negotiated by the first exchange — HELLO carries the client's [min,max] supported
// versions, HELLO_OK picks one — so old clients and new servers fail closed with a typed
// error instead of misparsing each other.
//
// Transport-level transient errors (EINTR/EAGAIN, partial send/recv progress) are retried
// inside SendAll/RecvAll with IoRetryPolicy backoff and surfaced in the io.retry.*
// metrics; a peer that goes away mid-frame surfaces as kUnavailable (connection-level,
// maybe the daemon restarts) while torn payloads surface as kDataLoss.

#ifndef UCP_SRC_STORE_WIRE_H_
#define UCP_SRC_STORE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace ucp {

inline constexpr uint32_t kWireMagic = 0x57504355;  // "UCPW" little-endian
// Version 2 added the chunk ops (CHUNK_QUERY / CHUNK_PUT) for incremental saves. Version
// 3 adds session leases (SESSION_OPEN / SESSION_RENEW), offset-addressed WRITE_CHUNK
// frames, and the WRITE_RESUME query that together make interrupted uploads resumable
// across reconnects and daemon restarts. Version 4 adds observability: the TRACE_CONTEXT
// prefix frame that propagates a client (trace_id, parent_span_id) pair onto the next
// request, and METRICS_DUMP for fetching the daemon's metrics page over the store
// endpoint. Both sides still speak older versions: the negotiated version is
// min(server max, client max) within the overlapping [min,max] ranges, and a client on an
// old peer silently degrades (on v3 no trace header or remote metrics; on v2 additionally
// no lease, full-restart write semantics; on v1 additionally full-file writes instead of
// chunk dedup).
inline constexpr uint32_t kWireVersion = 4;
inline constexpr uint32_t kWireMinVersion = 1;
// Bound on one frame's payload; larger files stream as multiple WRITE_CHUNK / READ_RANGE
// exchanges. Also the admission unit for the server's torn-frame defense: a corrupt length
// field can never make the server allocate more than this.
inline constexpr uint32_t kMaxFramePayload = 4u << 20;
// Chunk size the clients use for streaming writes and large range reads.
inline constexpr uint32_t kWireChunkBytes = 1u << 20;

// Frame types. Requests < 64, responses >= 64.
enum class WireOp : uint8_t {
  kHello = 1,         // u32 min_version | u32 max_version
  kListTags = 2,      // str job
  kList = 3,          // str rel ("" = root)
  kReadSmall = 4,     // str rel
  kOpenRead = 5,      // str rel
  kReadRange = 6,     // u64 handle | u64 offset | u32 len
  kCloseRead = 7,     // u64 handle
  kExists = 8,        // str rel
  kResetStaging = 9,  // str tag
  kWriteBegin = 10,   // str tag | str rel | u64 total_bytes
                      // v3 sessions append: | u64 resume_offset (0 = fresh write; > 0
                      // continues a spooled upload whose first resume_offset bytes the
                      // server already acknowledged via WRITE_RESUME)
  kWriteChunk = 11,   // v1/v2: raw bytes (appended to the open write)
                      // v3: u64 offset | raw bytes — idempotent: a chunk whose byte
                      // range is already spooled is skipped, a gap is kDataLoss
  kWriteEnd = 12,     // u32 crc32 of the whole file body
  kCommitTag = 13,    // str tag | str meta_json
  kAbortTag = 14,     // str tag
  kDeleteTag = 15,    // str tag
  kGc = 16,           // str job | u32 keep_last | u8 dry_run
  kSweepDebris = 17,  // str job
  kPing = 18,         // empty
  // v2+ only (negotiated version >= 2; a v1 session gets kFailedPrecondition):
  kChunkQuery = 19,   // str tag | u32 count | count * (u64 digest | u32 raw_size |
                      // u32 raw_crc) — pins + content-verified presence query
  kChunkPut = 20,     // u64 digest | encoded chunk object bytes (UCK1 header + payload)
  // v3+ only (negotiated version >= 3; older sessions get kFailedPrecondition):
  kSessionOpen = 21,  // str lease_token | u32 ttl_ms — bind (or re-adopt) a lease
  kSessionRenew = 22, // empty — extend the bound lease's TTL (idle keep-alive)
  kWriteResume = 23,  // str tag | str rel — how many bytes the server already has
  kServerStat = 24,   // empty — sessions/leases/staged/draining snapshot
  // v4+ only (negotiated version >= 4):
  kTraceContext = 25, // u64 trace_id | u64 parent_span_id — no response; annotates the
                      // *next* request frame on this connection with the client's trace
                      // context so the server's handling span joins the client's trace
  kMetricsDump = 26,  // u8 format (0 = text table, 1 = Prometheus) -> kBytes

  kOk = 64,           // empty
  kError = 65,        // u8 status_code | str message
                      // | optional trailing u32 retry_after_ms hint (v3 servers attach
                      // it to drain-mode refusals; old clients ignore trailing bytes)
  kHelloOk = 66,      // u32 version | u64 session_id | u32 max_frame
  kStrList = 67,      // u32 count | count * str
  kBytes = 68,        // raw bytes
  kOpenReadOk = 69,   // u64 handle | u64 file_size
  kBool = 70,         // u8
  kGcReport = 71,     // u32 n_removed | n * str | u32 n_kept | n * str
  kInt = 72,          // i64
  kChunkMask = 73,    // u32 count | count * u8 present (response to kChunkQuery)
  kSessionOpenOk = 74,  // u8 resumed | u32 granted_ttl_ms
  kWriteResumeOk = 75,  // u64 acked_bytes | u8 complete (file already fully staged)
  kServerStatOk = 76,   // u32 server_version | u32 sessions | u32 leases |
                        // u64 staged_bytes | u8 draining
};

struct WireFrame {
  WireOp op = WireOp::kPing;
  std::vector<uint8_t> payload;
};

// Stable lowercase name for an op ("write_begin", "commit_tag", ...; "op_unknown" for
// values outside the enum) — the key under which per-RPC metrics and spans are recorded.
const char* WireOpName(WireOp op);

// Sends one complete frame. kUnavailable when the peer is gone (EPIPE/ECONNRESET) or
// transient retries exhaust.
Status SendFrame(int fd, WireOp op, const void* payload, size_t len);
// Two-part payload (prefix ++ body in one frame): the v3 WRITE_CHUNK path prepends the
// u64 offset to a chunk that lives in the caller's tensor buffer without an extra copy.
Status SendFrame(int fd, WireOp op, const void* prefix, size_t prefix_len,
                 const void* payload, size_t len);
inline Status SendFrame(int fd, WireOp op, const std::vector<uint8_t>& payload) {
  return SendFrame(fd, op, payload.data(), payload.size());
}

// Receives one complete frame. kUnavailable on clean EOF before any byte (idle peer went
// away) and on mid-frame disconnect; kDataLoss on bad magic / oversized length / CRC
// mismatch (torn frame).
Result<WireFrame> RecvFrame(int fd, uint32_t max_payload = kMaxFramePayload);

// ---- Endpoints ---------------------------------------------------------------------------

// "unix:/path/to.sock" or "tcp:host:port".
struct Endpoint {
  bool is_unix = true;
  std::string path;  // unix
  std::string host;  // tcp
  int port = 0;      // tcp; 0 asks the kernel for an ephemeral port (server side)
};

Result<Endpoint> ParseEndpoint(const std::string& spec);
std::string EndpointToString(const Endpoint& ep);

// Client connect / server listen. Both return an owned fd.
Result<int> DialEndpoint(const Endpoint& ep);
Result<int> ListenEndpoint(const Endpoint& ep);
// The locally-bound port of a listening TCP socket (after port-0 resolution).
Result<int> BoundSocketPort(int fd);

// Maps a socket-level errno to the typed status the store contract promises: peer-gone /
// network conditions (EPIPE, ECONNRESET, ETIMEDOUT, ECONNREFUSED, unreachable, ENOTCONN)
// are kUnavailable — retryable, maybe the daemon restarts — everything else is kIoError.
// `op` names the failing operation for the message ("socket send", "connect", ...).
Status StatusFromSocketErrno(const std::string& op, int err);

// ---- Test-only socket fault injection ----------------------------------------------------
//
// Arms a one-shot fault on the Nth send/recv syscall (process-wide, counted from arming).
// The retry unit test uses this with a socketpair to prove EINTR/EAGAIN and short
// transfers are absorbed by the IoRetryPolicy and surfaced in io.retry.*; the chaos tests
// use the errno/drop kinds to model connection loss, slow links, and one-way partitions.
struct SocketFault {
  enum class Op { kSend, kRecv };
  enum class Kind {
    kEintr,      // syscall returns -1/EINTR
    kEagain,     // syscall returns -1/EAGAIN
    kShort,      // syscall transfers at most 1 byte (exercises the partial-progress loop)
    // Chaos kinds. The errno kinds also shutdown() the socket so the *peer* observes a
    // real connection drop (EOF), not just a local error — "connection drop after N
    // frames" is ArmSocketFault({kSend, kEconnreset, N}).
    kEpipe,      // syscall returns -1/EPIPE and drops the connection
    kEconnreset, // syscall returns -1/ECONNRESET and drops the connection
    kEtimedout,  // syscall returns -1/ETIMEDOUT and drops the connection
    kDelay,      // sleep delay_ms, then proceed normally (slow network)
    kBlackhole,  // send: claim success but drop the bytes (one-way partition);
                 // recv: sleep delay_ms then -1/ETIMEDOUT (the reply never arrives)
  };
  Op op = Op::kRecv;
  Kind kind = Kind::kEintr;
  int nth = 0;       // 0 = next matching syscall
  int delay_ms = 0;  // kDelay / kBlackhole
};
void ArmSocketFault(const SocketFault& fault);
void ClearSocketFaults();

}  // namespace ucp

#endif  // UCP_SRC_STORE_WIRE_H_
