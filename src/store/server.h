// The checkpoint store daemon: serves a LocalStore root to many concurrent clients over
// the wire protocol, with per-client sessions, session leases, admission control on staged
// bytes, and a plaintext HTTP /metrics + /healthz endpoint surfacing the process metrics
// registry.
//
// `tools/ucp_serverd.cc` is the thin CLI around this class; tests embed it in-process
// (which also routes the process-global fault injector through the *server's* threads, so
// the crash-consistency fault matrix exercises the daemon's own commit path).
//
// Admission control: every WRITE_BEGIN reserves its file's bytes against
// `max_staged_bytes`. A single file declaring more than the whole budget is rejected
// outright with kFailedPrecondition *before* any buffer is sized from the declared
// length, so a malicious or corrupt total can never drive an allocation past the
// operator-set budget. Within the budget, an exhausted pool rejects newcomers with
// kUnavailable (clients back off and retry per IoRetryPolicy) — except for the *oldest*
// lease currently holding staged bytes, which is always admitted. That exception is the
// progress guarantee: the oldest save in flight can always finish and release its budget,
// so backpressure never deadlocks into livelock. Staged bytes are attributed per
// (lease, tag): commit/abort/reset of one tag releases only that tag's bytes, so two
// saves multiplexed over one connection can't free each other's budget.
//
// Session leases (wire v3): a client may bind a lease (SESSION_OPEN with a self-generated
// token and TTL). Staged bytes, chunk pins, and half-streamed upload spools of a leased
// session survive the socket — lease *expiry*, not connection death, is what reaps them.
// A reconnecting client re-presents its token, re-adopts the lease (same admission
// seniority), asks WRITE_RESUME how far each upload got, and continues from the
// acknowledged offset. The lease table is journaled to `<root>/.ucp_serverd.journal` so a
// restarted daemon re-adopts live-leased half-staged tags and sweeps expired ones.
// Sessions without a lease (v1/v2 clients, or v3 clients that never SESSION_OPEN) keep
// the historical semantics: everything releases the moment the connection dies.

#ifndef UCP_SRC_STORE_SERVER_H_
#define UCP_SRC_STORE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/store/local_store.h"
#include "src/store/wire.h"

namespace ucp {

struct StoreServerOptions {
  std::string root;                           // directory the daemon serves
  std::string listen = "unix:/tmp/ucp.sock";  // "unix:/path" or "tcp:host:port" (port 0 ok)
  std::string http_listen;                    // optional "tcp:host:port" for /metrics
  int max_sessions = 64;
  uint64_t max_staged_bytes = 256ull << 20;   // admission budget for in-flight staging
  // Cap on chunk digests one session may hold pinned via CHUNK_QUERY (the chunk-side
  // analogue of max_staged_bytes): each pin costs server memory and blocks reclaim of
  // that chunk until the tag commits/aborts or the session dies, so an unbounded count
  // would let one misbehaving client grow the pin map and freeze GC store-wide. The
  // default admits ~64 GiB of 64 KiB-chunked state per session. Exceeding it is
  // kFailedPrecondition (a protocol violation, not backpressure — clients don't retry).
  uint64_t max_pinned_chunks = 1ull << 20;
  bool drain_on_shutdown = true;              // wait for idle sessions before closing them
  // Highest protocol version this server will negotiate. Production leaves the default;
  // the downgrade conformance tests pin v1/v2 server behavior with it.
  uint32_t max_wire_version = kWireVersion;
  // Upper bound on the TTL a SESSION_OPEN may request (requests above it are clamped,
  // not refused). 0 disables leases entirely: SESSION_OPEN gets kFailedPrecondition and
  // every session falls back to release-on-disconnect.
  uint32_t max_lease_ttl_ms = 60000;
  // Persist the lease table to `<root>/.ucp_serverd.journal` so a restarted daemon
  // re-adopts live-leased half-staged uploads instead of stranding them.
  bool journal = true;
  // Dump a flight record (<root>/flightrec/) when the server observes an anomaly — lease
  // expiry, commit failure, admission rejection, journal adoption after restart — so
  // post-chaos forensics never depend on reproducing the schedule. Capped per label so a
  // flapping client can't fill the disk with dossiers.
  bool anomaly_flightrec = true;
};

class StoreServer {
 public:
  // Binds, recovers the lease journal (if any), spawns the accept / lease-reaper (and
  // optional HTTP) threads, returns a running server.
  static Result<std::unique_ptr<StoreServer>> Start(StoreServerOptions options);

  ~StoreServer();
  StoreServer(const StoreServer&) = delete;
  StoreServer& operator=(const StoreServer&) = delete;

  // Resolved endpoints (TCP port 0 replaced by the kernel's choice).
  const std::string& endpoint() const { return endpoint_; }
  const std::string& http_endpoint() const { return http_endpoint_; }

  // Enters drain mode without closing anything: new SESSION_OPEN/RENEW requests are
  // refused with a typed kUnavailable carrying a retry-after hint, and lease TTLs stop
  // being extended — in-flight saves finish, new long-lived work goes elsewhere.
  // Shutdown(drain=true) implies it.
  void BeginDrain();
  bool draining() const { return draining_.load(); }

  // Stops accepting, then closes sessions: with drain, idle sessions are closed
  // immediately and busy ones get to finish their current exchange; without, every
  // connection is torn down at once (the "daemon killed" arm of the fault tests).
  void Shutdown(bool drain);
  void Shutdown() { Shutdown(options_.drain_on_shutdown); }

  int active_sessions() const;
  int active_leases() const;
  uint64_t staged_bytes() const { return staged_bytes_.load(); }
  // Thread handles still tracked (live sessions plus finished-but-unjoined ones):
  // bounded by active_sessions() plus whatever the accept loop hasn't reaped yet.
  size_t session_thread_count() const;

  // Runs the full per-connection protocol on the calling thread until the peer closes —
  // the socketpair test hook (no accept loop involved).
  void ServeConnectionForTest(int fd);

 private:
  struct Session;
  struct OpenRead;
  struct Lease;

  explicit StoreServer(StoreServerOptions options)
      : options_(std::move(options)), store_(options_.root) {}

  void AcceptLoop();
  void HttpLoop();
  void ReaperLoop();
  void ServeConnection(int fd, std::shared_ptr<Session> session);
  // One request frame -> one (or zero, for chunks) response frame. Returns false when the
  // connection must close. HandleFrame absorbs TRACE_CONTEXT prefix frames, adopts the
  // propagated context around a per-RPC server span, and records per-op histograms;
  // HandleFrameInner is the actual dispatch.
  bool HandleFrame(int fd, const WireFrame& frame, Session& session);
  bool HandleFrameInner(int fd, const WireFrame& frame, Session& session);
  Status HandleWriteBegin(const WireFrame& frame, Session& session);
  Status HandleWriteChunk(const WireFrame& frame, Session& session);
  Status HandleWriteEnd(const WireFrame& frame, Session& session);
  Result<std::vector<uint8_t>> HandleWriteResume(const WireFrame& frame);
  Result<std::vector<uint8_t>> HandleSessionOpen(const WireFrame& frame, Session& session);
  Result<std::vector<uint8_t>> HandleReadRange(const WireFrame& frame, Session& session);
  Result<std::vector<uint8_t>> HandleOpenRead(const WireFrame& frame, Session& session);
  void AbandonOpenWrite(Session& session);
  // Releases every resource the lease holds (budget, pins) and drops it from the table.
  // Caller holds mu_.
  void ReleaseLeaseLocked(Lease& lease);
  void ReleaseStagedBytesForTagLocked(Lease& lease, const std::string& tag);
  // Drops the lease's pin accounting for `tag` (the index-side pins are released by
  // LocalStore's commit/abort/reset, or by ReleaseLeaseLocked on lease death).
  void ReleaseLeasePinsForTagLocked(Lease& lease, const std::string& tag);
  // Rewrites the lease journal from the current table. Caller holds mu_; no-op when
  // journaling is off.
  void WriteJournalLocked();
  // Reads the journal left by a previous daemon: live leases are re-adopted (staged
  // budget recomputed from on-disk spool + staging bytes), expired ones have their spool
  // dirs swept. Returns true when any lease was adopted.
  bool RecoverJournal();
  std::string JournalPath() const;
  // Joins connection threads that finished serving (they park their own handle on
  // dead_threads_ on the way out). Called from the accept loop and Shutdown.
  void ReapDeadThreads();
  // Anomaly hook: writes a flight-recorder dossier under <root>/flightrec/ labeled
  // "serverd-<label>" (best effort, capped per label, gated by anomaly_flightrec).
  // Must be called without mu_ held — it does file I/O.
  void DumpAnomaly(const std::string& label, const std::string& detail);

  StoreServerOptions options_;
  LocalStore store_;
  std::string endpoint_;
  std::string http_endpoint_;

  // Atomic: Shutdown swaps them to -1 while the accept/http loops are still reading them
  // to call accept().
  std::atomic<int> listen_fd_{-1};
  std::atomic<int> http_fd_{-1};
  std::thread accept_thread_;
  std::thread http_thread_;
  std::thread reaper_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};

  mutable std::mutex mu_;
  uint64_t next_session_id_ = 1;
  uint64_t next_lease_id_ = 1;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  // Keyed by lease id == creation order; admission's oldest-first scan depends on it.
  // Holds one entry per live session (its implicit per-connection lease) plus every
  // named lease still inside its TTL.
  std::map<uint64_t, std::shared_ptr<Lease>> leases_;
  // Keyed by session id so a finishing connection can move its own handle to
  // dead_threads_; the accept loop joins those opportunistically (a long-lived daemon
  // serving many short connections must not accumulate zombie thread stacks).
  std::map<uint64_t, std::thread> session_threads_;
  std::vector<std::thread> dead_threads_;
  std::atomic<uint64_t> staged_bytes_{0};
  // Journal rewrites since startup — /healthz surfaces it so operators can see lease-table
  // churn (and that recovery/journaling is live at all).
  std::atomic<uint64_t> journal_seq_{0};
  // Flight-record dumps already written per anomaly label (its own mutex: DumpAnomaly
  // runs on failure paths that may or may not hold mu_).
  std::mutex anomaly_mu_;
  std::map<std::string, int> anomaly_counts_;
};

}  // namespace ucp

#endif  // UCP_SRC_STORE_SERVER_H_
