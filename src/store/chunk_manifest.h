// The per-tag chunk manifest: how an incremental save describes its shard files as
// sequences of content-addressed chunks.
//
// An incremental flush stores shard payloads as chunk objects in the store's shared
// content-addressed index (see chunk_index.h) instead of as whole files, and writes one
// `chunk_manifest.ucm` into the tag directory mapping each logical file to its ordered
// digest list. Readers that find no physical shard file consult the manifest and
// reassemble the file chunk-by-chunk; readers of full (non-incremental) tags never see a
// manifest and behave exactly as before.
//
// On-disk format — a one-line header followed by a JSON body:
//   UCPM1 <crc32-hex-of-body>\n
//   { "version": 1, "parent": "<tag or empty>", "chunk_bytes": 65536,
//     "files": [ { "name": ..., "size": ..., "crc32": ..., "inherited": N,
//                  "chunks": ["<16-hex digest>", ...] }, ... ] }
// The CRC covers every byte after the header line. A truncated or bit-rotted manifest
// fails the CRC (or the parse) and surfaces as typed kDataLoss — resolution of the tag
// fails loudly rather than silently falling back to stale or partial data.
//
// `parent` and `inherited` are provenance for tooling and stats only: correctness never
// depends on the parent tag still existing, because every chunk (inherited or fresh) is
// referenced by digest against the shared index, not against the parent's files.

#ifndef UCP_SRC_STORE_CHUNK_MANIFEST_H_
#define UCP_SRC_STORE_CHUNK_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/tensor/chunk_digest.h"

namespace ucp {

// Name of the manifest file inside a tag (and its staging) directory.
inline constexpr char kChunkManifestName[] = "chunk_manifest.ucm";

// Parse-time sanity bound on a manifest's chunk_bytes. Real manifests use 64 KiB; the
// bound keeps a corrupt or hostile value from overflowing downstream arithmetic (readers
// index chunks with 32-bit-safe math only below ~2^32).
inline constexpr uint64_t kMaxManifestChunkBytes = 1ull << 30;

struct ChunkManifestEntry {
  std::string name;              // file name inside the tag (e.g. an optim shard)
  uint64_t size = 0;             // raw file size in bytes
  uint32_t crc32 = 0;            // CRC32 of the whole raw file
  std::vector<uint64_t> chunks;  // digest per chunk_bytes-sized span, in file order
  uint64_t inherited = 0;        // chunks unchanged vs the parent tag (stats only)
};

struct ChunkManifest {
  std::string parent;                      // tag the digests were diffed against; "" = cold
  uint64_t chunk_bytes = kManifestChunkBytes;
  std::vector<ChunkManifestEntry> files;

  const ChunkManifestEntry* Find(const std::string& name) const;

  // Sum of `size` (logical) across entries.
  uint64_t LogicalBytes() const;
};

// Renders the header line + JSON body described above.
std::string SerializeChunkManifest(const ChunkManifest& manifest);

// Parses and CRC-verifies a serialized manifest. Any damage — bad magic, CRC mismatch,
// malformed JSON, a digest that is not 16 hex digits, a chunk count inconsistent with the
// declared size — is kDataLoss.
Result<ChunkManifest> ParseChunkManifest(const std::string& text);

}  // namespace ucp

#endif  // UCP_SRC_STORE_CHUNK_MANIFEST_H_
