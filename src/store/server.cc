#include "src/store/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <set>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/crc32.h"
#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/store/chunk_index.h"
#include "src/store/tags.h"
#include "src/tensor/tensor_file.h"

namespace ucp {

namespace {

struct ServerMetrics {
  obs::Counter& ops = obs::MetricsRegistry::Global().GetCounter("store.server.ops");
  obs::Counter& bytes_in =
      obs::MetricsRegistry::Global().GetCounter("store.server.bytes_in");
  obs::Counter& bytes_out =
      obs::MetricsRegistry::Global().GetCounter("store.server.bytes_out");
  obs::Counter& admission_rejects =
      obs::MetricsRegistry::Global().GetCounter("store.server.admission_rejects");
  obs::Counter& frame_errors =
      obs::MetricsRegistry::Global().GetCounter("store.server.frame_crc_errors");
  obs::Counter& chunk_crc_failures =
      obs::MetricsRegistry::Global().GetCounter("store.server.chunk_crc_failures");
  obs::Gauge& sessions = obs::MetricsRegistry::Global().GetGauge("store.server.sessions");
  obs::Gauge& staged =
      obs::MetricsRegistry::Global().GetGauge("store.server.staged_bytes");

  static ServerMetrics& Get() {
    static ServerMetrics* m = new ServerMetrics();
    return *m;
  }
};

Status SendError(int fd, const Status& error) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(error.code()));
  w.PutString(error.message());
  return SendFrame(fd, WireOp::kError, w.buffer());
}

std::vector<uint8_t> EncodeStrList(const std::vector<std::string>& items) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(items.size()));
  for (const std::string& s : items) {
    w.PutString(s);
  }
  return w.TakeBuffer();
}

}  // namespace

// Read handles carry the file's v3 chunk index so READ_RANGE responses are verified
// *before* any payload byte crosses the wire — a client never sees bytes the server knows
// are rotten. Each chunk verifies at most once per handle (same memoization the local
// views use).
struct StoreServer::OpenRead {
  std::unique_ptr<ByteSource> source;
  std::string rel;
  // nullopt: legacy v1/v2 or non-container file — served unverified (the client's own
  // whole-file CRC checks still apply).
  std::optional<FileChunkIndex> index;
  std::vector<std::vector<bool>> verified;  // parallel to index->regions
};

struct StoreServer::Session {
  uint64_t id = 0;
  int fd = -1;
  // Negotiated at HELLO: min(server max, client max). Chunk ops require >= 2.
  uint32_t version = 0;
  // Tags this session pinned chunks under (CHUNK_QUERY). Commit/abort/reset release a
  // tag's pins through LocalStore; this set covers the remaining case — the session dying
  // mid-save — so a crashed client's pins don't outlive it (its uncommitted chunks become
  // sweepable, exactly like its staging debris).
  std::set<std::string> pinned_tags;
  // Digests this session has pinned, by tag and in total, charged against
  // options_.max_pinned_chunks (digests re-queried under the same tag are re-counted —
  // an upper bound is all admission needs). Serving-thread-only, like staged_by_tag.
  std::map<std::string, uint64_t> pinned_by_tag;
  uint64_t pinned_total = 0;
  std::atomic<uint64_t> staged_bytes{0};  // admitted via WRITE_BEGIN, not yet released
  // Attribution of staged_bytes by tag, so releasing one tag (commit/abort/reset) leaves
  // the budget of other in-flight saves on this connection intact. Only the session's
  // serving thread touches it; the atomic total above is what other threads read.
  std::map<std::string, uint64_t> staged_by_tag;
  uint64_t ops = 0;

  // In-flight streamed write (between WRITE_BEGIN and WRITE_END).
  bool write_open = false;
  std::string write_tag;
  std::string write_rel;
  uint64_t write_total = 0;
  std::vector<uint8_t> write_buf;

  uint64_t next_handle = 1;
  std::map<uint64_t, OpenRead> reads;
};

Result<std::unique_ptr<StoreServer>> StoreServer::Start(StoreServerOptions options) {
  if (options.root.empty()) {
    return InvalidArgumentError("store server needs a root directory");
  }
  UCP_RETURN_IF_ERROR(MakeDirs(options.root));
  UCP_ASSIGN_OR_RETURN(Endpoint ep, ParseEndpoint(options.listen));
  std::unique_ptr<StoreServer> server(new StoreServer(std::move(options)));
  UCP_ASSIGN_OR_RETURN(server->listen_fd_, ListenEndpoint(ep));
  if (!ep.is_unix && ep.port == 0) {
    UCP_ASSIGN_OR_RETURN(ep.port, BoundSocketPort(server->listen_fd_));
  }
  server->endpoint_ = EndpointToString(ep);
  if (!server->options_.http_listen.empty()) {
    UCP_ASSIGN_OR_RETURN(Endpoint hep, ParseEndpoint(server->options_.http_listen));
    if (hep.is_unix) {
      return InvalidArgumentError("http endpoint must be tcp:host:port");
    }
    UCP_ASSIGN_OR_RETURN(server->http_fd_, ListenEndpoint(hep));
    if (hep.port == 0) {
      UCP_ASSIGN_OR_RETURN(hep.port, BoundSocketPort(server->http_fd_));
    }
    server->http_endpoint_ = EndpointToString(hep);
    server->http_thread_ = std::thread([s = server.get()] { s->HttpLoop(); });
  }
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

StoreServer::~StoreServer() { Shutdown(false); }

int StoreServer::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sessions_.size());
}

size_t StoreServer::session_thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return session_threads_.size() + dead_threads_.size();
}

void StoreServer::ReapDeadThreads() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    done.swap(dead_threads_);
  }
  // Each handle here was parked by its own thread on the way out of ServeConnection, so
  // the join is (at most) a momentary wait for that thread to finish returning.
  for (std::thread& t : done) {
    t.join();
  }
}

void StoreServer::Shutdown(bool drain) {
  if (stopping_.exchange(true)) {
    // Second call: still join anything the first caller raced past.
  }
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  const int http_fd = http_fd_.exchange(-1);
  if (http_fd >= 0) {
    ::shutdown(http_fd, SHUT_RDWR);
    ::close(http_fd);
  }
  if (drain) {
    // Busy sessions finish their current exchange; idle ones notice the shutdown when
    // their client closes or on the next request. Bounded wait, then hard-close.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (active_sessions() > 0 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, session] : sessions_) {
      ::shutdown(session->fd, SHUT_RDWR);  // unblocks the handler's recv
    }
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (http_thread_.joinable()) {
    http_thread_.join();
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(dead_threads_);
    for (auto& [id, t] : session_threads_) {
      threads.push_back(std::move(t));
    }
    session_threads_.clear();
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

void StoreServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) {
      return;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listen socket closed by Shutdown
    }
    // Join connection threads that finished while we were blocked in accept — a
    // long-lived daemon must not hoard one zombie thread stack per past connection.
    ReapDeadThreads();
    std::shared_ptr<Session> session;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load() ||
          static_cast<int>(sessions_.size()) >= options_.max_sessions) {
        // Over the session cap: reject before the handshake so the client fails typed.
        SendError(fd, UnavailableError("server at max_sessions capacity")).ok();
        ::close(fd);
        continue;
      }
      session = std::make_shared<Session>();
      session->id = next_session_id_++;
      session->fd = fd;
      sessions_[session->id] = session;
      ServerMetrics::Get().sessions.Set(static_cast<int64_t>(sessions_.size()));
      session_threads_.emplace(
          session->id,
          std::thread([this, fd, session] { ServeConnection(fd, session); }));
    }
  }
}

void StoreServer::ServeConnectionForTest(int fd) {
  auto session = std::make_shared<Session>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    session->id = next_session_id_++;
    session->fd = fd;
    sessions_[session->id] = session;
    ServerMetrics::Get().sessions.Set(static_cast<int64_t>(sessions_.size()));
  }
  ServeConnection(fd, session);
}

void StoreServer::ServeConnection(int fd, std::shared_ptr<Session> session) {
  // Handshake first: anything else is a protocol error and the connection dies typed.
  bool greeted = false;
  for (;;) {
    Result<WireFrame> frame = RecvFrame(fd);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDataLoss) {
        ServerMetrics::Get().frame_errors.Add(1);
        SendError(fd, frame.status()).ok();  // best effort before closing
      }
      break;  // peer gone or stream unusable
    }
    ServerMetrics::Get().ops.Add(1);
    ServerMetrics::Get().bytes_in.Add(9 + frame->payload.size() + 4);
    session->ops++;
    if (!greeted) {
      if (frame->op != WireOp::kHello) {
        SendError(fd, FailedPreconditionError("expected HELLO as the first frame")).ok();
        break;
      }
      ByteReader r(frame->payload.data(), frame->payload.size());
      Result<uint32_t> min_v = r.GetU32();
      Result<uint32_t> max_v = r.GetU32();
      if (!min_v.ok() || !max_v.ok() || *min_v > *max_v) {
        SendError(fd, InvalidArgumentError("malformed HELLO")).ok();
        break;
      }
      if (*max_v < kWireMinVersion || *min_v > kWireVersion) {
        SendError(fd, FailedPreconditionError(
                          "no common protocol version: server speaks v" +
                          std::to_string(kWireMinVersion) + "..v" +
                          std::to_string(kWireVersion)))
            .ok();
        break;
      }
      session->version = std::min(kWireVersion, *max_v);
      ByteWriter w;
      w.PutU32(session->version);
      w.PutU64(session->id);
      w.PutU32(kMaxFramePayload);
      if (!SendFrame(fd, WireOp::kHelloOk, w.buffer()).ok()) {
        break;
      }
      greeted = true;
      continue;
    }
    if (!HandleFrame(fd, *frame, *session)) {
      break;
    }
  }
  // Teardown: a half-streamed write or unreleased admission budget dies with the session —
  // nothing it staged past a WRITE_END is deleted (it is inert staging debris the next
  // save's ResetTagStaging or a debris sweep clears), but the budget frees immediately.
  ReleaseStagedBytes(*session);
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.erase(session->id);
    ServerMetrics::Get().sessions.Set(static_cast<int64_t>(sessions_.size()));
  }
  ::close(fd);
  // Park our own thread handle for the accept loop (or Shutdown) to join — a thread
  // can't join itself, and leaving it in session_threads_ would leak the stack until
  // shutdown. Absent entry = test-hook path (ServeConnectionForTest) or Shutdown
  // already claimed the handle.
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = session_threads_.find(session->id);
    if (it != session_threads_.end()) {
      dead_threads_.push_back(std::move(it->second));
      session_threads_.erase(it);
    }
  }
}

void StoreServer::ReleaseStagedBytes(Session& session) {
  session.staged_by_tag.clear();
  const uint64_t held = session.staged_bytes.exchange(0);
  if (held > 0) {
    staged_bytes_.fetch_sub(held);
    ServerMetrics::Get().staged.Set(static_cast<int64_t>(staged_bytes_.load()));
  }
  // Chunk pins taken by this session's CHUNK_QUERYs die with it. Committed tags already
  // released theirs (CommitTag); this catches a client that crashed mid-save, so its
  // uncommitted chunks become sweepable like its staging debris.
  for (const std::string& tag : session.pinned_tags) {
    ChunkIndex::ForRoot(store_.root())->ReleaseTagPins(tag);
  }
  session.pinned_tags.clear();
  session.pinned_by_tag.clear();
  session.pinned_total = 0;
}

void StoreServer::ReleaseSessionPinsForTag(Session& session, const std::string& tag) {
  session.pinned_tags.erase(tag);
  auto it = session.pinned_by_tag.find(tag);
  if (it != session.pinned_by_tag.end()) {
    session.pinned_total -= std::min(session.pinned_total, it->second);
    session.pinned_by_tag.erase(it);
  }
}

void StoreServer::ReleaseStagedBytesForTag(Session& session, const std::string& tag) {
  auto it = session.staged_by_tag.find(tag);
  if (it == session.staged_by_tag.end()) {
    return;
  }
  const uint64_t held = it->second;
  session.staged_by_tag.erase(it);
  if (held > 0) {
    session.staged_bytes.fetch_sub(held);
    staged_bytes_.fetch_sub(held);
    ServerMetrics::Get().staged.Set(static_cast<int64_t>(staged_bytes_.load()));
  }
}

Status StoreServer::HandleWriteBegin(const WireFrame& frame, Session& session) {
  if (session.write_open) {
    return FailedPreconditionError("WRITE_BEGIN with a write already open");
  }
  ByteReader r(frame.payload.data(), frame.payload.size());
  UCP_ASSIGN_OR_RETURN(std::string tag, r.GetString());
  UCP_ASSIGN_OR_RETURN(std::string rel, r.GetString());
  UCP_ASSIGN_OR_RETURN(uint64_t total, r.GetU64());
  if (!IsSafeStoreName(tag) || !IsSafeStoreRelPath(rel)) {
    return InvalidArgumentError("bad tag or file name in WRITE_BEGIN");
  }
  // The declared total is client-supplied and sizes a server-side buffer, so it is
  // validated against the operator-set budget *before* anything is reserved or charged: a
  // hostile or corrupt u64 must never drive an allocation. This is a hard bound, not
  // backpressure — kFailedPrecondition, so clients surface it instead of retrying.
  if (total > options_.max_staged_bytes) {
    ServerMetrics::Get().admission_rejects.Add(1);
    return FailedPreconditionError(
        "WRITE_BEGIN declares " + std::to_string(total) +
        " bytes, above the staging budget of " +
        std::to_string(options_.max_staged_bytes) + "; raise --max-staged-bytes");
  }
  // Create the staging dir before charging the budget so a failure here leaks nothing.
  UCP_RETURN_IF_ERROR(MakeDirs(StagingDirForTag(store_.root(), tag)));
  // Admission control. The oldest session holding staged bytes is always admitted: its
  // save is the one whose completion releases budget, so stalling it would livelock.
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t in_flight = staged_bytes_.load();
    if (in_flight > 0 && in_flight + total > options_.max_staged_bytes) {
      uint64_t oldest_with_staging = 0;
      for (const auto& [id, s] : sessions_) {
        if (s->staged_bytes.load() > 0) {
          oldest_with_staging = id;
          break;  // map iterates in id order
        }
      }
      if (session.id != oldest_with_staging) {
        ServerMetrics::Get().admission_rejects.Add(1);
        return UnavailableError("staging budget exhausted (" +
                                std::to_string(in_flight) + " bytes in flight); retry");
      }
    }
    session.staged_bytes.fetch_add(total);
    staged_bytes_.fetch_add(total);
    ServerMetrics::Get().staged.Set(static_cast<int64_t>(staged_bytes_.load()));
  }
  session.staged_by_tag[tag] += total;
  session.write_open = true;
  session.write_tag = std::move(tag);
  session.write_rel = std::move(rel);
  session.write_total = total;
  session.write_buf.clear();
  session.write_buf.reserve(total);  // bounded: total <= max_staged_bytes, just admitted
  return OkStatus();
}

Status StoreServer::HandleWriteEnd(const WireFrame& frame, Session& session) {
  if (!session.write_open) {
    return FailedPreconditionError("WRITE_END without WRITE_BEGIN");
  }
  session.write_open = false;
  ByteReader r(frame.payload.data(), frame.payload.size());
  UCP_ASSIGN_OR_RETURN(uint32_t want_crc, r.GetU32());
  if (session.write_buf.size() != session.write_total) {
    return DataLossError("write stream for " + session.write_rel + " truncated: " +
                         std::to_string(session.write_buf.size()) + " of " +
                         std::to_string(session.write_total) + " bytes");
  }
  if (Crc32(session.write_buf.data(), session.write_buf.size()) != want_crc) {
    ServerMetrics::Get().chunk_crc_failures.Add(1);
    return DataLossError("write stream CRC mismatch for " + session.write_rel);
  }
  // Only now do the bytes touch disk — through the same WriteFileAtomic (and fault
  // injector) the direct-FS path uses.
  const std::string staging = StagingDirForTag(store_.root(), session.write_tag);
  Status written = WriteFileAtomic(PathJoin(staging, session.write_rel),
                                   session.write_buf.data(), session.write_buf.size());
  session.write_buf.clear();
  session.write_buf.shrink_to_fit();
  return written;
}

Result<std::vector<uint8_t>> StoreServer::HandleOpenRead(const WireFrame& frame,
                                                         Session& session) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  UCP_ASSIGN_OR_RETURN(std::string rel, r.GetString());
  UCP_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> source, store_.OpenRead(rel));
  OpenRead open;
  open.rel = rel;
  UCP_ASSIGN_OR_RETURN(open.index, ReadFileChunkIndex(*source));
  if (open.index.has_value()) {
    open.verified.resize(open.index->regions.size());
    for (size_t i = 0; i < open.index->regions.size(); ++i) {
      open.verified[i].assign(open.index->regions[i].chunk_crcs.size(), false);
    }
  }
  open.source = std::move(source);
  const uint64_t handle = session.next_handle++;
  const uint64_t size = open.source->size();
  session.reads[handle] = std::move(open);
  ByteWriter w;
  w.PutU64(handle);
  w.PutU64(size);
  return w.TakeBuffer();
}

Result<std::vector<uint8_t>> StoreServer::HandleReadRange(const WireFrame& frame,
                                                          Session& session) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  UCP_ASSIGN_OR_RETURN(uint64_t handle, r.GetU64());
  UCP_ASSIGN_OR_RETURN(uint64_t offset, r.GetU64());
  UCP_ASSIGN_OR_RETURN(uint32_t len, r.GetU32());
  auto it = session.reads.find(handle);
  if (it == session.reads.end()) {
    return InvalidArgumentError("READ_RANGE on unknown handle");
  }
  OpenRead& open = it->second;
  if (len > kMaxFramePayload) {
    return InvalidArgumentError("READ_RANGE larger than max frame");
  }
  // Overflow-safe: `offset + len` can wrap for a hostile u64 offset.
  const uint64_t size = open.source->size();
  if (offset > size || len > size - offset) {
    return OutOfRangeError("READ_RANGE past end of " + open.rel);
  }
  // Server-side verification: every chunk the range touches must pass its CRC before the
  // payload ships (each chunk checked at most once per handle).
  if (open.index.has_value()) {
    std::vector<uint8_t> chunk_buf;
    for (size_t ri = 0; ri < open.index->regions.size(); ++ri) {
      const ChunkRegion& region = open.index->regions[ri];
      const uint64_t lo = std::max<uint64_t>(offset, region.begin);
      const uint64_t hi = std::min<uint64_t>(offset + len, region.end);
      if (lo >= hi || region.chunk_bytes == 0) {
        continue;
      }
      const uint64_t c0 = (lo - region.begin) / region.chunk_bytes;
      const uint64_t c1 = (hi - 1 - region.begin) / region.chunk_bytes;
      for (uint64_t c = c0; c <= c1; ++c) {
        if (open.verified[ri][static_cast<size_t>(c)]) {
          continue;
        }
        const uint64_t chunk_begin = region.begin + c * region.chunk_bytes;
        const uint64_t chunk_end =
            std::min<uint64_t>(chunk_begin + region.chunk_bytes, region.end);
        chunk_buf.resize(static_cast<size_t>(chunk_end - chunk_begin));
        UCP_RETURN_IF_ERROR(
            open.source->ReadAt(chunk_begin, chunk_buf.data(), chunk_buf.size()));
        if (Crc32(chunk_buf.data(), chunk_buf.size()) !=
            region.chunk_crcs[static_cast<size_t>(c)]) {
          ServerMetrics::Get().chunk_crc_failures.Add(1);
          return DataLossError("per-tensor CRC mismatch in " + open.rel + " (chunk " +
                               std::to_string(c) + " of " +
                               std::to_string(region.chunk_crcs.size()) + ")");
        }
        open.verified[ri][static_cast<size_t>(c)] = true;
      }
    }
  }
  std::vector<uint8_t> out(len);
  UCP_RETURN_IF_ERROR(open.source->ReadAt(offset, out.data(), out.size()));
  return out;
}

bool StoreServer::HandleFrame(int fd, const WireFrame& frame, Session& session) {
  // WRITE_CHUNK is the streaming hot path: no response frame, just append.
  if (frame.op == WireOp::kWriteChunk) {
    if (!session.write_open) {
      SendError(fd, FailedPreconditionError("WRITE_CHUNK without WRITE_BEGIN")).ok();
      return false;
    }
    if (session.write_buf.size() + frame.payload.size() > session.write_total) {
      session.write_open = false;
      SendError(fd, DataLossError("write stream overruns declared size for " +
                                  session.write_rel))
          .ok();
      return false;
    }
    session.write_buf.insert(session.write_buf.end(), frame.payload.begin(),
                             frame.payload.end());
    return true;
  }

  Status status = OkStatus();
  Result<std::vector<uint8_t>> payload = std::vector<uint8_t>();
  WireOp reply_op = WireOp::kOk;
  switch (frame.op) {
    case WireOp::kPing:
      break;
    case WireOp::kListTags: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> job = r.GetString();
      if (!job.ok()) {
        status = job.status();
        break;
      }
      Result<std::vector<std::string>> tags = store_.ListTags(*job);
      if (!tags.ok()) {
        status = tags.status();
        break;
      }
      payload = EncodeStrList(*tags);
      reply_op = WireOp::kStrList;
      break;
    }
    case WireOp::kList: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> rel = r.GetString();
      if (!rel.ok()) {
        status = rel.status();
        break;
      }
      Result<std::vector<std::string>> entries = store_.List(*rel);
      if (!entries.ok()) {
        status = entries.status();
        break;
      }
      payload = EncodeStrList(*entries);
      reply_op = WireOp::kStrList;
      break;
    }
    case WireOp::kReadSmall: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> rel = r.GetString();
      if (!rel.ok()) {
        status = rel.status();
        break;
      }
      Result<std::string> text = store_.ReadSmallFile(*rel);
      if (!text.ok()) {
        status = text.status();
        break;
      }
      if (text->size() > kMaxFramePayload) {
        status = OutOfRangeError("file too large for READ_SMALL: " + *rel);
        break;
      }
      payload = std::vector<uint8_t>(text->begin(), text->end());
      reply_op = WireOp::kBytes;
      break;
    }
    case WireOp::kOpenRead: {
      payload = HandleOpenRead(frame, session);
      if (!payload.ok()) {
        status = payload.status();
      }
      reply_op = WireOp::kOpenReadOk;
      break;
    }
    case WireOp::kReadRange: {
      payload = HandleReadRange(frame, session);
      if (!payload.ok()) {
        status = payload.status();
      }
      reply_op = WireOp::kBytes;
      break;
    }
    case WireOp::kCloseRead: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<uint64_t> handle = r.GetU64();
      if (!handle.ok()) {
        status = handle.status();
        break;
      }
      session.reads.erase(*handle);
      break;
    }
    case WireOp::kExists: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> rel = r.GetString();
      if (!rel.ok()) {
        status = rel.status();
        break;
      }
      Result<bool> exists = store_.Exists(*rel);
      if (!exists.ok()) {
        status = exists.status();
        break;
      }
      ByteWriter w;
      w.PutU8(*exists ? 1 : 0);
      payload = w.TakeBuffer();
      reply_op = WireOp::kBool;
      break;
    }
    case WireOp::kResetStaging: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> tag = r.GetString();
      status = tag.ok() ? store_.ResetTagStaging(*tag) : tag.status();
      if (status.ok()) {
        // The reset discarded this tag's staging — other tags' saves on this connection
        // keep their admitted budget.
        ReleaseStagedBytesForTag(session, *tag);
        ReleaseSessionPinsForTag(session, *tag);
      }
      break;
    }
    case WireOp::kWriteBegin:
      status = HandleWriteBegin(frame, session);
      break;
    case WireOp::kWriteEnd:
      status = HandleWriteEnd(frame, session);
      break;
    case WireOp::kCommitTag: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> tag = r.GetString();
      Result<std::string> meta = tag.ok() ? r.GetString() : Result<std::string>(tag.status());
      status = meta.ok() ? store_.CommitTag(*tag, *meta) : meta.status();
      if (status.ok()) {
        ReleaseStagedBytesForTag(session, *tag);
        ReleaseSessionPinsForTag(session, *tag);
      }
      break;
    }
    case WireOp::kAbortTag: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> tag = r.GetString();
      status = tag.ok() ? store_.AbortTag(*tag) : tag.status();
      if (status.ok()) {
        ReleaseStagedBytesForTag(session, *tag);
        ReleaseSessionPinsForTag(session, *tag);
      }
      break;
    }
    case WireOp::kDeleteTag: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> tag = r.GetString();
      status = tag.ok() ? store_.DeleteTag(*tag) : tag.status();
      break;
    }
    case WireOp::kGc: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> job = r.GetString();
      Result<uint32_t> keep = job.ok() ? r.GetU32() : Result<uint32_t>(job.status());
      Result<uint8_t> dry = keep.ok() ? r.GetU8() : Result<uint8_t>(keep.status());
      if (!dry.ok()) {
        status = dry.status();
        break;
      }
      Result<GcReport> report =
          store_.Gc(*job, static_cast<int>(*keep), *dry != 0);
      if (!report.ok()) {
        status = report.status();
        break;
      }
      ByteWriter w;
      w.PutU32(static_cast<uint32_t>(report->removed.size()));
      for (const std::string& tag : report->removed) {
        w.PutString(tag);
      }
      w.PutU32(static_cast<uint32_t>(report->kept.size()));
      for (const std::string& tag : report->kept) {
        w.PutString(tag);
      }
      payload = w.TakeBuffer();
      reply_op = WireOp::kGcReport;
      break;
    }
    case WireOp::kSweepDebris: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> job = r.GetString();
      Result<int> removed = job.ok() ? store_.SweepStagingDebris(*job)
                                     : Result<int>(job.status());
      if (!removed.ok()) {
        status = removed.status();
        break;
      }
      ByteWriter w;
      w.PutI64(*removed);
      payload = w.TakeBuffer();
      reply_op = WireOp::kInt;
      break;
    }
    case WireOp::kChunkQuery: {
      if (session.version < 2) {
        status = FailedPreconditionError("CHUNK_QUERY requires protocol v2");
        break;
      }
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> tag = r.GetString();
      Result<uint32_t> count = tag.ok() ? r.GetU32() : Result<uint32_t>(tag.status());
      if (!count.ok()) {
        status = count.status();
        break;
      }
      if (!IsSafeStoreName(*tag)) {
        status = InvalidArgumentError("unsafe tag name: " + *tag);
        break;
      }
      // Admission: pins are server memory and block chunk reclaim, so they are budgeted
      // per session like staged bytes. The check runs before anything is pinned, against
      // the declared count — a hostile count either fails here or in the reader below.
      if (session.pinned_total + *count > options_.max_pinned_chunks) {
        status = FailedPreconditionError(
            "session pinned-chunk budget exceeded: " +
            std::to_string(session.pinned_total) + " held + " + std::to_string(*count) +
            " requested > " + std::to_string(options_.max_pinned_chunks));
        break;
      }
      // The payload size already bounds count * 16 bytes; a forged count fails in the
      // reader.
      std::vector<ChunkIndex::ChunkProbe> probes;
      probes.reserve(*count);
      for (uint32_t i = 0; i < *count; ++i) {
        ChunkIndex::ChunkProbe probe;
        Result<uint64_t> d = r.GetU64();
        Result<uint32_t> raw_size = d.ok() ? r.GetU32() : Result<uint32_t>(d.status());
        Result<uint32_t> raw_crc =
            raw_size.ok() ? r.GetU32() : Result<uint32_t>(raw_size.status());
        if (!raw_crc.ok()) {
          status = raw_crc.status();
          break;
        }
        probe.digest = *d;
        probe.raw_size = *raw_size;
        probe.raw_crc = *raw_crc;
        probes.push_back(probe);
      }
      if (!status.ok()) {
        break;
      }
      // Pins are taken before presence is answered so a concurrent sweep can't delete a
      // chunk the client was just told exists (invariant I6).
      std::vector<uint8_t> present =
          ChunkIndex::ForRoot(store_.root())->PinAndQuery(*tag, probes);
      session.pinned_tags.insert(*tag);
      session.pinned_by_tag[*tag] += probes.size();
      session.pinned_total += probes.size();
      ByteWriter w;
      w.PutU32(static_cast<uint32_t>(present.size()));
      for (uint8_t p : present) {
        w.PutU8(p);
      }
      payload = w.TakeBuffer();
      reply_op = WireOp::kChunkMask;
      break;
    }
    case WireOp::kChunkPut: {
      if (session.version < 2) {
        status = FailedPreconditionError("CHUNK_PUT requires protocol v2");
        break;
      }
      // Chunk puts deliberately bypass the staged-bytes admission budget: each put is
      // bounded by the frame cap, decode-verified, and written straight to the index with
      // no server-side accumulation — there is no declared-total buffer to defend, unlike
      // WRITE_BEGIN streams.
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<uint64_t> digest = r.GetU64();
      if (!digest.ok()) {
        status = digest.status();
        break;
      }
      if (frame.payload.size() < 8 + kChunkHeaderBytes) {
        status = DataLossError("CHUNK_PUT frame too short for a chunk object");
        break;
      }
      status = ChunkIndex::ForRoot(store_.root())
                   ->PutEncoded(*digest, frame.payload.data() + 8,
                                frame.payload.size() - 8);
      break;
    }
    default:
      status = UnimplementedError("unknown wire op " +
                                  std::to_string(static_cast<int>(frame.op)));
      break;
  }

  Status sent;
  if (!status.ok()) {
    sent = SendError(fd, status);
  } else {
    sent = SendFrame(fd, reply_op, *payload);
    ServerMetrics::Get().bytes_out.Add(9 + payload->size() + 4);
  }
  return sent.ok();
}

void StoreServer::HttpLoop() {
  while (!stopping_.load()) {
    const int http_fd = http_fd_.load();
    if (http_fd < 0) {
      return;
    }
    const int fd = ::accept(http_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    // One tiny blocking exchange per connection: read the request head, answer, close.
    char buf[2048];
    const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
    std::string body;
    std::string code = "200 OK";
    if (n > 0) {
      buf[n] = '\0';
      const std::string head(buf);
      if (head.rfind("GET /healthz", 0) == 0) {
        body = "ok\n";
      } else if (head.rfind("GET /metrics", 0) == 0) {
        body = obs::DumpMetricsText();
      } else {
        code = "404 Not Found";
        body = "not found\n";
      }
    } else {
      ::close(fd);
      continue;
    }
    const std::string response = "HTTP/1.1 " + code +
                                 "\r\nContent-Type: text/plain; version=0.0.4"
                                 "\r\nContent-Length: " +
                                 std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
                                 body;
    size_t off = 0;
    while (off < response.size()) {
      const ssize_t sent = ::send(fd, response.data() + off, response.size() - off, 0);
      if (sent <= 0) {
        break;
      }
      off += static_cast<size_t>(sent);
    }
    ::close(fd);
  }
}

}  // namespace ucp
