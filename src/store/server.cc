#include "src/store/server.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <set>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/crc32.h"
#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/store/chunk_index.h"
#include "src/store/tags.h"
#include "src/tensor/tensor_file.h"

namespace ucp {

namespace {

struct ServerMetrics {
  obs::Counter& ops = obs::MetricsRegistry::Global().GetCounter("store.server.ops");
  obs::Counter& bytes_in =
      obs::MetricsRegistry::Global().GetCounter("store.server.bytes_in");
  obs::Counter& bytes_out =
      obs::MetricsRegistry::Global().GetCounter("store.server.bytes_out");
  obs::Counter& admission_rejects =
      obs::MetricsRegistry::Global().GetCounter("store.server.admission_rejects");
  obs::Counter& frame_errors =
      obs::MetricsRegistry::Global().GetCounter("store.server.frame_crc_errors");
  obs::Counter& chunk_crc_failures =
      obs::MetricsRegistry::Global().GetCounter("store.server.chunk_crc_failures");
  obs::Counter& lease_expiries =
      obs::MetricsRegistry::Global().GetCounter("store.server.lease_expiries");
  obs::Counter& leases_resumed =
      obs::MetricsRegistry::Global().GetCounter("store.server.leases_resumed");
  obs::Counter& journal_adopted =
      obs::MetricsRegistry::Global().GetCounter("store.server.journal_adopted_leases");
  obs::Counter& resumed_write_bytes =
      obs::MetricsRegistry::Global().GetCounter("store.server.resumed_write_bytes");
  obs::Gauge& sessions = obs::MetricsRegistry::Global().GetGauge("store.server.sessions");
  obs::Gauge& leases = obs::MetricsRegistry::Global().GetGauge("store.server.leases");
  obs::Gauge& staged =
      obs::MetricsRegistry::Global().GetGauge("store.server.staged_bytes");

  static ServerMetrics& Get() {
    static ServerMetrics* m = new ServerMetrics();
    return *m;
  }
};

// Wall clock, not steady: lease expiries are journaled and must stay meaningful across a
// daemon restart.
int64_t NowWallMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// `retry_after_ms` > 0 appends the v3 retry hint; older clients ignore the trailing bytes.
Status SendError(int fd, const Status& error, uint32_t retry_after_ms = 0) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(error.code()));
  w.PutString(error.message());
  if (retry_after_ms > 0) {
    w.PutU32(retry_after_ms);
  }
  return SendFrame(fd, WireOp::kError, w.buffer());
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

// Total file bytes under `path`, recursively; 0 when it doesn't exist. Used to recompute
// an adopted lease's staged-byte charge from what actually survived the restart.
uint64_t DirBytes(const std::string& path) {
  if (!DirExists(path)) {
    return 0;
  }
  uint64_t total = 0;
  Result<std::vector<std::string>> entries = ListDir(path);
  if (!entries.ok()) {
    return 0;
  }
  for (const std::string& name : *entries) {
    const std::string child = PathJoin(path, name);
    if (DirExists(child)) {
      total += DirBytes(child);
    } else if (Result<uint64_t> size = FileSize(child); size.ok()) {
      total += *size;
    }
  }
  return total;
}

// Writes exactly [data, data+size) at `offset` (pwrite loop; EINTR absorbed).
Status PwriteAll(int fd, const void* data, size_t size, uint64_t offset,
                 const std::string& path) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t left = size;
  while (left > 0) {
    const ssize_t n = ::pwrite(fd, p, left, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return IoError("spool write failed for " + path + ": " + std::strerror(errno));
    }
    p += n;
    left -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  return OkStatus();
}

std::vector<uint8_t> EncodeStrList(const std::vector<std::string>& items) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(items.size()));
  for (const std::string& s : items) {
    w.PutString(s);
  }
  return w.TakeBuffer();
}

// ---- Per-RPC telemetry ---------------------------------------------------------------------

// The tag a request frame is about, for span attribution: tag-leading payloads are peeked
// (the handlers re-decode and validate for real), stream frames inherit the open write's
// tag. Empty when the op isn't tag-scoped.
std::string RpcTagFor(const WireFrame& frame, const std::string& write_tag) {
  switch (frame.op) {
    case WireOp::kResetStaging:
    case WireOp::kWriteBegin:
    case WireOp::kCommitTag:
    case WireOp::kAbortTag:
    case WireOp::kDeleteTag:
    case WireOp::kChunkQuery:
    case WireOp::kWriteResume: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> tag = r.GetString();
      return tag.ok() ? *tag : std::string();
    }
    case WireOp::kWriteChunk:
    case WireOp::kWriteEnd:
      return write_tag;
    default:
      return std::string();
  }
}

// `store.server.rpc.<op>.{seconds,bytes_in}` — one latency/size distribution per message
// type. Registry lookups are a mutex + map probe, dwarfed by the I/O every frame does.
obs::Histogram& RpcSecondsFor(WireOp op) {
  return obs::MetricsRegistry::Global().GetHistogram(
      std::string("store.server.rpc.") + WireOpName(op) + ".seconds");
}
obs::Histogram& RpcBytesInFor(WireOp op) {
  return obs::MetricsRegistry::Global().GetHistogram(
      std::string("store.server.rpc.") + WireOpName(op) + ".bytes_in");
}

}  // namespace

// Read handles carry the file's v3 chunk index so READ_RANGE responses are verified
// *before* any payload byte crosses the wire — a client never sees bytes the server knows
// are rotten. Each chunk verifies at most once per handle (same memoization the local
// views use).
struct StoreServer::OpenRead {
  std::unique_ptr<ByteSource> source;
  std::string rel;
  // nullopt: legacy v1/v2 or non-container file — served unverified (the client's own
  // whole-file CRC checks still apply).
  std::optional<FileChunkIndex> index;
  std::vector<std::vector<bool>> verified;  // parallel to index->regions
};

// What the admission budget and chunk pins are attributed to. Every session holds exactly
// one lease: an *implicit* one (empty token) that dies with the connection — the v1/v2
// semantics — or a *named* one (SESSION_OPEN) that survives socket death until its TTL
// lapses, so a reconnecting client can re-adopt its staged state. All fields are guarded
// by StoreServer::mu_ except expires_at_ms, which the serving thread refreshes per frame
// and the reaper polls.
struct StoreServer::Lease {
  uint64_t id = 0;           // creation order; admission's oldest-first scan keys on it
  std::string token;         // empty = implicit per-connection lease
  // Atomics: the serving thread refreshes the expiry on every frame without taking mu_,
  // and a re-adopting connection may rewrite the TTL while the stale one still reads it.
  std::atomic<uint32_t> ttl_ms{0};
  std::atomic<int64_t> expires_at_ms{0};
  uint64_t bound_session = 0;  // 0 = no live connection attached
  // Tags this lease pinned chunks under (CHUNK_QUERY). Commit/abort/reset release a
  // tag's pins through LocalStore; this set covers the remaining case — the lease dying
  // mid-save — so a crashed client's pins don't outlive its lease (its uncommitted
  // chunks become sweepable, exactly like its staging debris).
  std::set<std::string> pinned_tags;
  // Digests pinned by tag and in total, charged against options_.max_pinned_chunks
  // (digests re-queried under the same tag are re-counted — an upper bound is all
  // admission needs).
  std::map<std::string, uint64_t> pinned_by_tag;
  uint64_t pinned_total = 0;
  // Attribution of admitted staged bytes by tag, so releasing one tag (commit/abort/
  // reset) leaves the budget of other in-flight saves on this lease intact.
  std::map<std::string, uint64_t> staged_by_tag;
  uint64_t staged_total = 0;

  bool named() const { return !token.empty(); }
};

struct StoreServer::Session {
  uint64_t id = 0;
  int fd = -1;
  // Negotiated at HELLO: min(server max, client max). Chunk ops require >= 2, lease and
  // resume ops >= 3.
  uint32_t version = 0;
  std::shared_ptr<Lease> lease;  // never null once the session is registered
  uint64_t ops = 0;

  // In-flight streamed write (between WRITE_BEGIN and WRITE_END). Bytes append to a spool
  // file under <tag>.wip — on disk, outside the staging dir — so a half-streamed upload
  // survives connection drops and daemon restarts for WRITE_RESUME, and a commit can
  // never publish a partial file.
  bool write_open = false;
  std::string write_tag;
  std::string write_rel;
  std::string spool_path;
  uint64_t write_total = 0;
  uint64_t write_spooled = 0;  // server-acknowledged contiguous prefix
  uint32_t write_crc = 0;      // running (un-finalized) CRC of the spooled prefix
  int spool_fd = -1;

  uint64_t next_handle = 1;
  std::map<uint64_t, OpenRead> reads;

  // Wire v4 trace context (TRACE_CONTEXT prefix frame): annotates the *next* request
  // frame on this connection, then clears. Only the serving thread touches it.
  uint64_t pending_trace_id = 0;
  uint64_t pending_span_id = 0;
};

Result<std::unique_ptr<StoreServer>> StoreServer::Start(StoreServerOptions options) {
  if (options.root.empty()) {
    return InvalidArgumentError("store server needs a root directory");
  }
  UCP_RETURN_IF_ERROR(MakeDirs(options.root));
  UCP_ASSIGN_OR_RETURN(Endpoint ep, ParseEndpoint(options.listen));
  std::unique_ptr<StoreServer> server(new StoreServer(std::move(options)));
  // Re-adopt what a previous daemon left behind *before* serving anyone. When live
  // leases were recovered, keep LocalStore's cross-process chunk-sweep grace window:
  // their owners' pins died with the old process, and the grace window is the only thing
  // protecting their in-flight chunks until the leases resolve. A clean start has no
  // such exposure — the daemon holds every client's pins, so sweeps reclaim immediately.
  if (!server->RecoverJournal()) {
    server->store_.set_chunk_sweep_grace_seconds(0);
  } else {
    // Adoption after restart is an anomaly worth a dossier: the previous daemon died
    // with saves in flight, and this record ties the adopted state to this process.
    server->DumpAnomaly("journal-adopt", "adopted live leases from a prior daemon");
  }
  UCP_ASSIGN_OR_RETURN(server->listen_fd_, ListenEndpoint(ep));
  if (!ep.is_unix && ep.port == 0) {
    UCP_ASSIGN_OR_RETURN(ep.port, BoundSocketPort(server->listen_fd_));
  }
  server->endpoint_ = EndpointToString(ep);
  if (!server->options_.http_listen.empty()) {
    UCP_ASSIGN_OR_RETURN(Endpoint hep, ParseEndpoint(server->options_.http_listen));
    if (hep.is_unix) {
      return InvalidArgumentError("http endpoint must be tcp:host:port");
    }
    UCP_ASSIGN_OR_RETURN(server->http_fd_, ListenEndpoint(hep));
    if (hep.port == 0) {
      UCP_ASSIGN_OR_RETURN(hep.port, BoundSocketPort(server->http_fd_));
    }
    server->http_endpoint_ = EndpointToString(hep);
    server->http_thread_ = std::thread([s = server.get()] { s->HttpLoop(); });
  }
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  server->reaper_thread_ = std::thread([s = server.get()] { s->ReaperLoop(); });
  return server;
}

StoreServer::~StoreServer() { Shutdown(false); }

int StoreServer::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sessions_.size());
}

int StoreServer::active_leases() const {
  std::lock_guard<std::mutex> lock(mu_);
  int named = 0;
  for (const auto& [id, lease] : leases_) {
    named += lease->named() ? 1 : 0;
  }
  return named;
}

void StoreServer::BeginDrain() { draining_.store(true); }

size_t StoreServer::session_thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return session_threads_.size() + dead_threads_.size();
}

void StoreServer::ReapDeadThreads() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    done.swap(dead_threads_);
  }
  // Each handle here was parked by its own thread on the way out of ServeConnection, so
  // the join is (at most) a momentary wait for that thread to finish returning.
  for (std::thread& t : done) {
    t.join();
  }
}

void StoreServer::Shutdown(bool drain) {
  if (drain) {
    // Entering drain first means no new SESSION_OPEN is accepted (typed refusal with a
    // retry-after hint) while existing sessions get to finish — a lease granted now
    // would only be killed mid-save below.
    BeginDrain();
  }
  if (stopping_.exchange(true)) {
    // Second call: still join anything the first caller raced past.
  }
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  const int http_fd = http_fd_.exchange(-1);
  if (http_fd >= 0) {
    ::shutdown(http_fd, SHUT_RDWR);
    ::close(http_fd);
  }
  if (drain) {
    // Busy sessions finish their current exchange; idle ones notice the shutdown when
    // their client closes or on the next request. Bounded wait, then hard-close.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (active_sessions() > 0 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, session] : sessions_) {
      ::shutdown(session->fd, SHUT_RDWR);  // unblocks the handler's recv
    }
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (http_thread_.joinable()) {
    http_thread_.join();
  }
  if (reaper_thread_.joinable()) {
    reaper_thread_.join();
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(dead_threads_);
    for (auto& [id, t] : session_threads_) {
      threads.push_back(std::move(t));
    }
    session_threads_.clear();
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

void StoreServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) {
      return;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listen socket closed by Shutdown
    }
    // Join connection threads that finished while we were blocked in accept — a
    // long-lived daemon must not hoard one zombie thread stack per past connection.
    ReapDeadThreads();
    std::shared_ptr<Session> session;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load() ||
          static_cast<int>(sessions_.size()) >= options_.max_sessions) {
        // Over the session cap: reject before the handshake so the client fails typed.
        SendError(fd, UnavailableError("server at max_sessions capacity")).ok();
        ::close(fd);
        continue;
      }
      session = std::make_shared<Session>();
      session->id = next_session_id_++;
      session->fd = fd;
      session->lease = std::make_shared<Lease>();
      session->lease->id = next_lease_id_++;
      session->lease->bound_session = session->id;
      leases_[session->lease->id] = session->lease;
      sessions_[session->id] = session;
      ServerMetrics::Get().sessions.Set(static_cast<int64_t>(sessions_.size()));
      session_threads_.emplace(
          session->id,
          std::thread([this, fd, session] { ServeConnection(fd, session); }));
    }
  }
}

void StoreServer::ServeConnectionForTest(int fd) {
  auto session = std::make_shared<Session>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    session->id = next_session_id_++;
    session->fd = fd;
    session->lease = std::make_shared<Lease>();
    session->lease->id = next_lease_id_++;
    session->lease->bound_session = session->id;
    leases_[session->lease->id] = session->lease;
    sessions_[session->id] = session;
    ServerMetrics::Get().sessions.Set(static_cast<int64_t>(sessions_.size()));
  }
  ServeConnection(fd, session);
}

void StoreServer::ServeConnection(int fd, std::shared_ptr<Session> session) {
  // Session threads export as the daemon's own process track, so a merged client+server
  // trace renders the server's handling spans on their own pid, not "runtime".
  obs::SetThreadTrackName("ucp_serverd");
  // Handshake first: anything else is a protocol error and the connection dies typed.
  bool greeted = false;
  for (;;) {
    Result<WireFrame> frame = RecvFrame(fd);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDataLoss) {
        ServerMetrics::Get().frame_errors.Add(1);
        SendError(fd, frame.status()).ok();  // best effort before closing
      }
      break;  // peer gone or stream unusable
    }
    ServerMetrics::Get().ops.Add(1);
    ServerMetrics::Get().bytes_in.Add(9 + frame->payload.size() + 4);
    session->ops++;
    if (!greeted) {
      if (frame->op != WireOp::kHello) {
        SendError(fd, FailedPreconditionError("expected HELLO as the first frame")).ok();
        break;
      }
      ByteReader r(frame->payload.data(), frame->payload.size());
      Result<uint32_t> min_v = r.GetU32();
      Result<uint32_t> max_v = r.GetU32();
      if (!min_v.ok() || !max_v.ok() || *min_v > *max_v) {
        SendError(fd, InvalidArgumentError("malformed HELLO")).ok();
        break;
      }
      const uint32_t server_max = std::min(kWireVersion, options_.max_wire_version);
      if (*max_v < kWireMinVersion || *min_v > server_max) {
        SendError(fd, FailedPreconditionError(
                          "no common protocol version: server speaks v" +
                          std::to_string(kWireMinVersion) + "..v" +
                          std::to_string(server_max)))
            .ok();
        break;
      }
      session->version = std::min(server_max, *max_v);
      ByteWriter w;
      w.PutU32(session->version);
      w.PutU64(session->id);
      w.PutU32(kMaxFramePayload);
      if (!SendFrame(fd, WireOp::kHelloOk, w.buffer()).ok()) {
        break;
      }
      greeted = true;
      continue;
    }
    // Receiving any frame is proof of life: refresh the lease — unless draining, when
    // TTLs deliberately stop being extended so the table winds down.
    if (session->lease->named() && !draining_.load()) {
      session->lease->expires_at_ms.store(NowWallMs() + session->lease->ttl_ms.load());
    }
    if (!HandleFrame(fd, *frame, *session)) {
      break;
    }
  }
  // Teardown. The spool keeps its bytes on disk (a reconnecting lease holder resumes
  // into it; otherwise it is sweepable debris), only the descriptor closes here.
  AbandonOpenWrite(*session);
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<Lease> lease = session->lease;
    // A named lease another connection re-adopted (bound_session moved on) is no longer
    // ours to unbind or release — the steal already transferred ownership.
    if (lease != nullptr &&
        (!lease->named() || lease->bound_session == session->id)) {
      if (!lease->named() || NowWallMs() >= lease->expires_at_ms.load()) {
        // Implicit lease (v1/v2 semantics) or a named lease that already outlived its
        // TTL while the socket lingered: budget and pins free now. Staged/spooled files
        // stay — inert debris the next save's ResetTagStaging or a sweep clears.
        ReleaseLeaseLocked(*lease);
      } else {
        // Named and live: the client may come back. The TTL clock started at its last
        // frame; the reaper collects it if no one re-adopts.
        lease->bound_session = 0;
        WriteJournalLocked();
      }
    }
    sessions_.erase(session->id);
    ServerMetrics::Get().sessions.Set(static_cast<int64_t>(sessions_.size()));
  }
  ::close(fd);
  // Park our own thread handle for the accept loop (or Shutdown) to join — a thread
  // can't join itself, and leaving it in session_threads_ would leak the stack until
  // shutdown. Absent entry = test-hook path (ServeConnectionForTest) or Shutdown
  // already claimed the handle.
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = session_threads_.find(session->id);
    if (it != session_threads_.end()) {
      dead_threads_.push_back(std::move(it->second));
      session_threads_.erase(it);
    }
  }
}

void StoreServer::AbandonOpenWrite(Session& session) {
  if (session.spool_fd < 0) {
    session.write_open = false;
    return;
  }
  ::close(session.spool_fd);
  session.spool_fd = -1;
  session.write_open = false;
  // Un-charge the bytes WRITE_BEGIN reserved but the stream never delivered. This keeps
  // the invariant that a lease's per-tag charge equals its bytes on disk plus declared
  // still-in-flight remainders — which is exactly what a resumed WRITE_BEGIN re-charges
  // (total - resume), so drop/resume cycles neither double-charge nor leak budget.
  const uint64_t undelivered = session.write_total > session.write_spooled
                                   ? session.write_total - session.write_spooled
                                   : 0;
  if (undelivered == 0 || session.lease == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = session.lease->staged_by_tag.find(session.write_tag);
  if (it == session.lease->staged_by_tag.end()) {
    return;  // tag charge already released (commit/abort/reset raced the teardown)
  }
  const uint64_t give = std::min(it->second, undelivered);
  it->second -= give;
  session.lease->staged_total -= std::min(session.lease->staged_total, give);
  if (give > 0) {
    staged_bytes_.fetch_sub(give);
    ServerMetrics::Get().staged.Set(static_cast<int64_t>(staged_bytes_.load()));
  }
}

void StoreServer::ReleaseLeaseLocked(Lease& lease) {
  const uint64_t held = lease.staged_total;
  lease.staged_by_tag.clear();
  lease.staged_total = 0;
  if (held > 0) {
    staged_bytes_.fetch_sub(held);
    ServerMetrics::Get().staged.Set(static_cast<int64_t>(staged_bytes_.load()));
  }
  // Chunk pins taken by this lease's CHUNK_QUERYs die with it. Committed tags already
  // released theirs (CommitTag); this catches a client that crashed mid-save, so its
  // uncommitted chunks become sweepable like its staging debris.
  for (const std::string& tag : lease.pinned_tags) {
    ChunkIndex::ForRoot(store_.root())->ReleaseTagPins(tag);
  }
  lease.pinned_tags.clear();
  lease.pinned_by_tag.clear();
  lease.pinned_total = 0;
  leases_.erase(lease.id);
  ServerMetrics::Get().leases.Set(static_cast<int64_t>(leases_.size()));
  if (lease.named()) {
    WriteJournalLocked();
  }
}

void StoreServer::ReleaseLeasePinsForTagLocked(Lease& lease, const std::string& tag) {
  lease.pinned_tags.erase(tag);
  auto it = lease.pinned_by_tag.find(tag);
  if (it != lease.pinned_by_tag.end()) {
    lease.pinned_total -= std::min(lease.pinned_total, it->second);
    lease.pinned_by_tag.erase(it);
  }
}

void StoreServer::ReleaseStagedBytesForTagLocked(Lease& lease, const std::string& tag) {
  auto it = lease.staged_by_tag.find(tag);
  if (it == lease.staged_by_tag.end()) {
    return;
  }
  const uint64_t held = it->second;
  lease.staged_by_tag.erase(it);
  lease.staged_total -= std::min(lease.staged_total, held);
  if (held > 0) {
    staged_bytes_.fetch_sub(held);
    ServerMetrics::Get().staged.Set(static_cast<int64_t>(staged_bytes_.load()));
  }
}

void StoreServer::ReaperLoop() {
  while (!stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const int64_t now = NowWallMs();
    std::vector<std::shared_ptr<Lease>> expired;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [id, lease] : leases_) {
        if (!lease->named() || now < lease->expires_at_ms.load()) {
          continue;
        }
        if (lease->bound_session != 0) {
          // A bound lease past its TTL means the client went quiet without the socket
          // dying — a partitioned peer. Force the connection down; teardown completes
          // the reap. Skipped while draining: drain lets in-flight saves finish.
          if (!draining_.load()) {
            auto sit = sessions_.find(lease->bound_session);
            if (sit != sessions_.end()) {
              ::shutdown(sit->second->fd, SHUT_RDWR);
            }
          }
          continue;
        }
        expired.push_back(lease);
      }
      for (const std::shared_ptr<Lease>& lease : expired) {
        ServerMetrics::Get().lease_expiries.Add(1);
        ReleaseLeaseLocked(*lease);
      }
    }
    if (!expired.empty()) {
      // Outside mu_: an expiry means a client went away without resolving its save —
      // exactly the moment the rings' recent history is worth keeping.
      DumpAnomaly("lease-expiry",
                  std::to_string(expired.size()) + " session lease(s) expired");
    }
  }
}

// ---- Lease journal ------------------------------------------------------------------------
//
// One small JSON file under the root, rewritten atomically whenever the named-lease table
// changes shape (never per chunk). It records just enough for a restarted daemon to honor
// the contract: which tokens are still inside their TTL and which tags they were staging.
// Staged-byte charges are *recomputed* from the surviving spool/staging bytes on recovery
// — the old process's accounting died with it, the disk is the authority.

std::string StoreServer::JournalPath() const {
  return PathJoin(options_.root, ".ucp_serverd.journal");
}

void StoreServer::WriteJournalLocked() {
  if (!options_.journal) {
    return;
  }
  JsonArray leases;
  for (const auto& [id, lease] : leases_) {
    if (!lease->named()) {
      continue;
    }
    JsonObject entry;
    entry["token"] = lease->token;
    entry["ttl_ms"] = static_cast<int64_t>(lease->ttl_ms.load());
    entry["expires_at_ms"] = lease->expires_at_ms.load();
    JsonArray tags;
    for (const auto& [tag, bytes] : lease->staged_by_tag) {
      tags.push_back(Json(tag));
    }
    entry["tags"] = std::move(tags);
    leases.push_back(Json(std::move(entry)));
  }
  JsonObject root;
  root["version"] = 1;
  root["leases"] = std::move(leases);
  const Status written = WriteFileAtomic(JournalPath(), Json(std::move(root)).Dump());
  if (!written.ok()) {
    UCP_LOG(Warning) << "lease journal write failed: " << written.ToString();
  } else {
    journal_seq_.fetch_add(1);
  }
}

bool StoreServer::RecoverJournal() {
  if (!options_.journal || !FileExists(JournalPath())) {
    return false;
  }
  Result<std::string> text = ReadFileToString(JournalPath());
  if (!text.ok()) {
    UCP_LOG(Warning) << "lease journal unreadable, starting clean: "
                     << text.status().ToString();
    return false;
  }
  Result<Json> parsed = Json::Parse(*text);
  if (!parsed.ok() || !parsed->is_object()) {
    UCP_LOG(Warning) << "lease journal corrupt, starting clean";
    return false;
  }
  Result<const JsonArray*> entries = parsed->GetArray("leases");
  if (!entries.ok()) {
    return false;
  }
  const int64_t now = NowWallMs();
  std::set<std::string> live_tags;
  std::vector<std::string> expired_tags;
  bool adopted = false;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Json& entry : **entries) {
    if (!entry.is_object()) {
      continue;
    }
    Result<std::string> token = entry.GetString("token");
    Result<int64_t> ttl = entry.GetInt("ttl_ms");
    Result<int64_t> expires = entry.GetInt("expires_at_ms");
    Result<const JsonArray*> tags = entry.GetArray("tags");
    if (!token.ok() || token->empty() || !ttl.ok() || !expires.ok() || !tags.ok()) {
      continue;
    }
    std::vector<std::string> tag_names;
    for (const Json& t : **tags) {
      if (t.is_string() && IsSafeStoreName(t.AsString())) {
        tag_names.push_back(t.AsString());
      }
    }
    if (*expires <= now) {
      expired_tags.insert(expired_tags.end(), tag_names.begin(), tag_names.end());
      continue;
    }
    auto lease = std::make_shared<Lease>();
    lease->id = next_lease_id_++;
    lease->token = *token;
    lease->ttl_ms.store(static_cast<uint32_t>(std::max<int64_t>(*ttl, 0)));
    lease->expires_at_ms.store(*expires);
    for (const std::string& tag : tag_names) {
      const uint64_t bytes = DirBytes(WipDirForTag(options_.root, tag)) +
                             DirBytes(StagingDirForTag(options_.root, tag));
      lease->staged_by_tag[tag] = bytes;
      lease->staged_total += bytes;
      live_tags.insert(tag);
    }
    staged_bytes_.fetch_add(lease->staged_total);
    leases_[lease->id] = lease;
    ServerMetrics::Get().journal_adopted.Add(1);
    adopted = true;
  }
  // Expired leases are swept: their spools can never be resumed into (the token is gone),
  // so reclaim them now — unless a live lease is still staging the same tag.
  for (const std::string& tag : expired_tags) {
    if (live_tags.count(tag) == 0) {
      RemoveAll(WipDirForTag(options_.root, tag)).ok();
    }
  }
  ServerMetrics::Get().staged.Set(static_cast<int64_t>(staged_bytes_.load()));
  ServerMetrics::Get().leases.Set(static_cast<int64_t>(leases_.size()));
  WriteJournalLocked();
  return adopted;
}

Status StoreServer::HandleWriteBegin(const WireFrame& frame, Session& session) {
  if (session.write_open) {
    return FailedPreconditionError("WRITE_BEGIN with a write already open");
  }
  // A BEGIN while another write is open abandons the old one (protocol misuse, or a
  // client that gave up on a file) — its undelivered charge must not leak.
  AbandonOpenWrite(session);
  ByteReader r(frame.payload.data(), frame.payload.size());
  UCP_ASSIGN_OR_RETURN(std::string tag, r.GetString());
  UCP_ASSIGN_OR_RETURN(std::string rel, r.GetString());
  UCP_ASSIGN_OR_RETURN(uint64_t total, r.GetU64());
  uint64_t resume = 0;
  if (session.version >= 3 && r.remaining() >= sizeof(uint64_t)) {
    UCP_ASSIGN_OR_RETURN(resume, r.GetU64());
  }
  if (!IsSafeStoreName(tag) || !IsSafeStoreRelPath(rel)) {
    return InvalidArgumentError("bad tag or file name in WRITE_BEGIN");
  }
  // The declared total is client-supplied, so it is validated against the operator-set
  // budget *before* anything is reserved or charged: a hostile or corrupt u64 must never
  // drive a reservation. This is a hard bound, not backpressure — kFailedPrecondition,
  // so clients surface it instead of retrying.
  if (total > options_.max_staged_bytes) {
    ServerMetrics::Get().admission_rejects.Add(1);
    DumpAnomaly("admission-reject", "WRITE_BEGIN for " + tag + "/" + rel + " declares " +
                                        std::to_string(total) + " bytes over budget");
    return FailedPreconditionError(
        "WRITE_BEGIN declares " + std::to_string(total) +
        " bytes, above the staging budget of " +
        std::to_string(options_.max_staged_bytes) + "; raise --max-staged-bytes");
  }
  if (resume > total) {
    return InvalidArgumentError("WRITE_BEGIN resume offset past declared total");
  }
  // Create the staging + spool dirs before charging the budget so a failure here leaks
  // nothing.
  UCP_RETURN_IF_ERROR(MakeDirs(StagingDirForTag(store_.root(), tag)));
  const std::string spool = PathJoin(WipDirForTag(store_.root(), tag), rel);
  UCP_RETURN_IF_ERROR(MakeDirs(ParentDir(spool)));
  // Open (and, on resume, validate) the spool before admission: the resumed prefix was
  // charged by this lease's previous incarnation and is still on disk, so only the bytes
  // that will newly arrive are charged below.
  const int spool_fd = ::open(spool.c_str(), O_RDWR | O_CREAT, 0644);
  if (spool_fd < 0) {
    return IoError("cannot open spool " + spool + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(spool_fd, &st) != 0) {
    ::close(spool_fd);
    return IoError("cannot stat spool " + spool);
  }
  const uint64_t spooled = static_cast<uint64_t>(st.st_size);
  if (resume > spooled) {
    // The client believes the server acked more than the spool holds (stale WRITE_RESUME
    // answer or a swept spool). Typed so the client restarts the file from zero.
    ::close(spool_fd);
    return FailedPreconditionError(
        "WRITE_BEGIN resume offset " + std::to_string(resume) + " past spooled " +
        std::to_string(spooled) + " bytes for " + rel + "; restart the file");
  }
  if (spooled > resume && ::ftruncate(spool_fd, static_cast<off_t>(resume)) != 0) {
    ::close(spool_fd);
    return IoError("cannot truncate spool " + spool);
  }
  // Re-seed the running CRC over the prefix being kept.
  uint32_t crc = Crc32Init();
  if (resume > 0) {
    std::vector<uint8_t> buf(64 << 10);
    uint64_t off = 0;
    while (off < resume) {
      const size_t want = static_cast<size_t>(
          std::min<uint64_t>(buf.size(), resume - off));
      const ssize_t n = ::pread(spool_fd, buf.data(), want, static_cast<off_t>(off));
      if (n <= 0) {
        ::close(spool_fd);
        return IoError("cannot reread spool prefix of " + spool);
      }
      crc = Crc32Update(crc, buf.data(), static_cast<size_t>(n));
      off += static_cast<uint64_t>(n);
    }
    ServerMetrics::Get().resumed_write_bytes.Add(static_cast<int64_t>(resume));
  }
  const uint64_t charge = total - resume;
  // Admission control. The oldest lease holding staged bytes is always admitted: its
  // save is the one whose completion releases budget, so stalling it would livelock.
  // Lease ids are creation-ordered and survive reconnects, so a resumed session keeps
  // its seniority.
  Status rejected = OkStatus();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t in_flight = staged_bytes_.load();
    if (in_flight > 0 && in_flight + charge > options_.max_staged_bytes) {
      uint64_t oldest_with_staging = 0;
      for (const auto& [id, lease] : leases_) {
        if (lease->staged_total > 0) {
          oldest_with_staging = id;
          break;  // map iterates in id order
        }
      }
      if (session.lease->id != oldest_with_staging) {
        ::close(spool_fd);
        ServerMetrics::Get().admission_rejects.Add(1);
        rejected = UnavailableError("staging budget exhausted (" +
                                    std::to_string(in_flight) +
                                    " bytes in flight); retry");
      }
    }
    if (rejected.ok()) {
      const bool new_tag = session.lease->staged_by_tag.count(tag) == 0;
      session.lease->staged_by_tag[tag] += charge;
      session.lease->staged_total += charge;
      staged_bytes_.fetch_add(charge);
      ServerMetrics::Get().staged.Set(static_cast<int64_t>(staged_bytes_.load()));
      if (new_tag && session.lease->named()) {
        WriteJournalLocked();  // the lease is now staging a tag a restart must know about
      }
    }
  }
  if (!rejected.ok()) {
    // The dump runs outside mu_ (file I/O); the spool fd is already closed above.
    DumpAnomaly("admission-reject",
                "WRITE_BEGIN for " + tag + "/" + rel + " refused: " + rejected.ToString());
    return rejected;
  }
  session.write_open = true;
  session.write_tag = std::move(tag);
  session.write_rel = std::move(rel);
  session.spool_path = spool;
  session.write_total = total;
  session.write_spooled = resume;
  session.write_crc = crc;
  session.spool_fd = spool_fd;
  return OkStatus();
}

Status StoreServer::HandleWriteChunk(const WireFrame& frame, Session& session) {
  if (!session.write_open) {
    return FailedPreconditionError("WRITE_CHUNK without WRITE_BEGIN");
  }
  const uint8_t* data = frame.payload.data();
  size_t n = frame.payload.size();
  uint64_t offset = session.write_spooled;
  if (session.version >= 3) {
    ByteReader r(data, n);
    UCP_ASSIGN_OR_RETURN(offset, r.GetU64());
    data += sizeof(uint64_t);
    n -= sizeof(uint64_t);
  }
  if (offset > session.write_spooled) {
    return DataLossError("write stream gap for " + session.write_rel + ": chunk at " +
                         std::to_string(offset) + ", spooled " +
                         std::to_string(session.write_spooled));
  }
  // Idempotence: a re-sent chunk overlapping the acknowledged prefix contributes only its
  // unseen tail (usually nothing).
  const uint64_t skip = session.write_spooled - offset;
  if (skip >= n) {
    return OkStatus();
  }
  data += skip;
  n -= static_cast<size_t>(skip);
  if (session.write_spooled + n > session.write_total) {
    return DataLossError("write stream overruns declared size for " + session.write_rel);
  }
  UCP_RETURN_IF_ERROR(
      PwriteAll(session.spool_fd, data, n, session.write_spooled, session.spool_path));
  session.write_crc = Crc32Update(session.write_crc, data, n);
  session.write_spooled += n;
  return OkStatus();
}

Status StoreServer::HandleWriteEnd(const WireFrame& frame, Session& session) {
  if (!session.write_open) {
    return FailedPreconditionError("WRITE_END without WRITE_BEGIN");
  }
  session.write_open = false;
  ByteReader r(frame.payload.data(), frame.payload.size());
  UCP_ASSIGN_OR_RETURN(uint32_t want_crc, r.GetU32());
  if (session.write_spooled != session.write_total) {
    AbandonOpenWrite(session);
    return DataLossError("write stream for " + session.write_rel + " truncated: " +
                         std::to_string(session.write_spooled) + " of " +
                         std::to_string(session.write_total) + " bytes");
  }
  if (Crc32Finalize(session.write_crc) != want_crc) {
    // The spooled bytes are wrong end to end; resuming into them would re-publish the
    // corruption, so the spool dies with the error and a retry restarts from zero.
    AbandonOpenWrite(session);
    RemoveAll(session.spool_path).ok();
    ServerMetrics::Get().chunk_crc_failures.Add(1);
    return DataLossError("write stream CRC mismatch for " + session.write_rel);
  }
  if (::fsync(session.spool_fd) != 0) {
    AbandonOpenWrite(session);
    return IoError("fsync failed for spool " + session.spool_path);
  }
  AbandonOpenWrite(session);
  // Verified and durable: move the spool into the staging dir (same-filesystem rename,
  // through the fault injector like the direct-FS path's writes).
  const std::string dest = PathJoin(StagingDirForTag(store_.root(), session.write_tag),
                                    session.write_rel);
  UCP_RETURN_IF_ERROR(MakeDirs(ParentDir(dest)));
  return RenamePath(session.spool_path, dest);
}

Result<std::vector<uint8_t>> StoreServer::HandleWriteResume(const WireFrame& frame) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  UCP_ASSIGN_OR_RETURN(std::string tag, r.GetString());
  UCP_ASSIGN_OR_RETURN(std::string rel, r.GetString());
  if (!IsSafeStoreName(tag) || !IsSafeStoreRelPath(rel)) {
    return InvalidArgumentError("bad tag or file name in WRITE_RESUME");
  }
  uint64_t acked = 0;
  uint8_t complete = 0;
  const std::string staged = PathJoin(StagingDirForTag(store_.root(), tag), rel);
  const std::string spool = PathJoin(WipDirForTag(store_.root(), tag), rel);
  if (Result<uint64_t> size = FileSize(staged); size.ok()) {
    // WRITE_END already ran: the file is verified and staged in full.
    acked = *size;
    complete = 1;
  } else if (Result<uint64_t> spooled = FileSize(spool); spooled.ok()) {
    acked = *spooled;
  }
  ByteWriter w;
  w.PutU64(acked);
  w.PutU8(complete);
  return w.TakeBuffer();
}

Result<std::vector<uint8_t>> StoreServer::HandleSessionOpen(const WireFrame& frame,
                                                            Session& session) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  UCP_ASSIGN_OR_RETURN(std::string token, r.GetString());
  UCP_ASSIGN_OR_RETURN(uint32_t ttl_ms, r.GetU32());
  if (token.empty() || token.size() > 128) {
    return InvalidArgumentError("SESSION_OPEN lease token must be 1..128 bytes");
  }
  if (options_.max_lease_ttl_ms == 0) {
    return FailedPreconditionError("session leases are disabled on this server");
  }
  if (draining_.load()) {
    // Typed refusal with a retry hint (attached by HandleFrame): a lease granted during
    // drain would only be killed mid-save.
    return UnavailableError("server is draining; no new session leases");
  }
  const uint32_t ttl = std::min(std::max(ttl_ms, 1u), options_.max_lease_ttl_ms);
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<Lease> current = session.lease;
  if (current->named()) {
    return FailedPreconditionError("session already holds a lease");
  }
  if (current->staged_total > 0 || current->pinned_total > 0) {
    return FailedPreconditionError("SESSION_OPEN must precede staged writes");
  }
  std::shared_ptr<Lease> named;
  for (const auto& [id, lease] : leases_) {
    if (lease->token == token) {
      named = lease;
      break;
    }
  }
  uint8_t resumed = 0;
  if (named != nullptr) {
    // Re-adoption. If an older connection still claims the lease (it died without the
    // server noticing), it is stale by definition — the token holder is here. Kick it.
    if (named->bound_session != 0 && named->bound_session != session.id) {
      auto sit = sessions_.find(named->bound_session);
      if (sit != sessions_.end()) {
        // Its teardown sees bound_session != its id and leaves the lease alone.
        ::shutdown(sit->second->fd, SHUT_RDWR);
      }
    }
    resumed = 1;
    ServerMetrics::Get().leases_resumed.Add(1);
  } else {
    named = std::make_shared<Lease>();
    named->id = next_lease_id_++;
    named->token = token;
    leases_[named->id] = named;
  }
  named->ttl_ms.store(ttl);
  named->expires_at_ms.store(NowWallMs() + ttl);
  named->bound_session = session.id;
  leases_.erase(current->id);  // the implicit lease is subsumed (it held nothing)
  session.lease = named;
  ServerMetrics::Get().leases.Set(static_cast<int64_t>(leases_.size()));
  WriteJournalLocked();
  ByteWriter w;
  w.PutU8(resumed);
  w.PutU32(ttl);
  return w.TakeBuffer();
}

Result<std::vector<uint8_t>> StoreServer::HandleOpenRead(const WireFrame& frame,
                                                         Session& session) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  UCP_ASSIGN_OR_RETURN(std::string rel, r.GetString());
  UCP_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> source, store_.OpenRead(rel));
  OpenRead open;
  open.rel = rel;
  UCP_ASSIGN_OR_RETURN(open.index, ReadFileChunkIndex(*source));
  if (open.index.has_value()) {
    open.verified.resize(open.index->regions.size());
    for (size_t i = 0; i < open.index->regions.size(); ++i) {
      open.verified[i].assign(open.index->regions[i].chunk_crcs.size(), false);
    }
  }
  open.source = std::move(source);
  const uint64_t handle = session.next_handle++;
  const uint64_t size = open.source->size();
  session.reads[handle] = std::move(open);
  ByteWriter w;
  w.PutU64(handle);
  w.PutU64(size);
  return w.TakeBuffer();
}

Result<std::vector<uint8_t>> StoreServer::HandleReadRange(const WireFrame& frame,
                                                          Session& session) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  UCP_ASSIGN_OR_RETURN(uint64_t handle, r.GetU64());
  UCP_ASSIGN_OR_RETURN(uint64_t offset, r.GetU64());
  UCP_ASSIGN_OR_RETURN(uint32_t len, r.GetU32());
  auto it = session.reads.find(handle);
  if (it == session.reads.end()) {
    return InvalidArgumentError("READ_RANGE on unknown handle");
  }
  OpenRead& open = it->second;
  if (len > kMaxFramePayload) {
    return InvalidArgumentError("READ_RANGE larger than max frame");
  }
  // Overflow-safe: `offset + len` can wrap for a hostile u64 offset.
  const uint64_t size = open.source->size();
  if (offset > size || len > size - offset) {
    return OutOfRangeError("READ_RANGE past end of " + open.rel);
  }
  // Server-side verification: every chunk the range touches must pass its CRC before the
  // payload ships (each chunk checked at most once per handle).
  if (open.index.has_value()) {
    std::vector<uint8_t> chunk_buf;
    for (size_t ri = 0; ri < open.index->regions.size(); ++ri) {
      const ChunkRegion& region = open.index->regions[ri];
      const uint64_t lo = std::max<uint64_t>(offset, region.begin);
      const uint64_t hi = std::min<uint64_t>(offset + len, region.end);
      if (lo >= hi || region.chunk_bytes == 0) {
        continue;
      }
      const uint64_t c0 = (lo - region.begin) / region.chunk_bytes;
      const uint64_t c1 = (hi - 1 - region.begin) / region.chunk_bytes;
      for (uint64_t c = c0; c <= c1; ++c) {
        if (open.verified[ri][static_cast<size_t>(c)]) {
          continue;
        }
        const uint64_t chunk_begin = region.begin + c * region.chunk_bytes;
        const uint64_t chunk_end =
            std::min<uint64_t>(chunk_begin + region.chunk_bytes, region.end);
        chunk_buf.resize(static_cast<size_t>(chunk_end - chunk_begin));
        UCP_RETURN_IF_ERROR(
            open.source->ReadAt(chunk_begin, chunk_buf.data(), chunk_buf.size()));
        if (Crc32(chunk_buf.data(), chunk_buf.size()) !=
            region.chunk_crcs[static_cast<size_t>(c)]) {
          ServerMetrics::Get().chunk_crc_failures.Add(1);
          return DataLossError("per-tensor CRC mismatch in " + open.rel + " (chunk " +
                               std::to_string(c) + " of " +
                               std::to_string(region.chunk_crcs.size()) + ")");
        }
        open.verified[ri][static_cast<size_t>(c)] = true;
      }
    }
  }
  std::vector<uint8_t> out(len);
  UCP_RETURN_IF_ERROR(open.source->ReadAt(offset, out.data(), out.size()));
  return out;
}

bool StoreServer::HandleFrame(int fd, const WireFrame& frame, Session& session) {
  // v4 TRACE_CONTEXT prefix frame: stash the client's (trace_id, parent_span_id) for the
  // next request on this connection; no response frame. On a pre-v4 session it is a
  // protocol violation (the client would never have sent it).
  if (frame.op == WireOp::kTraceContext) {
    if (session.version < 4) {
      SendError(fd, FailedPreconditionError("TRACE_CONTEXT requires protocol v4")).ok();
      return false;
    }
    ByteReader r(frame.payload.data(), frame.payload.size());
    Result<uint64_t> trace_id = r.GetU64();
    Result<uint64_t> span_id =
        trace_id.ok() ? r.GetU64() : Result<uint64_t>(trace_id.status());
    if (!span_id.ok()) {
      SendError(fd, span_id.status()).ok();
      return false;
    }
    session.pending_trace_id = *trace_id;
    session.pending_span_id = *span_id;
    return true;
  }
  // Adopt the wire-propagated context (if any) around this RPC, so the server's handling
  // span parents under the client's RPC span — one trace across both processes.
  obs::TraceContext ctx;
  ctx.trace_id = session.pending_trace_id;
  ctx.span_id = session.pending_span_id;
  session.pending_trace_id = 0;
  session.pending_span_id = 0;
  obs::ScopedTraceContext trace_ctx(ctx);  // no-op when no context arrived
  const uint64_t start_ns = obs::TraceNowNs();
  bool keep_open;
  {
    UCP_TRACE_NAMED_SPAN(span, "store.server.rpc");
#if UCP_OBS_ENABLED
    if (obs::TraceEnabled()) {
      span.ArgS("op", WireOpName(frame.op));
      span.ArgI("session", static_cast<int64_t>(session.id));
      span.ArgI("lease", static_cast<int64_t>(session.lease->id));
      const std::string tag = RpcTagFor(frame, session.write_tag);
      if (!tag.empty()) {
        span.ArgS("tag", tag);
      }
    }
#endif
    keep_open = HandleFrameInner(fd, frame, session);
  }
  RpcSecondsFor(frame.op).Observe(static_cast<double>(obs::TraceNowNs() - start_ns) *
                                  1e-9);
  RpcBytesInFor(frame.op).Observe(static_cast<double>(frame.payload.size()));
  return keep_open;
}

bool StoreServer::HandleFrameInner(int fd, const WireFrame& frame, Session& session) {
  // WRITE_CHUNK is the streaming hot path: no response frame, just append to the spool.
  if (frame.op == WireOp::kWriteChunk) {
    const Status appended = HandleWriteChunk(frame, session);
    if (!appended.ok()) {
      AbandonOpenWrite(session);
      SendError(fd, appended).ok();
      return false;
    }
    return true;
  }

  Status status = OkStatus();
  Result<std::vector<uint8_t>> payload = std::vector<uint8_t>();
  WireOp reply_op = WireOp::kOk;
  switch (frame.op) {
    case WireOp::kPing:
      break;
    case WireOp::kListTags: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> job = r.GetString();
      if (!job.ok()) {
        status = job.status();
        break;
      }
      Result<std::vector<std::string>> tags = store_.ListTags(*job);
      if (!tags.ok()) {
        status = tags.status();
        break;
      }
      payload = EncodeStrList(*tags);
      reply_op = WireOp::kStrList;
      break;
    }
    case WireOp::kList: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> rel = r.GetString();
      if (!rel.ok()) {
        status = rel.status();
        break;
      }
      Result<std::vector<std::string>> entries = store_.List(*rel);
      if (!entries.ok()) {
        status = entries.status();
        break;
      }
      payload = EncodeStrList(*entries);
      reply_op = WireOp::kStrList;
      break;
    }
    case WireOp::kReadSmall: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> rel = r.GetString();
      if (!rel.ok()) {
        status = rel.status();
        break;
      }
      Result<std::string> text = store_.ReadSmallFile(*rel);
      if (!text.ok()) {
        status = text.status();
        break;
      }
      if (text->size() > kMaxFramePayload) {
        status = OutOfRangeError("file too large for READ_SMALL: " + *rel);
        break;
      }
      payload = std::vector<uint8_t>(text->begin(), text->end());
      reply_op = WireOp::kBytes;
      break;
    }
    case WireOp::kOpenRead: {
      payload = HandleOpenRead(frame, session);
      if (!payload.ok()) {
        status = payload.status();
      }
      reply_op = WireOp::kOpenReadOk;
      break;
    }
    case WireOp::kReadRange: {
      payload = HandleReadRange(frame, session);
      if (!payload.ok()) {
        status = payload.status();
      }
      reply_op = WireOp::kBytes;
      break;
    }
    case WireOp::kCloseRead: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<uint64_t> handle = r.GetU64();
      if (!handle.ok()) {
        status = handle.status();
        break;
      }
      session.reads.erase(*handle);
      break;
    }
    case WireOp::kExists: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> rel = r.GetString();
      if (!rel.ok()) {
        status = rel.status();
        break;
      }
      Result<bool> exists = store_.Exists(*rel);
      if (!exists.ok()) {
        status = exists.status();
        break;
      }
      ByteWriter w;
      w.PutU8(*exists ? 1 : 0);
      payload = w.TakeBuffer();
      reply_op = WireOp::kBool;
      break;
    }
    case WireOp::kResetStaging: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> tag = r.GetString();
      status = tag.ok() ? store_.ResetTagStaging(*tag) : tag.status();
      if (status.ok()) {
        // The reset discarded this tag's staging — other tags' saves on this lease keep
        // their admitted budget.
        std::lock_guard<std::mutex> lock(mu_);
        ReleaseStagedBytesForTagLocked(*session.lease, *tag);
        ReleaseLeasePinsForTagLocked(*session.lease, *tag);
        if (session.lease->named()) {
          WriteJournalLocked();
        }
      }
      break;
    }
    case WireOp::kWriteBegin:
      status = HandleWriteBegin(frame, session);
      break;
    case WireOp::kWriteEnd:
      status = HandleWriteEnd(frame, session);
      break;
    case WireOp::kCommitTag: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> tag = r.GetString();
      Result<std::string> meta = tag.ok() ? r.GetString() : Result<std::string>(tag.status());
      status = meta.ok() ? store_.CommitTag(*tag, *meta) : meta.status();
      if (status.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ReleaseStagedBytesForTagLocked(*session.lease, *tag);
        ReleaseLeasePinsForTagLocked(*session.lease, *tag);
        if (session.lease->named()) {
          WriteJournalLocked();
        }
      } else {
        DumpAnomaly("commit-failure",
                    "COMMIT_TAG " + (tag.ok() ? *tag : std::string("<undecoded>")) +
                        " failed: " + status.ToString());
      }
      break;
    }
    case WireOp::kAbortTag: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> tag = r.GetString();
      status = tag.ok() ? store_.AbortTag(*tag) : tag.status();
      if (status.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ReleaseStagedBytesForTagLocked(*session.lease, *tag);
        ReleaseLeasePinsForTagLocked(*session.lease, *tag);
        if (session.lease->named()) {
          WriteJournalLocked();
        }
      }
      break;
    }
    case WireOp::kDeleteTag: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> tag = r.GetString();
      status = tag.ok() ? store_.DeleteTag(*tag) : tag.status();
      break;
    }
    case WireOp::kGc: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> job = r.GetString();
      Result<uint32_t> keep = job.ok() ? r.GetU32() : Result<uint32_t>(job.status());
      Result<uint8_t> dry = keep.ok() ? r.GetU8() : Result<uint8_t>(keep.status());
      if (!dry.ok()) {
        status = dry.status();
        break;
      }
      Result<GcReport> report =
          store_.Gc(*job, static_cast<int>(*keep), *dry != 0);
      if (!report.ok()) {
        status = report.status();
        break;
      }
      ByteWriter w;
      w.PutU32(static_cast<uint32_t>(report->removed.size()));
      for (const std::string& tag : report->removed) {
        w.PutString(tag);
      }
      w.PutU32(static_cast<uint32_t>(report->kept.size()));
      for (const std::string& tag : report->kept) {
        w.PutString(tag);
      }
      payload = w.TakeBuffer();
      reply_op = WireOp::kGcReport;
      break;
    }
    case WireOp::kSweepDebris: {
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> job = r.GetString();
      Result<int> removed = job.ok() ? store_.SweepStagingDebris(*job)
                                     : Result<int>(job.status());
      if (!removed.ok()) {
        status = removed.status();
        break;
      }
      ByteWriter w;
      w.PutI64(*removed);
      payload = w.TakeBuffer();
      reply_op = WireOp::kInt;
      break;
    }
    case WireOp::kChunkQuery: {
      if (session.version < 2) {
        status = FailedPreconditionError("CHUNK_QUERY requires protocol v2");
        break;
      }
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<std::string> tag = r.GetString();
      Result<uint32_t> count = tag.ok() ? r.GetU32() : Result<uint32_t>(tag.status());
      if (!count.ok()) {
        status = count.status();
        break;
      }
      if (!IsSafeStoreName(*tag)) {
        status = InvalidArgumentError("unsafe tag name: " + *tag);
        break;
      }
      // Admission: pins are server memory and block chunk reclaim, so they are budgeted
      // per lease like staged bytes. The check runs before anything is pinned, against
      // the declared count — a hostile count either fails here or in the reader below.
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (session.lease->pinned_total + *count > options_.max_pinned_chunks) {
          status = FailedPreconditionError(
              "session pinned-chunk budget exceeded: " +
              std::to_string(session.lease->pinned_total) + " held + " +
              std::to_string(*count) + " requested > " +
              std::to_string(options_.max_pinned_chunks));
        }
      }
      if (!status.ok()) {
        break;
      }
      // The payload size already bounds count * 16 bytes; a forged count fails in the
      // reader.
      std::vector<ChunkIndex::ChunkProbe> probes;
      probes.reserve(*count);
      for (uint32_t i = 0; i < *count; ++i) {
        ChunkIndex::ChunkProbe probe;
        Result<uint64_t> d = r.GetU64();
        Result<uint32_t> raw_size = d.ok() ? r.GetU32() : Result<uint32_t>(d.status());
        Result<uint32_t> raw_crc =
            raw_size.ok() ? r.GetU32() : Result<uint32_t>(raw_size.status());
        if (!raw_crc.ok()) {
          status = raw_crc.status();
          break;
        }
        probe.digest = *d;
        probe.raw_size = *raw_size;
        probe.raw_crc = *raw_crc;
        probes.push_back(probe);
      }
      if (!status.ok()) {
        break;
      }
      // Pins are taken before presence is answered so a concurrent sweep can't delete a
      // chunk the client was just told exists (invariant I6).
      std::vector<uint8_t> present =
          ChunkIndex::ForRoot(store_.root())->PinAndQuery(*tag, probes);
      {
        std::lock_guard<std::mutex> lock(mu_);
        session.lease->pinned_tags.insert(*tag);
        session.lease->pinned_by_tag[*tag] += probes.size();
        session.lease->pinned_total += probes.size();
      }
      ByteWriter w;
      w.PutU32(static_cast<uint32_t>(present.size()));
      for (uint8_t p : present) {
        w.PutU8(p);
      }
      payload = w.TakeBuffer();
      reply_op = WireOp::kChunkMask;
      break;
    }
    case WireOp::kChunkPut: {
      if (session.version < 2) {
        status = FailedPreconditionError("CHUNK_PUT requires protocol v2");
        break;
      }
      // Chunk puts deliberately bypass the staged-bytes admission budget: each put is
      // bounded by the frame cap, decode-verified, and written straight to the index with
      // no server-side accumulation — there is no declared-total buffer to defend, unlike
      // WRITE_BEGIN streams.
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<uint64_t> digest = r.GetU64();
      if (!digest.ok()) {
        status = digest.status();
        break;
      }
      if (frame.payload.size() < 8 + kChunkHeaderBytes) {
        status = DataLossError("CHUNK_PUT frame too short for a chunk object");
        break;
      }
      status = ChunkIndex::ForRoot(store_.root())
                   ->PutEncoded(*digest, frame.payload.data() + 8,
                                frame.payload.size() - 8);
      break;
    }
    case WireOp::kSessionOpen: {
      if (session.version < 3) {
        status = FailedPreconditionError("SESSION_OPEN requires protocol v3");
        break;
      }
      payload = HandleSessionOpen(frame, session);
      if (!payload.ok()) {
        status = payload.status();
      }
      reply_op = WireOp::kSessionOpenOk;
      break;
    }
    case WireOp::kSessionRenew: {
      if (session.version < 3) {
        status = FailedPreconditionError("SESSION_RENEW requires protocol v3");
        break;
      }
      if (!session.lease->named()) {
        status = FailedPreconditionError("SESSION_RENEW without a lease");
        break;
      }
      if (draining_.load()) {
        // Drain stops extending TTLs: the lease keeps whatever time it has left.
        status = UnavailableError("server is draining; lease not renewed");
        break;
      }
      session.lease->expires_at_ms.store(NowWallMs() + session.lease->ttl_ms.load());
      break;
    }
    case WireOp::kWriteResume: {
      if (session.version < 3) {
        status = FailedPreconditionError("WRITE_RESUME requires protocol v3");
        break;
      }
      payload = HandleWriteResume(frame);
      if (!payload.ok()) {
        status = payload.status();
      }
      reply_op = WireOp::kWriteResumeOk;
      break;
    }
    case WireOp::kServerStat: {
      ByteWriter w;
      w.PutU32(std::min(kWireVersion, options_.max_wire_version));
      {
        std::lock_guard<std::mutex> lock(mu_);
        w.PutU32(static_cast<uint32_t>(sessions_.size()));
        uint32_t named = 0;
        for (const auto& [id, lease] : leases_) {
          named += lease->named() ? 1 : 0;
        }
        w.PutU32(named);
      }
      w.PutU64(staged_bytes_.load());
      w.PutU8(draining_.load() ? 1 : 0);
      payload = w.TakeBuffer();
      reply_op = WireOp::kServerStatOk;
      break;
    }
    case WireOp::kMetricsDump: {
      if (session.version < 4) {
        status = FailedPreconditionError("METRICS_DUMP requires protocol v4");
        break;
      }
      ByteReader r(frame.payload.data(), frame.payload.size());
      Result<uint8_t> format = r.GetU8();
      if (!format.ok()) {
        status = format.status();
        break;
      }
      std::string text =
          *format == 1 ? obs::DumpMetricsPrometheus() : obs::DumpMetricsText();
      if (text.size() > kMaxFramePayload) {
        text.resize(kMaxFramePayload);  // a metrics page this large is its own anomaly
      }
      payload = std::vector<uint8_t>(text.begin(), text.end());
      reply_op = WireOp::kBytes;
      break;
    }
    default:
      status = UnimplementedError("unknown wire op " +
                                  std::to_string(static_cast<int>(frame.op)));
      break;
  }

  Status sent;
  if (!status.ok()) {
    // Drain-mode lease refusals carry a machine-readable retry-after hint so clients
    // back off toward another daemon (or the post-restart one) instead of spinning.
    const bool drain_refusal =
        draining_.load() && status.code() == StatusCode::kUnavailable &&
        (frame.op == WireOp::kSessionOpen || frame.op == WireOp::kSessionRenew);
    sent = SendError(fd, status, drain_refusal ? 1000u : 0u);
  } else {
    sent = SendFrame(fd, reply_op, *payload);
    ServerMetrics::Get().bytes_out.Add(9 + payload->size() + 4);
  }
  return sent.ok();
}

void StoreServer::DumpAnomaly(const std::string& label, const std::string& detail) {
  if (!options_.anomaly_flightrec) {
    return;
  }
  {
    // Cap dossiers per label: the first few occurrences carry the forensic value, the
    // rest would only grind the disk while the anomaly repeats.
    constexpr int kMaxDumpsPerLabel = 4;
    std::lock_guard<std::mutex> lock(anomaly_mu_);
    int& count = anomaly_counts_[label];
    if (count >= kMaxDumpsPerLabel) {
      return;
    }
    ++count;
  }
  UCP_TRACE_INSTANT("store.server.anomaly",
                    obs::TraceArgs().S("label", label).S("detail", detail));
  std::string trace_path;
  std::string err;
  if (obs::DumpFlightRecord(options_.root, "serverd-" + label, &trace_path, &err)) {
    UCP_LOG(Warning) << "store server anomaly (" << label << "): " << detail
                     << "; flight record at " << trace_path;
  } else {
    UCP_LOG(Warning) << "store server anomaly (" << label << "): " << detail
                     << "; flight record failed: " << err;
  }
}

void StoreServer::HttpLoop() {
  while (!stopping_.load()) {
    const int http_fd = http_fd_.load();
    if (http_fd < 0) {
      return;
    }
    const int fd = ::accept(http_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    // One tiny blocking exchange per connection: read the request head, answer, close.
    char buf[2048];
    const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
    std::string body;
    std::string code = "200 OK";
    std::string content_type = "text/plain; version=0.0.4";
    if (n > 0) {
      buf[n] = '\0';
      const std::string head(buf);
      // "GET <target> HTTP/1.1..." — split the target into path and query string.
      std::string target;
      if (head.rfind("GET ", 0) == 0) {
        const size_t end = head.find_first_of(" \r\n", 4);
        target = head.substr(4, end == std::string::npos ? std::string::npos : end - 4);
      }
      const size_t qmark = target.find('?');
      const std::string path = target.substr(0, qmark);
      const std::string query =
          qmark == std::string::npos ? std::string() : target.substr(qmark + 1);
      if (path == "/healthz") {
        // Machine-readable liveness: drain state, live leases, staged bytes, journal
        // churn — what an operator (or orchestrator) needs before routing saves here.
        JsonObject h;
        h["status"] = "ok";
        h["draining"] = draining_.load();
        {
          std::lock_guard<std::mutex> lock(mu_);
          h["sessions"] = static_cast<int64_t>(sessions_.size());
          int64_t named = 0;
          for (const auto& [id, lease] : leases_) {
            named += lease->named() ? 1 : 0;
          }
          h["leases"] = named;
        }
        h["staged_bytes"] = static_cast<int64_t>(staged_bytes_.load());
        h["journal_seq"] = static_cast<int64_t>(journal_seq_.load());
        h["wire_version"] =
            static_cast<int64_t>(std::min(kWireVersion, options_.max_wire_version));
        body = Json(std::move(h)).Dump() + "\n";
        content_type = "application/json";
      } else if (path == "/metrics") {
        body = query.find("format=prometheus") != std::string::npos
                   ? obs::DumpMetricsPrometheus()
                   : obs::DumpMetricsText();
      } else {
        code = "404 Not Found";
        body = "not found\n";
      }
    } else {
      ::close(fd);
      continue;
    }
    const std::string response = "HTTP/1.1 " + code + "\r\nContent-Type: " +
                                 content_type + "\r\nContent-Length: " +
                                 std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
                                 body;
    size_t off = 0;
    while (off < response.size()) {
      const ssize_t sent = ::send(fd, response.data() + off, response.size() - off, 0);
      if (sent <= 0) {
        break;
      }
      off += static_cast<size_t>(sent);
    }
    ::close(fd);
  }
}

}  // namespace ucp
