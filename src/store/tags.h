// Checkpoint tag / file-name grammar and the staging-directory naming convention.
//
// Lives at the store layer (below the trainer-coupled checkpoint code) because both the
// direct-FS backend and ucp_serverd must agree on what a tag, a job namespace, and a
// staging sibling look like — the wire protocol ships tag names, never paths.

#ifndef UCP_SRC_STORE_TAGS_H_
#define UCP_SRC_STORE_TAGS_H_

#include <cstdint>
#include <string>

namespace ucp {

// Written last inside a tag directory; a tag without it is an aborted save.
inline constexpr char kCompleteMarker[] = "complete";
// Suffix of the sibling directory a save writes into before the commit rename.
inline constexpr char kStagingSuffix[] = ".staging";
// Suffix of the spool sibling where the daemon appends in-flight streamed uploads before
// WRITE_END verifies and moves them into the staging dir. Keeping partial bytes outside
// `.staging` means a commit can never publish a half-received file, while the spool
// survives connection drops and daemon restarts for WRITE_RESUME.
inline constexpr char kWipSuffix[] = ".wip";

// ---- Job namespaces --------------------------------------------------------------------
//
// Several training jobs may share one checkpoint store. Each job owns a tag namespace: the
// default job ("") keeps the historical `global_stepN` names and the plain `latest`
// pointer; job "j" tags are named `j.global_stepN` with a `latest.j` pointer. Every
// reader/retention/debris path is namespace-scoped, so one job's GC, staging sweep, or
// resume can never touch another job's files.

// Job ids are [A-Za-z0-9_-], 1..64 chars. The empty id names the default namespace and is
// also valid (it is every pre-multi-job caller).
bool IsValidJobId(const std::string& job);

// "" for the default job, "<job>." otherwise.
std::string JobTagPrefix(const std::string& job);

// "latest" for the default job, "latest.<job>" otherwise.
std::string LatestFileName(const std::string& job);

// Parses a directory-entry name as a checkpoint tag: `global_stepN` or
// `<job>.global_stepN`. Returns true and fills job/iteration on match. Names with extra
// suffixes (".staging", ".ucp", ".quarantined") never match.
bool ParseTagName(const std::string& name, std::string* job, int64_t* iteration);

// Tag helpers ("global_step123" / "jobA.global_step123").
std::string TagForIteration(int64_t iteration);
std::string TagForIteration(const std::string& job, int64_t iteration);

// File-name helpers (shared with the UCP converter).
std::string ModelStatesFileName(int tp, int pp, int sp);
std::string OptimStatesFileName(int dp, int tp, int pp, int sp);

// Name of the staging sibling a save of `tag` writes into before committing.
std::string StagingDirForTag(const std::string& dir, const std::string& tag);

// Name of the spool sibling the daemon streams `tag`'s uploads into (kWipSuffix).
std::string WipDirForTag(const std::string& dir, const std::string& tag);

// Tag names cross the wire and become path components under the store root on the other
// side; this is the server's gate against traversal ("..", '/', empty, control bytes).
// Accepts anything ListDir could legitimately return for a tag-like entry.
bool IsSafeStoreName(const std::string& name);

// Relative paths inside a store ("<tag>/<file>"): every '/'-separated component must pass
// IsSafeStoreName.
bool IsSafeStoreRelPath(const std::string& rel);

}  // namespace ucp

#endif  // UCP_SRC_STORE_TAGS_H_
