#include "src/store/remote_store.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/crc32.h"
#include "src/common/fs.h"
#include "src/common/lz.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/store/tags.h"

namespace ucp {

namespace {

// v3 servers may append a u32 retry-after hint (milliseconds) to an error frame —
// currently only on drain-mode lease refusals. Older frames simply lack the suffix.
Status DecodeError(const WireFrame& frame, uint32_t* retry_after_ms = nullptr) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  UCP_ASSIGN_OR_RETURN(uint8_t code, r.GetU8());
  UCP_ASSIGN_OR_RETURN(std::string message, r.GetString());
  if (retry_after_ms != nullptr && r.remaining() >= 4) {
    Result<uint32_t> hint = r.GetU32();
    if (hint.ok()) {
      *retry_after_ms = *hint;
    }
  }
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return DataLossError("malformed error frame (code " + std::to_string(code) + "): " +
                         message);
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

Result<std::vector<std::string>> DecodeStrList(const WireFrame& frame) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  UCP_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  std::vector<std::string> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    UCP_ASSIGN_OR_RETURN(std::string s, r.GetString());
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<uint8_t> EncodeStr(const std::string& s) {
  ByteWriter w;
  w.PutString(s);
  return w.TakeBuffer();
}

// 128-bit hex lease token. The token is the session's identity across reconnects, so it
// must be unguessable enough that another client can't adopt (and release) our staging.
std::string RandomLeaseToken() {
  static const char kHex[] = "0123456789abcdef";
  std::random_device rd;
  std::string out;
  out.reserve(32);
  for (int i = 0; i < 4; ++i) {
    uint32_t v = rd();
    for (int j = 0; j < 8; ++j) {
      out.push_back(kHex[v & 0xF]);
      v >>= 4;
    }
  }
  return out;
}

struct HelloResult {
  int fd = -1;
  uint64_t session_id = 0;
  uint32_t version = 0;
  uint32_t max_frame = kMaxFramePayload;
};

// Dial + HELLO handshake offering [kWireMinVersion, max_version]. On success the fd is
// the caller's to close.
Status DialAndHello(const std::string& endpoint, uint32_t max_version, HelloResult* out) {
  UCP_ASSIGN_OR_RETURN(Endpoint ep, ParseEndpoint(endpoint));
  UCP_ASSIGN_OR_RETURN(int fd, DialEndpoint(ep));
  ByteWriter hello;
  hello.PutU32(kWireMinVersion);
  hello.PutU32(max_version);
  Status sent = SendFrame(fd, WireOp::kHello, hello.buffer());
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  Result<WireFrame> reply = RecvFrame(fd);
  if (!reply.ok()) {
    ::close(fd);
    return reply.status();
  }
  if (reply->op == WireOp::kError) {
    const Status err = DecodeError(*reply);
    ::close(fd);
    return err;
  }
  if (reply->op != WireOp::kHelloOk) {
    ::close(fd);
    return DataLossError("handshake: unexpected frame type from server");
  }
  ByteReader r(reply->payload.data(), reply->payload.size());
  Result<uint32_t> version = r.GetU32();
  Result<uint64_t> session = r.GetU64();
  Result<uint32_t> max_frame = r.GetU32();
  if (!version.ok() || !session.ok() || !max_frame.ok()) {
    ::close(fd);
    return DataLossError("handshake: malformed HELLO_OK payload");
  }
  if (*version < kWireMinVersion || *version > max_version) {
    ::close(fd);
    return FailedPreconditionError("server negotiated unsupported protocol version " +
                                   std::to_string(*version));
  }
  out->fd = fd;
  out->session_id = *session;
  out->version = *version;
  out->max_frame = std::min(*max_frame, kMaxFramePayload);
  return OkStatus();
}

// SESSION_OPEN exchange on a raw fd (used both at Connect and inside reconnect, before
// the fd is installed as the store's connection).
Status SessionOpenOnFd(int fd, uint32_t max_frame, const std::string& token,
                       uint32_t ttl_ms, uint8_t* resumed, uint32_t* retry_after_ms) {
  ByteWriter req;
  req.PutString(token);
  req.PutU32(ttl_ms);
  UCP_RETURN_IF_ERROR(SendFrame(fd, WireOp::kSessionOpen, req.buffer()));
  UCP_ASSIGN_OR_RETURN(WireFrame reply, RecvFrame(fd, max_frame));
  if (reply.op == WireOp::kError) {
    return DecodeError(reply, retry_after_ms);
  }
  if (reply.op != WireOp::kSessionOpenOk) {
    return DataLossError("unexpected SESSION_OPEN response frame type");
  }
  ByteReader r(reply.payload.data(), reply.payload.size());
  UCP_ASSIGN_OR_RETURN(uint8_t res, r.GetU8());
  UCP_ASSIGN_OR_RETURN(uint32_t granted, r.GetU32());
  (void)granted;  // the server-clamped TTL; informational
  if (resumed != nullptr) {
    *resumed = res;
  }
  return OkStatus();
}

}  // namespace

// Keeps the connection alive (shared_ptr) past the owning Store's death, so views opened
// through a store can outlive it — mirroring how a RandomAccessFile outlives the path
// string it was opened from. Remembers its rel path so a post-reconnect read (the server-
// side handle died with the old session) can transparently reopen.
class RemoteByteSource final : public ByteSource {
 public:
  RemoteByteSource(std::shared_ptr<RemoteStore> store, uint64_t handle, uint64_t epoch,
                   uint64_t size, std::string rel, std::string name)
      : store_(std::move(store)), handle_(handle), epoch_(epoch), size_(size),
        rel_(std::move(rel)), name_(std::move(name)) {}
  ~RemoteByteSource() override { store_->CloseRead(*this); }

  uint64_t size() const override { return size_; }
  const std::string& name() const override { return name_; }
  Status ReadAt(uint64_t offset, void* out, size_t size) override {
    return store_->ReadRange(*this, offset, out, size);
  }

 private:
  friend class RemoteStore;
  std::shared_ptr<RemoteStore> store_;
  uint64_t handle_;
  uint64_t epoch_;  // conn_epoch_ the handle was opened under
  uint64_t size_;
  std::string rel_;
  std::string name_;
};

// Streams one staged file per WriteFile call: BEGIN (admission-checked, retried on
// backpressure), CHUNK*, END carrying the whole-file CRC the server verifies before the
// bytes become a staged file. Under a lease, a mid-stream transport failure reconnects
// and resumes from the server-acknowledged offset instead of failing the save.
class RemoteStoreWriter final : public StoreWriter {
 public:
  RemoteStoreWriter(std::shared_ptr<RemoteStore> store, std::string tag)
      : StoreWriter(std::move(tag)), store_(std::move(store)) {}

  Status WriteFile(const std::string& rel, const void* data, size_t size) override {
    std::lock_guard<std::mutex> lock(store_->mu_);
    return store_->WriteFileLocked(tag(), rel, data, size);
  }

  bool SupportsChunked() const override { return store_->negotiated_version() >= 2; }

  // Incremental path: CHUNK_QUERY pins + asks which digests the daemon already holds,
  // then only the missing chunks ship — compressed *client-side* (the whole point of wire
  // compression is fewer bytes on the socket; the daemon stores the object as received
  // after verifying it decodes). The manifest is accumulated here and staged as a normal
  // file by FinalizeManifest.
  Result<ChunkedWriteStats> WriteFileChunked(const std::string& rel, const void* data,
                                             size_t size,
                                             const std::vector<uint64_t>& digests,
                                             bool compress, uint64_t inherited) override {
    if (!SupportsChunked()) {
      return StoreWriter::WriteFileChunked(rel, data, size, digests, compress, inherited);
    }
    if (!IsSafeStoreRelPath(rel)) {
      return InvalidArgumentError("bad store file name: " + rel);
    }
    if (digests.size() != (size + kManifestChunkBytes - 1) / kManifestChunkBytes) {
      return InvalidArgumentError("digest count does not match size for " + rel);
    }
    ChunkedWriteStats stats;
    stats.bytes_total = size;
    stats.chunks_total = digests.size();
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    // Per-chunk raw CRCs ride the query so the server answers "present" only for objects
    // that verifiably hold the same content (not merely the same 64-bit digest), and are
    // reused below when the chunk ships. Queries are batched to stay under the wire frame
    // cap whatever the file size.
    std::vector<uint32_t> chunk_crcs(digests.size());
    for (size_t i = 0; i < digests.size(); ++i) {
      const size_t off = i * kManifestChunkBytes;
      chunk_crcs[i] = Crc32(bytes + off, std::min(kManifestChunkBytes, size - off));
    }
    constexpr size_t kQueryBatch = 65536;  // 16 B/entry -> 1 MiB per frame
    std::vector<uint8_t> present_all;
    present_all.reserve(digests.size());
    for (size_t begin = 0; begin < digests.size(); begin += kQueryBatch) {
      const size_t batch = std::min(kQueryBatch, digests.size() - begin);
      ByteWriter query;
      query.PutString(tag());
      query.PutU32(static_cast<uint32_t>(batch));
      for (size_t i = begin; i < begin + batch; ++i) {
        const size_t off = i * kManifestChunkBytes;
        query.PutU64(digests[i]);
        query.PutU32(static_cast<uint32_t>(std::min(kManifestChunkBytes, size - off)));
        query.PutU32(chunk_crcs[i]);
      }
      UCP_ASSIGN_OR_RETURN(WireFrame mask_frame,
                           store_->RoundtripWithRetry(WireOp::kChunkQuery, query.buffer(),
                                                      WireOp::kChunkMask));
      ByteReader mask(mask_frame.payload.data(), mask_frame.payload.size());
      UCP_ASSIGN_OR_RETURN(uint32_t count, mask.GetU32());
      if (count != batch) {
        return DataLossError("CHUNK_MASK count mismatch from " + store_->endpoint_);
      }
      for (uint32_t i = 0; i < count; ++i) {
        UCP_ASSIGN_OR_RETURN(uint8_t present, mask.GetU8());
        present_all.push_back(present);
      }
    }
    for (size_t i = 0; i < digests.size(); ++i) {
      if (present_all[i] != 0) {
        ++stats.chunks_deduped;
        continue;
      }
      const size_t off = i * kManifestChunkBytes;
      const size_t n = std::min(kManifestChunkBytes, size - off);
      const uint32_t raw_crc = chunk_crcs[i];
      std::vector<uint8_t> encoded;
      if (compress) {
        std::vector<uint8_t> packed;
        if (LzCompress(bytes + off, n, &packed) == LzCompressOutcome::kCompressed) {
          encoded = EncodeChunkObject(ChunkCodec::kLz, static_cast<uint32_t>(n), raw_crc,
                                      packed.data(), packed.size());
          ++stats.chunks_compressed;
        }
      }
      if (encoded.empty()) {
        encoded = EncodeChunkObject(ChunkCodec::kRaw, static_cast<uint32_t>(n), raw_crc,
                                    bytes + off, n);
      }
      ByteWriter put;
      put.PutU64(digests[i]);
      put.PutBytes(encoded.data(), encoded.size());
      UCP_RETURN_IF_ERROR(
          store_->RoundtripWithRetry(WireOp::kChunkPut, put.buffer(), WireOp::kOk)
              .status());
      stats.bytes_written += encoded.size();
    }
    ChunkManifestEntry entry;
    entry.name = rel;
    entry.size = size;
    entry.crc32 = Crc32(data, size);
    entry.chunks = digests;
    entry.inherited = inherited;
    entries_.push_back(std::move(entry));
    return stats;
  }

  Status FinalizeManifest(const std::string& parent_tag) override {
    if (entries_.empty()) {
      return OkStatus();  // nothing was chunked (v1 peer fallback) — no manifest
    }
    ChunkManifest manifest;
    manifest.parent = parent_tag;
    manifest.files = std::move(entries_);
    entries_.clear();
    const std::string body = SerializeChunkManifest(manifest);
    return WriteFile(kChunkManifestName, body.data(), body.size());
  }

 private:
  std::shared_ptr<RemoteStore> store_;
  std::vector<ChunkManifestEntry> entries_;
};

Result<std::shared_ptr<RemoteStore>> RemoteStore::Connect(const std::string& endpoint) {
  return Connect(endpoint, RemoteStoreOptions{});
}

Result<std::shared_ptr<RemoteStore>> RemoteStore::Connect(
    const std::string& endpoint, const RemoteStoreOptions& opts) {
  RemoteStoreOptions options = opts;
  options.max_version =
      std::min(std::max(options.max_version, kWireMinVersion), kWireVersion);
  HelloResult hs;
  UCP_RETURN_IF_ERROR(DialAndHello(endpoint, options.max_version, &hs));
  std::string token;
  if (hs.version >= 3 && options.lease_ttl_ms > 0) {
    token = RandomLeaseToken();
    Status opened = SessionOpenOnFd(hs.fd, hs.max_frame, token, options.lease_ttl_ms,
                                    /*resumed=*/nullptr, /*retry_after_ms=*/nullptr);
    if (!opened.ok()) {
      if (opened.code() == StatusCode::kFailedPrecondition) {
        // Leases disabled server-side: fall back to release-on-disconnect semantics.
        token.clear();
      } else {
        ::close(hs.fd);
        return opened;
      }
    }
  }
  return std::shared_ptr<RemoteStore>(new RemoteStore(hs.fd, endpoint, hs.session_id,
                                                      hs.max_frame, hs.version, options,
                                                      std::move(token)));
}

RemoteStore::~RemoteStore() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

uint64_t RemoteStore::session_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return session_id_;
}

uint32_t RemoteStore::negotiated_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

void RemoteStore::CloseForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  options_.reconnect = false;
  CloseFdLocked();
}

void RemoteStore::CloseFdLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<WireFrame> RemoteStore::ExchangeLocked(WireOp op,
                                              const std::vector<uint8_t>& payload,
                                              WireOp ok_op) {
  // The client RPC span. While it lives it is the thread context's innermost span, so
  // the v4 header below carries *its* id as parent — the server's handling span becomes
  // its child in the merged trace.
  UCP_TRACE_NAMED_SPAN(span, "store.client.rpc");
#if UCP_OBS_ENABLED
  if (obs::TraceEnabled()) {
    span.ArgS("op", WireOpName(op));
  }
#endif
  const uint64_t start_ns = obs::TraceNowNs();
  Result<WireFrame> reply = [&]() -> Result<WireFrame> {
    if (fd_ < 0) {
      return UnavailableError("connection to " + endpoint_ + " is closed");
    }
    // v4: ship the thread's trace context ahead of the request. Sent only when a logical
    // operation installed a context (a headerless request is simply unattributed).
    const obs::TraceContext ctx = obs::CurrentTraceContext();
    if (version_ >= 4 && ctx.valid()) {
      ByteWriter hdr;
      hdr.PutU64(ctx.trace_id);
      hdr.PutU64(ctx.span_id);
      Status hdr_sent = SendFrame(fd_, WireOp::kTraceContext, hdr.buffer());
      if (!hdr_sent.ok()) {
        CloseFdLocked();
        return hdr_sent;
      }
    }
    Status sent = SendFrame(fd_, op, payload);
    if (!sent.ok()) {
      CloseFdLocked();
      return sent;
    }
    Result<WireFrame> got = RecvFrame(fd_, max_frame_);
    if (!got.ok()) {
      CloseFdLocked();
      return got.status();
    }
    if (got->op == WireOp::kError) {
      return DecodeError(*got);
    }
    if (got->op != ok_op) {
      return DataLossError("unexpected response frame type " +
                           std::to_string(static_cast<int>(got->op)) + " from " +
                           endpoint_);
    }
    return got;
  }();
  // store.client.rpc.<op>.seconds — the client-side latency twin of the server's per-op
  // histograms (includes the send, the server's handling, and the reply).
  obs::MetricsRegistry::Global()
      .GetHistogram(std::string("store.client.rpc.") + WireOpName(op) + ".seconds")
      .Observe(static_cast<double>(obs::TraceNowNs() - start_ns) * 1e-9);
  return reply;
}

Result<WireFrame> RemoteStore::RoundtripLocked(WireOp op,
                                               const std::vector<uint8_t>& payload,
                                               WireOp ok_op) {
  Result<WireFrame> reply = ExchangeLocked(op, payload, ok_op);
  // `fd_ < 0` after a failed exchange means the transport died (a typed error *response*
  // leaves the connection healthy). These simple request/response ops are idempotent, so
  // re-running them on a freshly re-leased connection is safe.
  for (int attempt = 0; !reply.ok() && fd_ < 0 && CanReconnectLocked() && attempt < 2;
       ++attempt) {
    UCP_RETURN_IF_ERROR(ReconnectLocked());
    reply = ExchangeLocked(op, payload, ok_op);
  }
  return reply;
}

Result<WireFrame> RemoteStore::Roundtrip(WireOp op, const std::vector<uint8_t>& payload,
                                         WireOp ok_op) {
  std::lock_guard<std::mutex> lock(mu_);
  return RoundtripLocked(op, payload, ok_op);
}

Result<WireFrame> RemoteStore::RoundtripWithRetry(WireOp op,
                                                  const std::vector<uint8_t>& payload,
                                                  WireOp ok_op) {
  const IoRetryPolicy policy = GetIoRetryPolicy();
  std::chrono::milliseconds backoff = policy.base_backoff;
  static obs::Counter& transient =
      obs::MetricsRegistry::Global().GetCounter("io.retry.transient_errors");
  static obs::Counter& retries =
      obs::MetricsRegistry::Global().GetCounter("io.retry.retries");
  static obs::Counter& giveups =
      obs::MetricsRegistry::Global().GetCounter("io.retry.giveups");
  std::lock_guard<std::mutex> lock(mu_);
  for (int attempt = 1;; ++attempt) {
    Result<WireFrame> reply = RoundtripLocked(op, payload, ok_op);
    // Only *response-level* kUnavailable (server backpressure) retries here; transport
    // failures were already given their reconnect chance inside RoundtripLocked.
    if (reply.ok() || reply.status().code() != StatusCode::kUnavailable || fd_ < 0) {
      return reply;
    }
    transient.Add(1);
    if (attempt >= policy.max_attempts) {
      giveups.Add(1);
      return reply;
    }
    retries.Add(1);
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, policy.max_backoff);
  }
}

Status RemoteStore::ReconnectLocked() {
  // Joins whatever context the interrupted logical operation installed, so reconnect
  // spans carry the original save's trace_id instead of starting a fresh trace.
  UCP_TRACE_NAMED_SPAN(reconnect_span, "store.client.reconnect");
  static obs::Counter& reconnects =
      obs::MetricsRegistry::Global().GetCounter("store.client.reconnects");
  static obs::Counter& failures =
      obs::MetricsRegistry::Global().GetCounter("store.client.reconnect_failures");
  CloseFdLocked();
  const auto deadline = std::chrono::steady_clock::now() + options_.reconnect_deadline;
  const IoRetryPolicy policy = GetIoRetryPolicy();
  std::chrono::milliseconds backoff = policy.base_backoff;
  std::mt19937 rng{std::random_device{}()};
  Status last = UnavailableError("reconnect not attempted");
  for (;;) {
    HelloResult hs;
    Status s = DialAndHello(endpoint_, options_.max_version, &hs);
    if (s.ok()) {
      if (hs.version < 3) {
        ::close(hs.fd);
        failures.Add(1);
        return FailedPreconditionError(
            "server at " + endpoint_ +
            " no longer speaks protocol v3; cannot resume the session lease");
      }
      uint32_t retry_after_ms = 0;
      s = SessionOpenOnFd(hs.fd, hs.max_frame, lease_token_, options_.lease_ttl_ms,
                          /*resumed=*/nullptr, &retry_after_ms);
      if (s.ok()) {
        fd_ = hs.fd;
        session_id_ = hs.session_id;
        version_ = hs.version;
        max_frame_ = hs.max_frame;
        ++conn_epoch_;
        reconnects.Add(1);
        return OkStatus();
      }
      ::close(hs.fd);
      if (s.code() == StatusCode::kFailedPrecondition) {
        // Leases disabled or the token was refused outright — retrying cannot help.
        failures.Add(1);
        return s;
      }
      if (retry_after_ms > 0) {
        // Draining server told us when to come back; treat it as the backoff floor.
        backoff = std::max(backoff, std::chrono::milliseconds(retry_after_ms));
      }
    }
    last = s;
    // Jitter on the upper half spreads the reconnect stampede when many ranks lose the
    // same daemon at once.
    const int64_t cap = std::min(backoff, policy.max_backoff).count();
    std::uniform_int_distribution<int64_t> dist(std::max<int64_t>(1, cap / 2), cap);
    const std::chrono::milliseconds sleep{dist(rng)};
    if (std::chrono::steady_clock::now() + sleep >= deadline) {
      failures.Add(1);
      return UnavailableError("reconnect to " + endpoint_ + " exceeded deadline: " +
                              last.message());
    }
    std::this_thread::sleep_for(sleep);
    backoff = std::min(backoff * 2, policy.max_backoff);
  }
}

Status RemoteStore::WriteFileOnceLocked(const std::string& tag, const std::string& rel,
                                        const void* data, size_t size, uint64_t resume,
                                        uint64_t* sent_high) {
  ByteWriter begin;
  begin.PutString(tag);
  begin.PutString(rel);
  begin.PutU64(size);
  if (version_ >= 3) {
    begin.PutU64(resume);
  }
  // Admission control happens at BEGIN: a kUnavailable *response* means the daemon's
  // staged-bytes budget is full and this session is not the oldest — back off and retry
  // (nothing was staged). Transport failures return to the caller's resume loop.
  const IoRetryPolicy policy = GetIoRetryPolicy();
  std::chrono::milliseconds backoff = policy.base_backoff;
  static obs::Counter& transient =
      obs::MetricsRegistry::Global().GetCounter("io.retry.transient_errors");
  static obs::Counter& retries =
      obs::MetricsRegistry::Global().GetCounter("io.retry.retries");
  static obs::Counter& giveups =
      obs::MetricsRegistry::Global().GetCounter("io.retry.giveups");
  for (int attempt = 1;; ++attempt) {
    Result<WireFrame> opened =
        ExchangeLocked(WireOp::kWriteBegin, begin.buffer(), WireOp::kOk);
    if (opened.ok()) {
      break;
    }
    if (opened.status().code() != StatusCode::kUnavailable || fd_ < 0) {
      return opened.status();
    }
    transient.Add(1);
    if (attempt >= policy.max_attempts) {
      giveups.Add(1);
      return opened.status();
    }
    retries.Add(1);
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, policy.max_backoff);
  }
  const uint8_t* p = static_cast<const uint8_t*>(data) + resume;
  uint64_t offset = resume;
  size_t left = size - resume;
  while (left > 0) {
    const size_t n = std::min<size_t>(left, kWireChunkBytes);
    Status sent;
    if (version_ >= 3) {
      // v3 chunks are offset-addressed: a resent frame the server already holds is
      // skipped (idempotent), which is what makes resume-after-reconnect safe.
      ByteWriter prefix;
      prefix.PutU64(offset);
      sent = SendFrame(fd_, WireOp::kWriteChunk, prefix.buffer().data(),
                       prefix.buffer().size(), p, n);
    } else {
      sent = SendFrame(fd_, WireOp::kWriteChunk, p, n);
    }
    if (!sent.ok()) {
      CloseFdLocked();
      return sent;
    }
    p += n;
    offset += n;
    left -= n;
    *sent_high = std::max(*sent_high, offset);
  }
  ByteWriter end;
  end.PutU32(Crc32(data, size));
  return ExchangeLocked(WireOp::kWriteEnd, end.buffer(), WireOp::kOk).status();
}

Status RemoteStore::WriteFileLocked(const std::string& tag, const std::string& rel,
                                    const void* data, size_t size) {
  static obs::Counter& resumed_bytes =
      obs::MetricsRegistry::Global().GetCounter("store.client.resumed_bytes");
  static obs::Counter& restarted_bytes =
      obs::MetricsRegistry::Global().GetCounter("store.client.restarted_bytes");
  // One streamed file = one trace. The context installed here outlives every reconnect
  // and resume round below, so a resumed WRITE exports as one logical operation (every
  // RPC span — pre-drop, reconnect, post-resume — shares this trace_id), not two roots.
  obs::ScopedTraceContext trace_root;
  UCP_TRACE_NAMED_SPAN(file_span, "store.client.write_file");
#if UCP_OBS_ENABLED
  if (obs::TraceEnabled()) {
    file_span.ArgS("tag", tag);
    file_span.ArgS("rel", rel);
    file_span.ArgI("bytes", static_cast<int64_t>(size));
  }
#endif
  uint64_t resume = 0;
  uint64_t sent_high = 0;
  for (int reconnect_round = 0;; ++reconnect_round) {
    Status s = WriteFileOnceLocked(tag, rel, data, size, resume, &sent_high);
    if (s.ok()) {
      return s;
    }
    // A healthy-connection error (typed response) or a lease-less transport death is
    // final; only a leased session gets to reconnect and resume the stream.
    if (fd_ >= 0 || !CanReconnectLocked() || reconnect_round >= 4) {
      return s;
    }
    UCP_RETURN_IF_ERROR(ReconnectLocked());
    ByteWriter q;
    q.PutString(tag);
    q.PutString(rel);
    UCP_ASSIGN_OR_RETURN(
        WireFrame r, ExchangeLocked(WireOp::kWriteResume, q.buffer(),
                                    WireOp::kWriteResumeOk));
    ByteReader br(r.payload.data(), r.payload.size());
    UCP_ASSIGN_OR_RETURN(uint64_t acked, br.GetU64());
    UCP_ASSIGN_OR_RETURN(uint8_t complete, br.GetU8());
    if (complete != 0) {
      // The drop raced WRITE_END's reply: the file is fully staged and CRC-verified.
      resumed_bytes.Add(size);
      return OkStatus();
    }
    if (acked > size) {
      return DataLossError("server acknowledges " + std::to_string(acked) + " bytes of " +
                           rel + ", more than the file holds");
    }
    resumed_bytes.Add(acked);
    restarted_bytes.Add(sent_high > acked ? sent_high - acked : 0);
    UCP_TRACE_INSTANT("store.client.write_resume",
                      obs::TraceArgs()
                          .S("rel", rel)
                          .I("acked_bytes", static_cast<int64_t>(acked))
                          .I("round", reconnect_round + 1));
    resume = acked;
  }
}

Result<std::unique_ptr<ByteSource>> RemoteStore::OpenRead(const std::string& rel) {
  std::lock_guard<std::mutex> lock(mu_);
  UCP_ASSIGN_OR_RETURN(
      WireFrame reply, RoundtripLocked(WireOp::kOpenRead, EncodeStr(rel),
                                       WireOp::kOpenReadOk));
  ByteReader r(reply.payload.data(), reply.payload.size());
  UCP_ASSIGN_OR_RETURN(uint64_t handle, r.GetU64());
  UCP_ASSIGN_OR_RETURN(uint64_t size, r.GetU64());
  return std::unique_ptr<ByteSource>(new RemoteByteSource(
      shared_from_this(), handle, conn_epoch_, size, rel, CacheKey(rel)));
}

Status RemoteStore::ReadRange(RemoteByteSource& src, uint64_t offset, void* out,
                              size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  uint8_t* p = static_cast<uint8_t*>(out);
  size_t left = size;
  int reconnects_left = 2;
  while (left > 0) {
    if (src.epoch_ != conn_epoch_) {
      // The server-side read handle died with the old session: reopen by path.
      Result<WireFrame> reply =
          ExchangeLocked(WireOp::kOpenRead, EncodeStr(src.rel_), WireOp::kOpenReadOk);
      if (!reply.ok()) {
        if (fd_ < 0 && CanReconnectLocked() && reconnects_left-- > 0 &&
            ReconnectLocked().ok()) {
          continue;
        }
        return reply.status();
      }
      ByteReader r(reply->payload.data(), reply->payload.size());
      UCP_ASSIGN_OR_RETURN(uint64_t handle, r.GetU64());
      UCP_ASSIGN_OR_RETURN(uint64_t new_size, r.GetU64());
      if (new_size != src.size_) {
        return DataLossError(src.rel_ + " changed size across reconnect (" +
                             std::to_string(src.size_) + " -> " +
                             std::to_string(new_size) + ")");
      }
      src.handle_ = handle;
      src.epoch_ = conn_epoch_;
      continue;
    }
    const size_t n = std::min<size_t>(left, kWireChunkBytes);
    ByteWriter req;
    req.PutU64(src.handle_);
    req.PutU64(offset);
    req.PutU32(static_cast<uint32_t>(n));
    Result<WireFrame> reply = ExchangeLocked(WireOp::kReadRange, req.buffer(),
                                             WireOp::kBytes);
    if (!reply.ok()) {
      if (fd_ < 0 && CanReconnectLocked() && reconnects_left-- > 0 &&
          ReconnectLocked().ok()) {
        continue;  // conn_epoch_ advanced; the next iteration reopens the handle
      }
      return reply.status();
    }
    if (reply->payload.size() != n) {
      return DataLossError("short READ_RANGE response from " + endpoint_);
    }
    std::memcpy(p, reply->payload.data(), n);
    p += n;
    offset += n;
    left -= n;
  }
  return OkStatus();
}

void RemoteStore::CloseRead(RemoteByteSource& src) {
  std::lock_guard<std::mutex> lock(mu_);
  if (src.epoch_ != conn_epoch_) {
    return;  // the handle died with its session; nothing to close server-side
  }
  ByteWriter req;
  req.PutU64(src.handle_);
  ExchangeLocked(WireOp::kCloseRead, req.buffer(), WireOp::kOk).ok();  // best effort
}

Result<std::string> RemoteStore::ReadSmallFile(const std::string& rel) {
  UCP_ASSIGN_OR_RETURN(WireFrame reply,
                       Roundtrip(WireOp::kReadSmall, EncodeStr(rel), WireOp::kBytes));
  return std::string(reply.payload.begin(), reply.payload.end());
}

Result<bool> RemoteStore::Exists(const std::string& rel) {
  UCP_ASSIGN_OR_RETURN(WireFrame reply,
                       Roundtrip(WireOp::kExists, EncodeStr(rel), WireOp::kBool));
  ByteReader r(reply.payload.data(), reply.payload.size());
  UCP_ASSIGN_OR_RETURN(uint8_t v, r.GetU8());
  return v != 0;
}

Result<std::vector<std::string>> RemoteStore::List(const std::string& rel) {
  UCP_ASSIGN_OR_RETURN(WireFrame reply,
                       Roundtrip(WireOp::kList, EncodeStr(rel), WireOp::kStrList));
  return DecodeStrList(reply);
}

Result<std::vector<std::string>> RemoteStore::ListTags(const std::string& job) {
  UCP_ASSIGN_OR_RETURN(WireFrame reply,
                       Roundtrip(WireOp::kListTags, EncodeStr(job), WireOp::kStrList));
  return DecodeStrList(reply);
}

Result<std::unique_ptr<StoreWriter>> RemoteStore::OpenTagForWrite(const std::string& tag) {
  if (!IsSafeStoreName(tag)) {
    return InvalidArgumentError("bad checkpoint tag: " + tag);
  }
  return std::unique_ptr<StoreWriter>(new RemoteStoreWriter(shared_from_this(), tag));
}

Status RemoteStore::ResetTagStaging(const std::string& tag) {
  return RoundtripWithRetry(WireOp::kResetStaging, EncodeStr(tag), WireOp::kOk).status();
}

Status RemoteStore::CommitTag(const std::string& tag, const std::string& meta_json) {
  ByteWriter req;
  req.PutString(tag);
  req.PutString(meta_json);
  std::lock_guard<std::mutex> lock(mu_);
  // The commit (and its possible reconnect + already-landed probe + retry) is one
  // logical operation — one trace.
  obs::ScopedTraceContext trace_root;
  UCP_TRACE_NAMED_SPAN(commit_span, "store.client.commit_tag");
#if UCP_OBS_ENABLED
  if (obs::TraceEnabled()) {
    commit_span.ArgS("tag", tag);
  }
#endif
  Result<WireFrame> reply = ExchangeLocked(WireOp::kCommitTag, req.buffer(), WireOp::kOk);
  if (reply.ok()) {
    return OkStatus();
  }
  if (fd_ >= 0 || !CanReconnectLocked()) {
    return reply.status();
  }
  UCP_RETURN_IF_ERROR(ReconnectLocked());
  // COMMIT_TAG is not idempotent (the staging dir is consumed by the rename), and the
  // drop may have raced the reply: check whether the commit already landed before
  // retrying, so a committed tag is never reported as failed.
  Result<WireFrame> probe =
      ExchangeLocked(WireOp::kExists,
                     EncodeStr(tag + "/" + kCompleteMarker), WireOp::kBool);
  if (probe.ok()) {
    ByteReader r(probe->payload.data(), probe->payload.size());
    Result<uint8_t> committed = r.GetU8();
    if (committed.ok() && *committed != 0) {
      return OkStatus();
    }
  }
  return ExchangeLocked(WireOp::kCommitTag, req.buffer(), WireOp::kOk).status();
}

Status RemoteStore::AbortTag(const std::string& tag) {
  return RoundtripWithRetry(WireOp::kAbortTag, EncodeStr(tag), WireOp::kOk).status();
}

Status RemoteStore::DeleteTag(const std::string& tag) {
  return RoundtripWithRetry(WireOp::kDeleteTag, EncodeStr(tag), WireOp::kOk).status();
}

Result<GcReport> RemoteStore::Gc(const std::string& job, int keep_last, bool dry_run) {
  if (keep_last < 1) {
    return InvalidArgumentError("keep_last must be >= 1");
  }
  ByteWriter req;
  req.PutString(job);
  req.PutU32(static_cast<uint32_t>(keep_last));
  req.PutU8(dry_run ? 1 : 0);
  UCP_ASSIGN_OR_RETURN(WireFrame reply,
                       Roundtrip(WireOp::kGc, req.buffer(), WireOp::kGcReport));
  ByteReader r(reply.payload.data(), reply.payload.size());
  GcReport report;
  UCP_ASSIGN_OR_RETURN(uint32_t n_removed, r.GetU32());
  for (uint32_t i = 0; i < n_removed; ++i) {
    UCP_ASSIGN_OR_RETURN(std::string tag, r.GetString());
    report.removed.push_back(std::move(tag));
  }
  UCP_ASSIGN_OR_RETURN(uint32_t n_kept, r.GetU32());
  for (uint32_t i = 0; i < n_kept; ++i) {
    UCP_ASSIGN_OR_RETURN(std::string tag, r.GetString());
    report.kept.push_back(std::move(tag));
  }
  return report;
}

Result<int> RemoteStore::SweepStagingDebris(const std::string& job) {
  UCP_ASSIGN_OR_RETURN(WireFrame reply,
                       Roundtrip(WireOp::kSweepDebris, EncodeStr(job), WireOp::kInt));
  ByteReader r(reply.payload.data(), reply.payload.size());
  UCP_ASSIGN_OR_RETURN(int64_t v, r.GetI64());
  return static_cast<int>(v);
}

Status RemoteStore::Ping() {
  return Roundtrip(WireOp::kPing, {}, WireOp::kOk).status();
}

Result<std::string> RemoteStore::MetricsDump(bool prometheus) {
  std::lock_guard<std::mutex> lock(mu_);
  if (version_ < 4) {
    return UnimplementedError("METRICS_DUMP requires protocol v4 (negotiated v" +
                              std::to_string(version_) + ")");
  }
  ByteWriter req;
  req.PutU8(prometheus ? 1 : 0);
  UCP_ASSIGN_OR_RETURN(
      WireFrame reply, RoundtripLocked(WireOp::kMetricsDump, req.buffer(), WireOp::kBytes));
  return std::string(reply.payload.begin(), reply.payload.end());
}

Result<RemoteServerStat> RemoteStore::ServerStat() {
  std::lock_guard<std::mutex> lock(mu_);
  if (version_ < 3) {
    return UnimplementedError("SERVER_STAT requires protocol v3 (negotiated v" +
                              std::to_string(version_) + ")");
  }
  UCP_ASSIGN_OR_RETURN(WireFrame reply,
                       RoundtripLocked(WireOp::kServerStat, {}, WireOp::kServerStatOk));
  ByteReader r(reply.payload.data(), reply.payload.size());
  RemoteServerStat stat;
  UCP_ASSIGN_OR_RETURN(stat.max_wire_version, r.GetU32());
  UCP_ASSIGN_OR_RETURN(stat.sessions, r.GetU32());
  UCP_ASSIGN_OR_RETURN(stat.leases, r.GetU32());
  UCP_ASSIGN_OR_RETURN(stat.staged_bytes, r.GetU64());
  UCP_ASSIGN_OR_RETURN(uint8_t draining, r.GetU8());
  stat.draining = draining != 0;
  return stat;
}

}  // namespace ucp
