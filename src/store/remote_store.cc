#include "src/store/remote_store.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/crc32.h"
#include "src/common/lz.h"
#include "src/obs/metrics.h"

namespace ucp {

namespace {

Status DecodeError(const WireFrame& frame) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  UCP_ASSIGN_OR_RETURN(uint8_t code, r.GetU8());
  UCP_ASSIGN_OR_RETURN(std::string message, r.GetString());
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return DataLossError("malformed error frame (code " + std::to_string(code) + "): " +
                         message);
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

Result<std::vector<std::string>> DecodeStrList(const WireFrame& frame) {
  ByteReader r(frame.payload.data(), frame.payload.size());
  UCP_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  std::vector<std::string> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    UCP_ASSIGN_OR_RETURN(std::string s, r.GetString());
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<uint8_t> EncodeStr(const std::string& s) {
  ByteWriter w;
  w.PutString(s);
  return w.TakeBuffer();
}

}  // namespace

// Keeps the connection alive (shared_ptr) past the owning Store's death, so views opened
// through a store can outlive it — mirroring how a RandomAccessFile outlives the path
// string it was opened from.
class RemoteByteSource final : public ByteSource {
 public:
  RemoteByteSource(std::shared_ptr<RemoteStore> store, uint64_t handle, uint64_t size,
                   std::string name)
      : store_(std::move(store)), handle_(handle), size_(size), name_(std::move(name)) {}
  ~RemoteByteSource() override { store_->CloseRead(handle_); }

  uint64_t size() const override { return size_; }
  const std::string& name() const override { return name_; }
  Status ReadAt(uint64_t offset, void* out, size_t size) override {
    return store_->ReadRange(handle_, offset, out, size);
  }

 private:
  std::shared_ptr<RemoteStore> store_;
  uint64_t handle_;
  uint64_t size_;
  std::string name_;
};

// Streams one staged file per WriteFile call: BEGIN (admission-checked, retried on
// backpressure), CHUNK*, END carrying the whole-file CRC the server verifies before the
// bytes become a staged file.
class RemoteStoreWriter final : public StoreWriter {
 public:
  RemoteStoreWriter(std::shared_ptr<RemoteStore> store, std::string tag)
      : StoreWriter(std::move(tag)), store_(std::move(store)) {}

  Status WriteFile(const std::string& rel, const void* data, size_t size) override {
    ByteWriter begin;
    begin.PutString(tag());
    begin.PutString(rel);
    begin.PutU64(size);
    std::lock_guard<std::mutex> lock(store_->mu_);
    // Admission control happens at BEGIN: a kUnavailable response means the daemon's
    // staged-bytes budget is full and this session is not the oldest — back off and retry
    // the whole file (nothing was staged).
    const IoRetryPolicy policy = GetIoRetryPolicy();
    std::chrono::milliseconds backoff = policy.base_backoff;
    static obs::Counter& transient =
        obs::MetricsRegistry::Global().GetCounter("io.retry.transient_errors");
    static obs::Counter& retries =
        obs::MetricsRegistry::Global().GetCounter("io.retry.retries");
    static obs::Counter& giveups =
        obs::MetricsRegistry::Global().GetCounter("io.retry.giveups");
    for (int attempt = 1;; ++attempt) {
      Result<WireFrame> opened = store_->RoundtripLocked(
          WireOp::kWriteBegin, begin.buffer(), WireOp::kOk);
      if (opened.ok()) {
        break;
      }
      if (opened.status().code() != StatusCode::kUnavailable) {
        return opened.status();
      }
      transient.Add(1);
      if (attempt >= policy.max_attempts) {
        giveups.Add(1);
        return opened.status();
      }
      retries.Add(1);
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, policy.max_backoff);
    }
    const uint8_t* p = static_cast<const uint8_t*>(data);
    size_t left = size;
    while (left > 0) {
      const size_t n = std::min<size_t>(left, kWireChunkBytes);
      UCP_RETURN_IF_ERROR(SendFrame(store_->fd_, WireOp::kWriteChunk, p, n));
      p += n;
      left -= n;
    }
    ByteWriter end;
    end.PutU32(Crc32(data, size));
    UCP_ASSIGN_OR_RETURN(
        WireFrame done,
        store_->RoundtripLocked(WireOp::kWriteEnd, end.buffer(), WireOp::kOk));
    (void)done;
    return OkStatus();
  }

  bool SupportsChunked() const override { return store_->negotiated_version() >= 2; }

  // Incremental path: CHUNK_QUERY pins + asks which digests the daemon already holds,
  // then only the missing chunks ship — compressed *client-side* (the whole point of wire
  // compression is fewer bytes on the socket; the daemon stores the object as received
  // after verifying it decodes). The manifest is accumulated here and staged as a normal
  // file by FinalizeManifest.
  Result<ChunkedWriteStats> WriteFileChunked(const std::string& rel, const void* data,
                                             size_t size,
                                             const std::vector<uint64_t>& digests,
                                             bool compress, uint64_t inherited) override {
    if (!SupportsChunked()) {
      return StoreWriter::WriteFileChunked(rel, data, size, digests, compress, inherited);
    }
    if (!IsSafeStoreRelPath(rel)) {
      return InvalidArgumentError("bad store file name: " + rel);
    }
    if (digests.size() != (size + kManifestChunkBytes - 1) / kManifestChunkBytes) {
      return InvalidArgumentError("digest count does not match size for " + rel);
    }
    ChunkedWriteStats stats;
    stats.bytes_total = size;
    stats.chunks_total = digests.size();
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    // Per-chunk raw CRCs ride the query so the server answers "present" only for objects
    // that verifiably hold the same content (not merely the same 64-bit digest), and are
    // reused below when the chunk ships. Queries are batched to stay under the wire frame
    // cap whatever the file size.
    std::vector<uint32_t> chunk_crcs(digests.size());
    for (size_t i = 0; i < digests.size(); ++i) {
      const size_t off = i * kManifestChunkBytes;
      chunk_crcs[i] = Crc32(bytes + off, std::min(kManifestChunkBytes, size - off));
    }
    constexpr size_t kQueryBatch = 65536;  // 16 B/entry -> 1 MiB per frame
    std::vector<uint8_t> present_all;
    present_all.reserve(digests.size());
    for (size_t begin = 0; begin < digests.size(); begin += kQueryBatch) {
      const size_t batch = std::min(kQueryBatch, digests.size() - begin);
      ByteWriter query;
      query.PutString(tag());
      query.PutU32(static_cast<uint32_t>(batch));
      for (size_t i = begin; i < begin + batch; ++i) {
        const size_t off = i * kManifestChunkBytes;
        query.PutU64(digests[i]);
        query.PutU32(static_cast<uint32_t>(std::min(kManifestChunkBytes, size - off)));
        query.PutU32(chunk_crcs[i]);
      }
      UCP_ASSIGN_OR_RETURN(WireFrame mask_frame,
                           store_->RoundtripWithRetry(WireOp::kChunkQuery, query.buffer(),
                                                      WireOp::kChunkMask));
      ByteReader mask(mask_frame.payload.data(), mask_frame.payload.size());
      UCP_ASSIGN_OR_RETURN(uint32_t count, mask.GetU32());
      if (count != batch) {
        return DataLossError("CHUNK_MASK count mismatch from " + store_->endpoint_);
      }
      for (uint32_t i = 0; i < count; ++i) {
        UCP_ASSIGN_OR_RETURN(uint8_t present, mask.GetU8());
        present_all.push_back(present);
      }
    }
    for (size_t i = 0; i < digests.size(); ++i) {
      if (present_all[i] != 0) {
        ++stats.chunks_deduped;
        continue;
      }
      const size_t off = i * kManifestChunkBytes;
      const size_t n = std::min(kManifestChunkBytes, size - off);
      const uint32_t raw_crc = chunk_crcs[i];
      std::vector<uint8_t> encoded;
      if (compress) {
        std::vector<uint8_t> packed;
        if (LzCompress(bytes + off, n, &packed) == LzCompressOutcome::kCompressed) {
          encoded = EncodeChunkObject(ChunkCodec::kLz, static_cast<uint32_t>(n), raw_crc,
                                      packed.data(), packed.size());
          ++stats.chunks_compressed;
        }
      }
      if (encoded.empty()) {
        encoded = EncodeChunkObject(ChunkCodec::kRaw, static_cast<uint32_t>(n), raw_crc,
                                    bytes + off, n);
      }
      ByteWriter put;
      put.PutU64(digests[i]);
      put.PutBytes(encoded.data(), encoded.size());
      UCP_RETURN_IF_ERROR(
          store_->RoundtripWithRetry(WireOp::kChunkPut, put.buffer(), WireOp::kOk)
              .status());
      stats.bytes_written += encoded.size();
    }
    ChunkManifestEntry entry;
    entry.name = rel;
    entry.size = size;
    entry.crc32 = Crc32(data, size);
    entry.chunks = digests;
    entry.inherited = inherited;
    entries_.push_back(std::move(entry));
    return stats;
  }

  Status FinalizeManifest(const std::string& parent_tag) override {
    if (entries_.empty()) {
      return OkStatus();  // nothing was chunked (v1 peer fallback) — no manifest
    }
    ChunkManifest manifest;
    manifest.parent = parent_tag;
    manifest.files = std::move(entries_);
    entries_.clear();
    const std::string body = SerializeChunkManifest(manifest);
    return WriteFile(kChunkManifestName, body.data(), body.size());
  }

 private:
  std::shared_ptr<RemoteStore> store_;
  std::vector<ChunkManifestEntry> entries_;
};

Result<std::shared_ptr<RemoteStore>> RemoteStore::Connect(const std::string& endpoint) {
  UCP_ASSIGN_OR_RETURN(Endpoint ep, ParseEndpoint(endpoint));
  UCP_ASSIGN_OR_RETURN(int fd, DialEndpoint(ep));
  ByteWriter hello;
  hello.PutU32(kWireMinVersion);
  hello.PutU32(kWireVersion);
  Status sent = SendFrame(fd, WireOp::kHello, hello.buffer());
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  Result<WireFrame> reply = RecvFrame(fd);
  if (!reply.ok()) {
    ::close(fd);
    return reply.status();
  }
  if (reply->op == WireOp::kError) {
    const Status err = DecodeError(*reply);
    ::close(fd);
    return err;
  }
  if (reply->op != WireOp::kHelloOk) {
    ::close(fd);
    return DataLossError("handshake: unexpected frame type from server");
  }
  ByteReader r(reply->payload.data(), reply->payload.size());
  Result<uint32_t> version = r.GetU32();
  Result<uint64_t> session = r.GetU64();
  Result<uint32_t> max_frame = r.GetU32();
  if (!version.ok() || !session.ok() || !max_frame.ok()) {
    ::close(fd);
    return DataLossError("handshake: malformed HELLO_OK payload");
  }
  if (*version < kWireMinVersion || *version > kWireVersion) {
    ::close(fd);
    return FailedPreconditionError("server negotiated unsupported protocol version " +
                                   std::to_string(*version));
  }
  return std::shared_ptr<RemoteStore>(new RemoteStore(
      fd, endpoint, *session, std::min(*max_frame, kMaxFramePayload), *version));
}

RemoteStore::~RemoteStore() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void RemoteStore::CloseForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<WireFrame> RemoteStore::RoundtripLocked(WireOp op,
                                               const std::vector<uint8_t>& payload,
                                               WireOp ok_op) {
  if (fd_ < 0) {
    return UnavailableError("connection to " + endpoint_ + " is closed");
  }
  UCP_RETURN_IF_ERROR(SendFrame(fd_, op, payload));
  UCP_ASSIGN_OR_RETURN(WireFrame reply, RecvFrame(fd_, max_frame_));
  if (reply.op == WireOp::kError) {
    return DecodeError(reply);
  }
  if (reply.op != ok_op) {
    return DataLossError("unexpected response frame type " +
                         std::to_string(static_cast<int>(reply.op)) + " from " + endpoint_);
  }
  return reply;
}

Result<WireFrame> RemoteStore::Roundtrip(WireOp op, const std::vector<uint8_t>& payload,
                                         WireOp ok_op) {
  std::lock_guard<std::mutex> lock(mu_);
  return RoundtripLocked(op, payload, ok_op);
}

Result<WireFrame> RemoteStore::RoundtripWithRetry(WireOp op,
                                                  const std::vector<uint8_t>& payload,
                                                  WireOp ok_op) {
  const IoRetryPolicy policy = GetIoRetryPolicy();
  std::chrono::milliseconds backoff = policy.base_backoff;
  static obs::Counter& transient =
      obs::MetricsRegistry::Global().GetCounter("io.retry.transient_errors");
  static obs::Counter& retries =
      obs::MetricsRegistry::Global().GetCounter("io.retry.retries");
  static obs::Counter& giveups =
      obs::MetricsRegistry::Global().GetCounter("io.retry.giveups");
  std::lock_guard<std::mutex> lock(mu_);
  for (int attempt = 1;; ++attempt) {
    Result<WireFrame> reply = RoundtripLocked(op, payload, ok_op);
    // Only *response-level* kUnavailable (server backpressure) retries: once the transport
    // itself failed the stream position is unknown and a resend could misframe.
    if (reply.ok() || reply.status().code() != StatusCode::kUnavailable || fd_ < 0) {
      return reply;
    }
    transient.Add(1);
    if (attempt >= policy.max_attempts) {
      giveups.Add(1);
      return reply;
    }
    retries.Add(1);
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, policy.max_backoff);
  }
}

Result<std::unique_ptr<ByteSource>> RemoteStore::OpenRead(const std::string& rel) {
  UCP_ASSIGN_OR_RETURN(WireFrame reply,
                       Roundtrip(WireOp::kOpenRead, EncodeStr(rel), WireOp::kOpenReadOk));
  ByteReader r(reply.payload.data(), reply.payload.size());
  UCP_ASSIGN_OR_RETURN(uint64_t handle, r.GetU64());
  UCP_ASSIGN_OR_RETURN(uint64_t size, r.GetU64());
  return std::unique_ptr<ByteSource>(
      new RemoteByteSource(shared_from_this(), handle, size, CacheKey(rel)));
}

Status RemoteStore::ReadRange(uint64_t handle, uint64_t offset, void* out, size_t size) {
  uint8_t* p = static_cast<uint8_t*>(out);
  size_t left = size;
  while (left > 0) {
    const size_t n = std::min<size_t>(left, kWireChunkBytes);
    ByteWriter req;
    req.PutU64(handle);
    req.PutU64(offset);
    req.PutU32(static_cast<uint32_t>(n));
    UCP_ASSIGN_OR_RETURN(WireFrame reply,
                         Roundtrip(WireOp::kReadRange, req.buffer(), WireOp::kBytes));
    if (reply.payload.size() != n) {
      return DataLossError("short READ_RANGE response from " + endpoint_);
    }
    std::memcpy(p, reply.payload.data(), n);
    p += n;
    offset += n;
    left -= n;
  }
  return OkStatus();
}

void RemoteStore::CloseRead(uint64_t handle) {
  ByteWriter req;
  req.PutU64(handle);
  Roundtrip(WireOp::kCloseRead, req.buffer(), WireOp::kOk).ok();  // best effort
}

Result<std::string> RemoteStore::ReadSmallFile(const std::string& rel) {
  UCP_ASSIGN_OR_RETURN(WireFrame reply,
                       Roundtrip(WireOp::kReadSmall, EncodeStr(rel), WireOp::kBytes));
  return std::string(reply.payload.begin(), reply.payload.end());
}

Result<bool> RemoteStore::Exists(const std::string& rel) {
  UCP_ASSIGN_OR_RETURN(WireFrame reply,
                       Roundtrip(WireOp::kExists, EncodeStr(rel), WireOp::kBool));
  ByteReader r(reply.payload.data(), reply.payload.size());
  UCP_ASSIGN_OR_RETURN(uint8_t v, r.GetU8());
  return v != 0;
}

Result<std::vector<std::string>> RemoteStore::List(const std::string& rel) {
  UCP_ASSIGN_OR_RETURN(WireFrame reply,
                       Roundtrip(WireOp::kList, EncodeStr(rel), WireOp::kStrList));
  return DecodeStrList(reply);
}

Result<std::vector<std::string>> RemoteStore::ListTags(const std::string& job) {
  UCP_ASSIGN_OR_RETURN(WireFrame reply,
                       Roundtrip(WireOp::kListTags, EncodeStr(job), WireOp::kStrList));
  return DecodeStrList(reply);
}

Result<std::unique_ptr<StoreWriter>> RemoteStore::OpenTagForWrite(const std::string& tag) {
  if (!IsSafeStoreName(tag)) {
    return InvalidArgumentError("bad checkpoint tag: " + tag);
  }
  return std::unique_ptr<StoreWriter>(new RemoteStoreWriter(shared_from_this(), tag));
}

Status RemoteStore::ResetTagStaging(const std::string& tag) {
  return RoundtripWithRetry(WireOp::kResetStaging, EncodeStr(tag), WireOp::kOk).status();
}

Status RemoteStore::CommitTag(const std::string& tag, const std::string& meta_json) {
  ByteWriter req;
  req.PutString(tag);
  req.PutString(meta_json);
  return Roundtrip(WireOp::kCommitTag, req.buffer(), WireOp::kOk).status();
}

Status RemoteStore::AbortTag(const std::string& tag) {
  return RoundtripWithRetry(WireOp::kAbortTag, EncodeStr(tag), WireOp::kOk).status();
}

Status RemoteStore::DeleteTag(const std::string& tag) {
  return RoundtripWithRetry(WireOp::kDeleteTag, EncodeStr(tag), WireOp::kOk).status();
}

Result<GcReport> RemoteStore::Gc(const std::string& job, int keep_last, bool dry_run) {
  if (keep_last < 1) {
    return InvalidArgumentError("keep_last must be >= 1");
  }
  ByteWriter req;
  req.PutString(job);
  req.PutU32(static_cast<uint32_t>(keep_last));
  req.PutU8(dry_run ? 1 : 0);
  UCP_ASSIGN_OR_RETURN(WireFrame reply,
                       Roundtrip(WireOp::kGc, req.buffer(), WireOp::kGcReport));
  ByteReader r(reply.payload.data(), reply.payload.size());
  GcReport report;
  UCP_ASSIGN_OR_RETURN(uint32_t n_removed, r.GetU32());
  for (uint32_t i = 0; i < n_removed; ++i) {
    UCP_ASSIGN_OR_RETURN(std::string tag, r.GetString());
    report.removed.push_back(std::move(tag));
  }
  UCP_ASSIGN_OR_RETURN(uint32_t n_kept, r.GetU32());
  for (uint32_t i = 0; i < n_kept; ++i) {
    UCP_ASSIGN_OR_RETURN(std::string tag, r.GetString());
    report.kept.push_back(std::move(tag));
  }
  return report;
}

Result<int> RemoteStore::SweepStagingDebris(const std::string& job) {
  UCP_ASSIGN_OR_RETURN(WireFrame reply,
                       Roundtrip(WireOp::kSweepDebris, EncodeStr(job), WireOp::kInt));
  ByteReader r(reply.payload.data(), reply.payload.size());
  UCP_ASSIGN_OR_RETURN(int64_t v, r.GetI64());
  return static_cast<int>(v);
}

Status RemoteStore::Ping() {
  return Roundtrip(WireOp::kPing, {}, WireOp::kOk).status();
}

}  // namespace ucp
