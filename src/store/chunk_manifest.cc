#include "src/store/chunk_manifest.h"

#include <cstdio>

#include "src/common/crc32.h"
#include "src/common/json.h"

namespace ucp {

const ChunkManifestEntry* ChunkManifest::Find(const std::string& name) const {
  for (const ChunkManifestEntry& entry : files) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

uint64_t ChunkManifest::LogicalBytes() const {
  uint64_t total = 0;
  for (const ChunkManifestEntry& entry : files) {
    total += entry.size;
  }
  return total;
}

std::string SerializeChunkManifest(const ChunkManifest& manifest) {
  JsonArray files;
  for (const ChunkManifestEntry& entry : manifest.files) {
    JsonArray chunks;
    chunks.reserve(entry.chunks.size());
    for (uint64_t digest : entry.chunks) {
      chunks.emplace_back(DigestToHex(digest));
    }
    JsonObject file;
    file["name"] = entry.name;
    file["size"] = entry.size;
    file["crc32"] = static_cast<uint64_t>(entry.crc32);
    file["inherited"] = entry.inherited;
    file["chunks"] = std::move(chunks);
    files.emplace_back(std::move(file));
  }
  JsonObject body;
  body["version"] = 1;
  body["parent"] = manifest.parent;
  body["chunk_bytes"] = manifest.chunk_bytes;
  body["files"] = std::move(files);
  const std::string json = Json(std::move(body)).Dump(2);
  char header[32];
  std::snprintf(header, sizeof(header), "UCPM1 %08x\n", Crc32(json.data(), json.size()));
  return std::string(header) + json;
}

Result<ChunkManifest> ParseChunkManifest(const std::string& text) {
  // Header line: "UCPM1 xxxxxxxx\n" — fixed width, so damage to the first 15 bytes is
  // detected structurally and damage to the body by the CRC.
  constexpr size_t kHeaderLen = 15;  // "UCPM1 " + 8 hex + '\n'
  if (text.size() < kHeaderLen || text.compare(0, 6, "UCPM1 ") != 0 ||
      text[kHeaderLen - 1] != '\n') {
    return DataLossError("chunk manifest: bad or truncated header");
  }
  uint32_t declared = 0;
  for (size_t i = 6; i < kHeaderLen - 1; ++i) {
    const char c = text[i];
    uint32_t d;
    if (c >= '0' && c <= '9') d = static_cast<uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') d = static_cast<uint32_t>(c - 'a' + 10);
    else return DataLossError("chunk manifest: malformed header CRC");
    declared = declared << 4 | d;
  }
  const std::string body = text.substr(kHeaderLen);
  const uint32_t actual = Crc32(body.data(), body.size());
  if (actual != declared) {
    return DataLossError("chunk manifest: body CRC mismatch (file damaged or truncated)");
  }
  Result<Json> parsed = Json::Parse(body);
  if (!parsed.ok()) {
    return DataLossError("chunk manifest: body does not parse: " +
                         parsed.status().message());
  }
  const Json& json = *parsed;
  if (!json.is_object()) {
    return DataLossError("chunk manifest: body is not an object");
  }
  Result<int64_t> version = json.GetInt("version");
  if (!version.ok() || *version != 1) {
    return DataLossError("chunk manifest: missing or unsupported version");
  }
  ChunkManifest manifest;
  UCP_ASSIGN_OR_RETURN(manifest.parent, json.GetString("parent"));
  UCP_ASSIGN_OR_RETURN(int64_t chunk_bytes, json.GetInt("chunk_bytes"));
  if (chunk_bytes <= 0 ||
      static_cast<uint64_t>(chunk_bytes) > kMaxManifestChunkBytes) {
    return DataLossError("chunk manifest: chunk_bytes out of range");
  }
  manifest.chunk_bytes = static_cast<uint64_t>(chunk_bytes);
  UCP_ASSIGN_OR_RETURN(const JsonArray* files, json.GetArray("files"));
  for (const Json& file : *files) {
    if (!file.is_object()) {
      return DataLossError("chunk manifest: file entry is not an object");
    }
    ChunkManifestEntry entry;
    UCP_ASSIGN_OR_RETURN(entry.name, file.GetString("name"));
    UCP_ASSIGN_OR_RETURN(int64_t size, file.GetInt("size"));
    UCP_ASSIGN_OR_RETURN(int64_t crc, file.GetInt("crc32"));
    UCP_ASSIGN_OR_RETURN(int64_t inherited, file.GetInt("inherited"));
    if (size < 0 || crc < 0 || crc > 0xffffffffll || inherited < 0) {
      return DataLossError("chunk manifest: out-of-range field in entry " + entry.name);
    }
    entry.size = static_cast<uint64_t>(size);
    entry.crc32 = static_cast<uint32_t>(crc);
    entry.inherited = static_cast<uint64_t>(inherited);
    UCP_ASSIGN_OR_RETURN(const JsonArray* chunks, file.GetArray("chunks"));
    entry.chunks.reserve(chunks->size());
    for (const Json& chunk : *chunks) {
      if (!chunk.is_string()) {
        return DataLossError("chunk manifest: non-string digest in entry " + entry.name);
      }
      std::optional<uint64_t> digest = DigestFromHex(chunk.AsString());
      if (!digest.has_value()) {
        return DataLossError("chunk manifest: malformed digest in entry " + entry.name);
      }
      entry.chunks.push_back(*digest);
    }
    const uint64_t expect_chunks =
        (entry.size + manifest.chunk_bytes - 1) / manifest.chunk_bytes;
    if (entry.chunks.size() != expect_chunks) {
      return DataLossError("chunk manifest: chunk count does not match size in entry " +
                           entry.name);
    }
    manifest.files.push_back(std::move(entry));
  }
  return manifest;
}

}  // namespace ucp
