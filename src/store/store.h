// The unified checkpoint-store abstraction.
//
// Every byte of checkpoint I/O — save (sync and async), sliced UCP load, GC, tooling —
// goes through `Store`, so a training job is indifferent to whether its checkpoints live
// in a local directory (LocalStore, the direct-FS path this repo always had) or behind
// `ucp_serverd` (RemoteStore, speaking the framed wire protocol in wire.h). The interface
// is deliberately narrow (Portus/ByteCheckpoint-style decoupling): relative paths and tag
// names only, staged writes with an explicit commit, positional reads via ByteSource so
// TensorFileView/BundleFileView range reads work unchanged over either backend.
//
// Commit protocol (identical on both backends; the remote one runs it server-side):
//   ResetTagStaging(tag)              -- clear debris of a crashed save
//   OpenTagForWrite(tag) -> writer    -- one writer per rank; files land in <tag>.staging
//   writer->WriteFile(rel, bytes)     -- whole serialized shard files (UCT1/UCB1 blobs)
//   CommitTag(tag, meta_json)         -- meta into staging, rename, marker, latest
//   AbortTag(tag)                     -- or: drop the staging dir, nothing published
//
// See docs/store.md for the full contract and docs/durability.md for why the commit
// ordering is what makes crash-consistency hold.

#ifndef UCP_SRC_STORE_STORE_H_
#define UCP_SRC_STORE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/fs.h"
#include "src/common/status.h"
#include "src/store/chunk_index.h"
#include "src/store/ckpt_meta.h"
#include "src/store/tags.h"

namespace ucp {

// Retention outcome of one Gc() pass (see LocalStore::Gc for the policy).
struct GcReport {
  std::vector<std::string> removed;  // committed tags deleted (ascending iteration)
  std::vector<std::string> kept;     // committed tags surviving
  std::string ToString() const;
};

// A staged write of one tag. Writers only stage: nothing a reader trusts exists until the
// owning Store's CommitTag. Several writers may stage into the same tag concurrently (one
// per rank); Commit/Abort are store-level, called once by rank 0 / the flusher.
class StoreWriter {
 public:
  virtual ~StoreWriter() = default;

  const std::string& tag() const { return tag_; }

  // Stages `rel` (a file name inside the tag) with exactly these bytes. Local: the same
  // tmp-write/fsync/rename as always (ScopedFsyncBatch on the calling thread still
  // applies). Remote: a chunked frame stream, CRC-verified server-side before the file is
  // staged.
  virtual Status WriteFile(const std::string& rel, const void* data, size_t size) = 0;
  Status WriteFile(const std::string& rel, const std::vector<uint8_t>& bytes) {
    return WriteFile(rel, bytes.data(), bytes.size());
  }
  Status WriteFile(const std::string& rel, const std::string& text) {
    return WriteFile(rel, text.data(), text.size());
  }

  // ---- Incremental (chunked) staging ----------------------------------------------------
  //
  // A chunked-capable writer stages `rel` as content-addressed chunk objects instead of a
  // whole file: `digests` is the per-64KiB-span digest list of [data, data+size) (see
  // ComputeChunkDigests), chunks already in the store's index are skipped (dedup), and the
  // file's chunk list is accumulated into a per-tag manifest published by
  // FinalizeManifest — which must be called once, after every WriteFileChunked of the tag
  // and before CommitTag. `inherited` counts chunks the caller knows are unchanged vs the
  // parent tag (provenance stats in the manifest; dedup itself never trusts it).
  // The base implementation is a plain WriteFile, so callers can use this path
  // unconditionally and older backends (a v1 wire peer) degrade to full saves.

  virtual bool SupportsChunked() const { return false; }
  virtual Result<ChunkedWriteStats> WriteFileChunked(const std::string& rel,
                                                     const void* data, size_t size,
                                                     const std::vector<uint64_t>& digests,
                                                     bool compress, uint64_t inherited);
  virtual Status FinalizeManifest(const std::string& parent_tag) {
    (void)parent_tag;
    return OkStatus();
  }

 protected:
  explicit StoreWriter(std::string tag) : tag_(std::move(tag)) {}

 private:
  std::string tag_;
};

class Store {
 public:
  virtual ~Store() = default;

  // Human-readable identity ("dir:/path" or "unix:/sock"), for logs and errors.
  virtual std::string Describe() const = 0;

  // Stable identity of `rel` for the process-wide slice cache. LocalStore returns the
  // absolute path (so cache entries made through a Store and through the legacy dir-based
  // API for the same file coincide); RemoteStore returns endpoint-qualified keys.
  virtual std::string CacheKey(const std::string& rel) const = 0;

  // ---- Reads ----------------------------------------------------------------------------

  // Positional access to one file; the handle stays valid independently of the Store's
  // later calls. Remote sources verify nothing themselves — chunk CRCs are checked
  // server-side per READ_RANGE and again by the file views client-side.
  virtual Result<std::unique_ptr<ByteSource>> OpenRead(const std::string& rel) = 0;

  // Whole small file (latest pointers, meta JSON). Not for tensor payloads.
  virtual Result<std::string> ReadSmallFile(const std::string& rel) = 0;

  // True when `rel` exists (file or directory).
  virtual Result<bool> Exists(const std::string& rel) = 0;

  // Entry names under directory `rel` ("" = store root), sorted.
  virtual Result<std::vector<std::string>> List(const std::string& rel) = 0;

  // All checkpoint tags in `job`'s namespace, ascending iteration order (committed or not;
  // callers filter with IsTagComplete).
  virtual Result<std::vector<std::string>> ListTags(const std::string& job) = 0;

  // ---- Staged writes / commit ----------------------------------------------------------

  virtual Result<std::unique_ptr<StoreWriter>> OpenTagForWrite(const std::string& tag) = 0;

  // Clears `<tag>.staging` (debris of a previous crashed save) and recreates it empty.
  virtual Status ResetTagStaging(const std::string& tag) = 0;

  // The commit sequence shared by the synchronous save and the async flusher: metadata into
  // staging, wholesale replacement of any previous `<tag>` commit, atomic rename, marker,
  // then the owning job's `latest` pointer (the namespace is parsed from the tag name).
  // Single-caller (rank 0 / the flusher); staging must hold every shard. `meta_json` is the
  // serialized CheckpointMeta (meta.ToJson().Dump(2)).
  virtual Status CommitTag(const std::string& tag, const std::string& meta_json) = 0;

  // Drops the staging directory of an aborted save. OK when absent.
  virtual Status AbortTag(const std::string& tag) = 0;

  // ---- Retention / GC ------------------------------------------------------------------

  // Removes a committed tag and its cached `.ucp` conversion. OK when absent.
  virtual Status DeleteTag(const std::string& tag) = 0;

  // Namespace-scoped retention (see the long policy comment on LocalStore::Gc).
  virtual Result<GcReport> Gc(const std::string& job, int keep_last, bool dry_run) = 0;

  // Removes stale `<tag>.staging` / `<tag>.ucp.staging` dirs in `job`'s namespace.
  // Returns the number removed.
  virtual Result<int> SweepStagingDebris(const std::string& job) = 0;
};

// ---- Store-generic helpers (compositions of the primitives above) ------------------------

// Reads the job's latest pointer. Advisory — written after the commit marker, so it can lag
// one save behind; resume must use FindLatestValidTag.
Result<std::string> ReadLatestTag(Store& store, const std::string& job = "");

// True when the tag's `complete` commit marker exists (the save finished).
bool IsTagComplete(Store& store, const std::string& tag);

// Fails with kDataLoss on a tag whose save never committed (missing `complete` marker).
Result<CheckpointMeta> ReadCheckpointMeta(Store& store, const std::string& tag);

// Newest committed tag in `job`'s namespace whose metadata parses — the tag a resume
// should trust. kNotFound when no valid tag exists.
Result<std::string> FindLatestValidTag(Store& store, const std::string& job = "");

// Joins store-relative paths with exactly one '/'; "" on either side yields the other.
std::string JoinRel(const std::string& a, const std::string& b);

// Opens a store from an endpoint spec: "unix:/path" or "tcp:host:port" dial a running
// ucp_serverd (RemoteStore); anything else is a local directory (LocalStore).
Result<std::shared_ptr<Store>> OpenStore(const std::string& endpoint);

// True when `endpoint` names a remote store ("unix:" / "tcp:" prefix).
bool IsRemoteEndpoint(const std::string& endpoint);

}  // namespace ucp

#endif  // UCP_SRC_STORE_STORE_H_
