#include "src/comm/rank_fault.h"

#include <atomic>
#include <mutex>
#include <sstream>

namespace ucp {
namespace {

struct ArmedRankFault {
  RankFaultPlan plan;
  int site_hits = 0;   // matching (rank, iteration, site) hits so far
  bool fired = false;
};

std::mutex g_mu;
ArmedRankFault g_fault;                   // guarded by g_mu
std::atomic<bool> g_armed{false};         // fast path: disarmed means one relaxed load
std::atomic<bool> g_fired{false};

thread_local FaultContext tl_context;

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kIterationStart: return "iteration-start";
    case FaultSite::kAllReduce: return "all-reduce";
    case FaultSite::kAllGather: return "all-gather";
    case FaultSite::kReduceScatter: return "reduce-scatter";
    case FaultSite::kBroadcast: return "broadcast";
    case FaultSite::kBarrier: return "barrier";
    case FaultSite::kP2PSend: return "p2p-send";
    case FaultSite::kP2PRecv: return "p2p-recv";
    case FaultSite::kBeforeSave: return "before-save";
    case FaultSite::kAsyncFlush: return "async-flush";
  }
  return "unknown";
}

std::string RankFailure::ToString() const {
  std::ostringstream os;
  os << (kind == Kind::kInjected ? "injected" : "watchdog")
     << " failure: rank " << rank << " at iteration " << iteration
     << " in " << site;
  if (blocked_seconds > 0.0) os << " (blocked " << blocked_seconds << "s)";
  if (!detail.empty()) os << "; " << detail;
  return os.str();
}

RankFailureError::RankFailureError(RankFailure failure)
    : failure_(std::move(failure)), what_(failure_.ToString()) {}

void ArmRankFault(const RankFaultPlan& plan) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_fault = ArmedRankFault{plan, 0, false};
  g_fired.store(false, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void DisarmRankFaults() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_armed.store(false, std::memory_order_release);
  g_fault = ArmedRankFault{};
  g_fired.store(false, std::memory_order_relaxed);
}

bool RankFaultFired() { return g_fired.load(std::memory_order_acquire); }

void SetFaultContext(int rank, int64_t iteration) {
  tl_context.rank = rank;
  tl_context.iteration = iteration;
}

FaultContext CurrentFaultContext() { return tl_context; }

void CheckRankFault(FaultSite site) {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  const FaultContext ctx = tl_context;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (!g_armed.load(std::memory_order_relaxed) || g_fault.fired) return;
    if (g_fault.plan.rank != ctx.rank || g_fault.plan.iteration != ctx.iteration ||
        g_fault.plan.site != site) {
      return;
    }
    if (++g_fault.site_hits < g_fault.plan.nth) return;
    g_fault.fired = true;
    fire = true;
  }
  if (fire) {
    g_fired.store(true, std::memory_order_release);
    RankFailure failure;
    failure.kind = RankFailure::Kind::kInjected;
    failure.rank = ctx.rank;
    failure.iteration = ctx.iteration;
    failure.site = FaultSiteName(site);
    failure.detail = "rank killed by armed RankFaultPlan";
    throw RankFailureError(std::move(failure));
  }
}

}  // namespace ucp
