// Rank-failure model for the simulated runtime: the failure descriptor every layer shares,
// the one exception type that may cross stack frames, and a deterministic rank-kill
// injector mirroring the filesystem injector in src/common/fault_fs.h.
//
// Failure semantics are fail-stop: a killed rank simply stops participating — it deposits
// nothing further into collectives and sends nothing over the mailbox. Peers cannot observe
// the death directly; they detect it when a collective or P2P receive exceeds the world's
// watchdog timeout (comm.h), at which point the detecting rank aborts the whole world and
// every blocked rank unwinds with a RankFailureError. The recovery supervisor
// (src/runtime/supervisor.h) catches the failure, shrinks the parallelism strategy, and
// resumes from the newest committed checkpoint.
//
// Exceptions: the library otherwise returns Status, but a rank failure must unwind
// arbitrary model/optimizer code blocked deep inside a collective, which is exactly what
// exceptions are for. RankFailureError is thrown only by this module and by the abortable
// waits in comm.cc, and is caught only at rank-thread top level (RunSpmdFallible /
// TrainingRun::TryTrain). It never crosses the public Status-based API.

#ifndef UCP_SRC_COMM_RANK_FAULT_H_
#define UCP_SRC_COMM_RANK_FAULT_H_

#include <cstdint>
#include <exception>
#include <string>

namespace ucp {

// Where a rank kill can be injected / a hang detected. The collective sites fire at entry
// to the corresponding ProcessGroup call — the victim dies without depositing, which is
// what leaves peers blocked mid-collective.
enum class FaultSite {
  kIterationStart = 0,  // top of RankTrainer::TrainIteration
  kAllReduce,
  kAllGather,
  kReduceScatter,
  kBroadcast,
  kBarrier,
  kP2PSend,
  kP2PRecv,
  kBeforeSave,   // in the checkpoint hook, before this rank's SaveAsync snapshot
  kAsyncFlush,   // in the checkpoint hook, after the snapshot, while the flush is in flight
};

const char* FaultSiteName(FaultSite site);

// One rank failure, as seen by whoever reports it.
struct RankFailure {
  enum class Kind {
    kInjected,  // this rank's own (simulated) death
    kWatchdog,  // a peer declared this rank failed after a watchdog timeout
  };
  Kind kind = Kind::kWatchdog;
  int rank = -1;             // failed (or suspected) global rank; -1 when unknown
  int64_t iteration = -1;    // iteration the reporting rank was executing; -1 outside training
  std::string site;          // FaultSiteName(...) or a watchdog wait-site label
  std::string detail;        // free-form: who detected it, how long they waited, ...
  double blocked_seconds = 0.0;  // how long the detector waited before declaring (watchdog)

  std::string ToString() const;
};

// Thrown by the comm layer (watchdog / world abort) and by CheckRankFault (injected kill).
class RankFailureError : public std::exception {
 public:
  explicit RankFailureError(RankFailure failure);
  const RankFailure& failure() const { return failure_; }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  RankFailure failure_;
  std::string what_;
};

// Deterministic rank-kill plan: kill `rank` at the `nth` hit of `site` during `iteration`.
// Process-global like FaultPlan; the plan fires exactly once and stays spent until
// DisarmRankFaults().
struct RankFaultPlan {
  int rank = -1;
  int64_t iteration = 0;
  FaultSite site = FaultSite::kAllReduce;
  int nth = 1;  // fire on the nth matching site hit (1-based) within that iteration
};

void ArmRankFault(const RankFaultPlan& plan);
void DisarmRankFaults();
bool RankFaultFired();

// RAII arming for tests.
class ScopedRankFault {
 public:
  explicit ScopedRankFault(const RankFaultPlan& plan) { ArmRankFault(plan); }
  ~ScopedRankFault() { DisarmRankFaults(); }
  ScopedRankFault(const ScopedRankFault&) = delete;
  ScopedRankFault& operator=(const ScopedRankFault&) = delete;
};

// Thread-local identity of the simulated rank running on this thread, consulted by the
// injector (does the armed plan target me?) and by the watchdog (who detected the failure,
// at which iteration). RunSpmd sets the rank at thread start; TrainIteration refreshes the
// iteration each step.
struct FaultContext {
  int rank = -1;
  int64_t iteration = -1;
};
void SetFaultContext(int rank, int64_t iteration);
FaultContext CurrentFaultContext();

// The injection hook: throws RankFailureError (Kind::kInjected) when the armed plan matches
// this thread's context and `site`. Disarmed, it is a single relaxed atomic load.
void CheckRankFault(FaultSite site);

}  // namespace ucp

#endif  // UCP_SRC_COMM_RANK_FAULT_H_
