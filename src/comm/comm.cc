#include "src/comm/comm.h"

#include <algorithm>
#include <sstream>
#include <thread>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ucp {
namespace internal {
namespace {

// Poll quantum for abortable waits. Waiters re-check their predicate, the abort flag, and
// the watchdog deadline at least this often, so a world abort unwinds every blocked rank
// within ~one quantum without any cross-group notification plumbing.
constexpr std::chrono::milliseconds kWaitQuantum{2};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

thread_local int tl_watchdog_suspend_depth = 0;

}  // namespace

bool WatchdogSuspended() { return tl_watchdog_suspend_depth > 0; }

RankFailure AbortState::Abort(RankFailure failure) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!aborted_.load(std::memory_order_relaxed)) {
    failure_ = std::move(failure);
    aborted_.store(true, std::memory_order_release);
  }
  return failure_;
}

RankFailure AbortState::failure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failure_;
}

void AbortState::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  aborted_.store(false, std::memory_order_release);
  failure_ = RankFailure{};
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

GroupState::GroupState(std::vector<int> member_ranks, std::shared_ptr<AbortState> abort)
    : members_(std::move(member_ranks)), abort_(std::move(abort)) {
  UCP_CHECK(!members_.empty());
  UCP_CHECK(abort_ != nullptr);
  slots_.resize(members_.size(), nullptr);
}

int GroupState::IndexOf(int global_rank) const {
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == global_rank) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void GroupState::FailWatchdog(std::chrono::steady_clock::time_point wait_start,
                              const char* wait_site, int suspect_rank) {
  const FaultContext ctx = CurrentFaultContext();
  RankFailure failure;
  failure.kind = RankFailure::Kind::kWatchdog;
  failure.rank = suspect_rank;
  failure.iteration = ctx.iteration;
  failure.site = wait_site;
  failure.blocked_seconds = SecondsSince(wait_start);
  std::ostringstream detail;
  detail << "rank " << ctx.rank << " watchdog expired after "
         << abort_->watchdog().count() << "ms in " << wait_site;
  failure.detail = detail.str();
  // First caller wins: if another rank already aborted the world, propagate its (earlier)
  // root cause instead of ours.
  throw RankFailureError(abort_->Abort(std::move(failure)));
}

const std::vector<const void*>& GroupState::Exchange(int index, const void* p) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto wait_start = std::chrono::steady_clock::now();
  const auto deadline = wait_start + abort_->watchdog();

  // Wait for the previous collective on this group to fully retire. The predicate is checked
  // before the abort flag: if the op retired we are free to proceed even in an aborted world
  // (the deposit-time check below still refuses to start a new op).
  while (consuming_) {
    if (abort_->aborted()) throw RankFailureError(abort_->failure());
    if (!WatchdogSuspended() && std::chrono::steady_clock::now() >= deadline) {
      // Retirement is normally guaranteed (see Done()); reaching this means the world is
      // genuinely wedged. No specific peer to blame.
      FailWatchdog(wait_start, "collective-entry", /*suspect_rank=*/-1);
    }
    cv_.wait_for(lock, kWaitQuantum);
  }
  UCP_CHECK_GE(index, 0);
  UCP_CHECK_LT(index, size());
  UCP_CHECK(slots_[static_cast<size_t>(index)] == nullptr)
      << "rank deposited twice into one collective";
  // Abort check immediately before depositing, in the same critical section: a member of an
  // aborted world must never deposit, or a lagging peer could complete the op and read this
  // frame's buffer after we unwound.
  if (abort_->aborted()) throw RankFailureError(abort_->failure());
  slots_[static_cast<size_t>(index)] = p;
  ++deposited_;
  if (deposited_ == size()) {
    consuming_ = true;
    consumed_ = 0;
    cv_.notify_all();
  } else {
    // Predicate before abort flag: once the last member flips consuming_, the op WILL be
    // read by peers, so we must stay and complete it normally; only an op that can still be
    // cancelled (consuming_ false, our retraction below) may unwind.
    while (!consuming_) {
      const bool aborted = abort_->aborted();
      const bool expired =
          !WatchdogSuspended() && std::chrono::steady_clock::now() >= deadline;
      if (aborted || expired) {
        // Retract our deposit so the op can never complete and read our unwound frame. Any
        // member that would have completed it instead observes the abort flag at its own
        // deposit-time check and unwinds too.
        slots_[static_cast<size_t>(index)] = nullptr;
        --deposited_;
        if (aborted) throw RankFailureError(abort_->failure());
        int suspect = -1;
        for (size_t i = 0; i < slots_.size(); ++i) {
          if (slots_[i] == nullptr) {
            suspect = members_[i];
            break;
          }
        }
        FailWatchdog(wait_start, "collective-deposit", suspect);
      }
      cv_.wait_for(lock, kWaitQuantum);
    }
  }
  return slots_;
}

void GroupState::Done() {
  std::unique_lock<std::mutex> lock(mu_);
  UCP_CHECK(consuming_) << "Done() without Exchange()";
  ++consumed_;
  if (consumed_ == size()) {
    std::fill(slots_.begin(), slots_.end(), nullptr);
    deposited_ = 0;
    consuming_ = false;
    cv_.notify_all();
  } else {
    // Block until the op retires so no member can race ahead and mutate its deposited
    // buffer while peers are still reading it. Deliberately not abort-sensitive: every
    // member deposited, so every member is alive on the straight-line path to Done() and
    // retirement is guaranteed (see header comment).
    cv_.wait(lock, [this] { return !consuming_; });
  }
}

void Mailbox::Send(int src, int dst, Tensor t) {
  // Fail fast instead of queueing into a poisoned world.
  if (abort_->aborted()) throw RankFailureError(abort_->failure());
  {
    std::lock_guard<std::mutex> lock(mu_);
    channels_[{src, dst}].push_back(std::move(t));
  }
  cv_.notify_all();
}

Tensor Mailbox::Recv(int src, int dst) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto wait_start = std::chrono::steady_clock::now();
  const auto deadline = wait_start + abort_->watchdog();
  auto key = std::make_pair(src, dst);
  auto has_message = [this, &key] {
    auto it = channels_.find(key);
    return it != channels_.end() && !it->second.empty();
  };
  // Predicate before abort flag: an already-delivered message is consumed normally.
  while (!has_message()) {
    if (abort_->aborted()) throw RankFailureError(abort_->failure());
    if (!WatchdogSuspended() && std::chrono::steady_clock::now() >= deadline) {
      const FaultContext ctx = CurrentFaultContext();
      RankFailure failure;
      failure.kind = RankFailure::Kind::kWatchdog;
      failure.rank = src;  // the peer that never sent
      failure.iteration = ctx.iteration;
      failure.site = "p2p-recv";
      failure.blocked_seconds = SecondsSince(wait_start);
      std::ostringstream detail;
      detail << "rank " << dst << " watchdog expired waiting for message from rank " << src;
      failure.detail = detail.str();
      throw RankFailureError(abort_->Abort(std::move(failure)));
    }
    cv_.wait_for(lock, kWaitQuantum);
  }
  Tensor t = std::move(channels_[key].front());
  channels_[key].pop_front();
  return t;
}

}  // namespace internal

namespace {

// Per-op comm metrics, resolved once per callsite (`static CollectiveMetrics m("allreduce")`).
// `wait` records time blocked in Exchange/Recv — the part attributable to peer skew — as
// opposed to the local reduce/copy work, which the enclosing span captures as the remainder.
struct CollectiveMetrics {
  obs::Counter& calls;
  obs::Counter& bytes;
  obs::Histogram& wait;

  explicit CollectiveMetrics(const std::string& op)
      : calls(obs::MetricsRegistry::Global().GetCounter("comm." + op + ".calls")),
        bytes(obs::MetricsRegistry::Global().GetCounter("comm." + op + ".bytes")),
        wait(obs::MetricsRegistry::Global().GetHistogram("comm." + op + ".wait_seconds")) {}

  void Record(uint64_t nbytes, double wait_seconds) {
    calls.Add(1);
    bytes.Add(nbytes);
    wait.Observe(wait_seconds);
  }
};

}  // namespace

ScopedWatchdogSuspend::ScopedWatchdogSuspend() { ++internal::tl_watchdog_suspend_depth; }
ScopedWatchdogSuspend::~ScopedWatchdogSuspend() { --internal::tl_watchdog_suspend_depth; }

World::World(int size, WorldOptions options)
    : size_(size),
      options_(options),
      abort_(std::make_shared<internal::AbortState>(options.watchdog_timeout)),
      mailbox_(abort_) {
  UCP_CHECK_GT(size, 0);
  UCP_CHECK_GT(options_.watchdog_timeout.count(), 0);
}

std::shared_ptr<internal::GroupState> World::CreateGroup(const std::vector<int>& ranks) {
  UCP_CHECK(!ranks.empty());
  for (int r : ranks) {
    UCP_CHECK_GE(r, 0);
    UCP_CHECK_LT(r, size_);
  }
  return std::make_shared<internal::GroupState>(ranks, abort_);
}

void World::Send(int src_rank, int dst_rank, const Tensor& t) {
  const uint64_t nbytes = static_cast<uint64_t>(t.numel()) * sizeof(float);
  UCP_TRACE_NAMED_SPAN(span, "comm.p2p.send");
  UCP_TRACE_SPAN_ARG_I(span, "dst", dst_rank);
  UCP_TRACE_SPAN_ARG_I(span, "bytes", static_cast<int64_t>(nbytes));
  CheckRankFault(FaultSite::kP2PSend);
  mailbox_.Send(src_rank, dst_rank, t.Clone());
  static CollectiveMetrics m("p2p.send");
  m.Record(nbytes, 0.0);
}

Tensor World::Recv(int src_rank, int dst_rank) {
  UCP_TRACE_NAMED_SPAN(span, "comm.p2p.recv");
  UCP_TRACE_SPAN_ARG_I(span, "src", src_rank);
  CheckRankFault(FaultSite::kP2PRecv);
  const auto wait_start = std::chrono::steady_clock::now();
  Tensor t = mailbox_.Recv(src_rank, dst_rank);
  const double wait_s = internal::SecondsSince(wait_start);
  const uint64_t nbytes = static_cast<uint64_t>(t.numel()) * sizeof(float);
  static CollectiveMetrics m("p2p.recv");
  m.Record(nbytes, wait_s);
  UCP_TRACE_SPAN_ARG_I(span, "bytes", static_cast<int64_t>(nbytes));
  UCP_TRACE_SPAN_ARG_D(span, "wait_ms", wait_s * 1e3);
  return t;
}

ProcessGroup::ProcessGroup(std::shared_ptr<internal::GroupState> state, int global_rank)
    : state_(std::move(state)) {
  index_ = state_->IndexOf(global_rank);
  UCP_CHECK_GE(index_, 0) << "rank " << global_rank << " is not a member of this group";
}

void ProcessGroup::AllReduceSum(Tensor& t) const {
  const uint64_t nbytes = static_cast<uint64_t>(t.numel()) * sizeof(float);
  UCP_TRACE_NAMED_SPAN(span, "comm.allreduce");
  UCP_TRACE_SPAN_ARG_S(span, "op", "sum");
  UCP_TRACE_SPAN_ARG_I(span, "bytes", static_cast<int64_t>(nbytes));
  CheckRankFault(FaultSite::kAllReduce);
  const auto wait_start = std::chrono::steady_clock::now();
  const auto& slots = state_->Exchange(index_, &t);
  const double wait_s = internal::SecondsSince(wait_start);
  // Accumulate in group order into a temporary; writing into `t` before Done() would corrupt
  // peers that still read our slot.
  Tensor result = Tensor::Zeros(t.shape());
  for (const void* slot : slots) {
    const auto* contrib = static_cast<const Tensor*>(slot);
    UCP_CHECK_EQ(contrib->numel(), t.numel()) << "AllReduceSum shape mismatch";
    result.Add_(*contrib);
  }
  state_->Done();
  t.CopyFrom(result);
  static CollectiveMetrics m("allreduce");
  m.Record(nbytes, wait_s);
  UCP_TRACE_SPAN_ARG_D(span, "wait_ms", wait_s * 1e3);
}

void ProcessGroup::AllReduceMax(Tensor& t) const {
  const uint64_t nbytes = static_cast<uint64_t>(t.numel()) * sizeof(float);
  UCP_TRACE_NAMED_SPAN(span, "comm.allreduce");
  UCP_TRACE_SPAN_ARG_S(span, "op", "max");
  UCP_TRACE_SPAN_ARG_I(span, "bytes", static_cast<int64_t>(nbytes));
  CheckRankFault(FaultSite::kAllReduce);
  const auto wait_start = std::chrono::steady_clock::now();
  const auto& slots = state_->Exchange(index_, &t);
  const double wait_s = internal::SecondsSince(wait_start);
  Tensor result = Tensor::Full(t.shape(), -std::numeric_limits<float>::infinity());
  float* out = result.data();
  for (const void* slot : slots) {
    const auto* contrib = static_cast<const Tensor*>(slot);
    UCP_CHECK_EQ(contrib->numel(), t.numel()) << "AllReduceMax shape mismatch";
    const float* in = contrib->data();
    for (int64_t i = 0; i < t.numel(); ++i) {
      out[i] = std::max(out[i], in[i]);
    }
  }
  state_->Done();
  t.CopyFrom(result);
  static CollectiveMetrics m("allreduce");
  m.Record(nbytes, wait_s);
  UCP_TRACE_SPAN_ARG_D(span, "wait_ms", wait_s * 1e3);
}

double ProcessGroup::AllReduceSumScalar(double v) const {
  UCP_TRACE_NAMED_SPAN(span, "comm.allreduce_scalar");
  CheckRankFault(FaultSite::kAllReduce);
  const auto wait_start = std::chrono::steady_clock::now();
  const auto& slots = state_->Exchange(index_, &v);
  const double wait_s = internal::SecondsSince(wait_start);
  double sum = 0.0;
  for (const void* slot : slots) {
    sum += *static_cast<const double*>(slot);
  }
  state_->Done();
  static CollectiveMetrics m("allreduce_scalar");
  m.Record(sizeof(double), wait_s);
  UCP_TRACE_SPAN_ARG_D(span, "wait_ms", wait_s * 1e3);
  return sum;
}

double ProcessGroup::AllReduceMaxScalar(double v) const {
  UCP_TRACE_NAMED_SPAN(span, "comm.allreduce_scalar");
  CheckRankFault(FaultSite::kAllReduce);
  const auto wait_start = std::chrono::steady_clock::now();
  const auto& slots = state_->Exchange(index_, &v);
  const double wait_s = internal::SecondsSince(wait_start);
  double max_v = -std::numeric_limits<double>::infinity();
  for (const void* slot : slots) {
    max_v = std::max(max_v, *static_cast<const double*>(slot));
  }
  state_->Done();
  static CollectiveMetrics m("allreduce_scalar");
  m.Record(sizeof(double), wait_s);
  UCP_TRACE_SPAN_ARG_D(span, "wait_ms", wait_s * 1e3);
  return max_v;
}

std::vector<Tensor> ProcessGroup::AllGatherTensors(const Tensor& t) const {
  const uint64_t nbytes = static_cast<uint64_t>(t.numel()) * sizeof(float);
  UCP_TRACE_NAMED_SPAN(span, "comm.allgather");
  UCP_TRACE_SPAN_ARG_I(span, "bytes", static_cast<int64_t>(nbytes));
  CheckRankFault(FaultSite::kAllGather);
  const auto wait_start = std::chrono::steady_clock::now();
  const auto& slots = state_->Exchange(index_, &t);
  const double wait_s = internal::SecondsSince(wait_start);
  std::vector<Tensor> out;
  out.reserve(slots.size());
  for (const void* slot : slots) {
    out.push_back(static_cast<const Tensor*>(slot)->Clone());
  }
  state_->Done();
  static CollectiveMetrics m("allgather");
  m.Record(nbytes, wait_s);
  UCP_TRACE_SPAN_ARG_D(span, "wait_ms", wait_s * 1e3);
  return out;
}

Tensor ProcessGroup::AllGatherConcat(const Tensor& t, int dim) const {
  std::vector<Tensor> gathered = AllGatherTensors(t);
  return Tensor::Concat(gathered, dim);
}

void ProcessGroup::ReduceScatterSum(const Tensor& full, Tensor& shard) const {
  const uint64_t nbytes = static_cast<uint64_t>(full.numel()) * sizeof(float);
  UCP_TRACE_NAMED_SPAN(span, "comm.reduce_scatter");
  UCP_TRACE_SPAN_ARG_I(span, "bytes", static_cast<int64_t>(nbytes));
  CheckRankFault(FaultSite::kReduceScatter);
  UCP_CHECK_EQ(full.numel() % size(), 0) << "ReduceScatterSum: numel not divisible by group";
  int64_t shard_numel = full.numel() / size();
  UCP_CHECK_EQ(shard.numel(), shard_numel) << "ReduceScatterSum: bad shard size";

  const auto wait_start = std::chrono::steady_clock::now();
  const auto& slots = state_->Exchange(index_, &full);
  const double wait_s = internal::SecondsSince(wait_start);
  Tensor result = Tensor::Zeros({shard_numel});
  float* out = result.data();
  int64_t base = static_cast<int64_t>(index_) * shard_numel;
  for (const void* slot : slots) {
    const auto* contrib = static_cast<const Tensor*>(slot);
    UCP_CHECK_EQ(contrib->numel(), full.numel()) << "ReduceScatterSum shape mismatch";
    const float* in = contrib->data() + base;
    for (int64_t i = 0; i < shard_numel; ++i) {
      out[i] += in[i];
    }
  }
  state_->Done();
  shard.CopyFrom(result);
  static CollectiveMetrics m("reduce_scatter");
  m.Record(nbytes, wait_s);
  UCP_TRACE_SPAN_ARG_D(span, "wait_ms", wait_s * 1e3);
}

void ProcessGroup::Broadcast(Tensor& t, int root_index) const {
  const uint64_t nbytes = static_cast<uint64_t>(t.numel()) * sizeof(float);
  UCP_TRACE_NAMED_SPAN(span, "comm.broadcast");
  UCP_TRACE_SPAN_ARG_I(span, "bytes", static_cast<int64_t>(nbytes));
  CheckRankFault(FaultSite::kBroadcast);
  UCP_CHECK_GE(root_index, 0);
  UCP_CHECK_LT(root_index, size());
  const auto wait_start = std::chrono::steady_clock::now();
  const auto& slots = state_->Exchange(index_, &t);
  const double wait_s = internal::SecondsSince(wait_start);
  const auto* root = static_cast<const Tensor*>(slots[static_cast<size_t>(root_index)]);
  UCP_CHECK_EQ(root->numel(), t.numel()) << "Broadcast shape mismatch";
  Tensor copy = root->Clone();
  state_->Done();
  if (index_ != root_index) {
    t.CopyFrom(copy);
  }
  static CollectiveMetrics m("broadcast");
  m.Record(nbytes, wait_s);
  UCP_TRACE_SPAN_ARG_D(span, "wait_ms", wait_s * 1e3);
}

void ProcessGroup::Barrier() const {
  UCP_TRACE_NAMED_SPAN(span, "comm.barrier");
  CheckRankFault(FaultSite::kBarrier);
  const auto wait_start = std::chrono::steady_clock::now();
  int token = 0;
  state_->Exchange(index_, &token);
  const double wait_s = internal::SecondsSince(wait_start);
  state_->Done();
  static CollectiveMetrics m("barrier");
  m.Record(0, wait_s);
  UCP_TRACE_SPAN_ARG_D(span, "wait_ms", wait_s * 1e3);
}

void RunSpmd(int world_size, const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    threads.emplace_back([&body, r] {
      SetFaultContext(r, -1);
      obs::SetThreadRank(r);
      try {
        body(r);
      } catch (const RankFailureError& e) {
        UCP_CHECK(false) << "unhandled rank failure in RunSpmd (use RunSpmdFallible): "
                         << e.what();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

std::vector<std::optional<RankFailure>> RunSpmdFallible(
    int world_size, const std::function<void(int)>& body) {
  std::vector<std::optional<RankFailure>> failures(static_cast<size_t>(world_size));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    threads.emplace_back([&body, &failures, r] {
      SetFaultContext(r, -1);
      obs::SetThreadRank(r);
      try {
        body(r);
      } catch (const RankFailureError& e) {
        failures[static_cast<size_t>(r)] = e.failure();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  return failures;
}

}  // namespace ucp
