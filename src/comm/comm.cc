#include "src/comm/comm.h"

#include <algorithm>
#include <thread>

namespace ucp {
namespace internal {

GroupState::GroupState(std::vector<int> member_ranks) : members_(std::move(member_ranks)) {
  UCP_CHECK(!members_.empty());
  slots_.resize(members_.size(), nullptr);
}

int GroupState::IndexOf(int global_rank) const {
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == global_rank) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const std::vector<const void*>& GroupState::Exchange(int index, const void* p) {
  std::unique_lock<std::mutex> lock(mu_);
  // Wait for the previous collective on this group to fully retire.
  cv_.wait(lock, [this] { return !consuming_; });
  UCP_CHECK_GE(index, 0);
  UCP_CHECK_LT(index, size());
  UCP_CHECK(slots_[static_cast<size_t>(index)] == nullptr)
      << "rank deposited twice into one collective";
  slots_[static_cast<size_t>(index)] = p;
  ++deposited_;
  if (deposited_ == size()) {
    consuming_ = true;
    consumed_ = 0;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [this] { return consuming_; });
  }
  return slots_;
}

void GroupState::Done() {
  std::unique_lock<std::mutex> lock(mu_);
  UCP_CHECK(consuming_) << "Done() without Exchange()";
  ++consumed_;
  if (consumed_ == size()) {
    std::fill(slots_.begin(), slots_.end(), nullptr);
    deposited_ = 0;
    consuming_ = false;
    cv_.notify_all();
  } else {
    // Block until the op retires so no member can race ahead and mutate its deposited
    // buffer while peers are still reading it.
    cv_.wait(lock, [this] { return !consuming_; });
  }
}

void Mailbox::Send(int src, int dst, Tensor t) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    channels_[{src, dst}].push_back(std::move(t));
  }
  cv_.notify_all();
}

Tensor Mailbox::Recv(int src, int dst) {
  std::unique_lock<std::mutex> lock(mu_);
  auto key = std::make_pair(src, dst);
  cv_.wait(lock, [this, &key] {
    auto it = channels_.find(key);
    return it != channels_.end() && !it->second.empty();
  });
  Tensor t = std::move(channels_[key].front());
  channels_[key].pop_front();
  return t;
}

}  // namespace internal

World::World(int size) : size_(size) { UCP_CHECK_GT(size, 0); }

std::shared_ptr<internal::GroupState> World::CreateGroup(const std::vector<int>& ranks) {
  UCP_CHECK(!ranks.empty());
  for (int r : ranks) {
    UCP_CHECK_GE(r, 0);
    UCP_CHECK_LT(r, size_);
  }
  return std::make_shared<internal::GroupState>(ranks);
}

void World::Send(int src_rank, int dst_rank, const Tensor& t) {
  mailbox_.Send(src_rank, dst_rank, t.Clone());
}

Tensor World::Recv(int src_rank, int dst_rank) { return mailbox_.Recv(src_rank, dst_rank); }

ProcessGroup::ProcessGroup(std::shared_ptr<internal::GroupState> state, int global_rank)
    : state_(std::move(state)) {
  index_ = state_->IndexOf(global_rank);
  UCP_CHECK_GE(index_, 0) << "rank " << global_rank << " is not a member of this group";
}

void ProcessGroup::AllReduceSum(Tensor& t) const {
  const auto& slots = state_->Exchange(index_, &t);
  // Accumulate in group order into a temporary; writing into `t` before Done() would corrupt
  // peers that still read our slot.
  Tensor result = Tensor::Zeros(t.shape());
  for (const void* slot : slots) {
    const auto* contrib = static_cast<const Tensor*>(slot);
    UCP_CHECK_EQ(contrib->numel(), t.numel()) << "AllReduceSum shape mismatch";
    result.Add_(*contrib);
  }
  state_->Done();
  t.CopyFrom(result);
}

void ProcessGroup::AllReduceMax(Tensor& t) const {
  const auto& slots = state_->Exchange(index_, &t);
  Tensor result = Tensor::Full(t.shape(), -std::numeric_limits<float>::infinity());
  float* out = result.data();
  for (const void* slot : slots) {
    const auto* contrib = static_cast<const Tensor*>(slot);
    UCP_CHECK_EQ(contrib->numel(), t.numel()) << "AllReduceMax shape mismatch";
    const float* in = contrib->data();
    for (int64_t i = 0; i < t.numel(); ++i) {
      out[i] = std::max(out[i], in[i]);
    }
  }
  state_->Done();
  t.CopyFrom(result);
}

double ProcessGroup::AllReduceSumScalar(double v) const {
  const auto& slots = state_->Exchange(index_, &v);
  double sum = 0.0;
  for (const void* slot : slots) {
    sum += *static_cast<const double*>(slot);
  }
  state_->Done();
  return sum;
}

double ProcessGroup::AllReduceMaxScalar(double v) const {
  const auto& slots = state_->Exchange(index_, &v);
  double m = -std::numeric_limits<double>::infinity();
  for (const void* slot : slots) {
    m = std::max(m, *static_cast<const double*>(slot));
  }
  state_->Done();
  return m;
}

std::vector<Tensor> ProcessGroup::AllGatherTensors(const Tensor& t) const {
  const auto& slots = state_->Exchange(index_, &t);
  std::vector<Tensor> out;
  out.reserve(slots.size());
  for (const void* slot : slots) {
    out.push_back(static_cast<const Tensor*>(slot)->Clone());
  }
  state_->Done();
  return out;
}

Tensor ProcessGroup::AllGatherConcat(const Tensor& t, int dim) const {
  std::vector<Tensor> gathered = AllGatherTensors(t);
  return Tensor::Concat(gathered, dim);
}

void ProcessGroup::ReduceScatterSum(const Tensor& full, Tensor& shard) const {
  UCP_CHECK_EQ(full.numel() % size(), 0) << "ReduceScatterSum: numel not divisible by group";
  int64_t shard_numel = full.numel() / size();
  UCP_CHECK_EQ(shard.numel(), shard_numel) << "ReduceScatterSum: bad shard size";

  const auto& slots = state_->Exchange(index_, &full);
  Tensor result = Tensor::Zeros({shard_numel});
  float* out = result.data();
  int64_t base = static_cast<int64_t>(index_) * shard_numel;
  for (const void* slot : slots) {
    const auto* contrib = static_cast<const Tensor*>(slot);
    UCP_CHECK_EQ(contrib->numel(), full.numel()) << "ReduceScatterSum shape mismatch";
    const float* in = contrib->data() + base;
    for (int64_t i = 0; i < shard_numel; ++i) {
      out[i] += in[i];
    }
  }
  state_->Done();
  shard.CopyFrom(result);
}

void ProcessGroup::Broadcast(Tensor& t, int root_index) const {
  UCP_CHECK_GE(root_index, 0);
  UCP_CHECK_LT(root_index, size());
  const auto& slots = state_->Exchange(index_, &t);
  const auto* root = static_cast<const Tensor*>(slots[static_cast<size_t>(root_index)]);
  UCP_CHECK_EQ(root->numel(), t.numel()) << "Broadcast shape mismatch";
  Tensor copy = root->Clone();
  state_->Done();
  if (index_ != root_index) {
    t.CopyFrom(copy);
  }
}

void ProcessGroup::Barrier() const {
  int token = 0;
  state_->Exchange(index_, &token);
  state_->Done();
}

void RunSpmd(int world_size, const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    threads.emplace_back([&body, r] { body(r); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

}  // namespace ucp
