// Simulated collective communication for the SPMD training runtime.
//
// This is the repository's NCCL substitute (see DESIGN.md). A World hosts `size` simulated
// ranks, each running on its own OS thread. ProcessGroup exposes the collectives the
// parallelism strategies need: all-reduce (gradient sync in DP, partial-sum reduction in
// row-parallel TP), all-gather (ZeRO-3 parameter reconstruction, TP output assembly),
// reduce-scatter (ZeRO-2/3 gradient partitioning), broadcast, barrier, and point-to-point
// send/recv (pipeline-parallel activations).
//
// Determinism: every reduction iterates contributions in *group rank order*, independent of
// thread arrival order. Each rank computes the reduction locally from the same ordered slot
// vector, so all ranks observe bit-identical results and repeated runs are reproducible —
// the property the resume-bit-exactness tests rely on.

#ifndef UCP_SRC_COMM_COMM_H_
#define UCP_SRC_COMM_COMM_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/tensor/tensor.h"

namespace ucp {

namespace internal {

// Rendezvous shared by all member ranks of one group. Implements a deposit/consume protocol:
// every member deposits a pointer, all members see the full slot vector, and the op retires
// only after every member signals completion — so no member may mutate its deposited buffer
// until the collective returns.
class GroupState {
 public:
  explicit GroupState(std::vector<int> member_ranks);

  int size() const { return static_cast<int>(members_.size()); }
  const std::vector<int>& members() const { return members_; }
  // Index of `global_rank` within the group, or -1.
  int IndexOf(int global_rank) const;

  // Deposits `p` at `index`; returns once all members have deposited. The returned vector is
  // ordered by group index and stays valid until Done() is called.
  const std::vector<const void*>& Exchange(int index, const void* p);
  // Marks this member finished with the slot vector; returns once all members are finished.
  void Done();

 private:
  std::vector<int> members_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<const void*> slots_;
  int deposited_ = 0;
  int consumed_ = 0;
  bool consuming_ = false;
};

// Blocking FIFO channels for point-to-point messages, keyed by (src, dst).
class Mailbox {
 public:
  void Send(int src, int dst, Tensor t);
  Tensor Recv(int src, int dst);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::pair<int, int>, std::deque<Tensor>> channels_;
};

}  // namespace internal

class ProcessGroup;

// The simulated cluster. Create one World per training run; build groups on the launcher
// thread (identical group layout for every rank), then hand per-rank ProcessGroup handles to
// rank threads.
class World {
 public:
  explicit World(int size);

  int size() const { return size_; }

  // Creates the shared state for a group over the given global ranks (must be distinct,
  // in-range; order defines the group's canonical reduction order).
  std::shared_ptr<internal::GroupState> CreateGroup(const std::vector<int>& ranks);

  // Point-to-point (used by pipeline parallelism). Send copies; Recv blocks.
  void Send(int src_rank, int dst_rank, const Tensor& t);
  Tensor Recv(int src_rank, int dst_rank);

 private:
  int size_;
  internal::Mailbox mailbox_;
};

// A rank's handle to one communication group. Value type; cheap to copy.
class ProcessGroup {
 public:
  ProcessGroup() = default;  // invalid handle
  ProcessGroup(std::shared_ptr<internal::GroupState> state, int global_rank);

  bool valid() const { return state_ != nullptr; }
  int size() const { return state_->size(); }
  // This rank's index within the group (0 .. size-1).
  int index() const { return index_; }
  const std::vector<int>& members() const { return state_->members(); }

  // In-place sum all-reduce over the group.
  void AllReduceSum(Tensor& t) const;
  // Elementwise max all-reduce (used for overflow checks in MPT simulation).
  void AllReduceMax(Tensor& t) const;
  double AllReduceSumScalar(double v) const;
  double AllReduceMaxScalar(double v) const;

  // Returns every member's tensor, ordered by group index. Shapes may differ across ranks
  // (ZeRO-3 ragged shards).
  std::vector<Tensor> AllGatherTensors(const Tensor& t) const;
  // Concatenates the gathered tensors along `dim` (all shapes must agree off-dim).
  Tensor AllGatherConcat(const Tensor& t, int dim) const;

  // Sums members' `full` tensors (all the same shape, numel divisible by size) and writes
  // this rank's contiguous 1/size slice of the flattened sum into `shard`.
  void ReduceScatterSum(const Tensor& full, Tensor& shard) const;

  // Copies root's tensor into every member's `t` (shapes must match).
  void Broadcast(Tensor& t, int root_index) const;

  void Barrier() const;

 private:
  std::shared_ptr<internal::GroupState> state_;
  int index_ = -1;
};

// Runs `body(rank)` on world_size threads and joins them. UCP_CHECK failures abort the whole
// process, matching how a fatal rank error kills a real job.
void RunSpmd(int world_size, const std::function<void(int)>& body);

}  // namespace ucp

#endif  // UCP_SRC_COMM_COMM_H_
