// Simulated collective communication for the SPMD training runtime.
//
// This is the repository's NCCL substitute (see DESIGN.md). A World hosts `size` simulated
// ranks, each running on its own OS thread. ProcessGroup exposes the collectives the
// parallelism strategies need: all-reduce (gradient sync in DP, partial-sum reduction in
// row-parallel TP), all-gather (ZeRO-3 parameter reconstruction, TP output assembly),
// reduce-scatter (ZeRO-2/3 gradient partitioning), broadcast, barrier, and point-to-point
// send/recv (pipeline-parallel activations).
//
// Determinism: every reduction iterates contributions in *group rank order*, independent of
// thread arrival order. Each rank computes the reduction locally from the same ordered slot
// vector, so all ranks observe bit-identical results and repeated runs are reproducible —
// the property the resume-bit-exactness tests rely on.
//
// Fault tolerance: every blocking wait (collective rendezvous, P2P receive) is abortable.
// The World carries an epoch'd abort flag plus a watchdog deadline; a rank blocked longer
// than `WorldOptions::watchdog_timeout` declares the suspected peer failed, aborts the whole
// world (first caller wins), and every blocked rank unwinds with a RankFailureError instead
// of deadlocking. An aborted World is poisoned — subsequent collective calls throw — and is
// expected to be torn down and rebuilt by the recovery supervisor (src/runtime/supervisor.h).
// See docs/fault_tolerance.md for the failure model and the safety argument for deposited
// stack buffers.

#ifndef UCP_SRC_COMM_COMM_H_
#define UCP_SRC_COMM_COMM_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/comm/rank_fault.h"
#include "src/tensor/tensor.h"

namespace ucp {

// Tunables for one simulated cluster.
struct WorldOptions {
  // A rank blocked inside a collective or P2P receive for longer than this is treated as
  // evidence of a peer failure: the waiter aborts the world and unwinds. Generous default so
  // ordinary tests never trip it; fault-tolerance tests dial it down to seconds.
  std::chrono::milliseconds watchdog_timeout{60000};
};

// While an instance is in scope on the calling rank's thread, that rank's collective and
// P2P waits skip the watchdog deadline (world-abort checks stay active, so the rank still
// unwinds promptly when a failure is detected elsewhere). For phases where a peer
// legitimately performs unbounded-duration local work while others wait — e.g. rank 0
// converting a checkpoint to UCP behind the resume barrier — which would otherwise read as
// a silent hang. Nests; every rank entering such a phase suspends its own waits.
class ScopedWatchdogSuspend {
 public:
  ScopedWatchdogSuspend();
  ~ScopedWatchdogSuspend();
  ScopedWatchdogSuspend(const ScopedWatchdogSuspend&) = delete;
  ScopedWatchdogSuspend& operator=(const ScopedWatchdogSuspend&) = delete;
};

namespace internal {

// True while a ScopedWatchdogSuspend is live on this thread.
bool WatchdogSuspended();

// World-wide abort flag shared by every group and the mailbox. First Abort() wins and pins
// the canonical root-cause failure; later callers get the existing failure back. Clear()
// bumps the epoch and re-arms the world (used by tests; the supervisor rebuilds instead).
class AbortState {
 public:
  explicit AbortState(std::chrono::milliseconds watchdog) : watchdog_(watchdog) {}

  std::chrono::milliseconds watchdog() const { return watchdog_; }
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Records `failure` and trips the flag if not already aborted; returns the canonical
  // (first) failure either way.
  RankFailure Abort(RankFailure failure);
  // Valid once aborted(); returns the canonical failure.
  RankFailure failure() const;
  void Clear();

 private:
  std::chrono::milliseconds watchdog_;
  std::atomic<bool> aborted_{false};
  std::atomic<uint64_t> epoch_{0};
  mutable std::mutex mu_;
  RankFailure failure_;
};

// Rendezvous shared by all member ranks of one group. Implements a deposit/consume protocol:
// every member deposits a pointer, all members see the full slot vector, and the op retires
// only after every member signals completion — so no member may mutate its deposited buffer
// until the collective returns.
class GroupState {
 public:
  GroupState(std::vector<int> member_ranks, std::shared_ptr<AbortState> abort);

  int size() const { return static_cast<int>(members_.size()); }
  const std::vector<int>& members() const { return members_; }
  // Index of `global_rank` within the group, or -1.
  int IndexOf(int global_rank) const;

  // Deposits `p` at `index`; returns once all members have deposited. The returned vector is
  // ordered by group index and stays valid until Done() is called. Throws RankFailureError
  // if the world aborts or the watchdog deadline passes while waiting; on that path this
  // member's deposit (if any) is retracted first, so a poisoned op can never complete and
  // read an unwound frame's buffer.
  const std::vector<const void*>& Exchange(int index, const void* p);
  // Marks this member finished with the slot vector; returns once all members are finished.
  // Deliberately NOT abort-sensitive: once every member has deposited, every member is alive
  // and runs straight-line code to Done() (no waits, no injection sites), so retirement is
  // guaranteed; an abortable wait here would let a member unwind while peers still read its
  // deposited buffer.
  void Done();

 private:
  // Aborts the world blaming `suspect_rank` and throws. Requires mu_ held.
  [[noreturn]] void FailWatchdog(std::chrono::steady_clock::time_point wait_start,
                                 const char* wait_site, int suspect_rank);

  std::vector<int> members_;
  std::shared_ptr<AbortState> abort_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<const void*> slots_;
  int deposited_ = 0;
  int consumed_ = 0;
  bool consuming_ = false;
};

// Blocking FIFO channels for point-to-point messages, keyed by (src, dst). Recv is abortable
// with the same watchdog semantics as GroupState (the suspect is the sender).
class Mailbox {
 public:
  explicit Mailbox(std::shared_ptr<AbortState> abort) : abort_(std::move(abort)) {}

  void Send(int src, int dst, Tensor t);
  Tensor Recv(int src, int dst);

 private:
  std::shared_ptr<AbortState> abort_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::pair<int, int>, std::deque<Tensor>> channels_;
};

}  // namespace internal

class ProcessGroup;

// The simulated cluster. Create one World per training run; build groups on the launcher
// thread (identical group layout for every rank), then hand per-rank ProcessGroup handles to
// rank threads.
class World {
 public:
  explicit World(int size, WorldOptions options = {});

  int size() const { return size_; }
  const WorldOptions& options() const { return options_; }

  // Creates the shared state for a group over the given global ranks (must be distinct,
  // in-range; order defines the group's canonical reduction order).
  std::shared_ptr<internal::GroupState> CreateGroup(const std::vector<int>& ranks);

  // Point-to-point (used by pipeline parallelism). Send copies; Recv blocks until a message
  // arrives, the world aborts, or the watchdog expires.
  void Send(int src_rank, int dst_rank, const Tensor& t);
  Tensor Recv(int src_rank, int dst_rank);

  // Fault handling. Abort is first-caller-wins and returns the canonical failure; every
  // blocked rank then unwinds with RankFailureError within one wait quantum. An aborted
  // world is poisoned until ClearAbort() (tests) or, normally, destruction.
  RankFailure Abort(RankFailure failure) { return abort_->Abort(std::move(failure)); }
  bool aborted() const { return abort_->aborted(); }
  RankFailure failure() const { return abort_->failure(); }
  void ClearAbort() { abort_->Clear(); }
  uint64_t abort_epoch() const { return abort_->epoch(); }

 private:
  int size_;
  WorldOptions options_;
  std::shared_ptr<internal::AbortState> abort_;
  internal::Mailbox mailbox_;
};

// A rank's handle to one communication group. Value type; cheap to copy.
class ProcessGroup {
 public:
  ProcessGroup() = default;  // invalid handle
  ProcessGroup(std::shared_ptr<internal::GroupState> state, int global_rank);

  bool valid() const { return state_ != nullptr; }
  int size() const { return state_->size(); }
  // This rank's index within the group (0 .. size-1).
  int index() const { return index_; }
  const std::vector<int>& members() const { return state_->members(); }

  // In-place sum all-reduce over the group.
  void AllReduceSum(Tensor& t) const;
  // Elementwise max all-reduce (used for overflow checks in MPT simulation).
  void AllReduceMax(Tensor& t) const;
  double AllReduceSumScalar(double v) const;
  double AllReduceMaxScalar(double v) const;

  // Returns every member's tensor, ordered by group index. Shapes may differ across ranks
  // (ZeRO-3 ragged shards).
  std::vector<Tensor> AllGatherTensors(const Tensor& t) const;
  // Concatenates the gathered tensors along `dim` (all shapes must agree off-dim).
  Tensor AllGatherConcat(const Tensor& t, int dim) const;

  // Sums members' `full` tensors (all the same shape, numel divisible by size) and writes
  // this rank's contiguous 1/size slice of the flattened sum into `shard`.
  void ReduceScatterSum(const Tensor& full, Tensor& shard) const;

  // Copies root's tensor into every member's `t` (shapes must match).
  void Broadcast(Tensor& t, int root_index) const;

  void Barrier() const;

 private:
  std::shared_ptr<internal::GroupState> state_;
  int index_ = -1;
};

// Runs `body(rank)` on world_size threads and joins them. UCP_CHECK failures abort the whole
// process, matching how a fatal rank error kills a real job; so does an unhandled rank
// failure (use RunSpmdFallible when failures are expected).
void RunSpmd(int world_size, const std::function<void(int)>& body);

// Like RunSpmd, but catches RankFailureError at each rank thread's top level instead of
// aborting. Always joins all world_size threads; element r of the result holds rank r's
// failure, or nullopt if the rank ran to completion.
std::vector<std::optional<RankFailure>> RunSpmdFallible(
    int world_size, const std::function<void(int)>& body);

}  // namespace ucp

#endif  // UCP_SRC_COMM_COMM_H_
