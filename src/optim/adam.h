// Adam(W) arithmetic and the learning-rate schedule. Pure element-wise math; the ZeRO
// machinery decides which elements each rank updates.

#ifndef UCP_SRC_OPTIM_ADAM_H_
#define UCP_SRC_OPTIM_ADAM_H_

#include <cstdint>

namespace ucp {

struct AdamConfig {
  float beta1 = 0.9f;
  float beta2 = 0.95f;
  float eps = 1e-8f;
  float weight_decay = 0.1f;  // decoupled (AdamW); applied only to params with decay=true
  float grad_clip = 1.0f;     // global L2 clip; <= 0 disables
};

// One AdamW step over n contiguous elements. `step` is 1-based (bias correction).
// grad_scale is the clip coefficient folded with any other scaling.
void AdamUpdate(float* master, const float* grad, float* exp_avg, float* exp_avg_sq,
                int64_t n, int64_t step, float lr, const AdamConfig& config, bool decay,
                float grad_scale);

// Linear warmup to max_lr, then cosine decay to min_lr over [warmup, decay_iters].
struct LrSchedule {
  float max_lr = 3e-4f;
  float min_lr = 3e-6f;
  int warmup_iters = 10;
  int decay_iters = 200;

  // 1-based iteration.
  float LrAt(int64_t iteration) const;
};

}  // namespace ucp

#endif  // UCP_SRC_OPTIM_ADAM_H_
