#include "src/optim/adam.h"

#include <cmath>

namespace ucp {

void AdamUpdate(float* master, const float* grad, float* exp_avg, float* exp_avg_sq,
                int64_t n, int64_t step, float lr, const AdamConfig& config, bool decay,
                float grad_scale) {
  const float bias1 = 1.0f - std::pow(config.beta1, static_cast<float>(step));
  const float bias2 = 1.0f - std::pow(config.beta2, static_cast<float>(step));
  const float wd = decay ? config.weight_decay : 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    float g = grad[i] * grad_scale;
    exp_avg[i] = config.beta1 * exp_avg[i] + (1.0f - config.beta1) * g;
    exp_avg_sq[i] = config.beta2 * exp_avg_sq[i] + (1.0f - config.beta2) * g * g;
    float m_hat = exp_avg[i] / bias1;
    float v_hat = exp_avg_sq[i] / bias2;
    master[i] -= lr * (m_hat / (std::sqrt(v_hat) + config.eps) + wd * master[i]);
  }
}

float LrSchedule::LrAt(int64_t iteration) const {
  if (iteration <= warmup_iters) {
    return max_lr * static_cast<float>(iteration) / static_cast<float>(warmup_iters);
  }
  if (iteration >= decay_iters) {
    return min_lr;
  }
  float progress = static_cast<float>(iteration - warmup_iters) /
                   static_cast<float>(decay_iters - warmup_iters);
  float cosine = 0.5f * (1.0f + std::cos(static_cast<float>(M_PI) * progress));
  return min_lr + (max_lr - min_lr) * cosine;
}

}  // namespace ucp
