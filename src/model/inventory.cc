#include "src/model/inventory.h"

#include <cmath>

#include "src/common/strings.h"

namespace ucp {

std::string LayerParamName(int layer, const std::string& suffix) {
  return StrFormat("language_model.encoder.layers.%d.", layer) + suffix;
}

namespace {

constexpr char kWordEmbeddings[] = "language_model.embedding.word_embeddings.weight";
constexpr char kPositionEmbeddings[] = "language_model.embedding.position_embeddings.weight";
constexpr char kFinalNormWeight[] = "language_model.encoder.final_layernorm.weight";
constexpr char kFinalNormBias[] = "language_model.encoder.final_layernorm.bias";
constexpr char kOutputLayer[] = "language_model.output_layer.weight";

class Builder {
 public:
  explicit Builder(const ModelConfig& config) : config_(config) {
    config.Validate();
    // Residual-output projections get the GPT-2 style depth-scaled init.
    residual_stddev_ = 0.02f / std::sqrt(2.0f * static_cast<float>(config.num_layers));
  }

  std::vector<InventoryEntry> Build() {
    AddEmbeddings();
    for (int l = 0; l < config_.num_layers; ++l) {
      AddLayer(l);
    }
    AddHead();
    return std::move(entries_);
  }

 private:
  void Add(std::string name, Shape shape, PartitionSpec spec, bool decay, int layer,
           bool first_stage, bool last_stage, InitKind init, float stddev,
           bool sp_independent = false) {
    InventoryEntry entry;
    entry.param.name = std::move(name);
    entry.param.full_shape = std::move(shape);
    entry.param.tp_spec = std::move(spec);
    entry.param.decay = decay;
    entry.param.layer_index = layer;
    entry.param.on_first_stage = first_stage;
    entry.param.on_last_stage = last_stage;
    entry.param.init = init;
    entry.param.init_stddev = stddev;
    entry.param.init_stream = next_stream_++;
    entry.sp_independent = sp_independent;
    entries_.push_back(std::move(entry));
  }

  void AddEmbeddings() {
    // Vocab-parallel word embeddings; tied models also place a copy on the last stage.
    Add(kWordEmbeddings, {config_.vocab_size, config_.hidden}, PartitionSpec::Fragment(0),
        /*decay=*/true, /*layer=*/-1, /*first=*/true, /*last=*/config_.tied_embeddings,
        InitKind::kGaussian, 0.02f);
    if (config_.has_position_embeddings()) {
      Add(kPositionEmbeddings, {config_.max_seq_len, config_.hidden},
          PartitionSpec::Replicated(), /*decay=*/true, -1, /*first=*/true, /*last=*/false,
          InitKind::kGaussian, 0.02f);
    }
  }

  void AddNorm(const std::string& name, int layer, bool first_stage, bool last_stage) {
    Add(name + ".weight", {config_.hidden}, PartitionSpec::Replicated(), /*decay=*/false,
        layer, first_stage, last_stage, InitKind::kOnes, 0.0f, /*sp_independent=*/true);
    if (config_.has_biases()) {
      Add(name + ".bias", {config_.hidden}, PartitionSpec::Replicated(), /*decay=*/false,
          layer, first_stage, last_stage, InitKind::kZeros, 0.0f, /*sp_independent=*/true);
    }
  }

  void AddLayer(int l) {
    const int h = config_.hidden;
    const int kv = config_.num_kv_heads * config_.head_dim();
    const int f = config_.ffn_hidden;

    AddNorm(LayerParamName(l, "input_layernorm"), l, false, false);

    // Fused QKV: sections {q, k, v} along dim 0 — with GQA the sections have different
    // sizes, the Fig. 5 variable-size sub-pattern.
    std::vector<int64_t> qkv_sections = {h, kv, kv};
    Add(LayerParamName(l, "self_attention.query_key_value.weight"), {h + 2 * kv, h},
        PartitionSpec::FragmentSections(0, qkv_sections), /*decay=*/true, l, false, false,
        InitKind::kGaussian, 0.02f);
    if (config_.has_biases()) {
      Add(LayerParamName(l, "self_attention.query_key_value.bias"), {h + 2 * kv},
          PartitionSpec::FragmentSections(0, qkv_sections), /*decay=*/false, l, false, false,
          InitKind::kZeros, 0.0f);
    }
    // Row-parallel output projection: fragment along the input dim; bias replicated.
    Add(LayerParamName(l, "self_attention.dense.weight"), {h, h}, PartitionSpec::Fragment(1),
        /*decay=*/true, l, false, false, InitKind::kGaussian, residual_stddev_);
    if (config_.has_biases()) {
      Add(LayerParamName(l, "self_attention.dense.bias"), {h}, PartitionSpec::Replicated(),
          /*decay=*/false, l, false, false, InitKind::kZeros, 0.0f);
    }

    AddNorm(LayerParamName(l, "post_attention_layernorm"), l, false, false);

    if (config_.is_moe()) {
      const int e = config_.num_experts;
      // Router replicated. Expert tensors are 3-d; the sharding mode picks the fragment
      // sub-pattern: ffn-dim TP (Fig. 5's example) or expert-dim expert parallelism.
      Add(LayerParamName(l, "mlp.moe.gate.weight"), {e, h}, PartitionSpec::Replicated(),
          /*decay=*/true, l, false, false, InitKind::kGaussian, 0.02f);
      int w1_dim = config_.moe_expert_sharding ? 0 : 1;
      int w2_dim = config_.moe_expert_sharding ? 0 : 2;
      Add(LayerParamName(l, "mlp.moe.experts.w1"), {e, f, h},
          PartitionSpec::Fragment(w1_dim), /*decay=*/true, l, false, false,
          InitKind::kGaussian, 0.02f);
      Add(LayerParamName(l, "mlp.moe.experts.w2"), {e, h, f},
          PartitionSpec::Fragment(w2_dim), /*decay=*/true, l, false, false,
          InitKind::kGaussian, residual_stddev_);
    } else if (config_.uses_swiglu()) {
      Add(LayerParamName(l, "mlp.gate_proj.weight"), {f, h}, PartitionSpec::Fragment(0),
          /*decay=*/true, l, false, false, InitKind::kGaussian, 0.02f);
      Add(LayerParamName(l, "mlp.up_proj.weight"), {f, h}, PartitionSpec::Fragment(0),
          /*decay=*/true, l, false, false, InitKind::kGaussian, 0.02f);
      Add(LayerParamName(l, "mlp.down_proj.weight"), {h, f}, PartitionSpec::Fragment(1),
          /*decay=*/true, l, false, false, InitKind::kGaussian, residual_stddev_);
    } else {
      Add(LayerParamName(l, "mlp.dense_h_to_4h.weight"), {f, h}, PartitionSpec::Fragment(0),
          /*decay=*/true, l, false, false, InitKind::kGaussian, 0.02f);
      Add(LayerParamName(l, "mlp.dense_h_to_4h.bias"), {f}, PartitionSpec::Fragment(0),
          /*decay=*/false, l, false, false, InitKind::kZeros, 0.0f);
      Add(LayerParamName(l, "mlp.dense_4h_to_h.weight"), {h, f}, PartitionSpec::Fragment(1),
          /*decay=*/true, l, false, false, InitKind::kGaussian, residual_stddev_);
      Add(LayerParamName(l, "mlp.dense_4h_to_h.bias"), {h}, PartitionSpec::Replicated(),
          /*decay=*/false, l, false, false, InitKind::kZeros, 0.0f);
    }
  }

  void AddHead() {
    Add(kFinalNormWeight, {config_.hidden}, PartitionSpec::Replicated(), /*decay=*/false, -1,
        /*first=*/false, /*last=*/true, InitKind::kOnes, 0.0f, /*sp_independent=*/true);
    if (config_.has_biases()) {
      Add(kFinalNormBias, {config_.hidden}, PartitionSpec::Replicated(), /*decay=*/false, -1,
          /*first=*/false, /*last=*/true, InitKind::kZeros, 0.0f, /*sp_independent=*/true);
    }
    if (!config_.tied_embeddings) {
      Add(kOutputLayer, {config_.vocab_size, config_.hidden}, PartitionSpec::Fragment(0),
          /*decay=*/true, -1, /*first=*/false, /*last=*/true, InitKind::kGaussian, 0.02f);
    }
  }

  const ModelConfig& config_;
  std::vector<InventoryEntry> entries_;
  float residual_stddev_;
  uint64_t next_stream_ = 100;  // streams < 100 reserved for non-parameter randomness
};

}  // namespace

std::vector<InventoryEntry> BuildInventory(const ModelConfig& config) {
  return Builder(config).Build();
}

PartitionSpec EffectiveSpec(const InventoryEntry& entry, const ParallelConfig& strategy) {
  if (entry.sp_independent && strategy.sp > 1) {
    return PartitionSpec::ToAverage();
  }
  return entry.param.tp_spec;
}

bool OnStage(const InventoryEntry& entry, const ModelConfig& config, int stage, int pp) {
  UCP_CHECK_GE(stage, 0);
  UCP_CHECK_LT(stage, pp);
  if (entry.param.layer_index >= 0) {
    auto split = SplitLayersAcrossStages(config.num_layers, pp);
    auto [first, count] = split[static_cast<size_t>(stage)];
    return entry.param.layer_index >= first && entry.param.layer_index < first + count;
  }
  if (entry.param.on_first_stage && stage == 0) {
    return true;
  }
  if (entry.param.on_last_stage && stage == pp - 1) {
    return true;
  }
  return false;
}

bool IsTiedSecondary(const InventoryEntry& entry, const ModelConfig& config,
                     const ParallelConfig& strategy, const RankCoord& coord) {
  return config.tied_embeddings && strategy.pp > 1 && coord.pp == strategy.pp - 1 &&
         entry.param.name == "language_model.embedding.word_embeddings.weight";
}

bool NormCounts(const InventoryEntry& entry, const ModelConfig& config,
                const ParallelConfig& strategy, const RankCoord& coord) {
  if (IsTiedSecondary(entry, config, strategy, coord)) {
    return false;
  }
  PartitionSpec spec = EffectiveSpec(entry, strategy);
  if (spec.kind == PartitionKind::kFragment) {
    // Every TP fragment is distinct data; SP replicates it, so count sp rank 0 only.
    return coord.sp == 0;
  }
  return coord.tp == 0 && coord.sp == 0;
}

std::vector<InventoryEntry> StageEntries(const std::vector<InventoryEntry>& inventory,
                                         const ModelConfig& config, int stage, int pp) {
  std::vector<InventoryEntry> out;
  for (const InventoryEntry& entry : inventory) {
    if (OnStage(entry, config, stage, pp)) {
      out.push_back(entry);
    }
  }
  return out;
}

}  // namespace ucp
