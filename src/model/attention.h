// Tensor-parallel causal self-attention with optional grouped-query attention (GQA) and
// sequence parallelism.
//
// Heads are partitioned across TP ranks (this rank computes num_heads/tp query heads and
// num_kv_heads/tp KV heads). Under SP each rank owns a contiguous sequence slice; K and V
// are all-gathered across the SP group so local queries attend to the full prefix, and the
// K/V gradients are reduce-summed back to their owning slices.

#ifndef UCP_SRC_MODEL_ATTENTION_H_
#define UCP_SRC_MODEL_ATTENTION_H_

#include <vector>

#include "src/model/config.h"
#include "src/model/layer_context.h"
#include "src/model/linear.h"

namespace ucp {

class ParallelAttention {
 public:
  // Parameters are this rank's shards, already materialized:
  //   qkv_weight [ (h + 2*kv)/tp, h ], qkv_bias [ (h + 2*kv)/tp ] or null,
  //   dense_weight [ h, h/tp ], dense_bias [ h ] or null.
  ParallelAttention(const ModelConfig& config, int tp_degree, ParamPtr qkv_weight,
                    ParamPtr qkv_bias, ParamPtr dense_weight, ParamPtr dense_bias);

  // x: [tokens_local, hidden]. Returns the attention block output (same shape).
  Tensor Forward(const Tensor& x, const LayerContext& ctx);
  Tensor Backward(const Tensor& dy, const LayerContext& ctx);

 private:
  int heads_local_;
  int kv_heads_local_;
  int head_dim_;
  float scale_;

  ColumnParallelLinear qkv_;
  RowParallelLinear dense_;

  // Forward caches (one micro-batch in flight).
  Tensor q_;       // [tokens_local, heads_local * d]
  Tensor k_full_;  // [batch * seq_total, kv_heads_local * d]
  Tensor v_full_;
  std::vector<Tensor> probs_;  // per (batch, local head): [seq_local, seq_total]
};

}  // namespace ucp

#endif  // UCP_SRC_MODEL_ATTENTION_H_
