#include "src/model/nn_ops.h"

#include <cmath>

namespace ucp {

namespace {
constexpr float kGeluCoef = 0.7978845608028654f;  // sqrt(2/pi)
}  // namespace

Tensor Gelu(const Tensor& x) {
  Tensor y = x.Clone();
  float* p = y.data();
  for (int64_t i = 0; i < y.numel(); ++i) {
    float v = p[i];
    float inner = kGeluCoef * (v + 0.044715f * v * v * v);
    p[i] = 0.5f * v * (1.0f + std::tanh(inner));
  }
  return y;
}

Tensor GeluBackward(const Tensor& x, const Tensor& dy) {
  UCP_CHECK_EQ(x.numel(), dy.numel());
  Tensor dx = Tensor::Zeros(x.shape());
  const float* px = x.data();
  const float* pdy = dy.data();
  float* pdx = dx.data();
  for (int64_t i = 0; i < x.numel(); ++i) {
    float v = px[i];
    float inner = kGeluCoef * (v + 0.044715f * v * v * v);
    float t = std::tanh(inner);
    float dinner = kGeluCoef * (1.0f + 3.0f * 0.044715f * v * v);
    float grad = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * dinner;
    pdx[i] = pdy[i] * grad;
  }
  return dx;
}

Tensor Silu(const Tensor& x) {
  Tensor y = x.Clone();
  float* p = y.data();
  for (int64_t i = 0; i < y.numel(); ++i) {
    float v = p[i];
    p[i] = v / (1.0f + std::exp(-v));
  }
  return y;
}

Tensor SiluBackward(const Tensor& x, const Tensor& dy) {
  UCP_CHECK_EQ(x.numel(), dy.numel());
  Tensor dx = Tensor::Zeros(x.shape());
  const float* px = x.data();
  const float* pdy = dy.data();
  float* pdx = dx.data();
  for (int64_t i = 0; i < x.numel(); ++i) {
    float v = px[i];
    float sig = 1.0f / (1.0f + std::exp(-v));
    pdx[i] = pdy[i] * (sig + v * sig * (1.0f - sig));
  }
  return dx;
}

Tensor LayerNormForward(const Tensor& x, const Tensor& gamma, const Tensor* beta,
                        LayerNormCache& cache, float eps) {
  UCP_CHECK_EQ(x.ndim(), 2);
  int64_t rows = x.dim(0);
  int64_t h = x.dim(1);
  UCP_CHECK_EQ(gamma.numel(), h);
  if (beta != nullptr) {
    UCP_CHECK_EQ(beta->numel(), h);
  }

  cache.x_hat = Tensor::Zeros(x.shape());
  cache.inv_std = Tensor::Zeros({rows});
  Tensor y = Tensor::Zeros(x.shape());

  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pb = beta != nullptr ? beta->data() : nullptr;
  float* pxh = cache.x_hat.data();
  float* pis = cache.inv_std.data();
  float* py = y.data();

  for (int64_t r = 0; r < rows; ++r) {
    const float* row = px + r * h;
    double mean = 0.0;
    for (int64_t i = 0; i < h; ++i) {
      mean += row[i];
    }
    mean /= static_cast<double>(h);
    double var = 0.0;
    for (int64_t i = 0; i < h; ++i) {
      double d = row[i] - mean;
      var += d * d;
    }
    var /= static_cast<double>(h);
    float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    pis[r] = inv_std;
    for (int64_t i = 0; i < h; ++i) {
      float xh = (row[i] - static_cast<float>(mean)) * inv_std;
      pxh[r * h + i] = xh;
      py[r * h + i] = xh * pg[i] + (pb != nullptr ? pb[i] : 0.0f);
    }
  }
  return y;
}

Tensor LayerNormBackward(const Tensor& dy, const Tensor& gamma, const LayerNormCache& cache,
                         Tensor& dgamma, Tensor* dbeta) {
  int64_t rows = dy.dim(0);
  int64_t h = dy.dim(1);
  Tensor dx = Tensor::Zeros(dy.shape());

  const float* pdy = dy.data();
  const float* pg = gamma.data();
  const float* pxh = cache.x_hat.data();
  const float* pis = cache.inv_std.data();
  float* pdx = dx.data();
  float* pdg = dgamma.data();
  float* pdb = dbeta != nullptr ? dbeta->data() : nullptr;

  for (int64_t r = 0; r < rows; ++r) {
    const float* dyr = pdy + r * h;
    const float* xhr = pxh + r * h;
    double sum_dyg = 0.0;
    double sum_dyg_xh = 0.0;
    for (int64_t i = 0; i < h; ++i) {
      float dyg = dyr[i] * pg[i];
      sum_dyg += dyg;
      sum_dyg_xh += static_cast<double>(dyg) * xhr[i];
    }
    float mean_dyg = static_cast<float>(sum_dyg / static_cast<double>(h));
    float mean_dyg_xh = static_cast<float>(sum_dyg_xh / static_cast<double>(h));
    float inv_std = pis[r];
    for (int64_t i = 0; i < h; ++i) {
      float dyg = dyr[i] * pg[i];
      pdx[r * h + i] = inv_std * (dyg - mean_dyg - xhr[i] * mean_dyg_xh);
      pdg[i] += dyr[i] * xhr[i];
      if (pdb != nullptr) {
        pdb[i] += dyr[i];
      }
    }
  }
  return dx;
}

Tensor RmsNormForward(const Tensor& x, const Tensor& gamma, RmsNormCache& cache, float eps) {
  UCP_CHECK_EQ(x.ndim(), 2);
  int64_t rows = x.dim(0);
  int64_t h = x.dim(1);
  UCP_CHECK_EQ(gamma.numel(), h);

  cache.x = x.Clone();
  cache.inv_rms = Tensor::Zeros({rows});
  Tensor y = Tensor::Zeros(x.shape());

  const float* px = x.data();
  const float* pg = gamma.data();
  float* pir = cache.inv_rms.data();
  float* py = y.data();

  for (int64_t r = 0; r < rows; ++r) {
    const float* row = px + r * h;
    double ms = 0.0;
    for (int64_t i = 0; i < h; ++i) {
      ms += static_cast<double>(row[i]) * row[i];
    }
    ms /= static_cast<double>(h);
    float inv_rms = 1.0f / std::sqrt(static_cast<float>(ms) + eps);
    pir[r] = inv_rms;
    for (int64_t i = 0; i < h; ++i) {
      py[r * h + i] = row[i] * inv_rms * pg[i];
    }
  }
  return y;
}

Tensor RmsNormBackward(const Tensor& dy, const Tensor& gamma, const RmsNormCache& cache,
                       Tensor& dgamma) {
  int64_t rows = dy.dim(0);
  int64_t h = dy.dim(1);
  Tensor dx = Tensor::Zeros(dy.shape());

  const float* pdy = dy.data();
  const float* pg = gamma.data();
  const float* px = cache.x.data();
  const float* pir = cache.inv_rms.data();
  float* pdx = dx.data();
  float* pdg = dgamma.data();

  for (int64_t r = 0; r < rows; ++r) {
    const float* dyr = pdy + r * h;
    const float* xr = px + r * h;
    float inv_rms = pir[r];
    double sum_dyg_x = 0.0;
    for (int64_t i = 0; i < h; ++i) {
      sum_dyg_x += static_cast<double>(dyr[i] * pg[i]) * xr[i];
    }
    float coef = static_cast<float>(sum_dyg_x / static_cast<double>(h)) * inv_rms * inv_rms *
                 inv_rms;
    for (int64_t i = 0; i < h; ++i) {
      float dyg = dyr[i] * pg[i];
      pdx[r * h + i] = dyg * inv_rms - xr[i] * coef;
      pdg[i] += dyr[i] * xr[i] * inv_rms;
    }
  }
  return dx;
}

void SoftmaxRows_(Tensor& x) {
  UCP_CHECK_GE(x.ndim(), 1);
  int64_t cols = x.dim(x.ndim() - 1);
  int64_t rows = x.numel() / cols;
  float* p = x.data();
  for (int64_t r = 0; r < rows; ++r) {
    float* row = p + r * cols;
    float m = row[0];
    for (int64_t i = 1; i < cols; ++i) {
      m = std::max(m, row[i]);
    }
    double sum = 0.0;
    for (int64_t i = 0; i < cols; ++i) {
      row[i] = std::exp(row[i] - m);
      sum += row[i];
    }
    float inv = 1.0f / static_cast<float>(sum);
    for (int64_t i = 0; i < cols; ++i) {
      row[i] *= inv;
    }
  }
}

Tensor SoftmaxRowsBackward(const Tensor& probs, const Tensor& dprobs) {
  UCP_CHECK(probs.SameShape(dprobs));
  int64_t cols = probs.dim(probs.ndim() - 1);
  int64_t rows = probs.numel() / cols;
  Tensor dz = Tensor::Zeros(probs.shape());
  const float* pp = probs.data();
  const float* pd = dprobs.data();
  float* pz = dz.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* prow = pp + r * cols;
    const float* drow = pd + r * cols;
    double dot = 0.0;
    for (int64_t i = 0; i < cols; ++i) {
      dot += static_cast<double>(prow[i]) * drow[i];
    }
    float d = static_cast<float>(dot);
    float* zrow = pz + r * cols;
    for (int64_t i = 0; i < cols; ++i) {
      zrow[i] = prow[i] * (drow[i] - d);
    }
  }
  return dz;
}

double CrossEntropySum(const Tensor& logits, const Tensor& labels, Tensor& dlogits) {
  UCP_CHECK_EQ(logits.ndim(), 2);
  int64_t rows = logits.dim(0);
  int64_t vocab = logits.dim(1);
  UCP_CHECK_EQ(labels.numel(), rows);
  UCP_CHECK(dlogits.SameShape(logits));

  const float* pl = logits.data();
  const float* py = labels.data();
  float* pd = dlogits.data();
  double total = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = pl + r * vocab;
    auto label = static_cast<int64_t>(py[r]);
    UCP_CHECK_GE(label, 0);
    UCP_CHECK_LT(label, vocab);
    float m = row[0];
    for (int64_t i = 1; i < vocab; ++i) {
      m = std::max(m, row[i]);
    }
    double sum = 0.0;
    for (int64_t i = 0; i < vocab; ++i) {
      sum += std::exp(static_cast<double>(row[i]) - m);
    }
    double lse = m + std::log(sum);
    total += lse - row[label];
    float* drow = pd + r * vocab;
    for (int64_t i = 0; i < vocab; ++i) {
      drow[i] = static_cast<float>(std::exp(static_cast<double>(row[i]) - lse));
    }
    drow[label] -= 1.0f;
  }
  return total;
}

}  // namespace ucp
