#include "src/model/block.h"

#include "src/model/inventory.h"

namespace ucp {

TransformerBlock::TransformerBlock(const ModelConfig& config, int layer,
                                   const ParamStore& store, int tp_degree, int tp_rank)
    : rms_(config.uses_rmsnorm()) {
  norm_w_[0] = store.Get(LayerParamName(layer, "input_layernorm.weight"));
  norm_w_[1] = store.Get(LayerParamName(layer, "post_attention_layernorm.weight"));
  if (config.has_biases()) {
    norm_b_[0] = store.Get(LayerParamName(layer, "input_layernorm.bias"));
    norm_b_[1] = store.Get(LayerParamName(layer, "post_attention_layernorm.bias"));
  }

  ParamPtr qkv_w = store.Get(LayerParamName(layer, "self_attention.query_key_value.weight"));
  ParamPtr qkv_b =
      config.has_biases()
          ? store.Get(LayerParamName(layer, "self_attention.query_key_value.bias"))
          : nullptr;
  ParamPtr dense_w = store.Get(LayerParamName(layer, "self_attention.dense.weight"));
  ParamPtr dense_b = config.has_biases()
                         ? store.Get(LayerParamName(layer, "self_attention.dense.bias"))
                         : nullptr;
  attn_ = std::make_unique<ParallelAttention>(config, tp_degree, qkv_w, qkv_b, dense_w,
                                              dense_b);

  if (config.is_moe()) {
    moe_mlp_ = std::make_unique<MoeMlp>(
        config, tp_degree, tp_rank,
        store.Get(LayerParamName(layer, "mlp.moe.gate.weight")),
        store.Get(LayerParamName(layer, "mlp.moe.experts.w1")),
        store.Get(LayerParamName(layer, "mlp.moe.experts.w2")));
  } else if (config.uses_swiglu()) {
    swiglu_mlp_ = std::make_unique<SwiGluMlp>(
        store.Get(LayerParamName(layer, "mlp.gate_proj.weight")),
        store.Get(LayerParamName(layer, "mlp.up_proj.weight")),
        store.Get(LayerParamName(layer, "mlp.down_proj.weight")));
  } else {
    gpt_mlp_ = std::make_unique<GptMlp>(
        store.Get(LayerParamName(layer, "mlp.dense_h_to_4h.weight")),
        store.Get(LayerParamName(layer, "mlp.dense_h_to_4h.bias")),
        store.Get(LayerParamName(layer, "mlp.dense_4h_to_h.weight")),
        store.Get(LayerParamName(layer, "mlp.dense_4h_to_h.bias")));
  }
}

Tensor TransformerBlock::NormForward(int which, const Tensor& x) {
  if (rms_) {
    return RmsNormForward(x, norm_w_[which]->value, rms_cache_[which]);
  }
  const Tensor* beta = norm_b_[which] != nullptr ? &norm_b_[which]->value : nullptr;
  return LayerNormForward(x, norm_w_[which]->value, beta, ln_cache_[which]);
}

Tensor TransformerBlock::NormBackward(int which, const Tensor& dy) {
  if (rms_) {
    return RmsNormBackward(dy, norm_w_[which]->value, rms_cache_[which],
                           norm_w_[which]->grad);
  }
  Tensor* dbeta = norm_b_[which] != nullptr ? &norm_b_[which]->grad : nullptr;
  return LayerNormBackward(dy, norm_w_[which]->value, ln_cache_[which], norm_w_[which]->grad,
                           dbeta);
}

Tensor TransformerBlock::Forward(const Tensor& x, const LayerContext& ctx) {
  Tensor attn_out = attn_->Forward(NormForward(0, x), ctx);
  Tensor h = x.Clone();
  h.Add_(attn_out);

  Tensor normed = NormForward(1, h);
  Tensor ffn_out;
  if (moe_mlp_ != nullptr) {
    ffn_out = moe_mlp_->Forward(normed, ctx);
  } else if (swiglu_mlp_ != nullptr) {
    ffn_out = swiglu_mlp_->Forward(normed, ctx);
  } else {
    ffn_out = gpt_mlp_->Forward(normed, ctx);
  }
  h.Add_(ffn_out);
  return h;
}

Tensor TransformerBlock::Backward(const Tensor& dy, const LayerContext& ctx) {
  // y = h + FFN(Norm2(h)); dy flows both straight through and via the FFN branch.
  Tensor dffn;
  if (moe_mlp_ != nullptr) {
    dffn = moe_mlp_->Backward(dy, ctx);
  } else if (swiglu_mlp_ != nullptr) {
    dffn = swiglu_mlp_->Backward(dy, ctx);
  } else {
    dffn = gpt_mlp_->Backward(dy, ctx);
  }
  Tensor dh = dy.Clone();
  dh.Add_(NormBackward(1, dffn));

  // h = x + Attn(Norm1(x))
  Tensor dattn = attn_->Backward(dh, ctx);
  Tensor dx = dh;  // reuse: dx = dh + Norm1Backward(dattn)
  dx.Add_(NormBackward(0, dattn));
  return dx;
}

}  // namespace ucp
