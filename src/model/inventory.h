// The logical parameter inventory: every parameter of the full model, in canonical order,
// with Megatron-style names, full shapes, TP partition specs, and pipeline placement.
//
// One inventory drives everything: rank-local materialization, ZeRO flat-group layout,
// distributed checkpoint metadata, and the consistency test that checks the UCP language's
// declarative pattern library against the model it describes.

#ifndef UCP_SRC_MODEL_INVENTORY_H_
#define UCP_SRC_MODEL_INVENTORY_H_

#include <string>
#include <vector>

#include "src/model/config.h"
#include "src/model/param.h"
#include "src/parallel/topology.h"

namespace ucp {

// Extends LogicalParam with the SP marker (partition specs themselves are strategy-relative;
// see EffectiveSpec).
struct InventoryEntry {
  LogicalParam param;
  // True for norm parameters whose gradients are *not* synchronized across the sequence-
  // parallel group: their replicas drift and the UCP pattern becomes params_to_average.
  bool sp_independent = false;
};

std::vector<InventoryEntry> BuildInventory(const ModelConfig& config);

// The TP spec adjusted for the strategy: norm parameters flip from kReplicated to
// kToAverage when sp > 1.
PartitionSpec EffectiveSpec(const InventoryEntry& entry, const ParallelConfig& strategy);

// True if the entry lives on pipeline stage `stage` out of `pp` stages (tied embeddings live
// on both the first and last stage).
bool OnStage(const InventoryEntry& entry, const ModelConfig& config, int stage, int pp);

// Entries materialized on the given stage, in canonical order.
std::vector<InventoryEntry> StageEntries(const std::vector<InventoryEntry>& inventory,
                                         const ModelConfig& config, int stage, int pp);

// Canonical names helper used across modules.
std::string LayerParamName(int layer, const std::string& suffix);

// True if this rank's copy is the non-canonical last-stage replica of a tied embedding.
bool IsTiedSecondary(const InventoryEntry& entry, const ModelConfig& config,
                     const ParallelConfig& strategy, const RankCoord& coord);

// True if this rank's copy of the parameter contributes to the global gradient norm (one
// representative per replica set; every fragment counts). Shared by the live StageModel and
// GenUcpMetadata so that plans match materialized layouts bit-for-bit.
bool NormCounts(const InventoryEntry& entry, const ModelConfig& config,
                const ParallelConfig& strategy, const RankCoord& coord);

}  // namespace ucp

#endif  // UCP_SRC_MODEL_INVENTORY_H_
