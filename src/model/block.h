// A pre-norm transformer block: x + Attn(Norm1(x)), then h + FFN(Norm2(h)). The norm flavor
// (LayerNorm vs RMSNorm) and FFN flavor (GELU MLP / SwiGLU / MoE) follow the architecture.

#ifndef UCP_SRC_MODEL_BLOCK_H_
#define UCP_SRC_MODEL_BLOCK_H_

#include <memory>

#include "src/model/attention.h"
#include "src/model/mlp.h"
#include "src/model/nn_ops.h"
#include "src/model/param.h"

namespace ucp {

class TransformerBlock {
 public:
  // Looks up this layer's parameters (already materialized) in `store`.
  TransformerBlock(const ModelConfig& config, int layer, const ParamStore& store,
                   int tp_degree, int tp_rank);

  Tensor Forward(const Tensor& x, const LayerContext& ctx);
  Tensor Backward(const Tensor& dy, const LayerContext& ctx);

 private:
  Tensor NormForward(int which, const Tensor& x);
  Tensor NormBackward(int which, const Tensor& dy);

  bool rms_;
  ParamPtr norm_w_[2];
  ParamPtr norm_b_[2];  // null for RMSNorm
  LayerNormCache ln_cache_[2];
  RmsNormCache rms_cache_[2];

  std::unique_ptr<ParallelAttention> attn_;
  std::unique_ptr<GptMlp> gpt_mlp_;
  std::unique_ptr<SwiGluMlp> swiglu_mlp_;
  std::unique_ptr<MoeMlp> moe_mlp_;
};

}  // namespace ucp

#endif  // UCP_SRC_MODEL_BLOCK_H_
