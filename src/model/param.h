// Parameter metadata and the per-rank parameter registry.
//
// A LogicalParam describes a parameter of the *full* model: name, full shape, how TP shards
// it, and where PP places it. The inventory of LogicalParams (inventory.h) is the single
// source of truth shared by the runtime (which materializes local shards), the distributed
// checkpointer (which records shard metadata), and the tests that cross-check the UCP
// pattern library against the model.

#ifndef UCP_SRC_MODEL_PARAM_H_
#define UCP_SRC_MODEL_PARAM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/parallel/partition_spec.h"
#include "src/tensor/tensor.h"

namespace ucp {

enum class InitKind : uint8_t { kGaussian = 0, kOnes = 1, kZeros = 2 };

struct LogicalParam {
  std::string name;
  Shape full_shape;
  PartitionSpec tp_spec;
  bool decay = true;         // weight decay applies (false for norms and biases)
  int layer_index = -1;      // transformer layer owning it, or -1 for embedding/head params
  bool on_first_stage = false;  // pipeline placement for layer_index == -1 params
  bool on_last_stage = false;   // (tied embeddings set both)
  InitKind init = InitKind::kGaussian;
  float init_stddev = 0.02f;
  uint64_t init_stream = 0;  // CounterRng stream id; unique per logical param

  int64_t full_numel() const { return ShapeNumel(full_shape); }
};

// A live parameter on one rank: the LogicalParam plus this rank's TP shard of the value and
// gradient. Under ZeRO-3, `value` and `grad` are views into the stage's flat buffers.
struct Param {
  LogicalParam info;
  Tensor value;
  Tensor grad;
  // True if this rank's copy contributes to the global gradient norm (one representative per
  // replicated copy; every fragment counts). Set by the trainer from the topology.
  bool norm_counts = true;
  // True for the last-stage copy of a tied embedding; it is excluded from checkpoint saving
  // (the first-stage copy is canonical) but still trains.
  bool tied_secondary = false;
  // Mirror of InventoryEntry::sp_independent: gradients are NOT synchronized across the
  // sequence-parallel group, so replicas drift (params_to_average).
  bool sp_independent = false;

  void AllocateGrad() {
    if (!grad.defined()) {
      grad = Tensor::Zeros(value.shape());
    }
  }
};

using ParamPtr = std::shared_ptr<Param>;

// The ordered set of parameters materialized on one rank. Order is canonical (inventory
// order) — ZeRO's flattened groups and the checkpoint layout both depend on it.
class ParamStore {
 public:
  ParamPtr Add(ParamPtr param);
  // Aborts if absent.
  ParamPtr Get(const std::string& name) const;
  ParamPtr FindOrNull(const std::string& name) const;
  const std::vector<ParamPtr>& params() const { return params_; }
  size_t size() const { return params_.size(); }

  void ZeroGrads();
  // Total local elements (shard sizes, not full sizes).
  int64_t TotalNumel() const;

 private:
  std::vector<ParamPtr> params_;
  std::map<std::string, size_t> index_;
};

// Materializes this rank's shard of a logical parameter: deterministic full-tensor init
// followed by ShardOf, so every TP degree sees consistent slices of the same logical values.
ParamPtr MaterializeParam(const LogicalParam& info, uint64_t model_seed, int tp_degree,
                          int tp_rank);

// The deterministic full-value initialization (used by MaterializeParam and by tests that
// compare consolidated checkpoints against logical values).
Tensor InitFullValue(const LogicalParam& info, uint64_t model_seed);

}  // namespace ucp

#endif  // UCP_SRC_MODEL_PARAM_H_
