// Megatron-style tensor-parallel linear layers and the vocab-parallel embedding.
//
// ColumnParallelLinear shards the output dim: each rank computes its slice of the output
// from the full input; the backward pass all-reduces input gradients. RowParallelLinear
// shards the input dim: each rank computes a partial full-size output that the forward pass
// all-reduces. Composing column -> nonlinearity -> row gives one all-reduce per MLP/attention
// block, exactly as in Megatron-LM.

#ifndef UCP_SRC_MODEL_LINEAR_H_
#define UCP_SRC_MODEL_LINEAR_H_

#include "src/model/layer_context.h"
#include "src/model/param.h"

namespace ucp {

class ColumnParallelLinear {
 public:
  // weight: local shard [out_local, in]; bias (optional): [out_local].
  ColumnParallelLinear(ParamPtr weight, ParamPtr bias)
      : weight_(std::move(weight)), bias_(std::move(bias)) {}

  // x: [tokens, in] (full). Returns [tokens, out_local].
  Tensor Forward(const Tensor& x);
  // dy: [tokens, out_local]. Returns dx [tokens, in] (all-reduced across TP).
  Tensor Backward(const Tensor& dy, const LayerContext& ctx);

  int64_t out_local() const { return weight_->value.dim(0); }

 private:
  ParamPtr weight_;
  ParamPtr bias_;  // may be null
  Tensor cached_x_;
};

class RowParallelLinear {
 public:
  // weight: local shard [out, in_local]; bias (optional, replicated): [out].
  RowParallelLinear(ParamPtr weight, ParamPtr bias)
      : weight_(std::move(weight)), bias_(std::move(bias)) {}

  // x: [tokens, in_local] (sharded). Returns [tokens, out] (all-reduced across TP).
  Tensor Forward(const Tensor& x, const LayerContext& ctx);
  // dy: [tokens, out] (full). Returns dx [tokens, in_local].
  Tensor Backward(const Tensor& dy);

 private:
  ParamPtr weight_;
  ParamPtr bias_;  // may be null
  Tensor cached_x_;
};

class VocabParallelEmbedding {
 public:
  // weight: local shard [vocab_local, hidden]; rank owns vocab rows
  // [tp_index * vocab_local, (tp_index + 1) * vocab_local).
  VocabParallelEmbedding(ParamPtr weight, int tp_index)
      : weight_(std::move(weight)), vocab_offset_(tp_index * weight_->value.dim(0)) {}

  // tokens: [batch, seq_local] integer values in fp32. Returns [tokens, hidden]
  // (all-reduced across TP).
  Tensor Forward(const Tensor& tokens, const LayerContext& ctx);
  // dx: [tokens, hidden]. Accumulates into the weight gradient; nothing flows further back.
  void Backward(const Tensor& dx);

 private:
  ParamPtr weight_;
  int64_t vocab_offset_;
  Tensor cached_tokens_;
};

}  // namespace ucp

#endif  // UCP_SRC_MODEL_LINEAR_H_
