#include "src/model/attention.h"

#include <cmath>
#include <limits>

#include "src/model/nn_ops.h"
#include "src/tensor/matmul.h"

namespace ucp {
namespace {

// Copies the [row0, row0+rows) x [col0, col0+cols) block of a 2-d tensor.
Tensor Slice2D(const Tensor& t, int64_t row0, int64_t rows, int64_t col0, int64_t cols) {
  UCP_CHECK_EQ(t.ndim(), 2);
  Tensor out = Tensor::Zeros({rows, cols});
  const float* src = t.data();
  float* dst = out.data();
  int64_t width = t.dim(1);
  for (int64_t r = 0; r < rows; ++r) {
    const float* srow = src + (row0 + r) * width + col0;
    float* drow = dst + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      drow[c] = srow[c];
    }
  }
  return out;
}

// Adds `block` into the same region of `t`.
void AddBlock2D(Tensor& t, const Tensor& block, int64_t row0, int64_t col0) {
  int64_t width = t.dim(1);
  int64_t cols = block.dim(1);
  float* dst = t.data();
  const float* src = block.data();
  for (int64_t r = 0; r < block.dim(0); ++r) {
    float* drow = dst + (row0 + r) * width + col0;
    const float* srow = src + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      drow[c] += srow[c];
    }
  }
}

}  // namespace

ParallelAttention::ParallelAttention(const ModelConfig& config, int tp_degree,
                                     ParamPtr qkv_weight, ParamPtr qkv_bias,
                                     ParamPtr dense_weight, ParamPtr dense_bias)
    : heads_local_(config.num_heads / tp_degree),
      kv_heads_local_(config.num_kv_heads / tp_degree),
      head_dim_(config.head_dim()),
      scale_(1.0f / std::sqrt(static_cast<float>(config.head_dim()))),
      qkv_(std::move(qkv_weight), std::move(qkv_bias)),
      dense_(std::move(dense_weight), std::move(dense_bias)) {
  UCP_CHECK_EQ(config.num_heads % tp_degree, 0) << "TP degree must divide num_heads";
  UCP_CHECK_EQ(config.num_kv_heads % tp_degree, 0) << "TP degree must divide num_kv_heads";
}

Tensor ParallelAttention::Forward(const Tensor& x, const LayerContext& ctx) {
  const int64_t n_local = ctx.local_tokens();
  UCP_CHECK_EQ(x.dim(0), n_local);
  const int64_t qw = static_cast<int64_t>(heads_local_) * head_dim_;
  const int64_t kvw = static_cast<int64_t>(kv_heads_local_) * head_dim_;

  Tensor qkv_out = qkv_.Forward(x);  // [n_local, qw + 2*kvw]
  q_ = Slice2D(qkv_out, 0, n_local, 0, qw);
  Tensor k_local = Slice2D(qkv_out, 0, n_local, qw, kvw);
  Tensor v_local = Slice2D(qkv_out, 0, n_local, qw + kvw, kvw);

  if (ctx.sp.size() > 1) {
    // Gather the full sequence of K/V: [B, S_local, kvw] concat on the sequence dim.
    Tensor k3 = k_local.Reshape({ctx.batch, ctx.seq_local, kvw});
    Tensor v3 = v_local.Reshape({ctx.batch, ctx.seq_local, kvw});
    k_full_ = ctx.sp.AllGatherConcat(k3, 1).Reshape(
        {static_cast<int64_t>(ctx.batch) * ctx.seq_total, kvw});
    v_full_ = ctx.sp.AllGatherConcat(v3, 1).Reshape(
        {static_cast<int64_t>(ctx.batch) * ctx.seq_total, kvw});
  } else {
    k_full_ = std::move(k_local);
    v_full_ = std::move(v_local);
  }

  const int group = heads_local_ / kv_heads_local_;  // query heads per KV head
  probs_.assign(static_cast<size_t>(ctx.batch) * heads_local_, Tensor());
  Tensor context = Tensor::Zeros({n_local, qw});

  for (int b = 0; b < ctx.batch; ++b) {
    for (int h = 0; h < heads_local_; ++h) {
      const int g = h / group;
      Tensor qh = Slice2D(q_, static_cast<int64_t>(b) * ctx.seq_local, ctx.seq_local,
                          static_cast<int64_t>(h) * head_dim_, head_dim_);
      Tensor kh = Slice2D(k_full_, static_cast<int64_t>(b) * ctx.seq_total, ctx.seq_total,
                          static_cast<int64_t>(g) * head_dim_, head_dim_);
      Tensor vh = Slice2D(v_full_, static_cast<int64_t>(b) * ctx.seq_total, ctx.seq_total,
                          static_cast<int64_t>(g) * head_dim_, head_dim_);

      Tensor scores = MatmulNT(qh, kh);  // [seq_local, seq_total]
      scores.Scale_(scale_);
      // Causal mask in global positions: query i (global ctx.seq_offset + i) may attend to
      // keys j <= its own position.
      float* ps = scores.data();
      for (int64_t i = 0; i < ctx.seq_local; ++i) {
        int64_t limit = ctx.seq_offset + i;
        for (int64_t j = limit + 1; j < ctx.seq_total; ++j) {
          ps[i * ctx.seq_total + j] = -std::numeric_limits<float>::infinity();
        }
      }
      SoftmaxRows_(scores);
      probs_[static_cast<size_t>(b) * heads_local_ + h] = scores;

      Tensor out = MatmulNN(scores, vh);  // [seq_local, d]
      AddBlock2D(context, out, static_cast<int64_t>(b) * ctx.seq_local,
                 static_cast<int64_t>(h) * head_dim_);
    }
  }

  return dense_.Forward(context, ctx);
}

Tensor ParallelAttention::Backward(const Tensor& dy, const LayerContext& ctx) {
  const int64_t n_local = ctx.local_tokens();
  const int64_t qw = static_cast<int64_t>(heads_local_) * head_dim_;
  const int64_t kvw = static_cast<int64_t>(kv_heads_local_) * head_dim_;
  const int64_t n_full = static_cast<int64_t>(ctx.batch) * ctx.seq_total;
  const int group = heads_local_ / kv_heads_local_;

  Tensor dcontext = dense_.Backward(dy);  // [n_local, qw]

  Tensor dq = Tensor::Zeros({n_local, qw});
  Tensor dk_full = Tensor::Zeros({n_full, kvw});
  Tensor dv_full = Tensor::Zeros({n_full, kvw});

  for (int b = 0; b < ctx.batch; ++b) {
    for (int h = 0; h < heads_local_; ++h) {
      const int g = h / group;
      const Tensor& probs = probs_[static_cast<size_t>(b) * heads_local_ + h];

      Tensor dout = Slice2D(dcontext, static_cast<int64_t>(b) * ctx.seq_local, ctx.seq_local,
                            static_cast<int64_t>(h) * head_dim_, head_dim_);
      Tensor qh = Slice2D(q_, static_cast<int64_t>(b) * ctx.seq_local, ctx.seq_local,
                          static_cast<int64_t>(h) * head_dim_, head_dim_);
      Tensor kh = Slice2D(k_full_, static_cast<int64_t>(b) * ctx.seq_total, ctx.seq_total,
                          static_cast<int64_t>(g) * head_dim_, head_dim_);
      Tensor vh = Slice2D(v_full_, static_cast<int64_t>(b) * ctx.seq_total, ctx.seq_total,
                          static_cast<int64_t>(g) * head_dim_, head_dim_);

      // out = P V  =>  dP = dout V^T ; dV += P^T dout
      Tensor dprobs = MatmulNT(dout, vh);          // [seq_local, seq_total]
      Tensor dvh = MatmulTN(probs, dout);          // [seq_total, d]
      Tensor dscores = SoftmaxRowsBackward(probs, dprobs);
      dscores.Scale_(scale_);
      // scores = s * Q K^T  =>  dQ = dscores K ; dK += dscores^T Q  (scale folded above)
      Tensor dqh = MatmulNN(dscores, kh);          // [seq_local, d]
      Tensor dkh = MatmulTN(dscores, qh);          // [seq_total, d]

      AddBlock2D(dq, dqh, static_cast<int64_t>(b) * ctx.seq_local,
                 static_cast<int64_t>(h) * head_dim_);
      AddBlock2D(dk_full, dkh, static_cast<int64_t>(b) * ctx.seq_total,
                 static_cast<int64_t>(g) * head_dim_);
      AddBlock2D(dv_full, dvh, static_cast<int64_t>(b) * ctx.seq_total,
                 static_cast<int64_t>(g) * head_dim_);
    }
  }

  Tensor dk_local;
  Tensor dv_local;
  if (ctx.sp.size() > 1) {
    // Every SP rank produced gradient contributions for the *full* K/V sequence; sum them
    // and keep this rank's owned slice.
    ctx.sp.AllReduceSum(dk_full);
    ctx.sp.AllReduceSum(dv_full);
    dk_local = dk_full.Reshape({ctx.batch, ctx.seq_total, kvw})
                   .Narrow(1, ctx.seq_offset, ctx.seq_local)
                   .Reshape({n_local, kvw});
    dv_local = dv_full.Reshape({ctx.batch, ctx.seq_total, kvw})
                   .Narrow(1, ctx.seq_offset, ctx.seq_local)
                   .Reshape({n_local, kvw});
  } else {
    dk_local = std::move(dk_full);
    dv_local = std::move(dv_full);
  }

  Tensor dqkv = Tensor::Concat({dq, dk_local, dv_local}, 1);
  return qkv_.Backward(dqkv, ctx);
}

}  // namespace ucp
