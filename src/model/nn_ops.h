// Forward/backward primitives for the training simulator: activations, norms, softmax, and
// cross-entropy. All operate on 2-d [rows, features] tensors (rows = batch*seq tokens);
// reductions are over the feature dim in a fixed left-to-right order for reproducibility.

#ifndef UCP_SRC_MODEL_NN_OPS_H_
#define UCP_SRC_MODEL_NN_OPS_H_

#include "src/tensor/tensor.h"

namespace ucp {

// GELU (tanh approximation, as used by GPT/BLOOM).
Tensor Gelu(const Tensor& x);
// dx given upstream dy; x is the forward input.
Tensor GeluBackward(const Tensor& x, const Tensor& dy);

// SiLU / swish (the SwiGLU building block).
Tensor Silu(const Tensor& x);
Tensor SiluBackward(const Tensor& x, const Tensor& dy);

// LayerNorm over the last dim with affine transform. `beta` may be null (no bias).
struct LayerNormCache {
  Tensor x_hat;    // normalized input [rows, h]
  Tensor inv_std;  // [rows]
};
Tensor LayerNormForward(const Tensor& x, const Tensor& gamma, const Tensor* beta,
                        LayerNormCache& cache, float eps = 1e-5f);
// Returns dx; accumulates (+=) into dgamma / dbeta (dbeta may be null).
Tensor LayerNormBackward(const Tensor& dy, const Tensor& gamma, const LayerNormCache& cache,
                         Tensor& dgamma, Tensor* dbeta);

// RMSNorm over the last dim (LLaMA-style, weight only).
struct RmsNormCache {
  Tensor x;        // forward input [rows, h]
  Tensor inv_rms;  // [rows]
};
Tensor RmsNormForward(const Tensor& x, const Tensor& gamma, RmsNormCache& cache,
                      float eps = 1e-5f);
Tensor RmsNormBackward(const Tensor& dy, const Tensor& gamma, const RmsNormCache& cache,
                       Tensor& dgamma);

// Row-wise softmax over the last dim, in place (numerically stable).
void SoftmaxRows_(Tensor& x);
// Given probs = softmax(z) and upstream dprobs, returns dz.
Tensor SoftmaxRowsBackward(const Tensor& probs, const Tensor& dprobs);

// Softmax cross-entropy. logits [rows, vocab]; labels [rows] (integer values stored as
// floats). Returns the *sum* of per-row losses; writes d(sum)/dlogits into dlogits
// (allocated by the caller, same shape as logits). The caller applies 1/tokens scaling.
double CrossEntropySum(const Tensor& logits, const Tensor& labels, Tensor& dlogits);

}  // namespace ucp

#endif  // UCP_SRC_MODEL_NN_OPS_H_
