// Feed-forward blocks: GPT-style GELU MLP, LLaMA-style SwiGLU, and the top-k gated
// mixture-of-experts FFN (Mixtral-like, with 3-d expert weight tensors — the Fig. 5 MoE
// sub-pattern).

#ifndef UCP_SRC_MODEL_MLP_H_
#define UCP_SRC_MODEL_MLP_H_

#include <vector>

#include "src/model/config.h"
#include "src/model/layer_context.h"
#include "src/model/linear.h"

namespace ucp {

// h_to_4h (column-parallel) -> GELU -> 4h_to_h (row-parallel).
class GptMlp {
 public:
  GptMlp(ParamPtr w_in, ParamPtr b_in, ParamPtr w_out, ParamPtr b_out)
      : in_(std::move(w_in), std::move(b_in)), out_(std::move(w_out), std::move(b_out)) {}

  Tensor Forward(const Tensor& x, const LayerContext& ctx);
  Tensor Backward(const Tensor& dy, const LayerContext& ctx);

 private:
  ColumnParallelLinear in_;
  RowParallelLinear out_;
  Tensor cached_pre_;  // pre-activation
};

// silu(gate(x)) * up(x) -> down. gate/up column-parallel, down row-parallel.
class SwiGluMlp {
 public:
  SwiGluMlp(ParamPtr gate, ParamPtr up, ParamPtr down)
      : gate_(std::move(gate), nullptr),
        up_(std::move(up), nullptr),
        down_(std::move(down), nullptr) {}

  Tensor Forward(const Tensor& x, const LayerContext& ctx);
  Tensor Backward(const Tensor& dy, const LayerContext& ctx);

 private:
  ColumnParallelLinear gate_;
  ColumnParallelLinear up_;
  RowParallelLinear down_;
  Tensor cached_gate_pre_;
  Tensor cached_up_;
  Tensor cached_silu_;
};

// Top-k gated MoE with GELU expert FFNs. The router (gate.weight [E, hidden]) is replicated
// across TP. Expert tensors w1 [E, ffn, hidden] / w2 [E, hidden, ffn] are sharded one of
// two ways (config.moe_expert_sharding):
//   - ffn-dim TP (default): every rank holds a slice of every expert
//     ([E, ffn/tp, hidden] / [E, hidden, ffn/tp]); expert outputs are partial sums.
//   - expert parallelism: each rank owns E/tp whole experts ([E/tp, ffn, hidden]); expert
//     outputs are complete, and the TP all-reduce combines different experts' terms.
class MoeMlp {
 public:
  MoeMlp(const ModelConfig& config, int tp_degree, int tp_rank, ParamPtr gate, ParamPtr w1,
         ParamPtr w2);

  Tensor Forward(const Tensor& x, const LayerContext& ctx);
  Tensor Backward(const Tensor& dy, const LayerContext& ctx);

 private:
  bool OwnsExpert(int e) const { return e >= expert_begin_ && e < expert_begin_ + expert_count_; }

  int num_experts_;
  int top_k_;
  int64_t ffn_local_;   // full ffn width under expert sharding
  int expert_begin_;    // first owned expert (0 under ffn sharding)
  int expert_count_;    // owned experts (all of them under ffn sharding)
  ParamPtr gate_;
  ParamPtr w1_;
  ParamPtr w2_;

  // Forward caches.
  Tensor cached_x_;
  Tensor probs_;  // router softmax [tokens, E]
  struct Selection {
    int expert;
    float weight;  // normalized top-k gate weight
  };
  std::vector<std::vector<Selection>> selections_;  // per token
  struct ExpertCache {
    std::vector<int64_t> token_idx;
    Tensor x;        // [n_e, hidden]
    Tensor h_pre;    // [n_e, ffn_local]
    Tensor h_act;    // [n_e, ffn_local]
    Tensor partial;  // [n_e, hidden] — this rank's partial expert output (pre TP reduce)
  };
  std::vector<ExpertCache> expert_cache_;
};

}  // namespace ucp

#endif  // UCP_SRC_MODEL_MLP_H_
