#include "src/model/param.h"

namespace ucp {

ParamPtr ParamStore::Add(ParamPtr param) {
  UCP_CHECK(param != nullptr);
  UCP_CHECK(index_.find(param->info.name) == index_.end())
      << "duplicate parameter " << param->info.name;
  index_[param->info.name] = params_.size();
  params_.push_back(param);
  return params_.back();
}

ParamPtr ParamStore::Get(const std::string& name) const {
  ParamPtr p = FindOrNull(name);
  UCP_CHECK(p != nullptr) << "unknown parameter " << name;
  return p;
}

ParamPtr ParamStore::FindOrNull(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : params_[it->second];
}

void ParamStore::ZeroGrads() {
  for (const ParamPtr& p : params_) {
    if (p->grad.defined()) {
      p->grad.Zero_();
    }
  }
}

int64_t ParamStore::TotalNumel() const {
  int64_t total = 0;
  for (const ParamPtr& p : params_) {
    total += p->value.numel();
  }
  return total;
}

Tensor InitFullValue(const LogicalParam& info, uint64_t model_seed) {
  switch (info.init) {
    case InitKind::kOnes:
      return Tensor::Full(info.full_shape, 1.0f);
    case InitKind::kZeros:
      return Tensor::Zeros(info.full_shape);
    case InitKind::kGaussian: {
      CounterRng rng(model_seed, info.init_stream);
      return Tensor::Gaussian(info.full_shape, rng, 0, info.init_stddev);
    }
  }
  UCP_CHECK(false) << "unreachable";
  return Tensor();
}

ParamPtr MaterializeParam(const LogicalParam& info, uint64_t model_seed, int tp_degree,
                          int tp_rank) {
  auto param = std::make_shared<Param>();
  param->info = info;
  Tensor full = InitFullValue(info, model_seed);
  param->value = ShardOf(info.tp_spec, full, tp_degree, tp_rank);
  param->AllocateGrad();
  return param;
}

}  // namespace ucp
