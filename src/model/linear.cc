#include "src/model/linear.h"

#include "src/tensor/matmul.h"

namespace ucp {

Tensor ColumnParallelLinear::Forward(const Tensor& x) {
  cached_x_ = x.Clone();
  // y = x W^T  (W is [out_local, in])
  Tensor y = MatmulNT(x, weight_->value);
  if (bias_ != nullptr) {
    const float* b = bias_->value.data();
    float* py = y.data();
    int64_t out = y.dim(1);
    for (int64_t r = 0; r < y.dim(0); ++r) {
      for (int64_t c = 0; c < out; ++c) {
        py[r * out + c] += b[c];
      }
    }
  }
  return y;
}

Tensor ColumnParallelLinear::Backward(const Tensor& dy, const LayerContext& ctx) {
  // dW += dy^T x
  MatmulTN(dy, cached_x_, weight_->grad, /*accumulate=*/true);
  if (bias_ != nullptr) {
    float* db = bias_->grad.data();
    const float* pdy = dy.data();
    int64_t out = dy.dim(1);
    for (int64_t r = 0; r < dy.dim(0); ++r) {
      for (int64_t c = 0; c < out; ++c) {
        db[c] += pdy[r * out + c];
      }
    }
  }
  // dx = dy W, partial per rank; the input was replicated so contributions sum across TP.
  Tensor dx = MatmulNN(dy, weight_->value);
  if (ctx.tp.size() > 1) {
    ctx.tp.AllReduceSum(dx);
  }
  return dx;
}

Tensor RowParallelLinear::Forward(const Tensor& x, const LayerContext& ctx) {
  cached_x_ = x.Clone();
  Tensor y = MatmulNT(x, weight_->value);  // partial sums
  if (ctx.tp.size() > 1) {
    ctx.tp.AllReduceSum(y);
  }
  if (bias_ != nullptr) {
    const float* b = bias_->value.data();
    float* py = y.data();
    int64_t out = y.dim(1);
    for (int64_t r = 0; r < y.dim(0); ++r) {
      for (int64_t c = 0; c < out; ++c) {
        py[r * out + c] += b[c];
      }
    }
  }
  return y;
}

Tensor RowParallelLinear::Backward(const Tensor& dy) {
  MatmulTN(dy, cached_x_, weight_->grad, /*accumulate=*/true);
  if (bias_ != nullptr) {
    // dy is full and identical on every TP rank, so each rank accumulates the identical
    // replicated-bias gradient.
    float* db = bias_->grad.data();
    const float* pdy = dy.data();
    int64_t out = dy.dim(1);
    for (int64_t r = 0; r < dy.dim(0); ++r) {
      for (int64_t c = 0; c < out; ++c) {
        db[c] += pdy[r * out + c];
      }
    }
  }
  return MatmulNN(dy, weight_->value);
}

Tensor VocabParallelEmbedding::Forward(const Tensor& tokens, const LayerContext& ctx) {
  cached_tokens_ = tokens.Clone();
  int64_t n = tokens.numel();
  int64_t hidden = weight_->value.dim(1);
  int64_t vocab_local = weight_->value.dim(0);
  Tensor x = Tensor::Zeros({n, hidden});
  const float* pt = tokens.data();
  const float* pw = weight_->value.data();
  float* px = x.data();
  for (int64_t i = 0; i < n; ++i) {
    auto tok = static_cast<int64_t>(pt[i]) - vocab_offset_;
    if (tok >= 0 && tok < vocab_local) {
      for (int64_t c = 0; c < hidden; ++c) {
        px[i * hidden + c] = pw[tok * hidden + c];
      }
    }
  }
  if (ctx.tp.size() > 1) {
    ctx.tp.AllReduceSum(x);
  }
  return x;
}

void VocabParallelEmbedding::Backward(const Tensor& dx) {
  int64_t n = cached_tokens_.numel();
  int64_t hidden = weight_->value.dim(1);
  int64_t vocab_local = weight_->value.dim(0);
  UCP_CHECK_EQ(dx.dim(0), n);
  const float* pt = cached_tokens_.data();
  const float* pdx = dx.data();
  float* pdw = weight_->grad.data();
  for (int64_t i = 0; i < n; ++i) {
    auto tok = static_cast<int64_t>(pt[i]) - vocab_offset_;
    if (tok >= 0 && tok < vocab_local) {
      for (int64_t c = 0; c < hidden; ++c) {
        pdw[tok * hidden + c] += pdx[i * hidden + c];
      }
    }
  }
}

}  // namespace ucp
