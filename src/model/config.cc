#include "src/model/config.h"

#include "src/common/status.h"

namespace ucp {

const char* ArchKindName(ArchKind arch) {
  switch (arch) {
    case ArchKind::kGpt:
      return "gpt";
    case ArchKind::kLlama:
      return "llama";
    case ArchKind::kBloom:
      return "bloom";
    case ArchKind::kMoe:
      return "moe";
  }
  return "unknown";
}

void ModelConfig::Validate() const {
  UCP_CHECK_GT(vocab_size, 1);
  UCP_CHECK_GT(max_seq_len, 0);
  UCP_CHECK_GT(num_layers, 0);
  UCP_CHECK_GT(hidden, 0);
  UCP_CHECK_GT(num_heads, 0);
  UCP_CHECK_EQ(hidden % num_heads, 0) << "hidden must be divisible by num_heads";
  UCP_CHECK_GT(num_kv_heads, 0);
  UCP_CHECK_LE(num_kv_heads, num_heads);
  UCP_CHECK_EQ(num_heads % num_kv_heads, 0) << "num_heads must be divisible by num_kv_heads";
  UCP_CHECK_GT(ffn_hidden, 0);
  UCP_CHECK_GE(num_experts, 1);
  if (is_moe()) {
    UCP_CHECK_EQ(static_cast<int>(arch), static_cast<int>(ArchKind::kMoe))
        << "num_experts > 1 requires the MoE arch";
    UCP_CHECK_GE(moe_top_k, 1);
    UCP_CHECK_LE(moe_top_k, num_experts);
  }
}

Json ModelConfig::ToJson() const {
  JsonObject obj;
  obj["arch"] = static_cast<int64_t>(arch);
  obj["vocab_size"] = vocab_size;
  obj["max_seq_len"] = max_seq_len;
  obj["num_layers"] = num_layers;
  obj["hidden"] = hidden;
  obj["num_heads"] = num_heads;
  obj["num_kv_heads"] = num_kv_heads;
  obj["ffn_hidden"] = ffn_hidden;
  obj["num_experts"] = num_experts;
  obj["moe_top_k"] = moe_top_k;
  obj["moe_expert_sharding"] = moe_expert_sharding;
  obj["tied_embeddings"] = tied_embeddings;
  obj["init_seed"] = static_cast<int64_t>(init_seed);
  return Json(std::move(obj));
}

Result<ModelConfig> ModelConfig::FromJson(const Json& json) {
  ModelConfig config;
  UCP_ASSIGN_OR_RETURN(int64_t arch, json.GetInt("arch"));
  if (arch < 0 || arch > static_cast<int64_t>(ArchKind::kMoe)) {
    return InvalidArgumentError("bad arch id " + std::to_string(arch));
  }
  config.arch = static_cast<ArchKind>(arch);
  UCP_ASSIGN_OR_RETURN(int64_t v, json.GetInt("vocab_size"));
  config.vocab_size = static_cast<int>(v);
  UCP_ASSIGN_OR_RETURN(int64_t seq, json.GetInt("max_seq_len"));
  config.max_seq_len = static_cast<int>(seq);
  UCP_ASSIGN_OR_RETURN(int64_t layers, json.GetInt("num_layers"));
  config.num_layers = static_cast<int>(layers);
  UCP_ASSIGN_OR_RETURN(int64_t hidden, json.GetInt("hidden"));
  config.hidden = static_cast<int>(hidden);
  UCP_ASSIGN_OR_RETURN(int64_t heads, json.GetInt("num_heads"));
  config.num_heads = static_cast<int>(heads);
  UCP_ASSIGN_OR_RETURN(int64_t kv_heads, json.GetInt("num_kv_heads"));
  config.num_kv_heads = static_cast<int>(kv_heads);
  UCP_ASSIGN_OR_RETURN(int64_t ffn, json.GetInt("ffn_hidden"));
  config.ffn_hidden = static_cast<int>(ffn);
  UCP_ASSIGN_OR_RETURN(int64_t experts, json.GetInt("num_experts"));
  config.num_experts = static_cast<int>(experts);
  UCP_ASSIGN_OR_RETURN(int64_t top_k, json.GetInt("moe_top_k"));
  config.moe_top_k = static_cast<int>(top_k);
  UCP_ASSIGN_OR_RETURN(config.moe_expert_sharding, json.GetBool("moe_expert_sharding"));
  UCP_ASSIGN_OR_RETURN(bool tied, json.GetBool("tied_embeddings"));
  config.tied_embeddings = tied;
  UCP_ASSIGN_OR_RETURN(int64_t seed, json.GetInt("init_seed"));
  config.init_seed = static_cast<uint64_t>(seed);
  return config;
}

bool SameLogicalModel(const ModelConfig& a, const ModelConfig& b) {
  ModelConfig ca = a;
  ModelConfig cb = b;
  ca.moe_expert_sharding = false;
  cb.moe_expert_sharding = false;
  return ca == cb;
}

ModelConfig Gpt3Scaled() {
  ModelConfig c;
  c.arch = ArchKind::kGpt;
  c.vocab_size = 256;
  c.max_seq_len = 32;
  c.num_layers = 4;
  c.hidden = 64;
  c.num_heads = 4;
  c.num_kv_heads = 4;
  c.ffn_hidden = 256;
  c.init_seed = 20240601;
  return c;
}

ModelConfig LlamaScaled() {
  ModelConfig c;
  c.arch = ArchKind::kLlama;
  c.vocab_size = 256;
  c.max_seq_len = 32;
  c.num_layers = 4;
  c.hidden = 64;
  c.num_heads = 4;
  c.num_kv_heads = 2;  // GQA: exercises the variable-size fused-QKV sub-pattern
  c.ffn_hidden = 192;
  c.init_seed = 20240602;
  return c;
}

ModelConfig BloomScaled() {
  ModelConfig c;
  c.arch = ArchKind::kBloom;
  c.vocab_size = 256;
  c.max_seq_len = 32;
  c.num_layers = 8;  // deeper, to give PP=4 two layers per stage
  c.hidden = 64;
  c.num_heads = 4;
  c.num_kv_heads = 4;
  c.ffn_hidden = 256;
  c.tied_embeddings = true;
  c.init_seed = 20240603;
  return c;
}

ModelConfig MoeScaled() {
  ModelConfig c;
  c.arch = ArchKind::kMoe;
  c.vocab_size = 256;
  c.max_seq_len = 32;
  c.num_layers = 4;
  c.hidden = 64;
  c.num_heads = 4;
  c.num_kv_heads = 4;
  c.ffn_hidden = 128;
  c.num_experts = 4;
  c.moe_top_k = 2;
  c.init_seed = 20240604;
  return c;
}

ModelConfig TinyGpt() {
  ModelConfig c;
  c.arch = ArchKind::kGpt;
  c.vocab_size = 64;
  c.max_seq_len = 16;
  c.num_layers = 2;
  c.hidden = 32;
  c.num_heads = 4;
  c.num_kv_heads = 4;
  c.ffn_hidden = 64;
  c.init_seed = 7;
  return c;
}

ModelConfig TinyLlama() {
  ModelConfig c = TinyGpt();
  c.arch = ArchKind::kLlama;
  c.num_kv_heads = 2;
  c.init_seed = 8;
  return c;
}

ModelConfig TinyMoe() {
  ModelConfig c = TinyGpt();
  c.arch = ArchKind::kMoe;
  c.num_experts = 2;
  // top-2 of 2: with renormalized top-1 the gate weight is constant (zero gradient) and
  // selection flips make finite-difference checks discontinuous.
  c.moe_top_k = 2;
  c.ffn_hidden = 32;
  c.init_seed = 9;
  return c;
}

}  // namespace ucp
