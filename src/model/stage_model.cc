#include "src/model/stage_model.h"

#include "src/model/nn_ops.h"
#include "src/tensor/matmul.h"

namespace ucp {

namespace {
constexpr char kWordEmbeddings[] = "language_model.embedding.word_embeddings.weight";
constexpr char kPositionEmbeddings[] = "language_model.embedding.position_embeddings.weight";
constexpr char kFinalNormWeight[] = "language_model.encoder.final_layernorm.weight";
constexpr char kFinalNormBias[] = "language_model.encoder.final_layernorm.bias";
constexpr char kOutputLayer[] = "language_model.output_layer.weight";
}  // namespace

StageModel::StageModel(const ModelConfig& config, const ParallelConfig& strategy,
                       const RankCoord& coord)
    : config_(config), strategy_(strategy), coord_(coord) {
  config.Validate();
  std::vector<InventoryEntry> inventory = BuildInventory(config);
  std::vector<InventoryEntry> mine = StageEntries(inventory, config, coord.pp, strategy.pp);

  for (const InventoryEntry& entry : mine) {
    ParamPtr p = MaterializeParam(entry.param, config.init_seed, strategy.tp, coord.tp);
    // The last-stage copy of a tied embedding trains but is excluded from checkpoints and
    // the gradient norm: the first-stage copy is canonical.
    p->tied_secondary = IsTiedSecondary(entry, config, strategy, coord);
    p->norm_counts = NormCounts(entry, config, strategy, coord);
    p->sp_independent = entry.sp_independent;
    store_.Add(std::move(p));
  }

  auto split = SplitLayersAcrossStages(config.num_layers, strategy.pp);
  auto [first, count] = split[static_cast<size_t>(coord.pp)];
  first_layer_ = first;
  for (int l = first; l < first + count; ++l) {
    blocks_.push_back(
        std::make_unique<TransformerBlock>(config, l, store_, strategy.tp, coord.tp));
  }

  if (is_first_stage()) {
    embedding_ = std::make_unique<VocabParallelEmbedding>(store_.Get(kWordEmbeddings),
                                                          coord.tp);
    if (config.has_position_embeddings()) {
      position_embeddings_ = store_.Get(kPositionEmbeddings);
    }
  }
  if (is_last_stage()) {
    final_norm_w_ = store_.Get(kFinalNormWeight);
    if (config.has_biases()) {
      final_norm_b_ = store_.Get(kFinalNormBias);
    }
    head_weight_ = config.tied_embeddings ? store_.Get(kWordEmbeddings)
                                          : store_.Get(kOutputLayer);
  }
}

Tensor StageModel::Embed(const Tensor& tokens, const LayerContext& ctx) {
  UCP_CHECK(is_first_stage());
  Tensor x = embedding_->Forward(tokens, ctx);
  if (position_embeddings_ != nullptr) {
    const float* pe = position_embeddings_->value.data();
    float* px = x.data();
    int64_t h = x.dim(1);
    for (int b = 0; b < ctx.batch; ++b) {
      for (int s = 0; s < ctx.seq_local; ++s) {
        int64_t row = static_cast<int64_t>(b) * ctx.seq_local + s;
        const float* pos_row = pe + static_cast<int64_t>(ctx.seq_offset + s) * h;
        for (int64_t c = 0; c < h; ++c) {
          px[row * h + c] += pos_row[c];
        }
      }
    }
  }
  return x;
}

void StageModel::EmbedBackward(const Tensor& dx, const LayerContext& ctx) {
  UCP_CHECK(is_first_stage());
  if (position_embeddings_ != nullptr) {
    float* pdg = position_embeddings_->grad.data();
    const float* pdx = dx.data();
    int64_t h = dx.dim(1);
    for (int b = 0; b < ctx.batch; ++b) {
      for (int s = 0; s < ctx.seq_local; ++s) {
        int64_t row = static_cast<int64_t>(b) * ctx.seq_local + s;
        float* grad_row = pdg + static_cast<int64_t>(ctx.seq_offset + s) * h;
        for (int64_t c = 0; c < h; ++c) {
          grad_row[c] += pdx[row * h + c];
        }
      }
    }
  }
  embedding_->Backward(dx);
}

Tensor StageModel::ForwardBlocks(const Tensor& x, const LayerContext& ctx) {
  Tensor h = x;
  for (auto& block : blocks_) {
    h = block->Forward(h, ctx);
  }
  return h;
}

Tensor StageModel::BackwardBlocks(const Tensor& dy, const LayerContext& ctx) {
  Tensor d = dy;
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    d = (*it)->Backward(d, ctx);
  }
  return d;
}

double StageModel::LossForward(const Tensor& x, const Tensor& labels, const LayerContext& ctx,
                               double inv_total_tokens) {
  UCP_CHECK(is_last_stage());
  // Final norm.
  if (config_.uses_rmsnorm()) {
    head_input_ = RmsNormForward(x, final_norm_w_->value, final_rms_cache_);
  } else {
    const Tensor* beta = final_norm_b_ != nullptr ? &final_norm_b_->value : nullptr;
    head_input_ = LayerNormForward(x, final_norm_w_->value, beta, final_ln_cache_);
  }

  // Vocab-parallel LM head.
  Tensor logits_local = MatmulNT(head_input_, head_weight_->value);  // [tokens, vocab_local]
  Tensor logits = ctx.tp.size() > 1 ? ctx.tp.AllGatherConcat(logits_local, 1)
                                    : std::move(logits_local);

  Tensor flat_labels = labels.Reshape({labels.numel()});
  Tensor dlogits = Tensor::Zeros(logits.shape());
  double loss_sum = CrossEntropySum(logits, flat_labels, dlogits);
  dlogits.Scale_(static_cast<float>(inv_total_tokens));

  int64_t vocab_local = head_weight_->value.dim(0);
  head_dlogits_local_ = ctx.tp.size() > 1
                            ? dlogits.Narrow(1, coord_.tp * vocab_local, vocab_local)
                            : std::move(dlogits);
  return loss_sum * inv_total_tokens;
}

Tensor StageModel::LossBackward(const LayerContext& ctx) {
  UCP_CHECK(is_last_stage());
  // logits_local = x_n W^T  =>  dW += dlogits^T x_n ; dx_n = dlogits W
  MatmulTN(head_dlogits_local_, head_input_, head_weight_->grad, /*accumulate=*/true);
  Tensor dxn = MatmulNN(head_dlogits_local_, head_weight_->value);
  if (ctx.tp.size() > 1) {
    ctx.tp.AllReduceSum(dxn);
  }
  if (config_.uses_rmsnorm()) {
    return RmsNormBackward(dxn, final_norm_w_->value, final_rms_cache_, final_norm_w_->grad);
  }
  Tensor* dbeta = final_norm_b_ != nullptr ? &final_norm_b_->grad : nullptr;
  return LayerNormBackward(dxn, final_norm_w_->value, final_ln_cache_, final_norm_w_->grad,
                           dbeta);
}

}  // namespace ucp
