#include "src/model/mlp.h"

#include <algorithm>

#include "src/model/nn_ops.h"
#include "src/tensor/matmul.h"

namespace ucp {

Tensor GptMlp::Forward(const Tensor& x, const LayerContext& ctx) {
  cached_pre_ = in_.Forward(x);
  return out_.Forward(Gelu(cached_pre_), ctx);
}

Tensor GptMlp::Backward(const Tensor& dy, const LayerContext& ctx) {
  Tensor dact = out_.Backward(dy);
  Tensor dpre = GeluBackward(cached_pre_, dact);
  return in_.Backward(dpre, ctx);
}

Tensor SwiGluMlp::Forward(const Tensor& x, const LayerContext& ctx) {
  cached_gate_pre_ = gate_.Forward(x);
  cached_up_ = up_.Forward(x);
  cached_silu_ = Silu(cached_gate_pre_);
  Tensor prod = cached_silu_.Clone();
  prod.Mul_(cached_up_);
  return down_.Forward(prod, ctx);
}

Tensor SwiGluMlp::Backward(const Tensor& dy, const LayerContext& ctx) {
  Tensor dprod = down_.Backward(dy);
  // prod = silu(g) * u
  Tensor dup = dprod.Clone();
  dup.Mul_(cached_silu_);
  Tensor dsilu = dprod;  // reuse
  dsilu.Mul_(cached_up_);
  Tensor dgate_pre = SiluBackward(cached_gate_pre_, dsilu);

  Tensor dx = gate_.Backward(dgate_pre, ctx);
  dx.Add_(up_.Backward(dup, ctx));
  return dx;
}

MoeMlp::MoeMlp(const ModelConfig& config, int tp_degree, int tp_rank, ParamPtr gate,
               ParamPtr w1, ParamPtr w2)
    : num_experts_(config.num_experts),
      top_k_(config.moe_top_k),
      gate_(std::move(gate)),
      w1_(std::move(w1)),
      w2_(std::move(w2)) {
  if (config.moe_expert_sharding) {
    UCP_CHECK_EQ(config.num_experts % tp_degree, 0)
        << "expert sharding needs tp to divide num_experts";
    ffn_local_ = config.ffn_hidden;
    expert_count_ = config.num_experts / tp_degree;
    expert_begin_ = tp_rank * expert_count_;
  } else {
    UCP_CHECK_EQ(config.ffn_hidden % tp_degree, 0);
    ffn_local_ = config.ffn_hidden / tp_degree;
    expert_count_ = config.num_experts;
    expert_begin_ = 0;
  }
  UCP_CHECK_EQ(w1_->value.dim(0), expert_count_);
  UCP_CHECK_EQ(w1_->value.dim(1), ffn_local_);
  UCP_CHECK_EQ(w2_->value.dim(2), ffn_local_);
}

Tensor MoeMlp::Forward(const Tensor& x, const LayerContext& ctx) {
  const int64_t n = x.dim(0);
  const int64_t h = x.dim(1);
  cached_x_ = x.Clone();

  // Router: logits = x G^T, identical on every TP rank (G replicated, x full).
  probs_ = MatmulNT(x, gate_->value);  // [n, E]
  SoftmaxRows_(probs_);

  // Deterministic top-k per token: by (prob desc, expert index asc).
  selections_.assign(static_cast<size_t>(n), {});
  expert_cache_.assign(static_cast<size_t>(num_experts_), {});
  const float* pp = probs_.data();
  for (int64_t t = 0; t < n; ++t) {
    std::vector<int> order(static_cast<size_t>(num_experts_));
    for (int e = 0; e < num_experts_; ++e) {
      order[static_cast<size_t>(e)] = e;
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return pp[t * num_experts_ + a] > pp[t * num_experts_ + b];
    });
    float denom = 0.0f;
    for (int k = 0; k < top_k_; ++k) {
      denom += pp[t * num_experts_ + order[static_cast<size_t>(k)]];
    }
    for (int k = 0; k < top_k_; ++k) {
      int e = order[static_cast<size_t>(k)];
      float weight = pp[t * num_experts_ + e] / denom;
      selections_[static_cast<size_t>(t)].push_back({e, weight});
      expert_cache_[static_cast<size_t>(e)].token_idx.push_back(t);
    }
  }

  Tensor out = Tensor::Zeros({n, h});
  for (int e = 0; e < num_experts_; ++e) {
    if (!OwnsExpert(e)) {
      continue;  // expert parallelism: another TP rank computes this expert entirely
    }
    const int64_t local_e = e - expert_begin_;
    ExpertCache& cache = expert_cache_[static_cast<size_t>(e)];
    const int64_t ne = static_cast<int64_t>(cache.token_idx.size());
    if (ne == 0) {
      continue;
    }
    // Gather this expert's tokens.
    cache.x = Tensor::Zeros({ne, h});
    for (int64_t i = 0; i < ne; ++i) {
      const float* src = x.data() + cache.token_idx[static_cast<size_t>(i)] * h;
      std::copy(src, src + h, cache.x.data() + i * h);
    }
    // Expert FFN on this rank's slice (3-d weights; dim-0 slices are contiguous views).
    Tensor w1e = Tensor::ViewOf(w1_->value, local_e * ffn_local_ * h, {ffn_local_, h});
    Tensor w2e = Tensor::ViewOf(w2_->value, local_e * h * ffn_local_, {h, ffn_local_});
    cache.h_pre = MatmulNT(cache.x, w1e);   // [ne, ffn_local]
    cache.h_act = Gelu(cache.h_pre);
    cache.partial = MatmulNT(cache.h_act, w2e);  // [ne, h], partial across TP

    // Scatter back, scaled by the token's gate weight for this expert.
    for (int64_t i = 0; i < ne; ++i) {
      int64_t t = cache.token_idx[static_cast<size_t>(i)];
      float weight = 0.0f;
      for (const Selection& s : selections_[static_cast<size_t>(t)]) {
        if (s.expert == e) {
          weight = s.weight;
        }
      }
      float* dst = out.data() + t * h;
      const float* src = cache.partial.data() + i * h;
      for (int64_t c = 0; c < h; ++c) {
        dst[c] += weight * src[c];
      }
    }
  }

  if (ctx.tp.size() > 1) {
    ctx.tp.AllReduceSum(out);
  }
  return out;
}

Tensor MoeMlp::Backward(const Tensor& dy, const LayerContext& ctx) {
  const int64_t n = dy.dim(0);
  const int64_t h = dy.dim(1);

  // d(gate weight) per (token, expert) and the expert-path input gradient, both partial
  // across TP until the all-reduces below.
  Tensor dweights = Tensor::Zeros({n, num_experts_});
  Tensor dx_expert = Tensor::Zeros({n, h});

  for (int e = 0; e < num_experts_; ++e) {
    if (!OwnsExpert(e)) {
      continue;
    }
    const int64_t local_e = e - expert_begin_;
    ExpertCache& cache = expert_cache_[static_cast<size_t>(e)];
    const int64_t ne = static_cast<int64_t>(cache.token_idx.size());
    if (ne == 0) {
      continue;
    }
    // dfe = w_{t,e} * dy_t ; dweight_{t,e} = dy_t . partial_t (summed across TP later).
    Tensor dfe = Tensor::Zeros({ne, h});
    for (int64_t i = 0; i < ne; ++i) {
      int64_t t = cache.token_idx[static_cast<size_t>(i)];
      float weight = 0.0f;
      for (const Selection& s : selections_[static_cast<size_t>(t)]) {
        if (s.expert == e) {
          weight = s.weight;
        }
      }
      const float* pdy = dy.data() + t * h;
      const float* pf = cache.partial.data() + i * h;
      float* pdfe = dfe.data() + i * h;
      double dot = 0.0;
      for (int64_t c = 0; c < h; ++c) {
        pdfe[c] = weight * pdy[c];
        dot += static_cast<double>(pdy[c]) * pf[c];
      }
      dweights.at(t * num_experts_ + e) = static_cast<float>(dot);
    }

    Tensor w1e = Tensor::ViewOf(w1_->value, local_e * ffn_local_ * h, {ffn_local_, h});
    Tensor w2e = Tensor::ViewOf(w2_->value, local_e * h * ffn_local_, {h, ffn_local_});
    Tensor dw1e = Tensor::ViewOf(w1_->grad, local_e * ffn_local_ * h, {ffn_local_, h});
    Tensor dw2e = Tensor::ViewOf(w2_->grad, local_e * h * ffn_local_, {h, ffn_local_});

    // partial = h_act W2^T
    MatmulTN(dfe, cache.h_act, dw2e, /*accumulate=*/true);     // dW2 += dfe^T h_act
    Tensor dh_act = MatmulNN(dfe, w2e);                        // [ne, ffn_local]
    Tensor dh_pre = GeluBackward(cache.h_pre, dh_act);
    MatmulTN(dh_pre, cache.x, dw1e, /*accumulate=*/true);      // dW1 += dh_pre^T x
    Tensor dxe = MatmulNN(dh_pre, w1e);                        // [ne, h]

    for (int64_t i = 0; i < ne; ++i) {
      int64_t t = cache.token_idx[static_cast<size_t>(i)];
      float* dst = dx_expert.data() + t * h;
      const float* src = dxe.data() + i * h;
      for (int64_t c = 0; c < h; ++c) {
        dst[c] += src[c];
      }
    }
  }

  if (ctx.tp.size() > 1) {
    // Partial expert outputs / gate-weight dots were computed per TP shard; sum them so the
    // router gradient (replicated parameter) is identical on every rank.
    ctx.tp.AllReduceSum(dweights);
    ctx.tp.AllReduceSum(dx_expert);
  }

  // Normalized-top-k backward: w_i = p_i / S over selected experts.
  Tensor dprobs = Tensor::Zeros({n, num_experts_});
  const float* pp = probs_.data();
  const float* pdw = dweights.data();
  float* pdp = dprobs.data();
  for (int64_t t = 0; t < n; ++t) {
    const auto& sel = selections_[static_cast<size_t>(t)];
    float denom = 0.0f;
    for (const Selection& s : sel) {
      denom += pp[t * num_experts_ + s.expert];
    }
    double weighted = 0.0;
    for (const Selection& s : sel) {
      weighted += static_cast<double>(pdw[t * num_experts_ + s.expert]) * s.weight;
    }
    for (const Selection& s : sel) {
      pdp[t * num_experts_ + s.expert] =
          (pdw[t * num_experts_ + s.expert] - static_cast<float>(weighted)) / denom;
    }
  }

  Tensor dlogits = SoftmaxRowsBackward(probs_, dprobs);
  MatmulTN(dlogits, cached_x_, gate_->grad, /*accumulate=*/true);  // dG += dlogits^T x
  Tensor dx = MatmulNN(dlogits, gate_->value);                     // router input grad (full)
  dx.Add_(dx_expert);
  return dx;
}

}  // namespace ucp
