// The portion of the model owned by one (pp stage, tp rank, sp rank): embedding on the
// first stage, a contiguous run of transformer blocks, and final-norm + vocab-parallel LM
// head + loss on the last stage. The trainer moves activations between stages over the
// simulated point-to-point channels.

#ifndef UCP_SRC_MODEL_STAGE_MODEL_H_
#define UCP_SRC_MODEL_STAGE_MODEL_H_

#include <memory>
#include <vector>

#include "src/model/block.h"
#include "src/model/inventory.h"

namespace ucp {

class StageModel {
 public:
  // Materializes this rank's parameter shards (deterministic init) and builds the layers.
  StageModel(const ModelConfig& config, const ParallelConfig& strategy, const RankCoord& coord);

  ParamStore& store() { return store_; }
  const ParamStore& store() const { return store_; }
  const ModelConfig& config() const { return config_; }
  bool is_first_stage() const { return coord_.pp == 0; }
  bool is_last_stage() const { return coord_.pp == strategy_.pp - 1; }
  int first_layer() const { return first_layer_; }
  int num_local_layers() const { return static_cast<int>(blocks_.size()); }

  // First stage: tokens [batch, seq_local] -> activations [batch*seq_local, hidden].
  Tensor Embed(const Tensor& tokens, const LayerContext& ctx);
  // Gradient of Embed's output; accumulates embedding gradients.
  void EmbedBackward(const Tensor& dx, const LayerContext& ctx);

  Tensor ForwardBlocks(const Tensor& x, const LayerContext& ctx);
  Tensor BackwardBlocks(const Tensor& dy, const LayerContext& ctx);

  // Last stage: final norm + LM head + softmax cross-entropy. labels: [batch, seq_local].
  // Returns this rank's contribution to the mean loss (sum of local token losses *
  // inv_total_tokens). Caches what LossBackward needs.
  double LossForward(const Tensor& x, const Tensor& labels, const LayerContext& ctx,
                     double inv_total_tokens);
  // Returns the gradient flowing back into the last block's output.
  Tensor LossBackward(const LayerContext& ctx);

 private:
  ModelConfig config_;
  ParallelConfig strategy_;
  RankCoord coord_;
  int first_layer_ = 0;

  ParamStore store_;
  std::unique_ptr<VocabParallelEmbedding> embedding_;
  ParamPtr position_embeddings_;  // null unless first stage with learned positions
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;

  // Last-stage head.
  ParamPtr final_norm_w_;
  ParamPtr final_norm_b_;
  ParamPtr head_weight_;  // output_layer or (tied) word-embedding copy
  LayerNormCache final_ln_cache_;
  RmsNormCache final_rms_cache_;
  Tensor head_input_;          // normed activations [tokens, hidden]
  Tensor head_dlogits_local_;  // scaled CE gradient, this rank's vocab shard
};

}  // namespace ucp

#endif  // UCP_SRC_MODEL_STAGE_MODEL_H_
