// Per-micro-batch execution context threaded through the parallel layers.

#ifndef UCP_SRC_MODEL_LAYER_CONTEXT_H_
#define UCP_SRC_MODEL_LAYER_CONTEXT_H_

#include "src/comm/comm.h"

namespace ucp {

struct LayerContext {
  ProcessGroup tp;  // tensor-parallel group (size 1 when TP is off)
  ProcessGroup sp;  // sequence-parallel group (size 1 when SP is off)

  // Geometry of the current micro-batch. Activations flow as [batch * seq_local, hidden];
  // each SP rank owns the contiguous token slice [seq_offset, seq_offset + seq_local) of
  // every sample.
  int batch = 0;
  int seq_total = 0;
  int seq_local = 0;
  int seq_offset = 0;

  int64_t local_tokens() const { return static_cast<int64_t>(batch) * seq_local; }
};

}  // namespace ucp

#endif  // UCP_SRC_MODEL_LAYER_CONTEXT_H_
