// Model architecture configuration and the scaled-down presets used to reproduce the
// paper's four workloads (Table 4). The presets keep every structural feature relevant to
// checkpoint resharding (fused QKV, GQA, MoE expert tensors, tied embeddings) at sizes a CPU
// simulator trains in seconds.

#ifndef UCP_SRC_MODEL_CONFIG_H_
#define UCP_SRC_MODEL_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/common/json.h"
#include "src/common/status.h"

namespace ucp {

enum class ArchKind : uint8_t {
  kGpt = 0,    // LayerNorm + GELU MLP, learned position embeddings, fused QKV with biases
  kLlama = 1,  // RMSNorm + SwiGLU MLP, no position embeddings, no biases, optional GQA
  kBloom = 2,  // GPT-style blocks with input/output embedding tying
  kMoe = 3,    // LLaMA-style blocks with a top-k gated mixture-of-experts FFN
};

const char* ArchKindName(ArchKind arch);

struct ModelConfig {
  ArchKind arch = ArchKind::kGpt;
  int vocab_size = 256;
  int max_seq_len = 32;
  int num_layers = 4;
  int hidden = 64;
  int num_heads = 4;
  int num_kv_heads = 4;  // < num_heads enables GQA
  int ffn_hidden = 256;  // intermediate MLP width
  int num_experts = 1;   // > 1 enables MoE (arch kMoe)
  int moe_top_k = 2;
  // MoE sharding mode under TP: false = partition every expert's ffn dim (Megatron-style
  // TP inside experts, the paper's Fig. 5 example); true = partition the *expert* dim —
  // each TP rank owns whole experts (expert parallelism, an "emerging parallelism
  // strategy" in the paper's future-work sense). Both are expressible as fragment
  // sub-patterns, differing only in the partition dim.
  bool moe_expert_sharding = false;
  bool tied_embeddings = false;
  uint64_t init_seed = 1234;

  int head_dim() const { return hidden / num_heads; }
  bool has_position_embeddings() const {
    return arch == ArchKind::kGpt || arch == ArchKind::kBloom;
  }
  bool has_biases() const { return arch == ArchKind::kGpt || arch == ArchKind::kBloom; }
  bool uses_rmsnorm() const { return arch == ArchKind::kLlama || arch == ArchKind::kMoe; }
  bool uses_swiglu() const { return arch == ArchKind::kLlama || arch == ArchKind::kMoe; }
  bool is_moe() const { return num_experts > 1; }

  // Aborts on inconsistent settings (heads not dividing hidden, etc.).
  void Validate() const;

  Json ToJson() const;
  static Result<ModelConfig> FromJson(const Json& json);
  bool operator==(const ModelConfig& other) const = default;
};

// Scaled-down analogues of the paper's evaluation models (Table 4). The comments give the
// paper's original dimensions.
ModelConfig Gpt3Scaled();    // GPT-3 medium: L=24 H=1024 A=16 -> L=4 H=64 A=4
ModelConfig LlamaScaled();   // LLaMA 7B: L=30(32) H=4096 A=32 -> L=4 H=64 A=4, GQA kv=2
ModelConfig BloomScaled();   // BLOOM 176B: L=70 H=14336 A=112, tied -> L=8 H=64 A=4, tied
ModelConfig MoeScaled();     // Mixtral-like MoE: L=32 H=4096 E=8 -> L=4 H=64 E=4 top-2

// True when two configs describe the same logical model — identical up to sharding-mode
// preferences (moe_expert_sharding), which change how parameters are partitioned but not
// their logical values. UCP checkpoints are interchangeable between such configs.
bool SameLogicalModel(const ModelConfig& a, const ModelConfig& b);

// Even smaller configs for unit tests.
ModelConfig TinyGpt();
ModelConfig TinyLlama();
ModelConfig TinyMoe();

}  // namespace ucp

#endif  // UCP_SRC_MODEL_CONFIG_H_
