#include "src/data/dataset.h"

namespace ucp {

SyntheticTextDataset::SyntheticTextDataset(int vocab_size, int seq_len, uint64_t seed)
    : vocab_size_(vocab_size), seq_len_(seq_len), rng_(seed, /*stream=*/0x9a7a) {
  UCP_CHECK_GT(vocab_size, 1);
  UCP_CHECK_GT(seq_len, 0);
  // A fixed random successor table: token t is followed by preferred_next_[t] with high
  // probability. This gives the dataset enough structure that cross-entropy falls well below
  // log(vocab) once the model learns the table.
  CounterRng table_rng(seed, /*stream=*/0x7ab1e);
  preferred_next_.resize(static_cast<size_t>(vocab_size));
  for (int t = 0; t < vocab_size; ++t) {
    preferred_next_[static_cast<size_t>(t)] =
        static_cast<int32_t>(table_rng.BoundedAt(static_cast<uint64_t>(t),
                                                 static_cast<uint64_t>(vocab_size)));
  }
}

int SyntheticTextDataset::NextToken(uint64_t sample_id, int position, int prev_token) const {
  uint64_t counter = sample_id * static_cast<uint64_t>(seq_len_ + 1) +
                     static_cast<uint64_t>(position);
  // 75% follow the Markov table, 25% uniform noise.
  if (rng_.DoubleAt(counter * 2) < 0.75) {
    return preferred_next_[static_cast<size_t>(prev_token)];
  }
  return static_cast<int>(rng_.BoundedAt(counter * 2 + 1, static_cast<uint64_t>(vocab_size_)));
}

std::vector<int32_t> SyntheticTextDataset::Sample(uint64_t sample_id) const {
  std::vector<int32_t> tokens(static_cast<size_t>(seq_len_ + 1));
  tokens[0] = static_cast<int32_t>(
      rng_.BoundedAt(sample_id * static_cast<uint64_t>(seq_len_ + 1),
                     static_cast<uint64_t>(vocab_size_)));
  for (int i = 1; i <= seq_len_; ++i) {
    tokens[static_cast<size_t>(i)] =
        static_cast<int32_t>(NextToken(sample_id, i, tokens[static_cast<size_t>(i - 1)]));
  }
  return tokens;
}

std::vector<uint64_t> SyntheticTextDataset::BatchSampleIds(uint64_t iteration,
                                                           int global_batch) {
  std::vector<uint64_t> ids(static_cast<size_t>(global_batch));
  for (int i = 0; i < global_batch; ++i) {
    ids[static_cast<size_t>(i)] = iteration * static_cast<uint64_t>(global_batch) +
                                  static_cast<uint64_t>(i);
  }
  return ids;
}

Batch MakeBatch(const SyntheticTextDataset& dataset, uint64_t iteration, int global_batch,
                int first, int count) {
  UCP_CHECK_GE(first, 0);
  UCP_CHECK_LE(first + count, global_batch);
  std::vector<uint64_t> ids = SyntheticTextDataset::BatchSampleIds(iteration, global_batch);
  Batch batch;
  batch.tokens = Tensor::Zeros({count, dataset.seq_len()});
  batch.labels = Tensor::Zeros({count, dataset.seq_len()});
  for (int b = 0; b < count; ++b) {
    std::vector<int32_t> sample = dataset.Sample(ids[static_cast<size_t>(first + b)]);
    for (int t = 0; t < dataset.seq_len(); ++t) {
      batch.tokens.at(static_cast<int64_t>(b) * dataset.seq_len() + t) =
          static_cast<float>(sample[static_cast<size_t>(t)]);
      batch.labels.at(static_cast<int64_t>(b) * dataset.seq_len() + t) =
          static_cast<float>(sample[static_cast<size_t>(t + 1)]);
    }
  }
  return batch;
}

}  // namespace ucp
