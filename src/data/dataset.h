// Synthetic training data (the Pile substitute — see DESIGN.md).
//
// The token stream is a pure function of (seed, sample id): sample i is a length-`seq_len`
// sequence drawn from an order-1 Markov chain whose transition structure is derived from the
// seed. Purity is the load-bearing property: any data-parallel rank under any parallel
// configuration can materialize exactly the samples it owns, so the global batch at
// iteration k is bit-identical no matter how training is sharded or resumed.

#ifndef UCP_SRC_DATA_DATASET_H_
#define UCP_SRC_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace ucp {

class SyntheticTextDataset {
 public:
  SyntheticTextDataset(int vocab_size, int seq_len, uint64_t seed);

  int vocab_size() const { return vocab_size_; }
  int seq_len() const { return seq_len_; }

  // Tokens of global sample `sample_id`: seq_len + 1 tokens (inputs are [0, seq_len), labels
  // are [1, seq_len]).
  std::vector<int32_t> Sample(uint64_t sample_id) const;

  // Global sample ids of iteration `iteration` with the given global batch size: simply
  // iteration * batch + [0, batch). Deterministic single-epoch-style streaming.
  static std::vector<uint64_t> BatchSampleIds(uint64_t iteration, int global_batch);

 private:
  int NextToken(uint64_t sample_id, int position, int prev_token) const;

  int vocab_size_;
  int seq_len_;
  CounterRng rng_;
  // Per-token preferred successors, making sequences learnable (loss decreases measurably
  // within a few hundred iterations on small models).
  std::vector<int32_t> preferred_next_;
};

// A batch ready for the model: tokens[b][t] and labels[b][t] as int32 stored in fp32
// tensors of shape [batch, seq_len] (the tensor library is fp32-only; values are exact
// integers well inside the fp32 exact range).
struct Batch {
  Tensor tokens;
  Tensor labels;
  int64_t batch() const { return tokens.dim(0); }
  int64_t seq_len() const { return tokens.dim(1); }
};

// Materializes samples [first, first + count) of the given iteration's global batch.
Batch MakeBatch(const SyntheticTextDataset& dataset, uint64_t iteration, int global_batch,
                int first, int count);

}  // namespace ucp

#endif  // UCP_SRC_DATA_DATASET_H_
