// Large-world stress: drives 128–512 simulated ranks through the collective layer, the
// shared atom-slice cache and the per-thread trace rings, measuring that per-rank resource
// footprint stays flat as the world grows.
//
// Each round builds a fresh World (fresh rank threads), so repeated rounds exercise the
// thread-exit path of every per-thread registry — most importantly the trace-ring registry,
// which must retain a bounded number of orphaned rings (flight-recorder history) instead of
// one ring per exited thread forever (SetTraceOrphanRingLimit). The report exposes the
// registry size, the ring drop rate and the slice-cache footprint; the soak tests assert
// the per-rank values at 128+ ranks stay within 2x of a 32-rank baseline.

#ifndef UCP_SRC_SOAK_STRESS_H_
#define UCP_SRC_SOAK_STRESS_H_

#include <cstdint>

namespace ucp {

struct StressOptions {
  int ranks = 128;
  int rounds = 2;                // world builds; threads are created and joined per round
  int collectives_per_round = 4; // all-reduce + barrier sweeps per rank per round
  int cache_slices = 8;          // distinct slice-cache keys loaded by every rank per round
  int tensor_elems = 256;        // payload size per collective / cached slice
};

struct StressReport {
  int ranks = 0;
  int rounds = 0;
  double seconds = 0.0;  // total wall time
  // Average wall seconds per (collective sweep x round), i.e. the per-rank latency of one
  // synchronized step at this world size.
  double per_round_collective_seconds = 0.0;

  // Trace-ring registry after all rounds: live threads + retained orphans. Flat across
  // world sizes (bounded by the orphan limit), not O(rounds * ranks).
  uint64_t trace_rings = 0;
  uint64_t trace_events = 0;
  uint64_t trace_dropped = 0;    // events lost to ring wraparound
  double trace_drop_rate = 0.0;  // dropped / (events + dropped)

  // Global slice cache after all rounds (all loaded slices released).
  uint64_t cache_entries = 0;
  uint64_t cache_live = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  int64_t rss_kb = 0;       // VmRSS at the end; 0 when /proc is unavailable
  int64_t peak_rss_kb = 0;  // VmHWM (monotone per process)
};

StressReport RunLargeWorldStress(const StressOptions& options);

// /proc/self/status readings in kB; 0 when unavailable (non-Linux).
int64_t CurrentRssKb();
int64_t PeakRssKb();

}  // namespace ucp

#endif  // UCP_SRC_SOAK_STRESS_H_
