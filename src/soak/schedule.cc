#include "src/soak/schedule.h"

#include <algorithm>
#include <set>

#include "src/common/rng.h"

namespace ucp {
namespace {

// Distinct CounterRng stream for schedule generation, so soak draws never collide with the
// trainer's data/init streams even under the same seed.
constexpr uint64_t kScheduleStream = 0x534f414bULL;  // "SOAK"

const char* FaultKindName(FaultPlan::Kind kind) {
  switch (kind) {
    case FaultPlan::Kind::kFailStop: return "fail_stop";
    case FaultPlan::Kind::kTornWrite: return "torn_write";
    case FaultPlan::Kind::kBitRot: return "bit_rot";
    case FaultPlan::Kind::kTransient: return "transient";
  }
  return "?";
}

Result<FaultPlan::Kind> FaultKindFromName(const std::string& name) {
  if (name == "fail_stop") return FaultPlan::Kind::kFailStop;
  if (name == "torn_write") return FaultPlan::Kind::kTornWrite;
  if (name == "bit_rot") return FaultPlan::Kind::kBitRot;
  if (name == "transient") return FaultPlan::Kind::kTransient;
  return InvalidArgumentError("unknown fault kind: " + name);
}

const char* FsOpJsonName(FsOp op) {
  switch (op) {
    case FsOp::kWrite: return "write";
    case FsOp::kFsync: return "fsync";
    case FsOp::kRename: return "rename";
    case FsOp::kRead: return "read";
  }
  return "?";
}

Result<FsOp> FsOpFromName(const std::string& name) {
  if (name == "write") return FsOp::kWrite;
  if (name == "fsync") return FsOp::kFsync;
  if (name == "rename") return FsOp::kRename;
  if (name == "read") return FsOp::kRead;
  return InvalidArgumentError("unknown fs op: " + name);
}

// Path substrings a generated fault may target. Deliberately excludes the `latest` pointer
// and the commit rename of the tag directory itself: those legitimately break invariants
// the driver asserts (a torn `latest` is indistinguishable from cross-namespace
// contamination), while shard/metadata damage exercises exactly the fallback paths the
// soak is after.
const char* const kFaultTargets[] = {"_model_states", "_optim_states", "checkpoint_meta"};

}  // namespace

Json SoakOptions::ToJson() const {
  JsonObject o;
  o["seed"] = seed;
  o["num_blocks"] = num_blocks;
  o["max_train_iters"] = max_train_iters;
  o["max_kills"] = max_kills;
  o["strategy"] = strategy.ToJson();
  o["global_batch"] = global_batch;
  o["checkpoint_every"] = checkpoint_every;
  o["watchdog_ms"] = watchdog_ms;
  o["job"] = job;
  o["incremental"] = incremental;
  o["through_daemon"] = through_daemon;
  return Json(std::move(o));
}

Result<SoakOptions> SoakOptions::FromJson(const Json& json) {
  if (!json.is_object()) return InvalidArgumentError("soak options: not an object");
  SoakOptions options;
  UCP_ASSIGN_OR_RETURN(int64_t seed, json.GetInt("seed"));
  options.seed = static_cast<uint64_t>(seed);
  UCP_ASSIGN_OR_RETURN(int64_t blocks, json.GetInt("num_blocks"));
  options.num_blocks = static_cast<int>(blocks);
  UCP_ASSIGN_OR_RETURN(int64_t iters, json.GetInt("max_train_iters"));
  options.max_train_iters = static_cast<int>(iters);
  UCP_ASSIGN_OR_RETURN(int64_t kills, json.GetInt("max_kills"));
  options.max_kills = static_cast<int>(kills);
  if (!json.Has("strategy")) return InvalidArgumentError("soak options: missing strategy");
  UCP_ASSIGN_OR_RETURN(options.strategy,
                       ParallelConfig::FromJson(json.AsObject().at("strategy")));
  UCP_ASSIGN_OR_RETURN(int64_t batch, json.GetInt("global_batch"));
  options.global_batch = static_cast<int>(batch);
  UCP_ASSIGN_OR_RETURN(int64_t every, json.GetInt("checkpoint_every"));
  options.checkpoint_every = static_cast<int>(every);
  UCP_ASSIGN_OR_RETURN(int64_t watchdog, json.GetInt("watchdog_ms"));
  options.watchdog_ms = static_cast<int>(watchdog);
  UCP_ASSIGN_OR_RETURN(options.job, json.GetString("job"));
  // Absent in logs recorded before incremental saves existed; replay as full saves.
  if (json.Has("incremental")) {
    UCP_ASSIGN_OR_RETURN(options.incremental, json.GetBool("incremental"));
  }
  // Absent in logs recorded before the daemon-chaos events existed; replay direct-FS.
  if (json.Has("through_daemon")) {
    UCP_ASSIGN_OR_RETURN(options.through_daemon, json.GetBool("through_daemon"));
  }
  return options;
}

const char* SoakEventKindName(SoakEventKind kind) {
  switch (kind) {
    case SoakEventKind::kTrain: return "train";
    case SoakEventKind::kRankKill: return "rank_kill";
    case SoakEventKind::kFsFault: return "fs_fault";
    case SoakEventKind::kGc: return "gc";
    case SoakEventKind::kBackpressure: return "backpressure";
    case SoakEventKind::kFsck: return "fsck";
    case SoakEventKind::kConnDrop: return "conn_drop";
    case SoakEventKind::kDaemonRestart: return "daemon_restart";
  }
  return "?";
}

const std::vector<FaultSite>& SoakKillSites() {
  static const std::vector<FaultSite>* sites = new std::vector<FaultSite>{
      FaultSite::kIterationStart, FaultSite::kAllReduce, FaultSite::kBarrier,
      FaultSite::kBeforeSave,     FaultSite::kAsyncFlush,
  };
  return *sites;
}

FaultPlan SoakEvent::ToFaultPlan() const {
  FaultPlan plan;
  plan.kind = static_cast<FaultPlan::Kind>(fs_kind);
  plan.op = static_cast<FsOp>(fs_op);
  plan.nth = fs_nth;
  plan.path_substr = fs_path_substr;
  plan.seed = fs_seed;
  plan.fail_count = fs_fail_count;
  return plan;
}

Json SoakEvent::ToJson() const {
  JsonObject o;
  o["kind"] = SoakEventKindName(kind);
  switch (kind) {
    case SoakEventKind::kTrain:
      o["iterations"] = iterations;
      break;
    case SoakEventKind::kRankKill:
      o["rank_raw"] = kill_rank_raw;
      o["iter_raw"] = kill_iter_raw;
      o["site"] = kill_site;
      break;
    case SoakEventKind::kFsFault:
      o["fault"] = FaultKindName(static_cast<FaultPlan::Kind>(fs_kind));
      o["op"] = FsOpJsonName(static_cast<FsOp>(fs_op));
      o["nth"] = fs_nth;
      o["substr"] = fs_path_substr;
      o["fault_seed"] = fs_seed;
      o["fail_count"] = fs_fail_count;
      break;
    case SoakEventKind::kGc:
      o["keep_last"] = keep_last;
      break;
    case SoakEventKind::kBackpressure:
      o["max_in_flight"] = max_in_flight;
      break;
    case SoakEventKind::kConnDrop:
      o["op_raw"] = conn_op_raw;
      o["kind_raw"] = conn_kind_raw;
      o["nth_raw"] = conn_nth_raw;
      break;
    case SoakEventKind::kDaemonRestart:
    case SoakEventKind::kFsck:
      break;
  }
  return Json(std::move(o));
}

Result<SoakEvent> SoakEvent::FromJson(const Json& json) {
  if (!json.is_object()) return InvalidArgumentError("soak event: not an object");
  UCP_ASSIGN_OR_RETURN(std::string kind, json.GetString("kind"));
  SoakEvent event;
  if (kind == "train") {
    event.kind = SoakEventKind::kTrain;
    UCP_ASSIGN_OR_RETURN(int64_t iters, json.GetInt("iterations"));
    event.iterations = static_cast<int>(iters);
    if (event.iterations < 1) return InvalidArgumentError("train event: iterations < 1");
  } else if (kind == "rank_kill") {
    event.kind = SoakEventKind::kRankKill;
    UCP_ASSIGN_OR_RETURN(int64_t rank_raw, json.GetInt("rank_raw"));
    event.kill_rank_raw = static_cast<uint64_t>(rank_raw);
    UCP_ASSIGN_OR_RETURN(int64_t iter_raw, json.GetInt("iter_raw"));
    event.kill_iter_raw = static_cast<uint64_t>(iter_raw);
    UCP_ASSIGN_OR_RETURN(int64_t site, json.GetInt("site"));
    event.kill_site = static_cast<int>(site);
  } else if (kind == "fs_fault") {
    event.kind = SoakEventKind::kFsFault;
    UCP_ASSIGN_OR_RETURN(std::string fault, json.GetString("fault"));
    UCP_ASSIGN_OR_RETURN(FaultPlan::Kind fault_kind, FaultKindFromName(fault));
    event.fs_kind = static_cast<int>(fault_kind);
    UCP_ASSIGN_OR_RETURN(std::string op, json.GetString("op"));
    UCP_ASSIGN_OR_RETURN(FsOp fs_op, FsOpFromName(op));
    event.fs_op = static_cast<int>(fs_op);
    UCP_ASSIGN_OR_RETURN(int64_t nth, json.GetInt("nth"));
    event.fs_nth = static_cast<int>(nth);
    UCP_ASSIGN_OR_RETURN(event.fs_path_substr, json.GetString("substr"));
    UCP_ASSIGN_OR_RETURN(int64_t fault_seed, json.GetInt("fault_seed"));
    event.fs_seed = static_cast<uint64_t>(fault_seed);
    UCP_ASSIGN_OR_RETURN(int64_t fail_count, json.GetInt("fail_count"));
    event.fs_fail_count = static_cast<int>(fail_count);
  } else if (kind == "gc") {
    event.kind = SoakEventKind::kGc;
    UCP_ASSIGN_OR_RETURN(int64_t keep, json.GetInt("keep_last"));
    event.keep_last = static_cast<int>(keep);
  } else if (kind == "backpressure") {
    event.kind = SoakEventKind::kBackpressure;
    UCP_ASSIGN_OR_RETURN(int64_t in_flight, json.GetInt("max_in_flight"));
    event.max_in_flight = static_cast<int>(in_flight);
  } else if (kind == "fsck") {
    event.kind = SoakEventKind::kFsck;
  } else if (kind == "conn_drop") {
    event.kind = SoakEventKind::kConnDrop;
    UCP_ASSIGN_OR_RETURN(int64_t op_raw, json.GetInt("op_raw"));
    event.conn_op_raw = static_cast<uint64_t>(op_raw);
    UCP_ASSIGN_OR_RETURN(int64_t kind_raw, json.GetInt("kind_raw"));
    event.conn_kind_raw = static_cast<uint64_t>(kind_raw);
    UCP_ASSIGN_OR_RETURN(int64_t nth_raw, json.GetInt("nth_raw"));
    event.conn_nth_raw = static_cast<uint64_t>(nth_raw);
  } else if (kind == "daemon_restart") {
    event.kind = SoakEventKind::kDaemonRestart;
  } else {
    return InvalidArgumentError("unknown soak event kind: " + kind);
  }
  return event;
}

std::vector<SoakEvent> GenerateSoakSchedule(const SoakOptions& options) {
  const CounterRng rng(options.seed, kScheduleStream);
  uint64_t counter = 0;
  auto bounded = [&](uint64_t n) { return rng.BoundedAt(counter++, n); };
  auto draw64 = [&] { return rng.U64At(counter++); };

  const int blocks = std::max(3, options.num_blocks);
  // Unconditional placements guarantee every schedule composes a rank kill, a filesystem
  // fault and a GC (>= 3 distinct injector types) no matter how the coin flips land.
  const int kill_block = static_cast<int>(bounded(static_cast<uint64_t>(blocks)));
  const int fs_block = static_cast<int>(bounded(static_cast<uint64_t>(blocks)));
  const int gc_block = static_cast<int>(bounded(static_cast<uint64_t>(blocks)));
  // Daemon-chaos draws happen only under through_daemon, so direct-FS schedules keep the
  // exact counter layout (and therefore byte-identical logs) they had before these events
  // existed. Both wire injectors get one unconditional placement each, extending the
  // coverage guarantee to >= 5 distinct injector types.
  int conn_block = -1;
  int restart_block = -1;
  if (options.through_daemon) {
    conn_block = static_cast<int>(bounded(static_cast<uint64_t>(blocks)));
    restart_block = static_cast<int>(bounded(static_cast<uint64_t>(blocks)));
  }

  auto make_fs_fault = [&] {
    SoakEvent event;
    event.kind = SoakEventKind::kFsFault;
    static const FaultPlan::Kind kKinds[] = {FaultPlan::Kind::kTornWrite,
                                             FaultPlan::Kind::kBitRot,
                                             FaultPlan::Kind::kFailStop,
                                             FaultPlan::Kind::kTransient};
    const FaultPlan::Kind kind = kKinds[bounded(4)];
    event.fs_kind = static_cast<int>(kind);
    if (kind == FaultPlan::Kind::kTornWrite || kind == FaultPlan::Kind::kBitRot) {
      event.fs_op = static_cast<int>(FsOp::kWrite);  // corruption is a write phenomenon
    } else {
      static const FsOp kOps[] = {FsOp::kWrite, FsOp::kFsync, FsOp::kRename, FsOp::kRead};
      event.fs_op = static_cast<int>(kOps[bounded(4)]);
    }
    event.fs_path_substr = kFaultTargets[bounded(3)];
    event.fs_nth = 1 + static_cast<int>(bounded(4));
    event.fs_seed = draw64();
    event.fs_fail_count = 1 + static_cast<int>(bounded(2));
    return event;
  };

  int kills = 0;
  std::vector<SoakEvent> events;
  for (int b = 0; b < blocks; ++b) {
    if (bounded(100) < 25) {
      SoakEvent event;
      event.kind = SoakEventKind::kBackpressure;
      event.max_in_flight = 1 + static_cast<int>(bounded(2));
      events.push_back(event);
    }
    const bool coin_fs = bounded(100) < 35;  // drawn unconditionally: stable counter layout
    if (b == fs_block || coin_fs) {
      events.push_back(make_fs_fault());
    }
    if (options.through_daemon) {
      const bool coin_conn = bounded(100) < 35;
      if (b == conn_block || coin_conn) {
        SoakEvent event;
        event.kind = SoakEventKind::kConnDrop;
        event.conn_op_raw = draw64();
        event.conn_kind_raw = draw64();
        event.conn_nth_raw = draw64();
        events.push_back(event);
      }
      const bool coin_restart = bounded(100) < 20;
      if (b == restart_block || coin_restart) {
        SoakEvent event;
        event.kind = SoakEventKind::kDaemonRestart;
        events.push_back(event);
      }
    }
    const bool coin_kill = bounded(100) < 20;
    if ((b == kill_block || coin_kill) && kills < options.max_kills) {
      SoakEvent event;
      event.kind = SoakEventKind::kRankKill;
      event.kill_rank_raw = draw64();
      event.kill_iter_raw = draw64();
      event.kill_site = static_cast<int>(bounded(SoakKillSites().size()));
      events.push_back(event);
      ++kills;
    }
    SoakEvent train;
    train.kind = SoakEventKind::kTrain;
    train.iterations =
        2 + static_cast<int>(bounded(static_cast<uint64_t>(std::max(1, options.max_train_iters - 1))));
    events.push_back(train);
    const bool coin_gc = bounded(100) < 30;
    if (b == gc_block || coin_gc) {
      SoakEvent gc;
      gc.kind = SoakEventKind::kGc;
      gc.keep_last = 1 + static_cast<int>(bounded(3));
      events.push_back(gc);
    }
    if (bounded(100) < 20) {
      SoakEvent fsck;
      fsck.kind = SoakEventKind::kFsck;
      events.push_back(fsck);
    }
  }
  return events;
}

std::vector<std::string> ScheduleInjectorKinds(const std::vector<SoakEvent>& events) {
  std::set<std::string> kinds;
  for (const SoakEvent& event : events) {
    switch (event.kind) {
      case SoakEventKind::kRankKill:
        kinds.insert("rank_kill");
        break;
      case SoakEventKind::kFsFault:
        kinds.insert(std::string("fs_fault:") +
                     FaultKindName(static_cast<FaultPlan::Kind>(event.fs_kind)));
        break;
      case SoakEventKind::kGc:
        kinds.insert("gc");
        break;
      case SoakEventKind::kBackpressure:
        kinds.insert("backpressure");
        break;
      case SoakEventKind::kConnDrop:
        kinds.insert("conn_drop");
        break;
      case SoakEventKind::kDaemonRestart:
        kinds.insert("daemon_restart");
        break;
      case SoakEventKind::kTrain:
      case SoakEventKind::kFsck:
        break;
    }
  }
  return std::vector<std::string>(kinds.begin(), kinds.end());
}

}  // namespace ucp
