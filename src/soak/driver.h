// The randomized-schedule soak driver.
//
// RunSoak composes the repo's fault injectors — rank kills (src/comm/rank_fault.h), torn
// writes / bit rot / transient I/O (src/common/fault_fs.h), retention GC and async-flush
// backpressure — into a long interleaved schedule against supervised training segments
// (Supervisor::Train), checking the store invariants of src/soak/invariants.h after every
// event.
//
// Determinism contract: the entire run is a pure function of the serialized SoakOptions
// (seed, shape, strategy, namespace). The JSONL log therefore contains no wall-clock times
// and no absolute paths — only event specs, training/loss observations, invariant
// observations and violations — which is what lets `ucp_tool soak-replay <failure.jsonl>`
// re-execute a failure log in a fresh directory and produce a byte-identical log. Two
// driver choices exist solely for this contract: the async engine runs a single flusher
// thread (so the nth-matching-operation counter of a filesystem fault always lands on the
// same operation), and backpressure stays in kBlock mode (kDropOldest makes the committed
// set timing-dependent).

#ifndef UCP_SRC_SOAK_DRIVER_H_
#define UCP_SRC_SOAK_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/soak/schedule.h"

namespace ucp {

struct SoakRunReport {
  bool ok = false;  // the driver executed the whole schedule (violations may still exist)
  Status status;    // why the run aborted, when !ok

  int events_run = 0;
  int64_t iterations_trained = 0;
  int invariant_checks = 0;
  int fs_faults_fired = 0;
  int kills_fired = 0;
  int recoveries = 0;
  // through_daemon runs only. "Armed" rather than "fired" for conn drops: whether the nth
  // matching syscall is reached is timing-dependent, and the log must stay deterministic.
  int conn_drops_armed = 0;
  int daemon_restarts = 0;
  std::vector<std::string> violations;

  // The JSONL failure log: header line, one line per event, summary line. Also written to
  // options.log_path when set.
  std::vector<std::string> log_lines;

  std::string LogText() const;  // log_lines joined with '\n', trailing newline
};

// Executes an explicit event list (replay path, hand-built regression schedules).
SoakRunReport RunSoakSchedule(const SoakOptions& options, const std::vector<SoakEvent>& events);

// Generates the schedule from options.seed and executes it.
SoakRunReport RunSoak(const SoakOptions& options);

// A parsed failure log: the options that identify the run plus the exact events executed
// (the event *prefix* when the original run aborted early).
struct SoakLog {
  SoakOptions options;
  std::vector<SoakEvent> events;
};
Result<SoakLog> ParseSoakLog(const std::string& text);

// Re-executes a failure log against a fresh directory. The returned report's LogText() is
// byte-identical to the input for a deterministic driver — the property soak-replay and the
// soak tests assert.
Result<SoakRunReport> ReplaySoakLog(const std::string& log_text, const std::string& dir);

}  // namespace ucp

#endif  // UCP_SRC_SOAK_DRIVER_H_
