// Multi-job store soak: N concurrent training jobs sharing one checkpoint directory, each
// under its own tag namespace (checkpoint.h job namespaces), with per-job retention and
// path-scoped faults active — proving store isolation by I/O accounting.
//
// Every job runs its own TrainingRun + AsyncCheckpointEngine on its own threads, saving
// `<job>.global_stepN` tags and a `latest.<job>` pointer into the shared directory while
// the siblings do the same. Isolation is not assumed but measured: a ScopedIoAudit
// (fault_fs.h) buckets every hooked filesystem operation by the job whose files it touches,
// and each job's threads declare their identity, so any cross-job access — a GC deleting a
// sibling's tag, a debris sweep hitting a sibling's in-flight staging, a resume reading a
// foreign shard — shows up as an audit violation.
//
// Faults stay path-scoped (substring = the victim job's tag prefix): the rank-kill injector
// is process-global and would fire nondeterministically across concurrently-running jobs.

#ifndef UCP_SRC_SOAK_MULTI_JOB_H_
#define UCP_SRC_SOAK_MULTI_JOB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/fault_fs.h"
#include "src/common/status.h"
#include "src/parallel/topology.h"

namespace ucp {

struct MultiJobOptions {
  std::string dir;  // the shared store (required)
  int jobs = 4;
  int phases = 2;               // train -> drain -> resume cycles per job
  int iterations_per_phase = 4;
  int checkpoint_every = 1;
  int keep_last = 2;            // per-job engine GC after every commit
  ParallelConfig strategy{2, 1, 1, 1, 0, 1};  // 2 ranks per job
  int global_batch = 8;
  // Arm one torn-write fault scoped to job 0's tag prefix before the jobs start: job 0 must
  // fall back / re-commit past it, the siblings must not notice.
  bool inject_fault = true;
  // Run the whole soak under a ScopedIoAudit. Disable when the caller composes its own
  // audit (at most one may be active per process).
  bool audit = true;
  // Route every job's save path through one in-process StoreServer on the shared dir: the
  // engines write via RemoteStore over a unix socket while resume/validation still read the
  // directory the daemon serves. The path-scoped fault then fires inside the daemon's
  // session threads (server-side injection); the audit keeps working because server threads
  // carry no job identity (ops are bucketed by path, and only a *mismatched* non-empty
  // thread context counts as a violation).
  bool through_daemon = false;
};

struct MultiJobReport {
  struct JobResult {
    std::string job;
    bool ok = false;           // every phase trained, drained and resumed
    Status status;             // first failure, when !ok
    std::string latest_tag;    // newest resumable tag at the end
    int64_t latest_iteration = -1;
    bool deep_valid = false;   // that tag deep-verifies bit-exactly (chunked CRCs)
    bool reloaded = false;     // a fresh run resumed from it end-to-end
    int committed_tags = 0;    // tags left after retention
  };
  std::vector<JobResult> jobs;
  IoAuditReport audit;              // empty when options.audit was false
  bool fault_fired = false;
  std::vector<std::string> violations;  // isolation/validity failures, human-readable

  bool ok() const { return violations.empty(); }
};

MultiJobReport RunMultiJobSoak(const MultiJobOptions& options);

}  // namespace ucp

#endif  // UCP_SRC_SOAK_MULTI_JOB_H_
