#include "src/soak/driver.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <set>

#include "src/ckpt/checkpoint.h"
#include "src/common/fault_fs.h"
#include "src/common/fs.h"
#include "src/model/config.h"
#include "src/runtime/supervisor.h"
#include "src/soak/invariants.h"
#include "src/store/server.h"
#include "src/store/wire.h"
#include "src/ucp/validate.h"

namespace ucp {
namespace {

// Shortest round-trip-exact double formatting; the loss sum is the log's bit-identity
// witness for the training computation itself.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

bool IsCorruptionKind(FaultPlan::Kind kind) {
  return kind == FaultPlan::Kind::kTornWrite || kind == FaultPlan::Kind::kBitRot;
}

// Resolves a kConnDrop event's raw draws into a concrete socket fault. The three errno
// kinds all drop the connection for real (wire.h), so every draw exercises the client's
// reconnect + WRITE_RESUME path; they differ only in which errno the victim observes.
SocketFault ResolveConnFault(const SoakEvent& event) {
  SocketFault fault;
  fault.op = event.conn_op_raw % 2 == 0 ? SocketFault::Op::kSend : SocketFault::Op::kRecv;
  switch (event.conn_kind_raw % 3) {
    case 0: fault.kind = SocketFault::Kind::kEpipe; break;
    case 1: fault.kind = SocketFault::Kind::kEconnreset; break;
    default: fault.kind = SocketFault::Kind::kEtimedout; break;
  }
  fault.nth = static_cast<int>(event.conn_nth_raw % 64);
  return fault;
}

const char* SocketFaultOpName(SocketFault::Op op) {
  return op == SocketFault::Op::kSend ? "send" : "recv";
}

const char* SocketFaultKindName(SocketFault::Kind kind) {
  switch (kind) {
    case SocketFault::Kind::kEpipe: return "epipe";
    case SocketFault::Kind::kEconnreset: return "econnreset";
    case SocketFault::Kind::kEtimedout: return "etimedout";
    default: return "other";
  }
}

}  // namespace

std::string SoakRunReport::LogText() const {
  std::string text;
  for (const std::string& line : log_lines) {
    text += line;
    text += '\n';
  }
  return text;
}

SoakRunReport RunSoakSchedule(const SoakOptions& options,
                              const std::vector<SoakEvent>& events) {
  SoakRunReport report;
  if (options.dir.empty()) {
    report.status = InvalidArgumentError("soak: options.dir is required");
    return report;
  }
  Status made = MakeDirs(options.dir);
  if (!made.ok()) {
    report.status = made;
    return report;
  }

  // through_daemon: every save goes through this in-process ucp_serverd serving the same
  // root over a unix socket. The server object is restartable in place (kDaemonRestart),
  // which is what exercises lease-journal recovery.
  std::unique_ptr<StoreServer> server;
  StoreServerOptions server_options;
  if (options.through_daemon) {
    server_options.root = options.dir;
    server_options.listen = "unix:" + PathJoin(options.dir, ".ucp_soak.sock");
    Result<std::unique_ptr<StoreServer>> started = StoreServer::Start(server_options);
    if (!started.ok()) {
      report.status = started.status();
      return report;
    }
    server = std::move(*started);
  }

  auto emit = [&](const Json& line) { report.log_lines.push_back(line.Dump()); };

  {
    JsonObject header;
    header["type"] = "soak_header";
    header["version"] = 1;
    header["options"] = options.ToJson();
    header["events"] = static_cast<int64_t>(events.size());
    emit(Json(std::move(header)));
  }

  TrainerConfig base_config;
  base_config.model = TinyGpt();
  base_config.strategy = options.strategy;
  base_config.global_batch = options.global_batch;

  ParallelConfig strategy = options.strategy;
  int64_t completed = 0;
  int64_t max_attempted = 0;
  int64_t prev_latest_valid = -1;
  int corruptions_total = 0;
  bool corruption_since_check = false;
  int current_max_in_flight = 1;
  std::optional<SoakEvent> pending_kill;
  std::optional<SoakEvent> pending_fs;
  std::optional<SoakEvent> pending_conn;
  // I8 state: every tag observed committed, minus the ones GC legitimately removed. A tag
  // in this set that later vanishes (or loses its marker) is a lost commit.
  std::set<std::string> must_exist;
  bool any_commit_observed = false;

  for (size_t i = 0; i < events.size(); ++i) {
    const SoakEvent& event = events[i];
    JsonObject line;
    line["type"] = "soak_event";
    line["e"] = static_cast<int64_t>(i);
    line["spec"] = event.ToJson();
    bool expect_no_staging = false;

    switch (event.kind) {
      case SoakEventKind::kRankKill:
        pending_kill = event;
        break;
      case SoakEventKind::kFsFault:
        pending_fs = event;
        break;
      case SoakEventKind::kConnDrop:
        // Armed at the next train segment, like the other injectors. Resolved values are
        // logged here (they are a pure function of the event's raw draws); whether the nth
        // syscall is ever reached is timing-dependent and deliberately *not* logged — the
        // invariants must hold either way, which is the point of the chaos.
        if (server != nullptr) {
          const SocketFault fault = ResolveConnFault(event);
          line["conn_op"] = SocketFaultOpName(fault.op);
          line["conn_kind"] = SocketFaultKindName(fault.kind);
          line["conn_nth"] = fault.nth;
          pending_conn = event;
        }
        break;
      case SoakEventKind::kDaemonRestart:
        // Kill (no drain) and restart the daemon between segments: journal recovery must
        // re-adopt whatever live-leased state the previous incarnation held, and the next
        // segment's engine must dial the fresh incarnation without ceremony.
        if (server != nullptr) {
          server->Shutdown(/*drain=*/false);
          server.reset();
          Result<std::unique_ptr<StoreServer>> restarted = StoreServer::Start(server_options);
          if (!restarted.ok()) {
            report.status = restarted.status();
            return report;
          }
          server = std::move(*restarted);
          ++report.daemon_restarts;
        }
        break;
      case SoakEventKind::kBackpressure:
        current_max_in_flight = std::max(1, event.max_in_flight);
        break;
      case SoakEventKind::kGc: {
        Result<GcReport> gc =
            GcCheckpoints(options.dir, event.keep_last, /*dry_run=*/false, options.job);
        if (gc.ok()) {
          line["gc_removed"] = static_cast<int64_t>(gc->removed.size());
          line["gc_kept"] = static_cast<int64_t>(gc->kept.size());
          for (const std::string& removed : gc->removed) {
            must_exist.erase(removed);  // a GC removal is not a lost commit (I8)
          }
        } else {
          line["gc_error"] = StatusCodeName(gc.status().code());
        }
        break;
      }
      case SoakEventKind::kFsck: {
        FsckOptions fsck_options;
        fsck_options.quarantine = false;
        fsck_options.fast = false;
        fsck_options.num_threads = 0;
        Result<FsckReport> fsck = Fsck(options.dir, fsck_options);
        if (fsck.ok()) {
          int damaged = 0;
          for (const FsckReport::Entry& entry : fsck->entries) {
            damaged += entry.report.ok() ? 0 : 1;
          }
          line["fsck_entries"] = static_cast<int64_t>(fsck->entries.size());
          line["fsck_damaged"] = damaged;
          line["fsck_notes"] = static_cast<int64_t>(fsck->notes.size());
        } else {
          line["fsck_error"] = StatusCodeName(fsck.status().code());
        }
        break;
      }
      case SoakEventKind::kTrain: {
        const int64_t first = completed + 1;
        const int64_t last = completed + event.iterations;
        const bool had_resume_tag = FindLatestValidTag(options.dir, options.job).ok();
        const bool clean_segment = !pending_kill.has_value() && !pending_fs.has_value() &&
                                   !pending_conn.has_value();

        if (pending_kill.has_value()) {
          RankFaultPlan plan;
          plan.rank = static_cast<int>(pending_kill->kill_rank_raw %
                                       static_cast<uint64_t>(strategy.world_size()));
          plan.iteration = first + static_cast<int64_t>(
                                       pending_kill->kill_iter_raw %
                                       static_cast<uint64_t>(event.iterations));
          plan.site = SoakKillSites()[static_cast<size_t>(pending_kill->kill_site) %
                                      SoakKillSites().size()];
          ArmRankFault(plan);
          line["kill_rank"] = plan.rank;
          line["kill_iteration"] = plan.iteration;
          line["kill_site"] = FaultSiteName(plan.site);
        }
        if (pending_fs.has_value()) {
          ArmFault(pending_fs->ToFaultPlan());
        }
        if (pending_conn.has_value() && server != nullptr) {
          ArmSocketFault(ResolveConnFault(*pending_conn));
        }

        TrainerConfig config = base_config;
        config.strategy = strategy;
        SupervisorOptions supervisor_options;
        supervisor_options.ckpt_dir = options.dir;
        supervisor_options.checkpoint_every = options.checkpoint_every;
        supervisor_options.async.job = options.job;
        supervisor_options.async.keep_last = 0;  // retention is a schedule event, not ambient
        // Single flusher + blocking backpressure: see the determinism contract in driver.h.
        supervisor_options.async.flush_threads = 1;
        supervisor_options.async.max_in_flight = current_max_in_flight;
        supervisor_options.async.backpressure = AsyncCheckpointOptions::Backpressure::kBlock;
        supervisor_options.async.incremental = options.incremental;
        supervisor_options.watchdog_timeout = std::chrono::milliseconds(options.watchdog_ms);
        if (server != nullptr) {
          supervisor_options.store_endpoint = server->endpoint();
          // The daemon is in-process and restarts are synchronous schedule events, so a
          // drop only ever needs a quick redial; a short deadline keeps a real wedge from
          // stalling the flusher behind the 2s watchdog for long.
          supervisor_options.store_options.reconnect_deadline = std::chrono::milliseconds(2000);
        }
        Supervisor supervisor(config, supervisor_options);
        SupervisorReport trained = supervisor.Train(first, last);
        strategy = supervisor.current_strategy();

        const bool kill_fired = RankFaultFired();
        const bool fs_fired = FaultFired();
        DisarmRankFaults();
        DisarmFaults();
        if (pending_conn.has_value()) {
          ClearSocketFaults();
          ++report.conn_drops_armed;
          pending_conn.reset();
        }

        if (pending_kill.has_value()) {
          report.kills_fired += kill_fired ? 1 : 0;
          line["kill_fired"] = kill_fired;
          pending_kill.reset();
        }
        if (pending_fs.has_value()) {
          report.fs_faults_fired += fs_fired ? 1 : 0;
          line["fs_fired"] = fs_fired;
          if (fs_fired &&
              IsCorruptionKind(static_cast<FaultPlan::Kind>(pending_fs->fs_kind))) {
            ++corruptions_total;
            corruption_since_check = true;
          }
          pending_fs.reset();
        }

        line["first"] = first;
        line["last"] = last;
        line["ok"] = trained.ok;
        line["recoveries"] = trained.recoveries;
        line["strategy"] = strategy.ToString();
        if (!trained.ok) {
          // Which rank's error surfaces for a failed segment is a thread race once the
          // daemon is in play (the injected fault can land on a rank thread, the flusher,
          // or a server thread, and the peers abort with a different code), so
          // through_daemon logs record only the deterministic fact of the failure.
          line["status"] =
              server != nullptr ? "failed" : StatusCodeName(trained.status.code());
        }
        double loss_sum = 0.0;
        for (double loss : trained.losses) {
          loss_sum += loss;
        }
        line["loss_sum"] = FormatDouble(loss_sum);

        report.recoveries += trained.recoveries;
        max_attempted = std::max(max_attempted, last);
        if (trained.ok) {
          report.iterations_trained += last - completed;
          completed = last;
        }
        expect_no_staging =
            clean_segment && had_resume_tag && trained.ok && trained.recoveries == 0;
        break;
      }
    }

    // Invariants run after every event, always with the injectors disarmed (arm-type events
    // only stage a pending plan; nothing is armed outside the Train call above).
    SoakInvariantContext context;
    context.dir = options.dir;
    context.job = options.job;
    context.max_trained_iteration = max_attempted;
    context.prev_latest_valid = prev_latest_valid;
    context.corruptions_fired_total = corruptions_total;
    context.corruption_since_last_check = corruption_since_check;
    context.expect_no_staging = expect_no_staging;
    context.must_exist_tags.assign(must_exist.begin(), must_exist.end());
    SoakInvariantResult checked = CheckSoakInvariants(context);
    report.invariant_checks += checked.checks_run;
    for (const std::string& tag : checked.committed_tag_names) {
      must_exist.insert(tag);
      any_commit_observed = true;
    }
    if (checked.latest_valid_iteration >= 0 || prev_latest_valid >= 0) {
      prev_latest_valid = checked.latest_valid_iteration;
    }
    corruption_since_check = false;

    line["latest_valid"] = checked.latest_valid_tag;
    line["latest_iter"] = checked.latest_valid_iteration;
    line["committed"] = checked.committed_tags;
    line["damaged"] = checked.damaged_tags;
    line["staging"] = checked.staging_dirs;
    line["chunk_objects"] = checked.chunk_objects;
    line["orphan_chunks"] = checked.orphan_chunks;
    if (!checked.violations.empty()) {
      JsonArray violations;
      for (const std::string& v : checked.violations) {
        violations.emplace_back(v);
        report.violations.push_back(v);
      }
      line["violations"] = Json(std::move(violations));
    }
    emit(Json(std::move(line)));
    ++report.events_run;
  }

  if (server != nullptr) {
    // Liveness half of I8: chaos may delay commits, but a whole schedule that never lands
    // one means the survivability machinery is stalling saves rather than riding them out.
    if (!any_commit_observed) {
      report.violations.push_back("I8: schedule completed without ever committing a tag");
    }
    server->Shutdown(/*drain=*/true);
    server.reset();
  }

  {
    JsonObject summary;
    summary["type"] = "soak_summary";
    summary["events"] = report.events_run;
    summary["iterations"] = report.iterations_trained;
    summary["checks"] = report.invariant_checks;
    summary["kills_fired"] = report.kills_fired;
    summary["fs_faults_fired"] = report.fs_faults_fired;
    summary["recoveries"] = report.recoveries;
    if (options.through_daemon) {
      summary["conn_drops_armed"] = report.conn_drops_armed;
      summary["daemon_restarts"] = report.daemon_restarts;
    }
    summary["violations"] = static_cast<int64_t>(report.violations.size());
    emit(Json(std::move(summary)));
  }

  if (!options.log_path.empty()) {
    Status wrote = WriteFileAtomic(options.log_path, report.LogText());
    if (!wrote.ok()) {
      report.status = wrote;
      return report;
    }
  }
  report.ok = true;
  return report;
}

SoakRunReport RunSoak(const SoakOptions& options) {
  return RunSoakSchedule(options, GenerateSoakSchedule(options));
}

Result<SoakLog> ParseSoakLog(const std::string& text) {
  SoakLog log;
  bool saw_header = false;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) {
      continue;
    }
    UCP_ASSIGN_OR_RETURN(Json parsed, Json::Parse(line));
    UCP_ASSIGN_OR_RETURN(std::string type, parsed.GetString("type"));
    if (type == "soak_header") {
      if (!parsed.Has("options")) {
        return InvalidArgumentError("soak log header: missing options");
      }
      UCP_ASSIGN_OR_RETURN(log.options, SoakOptions::FromJson(parsed.AsObject().at("options")));
      saw_header = true;
    } else if (type == "soak_event") {
      if (!parsed.Has("spec")) {
        return InvalidArgumentError("soak log event: missing spec");
      }
      UCP_ASSIGN_OR_RETURN(SoakEvent event, SoakEvent::FromJson(parsed.AsObject().at("spec")));
      log.events.push_back(std::move(event));
    }
    // soak_summary lines carry no replay state.
  }
  if (!saw_header) {
    return InvalidArgumentError("soak log: no soak_header line");
  }
  return log;
}

Result<SoakRunReport> ReplaySoakLog(const std::string& log_text, const std::string& dir) {
  UCP_ASSIGN_OR_RETURN(SoakLog log, ParseSoakLog(log_text));
  log.options.dir = dir;
  log.options.log_path.clear();
  SoakRunReport report = RunSoakSchedule(log.options, log.events);
  if (!report.ok) {
    return report.status;
  }
  return report;
}

}  // namespace ucp
