#include "src/soak/invariants.h"

#include <algorithm>
#include <optional>
#include <set>

#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/store/chunk_index.h"
#include "src/store/chunk_manifest.h"
#include "src/tensor/chunk_digest.h"
#include "src/ucp/validate.h"

namespace ucp {
namespace {

constexpr const char kStagingSuffix[] = ".staging";
constexpr const char kUcpSuffix[] = ".ucp";

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Mirrors CleanStagingDebris's ownership rule: `<tag>.staging` and `<tag>.ucp.staging`
// belong to the namespace their tag parses into; unparseable staging names can only belong
// to the default namespace.
bool StagingOwnedByJob(const std::string& name, const std::string& job) {
  if (!EndsWith(name, kStagingSuffix)) {
    return false;
  }
  std::string base = name.substr(0, name.size() - (sizeof(kStagingSuffix) - 1));
  if (EndsWith(base, kUcpSuffix)) {
    base.resize(base.size() - (sizeof(kUcpSuffix) - 1));
  }
  std::string tag_job;
  if (ParseTagName(base, &tag_job, nullptr)) {
    return tag_job == job;
  }
  return job.empty();
}

}  // namespace

SoakInvariantResult CheckSoakInvariants(const SoakInvariantContext& context) {
  SoakInvariantResult result;
  auto violation = [&](std::string text) { result.violations.push_back(std::move(text)); };

  // I1 — no committed tag ahead of training progress.
  ++result.checks_run;
  std::vector<std::string> committed;
  Result<std::vector<std::string>> tags = ListCheckpointTags(context.dir, context.job);
  if (!tags.ok()) {
    violation(std::string("I1: listing tags failed: ") + StatusCodeName(tags.status().code()));
  } else {
    for (const std::string& tag : *tags) {
      if (!IsTagComplete(context.dir, tag)) {
        continue;  // an aborted save; readers skip it by design
      }
      committed.push_back(tag);
      int64_t iteration = 0;
      if (ParseTagName(tag, nullptr, &iteration) && iteration > context.max_trained_iteration) {
        violation("I1: committed tag " + tag + " is ahead of training progress (max " +
                  std::to_string(context.max_trained_iteration) + ")");
      }
    }
  }
  result.committed_tags = static_cast<int>(committed.size());
  result.committed_tag_names = committed;

  // I2 — the resumable frontier is monotone absent corruption.
  ++result.checks_run;
  Result<std::string> latest_valid = FindLatestValidTag(context.dir, context.job);
  if (latest_valid.ok()) {
    result.latest_valid_tag = *latest_valid;
    ParseTagName(*latest_valid, nullptr, &result.latest_valid_iteration);
  }
  if (context.prev_latest_valid >= 0 &&
      result.latest_valid_iteration < context.prev_latest_valid &&
      !context.corruption_since_last_check) {
    violation("I2: resumable frontier regressed from iteration " +
              std::to_string(context.prev_latest_valid) + " to " +
              std::to_string(result.latest_valid_iteration) + " with no corruption injected");
  }

  // I3 — injected corruption is the only excuse for damage. Walk committed tags newest to
  // oldest until one deep-verifies; everything damaged before it counts.
  ++result.checks_run;
  bool found_clean = committed.empty();
  for (auto it = committed.rbegin(); it != committed.rend(); ++it) {
    ValidateOptions options;
    options.deep = true;
    options.num_threads = 0;  // inline: keeps the check deterministic and cheap at soak scale
    Result<ValidationReport> report = ValidateNativeCheckpoint(context.dir, *it, options);
    if (report.ok() && report->ok()) {
      found_clean = true;
      break;
    }
    ++result.damaged_tags;
  }
  if (result.damaged_tags > context.corruptions_fired_total) {
    violation("I3: " + std::to_string(result.damaged_tags) +
              " damaged committed tags exceed " +
              std::to_string(context.corruptions_fired_total) + " injected corruptions");
  }
  if (!found_clean && context.corruptions_fired_total == 0) {
    violation("I3: no committed tag deep-verifies and no corruption was injected");
  }

  // I4 — staging debris accounting.
  ++result.checks_run;
  Result<std::vector<std::string>> entries = ListDir(context.dir);
  if (entries.ok()) {
    for (const std::string& name : *entries) {
      if (StagingOwnedByJob(name, context.job)) {
        ++result.staging_dirs;
      }
    }
  }
  if (context.expect_no_staging && result.staging_dirs > 0) {
    violation("I4: " + std::to_string(result.staging_dirs) +
              " stale .staging entries after a clean resumed segment");
  }

  // I5 — the latest pointer stays inside the namespace and never names an uncommitted tag.
  ++result.checks_run;
  Result<std::string> pointer = ReadLatestTag(context.dir, context.job);
  if (pointer.ok()) {
    std::string pointer_job;
    if (!ParseTagName(*pointer, &pointer_job, nullptr) || pointer_job != context.job) {
      violation("I5: latest pointer names a foreign tag: " + *pointer);
    } else if (DirExists(PathJoin(context.dir, *pointer)) &&
               !IsTagComplete(context.dir, *pointer)) {
      violation("I5: latest pointer names uncommitted tag " + *pointer);
    }
  }

  // I6 — no dangling chunk references: every chunk a committed tag's manifest names must
  // exist as an object in the content-addressed index. Corruption faults damage bytes in
  // place — only a GC bug makes a referenced object vanish, so there is no excuse here.
  // Unreadable manifests are I3's domain (deep validation reports them as damage).
  ++result.checks_run;
  for (const std::string& tag : committed) {
    Result<std::optional<ChunkManifest>> manifest =
        ReadTagChunkManifest(PathJoin(context.dir, tag));
    if (!manifest.ok() || !manifest->has_value()) {
      continue;
    }
    int missing = 0;
    std::string first_missing;
    for (const ChunkManifestEntry& entry : (*manifest)->files) {
      for (uint64_t digest : entry.chunks) {
        if (!FileExists(PathJoin(context.dir, ChunkObjectRel(digest)))) {
          if (missing++ == 0) {
            first_missing = DigestToHex(digest);
          }
        }
      }
    }
    if (missing > 0) {
      violation("I6: committed tag " + tag + " references " + std::to_string(missing) +
                " chunk(s) missing from the index (first: " + first_missing + ")");
    }
  }

  // I7 — refcount convergence: count chunk objects no tag manifest (any namespace,
  // committed or staged) references. Orphans are legal mid-run — they are swept at the
  // next GC — and a violation only when the driver just deleted every referer and swept.
  ++result.checks_run;
  std::set<std::string> referenced_hex;
  Result<std::vector<std::string>> all_entries = ListDir(context.dir);
  if (all_entries.ok()) {
    for (const std::string& name : *all_entries) {
      const std::string child = PathJoin(context.dir, name);
      if (name == kChunkDirName || !DirExists(child)) {
        continue;
      }
      Result<std::optional<ChunkManifest>> manifest = ReadTagChunkManifest(child);
      if (!manifest.ok() || !manifest->has_value()) {
        continue;
      }
      for (const ChunkManifestEntry& entry : (*manifest)->files) {
        for (uint64_t digest : entry.chunks) {
          referenced_hex.insert(DigestToHex(digest));
        }
      }
    }
  }
  const std::string chunk_root = PathJoin(context.dir, kChunkDirName);
  if (DirExists(chunk_root)) {
    Result<std::vector<std::string>> fanouts = ListDir(chunk_root);
    if (fanouts.ok()) {
      for (const std::string& fan : *fanouts) {
        Result<std::vector<std::string>> objects = ListDir(PathJoin(chunk_root, fan));
        if (!objects.ok()) {
          continue;
        }
        for (const std::string& object : *objects) {
          ++result.chunk_objects;
          if (!referenced_hex.count(object)) {
            ++result.orphan_chunks;
          }
        }
      }
    }
  }
  if (context.expect_no_orphans && result.orphan_chunks > 0) {
    violation("I7: " + std::to_string(result.orphan_chunks) +
              " orphan chunk object(s) survive a sweep with no live referers");
  }

  // I8 — commit durability under wire chaos: a tag once committed (and not GC'd) never
  // disappears or loses its complete marker. Corruption faults damage bytes inside a tag
  // (I3's domain); only a protocol bug deletes or un-commits one, so there is no excuse.
  ++result.checks_run;
  for (const std::string& tag : context.must_exist_tags) {
    if (!DirExists(PathJoin(context.dir, tag))) {
      violation("I8: committed tag " + tag + " vanished from the store");
    } else if (!IsTagComplete(context.dir, tag)) {
      violation("I8: committed tag " + tag + " lost its complete marker");
    }
  }

  return result;
}

}  // namespace ucp
