// Randomized fault-schedule generation for the soak driver.
//
// A soak schedule is a flat list of events — train segments interleaved with fault-injector
// arms, retention sweeps and integrity scans — generated as a pure function of a single
// 64-bit seed (CounterRng, so the whole schedule is reproducible from the seed alone and
// from nothing else). The driver (src/soak/driver.h) executes events in order, checks the
// global store invariants after each one, and logs every event to a JSONL failure log that
// `ucp_tool soak-replay` can re-execute bit-identically.
//
// Injector events carry *raw* 64-bit draws rather than resolved values: a rank kill, for
// example, stores `kill_rank_raw`, and the driver reduces it mod the world size current at
// execution time. This keeps schedules valid across the elastic shrinks the kills
// themselves cause, while staying deterministic (the resolution depends only on the
// deterministic execution of earlier events).

#ifndef UCP_SRC_SOAK_SCHEDULE_H_
#define UCP_SRC_SOAK_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/comm/rank_fault.h"
#include "src/common/fault_fs.h"
#include "src/common/json.h"
#include "src/parallel/topology.h"

namespace ucp {

// Everything the driver needs to run a schedule. The serialized subset (ToJson — seed,
// shape knobs, strategy, namespace) fully determines the run; `dir` and `log_path` are
// machine-local bindings and are deliberately excluded so failure logs replay bit-exactly
// in a fresh directory.
struct SoakOptions {
  uint64_t seed = 1;
  // Schedule shape: a generated schedule is `num_blocks` train segments of 2..max_train
  // iterations, each optionally preceded by injector arms and followed by GC / fsck.
  int num_blocks = 4;
  int max_train_iters = 4;
  // Rank kills are the expensive injector (each costs a detect + rebuild + resume) and
  // every kill shrinks the world, so schedules cap them.
  int max_kills = 2;
  ParallelConfig strategy{2, 1, 2, 1, 0, 1};  // TP2.DP2 — 4 simulated ranks
  int global_batch = 8;
  int checkpoint_every = 1;  // SaveAsync every iteration: maximum commit-protocol traffic
  int watchdog_ms = 2000;
  std::string job;  // tag namespace the run saves/resumes under ("" = default)
  // Incremental (dirty-chunk) saves: the supervisor's async engine writes chunk manifests
  // and content-addressed chunk objects instead of full shard files, which puts the chunk
  // index and its GC under the fault schedule (invariants I6/I7).
  bool incremental = false;
  // Route every save through an in-process ucp_serverd StoreServer serving `dir` over a
  // unix socket (the shared-filesystem deployment). Unlocks the wire-level chaos events —
  // connection drops (kConnDrop) and daemon kill+restart with journal recovery
  // (kDaemonRestart) — and invariant I8 (no committed tag is ever lost, and the schedule
  // eventually commits a tag).
  bool through_daemon = false;

  // Runtime bindings, not part of the schedule identity.
  std::string dir;       // checkpoint store (required)
  std::string log_path;  // when non-empty, the JSONL log is also written here

  Json ToJson() const;
  static Result<SoakOptions> FromJson(const Json& json);
};

enum class SoakEventKind {
  kTrain = 0,     // drive the supervisor for `iterations` steps (faults armed beforehand fire here)
  kRankKill,      // arm a rank kill for the next train segment
  kFsFault,       // arm a filesystem fault plan for the next train segment
  kGc,            // GcCheckpoints(keep_last) in the run's namespace
  kBackpressure,  // set the async engine's max_in_flight for subsequent segments
  kFsck,          // store-wide integrity scan (no quarantine)
  kConnDrop,      // arm a socket fault (errno + peer drop) for the next train segment
  kDaemonRestart, // kill the in-process daemon (no drain) and restart it on the same root
};

const char* SoakEventKindName(SoakEventKind kind);

// Kill sites a generated schedule may draw from. Restricted to sites every strategy hits
// each iteration (P2P/reduce-scatter/broadcast sites would be dead draws under PP=1 or
// ZeRO-0 strategies).
const std::vector<FaultSite>& SoakKillSites();

struct SoakEvent {
  SoakEventKind kind = SoakEventKind::kTrain;

  // kTrain
  int iterations = 0;

  // kRankKill — raw draws, resolved by the driver against the live world (see file comment).
  uint64_t kill_rank_raw = 0;
  uint64_t kill_iter_raw = 0;
  int kill_site = 0;  // index into SoakKillSites(), reduced mod its size

  // kFsFault — a FaultPlan, stored field-wise so the event serializes without depending on
  // injector internals.
  int fs_kind = 0;  // FaultPlan::Kind
  int fs_op = 0;    // FsOp
  int fs_nth = 1;
  std::string fs_path_substr;
  uint64_t fs_seed = 0;
  int fs_fail_count = 1;

  // kGc
  int keep_last = 3;

  // kBackpressure
  int max_in_flight = 1;

  // kConnDrop — raw draws (resolved at execution, like kRankKill): which side of the
  // exchange fails, which drop errno, and after how many matching syscalls.
  uint64_t conn_op_raw = 0;    // mod 2 -> send / recv
  uint64_t conn_kind_raw = 0;  // mod 3 -> EPIPE / ECONNRESET / ETIMEDOUT
  uint64_t conn_nth_raw = 0;   // mod 64 -> nth matching syscall

  FaultPlan ToFaultPlan() const;  // kFsFault only

  Json ToJson() const;
  static Result<SoakEvent> FromJson(const Json& json);
};

// Generates the schedule for `options.seed`: `num_blocks` train segments with randomized
// injector arms. Every generated schedule composes at least three distinct injector types
// (one rank kill, one filesystem fault and one GC are placed unconditionally), which the
// soak tests rely on for coverage accounting.
std::vector<SoakEvent> GenerateSoakSchedule(const SoakOptions& options);

// Distinct injector kinds ("rank_kill", "fs_fault:torn_write", "gc", ...) present in a
// schedule — the coverage measure behind the ">= 3 injector types" guarantee.
std::vector<std::string> ScheduleInjectorKinds(const std::vector<SoakEvent>& events);

}  // namespace ucp

#endif  // UCP_SRC_SOAK_SCHEDULE_H_
