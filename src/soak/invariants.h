// The global store invariants the soak driver asserts after every schedule event.
//
// Faults are *expected* during a soak — the invariants therefore describe what must hold
// regardless of injected damage, with the injected-corruption count as the only permitted
// excuse for on-disk damage:
//
//   I1  No committed tag in the run's namespace is ahead of training progress (a "phantom"
//       tag would mean cross-namespace contamination or a forged commit).
//   I2  The newest resumable tag never regresses between checks unless a corruption fault
//       fired in between (GC keeps the newest; only damage may push resume backwards).
//   I3  Damaged committed tags never outnumber the corruption faults injected so far, and
//       with zero corruptions injected the newest committed tag deep-verifies bit-exactly.
//   I4  After a clean, resumed train segment the namespace holds no `.staging` debris
//       (crash debris is swept at resume; a leak here is an engine bug).
//   I5  The namespace's `latest` pointer, when present, names a tag of this namespace, and
//       never a tag that exists but was not committed.
//   I6  No chunk referenced by a committed tag's chunk manifest is ever missing from the
//       content-addressed index (a dangling reference means GC dropped a live chunk).
//   I7  Chunk refcounts converge: once every tag referencing a chunk is deleted and a GC
//       sweep has run, the chunk object itself is gone. Orphans are observed every check
//       and become a violation only when the driver asserts `expect_no_orphans` (set after
//       a sweep with no live incremental tags).
//   I8  No committed tag is ever lost: every tag the driver has observed committed (minus
//       the ones GC legitimately removed) is still present with its complete marker. Wire
//       chaos — connection drops, daemon kill+restart — must never un-commit a tag.
//
// Checks are read-only and must run with no fault plan armed (the checker's own I/O would
// otherwise consume the plan).

#ifndef UCP_SRC_SOAK_INVARIANTS_H_
#define UCP_SRC_SOAK_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ucp {

struct SoakInvariantContext {
  std::string dir;
  std::string job;
  // Highest iteration any train segment has attempted so far (committed tags beyond it are
  // phantoms — I1).
  int64_t max_trained_iteration = 0;
  // Newest resumable iteration at the previous check; -1 before the first (I2).
  int64_t prev_latest_valid = -1;
  // Corruption plans (torn write / bit rot) that have fired over the whole run (I3) and
  // since the previous check (I2).
  int corruptions_fired_total = 0;
  bool corruption_since_last_check = false;
  // The driver sets this after a fault-free segment that resumed from a valid tag (I4).
  bool expect_no_staging = false;
  // The driver sets this after deleting every incremental tag and running a GC sweep:
  // unreferenced chunk objects must then be gone (I7).
  bool expect_no_orphans = false;
  // Tags previously observed committed and not since removed by GC (I8): each must still
  // exist with its complete marker. The driver maintains this set from
  // `committed_tag_names` observations minus GC removals.
  std::vector<std::string> must_exist_tags;
};

struct SoakInvariantResult {
  std::vector<std::string> violations;  // empty = all invariants hold
  int checks_run = 0;

  // Observations, logged per event and fed back as the next check's context.
  int64_t latest_valid_iteration = -1;  // -1 when no resumable tag exists
  std::string latest_valid_tag;
  int committed_tags = 0;
  std::vector<std::string> committed_tag_names;  // the tags behind committed_tags (I8 feed)
  int damaged_tags = 0;  // committed tags failing deep validation, newest-first until clean
  int staging_dirs = 0;  // `.staging` entries owned by the namespace
  int chunk_objects = 0;  // content-addressed chunk objects in the store (all namespaces)
  int orphan_chunks = 0;  // chunk objects referenced by no tag manifest (I7 observation)
};

SoakInvariantResult CheckSoakInvariants(const SoakInvariantContext& context);

}  // namespace ucp

#endif  // UCP_SRC_SOAK_INVARIANTS_H_
