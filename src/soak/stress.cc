#include "src/soak/stress.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/comm/comm.h"
#include "src/obs/trace.h"
#include "src/tensor/tensor.h"
#include "src/ucp/slice_cache.h"

namespace ucp {
namespace {

int64_t ReadProcStatusKb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  int64_t value = 0;
  const size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      long long kb = 0;
      if (std::sscanf(line + field_len + 1, " %lld", &kb) == 1) {
        value = static_cast<int64_t>(kb);
      }
      break;
    }
  }
  std::fclose(f);
  return value;
}

}  // namespace

int64_t CurrentRssKb() { return ReadProcStatusKb("VmRSS"); }
int64_t PeakRssKb() { return ReadProcStatusKb("VmHWM"); }

StressReport RunLargeWorldStress(const StressOptions& options) {
  StressReport report;
  report.ranks = options.ranks;
  report.rounds = options.rounds;

  const bool trace_was_enabled = obs::TraceEnabled();
  obs::SetTraceEnabled(true);

  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < options.rounds; ++round) {
    World world(options.ranks);
    std::vector<int> all_ranks(static_cast<size_t>(options.ranks));
    for (int r = 0; r < options.ranks; ++r) {
      all_ranks[static_cast<size_t>(r)] = r;
    }
    auto group_state = world.CreateGroup(all_ranks);

    RunSpmd(options.ranks, [&](int rank) {
      ProcessGroup group(group_state, rank);
      for (int c = 0; c < options.collectives_per_round; ++c) {
        UCP_TRACE_SPAN("soak.stress.step");
        Tensor t = Tensor::Full({options.tensor_elems},
                                static_cast<float>(rank % 7) + static_cast<float>(c));
        group.AllReduceSum(t);
        group.Barrier();
      }
      // Shared-cache pressure: every rank requests the same slice keys, so one rank loads
      // and the rest dedup — the co-located-rank pattern of a UCP load at world scale. The
      // handles stay live until the thread exits, matching loader lifetime semantics.
      std::vector<std::shared_ptr<const Tensor>> held;
      held.reserve(static_cast<size_t>(options.cache_slices));
      for (int s = 0; s < options.cache_slices; ++s) {
        UCP_TRACE_SPAN("soak.stress.cache");
        const std::string key = "soak-stress/round" + std::to_string(round) + "/slice" +
                                std::to_string(s);
        auto slice = AtomSliceCache::Global().GetOrLoad(key, [&] {
          return Result<Tensor>(Tensor::Full({options.tensor_elems},
                                             static_cast<float>(s)));
        });
        if (slice.ok()) {
          held.push_back(std::move(*slice));
        }
      }
      group.Barrier();
    });
  }
  report.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                       .count();
  const int sweeps = options.rounds * options.collectives_per_round;
  report.per_round_collective_seconds = sweeps > 0 ? report.seconds / sweeps : 0.0;

  report.trace_rings = obs::TraceRingCount();
  for (const obs::ThreadTrace& thread : obs::CollectThreadTraces()) {
    report.trace_events += thread.events.size();
    report.trace_dropped += thread.dropped;
  }
  const uint64_t total = report.trace_events + report.trace_dropped;
  report.trace_drop_rate =
      total > 0 ? static_cast<double>(report.trace_dropped) / static_cast<double>(total) : 0.0;

  AtomSliceCache& cache = AtomSliceCache::Global();
  report.cache_entries = cache.EntryCount();
  report.cache_live = cache.LiveEntryCount();
  const AtomSliceCache::Stats cache_stats = cache.stats();
  report.cache_hits = cache_stats.hits;
  report.cache_misses = cache_stats.misses;

  report.rss_kb = CurrentRssKb();
  report.peak_rss_kb = PeakRssKb();

  obs::SetTraceEnabled(trace_was_enabled);
  return report;
}

}  // namespace ucp
