#include "src/soak/multi_job.h"

#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "src/ckpt/async/engine.h"
#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/model/config.h"
#include "src/runtime/trainer.h"
#include "src/store/server.h"
#include "src/ucp/elastic.h"
#include "src/ucp/validate.h"

namespace ucp {
namespace {

// `endpoint` empty = the engine writes the directory itself (LocalStore); otherwise each
// phase dials the soak's daemon, modelling a restarted job reconnecting.
MultiJobReport::JobResult RunOneJob(const MultiJobOptions& options, const std::string& job,
                                    const std::string& endpoint) {
  MultiJobReport::JobResult result;
  result.job = job;

  // This (launcher) thread and every thread it owns declare the job identity for the I/O
  // audit; the engine's flusher threads declare it via pre_flush_hook.
  SetThreadIoAuditContext(job);

  std::mutex mu;
  Status first_error;
  auto note = [&](const Status& status) {
    std::lock_guard<std::mutex> lock(mu);
    if (first_error.ok() && !status.ok()) {
      first_error = status;
    }
  };

  TrainerConfig config;
  config.model = TinyGpt();
  config.strategy = options.strategy;
  config.global_batch = options.global_batch;

  for (int phase = 0; phase < options.phases; ++phase) {
    TrainingRun run(config);
    AsyncCheckpointOptions engine_options;
    engine_options.job = job;
    engine_options.keep_last = options.keep_last;
    engine_options.flush_threads = 1;
    engine_options.max_in_flight = 2;
    engine_options.pre_flush_hook = [job](int64_t) { SetThreadIoAuditContext(job); };
    std::optional<AsyncCheckpointEngine> engine;
    if (endpoint.empty()) {
      engine.emplace(options.dir, run.world_size(), engine_options);
    } else {
      Result<std::shared_ptr<Store>> store = OpenStore(endpoint);
      if (!store.ok()) {
        note(store.status());
        break;
      }
      engine.emplace(*std::move(store), run.world_size(), engine_options);
    }

    const int64_t first =
        static_cast<int64_t>(phase) * options.iterations_per_phase + 1;
    const int64_t last = static_cast<int64_t>(phase + 1) * options.iterations_per_phase;

    if (phase > 0) {
      // A fresh TrainingRun each phase models a job restart against the shared store; the
      // resume must land exactly on the previous phase's frontier.
      run.Run([&](RankTrainer& trainer) {
        SetThreadIoAuditContext(job);
        Result<ResumeReport> resumed = ResumeElastic(options.dir, trainer, job);
        if (!resumed.ok()) {
          note(resumed.status());
        } else if (trainer.rank() == 0 && resumed->iteration != first - 1) {
          note(InternalError(job + ": resumed at iteration " +
                             std::to_string(resumed->iteration) + ", expected " +
                             std::to_string(first - 1)));
        }
      });
    }

    run.Train(first, last, [&](RankTrainer& trainer, int64_t iteration) {
      SetThreadIoAuditContext(job);
      if (options.checkpoint_every > 0 && iteration % options.checkpoint_every == 0) {
        note(engine->SaveAsync(trainer, iteration));
      }
    });
    note(engine->WaitAll());
  }

  // Final store state, still under this job's audit identity.
  Result<std::string> latest = FindLatestValidTag(options.dir, job);
  if (!latest.ok()) {
    note(latest.status());
  } else {
    result.latest_tag = *latest;
    ParseTagName(*latest, nullptr, &result.latest_iteration);

    ValidateOptions validate_options;
    validate_options.deep = true;
    validate_options.num_threads = 0;
    Result<ValidationReport> validated =
        ValidateNativeCheckpoint(options.dir, *latest, validate_options);
    result.deep_valid = validated.ok() && validated->ok();

    TrainingRun reload(config);
    reload.Run([&](RankTrainer& trainer) {
      SetThreadIoAuditContext(job);
      Result<ResumeReport> resumed = ResumeElastic(options.dir, trainer, job);
      if (!resumed.ok()) {
        note(resumed.status());
      } else if (trainer.rank() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        result.reloaded = resumed->tag == result.latest_tag;
      }
    });
  }

  Result<std::vector<std::string>> tags = ListCheckpointTags(options.dir, job);
  if (tags.ok()) {
    for (const std::string& tag : *tags) {
      result.committed_tags += IsTagComplete(options.dir, tag) ? 1 : 0;
    }
  }

  result.status = first_error;
  result.ok = first_error.ok();
  return result;
}

}  // namespace

MultiJobReport RunMultiJobSoak(const MultiJobOptions& options) {
  MultiJobReport report;
  Status made = MakeDirs(options.dir);
  if (!made.ok()) {
    report.violations.push_back("store: " + made.ToString());
    return report;
  }

  std::vector<std::string> jobs;
  for (int j = 0; j < options.jobs; ++j) {
    jobs.push_back("job" + std::to_string(j));
  }

  // In daemon mode one in-process StoreServer owns the save path for every job; it starts
  // before the audit/faults arm so only checkpoint traffic (not daemon setup) is measured.
  std::unique_ptr<StoreServer> server;
  std::string endpoint;
  if (options.through_daemon) {
    StoreServerOptions server_options;
    server_options.root = options.dir;
    server_options.listen = "unix:" + options.dir + "/soak_serverd.sock";
    Result<std::unique_ptr<StoreServer>> started =
        StoreServer::Start(std::move(server_options));
    if (!started.ok()) {
      report.violations.push_back("daemon: " + started.status().ToString());
      return report;
    }
    server = std::move(*started);
    endpoint = server->endpoint();
  }

  std::optional<ScopedIoAudit> audit;
  if (options.audit) {
    std::vector<IoAuditBucket> buckets;
    for (const std::string& job : jobs) {
      IoAuditBucket bucket;
      bucket.name = job;
      // Matches the job's tags, their staging/ucp derivatives, and its latest pointer
      // (including the pointer's tmp-write names, which embed the final path).
      bucket.path_substrs = {"/" + job + ".global_step", "latest." + job};
      buckets.push_back(std::move(bucket));
    }
    audit.emplace(std::move(buckets));
  }

  if (options.inject_fault && !jobs.empty()) {
    // One torn write scoped to job 0's namespace: an early save of job 0 commits damaged;
    // its later saves and every sibling job must be untouched. nth=2 lands in the shards of
    // job 0's first flush (the namespace prefix matches every file of the save).
    FaultPlan plan;
    plan.kind = FaultPlan::Kind::kTornWrite;
    plan.op = FsOp::kWrite;
    plan.nth = 2;
    plan.path_substr = jobs[0] + ".global_step";
    plan.seed = 0x5eedULL;
    ArmFault(plan);
  }

  report.jobs.resize(jobs.size());
  std::vector<std::thread> threads;
  threads.reserve(jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) {
    threads.emplace_back([&, j] { report.jobs[j] = RunOneJob(options, jobs[j], endpoint); });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  if (server != nullptr) {
    // Every session closed when its job's engines were destroyed; drain is a formality.
    server->Shutdown();
  }

  if (options.inject_fault && !jobs.empty()) {
    report.fault_fired = FaultFired();
    DisarmFaults();
    if (!report.fault_fired) {
      report.violations.push_back("injected fault never fired (schedule too short?)");
    }
  }

  const int64_t expected_iteration =
      static_cast<int64_t>(options.phases) * options.iterations_per_phase;
  for (const MultiJobReport::JobResult& job : report.jobs) {
    if (!job.ok) {
      report.violations.push_back(job.job + ": " + job.status.ToString());
    }
    if (job.latest_iteration != expected_iteration) {
      report.violations.push_back(job.job + ": latest resumable iteration " +
                                  std::to_string(job.latest_iteration) + ", expected " +
                                  std::to_string(expected_iteration));
    }
    if (!job.deep_valid) {
      report.violations.push_back(job.job + ": newest tag fails deep validation");
    }
    if (!job.reloaded) {
      report.violations.push_back(job.job + ": end-to-end reload failed");
    }
  }

  if (options.audit) {
    report.audit = audit->Report();
    for (const IoAuditViolation& violation : report.audit.violations) {
      report.violations.push_back("audit: " + violation.ToString());
    }
    for (const std::string& job : jobs) {
      auto it = report.audit.ops_per_bucket.find(job);
      if (it == report.audit.ops_per_bucket.end() || it->second == 0) {
        report.violations.push_back("audit: no I/O attributed to " + job);
      }
    }
  }
  return report;
}

}  // namespace ucp
