#include "src/runtime/supervisor.h"

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "src/ckpt/checkpoint.h"
#include "src/common/logging.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ucp {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// The trainer's divisibility constraints (TrainerConfig::Validate) as a predicate instead
// of an abort, so the shrink search can probe candidates.
bool ValidStrategy(const ModelConfig& model, int global_batch, const ParallelConfig& s) {
  if (s.tp < 1 || s.pp < 1 || s.dp < 1 || s.sp < 1 || s.micro_batches < 1) return false;
  if (global_batch % s.dp != 0) return false;
  if ((global_batch / s.dp) % s.micro_batches != 0) return false;
  if (model.max_seq_len % s.sp != 0) return false;
  if (model.vocab_size % s.tp != 0) return false;
  if (model.num_heads % s.tp != 0) return false;
  if (model.num_kv_heads % s.tp != 0) return false;
  if (model.is_moe() && model.moe_expert_sharding) {
    if (model.num_experts % s.tp != 0) return false;
  } else {
    if (model.ffn_hidden % s.tp != 0) return false;
  }
  if (model.num_layers < s.pp) return false;
  if (model.hidden % s.tp != 0) return false;
  return true;
}

int& AxisDegree(ParallelConfig& s, ShrinkAxis axis) {
  switch (axis) {
    case ShrinkAxis::kDp: return s.dp;
    case ShrinkAxis::kTp: return s.tp;
    case ShrinkAxis::kPp: return s.pp;
    case ShrinkAxis::kSp: return s.sp;
  }
  return s.dp;
}

}  // namespace

Result<ParallelConfig> ShrinkStrategy(const ModelConfig& model, int global_batch,
                                      const ParallelConfig& current, int max_ranks,
                                      const std::vector<ShrinkAxis>& order) {
  if (max_ranks < 1) {
    return InvalidArgumentError("cannot shrink to " + std::to_string(max_ranks) + " ranks");
  }
  if (order.empty()) {
    return InvalidArgumentError("empty shrink order");
  }
  ParallelConfig s = current;
  while (s.world_size() > max_ranks) {
    bool reduced = false;
    for (ShrinkAxis axis : order) {
      int& degree = AxisDegree(s, axis);
      const int original = degree;
      // Largest valid smaller degree first: lose as little of this axis as possible per step.
      for (int candidate = original - 1; candidate >= 1; --candidate) {
        degree = candidate;
        if (ValidStrategy(model, global_batch, s)) {
          reduced = true;
          break;
        }
      }
      if (reduced) {
        break;
      }
      degree = original;
    }
    if (!reduced) {
      return FailedPreconditionError("no valid shrink of " + current.ToString() +
                                     " fits " + std::to_string(max_ranks) + " ranks");
    }
  }
  if (!ValidStrategy(model, global_batch, s)) {
    return FailedPreconditionError("strategy " + s.ToString() +
                                   " violates model divisibility constraints");
  }
  return s;
}

Supervisor::Supervisor(TrainerConfig config, SupervisorOptions options)
    : config_(std::move(config)),
      options_(std::move(options)),
      current_strategy_(config_.strategy) {
  UCP_CHECK_GE(options_.max_recoveries, 0);
}

SupervisorReport Supervisor::Train(int64_t first_iteration, int64_t last_iteration) {
  UCP_CHECK_GE(first_iteration, 1);
  UCP_CHECK_LE(first_iteration, last_iteration);

  SupervisorReport report;
  TrainerConfig cfg = config_;
  cfg.strategy = current_strategy_;
  int available_ranks = cfg.strategy.world_size();
  // Final value per iteration: a resume re-runs the steps after its checkpoint, and the
  // re-run's loss replaces the pre-failure one (identical when resume is bit-exact).
  std::map<int64_t, double> losses_by_iteration;
  // A recovery record opened at the failure, completed once the rebuilt run has resumed.
  std::optional<RecoveryTiming> pending;

  for (;;) {
    const auto rebuild_start = std::chrono::steady_clock::now();
    WorldOptions world_options;
    world_options.watchdog_timeout = options_.watchdog_timeout;
    std::unique_ptr<TrainingRun> run;
    std::unique_ptr<AsyncCheckpointEngine> engine;
    {
      UCP_TRACE_SPAN_ARGS("recovery.rebuild",
                          ::ucp::obs::TraceArgs().S("strategy", cfg.strategy.ToString()));
      run = std::make_unique<TrainingRun>(cfg, world_options);
      if (!options_.ckpt_dir.empty() && options_.checkpoint_every > 0) {
        if (!options_.store_endpoint.empty()) {
          Result<std::shared_ptr<RemoteStore>> remote =
              RemoteStore::Connect(options_.store_endpoint, options_.store_options);
          if (!remote.ok()) {
            report.status = remote.status();
            break;
          }
          engine = std::make_unique<AsyncCheckpointEngine>(
              *remote, cfg.strategy.world_size(), options_.async);
        } else {
          engine = std::make_unique<AsyncCheckpointEngine>(
              options_.ckpt_dir, cfg.strategy.world_size(), options_.async);
        }
      }
    }
    const double rebuild_seconds = SecondsSince(rebuild_start);

    int64_t next = first_iteration;
    ResumeReport resume_report;
    bool resumed = false;
    if (!options_.ckpt_dir.empty() &&
        FindLatestValidTag(options_.ckpt_dir, options_.async.job).ok()) {
      UCP_TRACE_SPAN("recovery.resume");
      Status resume_status = OkStatus();
      std::mutex resume_mu;
      run->Run([&](RankTrainer& trainer) {
        Result<ResumeReport> rr =
            ResumeElastic(options_.ckpt_dir, trainer, options_.async.job);
        std::lock_guard<std::mutex> lock(resume_mu);
        if (!rr.ok()) {
          if (resume_status.ok()) {
            resume_status = rr.status();
          }
        } else if (trainer.rank() == 0) {
          resume_report = *rr;
        }
      });
      if (!resume_status.ok()) {
        if (pending.has_value()) {
          report.timings.push_back(*pending);
        }
        report.status = resume_status;
        break;
      }
      resumed = true;
      next = resume_report.iteration + 1;
    }

    if (pending.has_value()) {
      pending->rebuild_seconds = rebuild_seconds;
      pending->new_strategy = cfg.strategy;
      if (resumed) {
        pending->resumed_tag = resume_report.tag;
        pending->resume_path = resume_report.path;
        pending->convert_seconds = resume_report.convert_seconds;
        pending->load_seconds = resume_report.load_seconds;
      }
      pending->total_seconds = pending->detect_seconds + pending->teardown_seconds +
                               pending->rebuild_seconds + pending->convert_seconds +
                               pending->load_seconds;
      static obs::Histogram& recovery_seconds =
          obs::MetricsRegistry::Global().GetHistogram("recovery.total_seconds");
      recovery_seconds.Observe(pending->total_seconds);
      UCP_TRACE_INSTANT("recovery.complete",
                        ::ucp::obs::TraceArgs()
                            .S("strategy", cfg.strategy.ToString())
                            .D("total_seconds", pending->total_seconds));
      UCP_LOG(Info) << "recovered on " << cfg.strategy.ToString()
                    << (resumed ? " from tag " + pending->resumed_tag
                                : " from scratch (no committed checkpoint)")
                    << " in " << pending->total_seconds << "s";
      report.timings.push_back(*pending);
      pending.reset();
    }

    TrainOutcome outcome;
    if (next > last_iteration) {
      outcome.completed_iteration = last_iteration;  // resumed at/past the end
    } else {
      outcome = run->TryTrain(next, last_iteration, [&](RankTrainer& trainer, int64_t it) {
        if (options_.after_iteration) {
          options_.after_iteration(trainer, it);
        }
        if (engine != nullptr && it % options_.checkpoint_every == 0) {
          CheckRankFault(FaultSite::kBeforeSave);
          Status saved = engine->SaveAsync(trainer, it);
          UCP_CHECK(saved.ok()) << saved;
          CheckRankFault(FaultSite::kAsyncFlush);
        }
      });
      for (size_t i = 0; i < outcome.losses.size(); ++i) {
        losses_by_iteration[next + static_cast<int64_t>(i)] = outcome.losses[i];
      }
    }

    if (!outcome.failed) {
      if (engine != nullptr) {
        Status drained = engine->WaitAll();
        if (!drained.ok()) {
          UCP_LOG(Warning) << "checkpoint flush failed during supervised run: "
                           << drained.ToString();
        }
      }
      report.ok = true;
      break;
    }

    // ---- Recovery: detect happened inside TryTrain; now teardown, shrink, loop. ----
    ++report.recoveries;
    RecoveryTiming timing;
    timing.failure = outcome.failure;
    timing.old_strategy = cfg.strategy;
    timing.detect_seconds = outcome.failure.blocked_seconds;
    UCP_LOG(Warning) << "rank failure detected: " << outcome.failure.ToString();
    static obs::Counter& failures =
        obs::MetricsRegistry::Global().GetCounter("recovery.rank_failures");
    failures.Add(1);
    UCP_TRACE_INSTANT("recovery.detected",
                      ::ucp::obs::TraceArgs()
                          .I("rank", outcome.failure.rank)
                          .D("detect_seconds", timing.detect_seconds));
    // Dump the in-memory rings before teardown reuses them: the dossier should show what
    // every rank was doing when the failure hit, not what the rebuilt world did after.
    if (!options_.ckpt_dir.empty()) {
      std::string trace_path;
      std::string dump_err;
      if (obs::DumpFlightRecord(options_.ckpt_dir, "rank-failure", &trace_path, &dump_err)) {
        UCP_LOG(Info) << "flight record dumped to " << trace_path;
      } else {
        UCP_LOG(Warning) << "flight record dump failed: " << dump_err;
      }
    }
    if (report.recoveries > options_.max_recoveries) {
      report.timings.push_back(timing);
      report.status = FailedPreconditionError(
          "gave up after " + std::to_string(options_.max_recoveries) +
          " recoveries; last failure: " + outcome.failure.ToString());
      break;
    }

    const auto teardown_start = std::chrono::steady_clock::now();
    {
      UCP_TRACE_SPAN("recovery.teardown");
      if (engine != nullptr) {
        const int abandoned = engine->AbandonIncomplete();
        if (abandoned > 0) {
          UCP_LOG(Info) << "abandoned " << abandoned
                        << " checkpoint save(s) stranded by the failed rank";
        }
        Status drained = engine->WaitAll();
        if (!drained.ok()) {
          UCP_LOG(Warning) << "checkpoint flush failed before teardown: "
                           << drained.ToString();
        }
        engine.reset();
      }
      run.reset();  // rank threads already joined; this destroys the poisoned World
    }
    timing.teardown_seconds = SecondsSince(teardown_start);

    if (!options_.rebuild_same_strategy) {
      UCP_TRACE_SPAN("recovery.shrink");
      available_ranks -= 1;  // the failed rank's slot is gone
      Result<ParallelConfig> shrunk = ShrinkStrategy(
          cfg.model, cfg.global_batch, cfg.strategy, available_ranks, options_.shrink_order);
      if (!shrunk.ok()) {
        report.timings.push_back(timing);
        report.status = shrunk.status();
        break;
      }
      UCP_LOG(Info) << "shrinking strategy " << cfg.strategy.ToString() << " -> "
                    << shrunk->ToString() << " for " << available_ranks << " ranks";
      cfg.strategy = *shrunk;
    }
    pending = timing;
  }

  report.losses.reserve(static_cast<size_t>(last_iteration - first_iteration + 1));
  for (int64_t it = first_iteration; it <= last_iteration; ++it) {
    auto found = losses_by_iteration.find(it);
    report.losses.push_back(found == losses_by_iteration.end() ? 0.0 : found->second);
  }
  report.final_strategy = cfg.strategy;
  current_strategy_ = cfg.strategy;
  return report;
}

}  // namespace ucp
