// The SPMD training engine: one RankTrainer per simulated rank, driving the stage model
// through micro-batched forward/backward, the gradient-sync chain (SP -> embedding tie ->
// ZeRO/DP), and the Adam step. A TrainingRun helper owns the World/Topology and runs all
// ranks on threads.

#ifndef UCP_SRC_RUNTIME_TRAINER_H_
#define UCP_SRC_RUNTIME_TRAINER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/comm/rank_fault.h"
#include "src/data/dataset.h"
#include "src/model/stage_model.h"
#include "src/optim/adam.h"
#include "src/parallel/topology.h"
#include "src/parallel/zero.h"

namespace ucp {

struct TrainerConfig {
  ModelConfig model;
  ParallelConfig strategy;
  int global_batch = 8;  // samples per iteration across all DP replicas
  LrSchedule lr;
  AdamConfig adam;
  DType compute_dtype = DType::kF32;  // != f32 simulates mixed-precision training
  uint64_t data_seed = 42;

  // Aborts on divisibility violations (batch vs dp*micro, seq vs sp, heads/vocab/ffn vs tp).
  void Validate() const;
};

class RankTrainer {
 public:
  RankTrainer(Topology* topology, int rank, const TrainerConfig& config);

  // Runs one training iteration (1-based). Every rank returns the same global mean LM loss.
  double TrainIteration(int64_t iteration);

  StageModel& model() { return *model_; }
  const StageModel& model() const { return *model_; }
  ZeroOptimizer& optimizer() { return *optimizer_; }
  const ZeroOptimizer& optimizer() const { return *optimizer_; }
  int rank() const { return rank_; }
  const RankCoord& coord() const { return coord_; }
  const TrainerConfig& config() const { return config_; }
  Topology* topology() const { return topology_; }
  const Topology::RankGroups& groups() const { return groups_; }

 private:
  void SyncGradients();

  Topology* topology_;
  int rank_;
  RankCoord coord_;
  TrainerConfig config_;
  Topology::RankGroups groups_;
  SyntheticTextDataset dataset_;
  std::unique_ptr<StageModel> model_;
  std::unique_ptr<ZeroOptimizer> optimizer_;

  int micro_batch_size_ = 0;  // samples per micro-batch on this DP replica
  int64_t hidden_activation_numel_ = 0;
};

// What a fallible training call observed. When a rank fails (injected kill or watchdog
// detection), surviving ranks unwind via the world abort instead of deadlocking, and the
// caller gets the root cause plus how far training verifiably got.
struct TrainOutcome {
  bool failed = false;
  RankFailure failure;              // root cause; prefers the injected kill over watchdog echoes
  int64_t completed_iteration = 0;  // last iteration completed on EVERY rank; first-1 if none
  std::vector<double> losses;       // rank-0 losses for [first_iteration, completed_iteration]
};

// Convenience driver: builds a World/Topology for `config.strategy`, constructs one
// RankTrainer per rank, and runs `body(trainer)` on each rank's thread. Checkpoint save /
// resume logic composes through `body`.
class TrainingRun {
 public:
  explicit TrainingRun(const TrainerConfig& config, WorldOptions world_options = {});

  // Runs body on all ranks (blocking). May be called repeatedly; trainers persist across
  // calls so train -> save -> train-more sequences keep optimizer state.
  void Run(const std::function<void(RankTrainer&)>& body);

  // Trains iterations [first_iteration, last_iteration] inclusive and returns the loss per
  // iteration (identical across ranks; taken from rank 0).
  std::vector<double> Train(int64_t first_iteration, int64_t last_iteration);

  // Same, invoking `after_iteration(trainer, iteration)` on every rank's thread after each
  // completed step — the integration point for periodic checkpointing. An async engine's
  // SaveAsync here returns after the snapshot, so its flush overlaps the next iterations.
  std::vector<double> Train(
      int64_t first_iteration, int64_t last_iteration,
      const std::function<void(RankTrainer&, int64_t)>& after_iteration);

  // Fault-tolerant variant: rank failures (injected or watchdog-detected) are caught at each
  // rank thread's top level instead of aborting the process. On failure the World is left
  // aborted (poisoned) — the caller is expected to tear this run down and rebuild, which is
  // what the recovery Supervisor does. An iteration counts as completed only once every rank
  // finished it; a kill inside `after_iteration` does not un-complete the step it follows.
  TrainOutcome TryTrain(
      int64_t first_iteration, int64_t last_iteration,
      const std::function<void(RankTrainer&, int64_t)>& after_iteration = nullptr);

  Topology& topology() { return *topology_; }
  World& world() { return *world_; }
  RankTrainer& trainer(int rank) { return *trainers_[static_cast<size_t>(rank)]; }
  int world_size() const { return world_->size(); }

 private:
  TrainerConfig config_;
  std::unique_ptr<World> world_;
  std::unique_ptr<Topology> topology_;
  std::vector<std::unique_ptr<RankTrainer>> trainers_;
};

}  // namespace ucp

#endif  // UCP_SRC_RUNTIME_TRAINER_H_
