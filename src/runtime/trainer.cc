#include "src/runtime/trainer.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace ucp {

void TrainerConfig::Validate() const {
  model.Validate();
  const ParallelConfig& s = strategy;
  UCP_CHECK_EQ(global_batch % s.dp, 0) << "global batch must divide across DP replicas";
  int per_dp = global_batch / s.dp;
  UCP_CHECK_EQ(per_dp % s.micro_batches, 0) << "DP batch must divide into micro batches";
  UCP_CHECK_EQ(model.max_seq_len % s.sp, 0) << "sequence must divide across SP ranks";
  UCP_CHECK_EQ(model.vocab_size % s.tp, 0) << "vocab must divide across TP ranks";
  UCP_CHECK_EQ(model.num_heads % s.tp, 0) << "heads must divide across TP ranks";
  UCP_CHECK_EQ(model.num_kv_heads % s.tp, 0) << "KV heads must divide across TP ranks";
  if (model.is_moe() && model.moe_expert_sharding) {
    UCP_CHECK_EQ(model.num_experts % s.tp, 0) << "experts must divide across TP ranks";
  } else {
    UCP_CHECK_EQ(model.ffn_hidden % s.tp, 0) << "FFN width must divide across TP ranks";
  }
  UCP_CHECK_GE(model.num_layers, s.pp) << "need at least one layer per pipeline stage";
  UCP_CHECK_EQ(model.hidden % s.tp, 0) << "hidden must divide across TP ranks";
}

RankTrainer::RankTrainer(Topology* topology, int rank, const TrainerConfig& config)
    : topology_(topology),
      rank_(rank),
      coord_(topology->CoordOf(rank)),
      config_(config),
      groups_(topology->GroupsFor(rank)),
      dataset_(config.model.vocab_size, config.model.max_seq_len, config.data_seed) {
  config_.Validate();
  model_ = std::make_unique<StageModel>(config.model, config.strategy, coord_);
  optimizer_ = std::make_unique<ZeroOptimizer>(&model_->store(), config.strategy.zero_stage,
                                               groups_.dp, groups_.world,
                                               config.compute_dtype);
  micro_batch_size_ = config.global_batch / config.strategy.dp / config.strategy.micro_batches;
  hidden_activation_numel_ = static_cast<int64_t>(micro_batch_size_) *
                             (config.model.max_seq_len / config.strategy.sp) *
                             config.model.hidden;
}

double RankTrainer::TrainIteration(int64_t iteration) {
  UCP_CHECK_GE(iteration, 1);
  // Keep the fault machinery's view of "where is this rank" current: watchdog reports and
  // injected kills are both attributed to this (rank, iteration).
  SetFaultContext(rank_, iteration);
  UCP_TRACE_SPAN_ARGS("train.iteration", ::ucp::obs::TraceArgs().I("iteration", iteration));
  CheckRankFault(FaultSite::kIterationStart);
  const ParallelConfig& s = config_.strategy;
  const int seq_total = config_.model.max_seq_len;
  const int seq_local = seq_total / s.sp;
  const double inv_total_tokens =
      1.0 / (static_cast<double>(config_.global_batch) * seq_total);

  LayerContext ctx;
  ctx.tp = groups_.tp;
  ctx.sp = groups_.sp;
  ctx.batch = micro_batch_size_;
  ctx.seq_total = seq_total;
  ctx.seq_local = seq_local;
  ctx.seq_offset = coord_.sp * seq_local;

  model_->store().ZeroGrads();
  double loss_contrib = 0.0;

  const int per_dp = config_.global_batch / s.dp;
  World* world = topology_->world();

  for (int m = 0; m < s.micro_batches; ++m) {
    // Samples of this (dp replica, micro-batch): deterministic function of the iteration.
    int first_sample = coord_.dp * per_dp + m * micro_batch_size_;
    Batch batch = MakeBatch(dataset_, static_cast<uint64_t>(iteration - 1),
                            config_.global_batch, first_sample, micro_batch_size_);
    // SP slice of the sequence.
    Tensor tokens = s.sp > 1 ? batch.tokens.Narrow(1, ctx.seq_offset, seq_local)
                             : batch.tokens;
    Tensor labels = s.sp > 1 ? batch.labels.Narrow(1, ctx.seq_offset, seq_local)
                             : batch.labels;

    // ---- Forward through this stage ----
    Tensor x;
    if (model_->is_first_stage()) {
      x = model_->Embed(tokens, ctx);
    } else {
      x = world->Recv(topology_->PrevStageRank(rank_), rank_)
              .Reshape({ctx.local_tokens(), config_.model.hidden});
    }
    Tensor h = model_->ForwardBlocks(x, ctx);
    if (model_->is_last_stage()) {
      loss_contrib += model_->LossForward(h, labels, ctx, inv_total_tokens);
    } else {
      world->Send(rank_, topology_->NextStageRank(rank_), h);
    }

    // ---- Backward through this stage ----
    Tensor dy;
    if (model_->is_last_stage()) {
      dy = model_->LossBackward(ctx);
    } else {
      dy = world->Recv(topology_->NextStageRank(rank_), rank_)
               .Reshape({ctx.local_tokens(), config_.model.hidden});
    }
    Tensor dx = model_->BackwardBlocks(dy, ctx);
    if (model_->is_first_stage()) {
      model_->EmbedBackward(dx, ctx);
    } else {
      world->Send(rank_, topology_->PrevStageRank(rank_), dx);
    }
  }

  SyncGradients();
  float lr = config_.lr.LrAt(iteration);
  optimizer_->Step(lr, config_.adam);

  // ---- Loss aggregation: exact global mean, identical on every rank ----
  double loss = loss_contrib;
  if (model_->is_last_stage()) {
    if (s.sp > 1) {
      loss = groups_.sp.AllReduceSumScalar(loss);
    }
    if (s.dp > 1) {
      loss = groups_.dp.AllReduceSumScalar(loss);
    }
  } else {
    // Participate with zero so the sums above are confined to last-stage ranks' groups —
    // non-last stages have their own sp/dp groups; run the same collectives for symmetry.
    if (s.sp > 1) {
      loss = groups_.sp.AllReduceSumScalar(loss);
    }
    if (s.dp > 1) {
      loss = groups_.dp.AllReduceSumScalar(loss);
    }
  }
  if (s.pp > 1) {
    // Propagate from the last stage to everyone (non-last ranks hold 0 here).
    loss = groups_.pp.AllReduceSumScalar(model_->is_last_stage() ? loss : 0.0);
  }
  return loss;
}

void RankTrainer::SyncGradients() {
  const ParallelConfig& s = config_.strategy;
  // 1. Sequence-parallel sum for every parameter except the deliberately independent norms
  //    (those become params_to_average at checkpoint-consolidation time).
  if (s.sp > 1) {
    for (const ParamPtr& p : model_->store().params()) {
      if (!p->sp_independent) {
        groups_.sp.AllReduceSum(p->grad);
      }
    }
  }
  // 2. Tied-embedding gradient exchange between the first and last pipeline stages.
  if (config_.model.tied_embeddings && s.pp > 1 && groups_.embedding_tie.valid()) {
    ParamPtr emb =
        model_->store().FindOrNull("language_model.embedding.word_embeddings.weight");
    if (emb != nullptr) {
      groups_.embedding_tie.AllReduceSum(emb->grad);
    }
  }
  // 3. DP/ZeRO sync happens inside ZeroOptimizer::Step.
}

TrainingRun::TrainingRun(const TrainerConfig& config, WorldOptions world_options)
    : config_(config) {
  config_.Validate();
  world_ = std::make_unique<World>(config.strategy.world_size(), world_options);
  topology_ = std::make_unique<Topology>(world_.get(), config.strategy);
  trainers_.resize(static_cast<size_t>(world_->size()));
  // Construction materializes parameters; do it in parallel — rank construction performs no
  // collectives, so plain threads suffice.
  RunSpmd(world_->size(), [&](int rank) {
    trainers_[static_cast<size_t>(rank)] =
        std::make_unique<RankTrainer>(topology_.get(), rank, config_);
  });
}

void TrainingRun::Run(const std::function<void(RankTrainer&)>& body) {
  RunSpmd(world_->size(), [&](int rank) { body(*trainers_[static_cast<size_t>(rank)]); });
}

std::vector<double> TrainingRun::Train(int64_t first_iteration, int64_t last_iteration) {
  return Train(first_iteration, last_iteration, nullptr);
}

std::vector<double> TrainingRun::Train(
    int64_t first_iteration, int64_t last_iteration,
    const std::function<void(RankTrainer&, int64_t)>& after_iteration) {
  std::vector<double> losses(static_cast<size_t>(last_iteration - first_iteration + 1), 0.0);
  Run([&](RankTrainer& trainer) {
    for (int64_t it = first_iteration; it <= last_iteration; ++it) {
      double loss = trainer.TrainIteration(it);
      if (trainer.rank() == 0) {
        losses[static_cast<size_t>(it - first_iteration)] = loss;
      }
      if (after_iteration) {
        after_iteration(trainer, it);
      }
    }
  });
  return losses;
}

TrainOutcome TrainingRun::TryTrain(
    int64_t first_iteration, int64_t last_iteration,
    const std::function<void(RankTrainer&, int64_t)>& after_iteration) {
  const int n = world_->size();
  std::vector<double> rank0_losses(
      static_cast<size_t>(last_iteration - first_iteration + 1), 0.0);
  std::vector<int64_t> completed(static_cast<size_t>(n), first_iteration - 1);
  std::vector<std::optional<RankFailure>> failures =
      RunSpmdFallible(n, [&](int rank) {
        RankTrainer& trainer = *trainers_[static_cast<size_t>(rank)];
        for (int64_t it = first_iteration; it <= last_iteration; ++it) {
          double loss = trainer.TrainIteration(it);
          if (rank == 0) {
            rank0_losses[static_cast<size_t>(it - first_iteration)] = loss;
          }
          // The step itself is done: a kill inside the checkpoint hook below must not
          // discard the iteration it follows.
          completed[static_cast<size_t>(rank)] = it;
          if (after_iteration) {
            after_iteration(trainer, it);
          }
        }
      });

  TrainOutcome outcome;
  outcome.completed_iteration = last_iteration;
  for (int64_t c : completed) {
    outcome.completed_iteration = std::min(outcome.completed_iteration, c);
  }
  outcome.losses.assign(
      rank0_losses.begin(),
      rank0_losses.begin() + (outcome.completed_iteration - first_iteration + 1));
  for (const std::optional<RankFailure>& f : failures) {
    if (!f.has_value()) {
      continue;
    }
    // Every surviving rank reports the same canonical watchdog failure; the victim's own
    // kInjected report (when the kill was injected) is the more precise root cause.
    if (!outcome.failed || (outcome.failure.kind != RankFailure::Kind::kInjected &&
                            f->kind == RankFailure::Kind::kInjected)) {
      outcome.failure = *f;
    }
    outcome.failed = true;
  }
  // Detection is complete only once the last blocked survivor declared the failure: report
  // the longest watchdog wait even when the root cause is the victim's instant kInjected.
  for (const std::optional<RankFailure>& f : failures) {
    if (f.has_value()) {
      outcome.failure.blocked_seconds =
          std::max(outcome.failure.blocked_seconds, f->blocked_seconds);
    }
  }
  return outcome;
}

}  // namespace ucp
