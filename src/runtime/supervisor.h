// The elastic-recovery supervisor: the paper's reconfigure-and-continue loop (§1, Fig. 1)
// as one automated code path.
//
// Supervisor::Train drives a TrainingRun with periodic async checkpoints. When a rank fails
// mid-run — injected kill or watchdog-detected hang — the surviving ranks unwind via the
// world abort (comm.h), and the supervisor:
//
//   1. DETECT    — TryTrain returns the root-cause RankFailure instead of deadlocking.
//   2. TEARDOWN  — abandons checkpoint saves whose gather the dead rank stranded, drains the
//                  flusher (a fully-gathered save still commits — it is exactly the
//                  checkpoint recovery wants), and destroys the poisoned World.
//   3. SHRINK    — picks a fallback ParallelConfig for the reduced rank count via the
//                  strategy-shrink policy (drop DP first, then TP, then PP, then SP).
//   4. RESUME    — rebuilds trainers on the new strategy and drives ResumeElastic, which
//                  converts the checkpoint through UCP when the strategy changed.
//
// Every phase is timed per recovery (RecoveryTiming) — the recovery-time split
// bench/fig13_recovery_time.cc reports. See docs/fault_tolerance.md.

#ifndef UCP_SRC_RUNTIME_SUPERVISOR_H_
#define UCP_SRC_RUNTIME_SUPERVISOR_H_

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "src/ckpt/async/engine.h"
#include "src/runtime/trainer.h"
#include "src/store/remote_store.h"
#include "src/ucp/elastic.h"

namespace ucp {

// Axes the shrink policy may reduce, tried in the order given. The default order drops DP
// first (pure capacity — no reshard of a replicated dimension) and SP last (changing the
// sequence split perturbs the most runtime shapes).
enum class ShrinkAxis { kDp, kTp, kPp, kSp };

// Picks a ParallelConfig with world_size() <= max_ranks by repeatedly reducing one axis at
// a time in `order`, keeping every divisibility constraint the trainer enforces (batch vs
// dp*micro, heads/kv/vocab/hidden/ffn-or-experts vs tp, layers vs pp, seq vs sp). For each
// axis the largest valid smaller degree is preferred, so capacity loss is minimal.
// kInvalidArgument when max_ranks < 1; kFailedPrecondition when no valid shrink exists.
Result<ParallelConfig> ShrinkStrategy(
    const ModelConfig& model, int global_batch, const ParallelConfig& current, int max_ranks,
    const std::vector<ShrinkAxis>& order = {ShrinkAxis::kDp, ShrinkAxis::kTp, ShrinkAxis::kPp,
                                            ShrinkAxis::kSp});

struct SupervisorOptions {
  // Checkpoint directory. Required: recovery without a checkpoint restarts from scratch.
  std::string ckpt_dir;
  // When set ("unix:/path" / "tcp:host:port"), saves go through a ucp_serverd at this
  // endpoint (the daemon must serve the same root as ckpt_dir — the shared-filesystem
  // deployment) while resume/validation read ckpt_dir directly. Each rebuilt engine dials
  // fresh; transport loss during a save is handled by the RemoteStore's lease/reconnect
  // machinery per store_options, and a save that stays unreachable past the reconnect
  // deadline is skipped (save.async.skipped_unavailable), not a training abort.
  std::string store_endpoint;
  RemoteStoreOptions store_options;
  // SaveAsync every N completed iterations (0 disables checkpointing).
  int checkpoint_every = 10;
  // `async.job` doubles as the supervisor's tag namespace: saves, retention, debris sweeps
  // and resumes all stay inside it, so several supervised jobs can share one ckpt_dir.
  AsyncCheckpointOptions async;
  // Passed to each rebuilt World; how long a silent hang takes to become a detected failure.
  std::chrono::milliseconds watchdog_timeout{60000};
  // Give up after this many recoveries in one Train call.
  int max_recoveries = 8;
  std::vector<ShrinkAxis> shrink_order = {ShrinkAxis::kDp, ShrinkAxis::kTp, ShrinkAxis::kPp,
                                          ShrinkAxis::kSp};
  // Native-restart mode: rebuild on the SAME strategy (the failed rank's slot is assumed
  // re-provisioned), so resume takes the native load path. The fig13 baseline arm.
  bool rebuild_same_strategy = false;
  // Optional user hook, invoked before the supervisor's own checkpoint hook each iteration.
  std::function<void(RankTrainer&, int64_t)> after_iteration;
};

// One recovery's phase timing, in seconds of wall clock on the supervising thread (detect is
// the failed collective's blocked time as reported by the watchdog; 0 for injected kills
// observed without a watchdog wait). The same phases are emitted as "recovery.*" trace
// spans (src/obs/trace.h) on the supervising thread; this struct remains the programmatic
// report, the spans feed the Chrome trace and flight recorder.
struct RecoveryTiming {
  RankFailure failure;
  ParallelConfig old_strategy;
  ParallelConfig new_strategy;
  std::string resumed_tag;  // empty when no checkpoint existed (restarted from scratch)
  ResumeReport::Path resume_path = ResumeReport::Path::kNative;
  double detect_seconds = 0.0;
  double teardown_seconds = 0.0;  // abandon + drain engine, destroy run
  double rebuild_seconds = 0.0;   // new World + trainers
  double convert_seconds = 0.0;   // UCP convert (or cache hit) inside ResumeElastic
  double load_seconds = 0.0;      // native or UCP load inside ResumeElastic
  double total_seconds = 0.0;     // sum of the above
};

struct SupervisorReport {
  bool ok = false;
  Status status;  // why Train gave up, when !ok
  // Final loss per iteration in [first, last]: iterations re-run after a resume report the
  // re-run's value (identical when resume is bit-exact — what the fault-tolerance tests
  // assert).
  std::vector<double> losses;
  int recoveries = 0;
  std::vector<RecoveryTiming> timings;  // one entry per recovery, in order
  ParallelConfig final_strategy;
};

// Owns the train -> fail -> shrink -> resume loop. One instance supervises one logical
// training job; each Train call runs to completion or gives up.
class Supervisor {
 public:
  Supervisor(TrainerConfig config, SupervisorOptions options);

  SupervisorReport Train(int64_t first_iteration, int64_t last_iteration);

  // The strategy the most recent Train call ended on (== config strategy before any Train).
  const ParallelConfig& current_strategy() const { return current_strategy_; }

 private:
  TrainerConfig config_;
  SupervisorOptions options_;
  ParallelConfig current_strategy_;
};

}  // namespace ucp

#endif  // UCP_SRC_RUNTIME_SUPERVISOR_H_
