#include "src/ucp/converter.h"

#include <chrono>
#include <map>
#include <mutex>

#include "src/ckpt/checkpoint.h"
#include "src/ckpt/foreign.h"
#include "src/common/fs.h"
#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/tensor_file.h"

namespace ucp {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Total size of a directory tree in bytes (counts atom payloads after conversion).
int64_t DirBytes(const std::string& dir) {
  int64_t total = 0;
  Result<std::vector<std::string>> entries = ListDir(dir);
  if (!entries.ok()) {
    return 0;
  }
  for (const std::string& name : *entries) {
    std::string path = PathJoin(dir, name);
    if (DirExists(path)) {
      total += DirBytes(path);
    } else {
      Result<uint64_t> size = FileSize(path);
      total += size.ok() ? static_cast<int64_t>(*size) : 0;
    }
  }
  return total;
}

// Conversion writes every atom into a `.staging` sibling; only a fully-written tree is
// renamed to `ucp_dir` (marker last). A failed or crashed conversion leaves no partial
// `ucp_dir`, so a retry never trips the AlreadyExists guard.
Result<std::string> BeginUcpStaging(const std::string& ucp_dir) {
  if (IsUcpComplete(ucp_dir)) {
    return AlreadyExistsError("UCP checkpoint already exists at " + ucp_dir);
  }
  // An unmarked ucp_dir is debris of an interrupted conversion — replace it.
  UCP_RETURN_IF_ERROR(RemoveAll(ucp_dir));
  const std::string staging = ucp_dir + ".staging";
  UCP_RETURN_IF_ERROR(RemoveAll(staging));
  UCP_RETURN_IF_ERROR(MakeDirs(staging));
  return staging;
}

Status CommitUcpStaging(const std::string& staging, const std::string& ucp_dir) {
  UCP_RETURN_IF_ERROR(RenamePath(staging, ucp_dir));
  return WriteFileAtomic(PathJoin(ucp_dir, "complete"), "ucp");
}

}  // namespace

double ModeledTransferSeconds(int64_t bytes, int num_files, double bandwidth_bytes_per_sec,
                              double per_file_latency_sec) {
  UCP_CHECK_GT(bandwidth_bytes_per_sec, 0.0);
  return static_cast<double>(bytes) / bandwidth_bytes_per_sec +
         static_cast<double>(num_files) * per_file_latency_sec;
}

namespace {

// The whole conversion, writing into `staging`. Errors may leave `staging` partially
// populated; the caller removes it.
Result<ConvertStats> ConvertToUcpImpl(const std::string& ckpt_dir, const std::string& tag,
                                      const std::string& staging,
                                      const ConvertOptions& options) {
  const std::string& ucp_dir = staging;
  UCP_ASSIGN_OR_RETURN(CheckpointMeta meta, ReadCheckpointMeta(ckpt_dir, tag));
  const ParallelConfig& src = meta.strategy;
  const std::string tag_dir = PathJoin(ckpt_dir, tag);

  PatternLibrary default_library = PatternLibrary::ForStrategy(meta.model, src);
  const PatternLibrary& library =
      options.library != nullptr ? *options.library : default_library;

  std::vector<InventoryEntry> inventory = BuildInventory(meta.model);
  std::map<std::string, Shape> full_shapes;
  for (const InventoryEntry& entry : inventory) {
    full_shapes[entry.param.name] = entry.param.full_shape;
  }

  ConvertStats stats;
  ThreadPool pool(static_cast<size_t>(options.num_threads));

  // ---- Extract phase: parallel over model-parallel ranks (Algorithm 1, lines 1-6) ----
  auto extract_start = std::chrono::steady_clock::now();
  struct ModelRank {
    int tp, pp, sp;
  };
  std::vector<ModelRank> model_ranks;
  for (int pp = 0; pp < src.pp; ++pp) {
    for (int sp = 0; sp < src.sp; ++sp) {
      for (int tp = 0; tp < src.tp; ++tp) {
        model_ranks.push_back({tp, pp, sp});
      }
    }
  }

  std::mutex mu;
  std::map<std::string, std::vector<ShardContribution>> contributions;
  int64_t steps_taken = 0;
  Status first_error = OkStatus();

  {
    UCP_TRACE_SPAN_ARGS(
        "convert.extract_phase",
        ::ucp::obs::TraceArgs().I("model_ranks", static_cast<int64_t>(model_ranks.size())));
    pool.ParallelFor(model_ranks.size(), [&](size_t i) {
      const ModelRank& mr = model_ranks[i];
      Result<ExtractedRank> extracted = Extract(tag_dir, src, mr.tp, mr.pp, mr.sp);
      std::lock_guard<std::mutex> lock(mu);
      if (!extracted.ok()) {
        if (first_error.ok()) {
          first_error = extracted.status();
        }
        return;
      }
      steps_taken = extracted->steps_taken;
      for (ParamState& state : extracted->params) {
        ShardContribution contribution;
        contribution.coord = extracted->coord;
        contribution.state = std::move(state);
        contributions[contribution.state.name].push_back(std::move(contribution));
      }
      ++stats.model_ranks_extracted;
    });
  }
  if (!first_error.ok()) {
    return first_error;
  }
  stats.extract_seconds = SecondsSince(extract_start);
  for (const ModelRank& mr : model_ranks) {
    for (int dp = 0; dp < src.dp; ++dp) {
      Result<uint64_t> size =
          FileSize(PathJoin(tag_dir, OptimStatesFileName(dp, mr.tp, mr.pp, mr.sp)));
      stats.bytes_read += size.ok() ? static_cast<int64_t>(*size) : 0;
      if (src.zero_stage == 0) {
        break;  // stage 0: one full copy read per model rank
      }
    }
  }

  // ---- Union phase: parallel over parameters (Algorithm 1, lines 7-21) ----
  auto union_start = std::chrono::steady_clock::now();
  std::vector<std::string> names;
  names.reserve(contributions.size());
  for (const auto& [name, unused] : contributions) {
    names.push_back(name);
  }

  std::vector<std::string> atom_names(names.size());
  {
    UCP_TRACE_SPAN_ARGS("convert.union_phase", ::ucp::obs::TraceArgs().I(
                                                   "params", static_cast<int64_t>(names.size())));
    pool.ParallelFor(names.size(), [&](size_t i) {
      const std::string& name = names[i];
      auto shape_it = full_shapes.find(name);
      Result<PatternRule> rule = library.Match(name);
      Status status = OkStatus();
      if (shape_it == full_shapes.end()) {
        status = DataLossError("checkpoint contains unknown parameter: " + name);
      } else if (!rule.ok()) {
        status = rule.status();
      } else {
        Result<ParamState> merged =
            UnionParam(*rule, shape_it->second, std::move(contributions[name]), src.tp);
        if (!merged.ok()) {
          status = merged.status();
        } else {
          status = WriteAtom(ucp_dir, *merged, *rule);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      if (!status.ok()) {
        if (first_error.ok()) {
          first_error = status;
        }
        return;
      }
      atom_names[i] = name;
      ++stats.atoms_written;
    });
  }
  if (!first_error.ok()) {
    return first_error;
  }
  stats.union_seconds = SecondsSince(union_start);
  stats.bytes_written = DirBytes(ucp_dir);

  // ---- Manifest ----
  UcpMeta ucp_meta;
  ucp_meta.model = meta.model;
  ucp_meta.source_strategy = src;
  ucp_meta.iteration = steps_taken;
  ucp_meta.global_batch = meta.global_batch;
  ucp_meta.data_seed = meta.data_seed;
  ucp_meta.atom_names = atom_names;
  UCP_RETURN_IF_ERROR(WriteUcpMeta(ucp_dir, ucp_meta));
  return stats;
}

Result<ConvertStats> ConvertForeignToUcpImpl(const std::string& foreign_dir,
                                             const std::string& tag,
                                             const std::string& staging,
                                             const ConvertOptions& options) {
  const std::string& ucp_dir = staging;
  UCP_ASSIGN_OR_RETURN(ForeignMeta meta, ReadForeignMeta(foreign_dir, tag));
  UCP_ASSIGN_OR_RETURN(
      TensorBundle bundle,
      LoadBundle(PathJoin(PathJoin(foreign_dir, tag), "state_rank0.bundle")));

  ConvertStats stats;
  ThreadPool pool(static_cast<size_t>(options.num_threads));

  // Collect parameter names ("model.<name>" entries).
  std::vector<std::string> names;
  for (const auto& [key, unused] : bundle.tensors) {
    if (key.rfind("model.", 0) == 0) {
      names.push_back(key.substr(6));
    }
  }

  auto start = std::chrono::steady_clock::now();
  std::mutex mu;
  Status first_error = OkStatus();
  PatternRule unique_rule{ParamPattern::kUniqueParams, "*", 0, {}};
  pool.ParallelFor(names.size(), [&](size_t i) {
    const std::string& name = names[i];
    const Tensor* fp32 = bundle.Find("model." + name);
    const Tensor* m = bundle.Find("optim.exp_avg." + name);
    const Tensor* v = bundle.Find("optim.exp_avg_sq." + name);
    Status status = OkStatus();
    if (fp32 == nullptr || m == nullptr || v == nullptr) {
      status = DataLossError("foreign checkpoint missing state for " + name);
    } else {
      ParamState state;
      state.name = name;
      state.fp32 = fp32->Clone();
      state.exp_avg = m->Clone();
      state.exp_avg_sq = v->Clone();
      status = WriteAtom(ucp_dir, state, unique_rule);
    }
    std::lock_guard<std::mutex> lock(mu);
    if (!status.ok()) {
      if (first_error.ok()) {
        first_error = status;
      }
      return;
    }
    ++stats.atoms_written;
  });
  if (!first_error.ok()) {
    return first_error;
  }
  stats.union_seconds = SecondsSince(start);

  UcpMeta ucp_meta;
  ucp_meta.model = meta.model;
  ucp_meta.source_strategy = ParallelConfig{};  // consolidated source: tp=pp=dp=sp=1
  ucp_meta.iteration = meta.iteration;
  ucp_meta.global_batch = meta.global_batch;
  ucp_meta.data_seed = meta.data_seed;
  ucp_meta.atom_names = names;
  UCP_RETURN_IF_ERROR(WriteUcpMeta(ucp_dir, ucp_meta));
  return stats;
}

// The per-call ConvertStats return stays the API; the registry accumulates across calls so
// `ucp_tool metrics` and bench snapshots see conversion work without threading the struct.
void PublishConvertStats(const ConvertStats& stats) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static obs::Counter& runs = reg.GetCounter("convert.runs");
  static obs::Counter& atoms = reg.GetCounter("convert.atoms_written");
  static obs::Counter& ranks = reg.GetCounter("convert.model_ranks_extracted");
  static obs::Counter& bytes_read = reg.GetCounter("convert.bytes_read");
  static obs::Counter& bytes_written = reg.GetCounter("convert.bytes_written");
  static obs::Histogram& extract_s = reg.GetHistogram("convert.extract_seconds");
  static obs::Histogram& union_s = reg.GetHistogram("convert.union_seconds");
  runs.Add(1);
  atoms.Add(static_cast<uint64_t>(stats.atoms_written));
  ranks.Add(static_cast<uint64_t>(stats.model_ranks_extracted));
  bytes_read.Add(static_cast<uint64_t>(stats.bytes_read));
  bytes_written.Add(static_cast<uint64_t>(stats.bytes_written));
  extract_s.Observe(stats.extract_seconds);
  union_s.Observe(stats.union_seconds);
}

}  // namespace

Result<ConvertStats> ConvertToUcp(const std::string& ckpt_dir, const std::string& tag,
                                  const std::string& ucp_dir,
                                  const ConvertOptions& options) {
  UCP_TRACE_SPAN_ARGS("convert.to_ucp", ::ucp::obs::TraceArgs().S("tag", tag));
  UCP_ASSIGN_OR_RETURN(std::string staging, BeginUcpStaging(ucp_dir));
  Result<ConvertStats> stats = ConvertToUcpImpl(ckpt_dir, tag, staging, options);
  if (!stats.ok()) {
    RemoveAll(staging).ok();  // best effort: leave no debris, keep the retry path clean
    return stats.status();
  }
  UCP_RETURN_IF_ERROR(CommitUcpStaging(staging, ucp_dir));
  PublishConvertStats(*stats);
  UCP_LOG(Info) << "converted " << PathJoin(ckpt_dir, tag) << " -> " << ucp_dir << " ("
                << stats->atoms_written << " atoms, extract " << stats->extract_seconds
                << "s, union " << stats->union_seconds << "s)";
  return stats;
}

Result<ConvertStats> ConvertForeignToUcp(const std::string& foreign_dir,
                                         const std::string& tag, const std::string& ucp_dir,
                                         const ConvertOptions& options) {
  UCP_TRACE_SPAN_ARGS("convert.foreign_to_ucp", ::ucp::obs::TraceArgs().S("tag", tag));
  UCP_ASSIGN_OR_RETURN(std::string staging, BeginUcpStaging(ucp_dir));
  Result<ConvertStats> stats = ConvertForeignToUcpImpl(foreign_dir, tag, staging, options);
  if (!stats.ok()) {
    RemoveAll(staging).ok();
    return stats.status();
  }
  UCP_RETURN_IF_ERROR(CommitUcpStaging(staging, ucp_dir));
  PublishConvertStats(*stats);
  return stats;
}

}  // namespace ucp
