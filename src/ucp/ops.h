// The UCP transformation operations (paper §3.2, Table 2): Extract, Union, StripPadding.
// GenUcpMetadata and Load live in loader.h; the Algorithm-1 driver in converter.h.

#ifndef UCP_SRC_UCP_OPS_H_
#define UCP_SRC_UCP_OPS_H_

#include <string>
#include <vector>

#include "src/parallel/zero.h"
#include "src/ucp/atom.h"
#include "src/ucp/patterns.h"

namespace ucp {

// StripPadding: drops the ZeRO alignment padding from a reassembled flat buffer. Idempotent
// (a no-op when the buffer already has logical size).
Result<Tensor> StripPadding(const Tensor& flat, int64_t logical_total);

// One model-parallel rank's extracted content: per-parameter shard states in canonical
// order, with flat padding already stripped.
struct ExtractedRank {
  RankCoord coord;  // dp is meaningless here (all DP partitions were merged)
  int zero_stage = 0;
  int64_t steps_taken = 0;
  std::vector<ParamState> params;  // shapes are this rank's TP-shard shapes
};

// Extract: reads all `src.dp` optimizer-state files of model-parallel rank (tp, pp, sp)
// from a native distributed checkpoint, reassembles the flat fp32/exp_avg/exp_avg_sq
// buffers (concatenating ZeRO partitions in DP order), strips padding, and slices the
// per-parameter segments. Callable in parallel across model-parallel ranks (Table 2).
Result<ExtractedRank> Extract(const std::string& tag_dir, const ParallelConfig& src, int tp,
                              int pp, int sp);

// One rank's contribution of one parameter to the union.
struct ShardContribution {
  RankCoord coord;
  ParamState state;
};

// Union: consolidates all contributions of one parameter according to its pattern
// (Algorithm 1's switch): unique asserts a single contribution, replicated picks one and
// verifies the copies are bit-identical, to_average averages across the SP replicas,
// fragment reassembles TP shards (including variable-size sections and n-d sub-patterns).
// `source_tp` is the TP degree of the source strategy; `full_shape` the consolidated shape.
Result<ParamState> UnionParam(const PatternRule& rule, const Shape& full_shape,
                              std::vector<ShardContribution> contributions, int source_tp);

}  // namespace ucp

#endif  // UCP_SRC_UCP_OPS_H_
