// GenUcpMetadata and Load (paper Table 2): planning and executing the mapping of atom
// checkpoints onto the ranks of an arbitrary *Target* strategy.

#ifndef UCP_SRC_UCP_LOADER_H_
#define UCP_SRC_UCP_LOADER_H_

#include <string>
#include <vector>

#include "src/runtime/trainer.h"
#include "src/ucp/atom.h"

namespace ucp {

// Where one atom lands in a target rank's flat buffer.
struct AtomAssignment {
  std::string name;
  int64_t flat_offset = 0;    // element offset of this rank's TP shard in the flat buffer
  Shape full_shape;           // consolidated atom shape (for range planning without I/O)
  Shape shard_shape;          // TP-shard shape on the target
  PartitionSpec target_spec;  // how to slice the consolidated atom for this rank
};

// The partition metadata for one target rank: the flat layout it will materialize
// (including re-introduced alignment padding — GenUcpMetadata adds padding back, the inverse
// of StripPadding) and the atom slices that fill it.
struct RankLoadPlan {
  FlatLayout layout;
  int64_t partition_offset = 0;  // this rank's ZeRO partition start (0 for stage 0)
  int64_t partition_numel = 0;   // partition size (padded_total for stage 0)
  std::vector<AtomAssignment> assignments;

  Json ToJson() const;
};

// Computes the plan for target rank `coord` under `target`, purely from the model config —
// no checkpoint access. Must agree exactly with the layout ZeroOptimizer builds at runtime
// (asserted by tests).
RankLoadPlan GenUcpMetadata(const ModelConfig& model, const ParallelConfig& target,
                            const RankCoord& coord);

// Knobs for the load executor. Defaults give the optimized path: partition-pruned sliced
// reads fanned out on a thread pool, with the process-wide slice cache deduplicating
// replicated-atom reads across co-located ranks.
struct UcpLoadOptions {
  // Loader threads per rank (0 = read inline on the calling thread).
  int num_threads = 8;
  // Sliced reads: intersect every atom assignment with this rank's ZeRO partition, skip
  // atoms wholly outside it, and pread only the intersecting ranges into partition-sized
  // buffers. false falls back to the v1-era reference path: whole-file atom reads, full
  // padded flat assembly, partition sliced at the end. Both are bit-exact (tested).
  bool sliced = true;
  // Dedup identical (file, range) reads across concurrently-loading co-located ranks.
  // Only consulted on the sliced path.
  bool use_slice_cache = true;
};

// Load: reads the atoms named by the plan, slices each per the target spec, assembles this
// rank's flat fp32/exp_avg/exp_avg_sq partition, and installs it into the trainer's
// optimizer (which republishes parameter values). Also restores the Adam step count.
// The trainer's model config must match the UCP checkpoint's.
//
// The Store form is the canonical path: `ucp_rel` names the UCP checkpoint inside the store
// ("" = the store root, "global_step10.ucp" inside a checkpoint store). The sliced arm
// issues range reads for exactly the ShardRuns byte ranges it computes — against a
// RemoteStore those become READ_RANGE frames to ucp_serverd, chunk-CRC-verified
// server-side. The dir form wraps a LocalStore on `ucp_dir` (identical I/O and slice-cache
// keys to the historical direct-FS path).
Status LoadUcpCheckpoint(Store& store, const std::string& ucp_rel, RankTrainer& trainer,
                         const UcpLoadOptions& options = {});
Status LoadUcpCheckpoint(const std::string& ucp_dir, RankTrainer& trainer);
Status LoadUcpCheckpoint(const std::string& ucp_dir, RankTrainer& trainer,
                         const UcpLoadOptions& options);

}  // namespace ucp

#endif  // UCP_SRC_UCP_LOADER_H_
