// Atom checkpoints (paper §3.1): the consolidated, strategy-agnostic representation. One
// directory per parameter holding three single-tensor files — fp32 weights and the two Adam
// moments — plus a small JSON sidecar:
//
//   <ucp_dir>/ucp_meta.json
//   <ucp_dir>/atoms/<param_name>/fp32
//   <ucp_dir>/atoms/<param_name>/exp_avg
//   <ucp_dir>/atoms/<param_name>/exp_avg_sq
//   <ucp_dir>/atoms/<param_name>/meta.json   (full shape + source pattern, for inspection)

#ifndef UCP_SRC_UCP_ATOM_H_
#define UCP_SRC_UCP_ATOM_H_

#include <string>
#include <vector>

#include "src/model/config.h"
#include "src/parallel/topology.h"
#include "src/store/store.h"
#include "src/tensor/tensor.h"
#include "src/ucp/patterns.h"

namespace ucp {

// The fp32 training state of one parameter (consolidated, or one rank's shard of it).
struct ParamState {
  std::string name;
  Tensor fp32;
  Tensor exp_avg;
  Tensor exp_avg_sq;
};

struct UcpMeta {
  ModelConfig model;
  ParallelConfig source_strategy;
  int64_t iteration = 0;
  int global_batch = 0;
  uint64_t data_seed = 0;
  std::vector<std::string> atom_names;

  Json ToJson() const;
  static Result<UcpMeta> FromJson(const Json& json);
};

std::string AtomDir(const std::string& ucp_dir, const std::string& param_name);

// Store-relative sibling of AtomDir: the atom directory of `param_name` inside the UCP
// checkpoint at `ucp_rel` ("" = the store root). Same layout either way.
std::string AtomRel(const std::string& ucp_rel, const std::string& param_name);

// Writes one atom (three tensor files + sidecar). Thread-safe across distinct params.
Status WriteAtom(const std::string& ucp_dir, const ParamState& state,
                 const PatternRule& source_pattern);

Result<ParamState> ReadAtom(const std::string& ucp_dir, const std::string& param_name);
Result<ParamState> ReadAtom(Store& store, const std::string& ucp_rel,
                            const std::string& param_name);

// Header-only shape probe (used by GenUcpMetadata-style planning and tests).
Result<Shape> ReadAtomShape(const std::string& ucp_dir, const std::string& param_name);

Status WriteUcpMeta(const std::string& ucp_dir, const UcpMeta& meta);
Result<UcpMeta> ReadUcpMeta(const std::string& ucp_dir);
Result<UcpMeta> ReadUcpMeta(Store& store, const std::string& ucp_rel);

// True when the UCP dir carries both its metadata and the `complete` commit marker the
// converter drops last. A dir without the marker is an aborted conversion.
bool IsUcpComplete(const std::string& ucp_dir);
bool IsUcpComplete(Store& store, const std::string& ucp_rel);

}  // namespace ucp

#endif  // UCP_SRC_UCP_ATOM_H_
