#include "src/ucp/atom.h"

#include "src/common/fs.h"
#include "src/tensor/tensor_file.h"

namespace ucp {

Json UcpMeta::ToJson() const {
  JsonObject obj;
  obj["model"] = model.ToJson();
  obj["source_strategy"] = source_strategy.ToJson();
  obj["iteration"] = iteration;
  obj["global_batch"] = global_batch;
  obj["data_seed"] = static_cast<int64_t>(data_seed);
  JsonArray atoms;
  for (const std::string& name : atom_names) {
    atoms.push_back(Json(name));
  }
  obj["atoms"] = Json(std::move(atoms));
  obj["format_version"] = 1;
  return Json(std::move(obj));
}

Result<UcpMeta> UcpMeta::FromJson(const Json& json) {
  UcpMeta meta;
  UCP_ASSIGN_OR_RETURN(int64_t version, json.GetInt("format_version"));
  if (version != 1) {
    return FailedPreconditionError("unsupported UCP format version " +
                                   std::to_string(version));
  }
  if (!json.Has("model") || !json.Has("source_strategy")) {
    return DataLossError("ucp_meta.json missing model/source_strategy");
  }
  UCP_ASSIGN_OR_RETURN(meta.model, ModelConfig::FromJson(json.AsObject().at("model")));
  UCP_ASSIGN_OR_RETURN(meta.source_strategy,
                       ParallelConfig::FromJson(json.AsObject().at("source_strategy")));
  UCP_ASSIGN_OR_RETURN(meta.iteration, json.GetInt("iteration"));
  UCP_ASSIGN_OR_RETURN(int64_t batch, json.GetInt("global_batch"));
  meta.global_batch = static_cast<int>(batch);
  UCP_ASSIGN_OR_RETURN(int64_t seed, json.GetInt("data_seed"));
  meta.data_seed = static_cast<uint64_t>(seed);
  UCP_ASSIGN_OR_RETURN(const JsonArray* atoms, json.GetArray("atoms"));
  for (const Json& atom : *atoms) {
    if (!atom.is_string()) {
      return DataLossError("non-string atom name in ucp_meta.json");
    }
    meta.atom_names.push_back(atom.AsString());
  }
  return meta;
}

std::string AtomDir(const std::string& ucp_dir, const std::string& param_name) {
  // Parameter names are dot-separated identifiers — already filesystem-safe.
  return PathJoin(PathJoin(ucp_dir, "atoms"), param_name);
}

std::string AtomRel(const std::string& ucp_rel, const std::string& param_name) {
  return JoinRel(ucp_rel, JoinRel("atoms", param_name));
}

namespace {

// Whole-tensor read through a Store's positional source (ReadAtom's remote-capable arm).
Result<Tensor> LoadTensorFromStore(Store& store, const std::string& rel) {
  UCP_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> source, store.OpenRead(rel));
  UCP_ASSIGN_OR_RETURN(TensorFileView view, TensorFileView::Open(std::move(source)));
  Tensor t = Tensor::Zeros(view.info().shape);
  UCP_RETURN_IF_ERROR(view.ReadElements(0, t.numel(), t.data()));
  return t;
}

}  // namespace

Status WriteAtom(const std::string& ucp_dir, const ParamState& state,
                 const PatternRule& source_pattern) {
  const std::string dir = AtomDir(ucp_dir, state.name);
  UCP_RETURN_IF_ERROR(MakeDirs(dir));
  UCP_RETURN_IF_ERROR(SaveTensor(PathJoin(dir, "fp32"), state.fp32));
  UCP_RETURN_IF_ERROR(SaveTensor(PathJoin(dir, "exp_avg"), state.exp_avg));
  UCP_RETURN_IF_ERROR(SaveTensor(PathJoin(dir, "exp_avg_sq"), state.exp_avg_sq));

  JsonObject meta;
  JsonArray shape;
  for (int i = 0; i < state.fp32.ndim(); ++i) {
    shape.push_back(Json(state.fp32.dim(i)));
  }
  meta["shape"] = Json(std::move(shape));
  meta["source_pattern"] = ParamPatternName(source_pattern.pattern);
  if (source_pattern.pattern == ParamPattern::kFragmentParams) {
    meta["partition_dim"] = source_pattern.dim;
    JsonArray sections;
    for (int64_t s : source_pattern.sections) {
      sections.push_back(Json(s));
    }
    meta["sections"] = Json(std::move(sections));
  }
  return WriteFileAtomic(PathJoin(dir, "meta.json"), Json(std::move(meta)).Dump(2));
}

Result<ParamState> ReadAtom(const std::string& ucp_dir, const std::string& param_name) {
  const std::string dir = AtomDir(ucp_dir, param_name);
  ParamState state;
  state.name = param_name;
  UCP_ASSIGN_OR_RETURN(state.fp32, LoadTensor(PathJoin(dir, "fp32")));
  UCP_ASSIGN_OR_RETURN(state.exp_avg, LoadTensor(PathJoin(dir, "exp_avg")));
  UCP_ASSIGN_OR_RETURN(state.exp_avg_sq, LoadTensor(PathJoin(dir, "exp_avg_sq")));
  if (!state.fp32.SameShape(state.exp_avg) || !state.fp32.SameShape(state.exp_avg_sq)) {
    return DataLossError("atom tensors of " + param_name + " have inconsistent shapes");
  }
  return state;
}

Result<ParamState> ReadAtom(Store& store, const std::string& ucp_rel,
                            const std::string& param_name) {
  const std::string dir = AtomRel(ucp_rel, param_name);
  ParamState state;
  state.name = param_name;
  UCP_ASSIGN_OR_RETURN(state.fp32, LoadTensorFromStore(store, JoinRel(dir, "fp32")));
  UCP_ASSIGN_OR_RETURN(state.exp_avg, LoadTensorFromStore(store, JoinRel(dir, "exp_avg")));
  UCP_ASSIGN_OR_RETURN(state.exp_avg_sq,
                       LoadTensorFromStore(store, JoinRel(dir, "exp_avg_sq")));
  if (!state.fp32.SameShape(state.exp_avg) || !state.fp32.SameShape(state.exp_avg_sq)) {
    return DataLossError("atom tensors of " + param_name + " have inconsistent shapes");
  }
  return state;
}

Result<Shape> ReadAtomShape(const std::string& ucp_dir, const std::string& param_name) {
  UCP_ASSIGN_OR_RETURN(TensorFileInfo info,
                       StatTensor(PathJoin(AtomDir(ucp_dir, param_name), "fp32")));
  return info.shape;
}

Status WriteUcpMeta(const std::string& ucp_dir, const UcpMeta& meta) {
  return WriteFileAtomic(PathJoin(ucp_dir, "ucp_meta.json"), meta.ToJson().Dump(2));
}

bool IsUcpComplete(const std::string& ucp_dir) {
  return FileExists(PathJoin(ucp_dir, "ucp_meta.json")) &&
         FileExists(PathJoin(ucp_dir, "complete"));
}

bool IsUcpComplete(Store& store, const std::string& ucp_rel) {
  Result<bool> meta = store.Exists(JoinRel(ucp_rel, "ucp_meta.json"));
  Result<bool> marker = store.Exists(JoinRel(ucp_rel, "complete"));
  return meta.ok() && *meta && marker.ok() && *marker;
}

Result<UcpMeta> ReadUcpMeta(const std::string& ucp_dir) {
  UCP_ASSIGN_OR_RETURN(std::string text,
                       ReadFileToString(PathJoin(ucp_dir, "ucp_meta.json")));
  UCP_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return UcpMeta::FromJson(json);
}

Result<UcpMeta> ReadUcpMeta(Store& store, const std::string& ucp_rel) {
  UCP_ASSIGN_OR_RETURN(std::string text,
                       store.ReadSmallFile(JoinRel(ucp_rel, "ucp_meta.json")));
  UCP_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return UcpMeta::FromJson(json);
}

}  // namespace ucp
