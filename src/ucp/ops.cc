#include "src/ucp/ops.h"

#include <algorithm>

#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/store/chunk_index.h"
#include "src/tensor/tensor_file.h"

namespace ucp {

Result<Tensor> StripPadding(const Tensor& flat, int64_t logical_total) {
  UCP_TRACE_SPAN_ARGS("ucp.strip_padding",
                      ::ucp::obs::TraceArgs().I("logical_total", logical_total));
  if (flat.ndim() != 1) {
    return InvalidArgumentError("StripPadding expects a flat (1-d) tensor");
  }
  if (flat.numel() < logical_total) {
    return InvalidArgumentError("flat buffer smaller than its logical size: " +
                                std::to_string(flat.numel()) + " < " +
                                std::to_string(logical_total));
  }
  if (flat.numel() == logical_total) {
    return flat.Clone();  // idempotent
  }
  return flat.Narrow(0, 0, logical_total);
}

Result<ExtractedRank> Extract(const std::string& tag_dir, const ParallelConfig& src, int tp,
                              int pp, int sp) {
  UCP_TRACE_SPAN_ARGS(
      "ucp.extract",
      ::ucp::obs::TraceArgs().I("tp", tp).I("pp", pp).I("sp", sp).I("src_dp", src.dp));
  static obs::Counter& extracts = obs::MetricsRegistry::Global().GetCounter("ucp.extracts");
  extracts.Add(1);
  ExtractedRank out;
  out.coord = {tp, sp, pp, 0};

  FlatLayout layout;
  std::vector<Tensor> master_parts;
  std::vector<Tensor> exp_avg_parts;
  std::vector<Tensor> exp_avg_sq_parts;

  for (int dp = 0; dp < src.dp; ++dp) {
    const std::string path = PathJoin(tag_dir, OptimStatesFileName(dp, tp, pp, sp));
    // Parse metadata once and range-read just the three flat tensors (v3 bundles verify
    // only the chunks those tensors occupy). The shard resolves physical-first, then
    // through the tag's chunk manifest, so incremental tags convert identically.
    UCP_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> source,
                         OpenTagShardSource(tag_dir, OptimStatesFileName(dp, tp, pp, sp)));
    UCP_ASSIGN_OR_RETURN(BundleFileView bundle, BundleFileView::Open(std::move(source)));
    UCP_ASSIGN_OR_RETURN(int64_t stage, bundle.meta().GetInt("zero_stage"));
    UCP_ASSIGN_OR_RETURN(out.steps_taken, bundle.meta().GetInt("steps_taken"));
    if (!bundle.meta().Has("flat_layout")) {
      return DataLossError("optimizer bundle missing flat_layout: " + path);
    }
    UCP_ASSIGN_OR_RETURN(FlatLayout this_layout,
                         FlatLayout::FromJson(bundle.meta().AsObject().at("flat_layout")));
    if (dp == 0) {
      layout = std::move(this_layout);
      out.zero_stage = static_cast<int>(stage);
    } else if (this_layout.padded_total != layout.padded_total ||
               this_layout.segments.size() != layout.segments.size()) {
      return DataLossError("inconsistent flat layouts across DP partitions in " + path);
    }

    if (bundle.IndexOf("fp32_flat") < 0 || bundle.IndexOf("exp_avg") < 0 ||
        bundle.IndexOf("exp_avg_sq") < 0) {
      return DataLossError("optimizer bundle missing tensors: " + path);
    }
    UCP_ASSIGN_OR_RETURN(Tensor master, bundle.ReadTensor("fp32_flat"));
    UCP_ASSIGN_OR_RETURN(Tensor exp_avg, bundle.ReadTensor("exp_avg"));
    UCP_ASSIGN_OR_RETURN(Tensor exp_avg_sq, bundle.ReadTensor("exp_avg_sq"));
    master_parts.push_back(std::move(master));
    exp_avg_parts.push_back(std::move(exp_avg));
    exp_avg_sq_parts.push_back(std::move(exp_avg_sq));

    if (out.zero_stage == 0) {
      break;  // stage 0 saves the full state in every DP file; one copy suffices
    }
  }

  // Reassemble the flat buffers. Stage 0 files carry the full buffer; stages 1-3 carry
  // DP partitions that concatenate (in DP order) to the padded flat buffer.
  Tensor flat_master = master_parts.size() == 1 ? std::move(master_parts[0])
                                                : Tensor::Concat(master_parts, 0);
  Tensor flat_exp_avg = exp_avg_parts.size() == 1 ? std::move(exp_avg_parts[0])
                                                  : Tensor::Concat(exp_avg_parts, 0);
  Tensor flat_exp_avg_sq = exp_avg_sq_parts.size() == 1
                               ? std::move(exp_avg_sq_parts[0])
                               : Tensor::Concat(exp_avg_sq_parts, 0);
  if (flat_master.numel() != layout.padded_total) {
    return DataLossError("reassembled flat buffer has " +
                         std::to_string(flat_master.numel()) + " elements, layout says " +
                         std::to_string(layout.padded_total));
  }

  UCP_ASSIGN_OR_RETURN(flat_master, StripPadding(flat_master, layout.total));
  UCP_ASSIGN_OR_RETURN(flat_exp_avg, StripPadding(flat_exp_avg, layout.total));
  UCP_ASSIGN_OR_RETURN(flat_exp_avg_sq, StripPadding(flat_exp_avg_sq, layout.total));

  // Slice the per-parameter segments.
  for (const FlatSegment& seg : layout.segments) {
    ParamState state;
    state.name = seg.name;
    state.fp32 = flat_master.Narrow(0, seg.offset, seg.numel).Reshape(seg.shape);
    state.exp_avg = flat_exp_avg.Narrow(0, seg.offset, seg.numel).Reshape(seg.shape);
    state.exp_avg_sq = flat_exp_avg_sq.Narrow(0, seg.offset, seg.numel).Reshape(seg.shape);
    out.params.push_back(std::move(state));
  }
  return out;
}

namespace {

// Deterministic contribution order: (sp, tp, pp).
void SortContributions(std::vector<ShardContribution>& contributions) {
  std::sort(contributions.begin(), contributions.end(),
            [](const ShardContribution& a, const ShardContribution& b) {
              if (a.coord.sp != b.coord.sp) {
                return a.coord.sp < b.coord.sp;
              }
              if (a.coord.tp != b.coord.tp) {
                return a.coord.tp < b.coord.tp;
              }
              return a.coord.pp < b.coord.pp;
            });
}

Status CheckReplicasEqual(const std::vector<ShardContribution>& contributions,
                          const std::string& name) {
  for (size_t i = 1; i < contributions.size(); ++i) {
    if (!Tensor::BitEqual(contributions[0].state.fp32, contributions[i].state.fp32) ||
        !Tensor::BitEqual(contributions[0].state.exp_avg, contributions[i].state.exp_avg) ||
        !Tensor::BitEqual(contributions[0].state.exp_avg_sq,
                          contributions[i].state.exp_avg_sq)) {
      return DataLossError("replicated parameter " + name +
                           " has diverged replicas; if this is expected (e.g. sequence "
                           "parallelism), declare it params_to_average");
    }
  }
  return OkStatus();
}

}  // namespace

Result<ParamState> UnionParam(const PatternRule& rule, const Shape& full_shape,
                              std::vector<ShardContribution> contributions, int source_tp) {
  if (contributions.empty()) {
    return InvalidArgumentError("UnionParam with no contributions");
  }
  const std::string& name = contributions[0].state.name;
  UCP_TRACE_SPAN_ARGS("ucp.union_param",
                      ::ucp::obs::TraceArgs()
                          .S("param", name)
                          .I("contributions", static_cast<int64_t>(contributions.size())));
  static obs::Counter& unions = obs::MetricsRegistry::Global().GetCounter("ucp.unions");
  unions.Add(1);
  SortContributions(contributions);

  switch (rule.pattern) {
    case ParamPattern::kUniqueParams: {
      if (contributions.size() != 1) {
        return DataLossError("unique parameter " + name + " found on " +
                             std::to_string(contributions.size()) + " ranks");
      }
      return std::move(contributions[0].state);
    }

    case ParamPattern::kReplicatedParams: {
      UCP_RETURN_IF_ERROR(CheckReplicasEqual(contributions, name));
      return std::move(contributions[0].state);
    }

    case ParamPattern::kParamsToAverage: {
      // One representative per SP rank (the copies within an SP rank — across TP/PP — are
      // true replicas), then average across SP.
      std::vector<ShardContribution> reps;
      for (const ShardContribution& c : contributions) {
        if (reps.empty() || reps.back().coord.sp != c.coord.sp) {
          reps.push_back(c);
        }
      }
      ParamState avg;
      avg.name = name;
      avg.fp32 = reps[0].state.fp32.Clone();
      avg.exp_avg = reps[0].state.exp_avg.Clone();
      avg.exp_avg_sq = reps[0].state.exp_avg_sq.Clone();
      for (size_t i = 1; i < reps.size(); ++i) {
        avg.fp32.Add_(reps[i].state.fp32);
        avg.exp_avg.Add_(reps[i].state.exp_avg);
        avg.exp_avg_sq.Add_(reps[i].state.exp_avg_sq);
      }
      float inv = 1.0f / static_cast<float>(reps.size());
      avg.fp32.Scale_(inv);
      avg.exp_avg.Scale_(inv);
      avg.exp_avg_sq.Scale_(inv);
      return avg;
    }

    case ParamPattern::kFragmentParams: {
      // One representative per TP index (fragments are replicated across SP and, for tied
      // embeddings, across PP), concatenated per the sub-pattern.
      std::vector<Tensor> fp32_shards(static_cast<size_t>(source_tp));
      std::vector<Tensor> m_shards(static_cast<size_t>(source_tp));
      std::vector<Tensor> v_shards(static_cast<size_t>(source_tp));
      for (const ShardContribution& c : contributions) {
        size_t idx = static_cast<size_t>(c.coord.tp);
        if (c.coord.tp < 0 || c.coord.tp >= source_tp) {
          return DataLossError("fragment contribution with tp index out of range for " +
                               name);
        }
        if (!fp32_shards[idx].defined()) {
          fp32_shards[idx] = c.state.fp32;
          m_shards[idx] = c.state.exp_avg;
          v_shards[idx] = c.state.exp_avg_sq;
        }
      }
      for (int t = 0; t < source_tp; ++t) {
        if (!fp32_shards[static_cast<size_t>(t)].defined()) {
          return DataLossError("missing TP shard " + std::to_string(t) + " of " + name);
        }
      }
      PartitionSpec spec = rule.ToPartitionSpec();
      ParamState out;
      out.name = name;
      out.fp32 = Unshard(spec, fp32_shards, full_shape);
      out.exp_avg = Unshard(spec, m_shards, full_shape);
      out.exp_avg_sq = Unshard(spec, v_shards, full_shape);
      return out;
    }
  }
  return InternalError("unreachable pattern in UnionParam");
}

}  // namespace ucp
