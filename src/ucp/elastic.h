// The elastic resume driver: the paper's lazy, on-demand conversion workflow (§3.1).
//
// "The UCP conversion happens lazily and on-demand, e.g., when a training process detects a
// change of parallelism technique and hardware configuration."
//
// ResumeElastic implements exactly that detection: it first attempts a strict native load
// (free when the strategy is unchanged); on a parallelism/hardware mismatch it converts the
// checkpoint to UCP — once, cached next to the checkpoint — and loads through the UCP path.

#ifndef UCP_SRC_UCP_ELASTIC_H_
#define UCP_SRC_UCP_ELASTIC_H_

#include <string>

#include "src/runtime/trainer.h"

namespace ucp {

struct ResumeReport {
  // Which path restored the state.
  enum class Path { kNative, kUcpConverted, kUcpCached } path = Path::kNative;
  std::string tag;        // the checkpoint tag that was resumed
  int64_t iteration = 0;  // training resumes at iteration + 1
  // Phase timing for recovery accounting (bench/fig13_recovery_time). On this rank:
  double convert_seconds = 0.0;  // UCP convert + the barrier waiting for it (0 on native)
  double load_seconds = 0.0;     // the load that actually restored the state
};

// Resumes `trainer` from the newest committed checkpoint in `job`'s tag namespace under
// `dir`, converting through UCP only if the native strict load rejects the current
// strategy. The UCP cache lives at <dir>/<tag>.ucp. Tags without the `complete` marker
// (aborted saves) are skipped, and a committed tag whose data turns out damaged
// (kDataLoss/kIoError/kNotFound) falls back to the next older committed tag; the first
// failure is reported when nothing resumes. The pre-resume debris sweep is scoped to
// `job`, so resuming one job of a shared store never disturbs a sibling's in-flight save.
// Collective: every rank of the run must call it; rank 0 performs the conversion while the
// others wait at a barrier.
Result<ResumeReport> ResumeElastic(const std::string& dir, RankTrainer& trainer,
                                   const std::string& job = "");

// Same, for an explicit tag.
Result<ResumeReport> ResumeElasticFromTag(const std::string& dir, const std::string& tag,
                                          RankTrainer& trainer);

}  // namespace ucp

#endif  // UCP_SRC_UCP_ELASTIC_H_
