// A process-wide, refcounted cache of atom file slices, shared by co-located simulated
// ranks during a UCP load.
//
// Why it exists: ranks that differ only in their TP coordinate have identical flat layouts,
// so for a replicated atom they request the exact same element range of the exact same file
// (and under ZeRO-0, ranks differing only in DP do too). Without dedup, a TP2·DP2 node reads
// every layer norm four times. The cache keys on (path, element range) and guarantees each
// slice is read from disk once while any requester still holds it.
//
// Lifetime is refcount-driven, not LRU: the map holds weak references, each GetOrLoad
// returns an owning pointer (aliased to the cache entry), and the entry dies when the last
// owner drops it. Loaders keep their slices alive until the whole rank load finishes, which
// widens the dedup window across concurrently-loading ranks without pinning checkpoint data
// in memory after the load.

#ifndef UCP_SRC_UCP_SLICE_CACHE_H_
#define UCP_SRC_UCP_SLICE_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/status.h"
#include "src/tensor/tensor.h"

namespace ucp {

class AtomSliceCache {
 public:
  static AtomSliceCache& Global();

  // Returns the slice cached under `key`, or runs `load` to produce it. Concurrent callers
  // with the same key coordinate: exactly one runs `load`, the rest block until it finishes
  // (a failed load is returned to every waiter but not cached — a retry reloads).
  Result<std::shared_ptr<const Tensor>> GetOrLoad(
      const std::string& key, const std::function<Result<Tensor>()>& load);

  struct Stats {
    uint64_t hits = 0;    // served from a live entry (including waits on an in-flight load)
    uint64_t misses = 0;  // ran the loader
  };
  // Backed by the metrics registry (`ucp.slice_cache.hits`/`.misses`); this getter and
  // SnapshotMetrics() always agree.
  Stats stats() const;
  void ResetStats();

  // Map slots currently held (live entries + not-yet-pruned expired ones). The soak
  // stress mode asserts this stays bounded while large worlds load repeatedly.
  size_t EntryCount() const;
  // Slots whose slice some caller still holds.
  size_t LiveEntryCount() const;

 private:
  struct Entry {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Status status;
    Tensor tensor;
  };

  AtomSliceCache() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::weak_ptr<Entry>> entries_;
};

}  // namespace ucp

#endif  // UCP_SRC_UCP_SLICE_CACHE_H_
