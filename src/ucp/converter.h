// The Algorithm-1 driver: converts a native distributed checkpoint (or a foreign DDP-style
// checkpoint) into a UCP atom-checkpoint directory. Conversion is lazy and on-demand — it
// runs only when a strategy/hardware change is detected (or requested), so checkpoint
// *saving* carries zero extra cost (paper §3.1).

#ifndef UCP_SRC_UCP_CONVERTER_H_
#define UCP_SRC_UCP_CONVERTER_H_

#include <string>

#include "src/ucp/atom.h"
#include "src/ucp/ops.h"

namespace ucp {

struct ConvertOptions {
  // Worker threads for the Extract and Union phases (Table 2: more parallelism is faster
  // but more memory-intensive). 0 = run inline on the caller's thread.
  int num_threads = 4;
  // Override the pattern library (e.g. parsed from a user-written spec); nullptr selects
  // PatternLibrary::ForStrategy for the checkpoint's source strategy.
  const PatternLibrary* library = nullptr;
};

struct ConvertStats {
  int model_ranks_extracted = 0;
  int atoms_written = 0;
  double extract_seconds = 0.0;
  double union_seconds = 0.0;
  // Checkpoint bytes consumed / produced; feed into ModeledTransferSeconds to project what
  // the conversion would cost on real storage (the DeepNVMe substitution — see DESIGN.md).
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
};

// Transfer time of `bytes` on a device with the given sequential bandwidth and fixed
// per-file latency — the simulator's stand-in for DeepNVMe's near-peak sequential reads.
// Defaults approximate one NVMe drive (3.2 GB/s, 100 us/file).
double ModeledTransferSeconds(int64_t bytes, int num_files,
                              double bandwidth_bytes_per_sec = 3.2e9,
                              double per_file_latency_sec = 1e-4);

// Native distributed checkpoint -> UCP. `ckpt_dir`/`tag` locate the source; `ucp_dir` is
// created (must not already contain a UCP checkpoint).
Result<ConvertStats> ConvertToUcp(const std::string& ckpt_dir, const std::string& tag,
                                  const std::string& ucp_dir,
                                  const ConvertOptions& options = {});

// Foreign (DDP-style consolidated) checkpoint -> UCP. Every parameter is already
// consolidated, so each becomes an atom directly (pattern: unique_params).
Result<ConvertStats> ConvertForeignToUcp(const std::string& foreign_dir,
                                         const std::string& tag, const std::string& ucp_dir,
                                         const ConvertOptions& options = {});

}  // namespace ucp

#endif  // UCP_SRC_UCP_CONVERTER_H_
