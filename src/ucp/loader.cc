#include "src/ucp/loader.h"

#include <algorithm>

#include "src/common/fs.h"

namespace ucp {

namespace {
int64_t AlignUp(int64_t value, int64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}
}  // namespace

Json RankLoadPlan::ToJson() const {
  JsonObject obj;
  obj["flat_layout"] = layout.ToJson();
  obj["partition_offset"] = partition_offset;
  obj["partition_numel"] = partition_numel;
  JsonArray assigns;
  for (const AtomAssignment& a : assignments) {
    JsonObject item;
    item["name"] = a.name;
    item["flat_offset"] = a.flat_offset;
    JsonArray shape;
    for (int64_t d : a.shard_shape) {
      shape.push_back(Json(d));
    }
    item["shard_shape"] = Json(std::move(shape));
    item["partition_kind"] = PartitionKindName(a.target_spec.kind);
    item["partition_dim"] = a.target_spec.dim;
    assigns.push_back(Json(std::move(item)));
  }
  obj["assignments"] = Json(std::move(assigns));
  return Json(std::move(obj));
}

RankLoadPlan GenUcpMetadata(const ModelConfig& model, const ParallelConfig& target,
                            const RankCoord& coord) {
  RankLoadPlan plan;
  std::vector<InventoryEntry> inventory = BuildInventory(model);
  std::vector<InventoryEntry> mine = StageEntries(inventory, model, coord.pp, target.pp);

  int64_t offset = 0;
  for (const InventoryEntry& entry : mine) {
    PartitionSpec spec = EffectiveSpec(entry, target);
    Shape shard_shape = ShardShape(spec, entry.param.full_shape, target.tp);

    AtomAssignment assignment;
    assignment.name = entry.param.name;
    assignment.flat_offset = offset;
    assignment.shard_shape = shard_shape;
    assignment.target_spec = spec;
    plan.assignments.push_back(std::move(assignment));

    FlatSegment seg;
    seg.name = entry.param.name;
    seg.offset = offset;
    seg.numel = ShapeNumel(shard_shape);
    seg.shape = shard_shape;
    seg.decay = entry.param.decay;
    seg.norm_counts = NormCounts(entry, model, target, coord);
    plan.layout.segments.push_back(std::move(seg));
    offset += ShapeNumel(shard_shape);
  }

  plan.layout.total = offset;
  // Re-introduce the alignment padding the target's ZeRO partitioning requires — the
  // inverse of StripPadding (paper: "Padding is also introduced when calculating the
  // partition information").
  plan.layout.padded_total =
      AlignUp(std::max<int64_t>(offset, 1), static_cast<int64_t>(target.dp) * kZeroAlignment);
  plan.layout.partition_size = plan.layout.padded_total / target.dp;

  if (target.zero_stage == 0) {
    plan.partition_offset = 0;
    plan.partition_numel = plan.layout.padded_total;
  } else {
    plan.partition_offset = static_cast<int64_t>(coord.dp) * plan.layout.partition_size;
    plan.partition_numel = plan.layout.partition_size;
  }
  return plan;
}

namespace {

struct UcpLocalState {
  Tensor master;
  Tensor exp_avg;
  Tensor exp_avg_sq;
  int64_t steps = 0;
};

// Per-rank phase: planning, atom reads, flat assembly — no collectives (failures here must
// not strand peers; see the agreement in LoadUcpCheckpoint).
Result<UcpLocalState> LoadUcpLocal(const std::string& ucp_dir, RankTrainer& trainer) {
  // A metadata file without the converter's `complete` marker is an aborted conversion:
  // atoms may be missing or half-written even though the manifest parses.
  if (FileExists(PathJoin(ucp_dir, "ucp_meta.json")) && !IsUcpComplete(ucp_dir)) {
    return DataLossError("UCP checkpoint at " + ucp_dir +
                         " is not committed (missing 'complete' marker)");
  }
  UCP_ASSIGN_OR_RETURN(UcpMeta meta, ReadUcpMeta(ucp_dir));
  if (!SameLogicalModel(meta.model, trainer.config().model)) {
    return FailedPreconditionError(
        "UCP checkpoint was produced by a different model architecture");
  }

  const RankCoord& coord = trainer.coord();
  const ParallelConfig& target = trainer.config().strategy;
  // Plan against the trainer's config (its sharding-mode preferences decide the target
  // partitioning; the atoms themselves are mode-agnostic).
  RankLoadPlan plan = GenUcpMetadata(trainer.config().model, target, coord);

  // Cross-check the plan against the live optimizer layout; a mismatch means the planner
  // and the runtime disagree about the model, which must never pass silently.
  const FlatLayout& live = trainer.optimizer().layout();
  if (live.padded_total != plan.layout.padded_total ||
      live.segments.size() != plan.layout.segments.size()) {
    return InternalError("GenUcpMetadata plan does not match the live optimizer layout");
  }
  for (size_t i = 0; i < live.segments.size(); ++i) {
    if (live.segments[i].name != plan.layout.segments[i].name ||
        live.segments[i].offset != plan.layout.segments[i].offset ||
        live.segments[i].numel != plan.layout.segments[i].numel) {
      return InternalError("GenUcpMetadata segment mismatch at " + live.segments[i].name);
    }
  }

  // Assemble the full flat buffers from atom slices. Working memory could be reduced by
  // filling only [partition_offset, partition_offset + partition_numel), but at simulator
  // scale clarity wins; the partition is sliced at the end.
  Tensor flat_fp32 = Tensor::Zeros({plan.layout.padded_total});
  Tensor flat_m = Tensor::Zeros({plan.layout.padded_total});
  Tensor flat_v = Tensor::Zeros({plan.layout.padded_total});

  for (const AtomAssignment& a : plan.assignments) {
    UCP_ASSIGN_OR_RETURN(ParamState atom, ReadAtom(ucp_dir, a.name));
    Tensor fp32_shard = ShardOf(a.target_spec, atom.fp32, target.tp, coord.tp);
    Tensor m_shard = ShardOf(a.target_spec, atom.exp_avg, target.tp, coord.tp);
    Tensor v_shard = ShardOf(a.target_spec, atom.exp_avg_sq, target.tp, coord.tp);
    if (fp32_shard.shape() != a.shard_shape) {
      return DataLossError("atom " + a.name + " yields shard " +
                           ShapeToString(fp32_shard.shape()) + ", plan expects " +
                           ShapeToString(a.shard_shape));
    }
    Tensor::ViewOf(flat_fp32, a.flat_offset, {fp32_shard.numel()})
        .CopyFrom(fp32_shard.Flatten());
    Tensor::ViewOf(flat_m, a.flat_offset, {m_shard.numel()}).CopyFrom(m_shard.Flatten());
    Tensor::ViewOf(flat_v, a.flat_offset, {v_shard.numel()}).CopyFrom(v_shard.Flatten());
  }

  UcpLocalState state;
  state.master = flat_fp32.Narrow(0, plan.partition_offset, plan.partition_numel);
  state.exp_avg = flat_m.Narrow(0, plan.partition_offset, plan.partition_numel);
  state.exp_avg_sq = flat_v.Narrow(0, plan.partition_offset, plan.partition_numel);
  state.steps = meta.iteration;
  return state;
}

}  // namespace

Status LoadUcpCheckpoint(const std::string& ucp_dir, RankTrainer& trainer) {
  Result<UcpLocalState> local = LoadUcpLocal(ucp_dir, trainer);
  // Collective agreement before LoadState's DP all-gather (same rationale as the native
  // loader): every rank reaches this reduction, so one rank's failure fails all ranks
  // instead of deadlocking the collective.
  double peer_failed =
      trainer.groups().world.AllReduceMaxScalar(local.ok() ? 0.0 : 1.0);
  if (!local.ok()) {
    return local.status();
  }
  if (peer_failed > 0.0) {
    return DataLossError("aborting UCP load: a peer rank failed to read the checkpoint");
  }
  return trainer.optimizer().LoadState(local->master, local->exp_avg, local->exp_avg_sq,
                                       local->steps);
}

}  // namespace ucp
