#include "src/ucp/loader.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <optional>

#include "src/common/fs.h"
#include "src/common/thread_pool.h"
#include "src/store/local_store.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/tensor_file.h"
#include "src/ucp/slice_cache.h"

namespace ucp {

namespace {
int64_t AlignUp(int64_t value, int64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}
}  // namespace

Json RankLoadPlan::ToJson() const {
  JsonObject obj;
  obj["flat_layout"] = layout.ToJson();
  obj["partition_offset"] = partition_offset;
  obj["partition_numel"] = partition_numel;
  JsonArray assigns;
  for (const AtomAssignment& a : assignments) {
    JsonObject item;
    item["name"] = a.name;
    item["flat_offset"] = a.flat_offset;
    JsonArray full_shape;
    for (int64_t d : a.full_shape) {
      full_shape.push_back(Json(d));
    }
    item["full_shape"] = Json(std::move(full_shape));
    JsonArray shape;
    for (int64_t d : a.shard_shape) {
      shape.push_back(Json(d));
    }
    item["shard_shape"] = Json(std::move(shape));
    item["partition_kind"] = PartitionKindName(a.target_spec.kind);
    item["partition_dim"] = a.target_spec.dim;
    assigns.push_back(Json(std::move(item)));
  }
  obj["assignments"] = Json(std::move(assigns));
  return Json(std::move(obj));
}

RankLoadPlan GenUcpMetadata(const ModelConfig& model, const ParallelConfig& target,
                            const RankCoord& coord) {
  RankLoadPlan plan;
  std::vector<InventoryEntry> inventory = BuildInventory(model);
  std::vector<InventoryEntry> mine = StageEntries(inventory, model, coord.pp, target.pp);

  int64_t offset = 0;
  for (const InventoryEntry& entry : mine) {
    PartitionSpec spec = EffectiveSpec(entry, target);
    Shape shard_shape = ShardShape(spec, entry.param.full_shape, target.tp);

    AtomAssignment assignment;
    assignment.name = entry.param.name;
    assignment.flat_offset = offset;
    assignment.full_shape = entry.param.full_shape;
    assignment.shard_shape = shard_shape;
    assignment.target_spec = spec;
    plan.assignments.push_back(std::move(assignment));

    FlatSegment seg;
    seg.name = entry.param.name;
    seg.offset = offset;
    seg.numel = ShapeNumel(shard_shape);
    seg.shape = shard_shape;
    seg.decay = entry.param.decay;
    seg.norm_counts = NormCounts(entry, model, target, coord);
    plan.layout.segments.push_back(std::move(seg));
    offset += ShapeNumel(shard_shape);
  }

  plan.layout.total = offset;
  // Re-introduce the alignment padding the target's ZeRO partitioning requires — the
  // inverse of StripPadding (paper: "Padding is also introduced when calculating the
  // partition information").
  plan.layout.padded_total =
      AlignUp(std::max<int64_t>(offset, 1), static_cast<int64_t>(target.dp) * kZeroAlignment);
  plan.layout.partition_size = plan.layout.padded_total / target.dp;

  if (target.zero_stage == 0) {
    plan.partition_offset = 0;
    plan.partition_numel = plan.layout.padded_total;
  } else {
    plan.partition_offset = static_cast<int64_t>(coord.dp) * plan.layout.partition_size;
    plan.partition_numel = plan.layout.partition_size;
  }
  return plan;
}

namespace {

struct UcpLocalState {
  Tensor master;
  Tensor exp_avg;
  Tensor exp_avg_sq;
  int64_t steps = 0;
};

constexpr const char* kStateFiles[3] = {"fp32", "exp_avg", "exp_avg_sq"};

// Reads the parts of one atom state file that land inside this rank's partition, directly
// into the partition buffer. `want_lo`/`want_hi` bound the wanted range in shard-flat
// coordinates; `runs` maps shard-flat to file-flat ranges. Each run clips to the wanted
// window and becomes one contiguous range read (dim-0 shards: a single run; dim>0 shards: a
// strided gather). The TensorFileView opens lazily — with a warm slice cache a fully
// deduplicated task never touches the file.
Status ReadAssignedSlices(Store& store, const std::string& rel, const AtomAssignment& a,
                          const std::vector<ShardRun>& runs, int64_t want_lo,
                          int64_t want_hi, int64_t partition_offset, float* partition_data,
                          bool use_cache,
                          std::vector<std::shared_ptr<const Tensor>>& keepalive) {
  std::optional<TensorFileView> view;
  auto ensure_view = [&]() -> Status {
    if (view.has_value()) {
      return OkStatus();
    }
    UCP_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> source, store.OpenRead(rel));
    UCP_ASSIGN_OR_RETURN(TensorFileView opened, TensorFileView::Open(std::move(source)));
    if (opened.info().shape != a.full_shape) {
      return DataLossError("atom file " + rel + " has shape " +
                           ShapeToString(opened.info().shape) + ", plan expects " +
                           ShapeToString(a.full_shape));
    }
    view.emplace(std::move(opened));
    return OkStatus();
  };

  for (const ShardRun& run : runs) {
    const int64_t lo = std::max(run.shard_offset, want_lo);
    const int64_t hi = std::min(run.shard_offset + run.numel, want_hi);
    if (lo >= hi) {
      continue;
    }
    const int64_t file_begin = run.full_offset + (lo - run.shard_offset);
    const int64_t count = hi - lo;
    float* out = partition_data + (a.flat_offset + lo - partition_offset);
    if (use_cache) {
      // Ranks that differ only in TP (and, under ZeRO-0, DP) build identical keys for
      // replicated atoms, so the first one reads and the rest copy. CacheKey keeps
      // LocalStore keys identical to the historical absolute-path keys.
      std::string key = store.CacheKey(rel) + "#" + std::to_string(file_begin) + "+" +
                        std::to_string(count);
      UCP_ASSIGN_OR_RETURN(
          std::shared_ptr<const Tensor> slice,
          AtomSliceCache::Global().GetOrLoad(key, [&]() -> Result<Tensor> {
            UCP_RETURN_IF_ERROR(ensure_view());
            Tensor t = Tensor::Zeros({count});
            UCP_RETURN_IF_ERROR(view->ReadElements(file_begin, count, t.data()));
            return t;
          }));
      std::memcpy(out, slice->data(), static_cast<size_t>(count) * sizeof(float));
      keepalive.push_back(std::move(slice));
    } else {
      UCP_RETURN_IF_ERROR(ensure_view());
      UCP_RETURN_IF_ERROR(view->ReadElements(file_begin, count, out));
    }
  }
  return OkStatus();
}

// Per-rank phase: planning, atom reads, flat assembly — no collectives (failures here must
// not strand peers; see the agreement in LoadUcpCheckpoint).
Result<UcpLocalState> LoadUcpLocal(Store& store, const std::string& ucp_rel,
                                   RankTrainer& trainer, const UcpLoadOptions& options) {
  // A metadata file without the converter's `complete` marker is an aborted conversion:
  // atoms may be missing or half-written even though the manifest parses.
  Result<bool> has_meta = store.Exists(JoinRel(ucp_rel, "ucp_meta.json"));
  if (has_meta.ok() && *has_meta && !IsUcpComplete(store, ucp_rel)) {
    return DataLossError("UCP checkpoint at " + JoinRel(store.Describe(), ucp_rel) +
                         " is not committed (missing 'complete' marker)");
  }
  UCP_ASSIGN_OR_RETURN(UcpMeta meta, ReadUcpMeta(store, ucp_rel));
  if (!SameLogicalModel(meta.model, trainer.config().model)) {
    return FailedPreconditionError(
        "UCP checkpoint was produced by a different model architecture");
  }

  const RankCoord& coord = trainer.coord();
  const ParallelConfig& target = trainer.config().strategy;
  // Plan against the trainer's config (its sharding-mode preferences decide the target
  // partitioning; the atoms themselves are mode-agnostic).
  RankLoadPlan plan = GenUcpMetadata(trainer.config().model, target, coord);

  // Cross-check the plan against the live optimizer layout; a mismatch means the planner
  // and the runtime disagree about the model, which must never pass silently.
  const FlatLayout& live = trainer.optimizer().layout();
  if (live.padded_total != plan.layout.padded_total ||
      live.segments.size() != plan.layout.segments.size()) {
    return InternalError("GenUcpMetadata plan does not match the live optimizer layout");
  }
  for (size_t i = 0; i < live.segments.size(); ++i) {
    if (live.segments[i].name != plan.layout.segments[i].name ||
        live.segments[i].offset != plan.layout.segments[i].offset ||
        live.segments[i].numel != plan.layout.segments[i].numel) {
      return InternalError("GenUcpMetadata segment mismatch at " + live.segments[i].name);
    }
  }

  if (!options.sliced) {
    // Reference arm: whole-file atom reads, full padded flat assembly, partition sliced at
    // the end. Kept for bit-exactness testing and as the BENCH_load_cost serial baseline.
    Tensor flat_fp32 = Tensor::Zeros({plan.layout.padded_total});
    Tensor flat_m = Tensor::Zeros({plan.layout.padded_total});
    Tensor flat_v = Tensor::Zeros({plan.layout.padded_total});

    for (const AtomAssignment& a : plan.assignments) {
      UCP_TRACE_SPAN_ARGS("ucp.load.atom", ::ucp::obs::TraceArgs().S("atom", a.name));
      UCP_ASSIGN_OR_RETURN(ParamState atom, ReadAtom(store, ucp_rel, a.name));
      Tensor fp32_shard = ShardOf(a.target_spec, atom.fp32, target.tp, coord.tp);
      Tensor m_shard = ShardOf(a.target_spec, atom.exp_avg, target.tp, coord.tp);
      Tensor v_shard = ShardOf(a.target_spec, atom.exp_avg_sq, target.tp, coord.tp);
      if (fp32_shard.shape() != a.shard_shape) {
        return DataLossError("atom " + a.name + " yields shard " +
                             ShapeToString(fp32_shard.shape()) + ", plan expects " +
                             ShapeToString(a.shard_shape));
      }
      Tensor::ViewOf(flat_fp32, a.flat_offset, {fp32_shard.numel()})
          .CopyFrom(fp32_shard.Flatten());
      Tensor::ViewOf(flat_m, a.flat_offset, {m_shard.numel()}).CopyFrom(m_shard.Flatten());
      Tensor::ViewOf(flat_v, a.flat_offset, {v_shard.numel()}).CopyFrom(v_shard.Flatten());
    }

    UcpLocalState state;
    state.master = flat_fp32.Narrow(0, plan.partition_offset, plan.partition_numel);
    state.exp_avg = flat_m.Narrow(0, plan.partition_offset, plan.partition_numel);
    state.exp_avg_sq = flat_v.Narrow(0, plan.partition_offset, plan.partition_numel);
    state.steps = meta.iteration;
    return state;
  }

  // Sliced arm: allocate only this rank's partition (padding stays zero, matching the
  // reference arm bit-for-bit) and read just the atom ranges that intersect it.
  const int64_t p0 = plan.partition_offset;
  const int64_t p1 = plan.partition_offset + plan.partition_numel;
  UcpLocalState state;
  state.master = Tensor::Zeros({plan.partition_numel});
  state.exp_avg = Tensor::Zeros({plan.partition_numel});
  state.exp_avg_sq = Tensor::Zeros({plan.partition_numel});
  state.steps = meta.iteration;
  float* buffers[3] = {state.master.data(), state.exp_avg.data(), state.exp_avg_sq.data()};

  // One task per (intersecting assignment) × (fp32 | exp_avg | exp_avg_sq) file; the shard
  // runs are computed once per assignment and shared by its three tasks.
  struct SliceTask {
    const AtomAssignment* assignment = nullptr;
    const std::vector<ShardRun>* runs = nullptr;
    int64_t want_lo = 0;  // in shard-flat coordinates
    int64_t want_hi = 0;
    int state_index = 0;  // indexes kStateFiles / buffers
  };
  std::vector<std::vector<ShardRun>> all_runs;
  all_runs.reserve(plan.assignments.size());
  std::vector<SliceTask> tasks;
  for (const AtomAssignment& a : plan.assignments) {
    const int64_t shard_numel = ShapeNumel(a.shard_shape);
    const int64_t lo = std::max<int64_t>(0, p0 - a.flat_offset);
    const int64_t hi = std::min<int64_t>(shard_numel, p1 - a.flat_offset);
    if (lo >= hi) {
      continue;  // atom wholly outside this rank's partition: skipped, never opened
    }
    all_runs.push_back(ShardRuns(a.target_spec, a.full_shape, target.tp, coord.tp));
    for (int s = 0; s < 3; ++s) {
      SliceTask task;
      task.assignment = &a;
      task.runs = &all_runs.back();
      task.want_lo = lo;
      task.want_hi = hi;
      task.state_index = s;
      tasks.push_back(task);
    }
  }

  std::vector<Status> results(tasks.size());
  // Keepalives pin cached slices until every co-located rank has had a chance to hit them;
  // per-task vectors so worker threads never share one.
  std::vector<std::vector<std::shared_ptr<const Tensor>>> keepalive(tasks.size());
  ThreadPool pool(static_cast<size_t>(std::max(options.num_threads, 0)));
  pool.ParallelFor(tasks.size(), [&](size_t i) {
    const SliceTask& t = tasks[i];
    const AtomAssignment& a = *t.assignment;
    UCP_TRACE_SPAN_ARGS("ucp.load.slice", ::ucp::obs::TraceArgs()
                                              .S("atom", a.name)
                                              .S("state", kStateFiles[t.state_index])
                                              .I("numel", t.want_hi - t.want_lo));
    std::string rel = JoinRel(AtomRel(ucp_rel, a.name), kStateFiles[t.state_index]);
    results[i] = ReadAssignedSlices(store, rel, a, *t.runs, t.want_lo, t.want_hi, p0,
                                    buffers[t.state_index], options.use_slice_cache,
                                    keepalive[i]);
  });
  for (const Status& s : results) {
    UCP_RETURN_IF_ERROR(s);
  }
  return state;
}

}  // namespace

Status LoadUcpCheckpoint(const std::string& ucp_dir, RankTrainer& trainer) {
  return LoadUcpCheckpoint(ucp_dir, trainer, UcpLoadOptions{});
}

Status LoadUcpCheckpoint(const std::string& ucp_dir, RankTrainer& trainer,
                         const UcpLoadOptions& options) {
  LocalStore store(ucp_dir);
  return LoadUcpCheckpoint(store, "", trainer, options);
}

Status LoadUcpCheckpoint(Store& store, const std::string& ucp_rel, RankTrainer& trainer,
                         const UcpLoadOptions& options) {
  UCP_TRACE_NAMED_SPAN(span, "ucp.load");
  UCP_TRACE_SPAN_ARG_S(span, "mode", options.sliced ? "sliced" : "serial");
  static obs::Counter& loads = obs::MetricsRegistry::Global().GetCounter("ucp.loads");
  static obs::Histogram& load_seconds =
      obs::MetricsRegistry::Global().GetHistogram("ucp.load.seconds");
  const auto load_start = std::chrono::steady_clock::now();
  Result<UcpLocalState> local = LoadUcpLocal(store, ucp_rel, trainer, options);
  // Collective agreement before LoadState's DP all-gather (same rationale as the native
  // loader): every rank reaches this reduction, so one rank's failure fails all ranks
  // instead of deadlocking the collective.
  double peer_failed =
      trainer.groups().world.AllReduceMaxScalar(local.ok() ? 0.0 : 1.0);
  if (!local.ok()) {
    return local.status();
  }
  if (peer_failed > 0.0) {
    return DataLossError("aborting UCP load: a peer rank failed to read the checkpoint");
  }
  UCP_RETURN_IF_ERROR(trainer.optimizer().LoadState(local->master, local->exp_avg,
                                                    local->exp_avg_sq, local->steps));
  loads.Add(1);
  load_seconds.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - load_start).count());
  return OkStatus();
}

}  // namespace ucp
