// Checkpoint validation ("fsck" for checkpoints): structural and integrity checks for both
// native distributed checkpoints and UCP atom directories. Used by `ucp_tool validate` and
// by operators before committing to a long resume.

#ifndef UCP_SRC_UCP_VALIDATE_H_
#define UCP_SRC_UCP_VALIDATE_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace ucp {

struct ValidationReport {
  bool ok() const { return problems.empty(); }
  std::vector<std::string> problems;  // human-readable findings; empty = clean
  int files_checked = 0;
  int64_t bytes_checked = 0;

  std::string ToString() const;
};

struct ValidateOptions {
  // deep = verify every payload CRC (chunked for format v3). false ("--fast") trusts the
  // header CRCs only — structure and shapes are still checked, but payload bit rot past the
  // headers goes unnoticed; use it for quick pre-resume sanity sweeps, not for audits.
  bool deep = true;
  // Per-file checks fan out on a ThreadPool; 0 runs them inline.
  int num_threads = 4;
};

// Native distributed checkpoint: metadata parses; every expected shard file (per the saved
// strategy) exists, passes its CRC, and carries tensors consistent with the flat-layout
// metadata; flat layouts agree across DP partitions.
Result<ValidationReport> ValidateNativeCheckpoint(const std::string& dir,
                                                  const std::string& tag,
                                                  const ValidateOptions& options = {});

// UCP atom directory: the manifest parses; every listed atom has its three state tensors
// with matching shapes and CRCs; atom shapes match the model inventory; no inventory
// parameter is missing.
Result<ValidationReport> ValidateUcpCheckpoint(const std::string& ucp_dir,
                                               const ValidateOptions& options = {});

// Whole-tree integrity check ("ucp_tool fsck"). `path` is either a UCP atom directory
// (detected by ucp_meta.json / atoms/) or a checkpoint root holding global_stepN tags; in
// the latter case every tag and every cached <tag>.ucp dir is validated, the `latest`
// pointer is cross-checked, and stale `.staging` debris is reported. With `quarantine`,
// damaged tags/UCP dirs are renamed aside to `<name>.quarantined` — a name tag listing
// ignores — so resumes fall back to intact checkpoints.
struct FsckReport {
  struct Entry {
    std::string name;  // tag name, UCP dir name, or the path itself in UCP-dir mode
    ValidationReport report;
  };
  std::vector<Entry> entries;
  std::vector<std::string> notes;        // dangling `latest`, stale staging dirs, ...
  std::vector<std::string> quarantined;  // paths renamed to <name>.quarantined
  int quarantine_failures = 0;           // damaged entries that could not be renamed aside

  bool clean() const;  // no per-entry problems and no notes
  std::string ToString() const;

  // One-line outcome for `ucp_tool fsck --quarantine`: how many entries were renamed aside
  // (and to where), how many quarantines failed, how many intact entries remain.
  std::string QuarantineSummary() const;

  // CLI exit code. Without quarantine: 0 clean / 1 problems (unchanged behavior). With
  // quarantine: 0 clean (nothing to do), 1 repaired (all damage renamed aside or removed,
  // usable state remains), 2 unrecoverable (a quarantine failed, or every checkpoint entry
  // was damaged so nothing resumable is left).
  int ExitCode(bool quarantine_mode) const;
};

struct FsckOptions {
  bool quarantine = false;
  bool fast = false;  // header-only integrity (ValidateOptions::deep = false)
  int num_threads = 4;
};

Result<FsckReport> Fsck(const std::string& path, const FsckOptions& options);

inline Result<FsckReport> Fsck(const std::string& path, bool quarantine) {
  FsckOptions options;
  options.quarantine = quarantine;
  return Fsck(path, options);
}

}  // namespace ucp

#endif  // UCP_SRC_UCP_VALIDATE_H_
