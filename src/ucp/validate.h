// Checkpoint validation ("fsck" for checkpoints): structural and integrity checks for both
// native distributed checkpoints and UCP atom directories. Used by `ucp_tool validate` and
// by operators before committing to a long resume.

#ifndef UCP_SRC_UCP_VALIDATE_H_
#define UCP_SRC_UCP_VALIDATE_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace ucp {

struct ValidationReport {
  bool ok() const { return problems.empty(); }
  std::vector<std::string> problems;  // human-readable findings; empty = clean
  int files_checked = 0;
  int64_t bytes_checked = 0;

  std::string ToString() const;
};

// Native distributed checkpoint: metadata parses; every expected shard file (per the saved
// strategy) exists, passes its CRC, and carries tensors consistent with the flat-layout
// metadata; flat layouts agree across DP partitions.
Result<ValidationReport> ValidateNativeCheckpoint(const std::string& dir,
                                                  const std::string& tag);

// UCP atom directory: the manifest parses; every listed atom has its three state tensors
// with matching shapes and CRCs; atom shapes match the model inventory; no inventory
// parameter is missing.
Result<ValidationReport> ValidateUcpCheckpoint(const std::string& ucp_dir);

}  // namespace ucp

#endif  // UCP_SRC_UCP_VALIDATE_H_
