#include "src/ucp/slice_cache.h"

namespace ucp {

AtomSliceCache& AtomSliceCache::Global() {
  static AtomSliceCache* cache = new AtomSliceCache();
  return *cache;
}

Result<std::shared_ptr<const Tensor>> AtomSliceCache::GetOrLoad(
    const std::string& key, const std::function<Result<Tensor>()>& load) {
  std::shared_ptr<Entry> entry;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      entry = it->second.lock();
    }
    if (entry == nullptr) {
      entry = std::make_shared<Entry>();
      entries_[key] = entry;
      owner = true;
      ++misses_;
      // Opportunistic prune: drop map slots whose entries every owner has released. Bounds
      // the map without an eviction policy (lifetime is the refcount, see header).
      if (entries_.size() % 64 == 0) {
        for (auto e = entries_.begin(); e != entries_.end();) {
          e = e->second.expired() ? entries_.erase(e) : std::next(e);
        }
      }
    } else {
      ++hits_;
    }
  }

  if (owner) {
    Result<Tensor> loaded = load();
    {
      std::lock_guard<std::mutex> lock(entry->mutex);
      if (loaded.ok()) {
        entry->tensor = std::move(*loaded);
      } else {
        entry->status = loaded.status();
      }
      entry->done = true;
    }
    entry->cv.notify_all();
    if (!entry->status.ok()) {
      // Don't leave a poisoned entry behind; a later caller should retry the read.
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second.lock() == entry) {
        entries_.erase(it);
      }
      return entry->status;
    }
  } else {
    std::unique_lock<std::mutex> lock(entry->mutex);
    entry->cv.wait(lock, [&] { return entry->done; });
    if (!entry->status.ok()) {
      return entry->status;
    }
  }
  // Aliasing pointer: owns the Entry, points at its tensor, so the cache slot stays live
  // exactly as long as some caller holds the slice.
  return std::shared_ptr<const Tensor>(entry, &entry->tensor);
}

AtomSliceCache::Stats AtomSliceCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  return s;
}

void AtomSliceCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  hits_ = 0;
  misses_ = 0;
}

}  // namespace ucp
