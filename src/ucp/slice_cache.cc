#include "src/ucp/slice_cache.h"

#include "src/obs/metrics.h"

namespace ucp {

namespace {

obs::Counter& HitsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("ucp.slice_cache.hits");
  return c;
}

obs::Counter& MissesCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("ucp.slice_cache.misses");
  return c;
}

}  // namespace

AtomSliceCache& AtomSliceCache::Global() {
  static AtomSliceCache* cache = new AtomSliceCache();
  return *cache;
}

Result<std::shared_ptr<const Tensor>> AtomSliceCache::GetOrLoad(
    const std::string& key, const std::function<Result<Tensor>()>& load) {
  std::shared_ptr<Entry> entry;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      entry = it->second.lock();
    }
    if (entry == nullptr) {
      entry = std::make_shared<Entry>();
      entries_[key] = entry;
      owner = true;
      MissesCounter().Add(1);
      // Opportunistic prune: drop map slots whose entries every owner has released. Bounds
      // the map without an eviction policy (lifetime is the refcount, see header).
      if (entries_.size() % 64 == 0) {
        for (auto e = entries_.begin(); e != entries_.end();) {
          e = e->second.expired() ? entries_.erase(e) : std::next(e);
        }
      }
    } else {
      HitsCounter().Add(1);
    }
  }

  if (owner) {
    Result<Tensor> loaded = load();
    {
      std::lock_guard<std::mutex> lock(entry->mutex);
      if (loaded.ok()) {
        entry->tensor = std::move(*loaded);
      } else {
        entry->status = loaded.status();
      }
      entry->done = true;
    }
    entry->cv.notify_all();
    if (!entry->status.ok()) {
      // Don't leave a poisoned entry behind; a later caller should retry the read.
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second.lock() == entry) {
        entries_.erase(it);
      }
      return entry->status;
    }
  } else {
    std::unique_lock<std::mutex> lock(entry->mutex);
    entry->cv.wait(lock, [&] { return entry->done; });
    if (!entry->status.ok()) {
      return entry->status;
    }
  }
  // Aliasing pointer: owns the Entry, points at its tensor, so the cache slot stays live
  // exactly as long as some caller holds the slice.
  return std::shared_ptr<const Tensor>(entry, &entry->tensor);
}

size_t AtomSliceCache::EntryCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t AtomSliceCache::LiveEntryCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t live = 0;
  for (const auto& [key, weak] : entries_) {
    live += weak.expired() ? 0 : 1;
  }
  return live;
}

AtomSliceCache::Stats AtomSliceCache::stats() const {
  Stats s;
  s.hits = HitsCounter().Value();
  s.misses = MissesCounter().Value();
  return s;
}

void AtomSliceCache::ResetStats() {
  HitsCounter().Reset();
  MissesCounter().Reset();
}

}  // namespace ucp
