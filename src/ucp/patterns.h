// The UCP language: declarative parameter patterns (paper §3.2, Table 1).
//
// A PatternLibrary is an ordered list of rules binding glob patterns over parameter names to
// one of the four parameter patterns:
//
//   unique_params      — the parameter exists on exactly one rank (ZeRO-1/2 partitions, PP
//                        stages, any non-sharded parameter when TP/SP are off)
//   replicated_params  — identical copies on several ranks (TP-replicated norms and biases,
//                        tied embeddings across pipeline stages); union picks one copy and
//                        verifies the replicas agree
//   fragment_params    — split along a dimension; sub-patterns (Fig. 5) carry the partition
//                        dim and optional variable-size sections (fused GQA QKV) and handle
//                        n-d tensors (3-d MoE expert weights)
//   params_to_average  — replicas updated independently (sequence-parallel norms); union
//                        averages them
//
// Libraries can be written three ways, all equivalent:
//   1. the fluent C++ builder (the paper's "language-integrated programming interface"),
//   2. a plain-text spec (FromSpec/ToSpec) for out-of-process tooling,
//   3. generated from a model's inventory for a given source strategy (ForStrategy).

#ifndef UCP_SRC_UCP_PATTERNS_H_
#define UCP_SRC_UCP_PATTERNS_H_

#include <string>
#include <vector>

#include "src/model/inventory.h"

namespace ucp {

enum class ParamPattern : uint8_t {
  kUniqueParams = 0,
  kReplicatedParams = 1,
  kFragmentParams = 2,
  kParamsToAverage = 3,
};

const char* ParamPatternName(ParamPattern pattern);
Result<ParamPattern> ParamPatternFromName(const std::string& name);

struct PatternRule {
  ParamPattern pattern = ParamPattern::kUniqueParams;
  std::string glob;
  // fragment_params sub-pattern payload:
  int dim = 0;
  std::vector<int64_t> sections;  // empty = one even-split section

  // The equivalent runtime partition spec (fragment dims/sections carry over).
  PartitionSpec ToPartitionSpec() const;
};

class PatternLibrary {
 public:
  PatternLibrary() = default;

  // Fluent builder; rules are matched in insertion order, first match wins.
  PatternLibrary& UniqueParams(std::string glob);
  PatternLibrary& ReplicatedParams(std::string glob);
  PatternLibrary& FragmentParams(std::string glob, int dim, std::vector<int64_t> sections = {});
  PatternLibrary& ParamsToAverage(std::string glob);

  const std::vector<PatternRule>& rules() const { return rules_; }

  // First matching rule; kNotFound when nothing matches.
  Result<PatternRule> Match(const std::string& param_name) const;

  // --- The textual spec format ---
  // One rule per line:  <pattern> <glob> [dim=<d>] [sections=<a,b,c>]
  // '#' starts a comment. Example:
  //   fragment   language_model.encoder.layers.*.self_attention.query_key_value.weight dim=0 sections=64,16,16
  //   to_average *layernorm.weight
  //   unique     *
  std::string ToSpec() const;
  static Result<PatternLibrary> FromSpec(const std::string& text);

  // The built-in library for a model trained under `source`: derived from the parameter
  // inventory, with per-layer names collapsed to layer globs.
  static PatternLibrary ForStrategy(const ModelConfig& model, const ParallelConfig& source);

 private:
  std::vector<PatternRule> rules_;
};

}  // namespace ucp

#endif  // UCP_SRC_UCP_PATTERNS_H_
