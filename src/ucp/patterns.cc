#include "src/ucp/patterns.h"

#include <algorithm>

#include "src/common/strings.h"

namespace ucp {

const char* ParamPatternName(ParamPattern pattern) {
  switch (pattern) {
    case ParamPattern::kUniqueParams:
      return "unique";
    case ParamPattern::kReplicatedParams:
      return "replicated";
    case ParamPattern::kFragmentParams:
      return "fragment";
    case ParamPattern::kParamsToAverage:
      return "to_average";
  }
  return "unknown";
}

Result<ParamPattern> ParamPatternFromName(const std::string& name) {
  if (name == "unique") {
    return ParamPattern::kUniqueParams;
  }
  if (name == "replicated") {
    return ParamPattern::kReplicatedParams;
  }
  if (name == "fragment") {
    return ParamPattern::kFragmentParams;
  }
  if (name == "to_average") {
    return ParamPattern::kParamsToAverage;
  }
  return InvalidArgumentError("unknown parameter pattern: " + name);
}

PartitionSpec PatternRule::ToPartitionSpec() const {
  switch (pattern) {
    case ParamPattern::kFragmentParams:
      return PartitionSpec::FragmentSections(dim, sections);
    case ParamPattern::kParamsToAverage:
      return PartitionSpec::ToAverage();
    case ParamPattern::kUniqueParams:
    case ParamPattern::kReplicatedParams:
      return PartitionSpec::Replicated();
  }
  UCP_CHECK(false) << "unreachable";
  return PartitionSpec::Replicated();
}

PatternLibrary& PatternLibrary::UniqueParams(std::string glob) {
  rules_.push_back({ParamPattern::kUniqueParams, std::move(glob), 0, {}});
  return *this;
}

PatternLibrary& PatternLibrary::ReplicatedParams(std::string glob) {
  rules_.push_back({ParamPattern::kReplicatedParams, std::move(glob), 0, {}});
  return *this;
}

PatternLibrary& PatternLibrary::FragmentParams(std::string glob, int dim,
                                               std::vector<int64_t> sections) {
  rules_.push_back({ParamPattern::kFragmentParams, std::move(glob), dim,
                    std::move(sections)});
  return *this;
}

PatternLibrary& PatternLibrary::ParamsToAverage(std::string glob) {
  rules_.push_back({ParamPattern::kParamsToAverage, std::move(glob), 0, {}});
  return *this;
}

Result<PatternRule> PatternLibrary::Match(const std::string& param_name) const {
  for (const PatternRule& rule : rules_) {
    if (GlobMatch(rule.glob, param_name)) {
      return rule;
    }
  }
  return NotFoundError("no pattern rule matches parameter: " + param_name);
}

std::string PatternLibrary::ToSpec() const {
  std::string out = "# UCP parameter-pattern spec\n";
  for (const PatternRule& rule : rules_) {
    out += ParamPatternName(rule.pattern);
    out += "\t";
    out += rule.glob;
    if (rule.pattern == ParamPattern::kFragmentParams) {
      out += " dim=" + std::to_string(rule.dim);
      if (!rule.sections.empty()) {
        out += " sections=";
        for (size_t i = 0; i < rule.sections.size(); ++i) {
          if (i > 0) {
            out += ",";
          }
          out += std::to_string(rule.sections[i]);
        }
      }
    }
    out += "\n";
  }
  return out;
}

Result<PatternLibrary> PatternLibrary::FromSpec(const std::string& text) {
  PatternLibrary library;
  int line_number = 0;
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    ++line_number;
    // Strip comments and surrounding whitespace.
    std::string line = raw_line.substr(0, raw_line.find('#'));
    auto is_space = [](char c) { return c == ' ' || c == '\t' || c == '\r'; };
    while (!line.empty() && is_space(line.back())) {
      line.pop_back();
    }
    size_t start = 0;
    while (start < line.size() && is_space(line[start])) {
      ++start;
    }
    line = line.substr(start);
    if (line.empty()) {
      continue;
    }

    // Tokenize on runs of whitespace.
    std::vector<std::string> tokens;
    std::string current;
    for (char c : line) {
      if (is_space(c)) {
        if (!current.empty()) {
          tokens.push_back(std::move(current));
          current.clear();
        }
      } else {
        current += c;
      }
    }
    if (!current.empty()) {
      tokens.push_back(std::move(current));
    }
    if (tokens.size() < 2) {
      return InvalidArgumentError("spec line " + std::to_string(line_number) +
                                  ": expected '<pattern> <glob> [options]'");
    }

    PatternRule rule;
    UCP_ASSIGN_OR_RETURN(rule.pattern, ParamPatternFromName(tokens[0]));
    rule.glob = tokens[1];
    for (size_t i = 2; i < tokens.size(); ++i) {
      const std::string& opt = tokens[i];
      if (StartsWith(opt, "dim=")) {
        rule.dim = std::stoi(opt.substr(4));
      } else if (StartsWith(opt, "sections=")) {
        for (const std::string& piece : StrSplit(opt.substr(9), ',')) {
          if (piece.empty()) {
            return InvalidArgumentError("spec line " + std::to_string(line_number) +
                                        ": empty section size");
          }
          rule.sections.push_back(std::stoll(piece));
        }
      } else {
        return InvalidArgumentError("spec line " + std::to_string(line_number) +
                                    ": unknown option '" + opt + "'");
      }
    }
    if (rule.pattern != ParamPattern::kFragmentParams &&
        (rule.dim != 0 || !rule.sections.empty())) {
      return InvalidArgumentError("spec line " + std::to_string(line_number) +
                                  ": dim/sections only apply to fragment rules");
    }
    library.rules_.push_back(std::move(rule));
  }
  return library;
}

namespace {

// Collapses per-layer parameter names to one glob: "…layers.3.mlp…" -> "…layers.*.mlp…".
std::string LayerGlob(const std::string& name) {
  const std::string prefix = "language_model.encoder.layers.";
  if (!StartsWith(name, prefix)) {
    return name;
  }
  size_t dot = name.find('.', prefix.size());
  if (dot == std::string::npos) {
    return name;
  }
  return prefix + "*" + name.substr(dot);
}

}  // namespace

PatternLibrary PatternLibrary::ForStrategy(const ModelConfig& model,
                                           const ParallelConfig& source) {
  PatternLibrary library;
  std::vector<std::string> seen;
  for (const InventoryEntry& entry : BuildInventory(model)) {
    std::string glob = LayerGlob(entry.param.name);
    if (std::find(seen.begin(), seen.end(), glob) != seen.end()) {
      continue;
    }
    seen.push_back(glob);

    PartitionSpec spec = EffectiveSpec(entry, source);
    switch (spec.kind) {
      case PartitionKind::kToAverage:
        library.ParamsToAverage(std::move(glob));
        break;
      case PartitionKind::kFragment:
        if (source.tp > 1) {
          library.FragmentParams(std::move(glob), spec.dim, spec.sections);
        } else if (source.sp > 1 ||
                   (entry.param.on_first_stage && entry.param.on_last_stage &&
                    source.pp > 1)) {
          // TP off: the would-be fragments are whole copies, replicated across SP and/or
          // the tied first/last pipeline stages.
          library.ReplicatedParams(std::move(glob));
        } else {
          library.UniqueParams(std::move(glob));
        }
        break;
      case PartitionKind::kReplicated:
        if (source.tp > 1 || source.sp > 1 ||
            (entry.param.on_first_stage && entry.param.on_last_stage && source.pp > 1)) {
          library.ReplicatedParams(std::move(glob));
        } else {
          library.UniqueParams(std::move(glob));
        }
        break;
    }
  }
  return library;
}

}  // namespace ucp
