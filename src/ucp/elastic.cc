#include "src/ucp/elastic.h"

#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/common/logging.h"
#include "src/ucp/converter.h"
#include "src/ucp/loader.h"

namespace ucp {

Result<ResumeReport> ResumeElastic(const std::string& dir, RankTrainer& trainer) {
  UCP_ASSIGN_OR_RETURN(std::string tag, ReadLatestTag(dir));
  return ResumeElasticFromTag(dir, tag, trainer);
}

Result<ResumeReport> ResumeElasticFromTag(const std::string& dir, const std::string& tag,
                                          RankTrainer& trainer) {
  ResumeReport report;
  report.tag = tag;
  UCP_ASSIGN_OR_RETURN(CheckpointMeta meta, ReadCheckpointMeta(dir, tag));
  report.iteration = meta.iteration;

  // Fast path: unchanged strategy and hardware — plain distributed load.
  Status native = LoadDistributedCheckpoint(dir, tag, trainer);
  if (native.ok()) {
    report.path = ResumeReport::Path::kNative;
    return report;
  }
  if (native.code() != StatusCode::kFailedPrecondition) {
    return native;  // corruption / missing files are not reshard problems
  }

  // Strategy changed: convert on demand (once — the atom directory is cached beside the
  // checkpoint) and load through UCP.
  const std::string ucp_dir = PathJoin(dir, tag + ".ucp");
  bool cached = FileExists(PathJoin(ucp_dir, "ucp_meta.json"));
  if (trainer.rank() == 0 && !cached) {
    UCP_LOG(Info) << "strategy changed (" << meta.strategy.ToString() << " -> "
                  << trainer.config().strategy.ToString() << "); converting " << tag
                  << " to UCP";
    Result<ConvertStats> stats = ConvertToUcp(dir, tag, ucp_dir);
    if (!stats.ok() && stats.status().code() != StatusCode::kAlreadyExists) {
      // Release peers before reporting failure (they will fail at the load below).
      trainer.groups().world.Barrier();
      return stats.status();
    }
  }
  // Everyone waits for the conversion to land.
  trainer.groups().world.Barrier();

  UCP_RETURN_IF_ERROR(LoadUcpCheckpoint(ucp_dir, trainer));
  report.path = cached ? ResumeReport::Path::kUcpCached : ResumeReport::Path::kUcpConverted;
  return report;
}

}  // namespace ucp
