#include "src/ucp/elastic.h"

#include <chrono>

#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/common/logging.h"
#include "src/obs/trace.h"
#include "src/ucp/converter.h"
#include "src/ucp/loader.h"

namespace ucp {

namespace {

// Failure codes worth retrying on an older tag: damage, absence, or transient unavailability
// of *this* tag's data (kUnavailable is what an exhausted transient-I/O retry surfaces). A
// FailedPrecondition (wrong model architecture, bad format version) would hold for every
// tag, so it aborts the walk instead.
bool RetryOlderTag(StatusCode code) {
  return code == StatusCode::kDataLoss || code == StatusCode::kIoError ||
         code == StatusCode::kNotFound || code == StatusCode::kUnavailable;
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

Result<ResumeReport> ResumeElastic(const std::string& dir, RankTrainer& trainer,
                                   const std::string& job) {
  UCP_TRACE_SPAN("resume.elastic");
  // Resume barriers wait on peers doing unbounded local work (rank 0's debris sweep, and —
  // in ResumeElasticFromTag — a whole UCP conversion), so a short training watchdog would
  // misread a live-but-busy rank as dead. All ranks run this straight-line path right after
  // the world was (re)built, so suspending the deadline here is safe; abort checks remain.
  ScopedWatchdogSuspend suspend_watchdog;
  // A resume means no save is in flight *for this job*, so any `<tag>.staging` directory
  // in its namespace is debris of a save (sync or async flush) the crash interrupted.
  // Sweep it now — readers never trust it, but leaving it would surprise the next save of
  // the same iteration and clutter fsck. The sweep is job-scoped: other jobs sharing the
  // store may have flushes in flight whose staging must survive. Rank 0 sweeps; the
  // barrier keeps peers from racing the removal.
  if (trainer.rank() == 0) {
    Result<int> swept = CleanStagingDebris(dir, job);
    if (swept.ok() && *swept > 0) {
      UCP_LOG(Info) << "removed " << *swept << " stale .staging director"
                    << (*swept == 1 ? "y" : "ies") << " under " << dir;
    }
  }
  trainer.groups().world.Barrier();

  // Walk tags newest-first. Tags without the `complete` marker are aborted saves and are
  // skipped outright; a committed tag that fails to load (torn shard, bit rot) falls back
  // to the next older committed tag. Every rank sees the same directory, so every rank
  // makes the same skip/retry decisions and the collectives inside the loaders stay
  // aligned. The first failure is remembered: when no tag resumes, the caller learns about
  // the damage, not just "nothing found".
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> tags, ListCheckpointTags(dir, job));
  Status first_failure = OkStatus();
  for (auto it = tags.rbegin(); it != tags.rend(); ++it) {
    if (!IsTagComplete(dir, *it)) {
      // Rank 0 speaks for everyone: all ranks see the same directory and skip identically.
      if (trainer.rank() == 0) {
        UCP_LOG(Warning) << "skipping checkpoint tag " << *it << ": missing commit marker "
                         << PathJoin(PathJoin(dir, *it), "complete")
                         << " (aborted or in-flight save)";
      }
      continue;
    }
    Result<ResumeReport> report = ResumeElasticFromTag(dir, *it, trainer);
    if (report.ok()) {
      return report;
    }
    if (first_failure.ok()) {
      first_failure = report.status();
    }
    // The retry-vs-abort decision must be collective too: ranks can hold *different*
    // failure codes for the same tag (the rank that hit the damage has the root cause,
    // its peers the synthesized peer-failure status), and one rank walking on to an older
    // tag while another aborts would strand the walker in the next attempt's collectives.
    // Any rank's non-retryable code aborts the walk for everyone.
    const double abort_any = trainer.groups().world.AllReduceMaxScalar(
        RetryOlderTag(report.status().code()) ? 0.0 : 1.0);
    if (abort_any > 0.0) {
      return report.status();
    }
    if (trainer.rank() == 0) {
      UCP_LOG(Warning) << "resume from " << *it << " failed (" << report.status().ToString()
                       << "); falling back to an older checkpoint";
    }
  }
  if (!first_failure.ok()) {
    return first_failure;
  }
  return NotFoundError("no committed checkpoint tag under " + dir);
}

Result<ResumeReport> ResumeElasticFromTag(const std::string& dir, const std::string& tag,
                                          RankTrainer& trainer) {
  UCP_TRACE_NAMED_SPAN(span, "resume.from_tag");
  UCP_TRACE_SPAN_ARG_S(span, "tag", tag);
  ScopedWatchdogSuspend suspend_watchdog;  // see ResumeElastic; also callable directly
  ResumeReport report;
  report.tag = tag;
  // The meta read is rank-local I/O before the first collective of any load path, so its
  // outcome must be agreed collectively: damage hitting one rank's read (torn meta, bit
  // rot) has to fail the tag for *everyone*. An early return here would strand the healthy
  // peers inside the loaders' collectives — and, with resume collectives answering to no
  // watchdog, strand them forever. The soak driver (src/soak/driver.h) exercises exactly
  // this with nth-matching read faults that fire on a single rank.
  Result<CheckpointMeta> meta_read = ReadCheckpointMeta(dir, tag);
  const double meta_failed =
      trainer.groups().world.AllReduceMaxScalar(meta_read.ok() ? 0.0 : 1.0);
  if (!meta_read.ok()) {
    return meta_read.status();
  }
  if (meta_failed > 0.0) {
    return DataLossError("aborting resume from " + tag +
                         ": a peer rank failed to read its checkpoint metadata");
  }
  const CheckpointMeta meta = *meta_read;
  report.iteration = meta.iteration;

  // Fast path: unchanged strategy and hardware — plain distributed load.
  const auto native_start = std::chrono::steady_clock::now();
  Status native;
  {
    UCP_TRACE_SPAN("resume.native_load");
    native = LoadDistributedCheckpoint(dir, tag, trainer);
  }
  if (native.ok()) {
    report.path = ResumeReport::Path::kNative;
    report.load_seconds = SecondsSince(native_start);
    return report;
  }
  if (native.code() != StatusCode::kFailedPrecondition) {
    return native;  // corruption / missing files are not reshard problems
  }

  // Strategy changed: convert on demand (once — the atom directory is cached beside the
  // checkpoint) and load through UCP. An unmarked .ucp dir is a crashed conversion, not a
  // cache hit; the converter replaces it.
  const std::string ucp_dir = PathJoin(dir, tag + ".ucp");
  bool cached = IsUcpComplete(ucp_dir);
  Status convert = OkStatus();
  const auto convert_start = std::chrono::steady_clock::now();
  {
    UCP_TRACE_SPAN("resume.convert");  // rank 0 converts; peers wait at the barrier
    if (trainer.rank() == 0 && !cached) {
      UCP_LOG(Info) << "strategy changed (" << meta.strategy.ToString() << " -> "
                    << trainer.config().strategy.ToString() << "); converting " << tag
                    << " to UCP";
      Result<ConvertStats> stats = ConvertToUcp(dir, tag, ucp_dir);
      if (!stats.ok() && stats.status().code() != StatusCode::kAlreadyExists) {
        convert = stats.status();
      }
    }
    // Everyone waits for the conversion to land, then everyone runs the load — even when
    // rank 0's conversion failed. The loaders' internal agreement is what keeps the world
    // collectives aligned; rank 0 returning early here would strand its peers.
    trainer.groups().world.Barrier();
  }
  report.convert_seconds = SecondsSince(convert_start);
  const auto load_start = std::chrono::steady_clock::now();
  Status load = LoadUcpCheckpoint(ucp_dir, trainer);
  report.load_seconds = SecondsSince(load_start);
  if (!convert.ok()) {
    return convert;  // the root cause, not the knock-on load failure
  }
  UCP_RETURN_IF_ERROR(load);
  report.path = cached ? ResumeReport::Path::kUcpCached : ResumeReport::Path::kUcpConverted;
  return report;
}

}  // namespace ucp
