#include "src/ucp/validate.h"

#include <functional>
#include <map>

#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/common/strings.h"
#include "src/model/inventory.h"
#include "src/tensor/tensor_file.h"
#include "src/ucp/atom.h"

namespace ucp {

std::string ValidationReport::ToString() const {
  std::string out = StrFormat("%d files, %lld bytes checked: ", files_checked,
                              static_cast<long long>(bytes_checked));
  if (ok()) {
    return out + "CLEAN";
  }
  out += StrFormat("%zu problem(s)\n", problems.size());
  for (const std::string& problem : problems) {
    out += "  - " + problem + "\n";
  }
  return out;
}

namespace {

void CheckFile(const std::string& path, ValidationReport& report,
               const std::function<Status()>& check) {
  Result<uint64_t> size = FileSize(path);
  if (!size.ok()) {
    report.problems.push_back("missing file: " + path);
    return;
  }
  ++report.files_checked;
  report.bytes_checked += static_cast<int64_t>(*size);
  Status status = check();
  if (!status.ok()) {
    report.problems.push_back(path + ": " + status.ToString());
  }
}

// ReadCheckpointMeta refuses uncommitted tags outright; the validator instead records the
// missing marker as a finding and keeps scanning, so fsck can still localize the damage
// inside an aborted save.
Result<CheckpointMeta> ReadMetaUngated(const std::string& dir, const std::string& tag) {
  UCP_ASSIGN_OR_RETURN(std::string text,
                       ReadFileToString(PathJoin(PathJoin(dir, tag), "checkpoint_meta.json")));
  UCP_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return CheckpointMeta::FromJson(json);
}

}  // namespace

Result<ValidationReport> ValidateNativeCheckpoint(const std::string& dir,
                                                  const std::string& tag) {
  ValidationReport report;
  if (!IsTagComplete(dir, tag)) {
    report.problems.push_back("missing 'complete' marker: the save of " + tag +
                              " never committed");
  }
  Result<CheckpointMeta> meta = ReadMetaUngated(dir, tag);
  if (!meta.ok()) {
    report.problems.push_back("checkpoint_meta.json: " + meta.status().ToString());
    return report;
  }
  const ParallelConfig& s = meta->strategy;
  const std::string tag_dir = PathJoin(dir, tag);

  for (int pp = 0; pp < s.pp; ++pp) {
    for (int sp = 0; sp < s.sp; ++sp) {
      for (int tp = 0; tp < s.tp; ++tp) {
        // Model states (one per model-parallel rank).
        std::string ms_path = PathJoin(tag_dir, ModelStatesFileName(tp, pp, sp));
        CheckFile(ms_path, report, [&] {
          UCP_ASSIGN_OR_RETURN(BundleInfo info, StatBundle(ms_path));
          if (s.zero_stage < 3 && info.entries.empty()) {
            return DataLossError("model states unexpectedly empty for ZeRO stage " +
                                 std::to_string(s.zero_stage));
          }
          return OkStatus();
        });

        // Optimizer partitions: layouts must agree across the DP group.
        int64_t padded_total = -1;
        for (int dp = 0; dp < s.dp; ++dp) {
          std::string optim_path = PathJoin(tag_dir, OptimStatesFileName(dp, tp, pp, sp));
          CheckFile(optim_path, report, [&] {
            UCP_ASSIGN_OR_RETURN(TensorBundle bundle, LoadBundle(optim_path));
            for (const char* key : {"fp32_flat", "exp_avg", "exp_avg_sq"}) {
              if (bundle.Find(key) == nullptr) {
                return DataLossError(std::string("missing tensor ") + key);
              }
            }
            if (!bundle.meta.Has("flat_layout")) {
              return DataLossError("missing flat_layout metadata");
            }
            UCP_ASSIGN_OR_RETURN(
                FlatLayout layout,
                FlatLayout::FromJson(bundle.meta.AsObject().at("flat_layout")));
            int64_t expected =
                s.zero_stage == 0 ? layout.padded_total : layout.partition_size;
            if (bundle.Find("fp32_flat")->numel() != expected) {
              return DataLossError(StrFormat(
                  "fp32_flat has %lld elements, layout expects %lld",
                  static_cast<long long>(bundle.Find("fp32_flat")->numel()),
                  static_cast<long long>(expected)));
            }
            if (padded_total >= 0 && layout.padded_total != padded_total) {
              return DataLossError("flat layout disagrees with DP peers");
            }
            padded_total = layout.padded_total;
            return OkStatus();
          });
        }
      }
    }
  }
  return report;
}

Result<ValidationReport> ValidateUcpCheckpoint(const std::string& ucp_dir) {
  ValidationReport report;
  if (FileExists(PathJoin(ucp_dir, "ucp_meta.json")) && !IsUcpComplete(ucp_dir)) {
    report.problems.push_back("missing 'complete' marker: the conversion into " + ucp_dir +
                              " never committed");
  }
  Result<UcpMeta> meta = ReadUcpMeta(ucp_dir);
  if (!meta.ok()) {
    report.problems.push_back("ucp_meta.json: " + meta.status().ToString());
    return report;
  }

  std::map<std::string, Shape> expected;
  for (const InventoryEntry& entry : BuildInventory(meta->model)) {
    expected[entry.param.name] = entry.param.full_shape;
  }

  std::map<std::string, bool> seen;
  for (const std::string& name : meta->atom_names) {
    seen[name] = true;
    auto it = expected.find(name);
    if (it == expected.end()) {
      report.problems.push_back("atom not in model inventory: " + name);
      continue;
    }
    for (const char* file : {"fp32", "exp_avg", "exp_avg_sq"}) {
      std::string path = PathJoin(AtomDir(ucp_dir, name), file);
      CheckFile(path, report, [&] {
        UCP_ASSIGN_OR_RETURN(TensorFileInfo info, StatTensor(path));
        if (info.shape != it->second) {
          return DataLossError("shape " + ShapeToString(info.shape) +
                               " does not match inventory " + ShapeToString(it->second));
        }
        return OkStatus();
      });
    }
  }
  for (const auto& [name, shape] : expected) {
    if (!seen.count(name)) {
      report.problems.push_back("inventory parameter missing from UCP checkpoint: " + name);
    }
  }
  return report;
}

bool FsckReport::clean() const {
  if (!notes.empty()) {
    return false;
  }
  for (const Entry& entry : entries) {
    if (!entry.report.ok()) {
      return false;
    }
  }
  return true;
}

std::string FsckReport::ToString() const {
  std::string out;
  for (const Entry& entry : entries) {
    out += entry.name + ": " + entry.report.ToString();
    if (out.empty() || out.back() != '\n') {
      out += '\n';
    }
  }
  for (const std::string& note : notes) {
    out += "note: " + note + "\n";
  }
  for (const std::string& path : quarantined) {
    out += "quarantined: " + path + "\n";
  }
  out += clean() ? "fsck: CLEAN\n" : "fsck: PROBLEMS FOUND\n";
  return out;
}

namespace {

bool LooksLikeUcpDir(const std::string& path) {
  return FileExists(PathJoin(path, "ucp_meta.json")) ||
         DirExists(PathJoin(path, "atoms"));
}

// Renames a damaged directory aside. The `.quarantined` suffix fails ListCheckpointTags'
// numeric-suffix parse, so resumes stop considering it.
void QuarantineDir(const std::string& dir, FsckReport& out) {
  const std::string target = dir + ".quarantined";
  Status status = RemoveAll(target);
  if (status.ok()) {
    status = RenamePath(dir, target);
  }
  if (status.ok()) {
    out.quarantined.push_back(target);
  } else {
    out.notes.push_back("failed to quarantine " + dir + ": " + status.ToString());
  }
}

}  // namespace

Result<FsckReport> Fsck(const std::string& path, bool quarantine) {
  if (!DirExists(path)) {
    return NotFoundError("no such directory: " + path);
  }
  FsckReport out;

  // A UCP atom directory checks as one unit.
  if (LooksLikeUcpDir(path)) {
    UCP_ASSIGN_OR_RETURN(ValidationReport report, ValidateUcpCheckpoint(path));
    bool damaged = !report.ok();
    out.entries.push_back({path, std::move(report)});
    if (damaged && quarantine) {
      QuarantineDir(path, out);
    }
    return out;
  }

  // Checkpoint root: every tag, every cached <tag>.ucp dir, the `latest` pointer, and any
  // staging debris left by a crashed save or conversion.
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> tags, ListCheckpointTags(path));
  for (const std::string& tag : tags) {
    UCP_ASSIGN_OR_RETURN(ValidationReport report, ValidateNativeCheckpoint(path, tag));
    bool damaged = !report.ok();
    out.entries.push_back({tag, std::move(report)});
    if (damaged && quarantine) {
      QuarantineDir(PathJoin(path, tag), out);
    }
  }

  UCP_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(path));
  for (const std::string& name : names) {
    const std::string child = PathJoin(path, name);
    if (EndsWith(name, ".ucp") && DirExists(child)) {
      UCP_ASSIGN_OR_RETURN(ValidationReport report, ValidateUcpCheckpoint(child));
      bool damaged = !report.ok();
      out.entries.push_back({name, std::move(report)});
      if (damaged && quarantine) {
        QuarantineDir(child, out);
      }
    } else if (EndsWith(name, ".staging") && DirExists(child)) {
      out.notes.push_back("stale staging dir (crashed save/conversion): " + name);
      if (quarantine) {
        // Staging trees are partial by construction — nothing in them is recoverable.
        Status status = RemoveAll(child);
        if (status.ok()) {
          out.quarantined.push_back(child + " (removed)");
          out.notes.pop_back();
        }
      }
    }
  }

  if (FileExists(PathJoin(path, "latest"))) {
    Result<std::string> latest = ReadLatestTag(path);
    if (!latest.ok()) {
      out.notes.push_back("latest: " + latest.status().ToString());
    } else if (!IsTagComplete(path, *latest)) {
      out.notes.push_back("latest points at '" + *latest +
                          "', which is missing or uncommitted");
    }
  } else if (!tags.empty()) {
    out.notes.push_back("checkpoint tags exist but there is no `latest` pointer");
  }
  return out;
}

}  // namespace ucp
