#include "src/ucp/validate.h"

#include <functional>
#include <map>

#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/common/strings.h"
#include "src/model/inventory.h"
#include "src/tensor/tensor_file.h"
#include "src/ucp/atom.h"

namespace ucp {

std::string ValidationReport::ToString() const {
  std::string out = StrFormat("%d files, %lld bytes checked: ", files_checked,
                              static_cast<long long>(bytes_checked));
  if (ok()) {
    return out + "CLEAN";
  }
  out += StrFormat("%zu problem(s)\n", problems.size());
  for (const std::string& problem : problems) {
    out += "  - " + problem + "\n";
  }
  return out;
}

namespace {

void CheckFile(const std::string& path, ValidationReport& report,
               const std::function<Status()>& check) {
  Result<uint64_t> size = FileSize(path);
  if (!size.ok()) {
    report.problems.push_back("missing file: " + path);
    return;
  }
  ++report.files_checked;
  report.bytes_checked += static_cast<int64_t>(*size);
  Status status = check();
  if (!status.ok()) {
    report.problems.push_back(path + ": " + status.ToString());
  }
}

}  // namespace

Result<ValidationReport> ValidateNativeCheckpoint(const std::string& dir,
                                                  const std::string& tag) {
  ValidationReport report;
  Result<CheckpointMeta> meta = ReadCheckpointMeta(dir, tag);
  if (!meta.ok()) {
    report.problems.push_back("checkpoint_meta.json: " + meta.status().ToString());
    return report;
  }
  const ParallelConfig& s = meta->strategy;
  const std::string tag_dir = PathJoin(dir, tag);

  for (int pp = 0; pp < s.pp; ++pp) {
    for (int sp = 0; sp < s.sp; ++sp) {
      for (int tp = 0; tp < s.tp; ++tp) {
        // Model states (one per model-parallel rank).
        std::string ms_path = PathJoin(tag_dir, ModelStatesFileName(tp, pp, sp));
        CheckFile(ms_path, report, [&] {
          UCP_ASSIGN_OR_RETURN(BundleInfo info, StatBundle(ms_path));
          if (s.zero_stage < 3 && info.entries.empty()) {
            return DataLossError("model states unexpectedly empty for ZeRO stage " +
                                 std::to_string(s.zero_stage));
          }
          return OkStatus();
        });

        // Optimizer partitions: layouts must agree across the DP group.
        int64_t padded_total = -1;
        for (int dp = 0; dp < s.dp; ++dp) {
          std::string optim_path = PathJoin(tag_dir, OptimStatesFileName(dp, tp, pp, sp));
          CheckFile(optim_path, report, [&] {
            UCP_ASSIGN_OR_RETURN(TensorBundle bundle, LoadBundle(optim_path));
            for (const char* key : {"fp32_flat", "exp_avg", "exp_avg_sq"}) {
              if (bundle.Find(key) == nullptr) {
                return DataLossError(std::string("missing tensor ") + key);
              }
            }
            if (!bundle.meta.Has("flat_layout")) {
              return DataLossError("missing flat_layout metadata");
            }
            UCP_ASSIGN_OR_RETURN(
                FlatLayout layout,
                FlatLayout::FromJson(bundle.meta.AsObject().at("flat_layout")));
            int64_t expected =
                s.zero_stage == 0 ? layout.padded_total : layout.partition_size;
            if (bundle.Find("fp32_flat")->numel() != expected) {
              return DataLossError(StrFormat(
                  "fp32_flat has %lld elements, layout expects %lld",
                  static_cast<long long>(bundle.Find("fp32_flat")->numel()),
                  static_cast<long long>(expected)));
            }
            if (padded_total >= 0 && layout.padded_total != padded_total) {
              return DataLossError("flat layout disagrees with DP peers");
            }
            padded_total = layout.padded_total;
            return OkStatus();
          });
        }
      }
    }
  }
  return report;
}

Result<ValidationReport> ValidateUcpCheckpoint(const std::string& ucp_dir) {
  ValidationReport report;
  Result<UcpMeta> meta = ReadUcpMeta(ucp_dir);
  if (!meta.ok()) {
    report.problems.push_back("ucp_meta.json: " + meta.status().ToString());
    return report;
  }

  std::map<std::string, Shape> expected;
  for (const InventoryEntry& entry : BuildInventory(meta->model)) {
    expected[entry.param.name] = entry.param.full_shape;
  }

  std::map<std::string, bool> seen;
  for (const std::string& name : meta->atom_names) {
    seen[name] = true;
    auto it = expected.find(name);
    if (it == expected.end()) {
      report.problems.push_back("atom not in model inventory: " + name);
      continue;
    }
    for (const char* file : {"fp32", "exp_avg", "exp_avg_sq"}) {
      std::string path = PathJoin(AtomDir(ucp_dir, name), file);
      CheckFile(path, report, [&] {
        UCP_ASSIGN_OR_RETURN(TensorFileInfo info, StatTensor(path));
        if (info.shape != it->second) {
          return DataLossError("shape " + ShapeToString(info.shape) +
                               " does not match inventory " + ShapeToString(it->second));
        }
        return OkStatus();
      });
    }
  }
  for (const auto& [name, shape] : expected) {
    if (!seen.count(name)) {
      report.problems.push_back("inventory parameter missing from UCP checkpoint: " + name);
    }
  }
  return report;
}

}  // namespace ucp
