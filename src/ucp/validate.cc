#include "src/ucp/validate.h"

#include <functional>
#include <map>
#include <set>

#include "src/ckpt/checkpoint.h"
#include "src/common/crc32.h"
#include "src/common/fs.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"
#include "src/model/inventory.h"
#include "src/store/chunk_index.h"
#include "src/store/chunk_manifest.h"
#include "src/tensor/tensor_file.h"
#include "src/ucp/atom.h"

namespace ucp {

std::string ValidationReport::ToString() const {
  std::string out = StrFormat("%d files, %lld bytes checked: ", files_checked,
                              static_cast<long long>(bytes_checked));
  if (ok()) {
    return out + "CLEAN";
  }
  out += StrFormat("%zu problem(s)\n", problems.size());
  for (const std::string& problem : problems) {
    out += "  - " + problem + "\n";
  }
  return out;
}

namespace {

// A deferred per-file integrity check. Checks are collected first, fanned out on a
// ThreadPool, and merged into the report in submission order, so the findings are
// deterministic no matter how the pool schedules them.
struct FileCheck {
  std::string path;
  std::function<Status()> fn;
  // Optional size probe. Default (null) stats the physical path; shards of an incremental
  // tag resolve through the chunk manifest instead, where "missing" means neither a
  // physical file nor a manifest entry exists.
  std::function<Result<uint64_t>()> size_fn;
};

void RunChecks(const std::vector<FileCheck>& checks, const ValidateOptions& options,
               ValidationReport& report) {
  struct Slot {
    bool missing = false;
    uint64_t size = 0;
    Status status;
  };
  std::vector<Slot> slots(checks.size());
  ThreadPool pool(options.num_threads > 0 ? static_cast<size_t>(options.num_threads) : 0);
  pool.ParallelFor(checks.size(), [&](size_t i) {
    Result<uint64_t> size =
        checks[i].size_fn ? checks[i].size_fn() : FileSize(checks[i].path);
    if (!size.ok()) {
      slots[i].missing = true;
      slots[i].status = size.status();
      return;
    }
    slots[i].size = *size;
    slots[i].status = checks[i].fn();
  });
  for (size_t i = 0; i < checks.size(); ++i) {
    if (slots[i].missing) {
      // A shard that fails *resolution* with a typed error (damaged manifest, dangling
      // chunk) reports that error; plain absence stays "missing file".
      if (slots[i].status.code() == StatusCode::kNotFound) {
        report.problems.push_back("missing file: " + checks[i].path);
      } else {
        report.problems.push_back(checks[i].path + ": " + slots[i].status.ToString());
      }
      continue;
    }
    ++report.files_checked;
    report.bytes_checked += static_cast<int64_t>(slots[i].size);
    if (!slots[i].status.ok()) {
      report.problems.push_back(checks[i].path + ": " + slots[i].status.ToString());
    }
  }
}

// Size probe for a shard that may live behind the tag's chunk manifest.
std::function<Result<uint64_t>()> ShardSizeFn(const std::string& tag_dir,
                                              const std::string& name) {
  return [tag_dir, name]() -> Result<uint64_t> {
    UCP_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> source,
                         OpenTagShardSource(tag_dir, name));
    return source->size();
  };
}

// ReadCheckpointMeta refuses uncommitted tags outright; the validator instead records the
// missing marker as a finding and keeps scanning, so fsck can still localize the damage
// inside an aborted save.
Result<CheckpointMeta> ReadMetaUngated(const std::string& dir, const std::string& tag) {
  UCP_ASSIGN_OR_RETURN(std::string text,
                       ReadFileToString(PathJoin(PathJoin(dir, tag), "checkpoint_meta.json")));
  UCP_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return CheckpointMeta::FromJson(json);
}

}  // namespace

Result<ValidationReport> ValidateNativeCheckpoint(const std::string& dir,
                                                  const std::string& tag,
                                                  const ValidateOptions& options) {
  ValidationReport report;
  if (!IsTagComplete(dir, tag)) {
    report.problems.push_back("missing 'complete' marker: the save of " + tag +
                              " never committed");
  }
  Result<CheckpointMeta> meta = ReadMetaUngated(dir, tag);
  if (!meta.ok()) {
    report.problems.push_back("checkpoint_meta.json: " + meta.status().ToString());
    return report;
  }
  const ParallelConfig& s = meta->strategy;
  const std::string tag_dir = PathJoin(dir, tag);

  std::vector<FileCheck> checks;

  // The tag's chunk manifest (incremental saves). Damage is a typed finding — shard checks
  // then resolve physical-first only, so by-reference shards surface as problems instead of
  // silently passing or falling back to stale bytes.
  const std::string manifest_path = PathJoin(tag_dir, kChunkManifestName);
  if (FileExists(manifest_path)) {
    Result<std::optional<ChunkManifest>> manifest = ReadTagChunkManifest(tag_dir);
    if (!manifest.ok()) {
      report.problems.push_back(manifest_path + ": " + manifest.status().ToString());
    } else if (manifest->has_value() && options.deep) {
      // Deep mode: every manifest entry must materialize bit-exactly — each referenced
      // chunk object exists in the index and decodes, and the whole-file CRC recorded at
      // write time matches the materialized bytes. Catches dangling references (a chunk
      // GC'd out from under a live tag) and shared-chunk bit-rot at the manifest level.
      const ChunkManifest m = **manifest;
      for (const ChunkManifestEntry& entry : m.files) {
        const std::string entry_path = PathJoin(tag_dir, entry.name) + " (via manifest)";
        const std::string dir_copy = dir;
        const uint64_t chunk_bytes = m.chunk_bytes;
        const ChunkManifestEntry entry_copy = entry;
        checks.push_back({entry_path,
                          [dir_copy, entry_copy, chunk_bytes, entry_path] {
                            UCP_ASSIGN_OR_RETURN(
                                std::unique_ptr<ByteSource> source,
                                OpenManifestSource(ChunkIndex::ForRoot(dir_copy),
                                                   entry_copy, chunk_bytes, entry_path));
                            std::vector<uint8_t> bytes(source->size());
                            if (!bytes.empty()) {
                              UCP_RETURN_IF_ERROR(
                                  source->ReadAt(0, bytes.data(), bytes.size()));
                            }
                            if (Crc32(bytes.data(), bytes.size()) != entry_copy.crc32) {
                              return DataLossError(
                                  "materialized bytes do not match the manifest's "
                                  "whole-file crc32");
                            }
                            return OkStatus();
                          },
                          [entry_copy]() -> Result<uint64_t> { return entry_copy.size; }});
      }
    }
  }

  // Layouts must agree across each DP group; each optimizer check deposits its
  // padded_total here (indexed densely by (pp, sp, tp, dp)) for the post-pass below.
  // Distinct checks write distinct slots, so the parallel phase needs no locking.
  std::vector<int64_t> padded_totals(
      static_cast<size_t>(s.pp) * s.sp * s.tp * s.dp, -1);
  std::vector<std::string> optim_paths(padded_totals.size());

  for (int pp = 0; pp < s.pp; ++pp) {
    for (int sp = 0; sp < s.sp; ++sp) {
      for (int tp = 0; tp < s.tp; ++tp) {
        // Model states (one per model-parallel rank).
        const std::string ms_name = ModelStatesFileName(tp, pp, sp);
        std::string ms_path = PathJoin(tag_dir, ms_name);
        checks.push_back({ms_path, [tag_dir, ms_name, &s, &options] {
          UCP_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> source,
                               OpenTagShardSource(tag_dir, ms_name));
          UCP_ASSIGN_OR_RETURN(BundleInfo info, StatBundle(std::move(source)));
          if (s.zero_stage < 3 && info.entries.empty()) {
            return DataLossError("model states unexpectedly empty for ZeRO stage " +
                                 std::to_string(s.zero_stage));
          }
          if (options.deep) {
            UCP_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> deep_source,
                                 OpenTagShardSource(tag_dir, ms_name));
            return DeepVerifyBundleFile(std::move(deep_source));
          }
          return OkStatus();
        }, ShardSizeFn(tag_dir, ms_name)});

        for (int dp = 0; dp < s.dp; ++dp) {
          size_t slot = static_cast<size_t>(((pp * s.sp + sp) * s.tp + tp) * s.dp + dp);
          const std::string optim_name = OptimStatesFileName(dp, tp, pp, sp);
          std::string optim_path = PathJoin(tag_dir, optim_name);
          optim_paths[slot] = optim_path;
          int64_t* padded_out = &padded_totals[slot];
          checks.push_back({optim_path, [tag_dir, optim_name, &s, &options, padded_out] {
            UCP_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> source,
                                 OpenTagShardSource(tag_dir, optim_name));
            UCP_ASSIGN_OR_RETURN(BundleInfo info, StatBundle(std::move(source)));
            const TensorFileInfo* fp32 = nullptr;
            for (const char* key : {"fp32_flat", "exp_avg", "exp_avg_sq"}) {
              const TensorFileInfo* found = nullptr;
              for (const auto& [name, entry] : info.entries) {
                if (name == key) {
                  found = &entry;
                  break;
                }
              }
              if (found == nullptr) {
                return DataLossError(std::string("missing tensor ") + key);
              }
              if (std::string(key) == "fp32_flat") {
                fp32 = found;
              }
            }
            if (!info.meta.Has("flat_layout")) {
              return DataLossError("missing flat_layout metadata");
            }
            UCP_ASSIGN_OR_RETURN(
                FlatLayout layout,
                FlatLayout::FromJson(info.meta.AsObject().at("flat_layout")));
            int64_t expected =
                s.zero_stage == 0 ? layout.padded_total : layout.partition_size;
            if (ShapeNumel(fp32->shape) != expected) {
              return DataLossError(StrFormat(
                  "fp32_flat has %lld elements, layout expects %lld",
                  static_cast<long long>(ShapeNumel(fp32->shape)),
                  static_cast<long long>(expected)));
            }
            *padded_out = layout.padded_total;
            if (options.deep) {
              UCP_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> deep_source,
                                   OpenTagShardSource(tag_dir, optim_name));
              return DeepVerifyBundleFile(std::move(deep_source));
            }
            return OkStatus();
          }, ShardSizeFn(tag_dir, optim_name)});
        }
      }
    }
  }
  RunChecks(checks, options, report);

  // Cross-DP agreement post-pass, once every file has reported in.
  for (int pp = 0; pp < s.pp; ++pp) {
    for (int sp = 0; sp < s.sp; ++sp) {
      for (int tp = 0; tp < s.tp; ++tp) {
        int64_t group_total = -1;
        for (int dp = 0; dp < s.dp; ++dp) {
          size_t slot = static_cast<size_t>(((pp * s.sp + sp) * s.tp + tp) * s.dp + dp);
          if (padded_totals[slot] < 0) {
            continue;  // file was missing/damaged; already reported
          }
          if (group_total >= 0 && padded_totals[slot] != group_total) {
            report.problems.push_back(optim_paths[slot] +
                                      ": flat layout disagrees with DP peers");
          }
          group_total = padded_totals[slot];
        }
      }
    }
  }
  return report;
}

Result<ValidationReport> ValidateUcpCheckpoint(const std::string& ucp_dir,
                                               const ValidateOptions& options) {
  ValidationReport report;
  if (FileExists(PathJoin(ucp_dir, "ucp_meta.json")) && !IsUcpComplete(ucp_dir)) {
    report.problems.push_back("missing 'complete' marker: the conversion into " + ucp_dir +
                              " never committed");
  }
  Result<UcpMeta> meta = ReadUcpMeta(ucp_dir);
  if (!meta.ok()) {
    report.problems.push_back("ucp_meta.json: " + meta.status().ToString());
    return report;
  }

  std::map<std::string, Shape> expected;
  for (const InventoryEntry& entry : BuildInventory(meta->model)) {
    expected[entry.param.name] = entry.param.full_shape;
  }

  std::vector<FileCheck> checks;
  std::map<std::string, bool> seen;
  for (const std::string& name : meta->atom_names) {
    seen[name] = true;
    auto it = expected.find(name);
    if (it == expected.end()) {
      report.problems.push_back("atom not in model inventory: " + name);
      continue;
    }
    for (const char* file : {"fp32", "exp_avg", "exp_avg_sq"}) {
      std::string path = PathJoin(AtomDir(ucp_dir, name), file);
      const Shape* want = &it->second;
      checks.push_back({path, [path, want, &options] {
        UCP_ASSIGN_OR_RETURN(TensorFileInfo info, StatTensor(path));
        if (info.shape != *want) {
          return DataLossError("shape " + ShapeToString(info.shape) +
                               " does not match inventory " + ShapeToString(*want));
        }
        if (options.deep) {
          return DeepVerifyTensorFile(path);
        }
        return OkStatus();
      }, nullptr});
    }
  }
  RunChecks(checks, options, report);
  for (const auto& [name, shape] : expected) {
    if (!seen.count(name)) {
      report.problems.push_back("inventory parameter missing from UCP checkpoint: " + name);
    }
  }
  return report;
}

bool FsckReport::clean() const {
  if (!notes.empty()) {
    return false;
  }
  for (const Entry& entry : entries) {
    if (!entry.report.ok()) {
      return false;
    }
  }
  return true;
}

std::string FsckReport::ToString() const {
  std::string out;
  for (const Entry& entry : entries) {
    out += entry.name + ": " + entry.report.ToString();
    if (out.empty() || out.back() != '\n') {
      out += '\n';
    }
  }
  for (const std::string& note : notes) {
    out += "note: " + note + "\n";
  }
  for (const std::string& path : quarantined) {
    out += "quarantined: " + path + "\n";
  }
  out += clean() ? "fsck: CLEAN\n" : "fsck: PROBLEMS FOUND\n";
  return out;
}

std::string FsckReport::QuarantineSummary() const {
  int intact = 0;
  for (const Entry& entry : entries) {
    if (entry.report.ok()) {
      ++intact;
    }
  }
  std::string out = "fsck --quarantine: " + std::to_string(quarantined.size()) +
                    " quarantined";
  if (!quarantined.empty()) {
    out += " (";
    for (size_t i = 0; i < quarantined.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += quarantined[i];
    }
    out += ")";
  }
  if (quarantine_failures > 0) {
    out += ", " + std::to_string(quarantine_failures) + " failed";
  }
  out += "; " + std::to_string(intact) + " intact entr" + (intact == 1 ? "y" : "ies") +
         " remain" + (intact == 1 ? "s" : "");
  return out;
}

int FsckReport::ExitCode(bool quarantine_mode) const {
  if (!quarantine_mode) {
    return clean() ? 0 : 1;
  }
  if (clean() && quarantined.empty()) {
    return 0;
  }
  if (quarantine_failures > 0) {
    return 2;
  }
  bool any_damaged = false;
  bool any_intact = false;
  for (const Entry& entry : entries) {
    (entry.report.ok() ? any_intact : any_damaged) = true;
  }
  if (any_intact) {
    return 1;  // repaired: damage renamed aside, resumable state remains
  }
  // Only staging debris was cleaned up, or the directory held no entries at all.
  return any_damaged ? 2 : 1;
}

namespace {

bool LooksLikeUcpDir(const std::string& path) {
  return FileExists(PathJoin(path, "ucp_meta.json")) ||
         DirExists(PathJoin(path, "atoms"));
}

// Renames a damaged directory aside. The `.quarantined` suffix fails ListCheckpointTags'
// numeric-suffix parse, so resumes stop considering it.
void QuarantineDir(const std::string& dir, FsckReport& out) {
  const std::string target = dir + ".quarantined";
  Status status = RemoveAll(target);
  if (status.ok()) {
    status = RenamePath(dir, target);
  }
  if (status.ok()) {
    out.quarantined.push_back(target);
  } else {
    ++out.quarantine_failures;
    out.notes.push_back("failed to quarantine " + dir + ": " + status.ToString());
  }
}

}  // namespace

Result<FsckReport> Fsck(const std::string& path, const FsckOptions& options) {
  if (!DirExists(path)) {
    return NotFoundError("no such directory: " + path);
  }
  const bool quarantine = options.quarantine;
  ValidateOptions vopts;
  vopts.deep = !options.fast;
  vopts.num_threads = options.num_threads;
  FsckReport out;

  // A UCP atom directory checks as one unit.
  if (LooksLikeUcpDir(path)) {
    UCP_ASSIGN_OR_RETURN(ValidationReport report, ValidateUcpCheckpoint(path, vopts));
    bool damaged = !report.ok();
    out.entries.push_back({path, std::move(report)});
    if (damaged && quarantine) {
      QuarantineDir(path, out);
    }
    return out;
  }

  // Checkpoint root: every tag across every job namespace, every cached <tag>.ucp dir, the
  // per-job `latest` pointers, and any staging debris left by a crashed save or conversion.
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> tags, ListAllCheckpointTags(path));
  for (const std::string& tag : tags) {
    UCP_ASSIGN_OR_RETURN(ValidationReport report, ValidateNativeCheckpoint(path, tag, vopts));
    bool damaged = !report.ok();
    out.entries.push_back({tag, std::move(report)});
    if (damaged && quarantine) {
      QuarantineDir(PathJoin(path, tag), out);
    }
  }

  UCP_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(path));
  for (const std::string& name : names) {
    const std::string child = PathJoin(path, name);
    if (EndsWith(name, ".ucp") && DirExists(child)) {
      UCP_ASSIGN_OR_RETURN(ValidationReport report, ValidateUcpCheckpoint(child, vopts));
      bool damaged = !report.ok();
      out.entries.push_back({name, std::move(report)});
      if (damaged && quarantine) {
        QuarantineDir(child, out);
      }
    } else if (EndsWith(name, ".staging") && DirExists(child)) {
      out.notes.push_back("stale staging dir (crashed save/conversion): " + name);
      if (quarantine) {
        // Staging trees are partial by construction — nothing in them is recoverable.
        Status status = RemoveAll(child);
        if (status.ok()) {
          out.quarantined.push_back(child + " (removed)");
          out.notes.pop_back();
        }
      }
    }
  }

  // Each job namespace gets its own pointer check: `latest` / `latest.<job>` must name a
  // committed tag, and a namespace with tags but no pointer is worth a note.
  std::set<std::string> jobs;
  for (const std::string& tag : tags) {
    std::string job;
    if (ParseTagName(tag, &job, nullptr)) {
      jobs.insert(job);
    }
  }
  for (const std::string& name : names) {
    // Pointer files can outlive their namespace's tags (all quarantined); check them too.
    if (name == "latest") {
      jobs.insert("");
    } else if (StartsWith(name, "latest.") && IsValidJobId(name.substr(7)) &&
               name.size() > 7) {
      jobs.insert(name.substr(7));
    }
  }
  for (const std::string& job : jobs) {
    const std::string pointer = LatestFileName(job);
    bool has_tags = false;
    for (const std::string& tag : tags) {
      std::string tag_job;
      if (ParseTagName(tag, &tag_job, nullptr) && tag_job == job) {
        has_tags = true;
        break;
      }
    }
    if (FileExists(PathJoin(path, pointer))) {
      Result<std::string> latest = ReadLatestTag(path, job);
      if (!latest.ok()) {
        out.notes.push_back(pointer + ": " + latest.status().ToString());
      } else if (!IsTagComplete(path, *latest)) {
        out.notes.push_back(pointer + " points at '" + *latest +
                            "', which is missing or uncommitted");
      }
    } else if (has_tags) {
      out.notes.push_back("checkpoint tags exist but there is no `" + pointer +
                          "` pointer");
    }
  }
  return out;
}

}  // namespace ucp
