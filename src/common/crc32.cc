#include "src/common/crc32.h"

#include <array>

namespace ucp {
namespace {

// Table generated at first use from the reflected polynomial 0xEDB88320.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Init() { return 0xFFFFFFFFu; }

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = CrcTable();
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

uint32_t Crc32Finalize(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Finalize(Crc32Update(Crc32Init(), data, size));
}

}  // namespace ucp
