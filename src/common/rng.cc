#include "src/common/rng.h"

#include <cmath>

namespace ucp {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Rng::NextU64() {
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t x = state_;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t n) {
  if (n == 0) {
    return 0;
  }
  // Modulo bias is negligible for the small n used in workloads, and determinism matters more
  // than perfect uniformity here.
  return NextU64() % n;
}

float Rng::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = static_cast<float>(mag * std::sin(2.0 * M_PI * u2));
  has_spare_ = true;
  return static_cast<float>(mag * std::cos(2.0 * M_PI * u2));
}

uint64_t CounterRng::U64At(uint64_t counter) const {
  // Two rounds of mixing decorrelate (seed, stream, counter) triples that differ in a single
  // coordinate.
  return Mix64(Mix64(seed_ ^ Mix64(stream_)) + counter);
}

double CounterRng::DoubleAt(uint64_t counter) const {
  return static_cast<double>(U64At(counter) >> 11) * 0x1.0p-53;
}

uint64_t CounterRng::BoundedAt(uint64_t counter, uint64_t n) const {
  return n == 0 ? 0 : U64At(counter) % n;
}

float CounterRng::GaussianAt(uint64_t counter) const {
  // Box-Muller from two decorrelated uniforms derived from one counter.
  uint64_t a = U64At(counter * 2);
  uint64_t b = U64At(counter * 2 + 1);
  double u1 = static_cast<double>(a >> 11) * 0x1.0p-53;
  double u2 = static_cast<double>(b >> 11) * 0x1.0p-53;
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  return static_cast<float>(std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2));
}

}  // namespace ucp
