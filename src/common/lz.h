// Byte-oriented LZ compression for checkpoint chunks.
//
// The codec is an LZ4-block-style format: a stream of tokens, each carrying a literal run
// followed by a back-reference match (16-bit offset, minimum match length 4). It is built
// for the checkpoint flush path, where chunks are small (64 KiB), throughput matters more
// than ratio, and incompressible fp32/bf16 payloads are common — so compression declares
// bailout (kIncompressible) as soon as the output would not beat the input by at least
// 1/16, and callers store such chunks raw.
//
// The format is internal to the chunk store: compressed bytes are always wrapped in a
// chunk object header carrying the raw size and a CRC of the *raw* bytes, so decompression
// errors (truncated stream, bad offset) surface as typed kDataLoss and corruption that
// decompresses "successfully" is still caught by the CRC.

#ifndef UCP_SRC_COMMON_LZ_H_
#define UCP_SRC_COMMON_LZ_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace ucp {

// Upper bound on the compressed size of `raw_size` input bytes (worst case: all literals).
size_t LzCompressBound(size_t raw_size);

// Result of a compression attempt.
enum class LzCompressOutcome {
  kCompressed,     // `out` holds the compressed stream, smaller than raw * 15/16
  kIncompressible, // not worth storing compressed; `out` is unspecified
};

// Compresses [data, data+size) into `out` (resized as needed). Returns kIncompressible
// when the compressed form would not save at least 1/16 of the input — callers should
// then store the raw bytes. size == 0 is always incompressible.
LzCompressOutcome LzCompress(const void* data, size_t size, std::vector<uint8_t>* out);

// Decompresses `in` into exactly `raw_size` bytes at `out` (caller-sized buffer).
// Any malformed stream (truncation, offset before start, size mismatch) returns
// kDataLoss; nothing is read or written out of bounds.
Status LzDecompress(const void* in, size_t in_size, void* out, size_t raw_size);

}  // namespace ucp

#endif  // UCP_SRC_COMMON_LZ_H_
