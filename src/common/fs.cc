#include "src/common/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <system_error>
#include <thread>

#include "src/common/fault_fs.h"
#include "src/common/strings.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ucp {

namespace stdfs = std::filesystem;

namespace {

using fault_internal::CheckFault;
using fault_internal::FaultAction;
using fault_internal::NoteFsOp;

std::mutex g_retry_policy_mu;
IoRetryPolicy g_retry_policy;

// Registry-backed (see src/obs/metrics.h); GetIoRetryStats reads these back out.
obs::Counter& TransientErrorsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("fs.retry.transient_errors");
  return c;
}
obs::Counter& RetriesCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("fs.retry.retries");
  return c;
}
obs::Counter& GiveupsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("fs.retry.giveups");
  return c;
}

// Runs `op` until it returns something other than kUnavailable, backing off exponentially
// (capped) between attempts. The last status — success, permanent error, or the final
// transient error once max_attempts is exhausted — is returned as-is.
template <typename Op>
Status RetryTransient(Op&& op) {
  const IoRetryPolicy policy = GetIoRetryPolicy();
  std::chrono::milliseconds backoff = policy.base_backoff;
  for (int attempt = 1;; ++attempt) {
    Status s = op();
    if (s.ok() || s.code() != StatusCode::kUnavailable) {
      return s;
    }
    TransientErrorsCounter().Add(1);
    if (attempt >= policy.max_attempts) {
      GiveupsCounter().Add(1);
      return s;
    }
    RetriesCounter().Add(1);
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, policy.max_backoff);
  }
}

// Writes `size` bytes to a freshly-created `path` and (fault permitting) fsyncs it. Used for
// both the atomic tmp file and the torn-write injection path.
Status WriteWholeFile(const std::string& path, const void* data, size_t size,
                      bool want_fsync) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return IoError("open for write failed: " + path + ": " + std::strerror(errno));
  }
  const char* p = static_cast<const char*>(data);
  size_t left = size;
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return IoError("write failed: " + path + ": " + std::strerror(errno));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (want_fsync) {
    NoteFsOp(FsOp::kFsync, path);
    FaultAction fa = CheckFault(FsOp::kFsync, path);
    if (fa.fail) {
      ::close(fd);
      return IoError("fault injection: fsync " + path);
    }
    if (fa.transient) {
      ::close(fd);
      return UnavailableError("fault injection: transient fsync " + path);
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      return IoError("fsync failed: " + path + ": " + std::strerror(errno));
    }
  }
  if (::close(fd) != 0) {
    return IoError("close failed: " + path + ": " + std::strerror(errno));
  }
  return OkStatus();
}

// Flips one bit of an existing file in place — the injector's silent-corruption mode.
Status FlipBitInFile(const std::string& path, uint64_t bit_index) {
  Result<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) {
    return contents.status();
  }
  if (contents->empty()) {
    return OkStatus();
  }
  uint64_t bit = bit_index % (contents->size() * 8);
  (*contents)[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  return WriteWholeFile(path, contents->data(), contents->size(), /*want_fsync=*/false);
}

// Innermost active fsync batch on this thread; null when writes flush eagerly.
thread_local ScopedFsyncBatch* g_active_fsync_batch = nullptr;

// Fsyncs an already-written file in place (the deferred half of a batched write).
Status FsyncExistingFile(const std::string& path) {
  NoteFsOp(FsOp::kFsync, path);
  FaultAction fa = CheckFault(FsOp::kFsync, path);
  if (fa.fail) {
    return IoError("fault injection: fsync " + path);
  }
  if (fa.transient) {
    return UnavailableError("fault injection: transient fsync " + path);
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return IoError("open for fsync failed: " + path + ": " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return IoError("fsync failed: " + path + ": " + std::strerror(errno));
  }
  if (::close(fd) != 0) {
    return IoError("close failed: " + path + ": " + std::strerror(errno));
  }
  return OkStatus();
}

}  // namespace

ScopedFsyncBatch::ScopedFsyncBatch() : previous_(g_active_fsync_batch) {
  g_active_fsync_batch = this;
}

ScopedFsyncBatch::~ScopedFsyncBatch() { g_active_fsync_batch = previous_; }

Status ScopedFsyncBatch::SyncAll() {
  if (paths_.empty()) {
    return OkStatus();
  }
  UCP_TRACE_NAMED_SPAN(span, "fs.fsync_batch");
  UCP_TRACE_SPAN_ARG_I(span, "files", static_cast<int64_t>(paths_.size()));
  static obs::Counter& fsyncs = obs::MetricsRegistry::Global().GetCounter("fs.fsync.calls");
  fsyncs.Add(paths_.size());
  for (const std::string& path : paths_) {
    UCP_RETURN_IF_ERROR(RetryTransient([&path] { return FsyncExistingFile(path); }));
  }
  paths_.clear();
  return OkStatus();
}

void SetIoRetryPolicy(const IoRetryPolicy& policy) {
  std::lock_guard<std::mutex> lock(g_retry_policy_mu);
  g_retry_policy = policy;
}

IoRetryPolicy GetIoRetryPolicy() {
  std::lock_guard<std::mutex> lock(g_retry_policy_mu);
  return g_retry_policy;
}

IoRetryStats GetIoRetryStats() {
  IoRetryStats stats;
  stats.transient_errors = TransientErrorsCounter().Value();
  stats.retries = RetriesCounter().Value();
  stats.giveups = GiveupsCounter().Value();
  return stats;
}

void ResetIoRetryStats() {
  TransientErrorsCounter().Reset();
  RetriesCounter().Reset();
  GiveupsCounter().Reset();
}

Status MakeDirs(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(path, ec);
  if (ec) {
    return IoError("create_directories(" + path + "): " + ec.message());
  }
  return OkStatus();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return stdfs::is_regular_file(path, ec);
}

bool DirExists(const std::string& path) {
  std::error_code ec;
  return stdfs::is_directory(path, ec);
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = stdfs::file_size(path, ec);
  if (ec) {
    return IoError("file_size(" + path + "): " + ec.message());
  }
  return size;
}

Result<int64_t> FileMtimeSeconds(const std::string& path) {
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return IoError("stat(" + path + "): " + std::strerror(errno));
  }
  return static_cast<int64_t>(st.st_mtime);
}

Status WriteFileAtomic(const std::string& path, const void* data, size_t size) {
  // The whole tmp-write + fsync + rename sequence is one retry unit: a transient failure
  // anywhere restarts from a fresh tmp file, so partial attempts never survive.
  return RetryTransient([&]() -> Status {
  NoteFsOp(FsOp::kWrite, path);
  FaultAction wa = CheckFault(FsOp::kWrite, path);
  if (wa.fail) {
    return IoError("fault injection: write " + path);
  }
  if (wa.transient) {
    return UnavailableError("fault injection: transient write " + path);
  }
  if (wa.torn) {
    // Torn write: only a prefix of the data persists under the *final* name and the caller
    // is told the write succeeded — the on-disk state after a crash on a filesystem whose
    // rename was journaled before the data blocks were flushed.
    size_t kept = size == 0 ? 0 : static_cast<size_t>(wa.torn_bytes % size);
    return WriteWholeFile(path, data, kept, /*want_fsync=*/false);
  }
  // A per-process counter keeps concurrent writers (converter thread pool) from colliding on
  // the temporary name.
  static std::atomic<uint64_t> counter{0};
  std::string tmp = path + ".tmp." + std::to_string(counter.fetch_add(1));
  ScopedFsyncBatch* batch = g_active_fsync_batch;
  Status written = WriteWholeFile(tmp, data, size, /*want_fsync=*/batch == nullptr);
  if (!written.ok()) {
    std::remove(tmp.c_str());
    return written;
  }
  NoteFsOp(FsOp::kRename, path);
  FaultAction ra = CheckFault(FsOp::kRename, path);
  if (ra.fail) {
    // A simulated kill between flush and rename leaves the tmp file behind, exactly as a
    // real crash would; callers and fsck must tolerate the debris.
    return IoError("fault injection: rename " + tmp + " -> " + path);
  }
  if (ra.transient) {
    // Unlike fail-stop, a transient rename failure is observed by a live process that will
    // retry with a fresh tmp file — clean this one up instead of leaving debris.
    std::remove(tmp.c_str());
    return UnavailableError("fault injection: transient rename " + tmp + " -> " + path);
  }
  std::error_code ec;
  stdfs::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return IoError("rename " + tmp + " -> " + path + ": " + ec.message());
  }
  if (wa.bitrot) {
    return FlipBitInFile(path, wa.bitrot_bit);
  }
  if (batch != nullptr) {
    batch->Record(path);
  }
  return OkStatus();
  });
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  return WriteFileAtomic(path, contents.data(), contents.size());
}

Status RenamePath(const std::string& from, const std::string& to) {
  // Commit-point rename: retried on transient failure like the write path.
  return RetryTransient([&]() -> Status {
    NoteFsOp(FsOp::kRename, to);
    FaultAction ra = CheckFault(FsOp::kRename, to);
    if (ra.fail) {
      return IoError("fault injection: rename " + from + " -> " + to);
    }
    if (ra.transient) {
      return UnavailableError("fault injection: transient rename " + from + " -> " + to);
    }
    std::error_code ec;
    stdfs::rename(from, to, ec);
    if (ec) {
      return IoError("rename " + from + " -> " + to + ": " + ec.message());
    }
    return OkStatus();
  });
}

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

RandomAccessFile::RandomAccessFile(RandomAccessFile&& other) noexcept
    : fd_(other.fd_), size_(other.size_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.size_ = 0;
}

RandomAccessFile& RandomAccessFile::operator=(RandomAccessFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.size_ = 0;
  }
  return *this;
}

Result<RandomAccessFile> RandomAccessFile::Open(const std::string& path) {
  NoteFsOp(FsOp::kRead, path);
  {
    FaultAction fa = CheckFault(FsOp::kRead, path);
    if (fa.fail) {
      return IoError("fault injection: read " + path);
    }
    if (fa.transient) {
      return UnavailableError("fault injection: transient read " + path);
    }
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return NotFoundError("cannot open " + path + ": " + std::strerror(errno));
  }
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return IoError("lseek failed: " + path + ": " + std::strerror(errno));
  }
  return RandomAccessFile(fd, static_cast<uint64_t>(end), path);
}

Status RandomAccessFile::ReadAt(uint64_t offset, void* out, size_t size) const {
  if (fd_ < 0) {
    return InternalError("ReadAt on a closed file: " + path_);
  }
  char* p = static_cast<char*>(out);
  size_t left = size;
  uint64_t pos = offset;
  while (left > 0) {
    ssize_t n = ::pread(fd_, p, left, static_cast<off_t>(pos));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return IoError("pread failed: " + path_ + ": " + std::strerror(errno));
    }
    if (n == 0) {
      return DataLossError("short read at offset " + std::to_string(pos) + " of " + path_ +
                           " (file truncated?)");
    }
    p += n;
    left -= static_cast<size_t>(n);
    pos += static_cast<uint64_t>(n);
  }
  return OkStatus();
}

Result<std::unique_ptr<ByteSource>> FileByteSource::Open(const std::string& path) {
  UCP_ASSIGN_OR_RETURN(RandomAccessFile file, RandomAccessFile::Open(path));
  return std::unique_ptr<ByteSource>(new FileByteSource(std::move(file)));
}

Result<std::string> ReadFileToString(const std::string& path) {
  NoteFsOp(FsOp::kRead, path);
  {
    FaultAction fa = CheckFault(FsOp::kRead, path);
    if (fa.fail) {
      return IoError("fault injection: read " + path);
    }
    if (fa.transient) {
      return UnavailableError("fault injection: transient read " + path);
    }
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  std::string contents;
  in.seekg(0, std::ios::end);
  std::streampos end = in.tellg();
  if (end < 0) {
    return IoError("tellg failed for " + path);
  }
  contents.resize(static_cast<size_t>(end));
  in.seekg(0, std::ios::beg);
  in.read(contents.data(), end);
  if (!in) {
    return IoError("read failed for " + path);
  }
  return contents;
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  if (!DirExists(path)) {
    return NotFoundError("not a directory: " + path);
  }
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : stdfs::directory_iterator(path, ec)) {
    names.push_back(entry.path().filename().string());
  }
  if (ec) {
    return IoError("directory_iterator(" + path + "): " + ec.message());
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  stdfs::remove_all(path, ec);
  if (ec) {
    return IoError("remove_all(" + path + "): " + ec.message());
  }
  return OkStatus();
}

std::string PathJoin(const std::string& a, const std::string& b) {
  if (a.empty()) {
    return b;
  }
  if (b.empty()) {
    return a;
  }
  if (a.back() == '/') {
    return a + (b.front() == '/' ? b.substr(1) : b);
  }
  return a + (b.front() == '/' ? b : "/" + b);
}

Result<std::string> MakeTempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  std::error_code ec;
  stdfs::path base = stdfs::temp_directory_path(ec);
  if (ec) {
    return IoError("temp_directory_path: " + ec.message());
  }
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::string name =
        prefix + "." + std::to_string(::getpid()) + "." + std::to_string(counter.fetch_add(1));
    stdfs::path candidate = base / name;
    if (stdfs::create_directory(candidate, ec)) {
      return candidate.string();
    }
  }
  return IoError("could not create temp dir with prefix " + prefix);
}

}  // namespace ucp
