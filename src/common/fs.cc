#include "src/common/fs.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "src/common/strings.h"

namespace ucp {

namespace stdfs = std::filesystem;

Status MakeDirs(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(path, ec);
  if (ec) {
    return IoError("create_directories(" + path + "): " + ec.message());
  }
  return OkStatus();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return stdfs::is_regular_file(path, ec);
}

bool DirExists(const std::string& path) {
  std::error_code ec;
  return stdfs::is_directory(path, ec);
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = stdfs::file_size(path, ec);
  if (ec) {
    return IoError("file_size(" + path + "): " + ec.message());
  }
  return size;
}

Status WriteFileAtomic(const std::string& path, const void* data, size_t size) {
  // A per-process counter keeps concurrent writers (converter thread pool) from colliding on
  // the temporary name.
  static std::atomic<uint64_t> counter{0};
  std::string tmp = path + ".tmp." + std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return IoError("open for write failed: " + tmp);
    }
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return IoError("write failed: " + tmp);
    }
  }
  std::error_code ec;
  stdfs::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return IoError("rename " + tmp + " -> " + path + ": " + ec.message());
  }
  return OkStatus();
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  return WriteFileAtomic(path, contents.data(), contents.size());
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  std::string contents;
  in.seekg(0, std::ios::end);
  std::streampos end = in.tellg();
  if (end < 0) {
    return IoError("tellg failed for " + path);
  }
  contents.resize(static_cast<size_t>(end));
  in.seekg(0, std::ios::beg);
  in.read(contents.data(), end);
  if (!in) {
    return IoError("read failed for " + path);
  }
  return contents;
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  if (!DirExists(path)) {
    return NotFoundError("not a directory: " + path);
  }
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : stdfs::directory_iterator(path, ec)) {
    names.push_back(entry.path().filename().string());
  }
  if (ec) {
    return IoError("directory_iterator(" + path + "): " + ec.message());
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  stdfs::remove_all(path, ec);
  if (ec) {
    return IoError("remove_all(" + path + "): " + ec.message());
  }
  return OkStatus();
}

std::string PathJoin(const std::string& a, const std::string& b) {
  if (a.empty()) {
    return b;
  }
  if (b.empty()) {
    return a;
  }
  if (a.back() == '/') {
    return a + (b.front() == '/' ? b.substr(1) : b);
  }
  return a + (b.front() == '/' ? b : "/" + b);
}

Result<std::string> MakeTempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  std::error_code ec;
  stdfs::path base = stdfs::temp_directory_path(ec);
  if (ec) {
    return IoError("temp_directory_path: " + ec.message());
  }
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::string name =
        prefix + "." + std::to_string(::getpid()) + "." + std::to_string(counter.fetch_add(1));
    stdfs::path candidate = base / name;
    if (stdfs::create_directory(candidate, ec)) {
      return candidate.string();
    }
  }
  return IoError("could not create temp dir with prefix " + prefix);
}

}  // namespace ucp
